#!/bin/sh
# cluster-smoke: boot real multi-process clusters on loopback and assert
# the netcluster acceptance criteria end to end.
#
#   Part 1 (training): a 3-process knord run must produce the same
#   result checksum (centroid bits + assignments + SSE bits + iteration
#   count) as the single-process run of the same config, at both
#   -precision 64 and 32. -threads 1 everywhere: the intra-machine
#   thread pool claims tasks off a shared cursor, so only one thread
#   per machine pins the floating-point fold order.
#
#   Part 2 (serving): knorserve as a coordinator plus two worker
#   processes (-machines 3 -replicas 2), train + publish a model,
#   assert /v1/assign answers byte-identical to a single-node server,
#   then kill -9 one worker and assert the answers do not change and
#   the transport telemetry counted real traffic.
#
# Everything runs on 127.0.0.1 with fixed ports; total budget well
# under a minute. Exits nonzero with a labelled message on the first
# failed assertion.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-smoke: $*" >&2
    exit 1
}

$GO build -o "$TMP/knord" ./cmd/knord
$GO build -o "$TMP/knorserve" ./cmd/knorserve

# ---- Part 1: knord 3-process vs single-process parity ----------------

KNORD_ARGS="-gen-n 3000 -gen-d 8 -k 7 -iters 30 -threads 1 -machines 3"
KNORD_PORT=18431

for P in 64 32; do
    solo=$("$TMP/knord" $KNORD_ARGS -precision "$P" | awk '/^checksum:/{print $2}')
    [ -n "$solo" ] || fail "knord solo p=$P printed no checksum"

    "$TMP/knord" $KNORD_ARGS -precision "$P" -join 127.0.0.1:$KNORD_PORT \
        >"$TMP/knord-w1.$P.log" 2>&1 &
    w1=$!
    "$TMP/knord" $KNORD_ARGS -precision "$P" -join 127.0.0.1:$KNORD_PORT \
        >"$TMP/knord-w2.$P.log" 2>&1 &
    w2=$!
    PIDS="$PIDS $w1 $w2"
    cluster=$("$TMP/knord" $KNORD_ARGS -precision "$P" -listen 127.0.0.1:$KNORD_PORT \
        | awk '/^checksum:/{print $2}') || fail "knord coordinator p=$P failed"
    wait "$w1" || fail "knord worker 1 p=$P failed: $(cat "$TMP/knord-w1.$P.log")"
    wait "$w2" || fail "knord worker 2 p=$P failed: $(cat "$TMP/knord-w2.$P.log")"

    [ "$solo" = "$cluster" ] || \
        fail "knord p=$P checksum mismatch: solo=$solo 3-process=$cluster"
    echo "cluster-smoke: knord p=$P 3-process checksum == solo ($solo)"
done

# ---- Part 2: knorserve cluster failover + single-node parity ---------

HTTP=127.0.0.1:18433
ORACLE=127.0.0.1:18434
CPORT=18435

MODEL='{"name":"smoke","k":6,"iters":20,"spec":{"n":600,"d":4,"clusters":6,"spread":0.05,"seed":3}}'
ROWS='{"model":"smoke","rows":[[0.1,0.2,0.3,0.4],[0.9,0.8,0.7,0.6],[0.5,0.5,0.5,0.5]]}'

wait_healthy() {
    for _ in $(seq 1 50); do
        curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    fail "$2 never became healthy"
}

"$TMP/knorserve" -addr "$ORACLE" -machines 1 -threads 1 \
    >"$TMP/oracle.log" 2>&1 &
PIDS="$PIDS $!"

"$TMP/knorserve" -addr "$HTTP" -listen 127.0.0.1:$CPORT -machines 3 -replicas 2 \
    -threads 1 -trace-sample 1 >"$TMP/coord.log" 2>&1 &
PIDS="$PIDS $!"
"$TMP/knorserve" -join 127.0.0.1:$CPORT -threads 1 >"$TMP/worker1.log" 2>&1 &
W1=$!
"$TMP/knorserve" -join 127.0.0.1:$CPORT -threads 1 >"$TMP/worker2.log" 2>&1 &
PIDS="$PIDS $W1 $!"

wait_healthy "$ORACLE" "single-node oracle"
wait_healthy "$HTTP" "cluster coordinator"

curl -fsS -X POST "http://$ORACLE/v1/models" -d "$MODEL" >/dev/null || \
    fail "oracle model train failed"
curl -fsS -X POST "http://$HTTP/v1/models" -d "$MODEL" >/dev/null || \
    fail "cluster model train failed"

oracle_ans=$(curl -fsS -X POST "http://$ORACLE/v1/assign" -d "$ROWS") || \
    fail "oracle assign failed"
cluster_ans=$(curl -fsS -X POST "http://$HTTP/v1/assign" -d "$ROWS") || \
    fail "cluster assign failed"
[ "$oracle_ans" = "$cluster_ans" ] || \
    fail "cluster assign differs from single-node: $cluster_ans vs $oracle_ans"
echo "cluster-smoke: knorserve 3-process /v1/assign == single-node"

curl -fsS "http://$HTTP/metrics" >"$TMP/metrics.txt" || fail "metrics scrape failed"
grep -q '^knor_net_bytes_total{dir="tx"} [1-9]' "$TMP/metrics.txt" || \
    fail "no transmitted transport bytes counted"
grep -q '^knor_net_frames_total{type="shard"} [1-9]' "$TMP/metrics.txt" || \
    fail "no shard push frames counted"
grep -q '^knor_net_frames_total{type="assign_req"} [1-9]' "$TMP/metrics.txt" || \
    fail "no assign RPC frames counted"

# Cluster-wide observability: the federated scrape must carry the worker
# processes' own series under rank labels (pulled over FrameMetrics, not
# recorded on the coordinator), and a fully-sampled /assign must show
# worker-local spans stitched into the coordinator's trace.
curl -fsS "http://$HTTP/metrics/cluster" >"$TMP/fedmetrics.txt" || \
    fail "federated metrics scrape failed"
grep -q 'knor_peer_shards{rank="2"} [1-9]' "$TMP/fedmetrics.txt" || \
    fail "federated scrape missing worker rank 2 shard gauge"
grep -q 'knor_net_bytes_total{rank="2",' "$TMP/fedmetrics.txt" || \
    fail "federated scrape missing worker rank 2 transport bytes"
grep -q 'knor_federation_stale{rank="1"} 0' "$TMP/fedmetrics.txt" || \
    fail "healthy worker rank 1 not marked fresh on federated scrape"
curl -fsS "http://$HTTP/debug/traces" >"$TMP/traces.json" || \
    fail "trace dump scrape failed"
grep -q 'rank[12]/shard_gemm' "$TMP/traces.json" || \
    fail "no worker shard_gemm span stitched into a coordinator trace"
curl -fsS "http://$HTTP/debug/events" >"$TMP/events.json" || \
    fail "event journal scrape failed"
grep -q '"msg":"peer joined"' "$TMP/events.json" || \
    fail "event journal missing the worker join events"
echo "cluster-smoke: federated metrics carry worker series, traces stitch across processes"

kill -9 "$W1" 2>/dev/null || fail "worker 1 already dead before the kill"
# The coordinator notices the dropped connection (or the missed pulses)
# and marks the machine dead; replicas=2 means every shard group keeps
# a live copy, so answers never change.
deadline=$(( $(date +%s) + 15 ))
until curl -fsS "http://$HTTP/v1/machines" 2>/dev/null | grep -q '"live":false'; do
    [ "$(date +%s)" -lt "$deadline" ] || fail "killed worker never marked dead"
    sleep 0.2
done

# The killed worker's rank must degrade to a stale marker on the
# federated scrape (ranks follow join-arrival order, so W1 is rank 1 or
# 2), and the scrape itself must keep answering promptly.
curl -fsS "http://$HTTP/metrics/cluster" >"$TMP/fedmetrics2.txt" || \
    fail "federated metrics scrape failed after worker kill"
grep -q 'knor_federation_stale{rank="[12]"} 1' "$TMP/fedmetrics2.txt" || \
    fail "killed worker not marked stale on federated scrape"
echo "cluster-smoke: dead worker degraded to knor_federation_stale on /metrics/cluster"

killed_ans=$(curl -fsS -X POST "http://$HTTP/v1/assign" -d "$ROWS") || \
    fail "assign failed after worker kill"
[ "$killed_ans" = "$oracle_ans" ] || \
    fail "assign changed after worker kill: $killed_ans vs $oracle_ans"
# Healing may already have re-spread the dead worker's replicas from
# the canonical copies ("ready"), or still be mid-walk ("degraded");
# either way the endpoint must answer 200.
ready=$(curl -fsS "http://$HTTP/readyz") || fail "readyz not 200 after kill"
echo "$ready" | grep -q '"ready"\|"degraded"' || fail "unexpected readyz after kill: $ready"
echo "cluster-smoke: worker killed (SIGKILL), failover answers bit-identical"

echo "cluster-smoke: ok (training parity at both precisions, serving parity through a real process kill)"
