package main

import (
	"fmt"

	"knor/internal/kmeans"
	"knor/internal/shardserve"
)

// failoverExp sweeps the replicated serving layer's fault response:
// replication factor R × kill rate over a 5-machine cluster, driven by
// the chaos harness (seeded deterministic kill schedule, QueryStream
// traffic, every answer compared bit-for-bit to the single-node
// oracle). The table shows the availability story the replication
// layer buys:
//
//   - R=1: any kill silences the victim's centroid range until it
//     revives — batches error (bounded, confined) but nothing ever
//     answers WRONG: correctness degrades to unavailability, never to
//     silently different assignments.
//   - R>=2 with at most R-1 concurrent deaths: zero errors and zero
//     wrong rows; the only trace of the kills is the failover counter.
//
// "wrong" must read 0 on every row of every run — it counts answers
// that differ from the oracle in any of cluster, distance bits, or
// version.
func failoverExp(e env) {
	const machines = 5
	rounds := 40
	if e.quick {
		rounds = 12
	}

	var rows [][]string
	for _, prec := range []kmeans.Precision{kmeans.Precision64, kmeans.Precision32} {
		for _, replicas := range []int{1, 2, 3} {
			for _, killEvery := range []int{4, 2} {
				maxDead := replicas - 1
				if maxDead < 1 {
					maxDead = 1
				}
				stats, err := shardserve.RunChaos(shardserve.ChaosConfig{
					Machines: machines, Replicas: replicas, MaxDead: maxDead,
					KillEvery: killEvery, Rounds: rounds,
					Precision: prec, Seed: 1,
				})
				if err != nil {
					panic(err)
				}
				avail := 100 * float64(stats.Rounds-stats.Errors) / float64(stats.Rounds)
				rows = append(rows, []string{
					prec.String(),
					fmt.Sprintf("%d", replicas),
					fmt.Sprintf("1/%d", killEvery),
					fmt.Sprintf("%d", stats.Kills),
					fmt.Sprintf("%d", stats.Failovers),
					fmt.Sprintf("%d", stats.Errors),
					fmt.Sprintf("%d", stats.Wrong),
					fmt.Sprintf("%d+%d", stats.FinalErrors, stats.FinalWrong),
					fmt.Sprintf("%.1f%%", avail),
				})
			}
		}
	}
	fmt.Printf("  %d machines, %d rounds of oracle-checked QueryStream batches, seeded kill schedule (seed 1)\n", machines, rounds)
	fmt.Printf("  kill rate = kills per round; recovery column = errors+wrong AFTER all machines revived\n\n")
	printTable(
		[]string{"prec", "R", "kill-rate", "kills", "failovers", "errors", "wrong", "recovery", "avail"},
		rows)
}
