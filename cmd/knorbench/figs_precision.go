package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"knor"
	"knor/internal/blas"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/serve"
	"knor/internal/workload"
)

// precisionExp measures the float32 vs float64 story end to end
// (EXPERIMENTS.md "Precision"): the PairwiseSqDist-shaped GEMM kernel,
// the GEMM-formulated training loop, the pruned knori engine, and the
// serving assign path. The float64 rows are the oracle; the float32
// rows report wall-clock speedup plus the relative SSE gap, which the
// precision tests bound at 1e-3.
func precisionExp(e env) {
	kernelSweep(e)
	trainSweep(e)
	assignSweep(e)
}

// kernelSweep times PairwiseSqDist on a serving-shaped chunk (rows ×
// 100 centroids) across dimensionalities, at both element types.
func kernelSweep(e env) {
	m := 65536
	reps := 5
	if e.quick {
		m = 16384
		reps = 2
	}
	const kc = 100
	fmt.Printf("  kernel: PairwiseSqDist, %d rows x %d centroids, serial (wall time)\n", m, kc)
	var rows [][]string
	for _, d := range []int{8, 16, 64} {
		spec := workload.Spec{Kind: workload.UniformMultivariate, N: m + kc, D: d, Seed: int64(d)}
		all := workload.Generate(spec)
		all32 := matrix.Convert[float32](all)
		a64 := all.Data[:m*d]
		c64 := all.Data[m*d:]
		a32 := all32.Data[:m*d]
		c32 := all32.Data[m*d:]
		dist64 := make([]float64, m*kc)
		dist32 := make([]float32, m*kc)
		t64 := timeReps(reps, func() { blas.PairwiseSqDist(a64, m, c64, kc, d, dist64, 1) })
		t32 := timeReps(reps, func() { blas.PairwiseSqDist(a32, m, c32, kc, d, dist32, 1) })
		rows = append(rows, []string{
			fmt.Sprintf("d=%d", d), fmtMs(t64), fmtMs(t32), fmtX(t64 / t32),
		})
	}
	printTable([]string{"Shape", "float64 (ms)", "float32 (ms)", "f32 speedup"}, rows)
}

// trainSweep runs the GEMM training baseline and the MTI-pruned knori
// engine at both precisions on the same dataset and seed.
func trainSweep(e env) {
	n := 16_000_000 / e.scale
	if e.quick {
		n /= 4
	}
	// Keep the training set out of cache at the default -scale: the
	// precision story is a bandwidth story, and a cache-resident run
	// underreports it.
	if n < 65536 {
		n = 65536
	}
	d, k, iters := 16, 50, 8
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: d, Clusters: k, Spread: 0.05, Seed: 1,
	})
	// Convert once, outside the timers: the sweep measures the engines'
	// per-iteration cost, not the one-time narrowing pass.
	data32 := matrix.Convert[float32](data)
	cfg := knor.Config{K: k, MaxIters: iters, Tol: -1, Init: knor.InitForgy, Seed: 1}

	var rows [][]string
	add := func(name string, run64, run32 func() (*knor.Result, error)) {
		start := time.Now()
		r64, err := run64()
		if err != nil {
			panic(err)
		}
		t64 := time.Since(start).Seconds() / float64(r64.Iters)
		start = time.Now()
		r32, err := run32()
		if err != nil {
			panic(err)
		}
		t32 := time.Since(start).Seconds() / float64(r32.Iters)
		gap := math.Abs(r32.SSE-r64.SSE) / r64.SSE
		rows = append(rows, []string{
			name, fmtMs(t64), fmtMs(t32), fmtX(t64 / t32), fmt.Sprintf("%.1e", gap),
		})
	}
	add("GEMM baseline (1 thread)",
		func() (*knor.Result, error) { return kmeans.RunGEMM(data, cfg, 4096, 1) },
		func() (*knor.Result, error) { return kmeans.RunGEMMOf(data32, cfg, 4096, 1) })
	mtiCfg := cfg
	mtiCfg.Prune = knor.PruneMTI
	mtiCfg.Threads = 8
	add("knori MTI (8 threads)",
		func() (*knor.Result, error) { return knor.Run(data, mtiCfg) },
		func() (*knor.Result, error) { return kmeans.RunOf(data32, mtiCfg) })
	fmt.Printf("  training: n=%d d=%d k=%d, %d iterations, same seed both widths\n", n, d, k, iters)
	printTable([]string{"Engine", "f64 ms/iter", "f32 ms/iter", "f32 speedup", "SSE rel gap"}, rows)
}

// assignSweep drives the batched serving assign path (4096-row flushes
// against a k=100, d=16 model) at both precisions.
func assignSweep(e env) {
	reps := 20
	if e.quick {
		reps = 5
	}
	cents := workload.Generate(workload.Spec{Kind: workload.UniformMultivariate, N: 100, D: 16, Seed: 1})
	queries := workload.Generate(workload.Spec{Kind: workload.UniformMultivariate, N: 4096, D: 16, Seed: 2})
	queries32 := matrix.Convert[float32](queries)
	reg := serve.NewRegistry(1)
	if _, err := reg.Publish("m", cents); err != nil {
		panic(err)
	}
	opts := serve.BatcherOptions{MaxBatch: 4096, MaxWait: 1, Threads: runtime.GOMAXPROCS(0)}

	b64 := serve.NewBatcher(reg, opts)
	t64 := timeReps(reps, func() {
		if _, err := b64.AssignBatch("m", queries); err != nil {
			panic(err)
		}
	})
	b64.Close()
	b32 := serve.NewBatcherOf[float32](reg, opts)
	t32 := timeReps(reps, func() {
		if _, err := b32.AssignBatch("m", queries32); err != nil {
			panic(err)
		}
	})
	b32.Close()

	rps := func(t float64) string { return fmt.Sprintf("%.0f", float64(queries.Rows())/t/1e3) }
	fmt.Printf("  serving: AssignBatch, 4096 rows/flush, k=100 d=16, %d threads\n", opts.Threads)
	printTable(
		[]string{"Precision", "Flush (ms)", "kRows/s", "Speedup"},
		[][]string{
			{"float64", fmtMs(t64), rps(t64), fmtX(1)},
			{"float32", fmtMs(t32), rps(t32), fmtX(t64 / t32)},
		})
}

// timeReps returns the mean wall time of f over reps runs (one warmup).
func timeReps(reps int, f func()) float64 {
	f()
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start).Seconds() / float64(reps)
}
