package main

import (
	"fmt"
	"math/rand"
	"time"

	"knor/internal/matrix"
	"knor/internal/serve"
	"knor/internal/telemetry"
)

// traceExp measures what the observability layer costs on the serving
// hot path: the 1M x 16, k=100 /assign shape (the loadtest and
// EXPERIMENTS.md serving shape) pushed through the batcher with
// telemetry fully disabled, enabled, enabled with sampled tracing at
// the production default (1/1000) and the worst case (every request),
// and enabled with a concurrent federation-style registry scrape
// hammering Snapshot(). The contract documented in EXPERIMENTS.md is
// that production-rate tracing stays under a 2% throughput tax.
func traceExp(e env) {
	const (
		d, k  = 16, 100
		batch = 1024
	)
	rows := 1_000_000
	if e.quick {
		rows = 100_000
	}
	rng := rand.New(rand.NewSource(7))
	cents := matrix.NewDense(k, d)
	for i := range cents.Data {
		cents.Data[i] = rng.NormFloat64()
	}
	queries := matrix.New[float64](batch, d)
	for i := range queries.Data {
		queries.Data[i] = rng.NormFloat64()
	}
	batches := (rows + batch - 1) / batch

	run := func(enabled bool, traceEvery int, scrape bool) float64 {
		telemetry.SetEnabled(enabled)
		defer telemetry.SetEnabled(true)
		reg := serve.NewRegistry(1)
		if _, err := reg.Publish("m", cents); err != nil {
			panic(err)
		}
		var tracer *telemetry.Tracer
		if traceEvery > 0 {
			tracer = telemetry.NewTracer(traceEvery, 16)
		}
		bat := serve.NewBatcherOf[float64](reg, serve.BatcherOptions{
			MaxBatch: batch, MaxWait: time.Microsecond, Tracer: tracer,
		})
		defer bat.Close()
		stopScrape := make(chan struct{})
		scrapeDone := make(chan struct{})
		if scrape {
			go func() {
				defer close(scrapeDone)
				t := time.NewTicker(10 * time.Millisecond)
				defer t.Stop()
				for {
					select {
					case <-t.C:
						telemetry.Default.Snapshot()
					case <-stopScrape:
						return
					}
				}
			}()
		}
		start := time.Now()
		for b := 0; b < batches; b++ {
			if _, err := bat.AssignBatch("m", queries); err != nil {
				panic(err)
			}
		}
		el := time.Since(start).Seconds()
		if scrape {
			close(stopScrape)
			<-scrapeDone
		}
		return el
	}

	type cfg struct {
		name       string
		enabled    bool
		traceEvery int
		scrape     bool
	}
	cfgs := []cfg{
		{"telemetry-off", false, 0, false},
		{"telemetry-on", true, 0, false},
		{"trace-1/1000", true, 1000, false},
		{"trace-1/1", true, 1, false},
		{"on+fed-scrape", true, 0, true},
	}
	// Warm up the kernels once so the first timed config isn't paying
	// for page faults and frequency ramp.
	run(false, 0, false)
	base := 0.0
	var out [][]string
	for _, c := range cfgs {
		el := run(c.enabled, c.traceEvery, c.scrape)
		if c.name == "telemetry-off" {
			base = el
		}
		over := (el/base - 1) * 100
		out = append(out, []string{
			c.name, fmtSec(el),
			fmt.Sprintf("%.0f", float64(rows)/el),
			fmt.Sprintf("%+.2f%%", over),
		})
	}
	fmt.Printf("  %d rows of d=%d against k=%d, batch=%d (the serving loadtest shape)\n\n",
		rows, d, k, batch)
	printTable([]string{"config", "wall-s", "rows/s", "overhead"}, out)
}
