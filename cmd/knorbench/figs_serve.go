package main

import (
	"fmt"
	"math/rand"

	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/serve"
)

// serveExp extends the Figure 5 scheduler study to the serving layer:
// the same placement and scheduling policies, applied to a simulated
// online-assignment workload (per-model shards pinned to NUMA nodes,
// request traffic skewed by a power law like the trainer datasets).
// Throughput separates for the same reason Figure 5's curves do:
// single-bank placement serialises every shard read through one memory
// link, and locality-blind stealing turns local reads remote.
func serveExp(e env) {
	const (
		models, k, d = 8, 100, 16
	)
	// Mixed request sizes (interactive single rows up to analytics
	// scans) create the uneven task durations that make steal order
	// matter, like the per-block pruning skew in Figure 5.
	sizes := []int{8, 8, 32, 64, 64, 256}
	requests := 4000
	if e.quick {
		requests = 800
	}
	reg := serve.NewRegistry(numa.DefaultTopology().Nodes)
	rng := rand.New(rand.NewSource(1))
	names := make([]string, models)
	for i := range names {
		names[i] = fmt.Sprintf("model-%d", i)
		c := matrix.NewDense(k, d)
		for j := range c.Data {
			c.Data[j] = rng.NormFloat64()
		}
		if _, err := reg.Publish(names[i], c); err != nil {
			panic(err)
		}
	}
	// Power-law model popularity: model i drawn with weight 1/(i+1),
	// like the cluster-size skew that separates the Figure 5 curves.
	var cum []float64
	var wsum float64
	for i := 0; i < models; i++ {
		wsum += 1 / float64(i+1)
	}
	acc := 0.0
	for i := 0; i < models; i++ {
		acc += 1 / float64(i+1) / wsum
		cum = append(cum, acc)
	}
	reqs := make([]serve.Request, requests)
	for i := range reqs {
		u := rng.Float64()
		m := 0
		for m < models-1 && u > cum[m] {
			m++
		}
		reqs[i] = serve.Request{Model: names[m], Rows: sizes[rng.Intn(len(sizes))]}
	}

	type combo struct {
		place numa.PlacementPolicy
		pol   sched.Policy
	}
	combos := []combo{
		{numa.PlacePartitioned, sched.NUMAAware},
		{numa.PlacePartitioned, sched.FIFO},
		{numa.PlacePartitioned, sched.Static},
		{numa.PlaceInterleaved, sched.NUMAAware},
		{numa.PlaceRandom, sched.NUMAAware},
		{numa.PlaceSingleBank, sched.NUMAAware},
		{numa.PlaceSingleBank, sched.FIFO},
	}
	var rows [][]string
	// First row: the registry's own publish-time round-robin pins (what
	// a live knorserve uses), then the placement-policy sweep.
	st, err := serve.SimulateServe(reg, reqs, serve.RouterConfig{
		Sched: sched.NUMAAware, UseRegistryPins: true, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	rows = append(rows, []string{
		"registry-pins", sched.NUMAAware.String(),
		fmtSec(st.SimSeconds),
		fmt.Sprintf("%.0f", st.Throughput),
		fmt.Sprintf("%.0f", st.RowsPerSec),
		fmtMs(st.P50), fmtMs(st.P95), fmtMs(st.P99),
		fmtGB(st.RemoteBytes),
	})
	for _, c := range combos {
		st, err := serve.SimulateServe(reg, reqs, serve.RouterConfig{
			Sched: c.pol, Placement: c.place, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{
			c.place.String(), c.pol.String(),
			fmtSec(st.SimSeconds),
			fmt.Sprintf("%.0f", st.Throughput),
			fmt.Sprintf("%.0f", st.RowsPerSec),
			fmtMs(st.P50), fmtMs(st.P95), fmtMs(st.P99),
			fmtGB(st.RemoteBytes),
		})
	}
	fmt.Printf("  %d mixed-size requests (8-256 rows) over %d models (k=%d, d=%d), 48 workers\n\n",
		requests, models, k, d)
	printTable(
		[]string{"placement", "sched", "sim-s", "req/s", "rows/s", "p50-ms", "p95-ms", "p99-ms", "remote-GB"},
		rows)
}
