package main

import (
	"fmt"
	"sync"
	"time"

	"knor/internal/cluster"
	"knor/internal/netcluster"
	"knor/internal/simclock"
)

// netExp compares the two netcluster transports on the collective the
// trainers actually run — the ring allgather of per-rank accumulator
// blocks — at the payload scales that matter: the k=100 d=16 float64
// accumulator (~13 KB, one training iteration's merge) and a 1 MiB
// block (shard-push scale). The simulated column is modeled time from
// internal/cluster's alpha-beta cost model on the machine clocks; the
// TCP column is measured wall time for real OS sockets on loopback,
// all ranks in-process. The two columns answer different questions —
// "what does the model predict for a datacenter network" vs "what
// does the deployable path actually cost here" — and the table is the
// EXPERIMENTS.md sim-vs-real record. Frames on both paths carry
// identical bytes; only the substrate differs.
func netExp(e env) {
	rounds := 64
	machines := []int{2, 3, 4}
	if e.quick {
		rounds = 16
		machines = []int{2, 3}
	}
	payloads := []int{100 * 16 * 8, 1 << 20}

	var rows [][]string
	for _, m := range machines {
		for _, payload := range payloads {
			simPer := netSimRounds(m, payload, rounds)
			tcpPer, mbs := netTCPRounds(m, payload, rounds)
			rows = append(rows, []string{
				fmt.Sprintf("%d", m),
				fmt.Sprintf("%dKB", payload/1024),
				fmt.Sprintf("%d", rounds),
				fmt.Sprintf("%.3f", simPer*1e3),
				fmt.Sprintf("%.3f", tcpPer*1e3),
				fmt.Sprintf("%.0f", mbs),
			})
		}
	}
	fmt.Println("  ring allgather, one block per rank, both transports moving identical frames")
	fmt.Println()
	printTable(
		[]string{"machines", "block", "rounds", "sim-ms/round", "tcp-ms/round", "tcp-MB/s/rank"},
		rows)
}

// netSimRounds runs the allgather over the simulated mesh and returns
// modeled seconds per round: the furthest machine clock, divided by
// the round count.
func netSimRounds(m, payload, rounds int) float64 {
	net := cluster.New(m, simclock.DefaultCostModel())
	g := netcluster.NewSimGroup(net)
	defer g.Close()
	runAllgatherRanks(m, payload, rounds, func(r int) netcluster.Transport {
		return g.Transport(r)
	})
	max := 0.0
	for i := 0; i < m; i++ {
		if t := net.Clock(i).Now(); t > max {
			max = t
		}
	}
	return max / float64(rounds)
}

// netTCPRounds runs the same allgather over real loopback sockets and
// returns measured wall seconds per round plus per-rank transmit
// throughput (each rank forwards M-1 blocks per round).
func netTCPRounds(m, payload, rounds int) (perRound, mbPerSec float64) {
	ln, err := netcluster.ListenLoopback()
	if err != nil {
		panic(err)
	}
	addr := ln.Addr().String()
	ts := make([]netcluster.Transport, m)
	var boot sync.WaitGroup
	for r := 0; r < m; r++ {
		boot.Add(1)
		go func(r int) {
			defer boot.Done()
			opts := netcluster.TCPOptions{Digest: "bench:net"}
			if r == 0 {
				opts.Listener, opts.Machines = ln, m
			} else {
				opts.Listen, opts.Join = "127.0.0.1:0", addr
			}
			tr, err := netcluster.DialCluster(opts)
			if err != nil {
				panic(err)
			}
			// Ranks are assigned in join-arrival order, not goroutine
			// index order; store by the transport's own rank.
			ts[tr.Rank()] = tr
		}(r)
	}
	boot.Wait()
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()

	start := time.Now()
	runAllgatherRanks(m, payload, rounds, func(r int) netcluster.Transport {
		return ts[r]
	})
	wall := time.Since(start).Seconds()
	perRound = wall / float64(rounds)
	bytesTx := float64(rounds) * float64(m-1) * float64(payload)
	return perRound, bytesTx / wall / 1e6
}

// runAllgatherRanks drives every rank's side of `rounds` back-to-back
// allgathers concurrently, each rank contributing one payload-sized
// block per round.
func runAllgatherRanks(m, payload, rounds int, transport func(r int) netcluster.Transport) {
	var wg sync.WaitGroup
	for r := 0; r < m; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr := transport(r)
			mine := make([]byte, payload)
			for i := range mine {
				mine[i] = byte(r + i)
			}
			for round := 0; round < rounds; round++ {
				if _, err := netcluster.Allgather(tr, netcluster.FrameAccum, 8, uint32(round), mine); err != nil {
					panic(fmt.Sprintf("rank %d round %d: %v", r, round, err))
				}
			}
		}(r)
	}
	wg.Wait()
}
