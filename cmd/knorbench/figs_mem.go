package main

import (
	"fmt"

	"knor"
	"knor/internal/frameworks"
	"knor/internal/kmeans"
)

// paperTopo is the evaluation machine: 4 sockets x 12 cores.
func paperTopo() knor.Topology { return knor.Topology{Nodes: 4, CoresPerNode: 12} }

// simPerIter runs the config and returns simulated seconds per
// iteration averaged over iterations after the first (iteration 0 is
// the unpruned priming pass everywhere).
func simPerIter(res *knor.Result) float64 {
	if len(res.PerIter) <= 1 {
		return res.SimSeconds / float64(res.Iters)
	}
	var s float64
	for _, st := range res.PerIter[1:] {
		s += st.SimSeconds
	}
	return s / float64(len(res.PerIter)-1)
}

// fig4 sweeps threads for NUMA-aware knori vs the oblivious baseline.
func fig4(e env) {
	data := friendster(e, 8, 0.05)
	threadSweep := []int{1, 2, 4, 8, 16, 32, 64}
	if e.quick {
		threadSweep = []int{1, 4, 16}
	}
	iters := 5
	base := knor.Config{
		K: 10, MaxIters: iters, Tol: -1, Init: knor.InitForgy, Seed: 1,
		Topo: paperTopo(), TaskSize: 1024, Sched: knor.SchedNUMAAware,
	}
	var awareT1, oblT1 float64
	var rows [][]string
	for _, t := range threadSweep {
		aware := base
		aware.Threads = t
		obl := base
		obl.Threads = t
		obl.Placement = knor.PlaceSingleBank
		obl.NUMAOblivious = true
		obl.Sched = knor.SchedFIFO
		ra, err := knor.Run(data, aware)
		if err != nil {
			panic(err)
		}
		ro, err := knor.Run(data, obl)
		if err != nil {
			panic(err)
		}
		if t == threadSweep[0] {
			awareT1, oblT1 = ra.SimSeconds, ro.SimSeconds
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%.1f", awareT1/ra.SimSeconds),
			fmt.Sprintf("%.1f", oblT1/ro.SimSeconds),
			fmt.Sprintf("%d", t),
			fmtX(ro.SimSeconds / ra.SimSeconds),
		})
	}
	fmt.Printf("  (Friendster-8/%d, k=10, simulated; paper: ~6x gap at 64 threads)\n", e.friendScale)
	printTable([]string{"Threads", "knori speedup", "NUMA-oblivious speedup", "Linear(ideal)", "knori advantage"}, rows)
}

// fig5 compares schedulers under MTI skew across k.
func fig5(e env) {
	data := friendster(e, 8, 0.05)
	ks := []int{10, 20, 50, 100}
	if e.quick {
		ks = []int{10, 50}
	}
	var rows [][]string
	for _, k := range ks {
		var cells []string
		cells = append(cells, fmt.Sprintf("k=%d", k))
		var numaMs float64
		for _, pol := range []struct {
			name string
			p    knor.Config
		}{
			{"numa", knor.Config{Sched: knor.SchedNUMAAware}},
			{"fifo", knor.Config{Sched: knor.SchedFIFO}},
			{"static", knor.Config{Sched: knor.SchedStatic}},
		} {
			cfg := knor.Config{
				K: k, MaxIters: 12, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
				Threads: 48, TaskSize: 512, Topo: paperTopo(),
				Prune: knor.PruneMTI, Sched: pol.p.Sched,
			}
			res, err := knor.Run(data, cfg)
			if err != nil {
				panic(err)
			}
			ms := simPerIter(res) * 1e3
			if pol.name == "numa" {
				numaMs = ms
			}
			cells = append(cells, fmt.Sprintf("%.3f", ms))
			_ = numaMs
		}
		rows = append(rows, cells)
	}
	fmt.Printf("  (Friendster-8/%d, MTI on, 48 threads, time/iter ms; paper: NUMA-aware wins ~40%% at k=100)\n", e.friendScale)
	printTable([]string{"", "NUMA-aware", "FIFO", "Static"}, rows)
}

// fig8 compares MTI-enabled vs disabled modules on both Friendster
// datasets across k (Figures 8a/8b).
func fig8(e env) {
	for _, d := range []int{8, 32} {
		data := friendster(e, d, 0.05)
		ks := []int{10, 20, 50, 100}
		if e.quick {
			ks = []int{10, 50}
		}
		var rows [][]string
		for _, k := range ks {
			kcfg := knor.Config{
				K: k, MaxIters: 12, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
				Threads: 48, TaskSize: 512, Topo: paperTopo(), Sched: knor.SchedNUMAAware,
			}
			mti := kcfg
			mti.Prune = knor.PruneMTI
			rMTI, err := knor.Run(data, mti)
			if err != nil {
				panic(err)
			}
			rNone, err := knor.Run(data, kcfg)
			if err != nil {
				panic(err)
			}
			sMTI, sNone := semPair(e, data, k, true), semPair(e, data, k, false)
			rows = append(rows, []string{
				fmt.Sprintf("k=%d", k),
				fmtSec(simPerIter(rMTI)), fmtSec(simPerIter(rNone)),
				fmtSec(sMTI), fmtSec(sNone),
			})
		}
		fmt.Printf("  Friendster-%d/%d (time/iter s, simulated; paper: MTI a few x faster)\n", d, e.friendScale)
		printTable([]string{"", "knori", "knori-", "knors", "knors--"}, rows)
	}
}

// semPair runs knors with/without MTI+RC and returns sim time/iter.
func semPair(e env, data *knor.Matrix, k int, optimized bool) float64 {
	cfg := knor.SEMConfig{
		Kmeans: knor.Config{
			K: k, MaxIters: 12, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
			Threads: 48, TaskSize: 512,
		},
		Devices:        24,
		PageCacheBytes: 1 << 22,
	}
	if optimized {
		cfg.Kmeans.Prune = knor.PruneMTI
		cfg.RowCacheBytes = 1 << 22
	}
	res, err := knor.RunSEM(data, cfg)
	if err != nil {
		panic(err)
	}
	return simPerIter(res)
}

// fig8mem reproduces Figure 8c: memory of optimized vs vanilla modules.
func fig8mem(e env) {
	var rows [][]string
	for _, d := range []int{8, 32} {
		n := 66_000_000 / e.friendScale
		knori := uint64(n*d)*8 + kmeans.StateBytes(n, d, 10, 48, kmeans.PruneMTI)
		knoriM := uint64(n*d)*8 + kmeans.StateBytes(n, d, 10, 48, kmeans.PruneNone)
		knors := kmeans.StateBytes(n, d, 10, 48, kmeans.PruneMTI) + (1 << 22) + (1 << 22)
		knorsMM := kmeans.StateBytes(n, d, 10, 48, kmeans.PruneNone) + (1 << 22)
		rows = append(rows, []string{
			fmt.Sprintf("Friendster-%d", d),
			fmtMB(knori), fmtMB(knoriM), fmtMB(knors), fmtMB(knorsMM),
		})
	}
	fmt.Println("  (MB; paper: MTI increases memory by negligible amounts)")
	printTable([]string{"Dataset", "knori", "knori-", "knors", "knors--"}, rows)
}

// fig9 compares knori and knors against the emulated frameworks.
func fig9(e env) {
	for _, d := range []int{8, 32} {
		data := friendster(e, d, 0.05)
		ks := []int{10, 20, 50, 100}
		if e.quick {
			ks = []int{10}
		}
		var rows [][]string
		for _, k := range ks {
			base := knor.Config{
				K: k, MaxIters: 10, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
				Threads: 48, TaskSize: 512, Topo: paperTopo(),
			}
			knoriCfg := base
			knoriCfg.Prune = knor.PruneMTI
			knoriCfg.Sched = knor.SchedNUMAAware
			rKnori, err := knor.Run(data, knoriCfg)
			if err != nil {
				panic(err)
			}
			sKnors := semPair(e, data, k, true)
			cells := []string{fmt.Sprintf("k=%d", k), fmtSec(simPerIter(rKnori)), fmtSec(sKnors)}
			for _, sys := range []frameworks.System{frameworks.H2O, frameworks.MLlib, frameworks.Turi} {
				// Scale the fixed driver dispatch with the dataset so
				// the full-scale compute-to-overhead ratio survives the
				// scale-down (documented in EXPERIMENTS.md).
				p := frameworks.ProfileOf(sys)
				p.TaskDispatch /= float64(e.friendScale)
				res, err := frameworks.RunWithProfile(data, base, sys, p)
				if err != nil {
					panic(err)
				}
				cells = append(cells, fmtSec(simPerIter(res)))
			}
			rows = append(rows, cells)
		}
		fmt.Printf("  Friendster-%d/%d (time/iter s, simulated; paper: knori >=10x faster)\n", d, e.friendScale)
		printTable([]string{"", "knori", "knors", "H2O", "MLlib", "Turi"}, rows)
	}
}

// fig9mem reproduces Figure 9c: peak memory at k=10.
func fig9mem(e env) {
	var rows [][]string
	for _, d := range []int{8, 32} {
		data := friendster(e, d, 0.05)
		base := knor.Config{
			K: 10, MaxIters: 3, Tol: -1, Init: knor.InitForgy, Seed: 1,
			Threads: 48, TaskSize: 512, Topo: paperTopo(),
		}
		knoriCfg := base
		knoriCfg.Prune = knor.PruneMTI
		rKnori, _ := knor.Run(data, knoriCfg)
		semCfg := knor.SEMConfig{Kmeans: knoriCfg, Devices: 24, PageCacheBytes: 1 << 21, RowCacheBytes: 1 << 21}
		rKnors, _ := knor.RunSEM(data, semCfg)
		cells := []string{fmt.Sprintf("Friendster-%d", d), fmtMB(rKnori.MemoryBytes), fmtMB(rKnors.MemoryBytes)}
		for _, sys := range []frameworks.System{frameworks.H2O, frameworks.MLlib, frameworks.Turi} {
			res, _ := frameworks.Run(data, base, sys)
			cells = append(cells, fmtMB(res.MemoryBytes))
		}
		rows = append(rows, cells)
	}
	fmt.Println("  (MB, k=10; paper: knors lowest, frameworks largest)")
	printTable([]string{"Dataset", "knori", "knors", "H2O", "MLlib", "Turi"}, rows)
}

// fig10 is the single-node scalability comparison on the scaled
// RM856M / RM1B / RU2B datasets, with a scaled memory budget deciding
// which routines "fit" (paper: Turi cannot run RM1B; only SEM runs RU2B).
func fig10(e env) {
	// The paper's machine has 1TB RAM; scale the budget with the data.
	budget := uint64(1e12) / uint64(e.scale)
	specs := []knor.Spec{
		{Name: "RM856M", Kind: knor.UniformMultivariate, N: 856_000_000 / e.scale, D: 16, Seed: 856},
		{Name: "RM1B", Kind: knor.UniformMultivariate, N: 1_100_000_000 / e.scale, D: 32, Seed: 1100},
		{Name: "RU2B", Kind: knor.UniformUnivariate, N: 2_100_000_000 / e.scale, D: 64, Seed: 2100},
	}
	if e.quick {
		specs = specs[:1]
	}
	fmt.Printf("  (k=10, scaled x1/%d, memory budget %.1f MB; '-' = exceeds budget / unsupported, as in the paper)\n",
		e.scale, float64(budget)/1e6)
	var timeRows, memRows [][]string
	for _, spec := range specs {
		data := knor.Generate(spec)
		base := knor.Config{
			K: 10, MaxIters: 6, Tol: -1, Init: knor.InitForgy, Seed: 1,
			Threads: 48, TaskSize: 1024, Topo: paperTopo(),
		}
		knoriCfg := base
		knoriCfg.Prune = knor.PruneMTI
		knoriCfg.Sched = knor.SchedNUMAAware
		tCell := []string{spec.Name}
		mCell := []string{spec.Name}
		appendRun := func(res *knor.Result, err error, mem uint64) {
			if err != nil {
				panic(err)
			}
			if mem > budget {
				tCell = append(tCell, "-")
				mCell = append(mCell, "-")
				return
			}
			tCell = append(tCell, fmtSec(simPerIter(res)))
			mCell = append(mCell, fmtMB(mem))
		}
		rKnori, err := knor.Run(data, knoriCfg)
		appendRun(rKnori, err, rKnori.MemoryBytes)
		semCfg := knor.SEMConfig{Kmeans: knoriCfg, Devices: 24, PageCacheBytes: 1 << 24, RowCacheBytes: 1 << 23}
		rKnors, err := knor.RunSEM(data, semCfg)
		appendRun(rKnors, err, rKnors.MemoryBytes)
		for _, sys := range []frameworks.System{frameworks.H2O, frameworks.MLlib, frameworks.Turi} {
			if sys == frameworks.Turi && spec.Name != "RM856M" {
				// Paper parity: Turi cannot run RM1B on the evaluation
				// machine (engine limitation, §8.8).
				tCell = append(tCell, "-")
				mCell = append(mCell, "-")
				continue
			}
			// The paper configures the frameworks to their minimum
			// memory for this experiment; fixed driver costs scale
			// with the dataset as in fig9.
			p := frameworks.ProfileOf(sys)
			p.TaskDispatch /= float64(e.scale)
			res, err := frameworks.RunWithProfile(data, base, sys, p)
			mem := frameworks.MinMemoryBytes(data.Rows(), data.Cols(), 10, base.Threads)
			appendRun(res, err, mem)
		}
		timeRows = append(timeRows, tCell)
		memRows = append(memRows, mCell)
	}
	fmt.Println("  Time/iter (s):")
	printTable([]string{"Dataset", "knori", "knors", "H2O", "MLlib", "Turi"}, timeRows)
	fmt.Println("  Memory (MB):")
	printTable([]string{"Dataset", "knori", "knors", "H2O", "MLlib", "Turi"}, memRows)
}
