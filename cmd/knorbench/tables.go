package main

import (
	"fmt"
	"time"

	"knor"
	"knor/internal/kmeans"
	"knor/internal/workload"
)

// friendster returns the Friendster-like dataset (top-d eigenvector
// stand-in) at the harness scale.
func friendster(e env, d int, spread float64) *knor.Matrix {
	n := 66_000_000 / e.friendScale
	if e.quick {
		n /= 4
	}
	return knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: d, Clusters: 10, Spread: spread, Seed: int64(d), Grouped: true,
	})
}

// table1 prints the asymptotic bounds next to measured state bytes.
func table1(env) {
	n, d, k, T := 1_000_000, 32, 100, 48
	rows := [][]string{
		{"Naive Lloyd's", "O(nd + kd)", fmtMB(uint64(n*d+k*d) * 8)},
		{"knors-, knors--", "O(n + Tkd)", fmtMB(kmeans.StateBytes(n, d, k, T, kmeans.PruneNone))},
		{"knors", "O(2n + Tkd + k^2)", fmtMB(kmeans.StateBytes(n, d, k, T, kmeans.PruneMTI))},
		{"knori-, knord-", "O(nd + Tkd)", fmtMB(uint64(n*d)*8 + kmeans.StateBytes(n, d, k, T, kmeans.PruneNone))},
		{"knori, knord", "O(nd + Tkd + n + k^2)", fmtMB(uint64(n*d)*8 + kmeans.StateBytes(n, d, k, T, kmeans.PruneMTI))},
		{"full Elkan TI (for contrast)", "O(nd + Tkd + nk)", fmtMB(uint64(n*d)*8 + kmeans.StateBytes(n, d, k, T, kmeans.PruneTI))},
	}
	fmt.Printf("  (measured at n=%d d=%d k=%d T=%d; MTI adds only the O(n+k^2) terms)\n", n, d, k, T)
	printTable([]string{"Module / Routine", "Memory complexity", "Measured state (MB)"}, rows)
}

// table2 prints the dataset catalogue at the harness scale.
func table2(e env) {
	var rows [][]string
	for _, s := range workload.Catalogue(e.scale) {
		rows = append(rows, []string{
			s.Name, s.Kind.String(), fmt.Sprintf("%d", s.N), fmt.Sprintf("%d", s.D),
			fmt.Sprintf("%.1f MB", float64(s.Bytes())/1e6),
		})
	}
	fmt.Printf("  (paper sizes divided by %d; shapes preserved)\n", e.scale)
	printTable([]string{"Data", "Matrix", "n", "d", "Size"}, rows)
}

// table3 measures *real wall time* per iteration for the serial
// implementation styles of Table 3 — a purely algorithmic comparison
// that holds on any host.
func table3(e env) {
	data := friendster(e, 8, 0.05)
	iters := 5
	if e.quick {
		iters = 2
	}
	cfg := knor.Config{K: 10, MaxIters: iters, Tol: -1, Init: knor.InitForgy, Seed: 1}
	timeIt := func(f func() error) float64 {
		start := time.Now()
		if err := f(); err != nil {
			panic(err)
		}
		return time.Since(start).Seconds() / float64(iters)
	}
	knori := timeIt(func() error { _, err := kmeans.RunSerial(data, cfg); return err })
	gemmChunk := timeIt(func() error { _, err := kmeans.RunGEMM(data, cfg, 4096, 1); return err })
	gemmFull := timeIt(func() error { _, err := kmeans.RunGEMM(data, cfg, data.Rows(), 1); return err })
	copying := timeIt(func() error { _, err := kmeans.RunIterativeCopying(data, cfg); return err })
	indirect := timeIt(func() error { _, err := kmeans.RunIterativeIndirect(data, cfg); return err })
	fmt.Printf("  (n=%d d=8 k=10, 1 thread, all distances computed — wall time)\n", data.Rows())
	printTable(
		[]string{"Implementation", "Style (paper analogue)", "Time/iter (ms)", "vs knori"},
		[][]string{
			{"knori (serial)", "fused iterative (knori)", fmtMs(knori), fmtX(1)},
			{"GEMM chunked", "GEMM (MATLAB)", fmtMs(gemmChunk), fmtX(gemmChunk / knori)},
			{"GEMM full-matrix", "GEMM (BLAS)", fmtMs(gemmFull), fmtX(gemmFull / knori)},
			{"iterative+copy", "iterative (R)", fmtMs(copying), fmtX(copying / knori)},
			{"iterative+indirect", "iterative (Scikit/MLpack)", fmtMs(indirect), fmtX(indirect / knori)},
		})
}
