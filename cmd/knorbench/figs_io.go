package main

import (
	"fmt"
	"os"
	"path/filepath"

	"knor"
)

// ioExp measures the real I/O subsystem (internal/store): knors
// streaming an actual on-disk store file, swept over page-cache size ×
// prefetch depth, next to the simulated backend swept over device
// count. The requested/read counters follow the same semantics on both
// stacks, so the file table is Figure 6's quantities on real hardware.
func ioExp(e env) {
	n := 200_000
	if e.quick {
		n = 40_000
	}
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: 16, Clusters: 10, Spread: 0.05, Seed: 7,
	})
	dir, err := os.MkdirTemp("", "knorbench-io")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "io.knor")
	if err := knor.SaveMatrixStore(data, path, 8); err != nil {
		panic(err)
	}

	baseCfg := func() knor.SEMConfig {
		return knor.SEMConfig{
			Kmeans: knor.Config{
				K: 10, MaxIters: 30, Tol: -1, Init: knor.InitForgy, Seed: 1,
				Threads: 8, TaskSize: 2048, Prune: knor.PruneMTI,
			},
			RowCacheBytes: 1 << 20,
		}
	}

	fmt.Printf("  (file backend: n=%d d=16 k=10, store file %s; wall-clock on this machine)\n", n, path)
	var rows [][]string
	var refSSE float64
	for _, cacheBytes := range []int{1 << 18, 1 << 20, 1 << 22} {
		for _, pf := range []int{0, 2, 8} {
			cfg := baseCfg()
			cfg.PageCacheBytes = cacheBytes
			cfg.PrefetchWorkers = pf
			res, err := knor.RunSEMFile(path, cfg)
			if err != nil {
				panic(err)
			}
			if refSSE == 0 {
				refSSE = res.SSE
			} else if res.SSE != refSSE {
				panic(fmt.Sprintf("io: SSE diverged across cache configs: %g vs %g", res.SSE, refSSE))
			}
			var req, read, hits uint64
			for _, st := range res.PerIter {
				req += st.BytesWanted
				read += st.BytesRead
				hits += st.RowCacheHits
			}
			rows = append(rows, []string{
				fmtMB(uint64(cacheBytes)), fmt.Sprintf("%d", pf),
				fmtMs(res.SimSeconds / float64(res.Iters)),
				fmtMB(req), fmtMB(read),
				fmt.Sprintf("%d", hits),
			})
		}
	}
	printTable([]string{"cacheMB", "prefetch", "ms/iter", "reqMB", "readMB", "rcHits"}, rows)

	fmt.Printf("\n  (simulated backend on the same dataset: device-count sweep, simulated seconds)\n")
	rows = rows[:0]
	for _, devices := range []int{1, 4, 8, 24} {
		cfg := baseCfg()
		cfg.PageCacheBytes = 1 << 20
		cfg.Devices = devices
		res, err := knor.RunSEM(data, cfg)
		if err != nil {
			panic(err)
		}
		var req, read uint64
		for _, st := range res.PerIter {
			req += st.BytesWanted
			read += st.BytesRead
		}
		if res.SSE != refSSE {
			panic("io: simulated backend SSE diverged from file backend")
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", devices),
			fmtMs(res.SimSeconds / float64(res.Iters)),
			fmtMB(req), fmtMB(read),
		})
	}
	printTable([]string{"devices", "sim ms/iter", "reqMB", "readMB"}, rows)
	fmt.Printf("  (file and simulated backends agree: SSE %.6g on every configuration)\n", refSSE)
}
