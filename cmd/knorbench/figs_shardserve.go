package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"knor/internal/matrix"
	"knor/internal/serve"
	"knor/internal/shardserve"
)

// shardServeExp extends the distributed story (Figures 11-12) to the
// online path: one model's k=100 centroids sharded across M simulated
// machines, /assign batches fanned out and merged by the
// recursive-doubling min-allreduce. The sweep reports simulated assign
// throughput, per-batch latency quantiles, and scaling efficiency
// against the single-machine baseline — per batch size and wire
// precision, since the fan-out replicates every query batch to all
// shards and its cost is pure bytes.
//
// The expected shape: compute-bound at small M (per-shard GEMM is
// k/M of the single-node kernel), shifting to fan-out-bandwidth-bound
// as M grows — the same compute→network crossover the trainers show in
// Figure 12, now on the serving path. The acceptance bar from the
// roadmap: >= 2x throughput at 4 machines on the 1M×16 k=100 loadtest
// shape.
func shardServeExp(e env) {
	const (
		k, d = 100, 16
	)
	nBatches := 1024 // ~1M rows at batch=1024, the loadtest scale
	if e.quick {
		nBatches = 128
	}
	rng := rand.New(rand.NewSource(7))
	mix := func(base int) []int {
		// Mixed sizes around the nominal batch (interactive tails plus
		// full flushes) so p50/p99 separate.
		b := make([]int, nBatches)
		for i := range b {
			switch rng.Intn(4) {
			case 0:
				b[i] = base / 4
			case 1:
				b[i] = base / 2
			default:
				b[i] = base
			}
		}
		return b
	}

	var rows [][]string
	for _, elem := range []int{8, 4} {
		for _, batch := range []int{256, 1024} {
			batches := mix(batch)
			base := 0.0
			for _, m := range []int{1, 2, 4, 8} {
				st, err := shardserve.SimulateShardServe(shardserve.SimConfig{
					Machines: m, K: k, D: d, ElemBytes: elem, Batches: batches,
				})
				if err != nil {
					panic(err)
				}
				if m == 1 {
					base = st.RowsPerSec
				}
				sp := st.RowsPerSec / base
				rows = append(rows, []string{
					fmt.Sprintf("%d", m),
					fmt.Sprintf("%d", batch),
					fmt.Sprintf("f%d", elem*8),
					fmt.Sprintf("%.2fM", st.RowsPerSec/1e6),
					fmtMs(st.P50), fmtMs(st.P95), fmtMs(st.P99),
					fmtX(sp),
					fmt.Sprintf("%.0f%%", 100*sp/float64(m)),
				})
			}
		}
	}
	fmt.Printf("  k=%d d=%d, %d mixed-size batches per cell, closed loop window 4\n\n", k, d, nBatches)
	printTable(
		[]string{"machines", "batch", "wire", "rows/s", "p50-ms", "p95-ms", "p99-ms", "speedup", "eff"},
		rows)
	fmt.Println()
	shardParityCheck()
}

// shardParityCheck runs the REAL fan-out assigner against the
// single-node batcher on a tie-heavy model and prints whether the
// answers are bit-identical — the tentpole contract, verified in the
// harness output rather than only in the test suite.
func shardParityCheck() {
	const (
		k, d, nq = 100, 16, 256
	)
	rng := rand.New(rand.NewSource(11))
	cents := matrix.NewDense(k, d)
	for i := range cents.Data {
		cents.Data[i] = rng.NormFloat64()
	}
	copy(cents.Row(k-1), cents.Row(0)) // duplicate rows force argmin ties
	copy(cents.Row(k/2), cents.Row(1))
	queries := matrix.NewDense(nq, d)
	for i := 0; i < nq; i++ {
		if i%8 == 1 {
			copy(queries.Row(i), cents.Row(0))
			continue
		}
		for j := 0; j < d; j++ {
			queries.Set(i, j, rng.NormFloat64())
		}
	}

	reg := serve.NewRegistry(1)
	if _, err := reg.Publish("m", cents); err != nil {
		panic(err)
	}
	for _, elem := range []int{64, 32} {
		single := newParityAssigner(reg, elem)
		identical := true
		var want []serve.Assignment
		var err error
		if want, err = single.AssignRows("m", queries); err != nil {
			panic(err)
		}
		for _, machines := range []int{2, 3, 5} {
			sr := shardserve.NewShardRegistry(machines)
			if err := sr.Attach(reg); err != nil {
				panic(err)
			}
			sharded := newParityShardAssigner(sr, elem)
			got, err := sharded.AssignRows("m", queries)
			if err != nil {
				panic(err)
			}
			for i := range want {
				if got[i].Cluster != want[i].Cluster ||
					math.Float64bits(got[i].SqDist) != math.Float64bits(want[i].SqDist) {
					identical = false
				}
			}
			sharded.Close()
		}
		single.Close()
		fmt.Printf("  parity f%d: sharded assigner bit-identical to single node (M in 2,3,5, %d queries, duplicate-centroid ties): %v\n",
			elem, nq, identical)
	}
}

func newParityAssigner(reg *serve.Registry, elem int) serve.Assigner {
	opts := serve.BatcherOptions{MaxWait: time.Microsecond}
	if elem == 32 {
		return serve.NewBatcherOf[float32](reg, opts)
	}
	return serve.NewBatcherOf[float64](reg, opts)
}

func newParityShardAssigner(sr *shardserve.ShardRegistry, elem int) serve.Assigner {
	opts := serve.BatcherOptions{MaxWait: time.Microsecond}
	if elem == 32 {
		return shardserve.NewAssignerOf[float32](sr, opts)
	}
	return shardserve.NewAssignerOf[float64](sr, opts)
}
