package main

// Kernels experiment: GFLOP/s of the Dgemm microkernels at both
// element widths with the assembly path on and off (same binary — the
// dispatch switch flips at runtime), plus the int8 quantized
// centroid-scan kernel's throughput. With -json the measurements also
// land in a machine-readable file (the bench-kernels Makefile target
// writes BENCH_kernels.json), including the float32 asm/go speedup on
// the acceptance shape.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"knor/internal/blas"
	"knor/internal/matrix"
	"knor/internal/workload"
)

// kernelResult is one GEMM measurement in the JSON report.
type kernelResult struct {
	Dtype  string  `json:"dtype"`  // float32 | float64
	Kernel string  `json:"kernel"` // go | avx2fma | neon
	M      int     `json:"m"`
	D      int     `json:"d"`
	K      int     `json:"k"`
	GFLOPS float64 `json:"gflops"`
}

// quantResult is one int8 scan measurement in the JSON report.
type quantResult struct {
	M          int     `json:"m"`
	D          int     `json:"d"`
	K          int     `json:"k"`
	GOPS       float64 `json:"gops"` // 2*m*k*d int ops per second
	RowsPerSec float64 `json:"rows_per_sec"`
}

// kernelsReport is the BENCH_kernels.json schema.
type kernelsReport struct {
	// Kernel is the assembly flavour compiled in ("go" when the binary
	// was built with -tags noasm or on an unsupported CPU).
	Kernel  string `json:"kernel"`
	Threads int    `json:"threads"`
	// SpeedupF32 is asm/go GFLOP/s on the acceptance shape (1M-row
	// PairwiseSqDist-shaped GEMM, d=16, k=100); 1.0 without assembly.
	SpeedupF32 float64        `json:"speedup_f32"`
	Gemm       []kernelResult `json:"gemm"`
	Quantized  []quantResult  `json:"quantized"`
}

// gemmShapes: the acceptance shape first (1M x 16 by k=100 — the
// PairwiseSqDist shape serving flushes run), then a wider and a deeper
// panel to exercise the tail paths.
var gemmShapes = []struct{ m, d, k int }{
	{1_000_000, 16, 100},
	{200_000, 64, 64},
	{100_000, 100, 31},
}

func kernelsExp(e env) {
	threads := runtime.GOMAXPROCS(0)
	reps := 3
	shapes := gemmShapes
	if e.quick {
		reps = 1
		shapes = append([]struct{ m, d, k int }{}, shapes...)
		for i := range shapes {
			shapes[i].m /= 10
		}
	}
	report := kernelsReport{Kernel: blas.KernelName(), Threads: threads}
	fmt.Printf("  kernel flavour: %s (asm supported: %v), %d threads\n",
		blas.KernelName(), blas.AsmSupported(), threads)

	var rows [][]string
	for _, sh := range shapes {
		spec := workload.Spec{Kind: workload.UniformMultivariate, N: sh.m + sh.k, D: sh.d, Seed: int64(sh.d)}
		all := workload.Generate(spec)
		all32 := matrix.Convert[float32](all)
		a64, c64 := all.Data[:sh.m*sh.d], all.Data[sh.m*sh.d:]
		a32, c32 := all32.Data[:sh.m*sh.d], all32.Data[sh.m*sh.d:]
		out64 := make([]float64, sh.m*sh.k)
		out32 := make([]float32, sh.m*sh.k)
		flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.d)

		perKernel := map[string][2]float64{} // kernel -> {gf32, gf64}
		for _, asm := range []bool{true, false} {
			if asm && !blas.AsmSupported() {
				continue
			}
			prev := blas.SetAsmEnabled(asm)
			name := blas.KernelName()
			if !asm {
				name = "go"
			}
			t32 := timeReps(reps, func() { blas.Dgemm[float32](-2, a32, sh.m, sh.d, c32, sh.k, 0, out32, threads) })
			t64 := timeReps(reps, func() { blas.Dgemm[float64](-2, a64, sh.m, sh.d, c64, sh.k, 0, out64, threads) })
			blas.SetAsmEnabled(prev)
			gf32, gf64 := flops/t32/1e9, flops/t64/1e9
			perKernel[name] = [2]float64{gf32, gf64}
			report.Gemm = append(report.Gemm,
				kernelResult{Dtype: "float32", Kernel: name, M: sh.m, D: sh.d, K: sh.k, GFLOPS: gf32},
				kernelResult{Dtype: "float64", Kernel: name, M: sh.m, D: sh.d, K: sh.k, GFLOPS: gf64},
			)
			rows = append(rows, []string{
				fmt.Sprintf("%dx%d k=%d", sh.m, sh.d, sh.k), name,
				fmt.Sprintf("%.2f", gf32), fmt.Sprintf("%.2f", gf64),
			})
		}
		if sh == shapes[0] {
			report.SpeedupF32 = 1
			if asmGF, ok := perKernel[blas.KernelName()]; ok && blas.AsmSupported() {
				report.SpeedupF32 = asmGF[0] / perKernel["go"][0]
			}
		}

		// Quantized scan on the same shape: quantize once, time the
		// int8 dot sweep (what a quantized flush runs per batch).
		q8c := blas.QuantizeRows(c32, sh.k, sh.d)
		q8a := blas.QuantizeRows(a32, sh.m, sh.d)
		dots := make([]int32, sh.m*sh.k)
		tq := timeReps(reps, func() { blas.Gemm8(q8a.Data, sh.m, sh.d, q8c.Data, sh.k, dots, threads) })
		report.Quantized = append(report.Quantized, quantResult{
			M: sh.m, D: sh.d, K: sh.k,
			GOPS:       flops / tq / 1e9,
			RowsPerSec: float64(sh.m) / tq,
		})
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d k=%d", sh.m, sh.d, sh.k), "int8",
			fmt.Sprintf("%.2f", flops/tq/1e9), "-",
		})
	}
	printTable([]string{"shape", "kernel", "f32 GF/s", "f64 GF/s"}, rows)
	if blas.AsmSupported() {
		fmt.Printf("  float32 asm/go speedup on %dx%d k=%d: %.2fx\n",
			shapes[0].m, shapes[0].d, shapes[0].k, report.SpeedupF32)
	}

	if e.jsonPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "knorbench: marshal kernels report:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(e.jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "knorbench: write kernels report:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", e.jsonPath)
	}
}
