// Command knorbench regenerates every table and figure of the paper's
// evaluation (Section 8) against the simulated substrates, printing
// aligned text tables. EXPERIMENTS.md records a captured run next to
// the paper's numbers.
//
// Usage:
//
//	knorbench -exp all
//	knorbench -exp fig4,fig5 -scale 2000
//
// Experiments: table1 table2 table3 fig4 fig5 fig6a fig6b fig7 fig8
// fig8mem fig9 fig9mem fig10 fig11 fig12 fig13 ablation serve precision
// io shardserve
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one reproducible artifact.
type experiment struct {
	name  string
	title string
	run   func(e env)
}

// env carries shared harness parameters.
type env struct {
	scale       int // divisor for the billion-row datasets
	friendScale int // divisor for the Friendster datasets
	quick       bool
	// jsonPath, when set, makes experiments that support it (kernels)
	// write a machine-readable report there as well.
	jsonPath string
}

var experiments = []experiment{
	{"table1", "Table 1: asymptotic memory complexity of knor routines", table1},
	{"table2", "Table 2: datasets under evaluation (scale-reduced)", table2},
	{"table3", "Table 3: serial per-iteration time by implementation style", table3},
	{"fig4", "Figure 4: speedup, NUMA-aware knori vs NUMA-oblivious", fig4},
	{"fig5", "Figure 5: partitioned NUMA-aware scheduler vs FIFO vs static", fig5},
	{"fig6a", "Figure 6a: per-iteration bytes requested vs read, row cache on/off", fig6a},
	{"fig6b", "Figure 6b: total bytes requested vs read: knors / knors- / knors--", fig6b},
	{"fig7", "Figure 7: row-cache hits vs active points per iteration", fig7},
	{"fig8", "Figure 8a/b: MTI on/off time per iteration (knori, knors)", fig8},
	{"fig8mem", "Figure 8c: memory, optimized vs vanilla knor routines", fig8mem},
	{"fig9", "Figure 9a/b: knori & knors vs MLlib / H2O / Turi", fig9},
	{"fig9mem", "Figure 9c: peak memory vs frameworks", fig9mem},
	{"fig10", "Figure 10: scalability on RM856M / RM1B / RU2B (scaled)", fig10},
	{"fig11", "Figure 11: distributed speedup, knord vs MPI vs MLlib-EC2", fig11},
	{"fig12", "Figure 12: distributed time per iteration", fig12},
	{"fig13", "Figure 13: knors single node vs distributed packages", fig13},
	{"ablation", "Ablations: task size, I_cache, page size, clause mix, TI vs MTI", ablation},
	{"serve", "Serving: simulated /assign throughput vs placement x scheduler", serveExp},
	{"precision", "Precision: float32 vs float64 kernels, training and serving", precisionExp},
	{"io", "Real I/O: knors on a store file, page cache x prefetch x devices", ioExp},
	{"shardserve", "Distributed serving: centroid-sharded /assign, machines x batch x wire", shardServeExp},
	{"failover", "Failover: replicated shard serving under a seeded kill schedule, R x kill rate", failoverExp},
	{"kernels", "Kernels: SIMD vs pure-Go GEMM GFLOP/s, int8 quantized scan throughput", kernelsExp},
	{"net", "Transport: ring allgather, simulated cost model vs real TCP on loopback", netExp},
	{"trace", "Observability: sampled tracing + federation scrape overhead on the serving shape", traceExp},
}

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		scale   = flag.Int("scale", 4000, "row divisor for RM/RU datasets")
		fscale  = flag.Int("fscale", 1000, "row divisor for Friendster datasets")
		quick   = flag.Bool("quick", false, "smaller sweeps for smoke testing")
		jsonOut = flag.String("json", "", "also write a machine-readable report to this file (kernels experiment)")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-9s %s\n", e.name, e.title)
		}
		return
	}
	want := map[string]bool{}
	all := *expFlag == "all"
	for _, n := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(n)] = true
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for n := range want {
		if n != "all" && n != "" && !known[n] {
			fmt.Fprintf(os.Stderr, "knorbench: unknown experiment %q (use -list)\n", n)
			os.Exit(2)
		}
	}
	e := env{scale: *scale, friendScale: *fscale, quick: *quick, jsonPath: *jsonOut}
	ran := 0
	for _, ex := range experiments {
		if !all && !want[ex.name] {
			continue
		}
		fmt.Printf("\n=== %s — %s ===\n", ex.name, ex.title)
		ex.run(e)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "knorbench: nothing to run")
		os.Exit(2)
	}
}

// printTable renders rows of cells with aligned columns.
func printTable(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(header)
	dashes := make([]string, len(header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, r := range rows {
		line(r)
	}
}

func fmtMB(b uint64) string    { return fmt.Sprintf("%.1f", float64(b)/1e6) }
func fmtMs(s float64) string   { return fmt.Sprintf("%.3f", s*1e3) }
func fmtSec(s float64) string  { return fmt.Sprintf("%.4g", s) }
func fmtX(s float64) string    { return fmt.Sprintf("%.2fx", s) }
func fmtGB(b uint64) string    { return fmt.Sprintf("%.3f", float64(b)/1e9) }
func fmtCount(c uint64) string { return fmt.Sprintf("%d", c) }

// sortedKeys returns map keys in sorted order (stable output).
func sortedKeys[K ~int, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
