package main

import (
	"fmt"

	"knor"
)

// ablation runs the design-choice sweeps DESIGN.md calls out, beyond
// the paper's own figures.
func ablation(e env) {
	ablTaskSize(e)
	ablICache(e)
	ablPageSize(e)
	ablClauseMix(e)
	ablTIvsMTI(e)
	ablInit(e)
}

// ablInit compares initialisation methods on solution quality and
// convergence speed.
func ablInit(e env) {
	data := friendster(e, 8, 0.05)
	fmt.Println("  [init] seeding method vs quality (k=10, MTI, best over 5 seeds)")
	var rows [][]string
	for _, in := range []struct {
		name string
		init knor.Config
	}{
		{"forgy", knor.Config{Init: knor.InitForgy}},
		{"random-partition", knor.Config{Init: knor.InitRandomPartition}},
		{"kmeans++", knor.Config{Init: knor.InitKMeansPP}},
	} {
		bestSSE, sumIters := 0.0, 0
		for seed := int64(1); seed <= 5; seed++ {
			cfg := knor.Config{
				K: 10, MaxIters: 100, Init: in.init.Init, Seed: seed,
				Threads: 8, TaskSize: 1024, Prune: knor.PruneMTI,
			}
			res, err := knor.Run(data, cfg)
			if err != nil {
				panic(err)
			}
			if seed == 1 || res.SSE < bestSSE {
				bestSSE = res.SSE
			}
			sumIters += res.Iters
		}
		rows = append(rows, []string{in.name, fmt.Sprintf("%.6g", bestSSE), fmt.Sprintf("%.1f", float64(sumIters)/5)})
	}
	printTable([]string{"Init", "Best SSE", "Mean iters"}, rows)
}

// ablTaskSize sweeps the scheduler task granularity (the paper fixes
// 8192 after the same experiment).
func ablTaskSize(e env) {
	data := friendster(e, 8, 0.05)
	fmt.Println("  [task size] knori time/iter (s) vs task granularity (k=50, MTI, 48 threads)")
	var rows [][]string
	for _, ts := range []int{128, 512, 2048, 8192, 32768} {
		cfg := knor.Config{
			K: 50, MaxIters: 8, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
			Threads: 48, TaskSize: ts, Topo: paperTopo(),
			Prune: knor.PruneMTI, Sched: knor.SchedNUMAAware,
		}
		res, err := knor.Run(data, cfg)
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", ts), fmtSec(simPerIter(res))})
	}
	printTable([]string{"Task rows", "Time/iter"}, rows)
}

// ablICache sweeps the row-cache refresh interval.
func ablICache(e env) {
	data := semSlowData(e)
	fmt.Println("  [I_cache] knors total SSD reads vs row-cache refresh interval")
	var rows [][]string
	for _, ic := range []int{1, 2, 5, 10, 20} {
		cfg := semIOCfg(1<<23, true)
		cfg.ICache = ic
		cfg.Kmeans.MaxIters = 60
		res, err := knor.RunSEM(data, cfg)
		if err != nil {
			panic(err)
		}
		var read, hits uint64
		for _, st := range res.PerIter {
			read += st.BytesRead
			hits += st.RowCacheHits
		}
		rows = append(rows, []string{fmt.Sprintf("%d", ic), fmtGB(read), fmt.Sprintf("%d", hits)})
	}
	printTable([]string{"I_cache", "Read (GB)", "RC hits"}, rows)
}

// ablPageSize sweeps the SAFS page size (the paper picks 4KB).
func ablPageSize(e env) {
	data := semSlowData(e)
	fmt.Println("  [page size] knors- SSD reads vs page size (fragmentation vs request count)")
	var rows [][]string
	for _, ps := range []int{1024, 4096, 16384, 65536} {
		cfg := semIOCfg(0, true)
		cfg.PageSize = ps
		cfg.Kmeans.MaxIters = 30
		res, err := knor.RunSEM(data, cfg)
		if err != nil {
			panic(err)
		}
		var read uint64
		for _, st := range res.PerIter {
			read += st.BytesRead
		}
		rows = append(rows, []string{fmt.Sprintf("%d", ps), fmtGB(read), fmtSec(simPerIter(res))})
	}
	printTable([]string{"Page bytes", "Read (GB)", "Time/iter"}, rows)
}

// ablClauseMix reports how much each MTI clause contributes.
func ablClauseMix(e env) {
	data := friendster(e, 8, 0.05)
	cfg := knor.Config{
		K: 20, MaxIters: 15, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
		Threads: 8, TaskSize: 1024, Prune: knor.PruneMTI,
	}
	res, err := knor.Run(data, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("  [MTI clauses] per-iteration pruning breakdown (rows for C1; candidate distances for C2/C3)")
	var rows [][]string
	for i := 0; i < len(res.PerIter); i += 3 {
		st := res.PerIter[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", st.Iter),
			fmt.Sprintf("%d", st.PrunedC1),
			fmt.Sprintf("%d", st.PrunedC2),
			fmt.Sprintf("%d", st.PrunedC3),
			fmt.Sprintf("%d", st.DistCalcs),
		})
	}
	printTable([]string{"Iter", "C1 rows", "C2 cands", "C3 cands", "Exact dists"}, rows)
}

// ablTIvsMTI quantifies the MTI trade-off: distances computed vs memory.
func ablTIvsMTI(e env) {
	data := friendster(e, 8, 0.05)
	fmt.Println("  [TI vs MTI vs Yinyang] pruning power vs bound-state memory (k=50)")
	var rows [][]string
	for _, pr := range []struct {
		name string
		p    knor.Config
	}{
		{"none", knor.Config{Prune: knor.PruneNone}},
		{"MTI", knor.Config{Prune: knor.PruneMTI}},
		{"yinyang", knor.Config{Prune: knor.PruneYinyang}},
		{"full TI", knor.Config{Prune: knor.PruneTI}},
	} {
		cfg := knor.Config{
			K: 50, MaxIters: 12, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
			Threads: 8, TaskSize: 1024, Prune: pr.p.Prune,
		}
		res, err := knor.Run(data, cfg)
		if err != nil {
			panic(err)
		}
		var dists uint64
		for _, st := range res.PerIter {
			dists += st.DistCalcs
		}
		rows = append(rows, []string{pr.name, fmt.Sprintf("%d", dists), fmtMB(res.MemoryBytes), fmtSec(simPerIter(res))})
	}
	printTable([]string{"Pruning", "Exact dists", "Memory (MB)", "Time/iter"}, rows)
}
