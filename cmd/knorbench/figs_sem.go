package main

import (
	"fmt"

	"knor"
)

// semSlowData builds the Friendster-32-like dataset used by the I/O
// figures; runs are forced to 100 iterations (Tol < 0) so the row
// cache's lazy refresh schedule is visible as in the paper's Figures 6
// and 7.
func semSlowData(e env) *knor.Matrix {
	n := 66_000_000 / e.friendScale
	if e.quick {
		n /= 4
	}
	return knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: 32, Clusters: 10, Spread: 0.05, Seed: 32, Grouped: true,
	})
}

func semIOCfg(rowCacheBytes int, prune bool) knor.SEMConfig {
	cfg := knor.SEMConfig{
		Kmeans: knor.Config{
			K: 10, MaxIters: 100, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
			Threads: 48, TaskSize: 512,
		},
		Devices:        24,
		PageCacheBytes: 1 << 20, // scaled stand-in for the paper's 1GB
		RowCacheBytes:  rowCacheBytes,
	}
	if prune {
		cfg.Kmeans.Prune = knor.PruneMTI
	}
	return cfg
}

// fig6a prints the per-iteration requested/read series with and
// without the row cache (MTI on in both, as in the paper).
func fig6a(e env) {
	data := semSlowData(e)
	rcBytes := 1 << 24 // scaled stand-in for the paper's 512MB
	withRC, err := knor.RunSEM(data, semIOCfg(rcBytes, true))
	if err != nil {
		panic(err)
	}
	noRC, err := knor.RunSEM(data, semIOCfg(0, true))
	if err != nil {
		panic(err)
	}
	fmt.Printf("  (Friendster-32-like n=%d, k=10, MTI on; GB per iteration, every 5th iteration)\n", data.Rows())
	var rows [][]string
	maxIters := len(withRC.PerIter)
	if len(noRC.PerIter) < maxIters {
		maxIters = len(noRC.PerIter)
	}
	for i := 0; i < maxIters; i += 5 {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmtGB(noRC.PerIter[i].BytesWanted), fmtGB(noRC.PerIter[i].BytesRead),
			fmtGB(withRC.PerIter[i].BytesWanted), fmtGB(withRC.PerIter[i].BytesRead),
		})
	}
	printTable([]string{"Iter", "NoRC req(GB)", "NoRC read(GB)", "knors req(GB)", "knors read(GB)"}, rows)
}

// fig6b prints total requested vs read for the three knors variants.
func fig6b(e env) {
	data := semSlowData(e)
	variants := []struct {
		name string
		cfg  knor.SEMConfig
	}{
		{"knors (MTI+RC)", semIOCfg(1<<24, true)},
		{"knors- (MTI only)", semIOCfg(0, true)},
		{"knors-- (neither)", semIOCfg(0, false)},
	}
	var rows [][]string
	for _, v := range variants {
		res, err := knor.RunSEM(data, v.cfg)
		if err != nil {
			panic(err)
		}
		var req, read uint64
		for _, st := range res.PerIter {
			req += st.BytesWanted
			read += st.BytesRead
		}
		rows = append(rows, []string{v.name, fmtGB(req), fmtGB(read), fmt.Sprintf("%d", res.Iters)})
	}
	fmt.Println("  (totals over the run; paper: without pruning all data requested and read)")
	printTable([]string{"Variant", "Requested (GB)", "Read from SSD (GB)", "Iters"}, rows)
}

// fig7 prints row-cache hits against the attainable maximum (active
// points) per iteration.
func fig7(e env) {
	data := semSlowData(e)
	res, err := knor.RunSEM(data, semIOCfg(1<<24, true))
	if err != nil {
		panic(err)
	}
	fmt.Printf("  (Friendster-32-like n=%d; paper: hit rate approaches 100%% as activation stabilises)\n", data.Rows())
	var rows [][]string
	for i := 0; i < len(res.PerIter); i += 5 {
		st := res.PerIter[i]
		rate := 0.0
		if st.ActiveRows > 0 {
			rate = float64(st.RowCacheHits) / float64(st.ActiveRows) * 100
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", st.RowCacheHits),
			fmt.Sprintf("%d", st.ActiveRows),
			fmt.Sprintf("%.1f%%", rate),
		})
	}
	printTable([]string{"Iter", "Cache hits", "Active points", "Hit rate"}, rows)
}
