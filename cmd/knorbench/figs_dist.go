package main

import (
	"fmt"

	"knor"
	"knor/internal/dist"
)

// ec2Topo mirrors the paper's c4.8xlarge workers: 2 sockets x 9 cores.
func ec2Topo() knor.Topology { return knor.Topology{Nodes: 2, CoresPerNode: 9} }

// distBase builds the per-machine config. scaleDiv scales the *fixed*
// time constants (network latency, barrier cost) with the dataset so
// full-scale compute-to-latency ratios survive the scale-down; costs
// proportional to bytes or rows already scale with the data.
func distBase(k, threads, scaleDiv int) knor.Config {
	model := knor.DefaultCostModel()
	model.NetLatency /= float64(scaleDiv)
	model.BarrierCost /= float64(scaleDiv)
	return knor.Config{
		K: k, MaxIters: 6, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
		Threads: threads, TaskSize: 512, Topo: ec2Topo(), Model: model,
		Prune: knor.PruneMTI, Sched: knor.SchedNUMAAware,
	}
}

// runDist runs a distributed configuration. The MLlib mode's per-task
// dispatch is 1ms per full-scale 8192-row partition; with the harness's
// 512-row tasks that is 1ms×512/8192 per task, and because task count
// scales with n no further scale correction is needed.
func runDist(data *knor.Matrix, machines int, mode dist.Mode, cfg knor.Config) *knor.Result {
	dcfg := knor.DistConfig{Machines: machines, Mode: mode, Kmeans: cfg}
	if mode == knor.ModeMLlib {
		dcfg.Kmeans.Prune = knor.PruneNone
		dcfg.MLlibTaskOverhead = 1e-3 * float64(cfg.TaskSize) / 8192
	}
	res, err := knor.RunDistributed(data, dcfg)
	if err != nil {
		panic(err)
	}
	return res
}

// fig11 reproduces the distributed speedup curves: relative performance
// vs total thread count, normalised to each implementation's smallest
// configuration.
func fig11(e env) {
	// Distributed scaling needs enough per-machine work that the
	// collectives' latency doesn't dominate; Friendster runs at a 10x
	// larger scale than the single-node figures.
	fScale := e.friendScale / 10
	if fScale < 1 {
		fScale = 1
	}
	datasets := []struct {
		name  string
		data  *knor.Matrix
		scale int
	}{
		{"Friendster-32", knor.Generate(knor.Spec{
			Kind: knor.NaturalClusters, N: 66_000_000 / fScale, D: 32,
			Clusters: 10, Spread: 0.05, Seed: 32, Grouped: true}), fScale},
		{"RM1B-scaled", knor.Generate(knor.Spec{Kind: knor.UniformMultivariate, N: 1_100_000_000 / e.scale, D: 32, Seed: 1100}), e.scale},
	}
	if e.quick {
		datasets = datasets[1:]
	}
	machineSweep := []int{2, 4, 8} // 18 threads each: 36/72/144 threads
	for _, ds := range datasets {
		var base [3]float64
		var rows [][]string
		for i, m := range machineSweep {
			cells := []string{fmt.Sprintf("%d (%d machines)", m*18, m)}
			for j, mode := range []dist.Mode{knor.ModeKnord, knor.ModeMPI, knor.ModeMLlib} {
				res := runDist(ds.data, m, mode, distBase(10, 18, ds.scale))
				t := simPerIter(res)
				if i == 0 {
					base[j] = t
				}
				cells = append(cells, fmt.Sprintf("%.2f", base[j]/t*float64(machineSweep[0])))
			}
			cells = append(cells, fmt.Sprintf("%d", m))
			rows = append(rows, cells)
		}
		fmt.Printf("  %s (relative performance, normalised so the smallest config = %d)\n", ds.name, machineSweep[0])
		printTable([]string{"Threads", "knord", "MPI", "MLlib-EC2", "Linear(ideal)"}, rows)
	}
}

// fig12 reproduces the distributed time-per-iteration bars.
func fig12(e env) {
	type ds struct {
		name     string
		data     *knor.Matrix
		k        int
		scale    int
		machines []int
	}
	sets := []ds{
		{"Friendster-8", friendster(e, 8, 0.05), 100, e.friendScale, []int{3, 4}},
		{"Friendster-32", friendster(e, 32, 0.05), 100, e.friendScale, []int{3, 6, 7}},
		{"RM856M-scaled", knor.Generate(knor.Spec{Kind: knor.UniformMultivariate, N: 856_000_000 / e.scale, D: 16, Seed: 856}), 10, e.scale, []int{4, 8, 16}},
		{"RM1B-scaled", knor.Generate(knor.Spec{Kind: knor.UniformMultivariate, N: 1_100_000_000 / e.scale, D: 32, Seed: 1100}), 10, e.scale, []int{8, 16}},
	}
	if e.quick {
		sets = sets[:1]
	}
	for _, s := range sets {
		var rows [][]string
		for _, m := range s.machines {
			cfg := distBase(s.k, 18, s.scale)
			knord := runDist(s.data, m, knor.ModeKnord, cfg)
			mpi := runDist(s.data, m, knor.ModeMPI, cfg)
			noPrune := cfg
			noPrune.Prune = knor.PruneNone
			knordMinus := runDist(s.data, m, knor.ModeKnord, noPrune)
			mpiMinus := runDist(s.data, m, knor.ModeMPI, noPrune)
			mllib := runDist(s.data, m, knor.ModeMLlib, cfg)
			rows = append(rows, []string{
				fmt.Sprintf("%d", m*18),
				fmtSec(simPerIter(knord)), fmtSec(simPerIter(mpi)),
				fmtSec(simPerIter(knordMinus)), fmtSec(simPerIter(mpiMinus)),
				fmtSec(simPerIter(mllib)),
			})
		}
		fmt.Printf("  %s, k=%d (time/iter s; paper: knord < MPI, MLlib >=5x behind)\n", s.name, s.k)
		printTable([]string{"Cores", "knord", "MPI", "knord-", "MPI-", "MLlib-EC2"}, rows)
	}
}

// fig13 compares single-node knors against the distributed packages.
func fig13(e env) {
	type ds struct {
		name     string
		data     *knor.Matrix
		scale    int
		machines int
	}
	sets := []ds{
		{"Friendster-8", friendster(e, 8, 0.05), e.friendScale, 3},
		{"Friendster-32", friendster(e, 32, 0.05), e.friendScale, 3},
		{"RM856-scaled", knor.Generate(knor.Spec{Kind: knor.UniformMultivariate, N: 856_000_000 / e.scale, D: 16, Seed: 856}), e.scale, 3},
		{"RU1B-scaled", knor.Generate(knor.Spec{Kind: knor.UniformUnivariate, N: 1_100_000_000 / e.scale, D: 64, Seed: 2100}), e.scale, 8},
	}
	if e.quick {
		sets = sets[:2]
	}
	var rows [][]string
	for _, s := range sets {
		// knors on one fat node (i3.16xlarge-like: 32 cores, 8 SSDs).
		semCfg := knor.SEMConfig{
			Kmeans: knor.Config{
				K: 10, MaxIters: 6, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
				Threads: 48, TaskSize: 512, Prune: knor.PruneMTI,
			},
			Devices: 8, PageCacheBytes: 1 << 22, RowCacheBytes: 1 << 22,
		}
		knors, err := knor.RunSEM(s.data, semCfg)
		if err != nil {
			panic(err)
		}
		cfg := distBase(10, 18, s.scale)
		knord := runDist(s.data, s.machines, knor.ModeKnord, cfg)
		mpi := runDist(s.data, s.machines, knor.ModeMPI, cfg)
		mllib := runDist(s.data, s.machines, knor.ModeMLlib, cfg)
		rows = append(rows, []string{
			s.name,
			fmtSec(simPerIter(knors)),
			fmtSec(simPerIter(mllib)),
			fmtSec(simPerIter(knord)),
			fmtSec(simPerIter(mpi)),
		})
	}
	fmt.Println("  (knors: 1 node w/ 8 SSDs; others: cluster; paper: knors often beats MLlib's cluster)")
	printTable([]string{"Dataset", "knors(1 node)", "MLlib-EC2", "knord", "MPI"}, rows)
}
