// Command knors runs the semi-external-memory k-means module: O(n)
// state in memory, row data streamed from the simulated SSD array,
// with the partitioned lazily-updated row cache and optional
// checkpointing.
//
// Usage:
//
//	knors -data friendster32.knor -k 10 -rowcache 512MB-equivalent bytes
//	knors -gen-n 200000 -gen-d 32 -k 10 -rowcache 4194304 -ckpt state.bin -v
package main

import (
	"flag"
	"fmt"
	"os"

	"knor"
	"knor/internal/cliutil"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "input matrix file (empty: generate)")
		genN      = flag.Int("gen-n", 200000, "rows to generate when -data is empty")
		genD      = flag.Int("gen-d", 32, "dims to generate when -data is empty")
		genSeed   = flag.Int64("gen-seed", 1, "generator seed")
		k         = flag.Int("k", 10, "clusters")
		iters     = flag.Int("iters", 100, "max iterations")
		threads   = flag.Int("threads", 8, "worker threads")
		taskSize  = flag.Int("tasksize", 8192, "rows per task")
		prune     = flag.String("prune", "mti", "pruning: none | mti | ti")
		initM     = flag.String("init", "forgy", "init: forgy | random | kmeans++")
		devices   = flag.Int("devices", 24, "SSD array width")
		pageCache = flag.Int("pagecache", 1<<26, "page cache bytes")
		rowCache  = flag.Int("rowcache", 1<<25, "row cache bytes (0 disables: knors-)")
		icache    = flag.Int("icache", 5, "row cache update interval")
		ckpt      = flag.String("ckpt", "", "checkpoint file (enables checkpointing)")
		ckptEvery = flag.Int("ckpt-every", 5, "checkpoint interval in iterations")
		resume    = flag.Bool("resume", false, "restore from -ckpt before running")
		seed      = flag.Int64("seed", 1, "algorithm seed")
		verbose   = flag.Bool("v", false, "print per-iteration I/O stats")
	)
	flag.Parse()

	var data *knor.Matrix
	var err error
	if *dataPath != "" {
		data, err = knor.LoadMatrix(*dataPath)
	} else {
		data = knor.Generate(knor.Spec{
			Kind: knor.NaturalClusters, N: *genN, D: *genD, Clusters: 10, Spread: 0.05, Seed: *genSeed,
		})
	}
	if err != nil {
		fatal(err)
	}

	kcfg := knor.Config{
		K: *k, MaxIters: *iters, Seed: *seed,
		Threads: *threads, TaskSize: *taskSize,
	}
	if kcfg.Prune, err = cliutil.ParsePrune(*prune); err != nil {
		fatal(err)
	}
	if kcfg.Init, err = cliutil.ParseInit(*initM); err != nil {
		fatal(err)
	}
	cfg := knor.SEMConfig{
		Kmeans:          kcfg,
		Devices:         *devices,
		PageCacheBytes:  *pageCache,
		RowCacheBytes:   *rowCache,
		ICache:          *icache,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
	}

	eng, err := knor.NewSEMEngine(data, cfg)
	if err != nil {
		fatal(err)
	}
	if *resume {
		if *ckpt == "" {
			fatal(fmt.Errorf("-resume requires -ckpt"))
		}
		if err := eng.RestoreEngine(*ckpt); err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *ckpt, eng.Iter())
	}
	res, err := eng.Finish()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("iterations:     %d (converged=%v)\n", res.Iters, res.Converged)
	fmt.Printf("SSE:            %.6g\n", res.SSE)
	fmt.Printf("simulated time: %.4fs (%.4fs/iter)\n", res.SimSeconds, res.SimSeconds/float64(res.Iters))
	fmt.Printf("memory:         %.1f MB (SEM: excludes row data)\n", float64(res.MemoryBytes)/1e6)
	var req, read, hits uint64
	for _, st := range res.PerIter {
		req += st.BytesWanted
		read += st.BytesRead
		hits += st.RowCacheHits
	}
	fmt.Printf("I/O:            requested %.1f MB, read %.1f MB, row-cache hits %d\n",
		float64(req)/1e6, float64(read)/1e6, hits)
	if *verbose {
		fmt.Println("iter  time(ms)   active    reqMB    readMB   rcHits")
		for _, st := range res.PerIter {
			fmt.Printf("%4d  %8.3f  %8d  %7.2f  %7.2f  %7d\n",
				st.Iter, st.SimSeconds*1e3, st.ActiveRows,
				float64(st.BytesWanted)/1e6, float64(st.BytesRead)/1e6, st.RowCacheHits)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knors:", err)
	os.Exit(1)
}
