// Command knors runs the semi-external-memory k-means module: O(n)
// state in memory, row data streamed from the storage backend, with
// the partitioned lazily-updated row cache and optional checkpointing.
//
// Two backends are available:
//
//   - sim (default): the dataset is loaded into memory and fronted by
//     the simulated SSD array + SAFS stack, reproducing the paper's
//     deterministic I/O figures;
//   - file: the dataset stays on disk in the knor store format
//     (kmeansgen -format knor) and is streamed through a real page
//     cache with request merging and prefetch — the matrix is never
//     materialised, so datasets larger than memory work.
//
// Both backends produce bit-identical centroids and the same
// BytesWanted counters on the same data.
//
// Usage:
//
//	kmeansgen -format knor -n 1000000 -d 32 -o friendster32.knor
//	knors -data friendster32.knor -backend file -k 10 -prefetch 4
//	knors -gen-n 200000 -gen-d 32 -k 10 -rowcache 4194304 -ckpt state.bin -v
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"knor"
	"knor/internal/cliutil"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "input matrix file (empty: generate)")
		backend   = flag.String("backend", "sim", "storage backend: sim (simulated SSD array) | file (real store-format I/O)")
		genN      = flag.Int("gen-n", 200000, "rows to generate when -data is empty")
		genD      = flag.Int("gen-d", 32, "dims to generate when -data is empty")
		genSeed   = flag.Int64("gen-seed", 1, "generator seed")
		k         = flag.Int("k", 10, "clusters")
		iters     = flag.Int("iters", 100, "max iterations")
		threads   = flag.Int("threads", 8, "worker threads")
		taskSize  = flag.Int("tasksize", 8192, "rows per task")
		prune     = flag.String("prune", "mti", "pruning: none | mti | ti")
		initM     = flag.String("init", "forgy", "init: forgy | random | kmeans++")
		devices   = flag.Int("devices", 24, "SSD array width (sim backend)")
		pageCache = flag.Int("pagecache", 1<<26, "page cache bytes")
		rowCache  = flag.Int("rowcache", 1<<25, "row cache bytes (0 disables: knors-)")
		icache    = flag.Int("icache", 5, "row cache update interval")
		prefetch  = flag.Int("prefetch", 4, "prefetch workers (file backend; 0 disables)")
		ckpt      = flag.String("ckpt", "", "checkpoint file (enables checkpointing)")
		ckptEvery = flag.Int("ckpt-every", 5, "checkpoint interval in iterations")
		resume    = flag.Bool("resume", false, "restore from -ckpt before running")
		seed      = flag.Int64("seed", 1, "algorithm seed")
		verbose   = flag.Bool("v", false, "print per-iteration I/O stats")
	)
	flag.Parse()
	if *backend != "sim" && *backend != "file" {
		fatal(fmt.Errorf("unknown backend %q (want sim or file)", *backend))
	}

	kcfg := knor.Config{
		K: *k, MaxIters: *iters, Seed: *seed,
		Threads: *threads, TaskSize: *taskSize,
	}
	var err error
	if kcfg.Prune, err = cliutil.ParsePrune(*prune); err != nil {
		fatal(err)
	}
	if kcfg.Init, err = cliutil.ParseInit(*initM); err != nil {
		fatal(err)
	}
	cfg := knor.SEMConfig{
		Kmeans:          kcfg,
		Devices:         *devices,
		PageCacheBytes:  *pageCache,
		RowCacheBytes:   *rowCache,
		ICache:          *icache,
		PrefetchWorkers: *prefetch,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
	}

	eng, cleanup, err := buildEngine(*backend, *dataPath, *genN, *genD, *genSeed, cfg)
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	// fatal calls os.Exit, which skips deferred cleanup — release the
	// engine (and any generated temp dataset) explicitly on the way out.
	die := func(err error) {
		cleanup()
		fatal(err)
	}
	if *resume {
		if *ckpt == "" {
			die(fmt.Errorf("-resume requires -ckpt"))
		}
		if err := eng.RestoreEngine(*ckpt); err != nil {
			die(err)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *ckpt, eng.Iter())
	}
	res, err := eng.Finish()
	if err != nil {
		die(err)
	}

	fmt.Printf("backend:        %s\n", *backend)
	fmt.Printf("iterations:     %d (converged=%v)\n", res.Iters, res.Converged)
	fmt.Printf("SSE:            %.6g\n", res.SSE)
	timeLabel := "simulated time"
	if *backend == "file" {
		timeLabel = "wall time     "
	}
	fmt.Printf("%s: %.4fs (%.4fs/iter)\n", timeLabel, res.SimSeconds, res.SimSeconds/float64(res.Iters))
	fmt.Printf("memory:         %.1f MB (SEM: excludes row data)\n", float64(res.MemoryBytes)/1e6)
	var req, read, hits uint64
	for _, st := range res.PerIter {
		req += st.BytesWanted
		read += st.BytesRead
		hits += st.RowCacheHits
	}
	fmt.Printf("I/O:            requested %.1f MB, read %.1f MB, row-cache hits %d\n",
		float64(req)/1e6, float64(read)/1e6, hits)
	if *verbose {
		fmt.Println("iter  time(ms)   active    reqMB    readMB   rcHits")
		for _, st := range res.PerIter {
			fmt.Printf("%4d  %8.3f  %8d  %7.2f  %7.2f  %7d\n",
				st.Iter, st.SimSeconds*1e3, st.ActiveRows,
				float64(st.BytesWanted)/1e6, float64(st.BytesRead)/1e6, st.RowCacheHits)
		}
	}
}

// buildEngine wires the chosen backend. The file backend streams an
// existing store file, or (when generating) writes the dataset to a
// temporary store file first so the run still never holds the matrix
// in memory alongside the engine.
func buildEngine(backend, dataPath string, genN, genD int, genSeed int64, cfg knor.SEMConfig) (*knor.SEMEngine, func(), error) {
	cleanup := func() {}
	if backend == "file" {
		path := dataPath
		if path == "" {
			dir, err := os.MkdirTemp("", "knors")
			if err != nil {
				return nil, cleanup, err
			}
			path = filepath.Join(dir, "gen.knor")
			m := generate(genN, genD, genSeed)
			if err := knor.SaveMatrixStore(m, path, 8); err != nil {
				os.RemoveAll(dir)
				return nil, cleanup, err
			}
			fmt.Printf("generated %d x %d into %s\n", m.Rows(), m.Cols(), path)
			cleanup = func() { os.RemoveAll(dir) }
		}
		eng, err := knor.NewSEMEngineFromFile(path, cfg)
		if err != nil {
			cleanup()
			return nil, func() {}, err
		}
		prev := cleanup
		return eng, func() { eng.Close(); prev() }, nil
	}

	var data *knor.Matrix
	var err error
	if dataPath != "" {
		// Either on-disk format loads fully for the simulated array.
		data, err = knor.LoadMatrixAny(dataPath)
		if err != nil {
			return nil, cleanup, err
		}
	} else {
		data = generate(genN, genD, genSeed)
	}
	eng, err := knor.NewSEMEngine(data, cfg)
	return eng, cleanup, err
}

func generate(n, d int, seed int64) *knor.Matrix {
	return knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: d, Clusters: 10, Spread: 0.05, Seed: seed,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knors:", err)
	os.Exit(1)
}
