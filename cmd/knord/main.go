// Command knord runs the distributed k-means module over the simulated
// cluster: decentralised per-machine drivers (each a full NUMA-aware
// knori engine) merged with MPI-style allreduce, plus the pure-MPI and
// MLlib-style comparison modes of Section 8.9.
//
// Usage:
//
//	knord -machines 8 -threads 18 -k 10 -data rm1b.knor
//	knord -machines 4 -mode mllib -gen-n 500000 -gen-d 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"knor"
	"knor/internal/cliutil"
)

func main() {
	var (
		dataPath = flag.String("data", "", "input matrix file (empty: generate)")
		genN     = flag.Int("gen-n", 500000, "rows to generate when -data is empty")
		genD     = flag.Int("gen-d", 32, "dims to generate when -data is empty")
		genSeed  = flag.Int64("gen-seed", 1, "generator seed")
		machines = flag.Int("machines", 4, "cluster size")
		mode     = flag.String("mode", "knord", "mode: knord | mpi | mllib")
		k        = flag.Int("k", 10, "clusters")
		iters    = flag.Int("iters", 100, "max iterations")
		threads  = flag.Int("threads", 18, "threads per machine")
		taskSize = flag.Int("tasksize", 8192, "rows per task")
		prune    = flag.String("prune", "mti", "pruning: none | mti | ti (knord/mpi)")
		initM    = flag.String("init", "forgy", "init: forgy | random | kmeans++")
		nodes    = flag.Int("nodes", 2, "NUMA nodes per machine")
		cores    = flag.Int("cores", 9, "cores per NUMA node")
		seed     = flag.Int64("seed", 1, "algorithm seed")
		verbose  = flag.Bool("v", false, "print per-iteration stats")
	)
	flag.Parse()

	var data *knor.Matrix
	var err error
	if *dataPath != "" {
		data, err = knor.LoadMatrix(*dataPath)
	} else {
		data = knor.Generate(knor.Spec{
			Kind: knor.NaturalClusters, N: *genN, D: *genD, Clusters: 10, Spread: 0.05, Seed: *genSeed,
		})
	}
	if err != nil {
		fatal(err)
	}

	kcfg := knor.Config{
		K: *k, MaxIters: *iters, Seed: *seed,
		Threads: *threads, TaskSize: *taskSize,
		Topo: knor.Topology{Nodes: *nodes, CoresPerNode: *cores},
	}
	if kcfg.Prune, err = cliutil.ParsePrune(*prune); err != nil {
		fatal(err)
	}
	if kcfg.Init, err = cliutil.ParseInit(*initM); err != nil {
		fatal(err)
	}
	cfg := knor.DistConfig{Machines: *machines, Kmeans: kcfg}
	switch strings.ToLower(*mode) {
	case "knord", "":
		cfg.Mode = knor.ModeKnord
	case "mpi":
		cfg.Mode = knor.ModeMPI
	case "mllib":
		cfg.Mode = knor.ModeMLlib
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	res, err := knor.RunDistributed(data, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mode:           %s on %d machines x %d threads\n", *mode, *machines, *threads)
	fmt.Printf("iterations:     %d (converged=%v)\n", res.Iters, res.Converged)
	fmt.Printf("SSE:            %.6g\n", res.SSE)
	fmt.Printf("simulated time: %.4fs (%.4fs/iter)\n", res.SimSeconds, res.SimSeconds/float64(res.Iters))
	fmt.Printf("memory (aggregate): %.1f MB\n", float64(res.MemoryBytes)/1e6)
	if *verbose {
		fmt.Println("iter  time(ms)   dists      C1        changed")
		for _, st := range res.PerIter {
			fmt.Printf("%4d  %8.3f  %9d  %8d  %7d\n",
				st.Iter, st.SimSeconds*1e3, st.DistCalcs, st.PrunedC1, st.RowsChanged)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knord:", err)
	os.Exit(1)
}
