// Command knord runs the distributed k-means module: decentralised
// per-machine drivers (each a full NUMA-aware knori engine) merged
// with MPI-style allreduce, plus the pure-MPI and MLlib-style
// comparison modes of Section 8.9.
//
// Usage:
//
//	knord -machines 8 -threads 18 -k 10 -data rm1b.knor
//	knord -machines 4 -mode mllib -gen-n 500000 -gen-d 32
//
// By default the M machines are simulated inside one process. With
// -listen/-join the same computation runs as M real OS processes over
// internal/netcluster TCP (mode knord only):
//
//	knord -listen 127.0.0.1:7001 -machines 3 -threads 1 -k 8   # coordinator, rank 0
//	knord -join 127.0.0.1:7001 -threads 1 -k 8                 # each worker (run M-1 times)
//
// Every process must be started with the identical algorithm flags —
// the bootstrap handshake carries a config digest and refuses mixed
// clusters. Rank 0 prints the result plus a `checksum:` line (FNV-1a
// over centroid bits, assignments, SSE bits and the iteration count);
// single-process runs print the same line, and with -threads 1 the
// checksums match bit for bit across sim, simgroup and TCP runs of the
// same machine count (see DESIGN.md §Transport for why the thread and
// machine counts pin the floating-point fold order).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strings"
	"sync"

	"knor"
	"knor/internal/cliutil"
	"knor/internal/cluster"
	"knor/internal/dist"
	"knor/internal/kmeans"
	"knor/internal/netcluster"
	"knor/internal/simclock"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "input matrix file (empty: generate)")
		genN      = flag.Int("gen-n", 500000, "rows to generate when -data is empty")
		genD      = flag.Int("gen-d", 32, "dims to generate when -data is empty")
		genSeed   = flag.Int64("gen-seed", 1, "generator seed")
		machines  = flag.Int("machines", 4, "cluster size")
		mode      = flag.String("mode", "knord", "mode: knord | mpi | mllib")
		k         = flag.Int("k", 10, "clusters")
		iters     = flag.Int("iters", 100, "max iterations")
		threads   = flag.Int("threads", 18, "threads per machine")
		taskSize  = flag.Int("tasksize", 8192, "rows per task")
		prune     = flag.String("prune", "mti", "pruning: none | mti | ti (knord/mpi)")
		initM     = flag.String("init", "forgy", "init: forgy | random | kmeans++")
		nodes     = flag.Int("nodes", 2, "NUMA nodes per machine")
		cores     = flag.Int("cores", 9, "cores per NUMA node")
		seed      = flag.Int64("seed", 1, "algorithm seed")
		precision = flag.String("precision", "64", "element type for the transport runner: 32 | 64 (64 uses the legacy simulated path when no cluster flags are set)")
		verbose   = flag.Bool("v", false, "print per-iteration stats")
	)
	var clusterf cliutil.ClusterFlags
	clusterf.Register(flag.CommandLine)
	flag.Parse()

	var data *knor.Matrix
	var err error
	if *dataPath != "" {
		data, err = knor.LoadMatrix(*dataPath)
	} else {
		data = knor.Generate(knor.Spec{
			Kind: knor.NaturalClusters, N: *genN, D: *genD, Clusters: 10, Spread: 0.05, Seed: *genSeed,
		})
	}
	if err != nil {
		fatal(err)
	}

	kcfg := knor.Config{
		K: *k, MaxIters: *iters, Seed: *seed,
		Threads: *threads, TaskSize: *taskSize,
		Topo: knor.Topology{Nodes: *nodes, CoresPerNode: *cores},
	}
	if kcfg.Prune, err = cliutil.ParsePrune(*prune); err != nil {
		fatal(err)
	}
	if kcfg.Init, err = cliutil.ParseInit(*initM); err != nil {
		fatal(err)
	}
	cfg := knor.DistConfig{Machines: *machines, Kmeans: kcfg}
	switch strings.ToLower(*mode) {
	case "knord", "":
		cfg.Mode = knor.ModeKnord
	case "mpi":
		cfg.Mode = knor.ModeMPI
	case "mllib":
		cfg.Mode = knor.ModeMLlib
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	prec, err := cliutil.ParsePrecision(*precision)
	if err != nil {
		fatal(err)
	}
	role, err := clusterf.Validate(*machines)
	if err != nil {
		fatal(err)
	}
	if role != cliutil.RoleSolo && cfg.Mode != knor.ModeKnord {
		fatal(fmt.Errorf("cluster mode (-listen/-join) supports -mode knord only, not %q", *mode))
	}

	// The digest covers every flag that changes the computation, so the
	// bootstrap handshake rejects a cluster whose processes were started
	// with different algorithm configs. The machine count is NOT in it:
	// the coordinator's -machines fixes the cluster size and workers
	// learn theirs from the assigned-rank reply.
	dataID := *dataPath
	if dataID == "" {
		dataID = fmt.Sprintf("gen:%d:%d:%d", *genN, *genD, *genSeed)
	}
	digest := fmt.Sprintf("knord:k=%d it=%d seed=%d th=%d ts=%d prune=%s init=%s nodes=%d cores=%d p=%s data=%s",
		*k, *iters, *seed, *threads, *taskSize, strings.ToLower(*prune), strings.ToLower(*initM),
		*nodes, *cores, prec, dataID)

	var res *knor.Result
	switch role {
	case cliutil.RoleWorker:
		tr, err := netcluster.DialCluster(netcluster.TCPOptions{
			Listen: clusterf.Listen, Join: clusterf.Join, Digest: digest,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("knord worker rank %d/%d computing (coordinator %s)\n", tr.Rank(), tr.Size(), clusterf.Join)
		cfg.Machines = tr.Size()
		res, err = dist.RunTransport(tr, data, cfg, prec)
		tr.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("knord worker rank done: %d iterations (converged=%v)\n", res.Iters, res.Converged)
		return
	case cliutil.RoleCoordinator:
		fmt.Printf("knord coordinator on %s waiting for %d workers...\n", clusterf.Listen, *machines-1)
		tr, err := netcluster.DialCluster(netcluster.TCPOptions{
			Listen: clusterf.Listen, Machines: *machines, Digest: digest,
		})
		if err != nil {
			fatal(err)
		}
		res, err = dist.RunTransport(tr, data, cfg, prec)
		tr.Close()
		if err != nil {
			fatal(err)
		}
	default: // solo: one process, M simulated machines
		if prec == kmeans.Precision32 {
			// The legacy simulated path is float64-only; float32 runs the
			// transport runner over the in-process simulated mesh, which
			// is bit-identical to the TCP path (internal/dist parity tests).
			res, err = runSimGroup(data, cfg, prec)
		} else {
			res, err = knor.RunDistributed(data, cfg)
		}
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("mode:           %s on %d machines x %d threads (%s, precision %s)\n",
		*mode, cfg.Machines, *threads, role, prec)
	fmt.Printf("iterations:     %d (converged=%v)\n", res.Iters, res.Converged)
	fmt.Printf("SSE:            %.6g\n", res.SSE)
	fmt.Printf("simulated time: %.4fs (%.4fs/iter)\n", res.SimSeconds, res.SimSeconds/float64(res.Iters))
	fmt.Printf("memory (aggregate): %.1f MB\n", float64(res.MemoryBytes)/1e6)
	fmt.Printf("checksum:       %016x\n", resultChecksum(res))
	if *verbose {
		fmt.Println("iter  time(ms)   dists      C1        changed")
		for _, st := range res.PerIter {
			fmt.Printf("%4d  %8.3f  %9d  %8d  %7d\n",
				st.Iter, st.SimSeconds*1e3, st.DistCalcs, st.PrunedC1, st.RowsChanged)
		}
	}
}

// runSimGroup runs the transport runner over the in-process simulated
// mesh: M goroutines sharing one dataset, each driving its rank exactly
// as a real process would. Rank 0's result carries the gathered
// assignments and SSE.
func runSimGroup(data *knor.Matrix, cfg knor.DistConfig, p knor.Precision) (*knor.Result, error) {
	g := netcluster.NewSimGroup(cluster.New(cfg.Machines, simclock.DefaultCostModel()))
	defer g.Close()
	results := make([]*knor.Result, cfg.Machines)
	errs := make([]error, cfg.Machines)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Machines; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = dist.RunTransport(g.Transport(r), data, cfg, p)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// resultChecksum folds everything the cluster acceptance compares —
// iteration count, centroid bits, assignments, SSE bits — into one
// FNV-1a value, so "bit-identical results" across sim, simgroup and
// multi-process TCP runs is a one-line string comparison in smoke
// scripts. Meaningful on rank 0 only (workers do not hold the gathered
// assignments).
func resultChecksum(res *knor.Result) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(u uint64) {
		binary.BigEndian.PutUint64(b[:], u)
		h.Write(b[:])
	}
	put(uint64(res.Iters))
	for _, v := range res.Centroids.Data {
		put(math.Float64bits(v))
	}
	for _, a := range res.Assign {
		put(uint64(uint32(a)))
	}
	put(math.Float64bits(res.SSE))
	return h.Sum64()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knord:", err)
	os.Exit(1)
}
