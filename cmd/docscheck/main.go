// Command docscheck validates the repository's markdown documentation:
// every relative link target (`[text](path)`, excluding http(s)/mailto
// URLs and pure #anchors) must exist on disk. The `make docs` target
// and the CI docs job run it so README.md / EXPERIMENTS.md / DESIGN.md
// cross-references can never dangle again.
//
// Usage:
//
//	docscheck [root]
//
// Exits non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links; group 2 is the target. Images
// (![alt](target)) match too, which is what we want.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	files := 0
	links := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "vendor" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		files++
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if isExternal(target) {
				continue
			}
			links++
			// Strip a #fragment; a bare fragment links inside this file.
			file, _, _ := strings.Cut(target, "#")
			if file == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(file))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q (no %s)\n", path, target, resolved)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d markdown files, %d relative links, all resolve\n", files, links)
}

func isExternal(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}
