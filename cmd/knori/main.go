// Command knori runs the NUMA-aware in-memory k-means module on a
// dataset file (or a generated one), mirroring the paper's knori
// binary.
//
// Usage:
//
//	knori -data friendster8.knor -k 10 -threads 16 -prune mti
//	knori -gen-n 100000 -gen-d 8 -k 10 -iters 20 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"knor"
	"knor/internal/cliutil"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "input matrix file (empty: generate)")
		genN      = flag.Int("gen-n", 100000, "rows to generate when -data is empty")
		genD      = flag.Int("gen-d", 8, "dims to generate when -data is empty")
		genSeed   = flag.Int64("gen-seed", 1, "generator seed")
		k         = flag.Int("k", 10, "clusters")
		iters     = flag.Int("iters", 100, "max iterations")
		tol       = flag.Float64("tol", 0, "drift tolerance (0 = exact convergence)")
		threads   = flag.Int("threads", 8, "worker threads")
		taskSize  = flag.Int("tasksize", 8192, "rows per task")
		prune     = flag.String("prune", "mti", "pruning: none | mti | ti")
		schedP    = flag.String("sched", "numa", "scheduler: static | fifo | numa")
		initM     = flag.String("init", "forgy", "init: forgy | random | kmeans++")
		nodes     = flag.Int("nodes", 4, "simulated NUMA nodes")
		cores     = flag.Int("cores", 12, "cores per NUMA node")
		oblivious = flag.Bool("numa-oblivious", false, "disable NUMA policies (baseline)")
		spherical = flag.Bool("spherical", false, "spherical k-means (cosine)")
		precision = flag.String("precision", "64", "numeric core element type: 32 | 64")
		seed      = flag.Int64("seed", 1, "algorithm seed")
		verbose   = flag.Bool("v", false, "print per-iteration stats")
	)
	flag.Parse()

	data, err := loadOrGen(*dataPath, *genN, *genD, *genSeed)
	if err != nil {
		fatal(err)
	}
	cfg := knor.Config{
		K: *k, MaxIters: *iters, Tol: *tol, Seed: *seed,
		Threads: *threads, TaskSize: *taskSize,
		Topo:      knor.Topology{Nodes: *nodes, CoresPerNode: *cores},
		Spherical: *spherical,
	}
	if cfg.Prune, err = cliutil.ParsePrune(*prune); err != nil {
		fatal(err)
	}
	if cfg.Init, err = cliutil.ParseInit(*initM); err != nil {
		fatal(err)
	}
	if cfg.Sched, err = cliutil.ParseSched(*schedP); err != nil {
		fatal(err)
	}
	if *oblivious {
		cfg.NUMAOblivious = true
		cfg.Placement = knor.PlaceSingleBank
		cfg.Sched = knor.SchedFIFO
	}
	prec, err := cliutil.ParsePrecision(*precision)
	if err != nil {
		fatal(err)
	}
	res, err := knor.RunPrecision(data, cfg, prec)
	if err != nil {
		fatal(err)
	}
	printResult(res, *verbose)
}

func loadOrGen(path string, n, d int, seed int64) (*knor.Matrix, error) {
	if path != "" {
		return knor.LoadMatrix(path)
	}
	return knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: d, Clusters: 10, Spread: 0.05, Seed: seed,
	}), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knori:", err)
	os.Exit(1)
}

func printResult(res *knor.Result, verbose bool) {
	fmt.Printf("iterations:     %d (converged=%v)\n", res.Iters, res.Converged)
	fmt.Printf("SSE:            %.6g\n", res.SSE)
	fmt.Printf("simulated time: %.4fs (%.4fs/iter)\n", res.SimSeconds, res.SimSeconds/float64(res.Iters))
	fmt.Printf("memory:         %.1f MB\n", float64(res.MemoryBytes)/1e6)
	fmt.Printf("cluster sizes:  %v\n", res.Sizes)
	if verbose {
		fmt.Println("iter  time(ms)   dists      C1        C2        C3        changed  active")
		for _, st := range res.PerIter {
			fmt.Printf("%4d  %8.3f  %9d  %8d  %8d  %8d  %7d  %7d\n",
				st.Iter, st.SimSeconds*1e3, st.DistCalcs, st.PrunedC1, st.PrunedC2, st.PrunedC3,
				st.RowsChanged, st.ActiveRows)
		}
	}
}
