package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/workload"
)

type loadTestOptions struct {
	n, d, k    int
	clients    int
	requests   int
	rowsPerReq int
	seed       int64
}

// runLoadTest boots the server on a loopback listener, registers a
// model trained on an n×d dataset, and drives concurrent HTTP clients
// through /assign, reporting sustained request throughput and latency.
func runLoadTest(srv *server, opts loadTestOptions) error {
	spec := workload.Spec{
		Kind: workload.NaturalClusters, N: opts.n, D: opts.d,
		Clusters: opts.k, Spread: 0.05, Seed: opts.seed,
	}
	fmt.Printf("loadtest: generating %dx%d dataset, k=%d...\n", opts.n, opts.d, opts.k)
	data := workload.Generate(spec)

	// Seed centroids with k-means++ on a sample, then stream a slice of
	// the data through the updater — model quality only has to be
	// realistic, the bench measures the assignment path.
	t0 := time.Now()
	sample := sampleRows(data, min(opts.n, 100_000), opts.seed)
	cfg, err := kmeans.Config{K: opts.k, Init: kmeans.InitKMeansPP, Seed: opts.seed}.WithDefaults(sample.Rows())
	if err != nil {
		return err
	}
	seeds := kmeans.InitCentroidsFor(sample, cfg)
	snap, err := srv.register("bench", seeds)
	if err != nil {
		return err
	}
	eng := srv.streams["bench"]
	folded := min(opts.n, 200_000)
	for lo := 0; lo < folded; lo += 4096 {
		hi := min(lo+4096, folded)
		sub := &matrix.Dense{RowsN: hi - lo, ColsN: opts.d, Data: data.Data[lo*opts.d : hi*opts.d]}
		if _, err := eng.Observe(sub); err != nil {
			return err
		}
	}
	if _, err := eng.Publish(); err != nil {
		return err
	}
	fmt.Printf("loadtest: model %q v%d trained in %.1fs (%d seeded + %d streamed rows)\n",
		snap.Name, snap.Version+1, time.Since(t0).Seconds(), sample.Rows(), folded)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.mux()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Pre-marshal a pool of request bodies so client-side generation
	// cost stays off the measured path.
	qs := workload.NewQueryStream(spec, opts.seed+1)
	const pool = 512
	bodies := make([][]byte, pool)
	for i := range bodies {
		rows := qs.Next(opts.rowsPerReq)
		req := assignReq{Model: "bench", Rows: make([][]float64, rows.Rows())}
		for r := 0; r < rows.Rows(); r++ {
			req.Rows[r] = rows.Row(r)
		}
		if bodies[i], err = json.Marshal(req); err != nil {
			return err
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.clients * 2,
		MaxIdleConnsPerHost: opts.clients * 2,
	}}
	var next, failures atomic.Int64
	var wg sync.WaitGroup
	fmt.Printf("loadtest: %d clients x %d total /assign requests (%d rows each)...\n",
		opts.clients, opts.requests, opts.rowsPerReq)
	start := time.Now()
	for c := 0; c < opts.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.requests) {
					return
				}
				resp, err := client.Post(base+"/v1/assign", "application/json",
					bytes.NewReader(bodies[i%pool]))
				if err != nil {
					failures.Add(1)
					continue
				}
				var ar assignResp
				if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil ||
					resp.StatusCode != http.StatusOK || len(ar.Clusters) != opts.rowsPerReq {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.batcher.Stats()
	ok := int64(opts.requests) - failures.Load()
	rps := float64(ok) / elapsed.Seconds()
	fmt.Printf("\nloadtest results (%dx%d, k=%d):\n", opts.n, opts.d, opts.k)
	fmt.Printf("  requests:    %d ok, %d failed in %.2fs\n", ok, failures.Load(), elapsed.Seconds())
	fmt.Printf("  throughput:  %.0f req/s (%.0f rows/s)\n", rps, rps*float64(opts.rowsPerReq))
	fmt.Printf("  latency:     p50 %.3fms  p95 %.3fms  p99 %.3fms  mean %.3fms (server-side)\n",
		st.P50*1e3, st.P95*1e3, st.P99*1e3, st.Mean*1e3)
	fmt.Printf("  batching:    %d flushes, %.1f rows/flush avg\n", st.Flushes, avgBatch(st))
	if failures.Load() > 0 {
		return fmt.Errorf("%d requests failed", failures.Load())
	}
	return nil
}

// sampleRows draws m distinct-ish rows uniformly (with replacement).
func sampleRows(data *matrix.Dense, m int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	out := matrix.NewDense(m, data.Cols())
	for i := 0; i < m; i++ {
		copy(out.Row(i), data.Row(rng.Intn(data.Rows())))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
