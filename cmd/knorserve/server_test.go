package main

// End-to-end tests of the knorserve HTTP surface: the model lifecycle
// (create → list → assign → observe → publish → stats) and the
// malformed-input error paths, over a real httptest server.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"knor/internal/kmeans"
)

func newTestServer(t *testing.T, opts serverOptions) (*server, *httptest.Server) {
	t.Helper()
	if opts.maxBatch == 0 {
		opts.maxBatch = 64
	}
	if opts.maxWait == 0 {
		opts.maxWait = time.Millisecond
	}
	if opts.threads == 0 {
		opts.threads = 1
	}
	if opts.nodes == 0 {
		opts.nodes = 2
	}
	s, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		ts.Close()
		s.close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("POST %s: non-JSON response %q", url, raw)
		}
	}
	return resp.StatusCode, m
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestE2ELifecycle(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{publishEvery: 0})

	// healthz
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Create from a generated spec.
	code, body := postJSON(t, ts.URL+"/v1/models",
		`{"name":"m","k":4,"iters":20,"spec":{"n":400,"d":4,"clusters":4,"spread":0.05,"seed":1}}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if body["name"] != "m" || body["version"] != float64(1) || body["k"] != float64(4) {
		t.Fatalf("create body: %v", body)
	}

	// List.
	var models []modelInfo
	if code := getJSON(t, ts.URL+"/v1/models", &models); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(models) != 1 || models[0].Name != "m" || models[0].D != 4 {
		t.Fatalf("list: %+v", models)
	}

	// Assign.
	code, body = postJSON(t, ts.URL+"/v1/assign", `{"model":"m","rows":[[0.1,0.2,0.3,0.4],[0.9,0.8,0.7,0.6]]}`)
	if code != http.StatusOK {
		t.Fatalf("assign: %d %v", code, body)
	}
	if cl := body["clusters"].([]any); len(cl) != 2 {
		t.Fatalf("assign clusters: %v", body)
	}
	if sq := body["sqdists"].([]any); len(sq) != 2 || sq[0].(float64) < 0 {
		t.Fatalf("assign sqdists: %v", body)
	}

	// Observe (manual publish mode: version stays 1).
	code, body = postJSON(t, ts.URL+"/v1/observe", `{"model":"m","rows":[[0.1,0.2,0.3,0.4]]}`)
	if code != http.StatusOK {
		t.Fatalf("observe: %d %v", code, body)
	}
	if body["seen"] != float64(1) || body["version"] != float64(1) {
		t.Fatalf("observe body: %v", body)
	}

	// Publish bumps the version.
	code, body = postJSON(t, ts.URL+"/v1/publish", `{"model":"m"}`)
	if code != http.StatusOK || body["version"] != float64(2) {
		t.Fatalf("publish: %d %v", code, body)
	}

	// Stats reflect the one assign call.
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats["requests"] != float64(1) || stats["rows"] != float64(2) {
		t.Fatalf("stats: %v", stats)
	}
	if stats["models"] != float64(1) || stats["precision"] != "64" {
		t.Fatalf("stats: %v", stats)
	}
}

func TestE2ECreateFromRowsMiniBatch(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{})
	rows := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		rows = append(rows, fmt.Sprintf("[%d,%d]", i%2*10, i%4))
	}
	body := fmt.Sprintf(`{"name":"mb","k":2,"engine":"minibatch","iters":5,"rows":[%s]}`, strings.Join(rows, ","))
	code, resp := postJSON(t, ts.URL+"/v1/models", body)
	if code != http.StatusCreated {
		t.Fatalf("create minibatch: %d %v", code, resp)
	}
	code, resp = postJSON(t, ts.URL+"/v1/assign", `{"model":"mb","rows":[[9.5,1.0]]}`)
	if code != http.StatusOK {
		t.Fatalf("assign: %d %v", code, resp)
	}
}

func TestE2EPrecision32(t *testing.T) {
	_, ts64 := newTestServer(t, serverOptions{})
	_, ts32 := newTestServer(t, serverOptions{precision: kmeans.Precision32})
	create := `{"name":"p","k":4,"iters":20,"spec":{"n":400,"d":4,"clusters":4,"spread":0.02,"seed":9}}`
	for _, ts := range []*httptest.Server{ts64, ts32} {
		if code, body := postJSON(t, ts.URL+"/v1/models", create); code != http.StatusCreated {
			t.Fatalf("create: %d %v", code, body)
		}
	}
	q := `{"model":"p","rows":[[0.5,0.5,0.5,0.5],[0.1,0.9,0.1,0.9]]}`
	_, b64 := postJSON(t, ts64.URL+"/v1/assign", q)
	_, b32 := postJSON(t, ts32.URL+"/v1/assign", q)
	c64 := b64["clusters"].([]any)
	c32 := b32["clusters"].([]any)
	for i := range c64 {
		if c64[i] != c32[i] {
			t.Fatalf("precision mismatch at %d: %v vs %v", i, c64, c32)
		}
	}
	var stats map[string]any
	getJSON(t, ts32.URL+"/v1/stats", &stats)
	if stats["precision"] != "32" {
		t.Fatalf("stats precision: %v", stats["precision"])
	}
}

func TestE2EErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{})
	if code, body := postJSON(t, ts.URL+"/v1/models",
		`{"name":"e","k":2,"rows":[[0,0],[0,1],[1,0],[1,1]]}`); code != http.StatusCreated {
		t.Fatalf("setup create: %d %v", code, body)
	}

	t.Run("malformed JSON", func(t *testing.T) {
		for _, ep := range []string{"/v1/models", "/v1/assign", "/v1/observe", "/v1/publish"} {
			code, body := postJSON(t, ts.URL+ep, `{"name": nope}`)
			if code != http.StatusBadRequest {
				t.Errorf("%s: %d, want 400", ep, code)
			}
			if _, ok := body["error"]; !ok {
				t.Errorf("%s: no error field: %v", ep, body)
			}
		}
	})
	t.Run("unknown model", func(t *testing.T) {
		if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"ghost","rows":[[1,2]]}`); code != http.StatusBadRequest {
			t.Errorf("assign: %d", code)
		}
		if code, _ := postJSON(t, ts.URL+"/v1/observe", `{"model":"ghost","rows":[[1,2]]}`); code != http.StatusNotFound {
			t.Errorf("observe: %d", code)
		}
		if code, _ := postJSON(t, ts.URL+"/v1/publish", `{"model":"ghost"}`); code != http.StatusNotFound {
			t.Errorf("publish: %d", code)
		}
	})
	t.Run("bad create requests", func(t *testing.T) {
		if code, _ := postJSON(t, ts.URL+"/v1/models", `{"name":"e","k":2,"rows":[[0,0],[1,1]]}`); code != http.StatusConflict {
			t.Errorf("duplicate: %d", code)
		}
		if code, _ := postJSON(t, ts.URL+"/v1/models", `{"name":"x","k":2}`); code != http.StatusBadRequest {
			t.Errorf("no rows/spec: %d", code)
		}
		if code, _ := postJSON(t, ts.URL+"/v1/models",
			`{"name":"x","k":2,"engine":"quantum","rows":[[0,0],[1,1]]}`); code != http.StatusBadRequest {
			t.Errorf("bad engine: %d", code)
		}
		if code, _ := postJSON(t, ts.URL+"/v1/models", `{"name":"x","k":2,"rows":[[0,0],[1]]}`); code != http.StatusBadRequest {
			t.Errorf("ragged rows: %d", code)
		}
	})
	t.Run("dim mismatch", func(t *testing.T) {
		if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"e","rows":[[1,2,3]]}`); code != http.StatusBadRequest {
			t.Errorf("assign dims: %d", code)
		}
		if code, _ := postJSON(t, ts.URL+"/v1/observe", `{"model":"e","rows":[[1,2,3]]}`); code != http.StatusBadRequest {
			t.Errorf("observe dims: %d", code)
		}
	})
	t.Run("GET body is not required", func(t *testing.T) {
		var models []modelInfo
		if code := getJSON(t, ts.URL+"/v1/models", &models); code != http.StatusOK {
			t.Errorf("list: %d", code)
		}
	})
}

// TestRetainAgeSweep checks the background sweeper (not just publish)
// ages out old versions: after the publishes stop, the stale version
// must still disappear within ~one sweep tick (clamped to 1s).
func TestRetainAgeSweep(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{retainAge: 50 * time.Millisecond})
	if code, body := postJSON(t, ts.URL+"/v1/models",
		`{"name":"r","k":2,"rows":[[0,0],[0,1],[9,0],[9,1]]}`); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/publish", `{"model":"r"}`); code != http.StatusOK {
		t.Fatal("publish failed")
	}
	if _, ok := s.reg.GetVersion("r", 1); !ok {
		t.Fatal("v1 missing before sweep")
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := s.reg.GetVersion("r", 1); !ok {
			break // swept
		}
		if time.Now().After(deadline) {
			t.Fatal("stale version never swept")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The latest version survives any sweep.
	if m, ok := s.reg.Get("r"); !ok || m.Version != 2 {
		t.Fatal("latest lost")
	}
}

func TestE2EAutoPublish(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{publishEvery: 4})
	if code, body := postJSON(t, ts.URL+"/v1/models",
		`{"name":"ap","k":2,"rows":[[0,0],[0,1],[10,0],[10,1]]}`); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	// 4 observed rows trigger one auto-publish (version 2).
	code, body := postJSON(t, ts.URL+"/v1/observe",
		`{"model":"ap","rows":[[0,0.5],[10,0.5],[0,0.2],[10,0.2]]}`)
	if code != http.StatusOK {
		t.Fatalf("observe: %d %v", code, body)
	}
	if body["version"] != float64(2) {
		t.Fatalf("auto-publish version: %v", body)
	}
}
