package main

// Graceful-shutdown contract: once a /assign request has been accepted,
// SIGTERM (modelled here by cancelling serveUntil's context) must not
// drop it — the handler blocks on its batch flush, Shutdown waits for
// the handler, and the batcher drains whatever is still queued.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knor/internal/matrix"
)

func TestShutdownDropsNoAcceptedAssign(t *testing.T) {
	// A huge MaxBatch and an effectively-infinite MaxWait guarantee
	// every request is still queued (in flight, unanswered) when
	// shutdown begins — even on a slow runner, no MaxWait flush can
	// fire first — so the only way they complete is the drain path.
	s, err := newServer(serverOptions{
		maxBatch: 1 << 20, maxWait: time.Minute,
		threads: 1, nodes: 1, publishEvery: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	cents, err := matrix.FromRows([][]float64{{0, 0}, {10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.register("m", cents); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveUntil(ctx, ln, s, 10*time.Second) }()
	base := "http://" + ln.Addr().String()

	const clients = 24
	var inFlight sync.WaitGroup
	var ok, bad atomic.Int64
	for c := 0; c < clients; c++ {
		inFlight.Add(1)
		go func(c int) {
			defer inFlight.Done()
			body := fmt.Sprintf(`{"model":"m","rows":[[%d,%d]]}`, c%2*10, c%2*10)
			req, _ := http.NewRequest("POST", base+"/v1/assign", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultTransport.RoundTrip(req)
			if err != nil {
				bad.Add(1)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok.Add(1)
			} else {
				bad.Add(1)
			}
		}(c)
	}
	// Wait until every request row is queued inside the batcher (the
	// one-minute MaxWait means none has been answered yet), then trigger
	// shutdown mid-batch: all answers must come from the drain path.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s.batcher.Stats().Queued == clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d rows queued", s.batcher.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	inFlight.Wait()

	if err := <-serveErr; err != nil {
		t.Fatalf("serveUntil: %v", err)
	}
	if got := ok.Load(); got != clients {
		t.Fatalf("%d/%d accepted /assign requests answered, %d dropped",
			got, clients, bad.Load())
	}
}

// TestShutdownIdle checks a quiet server exits promptly and cleanly.
func TestShutdownIdle(t *testing.T) {
	s, err := newServer(serverOptions{maxBatch: 16, maxWait: time.Millisecond, threads: 1, nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntil(ctx, ln, s, time.Second) }()
	// One request through, then shutdown.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntil: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung")
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}
