// Command knorserve exposes the online clustering service layer
// (internal/serve) over HTTP/JSON: a model registry fed by any trainer,
// a batched GEMM assignment path, and stream updaters that keep models
// learning while they serve.
//
// Endpoints:
//
//	GET  /healthz            liveness (the process is up)
//	GET  /readyz             readiness (models published, state writable, not draining)
//	GET  /metrics            Prometheus text exposition of every layer's telemetry
//	GET  /metrics/cluster    federated exposition: every rank's series under rank="N"
//	GET  /v1/cluster/stats   per-rank latency quantiles, bytes, in-flight, shard copies
//	GET  /debug/traces       recent sampled /assign request traces (see -trace-sample)
//	GET  /debug/events       structured cluster event journal (?since=SEQ&max=N cursor)
//	GET  /debug/pprof/       net/http/pprof profiling endpoints (only with -pprof)
//	GET  /v1/models          list models (name, version, k, d, node)
//	POST /v1/models          train & register: {"name","k",("spec"|"rows"),...}
//	POST /v1/assign          {"model","rows":[[...],...]} -> clusters + sqdists
//	POST /v1/observe         fold rows into a model's stream updater
//	POST /v1/publish         snapshot a stream updater into a new version
//	GET  /v1/stats           batcher counters and p50/p95/p99 latency
//
// Usage:
//
//	knorserve -addr :8080
//	knorserve -addr :8080 -precision 32
//	knorserve -addr :8080 -machines 4 -quota 256 -state /var/lib/knor
//	knorserve -loadtest -lt-n 1000000 -lt-d 16 -lt-k 100
//
// -precision 32 runs the batched assignment path in float32 against the
// registry's precomputed float32 centroid mirrors: half the memory
// traffic per flush, answers within the relative-error bounds
// documented in EXPERIMENTS.md. Training and the registry's canonical
// centroids stay float64.
//
// -quantize int8 (requires -precision 32) scans all centroids with a
// per-row symmetric int8 quantization and an int8×int8→int32 SIMD
// kernel, keeps the candidates whose error interval could contain the
// minimum, and re-ranks just those exactly in float32 — answers stay
// bit-identical to the plain -precision 32 path (DESIGN.md has the
// error bound); rows whose candidate set exceeds the re-rank cap fall
// back to a full exact scan, counted in
// knor_serve_quant_rerank_fallbacks_total.
//
// -machines M shards every model's centroids across M simulated
// machines (internal/shardserve): /assign batches fan out, each
// machine computes distances against only its shard, and the per-shard
// argmins merge with lowest-global-index tie-breaking — bit-identical
// answers to -machines 1 at either precision.
//
// -replicas R places every shard group on R distinct machines. The
// fan-out asks the preferred replica first and fails over to the
// others, so up to R-1 machine deaths stay invisible to clients
// (answers remain bit-identical — every replica holds the same rows at
// the same version). A membership layer (internal/topology) detects
// dead and recovered machines from health pulses and re-spreads shard
// replicas from the canonical copies, healing the layout while the
// cluster keeps serving. /readyz reports "degraded" (some replicas
// down, still serving, HTTP 200) and "unavailable" (a whole group
// dead: its centroid range answers 503 until a machine recovers)
// with the affected shard groups in the body. /v1/machines inspects
// the cluster and injects faults:
//
//	GET  /v1/machines        per-machine liveness + shard group health
//	POST /v1/machines        {"machine":M,"action":"kill"|"revive"}
//
// -listen/-join turn the simulated machines into real OS processes
// over internal/netcluster TCP: the coordinator (-listen, with
// -machines M and the HTTP API) pushes shard replicas to M-1 worker
// processes (-join host:port, no HTTP), fans /assign batches out as
// transport RPCs, and tracks worker liveness from heartbeat pulses —
// kill -9 a worker and the fan-out fails over to surviving replicas
// with byte-identical answers (make cluster-smoke drives exactly
// that):
//
//	knorserve -addr :8080 -listen 127.0.0.1:7002 -machines 3 -replicas 2 -threads 1
//	knorserve -join 127.0.0.1:7002 -threads 1     (run M-1 times)
//
// -quota N bounds in-flight /assign requests per model; excess
// requests are answered 429 with a Retry-After hint instead of growing
// the batch queue without bound.
//
// -state DIR persists every model's latest snapshot (name, version,
// centroids) on publish and shutdown, and reloads the registry on the
// next boot, so a restarted server serves its models immediately and
// version numbers never move backwards.
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, every in-flight request (including /assign rows
// waiting on a batch flush) is answered, then the process exits.
//
// The -loadtest mode boots the server on a loopback listener, registers
// a model trained on an N×D dataset, then hammers /assign over HTTP
// with concurrent clients and reports sustained requests/sec and
// latency quantiles (the EXPERIMENTS.md serving row).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"knor/internal/cliutil"
	"knor/internal/kmeans"
	"knor/internal/netcluster"
	"knor/internal/serve"
	"knor/internal/shardserve"
	"knor/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxBatch     = flag.Int("batch", 1024, "max rows per blocked assignment flush")
		maxWait      = flag.Duration("wait", 200*time.Microsecond, "max time a request waits for its batch to fill")
		threads      = flag.Int("threads", 0, "GEMM threads (0 = GOMAXPROCS)")
		nodes        = flag.Int("nodes", 4, "simulated NUMA nodes to pin model shards across")
		machines     = flag.Int("machines", 1, "shard each model's centroids across this many simulated machines (1 = single-node assigner)")
		replicas     = flag.Int("replicas", 1, "replicas per shard group: /assign fails over across them, so replicas-1 machine deaths stay invisible (needs -machines > 1)")
		quota        = flag.Int("quota", 0, "max in-flight /assign requests per model; excess answered 429 (0 = unlimited)")
		stateDir     = flag.String("state", "", "directory for model snapshot persistence; reloaded on restart (empty = none)")
		publishEvery = flag.Int("publish-every", 4096, "auto-publish a stream model every N observed rows (0 = manual)")
		precision    = flag.String("precision", "64", "assign-path element type: 32 | 64")
		quantize     = flag.String("quantize", "", "int8: serve /assign via the quantized centroid scan + exact re-rank (requires -precision 32; answers stay bit-identical)")
		retainVers   = flag.Int("retain-versions", 0, "retained model versions per name (0 = default 8)")
		retainAge    = flag.Duration("retain-age", 0, "evict unpinned versions older than this (0 = no age bound)")
		drainWait    = flag.Duration("drain", 15*time.Second, "max time to drain in-flight requests on shutdown")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		traceEvery   = flag.Int("trace-sample", 1000, "sample one /assign request in every N for /debug/traces (0 = off)")
		accessLog    = flag.Bool("access-log", false, "log one line per HTTP request (with request IDs) to stderr")
		telemetryOn  = flag.Bool("telemetry", true, "record latency histograms and traces (counters/gauges stay on regardless)")
		eventsLog    = flag.Bool("events-log", false, "mirror the structured cluster event journal (/debug/events) to stderr")

		loadtest  = flag.Bool("loadtest", false, "run the self-contained /assign load test and exit")
		ltN       = flag.Int("lt-n", 1_000_000, "loadtest: training rows")
		ltD       = flag.Int("lt-d", 16, "loadtest: dimensions")
		ltK       = flag.Int("lt-k", 100, "loadtest: clusters")
		ltClients = flag.Int("lt-clients", 64, "loadtest: concurrent HTTP clients")
		ltReqs    = flag.Int("lt-requests", 50_000, "loadtest: total /assign requests")
		ltRows    = flag.Int("lt-rows", 4, "loadtest: query rows per request")
		ltSeed    = flag.Int64("lt-seed", 1, "loadtest: dataset/query seed")
	)
	var cluster cliutil.ClusterFlags
	cluster.Register(flag.CommandLine)
	flag.Parse()
	if *threads <= 0 {
		*threads = runtime.GOMAXPROCS(0)
	}
	prec, err := cliutil.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knorserve:", err)
		os.Exit(2)
	}
	switch *quantize {
	case "":
	case "int8":
		if prec != kmeans.Precision32 {
			fmt.Fprintln(os.Stderr, "knorserve: -quantize int8 requires -precision 32")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "knorserve: unknown -quantize %q (want int8)\n", *quantize)
		os.Exit(2)
	}
	telemetry.SetEnabled(*telemetryOn)
	if *eventsLog {
		telemetry.DefaultJournal.SetMirror(os.Stderr)
	}
	role, err := cluster.Validate(*machines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knorserve:", err)
		os.Exit(2)
	}
	digest := "knorserve:p=" + prec.String()
	if role == cliutil.RoleWorker {
		// Worker process: join the coordinator, serve pushed shards and
		// answer assign RPCs until the coordinator goes away. No HTTP.
		tr, err := netcluster.DialCluster(netcluster.TCPOptions{
			Listen: cluster.Listen, Join: cluster.Join, Digest: digest,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "knorserve:", err)
			os.Exit(1)
		}
		fmt.Printf("knorserve worker rank %d/%d serving (coordinator %s)\n",
			tr.Rank(), tr.Size(), cluster.Join)
		err = shardserve.ServePeer(tr, shardserve.PeerOptions{
			Batcher: serve.BatcherOptions{MaxBatch: *maxBatch, MaxWait: *maxWait, Threads: *threads},
		})
		tr.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "knorserve:", err)
			os.Exit(1)
		}
		fmt.Println("knorserve worker: coordinator closed, bye")
		return
	}
	var transport netcluster.Transport
	if role == cliutil.RoleCoordinator {
		fmt.Printf("knorserve coordinator on %s waiting for %d workers...\n", cluster.Listen, *machines-1)
		tr, err := netcluster.DialCluster(netcluster.TCPOptions{
			Listen: cluster.Listen, Machines: *machines, Digest: digest,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "knorserve:", err)
			os.Exit(1)
		}
		transport = tr
		fmt.Printf("knorserve cluster bootstrapped: %d processes\n", tr.Size())
	}
	srv, err := newServer(serverOptions{
		transport: transport,
		maxBatch:  *maxBatch, maxWait: *maxWait, threads: *threads,
		nodes: *nodes, machines: *machines, replicas: *replicas, quota: *quota, stateDir: *stateDir,
		publishEvery: *publishEvery, precision: prec, quantize: *quantize,
		retainVersions: *retainVers, retainAge: *retainAge,
		pprof: *pprofOn, traceEvery: *traceEvery, accessLog: *accessLog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "knorserve:", err)
		os.Exit(1)
	}

	if *loadtest {
		defer srv.close()
		err := runLoadTest(srv, loadTestOptions{
			n: *ltN, d: *ltD, k: *ltK,
			clients: *ltClients, requests: *ltReqs, rowsPerReq: *ltRows, seed: *ltSeed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "knorserve:", err)
			os.Exit(1)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knorserve:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mode := prec.String()
	if *quantize != "" {
		mode += "+" + *quantize
	}
	fmt.Printf("knorserve listening on %s (batch=%d wait=%s threads=%d precision=%s machines=%d replicas=%d)\n",
		ln.Addr(), *maxBatch, *maxWait, *threads, mode, *machines, *replicas)
	if err := serveUntil(ctx, ln, srv, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "knorserve:", err)
		os.Exit(1)
	}
	fmt.Println("knorserve: drained, bye")
}
