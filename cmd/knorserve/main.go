// Command knorserve exposes the online clustering service layer
// (internal/serve) over HTTP/JSON: a model registry fed by any trainer,
// a batched GEMM assignment path, and stream updaters that keep models
// learning while they serve.
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /v1/models          list models (name, version, k, d, node)
//	POST /v1/models          train & register: {"name","k",("spec"|"rows"),...}
//	POST /v1/assign          {"model","rows":[[...],...]} -> clusters + sqdists
//	POST /v1/observe         fold rows into a model's stream updater
//	POST /v1/publish         snapshot a stream updater into a new version
//	GET  /v1/stats           batcher counters and p50/p99 latency
//
// Usage:
//
//	knorserve -addr :8080
//	knorserve -loadtest -lt-n 1000000 -lt-d 16 -lt-k 100
//
// The -loadtest mode boots the server on a loopback listener, registers
// a model trained on an N×D dataset, then hammers /assign over HTTP
// with concurrent clients and reports sustained requests/sec and
// latency quantiles (the EXPERIMENTS.md serving row).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxBatch     = flag.Int("batch", 1024, "max rows per blocked assignment flush")
		maxWait      = flag.Duration("wait", 200*time.Microsecond, "max time a request waits for its batch to fill")
		threads      = flag.Int("threads", 0, "GEMM threads (0 = GOMAXPROCS)")
		nodes        = flag.Int("nodes", 4, "simulated NUMA nodes to pin model shards across")
		publishEvery = flag.Int("publish-every", 4096, "auto-publish a stream model every N observed rows (0 = manual)")

		loadtest  = flag.Bool("loadtest", false, "run the self-contained /assign load test and exit")
		ltN       = flag.Int("lt-n", 1_000_000, "loadtest: training rows")
		ltD       = flag.Int("lt-d", 16, "loadtest: dimensions")
		ltK       = flag.Int("lt-k", 100, "loadtest: clusters")
		ltClients = flag.Int("lt-clients", 64, "loadtest: concurrent HTTP clients")
		ltReqs    = flag.Int("lt-requests", 50_000, "loadtest: total /assign requests")
		ltRows    = flag.Int("lt-rows", 4, "loadtest: query rows per request")
		ltSeed    = flag.Int64("lt-seed", 1, "loadtest: dataset/query seed")
	)
	flag.Parse()
	if *threads <= 0 {
		*threads = runtime.GOMAXPROCS(0)
	}
	srv := newServer(serverOptions{
		maxBatch: *maxBatch, maxWait: *maxWait, threads: *threads,
		nodes: *nodes, publishEvery: *publishEvery,
	})
	defer srv.close()

	if *loadtest {
		err := runLoadTest(srv, loadTestOptions{
			n: *ltN, d: *ltD, k: *ltK,
			clients: *ltClients, requests: *ltReqs, rowsPerReq: *ltRows, seed: *ltSeed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "knorserve:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("knorserve listening on %s (batch=%d wait=%s threads=%d)\n",
		*addr, *maxBatch, *maxWait, *threads)
	if err := http.ListenAndServe(*addr, srv.mux()); err != nil {
		fmt.Fprintln(os.Stderr, "knorserve:", err)
		os.Exit(1)
	}
}
