package main

// End-to-end tests of the PR-5 serving features: centroid-sharded
// assignment (-machines), per-model quotas with 429 backpressure
// (-quota), and snapshot persistence across a restart (-state).

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"knor/internal/kmeans"
)

// TestE2EShardedAssign runs the same model on a single-node and a
// 4-machine server and checks the answers match exactly — the HTTP
// layer's view of the shardserve parity contract — at both precisions.
func TestE2EShardedAssign(t *testing.T) {
	create := `{"name":"s","k":7,"iters":15,"spec":{"n":500,"d":4,"clusters":7,"spread":0.05,"seed":3}}`
	q := `{"model":"s","rows":[[0.5,0.5,0.5,0.5],[0.1,0.9,0.1,0.9],[0.25,0.5,0.75,1.0]]}`
	for _, prec := range []kmeans.Precision{kmeans.Precision64, kmeans.Precision32} {
		_, single := newTestServer(t, serverOptions{precision: prec})
		_, sharded := newTestServer(t, serverOptions{precision: prec, machines: 4})
		for _, ts := range []string{single.URL, sharded.URL} {
			if code, body := postJSON(t, ts+"/v1/models", create); code != http.StatusCreated {
				t.Fatalf("create: %d %v", code, body)
			}
		}
		_, bs := postJSON(t, single.URL+"/v1/assign", q)
		_, bh := postJSON(t, sharded.URL+"/v1/assign", q)
		if bs["version"] != bh["version"] {
			t.Fatalf("precision %v: version %v vs %v", prec, bs["version"], bh["version"])
		}
		cs, ch := bs["clusters"].([]any), bh["clusters"].([]any)
		ds, dh := bs["sqdists"].([]any), bh["sqdists"].([]any)
		for i := range cs {
			if cs[i] != ch[i] || ds[i] != dh[i] {
				t.Fatalf("precision %v row %d: single (%v, %v) vs sharded (%v, %v)",
					prec, i, cs[i], ds[i], ch[i], dh[i])
			}
		}
		var stats map[string]any
		getJSON(t, sharded.URL+"/v1/stats", &stats)
		if stats["machines"] != float64(4) {
			t.Fatalf("stats machines: %v", stats["machines"])
		}
	}
}

// TestE2EQuota429 parks one /assign behind a long batch window and
// checks the next request for that model is answered 429 with a
// Retry-After hint, on both the single-node and the sharded path.
func TestE2EQuota429(t *testing.T) {
	for _, machines := range []int{1, 3} {
		s, ts := newTestServer(t, serverOptions{
			maxBatch: 1 << 20, maxWait: time.Minute, quota: 1, machines: machines,
		})
		if code, body := postJSON(t, ts.URL+"/v1/models",
			`{"name":"q","k":2,"rows":[[0,0],[0,1],[1,0],[1,1]]}`); code != http.StatusCreated {
			t.Fatalf("create: %d %v", code, body)
		}
		parked := make(chan int, 1)
		go func() {
			code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"q","rows":[[0.5,0.5]]}`)
			parked <- code
		}()
		// Wait for the parked request to occupy the quota slot.
		for deadline := time.Now().Add(5 * time.Second); s.batcher.Stats().Queued == 0; {
			if time.Now().After(deadline) {
				t.Fatal("parked request never queued")
			}
			time.Sleep(time.Millisecond)
		}
		resp, err := http.Post(ts.URL+"/v1/assign", "application/json",
			strings.NewReader(`{"model":"q","rows":[[0.5,0.5]]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("machines=%d: overloaded model answered %d, want 429", machines, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("machines=%d: 429 without Retry-After", machines)
		}
		// Drain the parked request so cleanup doesn't wait out MaxWait.
		s.batcher.Flush()
		if code := <-parked; code != http.StatusOK {
			t.Fatalf("machines=%d: parked request answered %d", machines, code)
		}
		var stats map[string]any
		getJSON(t, ts.URL+"/v1/stats", &stats)
		if stats["rejected"] != float64(1) {
			t.Errorf("machines=%d: rejected counter %v, want 1", machines, stats["rejected"])
		}
	}
}

// TestE2EStateRoundTrip boots a server with -state, publishes two
// versions, shuts down, boots a second server on the same directory
// and checks the models come back: same version (never backwards),
// same answers, and the stream path keeps working.
func TestE2EStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	q := `{"model":"r","rows":[[0.3,0.7],[0.9,0.1]]}`

	s1, ts1 := newTestServer(t, serverOptions{stateDir: dir, publishEvery: 0})
	if code, body := postJSON(t, ts1.URL+"/v1/models",
		`{"name":"r","k":2,"rows":[[0,0],[0,1],[1,0],[1,1]]}`); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if code, body := postJSON(t, ts1.URL+"/v1/observe",
		`{"model":"r","rows":[[0.6,0.4]]}`); code != http.StatusOK {
		t.Fatalf("observe: %d %v", code, body)
	}
	if code, body := postJSON(t, ts1.URL+"/v1/publish", `{"model":"r"}`); code != http.StatusOK ||
		body["version"] != float64(2) {
		t.Fatalf("publish: %d %v", code, body)
	}
	_, before := postJSON(t, ts1.URL+"/v1/assign", q)
	ts1.Close()
	s1.close() // final state save

	s2, ts2 := newTestServer(t, serverOptions{stateDir: dir, publishEvery: 0})
	defer func() { _ = s2 }()
	var models []modelInfo
	if code := getJSON(t, ts2.URL+"/v1/models", &models); code != http.StatusOK {
		t.Fatalf("list after restart: %d", code)
	}
	if len(models) != 1 || models[0].Name != "r" || models[0].Version != 2 || models[0].K != 2 {
		t.Fatalf("models after restart: %+v", models)
	}
	// The reloaded model answers identically (same centroid bits).
	code, after := postJSON(t, ts2.URL+"/v1/assign", q)
	if code != http.StatusOK {
		t.Fatalf("assign after restart: %d %v", code, after)
	}
	bc, ac := before["clusters"].([]any), after["clusters"].([]any)
	bd, ad := before["sqdists"].([]any), after["sqdists"].([]any)
	for i := range bc {
		if bc[i] != ac[i] || bd[i] != ad[i] {
			t.Fatalf("answers changed across restart: %v/%v vs %v/%v", bc, bd, ac, ad)
		}
	}
	if after["version"] != float64(2) {
		t.Fatalf("version after restart: %v, want 2", after["version"])
	}
	// The stream path resumed: observe and publish move to version 3.
	if code, body := postJSON(t, ts2.URL+"/v1/observe",
		`{"model":"r","rows":[[0.2,0.8]]}`); code != http.StatusOK {
		t.Fatalf("observe after restart: %d %v", code, body)
	}
	if code, body := postJSON(t, ts2.URL+"/v1/publish", `{"model":"r"}`); code != http.StatusOK ||
		body["version"] != float64(3) {
		t.Fatalf("publish after restart: %d %v", code, body)
	}
}

// TestE2EStreamStateResume is the restart-in-the-middle-of-a-mini-batch
// contract: a server killed between publishes must come back with its
// stream updater's unpublished state (fold counts drive the learning
// rate), so observing the remaining rows and publishing lands on the
// same centroid bits an uninterrupted server produces. The restarted
// server's answers are compared against a never-restarted oracle fed
// the identical observation sequence.
func TestE2EStreamStateResume(t *testing.T) {
	create := `{"name":"m","k":2,"rows":[[0,0],[0,1],[1,0],[1,1]]}`
	batch1 := `{"model":"m","rows":[[0.1,0.2],[0.8,0.9],[0.4,0.6]]}`
	batch2 := `{"model":"m","rows":[[0.7,0.3],[0.2,0.2]]}`
	q := `{"model":"m","rows":[[0.3,0.7],[0.9,0.1],[0.5,0.5]]}`

	// Oracle: one server folds both batches with no interruption.
	_, oracle := newTestServer(t, serverOptions{publishEvery: 0})
	for _, step := range []string{create, batch1, batch2} {
		url, want := oracle.URL+"/v1/observe", http.StatusOK
		if step == create {
			url, want = oracle.URL+"/v1/models", http.StatusCreated
		}
		if code, body := postJSON(t, url, step); code != want {
			t.Fatalf("oracle step: %d %v", code, body)
		}
	}
	if code, body := postJSON(t, oracle.URL+"/v1/publish", `{"model":"m"}`); code != http.StatusOK {
		t.Fatalf("oracle publish: %d %v", code, body)
	}
	_, wantAns := postJSON(t, oracle.URL+"/v1/assign", q)

	// Same sequence with a full server restart between the batches.
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, serverOptions{stateDir: dir, publishEvery: 0})
	if code, body := postJSON(t, ts1.URL+"/v1/models", create); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if code, body := postJSON(t, ts1.URL+"/v1/observe", batch1); code != http.StatusOK {
		t.Fatalf("observe batch1: %d %v", code, body)
	}
	ts1.Close()
	s1.close() // persists the mid-mini-batch stream checkpoint

	_, ts2 := newTestServer(t, serverOptions{stateDir: dir, publishEvery: 0})
	if code, body := postJSON(t, ts2.URL+"/v1/observe", batch2); code != http.StatusOK {
		t.Fatalf("observe batch2 after restart: %d %v", code, body)
	}
	if code, body := postJSON(t, ts2.URL+"/v1/publish", `{"model":"m"}`); code != http.StatusOK ||
		body["version"] != float64(2) {
		t.Fatalf("publish after restart: %d %v", code, body)
	}
	code, gotAns := postJSON(t, ts2.URL+"/v1/assign", q)
	if code != http.StatusOK {
		t.Fatalf("assign after restart: %d %v", code, gotAns)
	}
	wc, gc := wantAns["clusters"].([]any), gotAns["clusters"].([]any)
	wd, gd := wantAns["sqdists"].([]any), gotAns["sqdists"].([]any)
	for i := range wc {
		if wc[i] != gc[i] || wd[i] != gd[i] {
			t.Fatalf("row %d: resumed server answered (%v, %v), uninterrupted oracle (%v, %v)",
				i, gc[i], gd[i], wc[i], wd[i])
		}
	}
	if gotAns["version"] != wantAns["version"] {
		t.Fatalf("version %v after resume, oracle %v", gotAns["version"], wantAns["version"])
	}
}
