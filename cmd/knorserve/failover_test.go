package main

// End-to-end tests of the replicated serving surface: -replicas
// failover keeping /assign bit-exact through machine kills, /readyz's
// degraded/unavailable classification, and the /v1/machines admin
// endpoints.

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// awaitReady polls /readyz until its body status matches, tolerating
// the asynchronous healing window after a membership transition.
func awaitReady(t *testing.T, url, wantStatus string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var body map[string]any
		getJSON(t, url+"/readyz", &body)
		if body["status"] == wantStatus {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never reached %q, last: %v", wantStatus, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func machineAction(t *testing.T, url string, m int, action string) {
	t.Helper()
	code, body := postJSON(t, url+"/v1/machines", fmt.Sprintf(`{"machine":%d,"action":%q}`, m, action))
	if code != http.StatusOK {
		t.Fatalf("%s machine %d: %d %v", action, m, code, body)
	}
}

// TestE2EFailover walks a 3-machine R=2 cluster through the whole
// fault ladder: healthy → one dead (failover, answers unchanged) →
// two dead (healed onto the survivor, degraded but exact) → all dead
// (unavailable, 503s) → revived (ready and exact again).
func TestE2EFailover(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{machines: 3, replicas: 2})
	create := `{"name":"f","k":7,"iters":15,"spec":{"n":400,"d":4,"clusters":7,"spread":0.05,"seed":5}}`
	if code, body := postJSON(t, ts.URL+"/v1/models", create); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	awaitReady(t, ts.URL, "ready")

	q := `{"model":"f","rows":[[0.5,0.5,0.5,0.5],[0.1,0.9,0.1,0.9],[0.9,0.2,0.4,0.6]]}`
	code, baseline := postJSON(t, ts.URL+"/v1/assign", q)
	if code != http.StatusOK {
		t.Fatalf("baseline assign: %d %v", code, baseline)
	}
	assertExact := func(when string) {
		t.Helper()
		code, got := postJSON(t, ts.URL+"/v1/assign", q)
		if code != http.StatusOK {
			t.Fatalf("%s: assign %d %v", when, code, got)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("%s: answers drifted from baseline:\n%v\n%v", when, got, baseline)
		}
	}

	// One machine down: R=2 keeps every group answerable; healing then
	// re-spreads over the two survivors, so the cluster returns to
	// fully-replicated "ready". Answers never change.
	machineAction(t, ts.URL, 0, "kill")
	assertExact("one machine down")
	awaitReady(t, ts.URL, "ready")
	assertExact("healed onto two machines")

	// Two down: only one machine left, so groups can hold one replica
	// (< R) — steady-state "degraded", still serving, still exact.
	machineAction(t, ts.URL, 1, "kill")
	body := awaitReady(t, ts.URL, "degraded")
	if body["degraded"] == nil {
		t.Fatalf("degraded readyz carries no shard list: %v", body)
	}
	assertExact("two machines down")

	// All down: nothing can answer. /readyz flips to 503 "unavailable"
	// naming the groups; /assign answers 503.
	machineAction(t, ts.URL, 2, "kill")
	awaitReady(t, ts.URL, "unavailable")
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d with every machine dead, want 503", resp.StatusCode)
	}
	if code, errBody := postJSON(t, ts.URL+"/v1/assign", q); code != http.StatusServiceUnavailable {
		t.Fatalf("assign with all machines dead: %d %v, want 503", code, errBody)
	}

	// Recovery restores exactness.
	for m := 0; m < 3; m++ {
		machineAction(t, ts.URL, m, "revive")
	}
	awaitReady(t, ts.URL, "ready")
	assertExact("after full recovery")
}

// TestE2EMachinesEndpoint checks the admin surface shape and its
// single-node 404.
func TestE2EMachinesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{machines: 2, replicas: 2})
	var body map[string]any
	if code := getJSON(t, ts.URL+"/v1/machines", &body); code != http.StatusOK {
		t.Fatalf("GET /v1/machines: %d", code)
	}
	if n := len(body["machines"].([]any)); n != 2 {
		t.Fatalf("machines list has %d entries, want 2", n)
	}
	if body["replicas"] != float64(2) {
		t.Fatalf("replicas %v, want 2", body["replicas"])
	}
	if code, resp := postJSON(t, ts.URL+"/v1/machines", `{"machine":7,"action":"kill"}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range kill: %d %v", code, resp)
	}
	if code, resp := postJSON(t, ts.URL+"/v1/machines", `{"machine":0,"action":"explode"}`); code != http.StatusBadRequest {
		t.Fatalf("bad action: %d %v", code, resp)
	}

	_, single := newTestServer(t, serverOptions{})
	var e map[string]any
	if code := getJSON(t, single.URL+"/v1/machines", &e); code != http.StatusNotFound {
		t.Fatalf("single-node GET /v1/machines: %d, want 404", code)
	}
}
