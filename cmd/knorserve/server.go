package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/netcluster"
	"knor/internal/serve"
	"knor/internal/shardserve"
	"knor/internal/telemetry"
	"knor/internal/topology"
	"knor/internal/workload"
)

type serverOptions struct {
	maxBatch     int
	maxWait      time.Duration
	threads      int
	nodes        int
	publishEvery int
	// machines shards every model's centroids across this many
	// simulated machines (the -machines flag); 1 serves single-node.
	machines int
	// replicas places every shard group on this many distinct machines
	// (the -replicas flag): /assign fans out to the preferred replica
	// and fails over to the others, so any replicas-1 machine deaths
	// stay invisible to clients. Only meaningful with machines > 1.
	replicas int
	// quota bounds in-flight /assign requests per model (-quota);
	// excess requests are answered 429 with a Retry-After hint.
	quota int
	// stateDir persists model snapshots on publish and shutdown and
	// reloads them on boot (the -state flag); empty disables.
	stateDir string
	// precision selects the assign hot path's element type (the
	// -precision flag): float32 halves per-flush memory traffic.
	precision kmeans.Precision
	// quantize, when "int8" (the -quantize flag, float32 only), serves
	// /assign via the quantized centroid scan + exact re-rank.
	quantize string
	// retainVersions/retainAge bound the registry's per-model history.
	retainVersions int
	retainAge      time.Duration
	// pprof exposes net/http/pprof under /debug/pprof/ (the -pprof
	// flag); off by default — profiling endpoints are opt-in.
	pprof bool
	// traceEvery samples one /assign request in every N for the
	// /debug/traces dump (the -trace-sample flag); 0 disables tracing.
	traceEvery int
	// accessLog emits one structured line per HTTP request with its
	// request ID (the -access-log flag).
	accessLog bool
	// transport, when set, is a bootstrapped netcluster coordinator
	// rank: the machines are real worker processes (ServePeer) instead
	// of simulated in-process registries. Implies machines =
	// transport.Size(); heartbeats arrive over the wire instead of the
	// in-process pulse clock.
	transport netcluster.Transport
}

// server wires the registry, the batched assignment path (single-node
// or centroid-sharded), and one stream updater per model behind JSON
// handlers.
type server struct {
	opts    serverOptions
	reg     *serve.Registry
	batcher serve.Assigner
	tracer  *telemetry.Tracer // nil unless -trace-sample > 0
	// shards/topo are set when -machines > 1: the replicated shard
	// layout and the membership layer healing it. pulseStop halts the
	// health-pulse clock feeding the topology.
	shards    *shardserve.ShardRegistry
	topo      *topology.Topology
	pulseStop func()
	// hub is the coordinator side of a real cluster (-cluster mode):
	// it pushes shard placements to worker peers and answers fan-out
	// RPCs. nil in single-process and simulated-machine modes.
	hub *shardserve.Hub
	// draining flips before the HTTP listener shuts down so /readyz
	// turns the server away from load balancers while in-flight
	// requests finish.
	draining atomic.Bool

	closeOnce sync.Once
	sweepStop chan struct{}
	// saveCh nudges the saver goroutine after a publish; saveDone
	// closes when it exits. Both nil without -state.
	saveCh    chan struct{}
	saveStop  chan struct{}
	saveDone  chan struct{}
	statePath string

	mu      sync.Mutex
	streams map[string]*serve.StreamEngine
	// unfolded counts rows observed since the last auto-publish.
	unfolded map[string]int
}

func newServer(opts serverOptions) (*server, error) {
	var reg *serve.Registry
	var loadedCPs []serve.StreamCheckpoint
	statePath := ""
	if opts.stateDir != "" {
		if err := os.MkdirAll(opts.stateDir, 0o755); err != nil {
			return nil, fmt.Errorf("state dir: %w", err)
		}
		statePath = filepath.Join(opts.stateDir, "registry.json")
		loaded, cps, err := serve.LoadState(statePath, opts.nodes)
		if err != nil {
			return nil, err
		}
		reg, loadedCPs = loaded, cps // nil on first boot
	}
	if reg == nil {
		reg = serve.NewRegistry(opts.nodes)
	}
	if opts.retainVersions > 0 || opts.retainAge > 0 {
		reg.SetRetention(serve.Retention{MaxVersions: opts.retainVersions, MaxAge: opts.retainAge})
	}
	var tracer *telemetry.Tracer
	if opts.traceEvery > 0 {
		tracer = telemetry.NewTracer(opts.traceEvery, 16)
	}
	bopts := serve.BatcherOptions{
		MaxBatch: opts.maxBatch, MaxWait: opts.maxWait, Threads: opts.threads,
		ModelQuota: opts.quota, Tracer: tracer, Quantize: opts.quantize,
	}
	var batcher serve.Assigner
	var shards *shardserve.ShardRegistry
	var topo *topology.Topology
	var pulseStop func()
	var hub *shardserve.Hub
	switch {
	case opts.transport != nil:
		// Real cluster: machine m is transport rank m. Machine 0 is
		// this process; the rest are worker peers running ServePeer.
		// Heartbeats arrive over the wire (hub demux), the hub's clock
		// self-pulses machine 0 and sweeps, and shard placements are
		// pushed to the owning peers on publish and rebalance.
		m := opts.transport.Size()
		topo = topology.New(topology.Config{Machines: m})
		hub = shardserve.NewHub(opts.transport, 0)
		shards = shardserve.NewShardRegistryWith(shardserve.Options{
			Machines: m, Replicas: opts.replicas, Topology: topo, Remote: hub,
		})
		if err := shards.Attach(reg); err != nil {
			topo.Close()
			return nil, err
		}
		batcher = shardserve.NewAssigner(shards, bopts, opts.precision)
		hub.Start(topo, shards)
	case opts.machines > 1:
		topo = topology.New(topology.Config{Machines: opts.machines})
		shards = shardserve.NewShardRegistryWith(shardserve.Options{
			Machines: opts.machines, Replicas: opts.replicas, Topology: topo,
		})
		if err := shards.Attach(reg); err != nil {
			topo.Close()
			return nil, err
		}
		batcher = shardserve.NewAssigner(shards, bopts, opts.precision)
		// The production detection loop: every simulated machine whose
		// process is "up" (kill switch off) pulses; machines that go
		// silent are swept dead and their shards re-spread.
		pulseStop = topo.StartClock(0, func(m int) bool { return !shards.MachineDown(m) })
	default:
		batcher = serve.NewAssigner(reg, bopts, opts.precision)
	}
	s := &server{
		opts:      opts,
		reg:       reg,
		batcher:   batcher,
		tracer:    tracer,
		shards:    shards,
		topo:      topo,
		pulseStop: pulseStop,
		hub:       hub,
		sweepStop: make(chan struct{}),
		statePath: statePath,
		streams:   map[string]*serve.StreamEngine{},
		unfolded:  map[string]int{},
	}
	// Reloaded models resume their stream updater from the persisted
	// mini-batch checkpoint when the state file carries one — the
	// resumed engine folds the next batch with exactly the learning
	// rates an uninterrupted one would. Models from older state files
	// (no checkpoint) get a fresh updater seeded from the published
	// centroids; only their early post-restart folding is slower.
	cpByModel := make(map[string]serve.StreamCheckpoint, len(loadedCPs))
	for _, cp := range loadedCPs {
		cpByModel[cp.Model] = cp
	}
	for _, m := range reg.List() {
		cp, ok := cpByModel[m.Name]
		if !ok {
			cp = serve.StreamCheckpoint{
				Model:     m.Name,
				Centroids: m.Centroids,
				Counts:    make([]int64, m.K()),
				Published: m.Version,
			}
		}
		eng, err := serve.ResumeStreamEngine(cp, reg)
		if err != nil {
			return nil, fmt.Errorf("restore stream for %q: %w", m.Name, err)
		}
		s.streams[m.Name] = eng
	}
	if statePath != "" {
		s.saveCh = make(chan struct{}, 1)
		s.saveStop = make(chan struct{})
		s.saveDone = make(chan struct{})
		// The hook runs under the registry lock: only nudge the saver.
		reg.OnPublish(func(*serve.Model) {
			select {
			case s.saveCh <- struct{}{}:
			default:
			}
		})
		go s.saver()
	}
	if opts.retainAge > 0 {
		// Publish-driven eviction never ages out a model that stopped
		// publishing, so sweep on a timer (a few times per MaxAge).
		go s.sweep(clampDuration(opts.retainAge/4, time.Second, time.Minute))
	}
	return s, nil
}

// saver persists the registry and the stream-updater checkpoints after
// publishes (coalescing bursts) and once more on shutdown — the
// shutdown save captures any rows folded since the last publish, so a
// restart resumes mid-stream exactly.
func (s *server) saver() {
	defer close(s.saveDone)
	save := func() {
		cps := s.checkpoints()
		if err := serve.SaveState(s.reg, cps, s.statePath); err != nil {
			telSaveErrors.Inc()
			fmt.Fprintln(os.Stderr, "knorserve: state save:", err)
			telemetry.Log("serve", telemetry.SevError, "state save failed",
				telemetry.F("path", s.statePath), telemetry.F("err", err.Error()))
			return
		}
		telemetry.Log("serve", telemetry.SevInfo, "stream checkpoint saved",
			telemetry.F("path", s.statePath),
			telemetry.F("models", len(s.reg.List())), telemetry.F("checkpoints", len(cps)))
	}
	for {
		select {
		case <-s.saveCh:
			save()
		case <-s.saveStop:
			save()
			return
		}
	}
}

// checkpoints snapshots every stream updater's mini-batch state.
func (s *server) checkpoints() []serve.StreamCheckpoint {
	s.mu.Lock()
	engs := make([]*serve.StreamEngine, 0, len(s.streams))
	for _, eng := range s.streams {
		engs = append(engs, eng)
	}
	s.mu.Unlock()
	cps := make([]serve.StreamCheckpoint, 0, len(engs))
	for _, eng := range engs {
		cps = append(cps, eng.Checkpoint())
	}
	return cps
}

// sweep applies the age bound periodically until close.
func (s *server) sweep(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.reg.EvictExpired(time.Now())
		case <-s.sweepStop:
			return
		}
	}
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

func (s *server) close() {
	s.closeOnce.Do(func() {
		close(s.sweepStop)
		if s.pulseStop != nil {
			s.pulseStop()
		}
		s.batcher.Close()
		if s.hub != nil {
			// Closes the transport too, which tells the worker peers'
			// serve loops to exit.
			s.hub.Close()
		}
		if s.topo != nil {
			s.topo.Close()
		}
		if s.saveStop != nil {
			// The saver writes one final snapshot before exiting, so a
			// clean shutdown never loses a published version.
			close(s.saveStop)
			<-s.saveDone
		}
	})
}

// mux builds the route table wrapped in the observability middleware.
// /healthz is pure liveness (the process is up and serving its mux);
// /readyz is readiness (this instance can usefully take traffic right
// now) — load balancers should watch the latter.
func (s *server) mux() http.Handler {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	m.HandleFunc("GET /readyz", s.handleReady)
	m.Handle("GET /metrics", telemetry.Default.Handler())
	m.HandleFunc("GET /metrics/cluster", s.handleClusterMetrics)
	m.HandleFunc("GET /debug/traces", s.handleTraces)
	m.HandleFunc("GET /debug/events", s.handleEvents)
	if s.opts.pprof {
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	m.HandleFunc("GET /v1/models", s.handleListModels)
	m.HandleFunc("POST /v1/models", s.handleCreateModel)
	m.HandleFunc("GET /v1/machines", s.handleListMachines)
	m.HandleFunc("POST /v1/machines", s.handleMachineAction)
	m.HandleFunc("GET /v1/cluster/stats", s.handleClusterStats)
	m.HandleFunc("POST /v1/assign", s.handleAssign)
	m.HandleFunc("POST /v1/observe", s.handleObserve)
	m.HandleFunc("POST /v1/publish", s.handlePublish)
	m.HandleFunc("GET /v1/stats", s.handleStats)
	return s.withObservability(m)
}

// handleReady answers readiness: 503 while draining, when no model is
// published yet (nothing to serve), or when the state directory stopped
// being writable (snapshots would silently fail). With a replicated
// shard layout it also classifies shard health: "degraded" (some
// replicas down, every group still answering — 200, the instance can
// take traffic, but operators should look) and "unavailable" (at least
// one group has no live replica, so part of the centroid space cannot
// answer — 503). Both carry the affected shard groups in the body.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if len(s.reg.List()) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no models published"})
		return
	}
	if s.opts.stateDir != "" {
		probe, err := os.CreateTemp(s.opts.stateDir, ".readyz-*")
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"status": "state dir not writable: " + err.Error()})
			return
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	if s.shards != nil {
		degraded, unavailable := s.shards.Health()
		if len(unavailable) > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "unavailable", "unavailable": unavailable, "degraded": degraded,
			})
			return
		}
		if len(degraded) > 0 {
			writeJSON(w, http.StatusOK, map[string]any{
				"status": "degraded", "degraded": degraded,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleListMachines reports the simulated cluster: per-machine
// liveness (both the kill switch and the membership layer's view) and
// every shard group's replica health. 404 on a single-node server —
// there is no cluster to inspect.
func (s *server) handleListMachines(w http.ResponseWriter, _ *http.Request) {
	if s.shards == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("single-node server: no machines (-machines 1)"))
		return
	}
	type machineInfo struct {
		Machine int  `json:"machine"`
		Up      bool `json:"up"`   // kill switch: the process answers
		Live    bool `json:"live"` // membership: the topology's view
	}
	machines := make([]machineInfo, s.shards.Machines())
	for m := range machines {
		machines[m] = machineInfo{
			Machine: m,
			Up:      !s.shards.MachineDown(m),
			Live:    s.topo.IsLive(m),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"machines": machines,
		"replicas": s.shards.Replicas(),
		"groups":   s.shards.GroupHealth(),
	})
}

// handleMachineAction kills or revives one simulated machine — the
// fault-injection surface behind the chaos experiments, and a handy
// drain lever ("kill" stops routing to a machine immediately; its
// shards fail over and the membership layer re-spreads them).
func (s *server) handleMachineAction(w http.ResponseWriter, r *http.Request) {
	if s.shards == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("single-node server: no machines (-machines 1)"))
		return
	}
	var req struct {
		Machine int    `json:"machine"`
		Action  string `json:"action"` // "kill" | "revive"
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Machine < 0 || req.Machine >= s.shards.Machines() {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("machine %d out of range [0,%d)", req.Machine, s.shards.Machines()))
		return
	}
	switch req.Action {
	case "kill":
		s.shards.Kill(req.Machine)
	case "revive":
		s.shards.Revive(req.Machine)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown action %q (want kill|revive)", req.Action))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"machine": req.Machine, "action": req.Action, "live": s.topo.Live(),
	})
}

// traceView is one sampled request lifecycle as served by
// /debug/traces, durations in microseconds.
type traceView struct {
	ID uint64 `json:"id"`
	// TraceID is the propagatable trace identity in hex — the value
	// that crossed process boundaries for stitched cluster traces.
	TraceID string       `json:"trace_id"`
	Begin   time.Time    `json:"begin"`
	TotalUS float64      `json:"total_us"`
	Stages  []traceStage `json:"stages"`
}

type traceStage struct {
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	trs := s.tracer.Traces()
	out := make([]traceView, 0, len(trs))
	for _, t := range trs {
		tv := traceView{
			ID: t.ID, TraceID: fmt.Sprintf("%016x", t.ID), Begin: t.Begin,
			// A trace still being finalized has no end yet; clamp so the
			// dump never shows a negative total.
			TotalUS: max(t.End().Sub(t.Begin).Seconds()*1e6, 0),
		}
		for _, st := range t.Stages() {
			tv.Stages = append(tv.Stages, traceStage{
				Name:    st.Name,
				StartUS: st.Start.Seconds() * 1e6,
				DurUS:   st.Dur.Seconds() * 1e6,
			})
		}
		out = append(out, tv)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sample_every": s.opts.traceEvery,
		"traces":       out,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

type modelInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	K       int    `json:"k"`
	D       int    `json:"d"`
	Node    int    `json:"node"`
}

func infoOf(m *serve.Model) modelInfo {
	return modelInfo{Name: m.Name, Version: m.Version, K: m.K(), D: m.Dims(), Node: m.Node}
}

func (s *server) handleListModels(w http.ResponseWriter, _ *http.Request) {
	models := s.reg.List()
	out := make([]modelInfo, len(models))
	for i, m := range models {
		out[i] = infoOf(m)
	}
	writeJSON(w, http.StatusOK, out)
}

// createModelReq trains a model from inline rows or a generated spec
// and registers it together with its stream updater.
type createModelReq struct {
	Name    string      `json:"name"`
	K       int         `json:"k"`
	Rows    [][]float64 `json:"rows,omitempty"`
	Engine  string      `json:"engine,omitempty"` // "lloyd" (default) | "minibatch"
	Iters   int         `json:"iters,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Threads int         `json:"threads,omitempty"`
	// Spec generates a synthetic training set when rows are omitted.
	Spec *struct {
		N        int     `json:"n"`
		D        int     `json:"d"`
		Clusters int     `json:"clusters"`
		Spread   float64 `json:"spread"`
		Seed     int64   `json:"seed"`
	} `json:"spec,omitempty"`
}

func (s *server) handleCreateModel(w http.ResponseWriter, r *http.Request) {
	var req createModelReq
	if !decodeBody(w, r, &req) {
		return
	}
	// Reject duplicate names before paying for training (register
	// re-checks under the same lock, so a racing create still loses
	// cleanly there).
	s.mu.Lock()
	_, exists := s.streams[req.Name]
	s.mu.Unlock()
	if exists {
		writeErr(w, http.StatusConflict, fmt.Errorf("model %q already exists", req.Name))
		return
	}
	var data *matrix.Dense
	var err error
	switch {
	case len(req.Rows) > 0:
		data, err = matrix.FromRows(req.Rows)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case req.Spec != nil:
		if req.Spec.N <= 0 || req.Spec.D <= 0 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("spec is %dx%d: need at least one row and one dimension", req.Spec.N, req.Spec.D))
			return
		}
		data = workload.Generate(workload.Spec{
			Kind: workload.NaturalClusters, N: req.Spec.N, D: req.Spec.D,
			Clusters: req.Spec.Clusters, Spread: req.Spec.Spread, Seed: req.Spec.Seed,
		})
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need rows or spec"))
		return
	}
	// Zero-dimensional or empty training data would otherwise reach the
	// distance kernels (k=0/d=0 GEMMs) — reject it at the boundary.
	if data.Rows() == 0 || data.Cols() == 0 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("training data is %dx%d: need at least one row and one dimension", data.Rows(), data.Cols()))
		return
	}
	cfg := kmeans.Config{
		K: req.K, MaxIters: req.Iters, Seed: req.Seed,
		Init: kmeans.InitKMeansPP, Prune: kmeans.PruneMTI, Threads: req.Threads,
	}
	var centroids *matrix.Dense
	switch req.Engine {
	case "", "lloyd":
		res, rerr := kmeans.Run(data, cfg)
		if rerr != nil {
			writeErr(w, http.StatusBadRequest, rerr)
			return
		}
		centroids = res.Centroids
	case "minibatch":
		res, rerr := kmeans.RunMiniBatch(data, cfg, 1024)
		if rerr != nil {
			writeErr(w, http.StatusBadRequest, rerr)
			return
		}
		centroids = res.Centroids
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown engine %q", req.Engine))
		return
	}
	snap, err := s.register(req.Name, centroids)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(snap))
}

// register publishes seed centroids and attaches a stream updater.
func (s *server) register(name string, centroids *matrix.Dense) (*serve.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.streams[name]; exists {
		return nil, fmt.Errorf("model %q already exists", name)
	}
	eng, err := serve.NewStreamEngine(name, centroids, s.reg)
	if err != nil {
		return nil, err
	}
	s.streams[name] = eng
	snap, _ := s.reg.Get(name)
	return snap, nil
}

type assignReq struct {
	Model string      `json:"model"`
	Rows  [][]float64 `json:"rows"`
}

type assignResp struct {
	Version  int       `json:"version"`
	Clusters []int32   `json:"clusters"`
	SqDists  []float64 `json:"sqdists"`
}

func (s *server) handleAssign(w http.ResponseWriter, r *http.Request) {
	var req assignReq
	if !decodeBody(w, r, &req) {
		return
	}
	rows, err := matrix.FromRows(req.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	as, err := s.batcher.AssignRows(req.Model, rows)
	if err != nil {
		if errors.Is(err, serve.ErrOverloaded) {
			// Backpressure: the model's in-flight quota is exhausted. A
			// batch flush drains within MaxWait, so a 1-second backoff
			// is always enough headroom.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
			return
		}
		if errors.Is(err, shardserve.ErrShardUnavailable) {
			// A shard group lost every replica: that centroid range
			// cannot answer until a machine recovers (the error names
			// the range). Clients should retry elsewhere.
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := assignResp{Clusters: make([]int32, len(as)), SqDists: make([]float64, len(as))}
	if len(as) > 0 {
		resp.Version = as[0].Version
	}
	for i, a := range as {
		resp.Clusters[i] = a.Cluster
		resp.SqDists[i] = a.SqDist
	}
	writeJSON(w, http.StatusOK, resp)
}

type observeReq struct {
	Model string      `json:"model"`
	Rows  [][]float64 `json:"rows"`
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req observeReq
	if !decodeBody(w, r, &req) {
		return
	}
	rows, err := matrix.FromRows(req.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	eng, ok := s.streams[req.Model]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown model %q", req.Model))
		return
	}
	drift, err := eng.Observe(rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	version := 0
	if snap, ok := s.reg.Get(req.Model); ok {
		version = snap.Version
	}
	// Auto-publish once enough rows accumulated, so the query path
	// keeps up with the stream without manual /publish calls.
	if s.opts.publishEvery > 0 {
		s.mu.Lock()
		s.unfolded[req.Model] += rows.Rows()
		doPublish := s.unfolded[req.Model] >= s.opts.publishEvery
		if doPublish {
			s.unfolded[req.Model] = 0
		}
		s.mu.Unlock()
		if doPublish {
			if snap, perr := eng.Publish(); perr == nil {
				version = snap.Version
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seen": eng.Seen(), "drift": drift, "version": version,
	})
}

func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Model string `json:"model"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	eng, ok := s.streams[req.Model]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown model %q", req.Model))
		return
	}
	snap, err := eng.Publish()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, infoOf(snap))
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.batcher.Stats()
	machines := s.opts.machines
	if machines < 1 {
		machines = 1
	}
	replicas := 1
	if s.shards != nil {
		replicas = s.shards.Replicas()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":       st.Requests,
		"rows":           st.Rows,
		"flushes":        st.Flushes,
		"rejected":       st.Rejected,
		"p50_ms":         nanToZero(st.P50 * 1e3),
		"p95_ms":         nanToZero(st.P95 * 1e3),
		"p99_ms":         nanToZero(st.P99 * 1e3),
		"mean_ms":        st.Mean * 1e3,
		"models":         len(s.reg.List()),
		"avg_batch":      avgBatch(st),
		"precision":      s.opts.precision.String(),
		"quantize":       s.opts.quantize,
		"machines":       machines,
		"replicas":       replicas,
		"inflight":       s.batcher.InFlight(),
		"snapshot_saves": serve.SnapshotSaves(),
		"snapshot_loads": serve.SnapshotLoads(),
	})
}

// nanToZero maps the latency recorder's empty-state NaN to 0: JSON has
// no NaN, and encoding one after the 200 header is written would leave
// the client an empty body.
func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func avgBatch(st serve.BatcherStats) float64 {
	if st.Flushes == 0 {
		return 0
	}
	return float64(st.Rows) / float64(st.Flushes)
}
