package main

import (
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"knor/internal/telemetry"

	// The server binary exposes the process-wide /metrics page; blank
	// imports pull in the I/O-stack and SEM-engine series so every layer
	// of the codebase is present on the exposition even before use.
	_ "knor/internal/sem"
	_ "knor/internal/store"
)

// HTTP-layer instruments (route label bounded to the known endpoints).
var (
	telHTTPRequests = telemetry.Default.CounterVec("knor_http_requests_total",
		"HTTP requests served, by route and status code.", "path", "code")
	telHTTPSeconds = telemetry.Default.Histogram("knor_http_request_seconds",
		"HTTP request handling latency, all routes.", telemetry.DefLatencyBuckets())
	telSaveErrors = telemetry.Default.Counter("knor_registry_snapshot_save_errors_total",
		"Registry snapshot saves that failed (state persistence).")
)

// knownRoutes bounds the path label's cardinality: anything else
// (typos, scans) collapses into "other".
var knownRoutes = map[string]bool{
	"/healthz": true, "/readyz": true, "/metrics": true,
	"/metrics/cluster": true, "/v1/cluster/stats": true,
	"/v1/models": true, "/v1/assign": true, "/v1/observe": true,
	"/v1/publish": true, "/v1/stats": true, "/v1/machines": true,
	"/debug/traces": true, "/debug/events": true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	if len(path) >= len("/debug/pprof/") && path[:len("/debug/pprof/")] == "/debug/pprof/" {
		return "/debug/pprof/"
	}
	return "other"
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

var reqID atomic.Uint64

// withObservability wraps h with request-ID assignment (X-Request-ID:
// honoured inbound, echoed outbound), per-route request counting, a
// latency histogram, and — when enabled — one structured access-log
// line per request.
func (s *server) withObservability(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%08x", reqID.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		dur := time.Since(start)
		telHTTPRequests.With(routeLabel(r.URL.Path), fmt.Sprintf("%d", sw.status)).Inc()
		telHTTPSeconds.Observe(dur.Seconds())
		if s.opts.accessLog {
			fmt.Fprintf(os.Stderr, "knorserve: %s %s %s %d %.3fms id=%s remote=%s\n",
				start.UTC().Format(time.RFC3339Nano), r.Method, r.URL.Path,
				sw.status, dur.Seconds()*1e3, id, r.RemoteAddr)
		}
	})
}
