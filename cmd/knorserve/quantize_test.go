package main

// End-to-end tests of the -quantize int8 serving mode and the
// zero-dimensional-input boundary validation.

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"knor/internal/kmeans"
)

// TestE2EQuantizedMatchesExact boots one exact float32 server and one
// quantized one, registers the same model in both, and requires every
// /assign answer to agree exactly (same clusters, same sqdist JSON).
func TestE2EQuantizedMatchesExact(t *testing.T) {
	_, exact := newTestServer(t, serverOptions{precision: kmeans.Precision32})
	_, quant := newTestServer(t, serverOptions{precision: kmeans.Precision32, quantize: "int8"})

	create := `{"name":"m","k":6,"spec":{"n":600,"d":8,"clusters":6,"spread":0.05,"seed":7}}`
	for _, ts := range []string{exact.URL, quant.URL} {
		if code, body := postJSON(t, ts+"/v1/models", create); code != http.StatusCreated {
			t.Fatalf("create: %d %v", code, body)
		}
	}

	var rows strings.Builder
	rows.WriteString(`{"model":"m","rows":[`)
	for i := 0; i < 48; i++ {
		if i > 0 {
			rows.WriteString(",")
		}
		fmt.Fprintf(&rows, "[%d.25,%d.5,0.1,0.2,0.3,0.4,0.5,0.6]", i%7, (i*3)%5)
	}
	rows.WriteString("]}")

	codeE, respE := postJSON(t, exact.URL+"/v1/assign", rows.String())
	codeQ, respQ := postJSON(t, quant.URL+"/v1/assign", rows.String())
	if codeE != http.StatusOK || codeQ != http.StatusOK {
		t.Fatalf("assign: exact %d %v, quant %d %v", codeE, respE, codeQ, respQ)
	}
	for _, field := range []string{"clusters", "sqdists"} {
		e := fmt.Sprint(respE[field])
		q := fmt.Sprint(respQ[field])
		if e != q {
			t.Fatalf("%s differ:\nexact %s\nquant %s", field, e, q)
		}
	}

	// The quantized mode shows up in /v1/stats.
	var st map[string]any
	if code := getJSON(t, quant.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st["quantize"] != "int8" {
		t.Fatalf("stats quantize = %v, want int8", st["quantize"])
	}
}

// TestE2EZeroDimCreateRejected pins the boundary fix: training rows
// with zero dimensions (or an empty spec shape) must be a clean 400,
// not a panic inside the distance kernels.
func TestE2EZeroDimCreateRejected(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{})
	for _, body := range []string{
		`{"name":"z","k":2,"rows":[[]]}`,
		`{"name":"z","k":2,"rows":[[],[]]}`,
		`{"name":"z","k":2,"spec":{"n":10,"d":0,"clusters":2}}`,
		`{"name":"z","k":2,"spec":{"n":0,"d":4,"clusters":2}}`,
	} {
		code, resp := postJSON(t, ts.URL+"/v1/models", body)
		if code != http.StatusBadRequest {
			t.Errorf("create %s: code %d (%v), want 400", body, code, resp)
		}
	}
	// The server still works after the rejected creates.
	if code, body := postJSON(t, ts.URL+"/v1/models",
		`{"name":"ok","k":2,"spec":{"n":100,"d":4,"clusters":2,"seed":1}}`); code != http.StatusCreated {
		t.Fatalf("create after rejections: %d %v", code, body)
	}
}
