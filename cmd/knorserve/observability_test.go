package main

// End-to-end tests of the observability surface: the Prometheus
// exposition, readiness vs liveness, sampled request traces, and the
// request-ID middleware. Instrument values are process-global and
// accumulate across tests, so assertions check presence and shape, not
// exact counts.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

const createBody = `{"name":"obs","k":2,"rows":[[0,0],[0,1],[9,0],[9,1]]}`

// TestMetricsExposition drives traffic through /assign and asserts the
// exposition is valid Prometheus text spanning every instrumented
// layer, with at least 25 distinct series families.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	for i := 0; i < 3; i++ {
		if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"obs","rows":[[1,1],[8,1]]}`); code != http.StatusOK {
			t.Fatalf("assign: %d", code)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type: %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	families := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if f, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(f)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			families[parts[0]] = parts[1]
		}
	}
	if len(families) < 25 {
		t.Fatalf("only %d series families on /metrics, want >= 25:\n%v", len(families), families)
	}
	// One representative series per layer must be present.
	for _, name := range []string{
		"knor_serve_requests_total",      // serve batcher edge
		"knor_serve_gemm_seconds",        // serve flush path
		"knor_shardserve_requests_total", // fan-out edge
		"knor_store_page_hits_total",     // I/O stack
		"knor_sem_iterations_total",      // SEM engine
		"knor_registry_publishes_total",  // registry
		"knor_http_requests_total",       // HTTP middleware
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	// The served traffic must be visible: requests counted, latency
	// histogram populated with cumulative buckets.
	if !strings.Contains(text, "knor_serve_request_seconds_bucket{le=\"+Inf\"}") {
		t.Error("request latency histogram has no +Inf bucket")
	}
	if !strings.Contains(text, `knor_http_requests_total{path="/v1/assign",code="200"}`) {
		t.Error("HTTP middleware did not count /v1/assign 200s")
	}
}

// TestReadyzLifecycle pins the liveness/readiness split: /healthz is
// always 200 while the process serves; /readyz turns 503 with no
// models, 200 once one is published, and 503 again while draining.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz with no models: %d, want 200 (liveness is not readiness)", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no models: %d, want 503", got)
	}
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz with a model: %d, want 200", got)
	}
	s.draining.Store(true)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", got)
	}
}

// TestReadyzStateDir: an unwritable state directory turns readiness off
// (snapshots would silently fail while the server looked healthy).
func TestReadyzStateDir(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, serverOptions{stateDir: dir})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with writable state dir: %d", resp.StatusCode)
	}
}

// TestTraceSampling samples every /assign request and asserts the dump
// shows the full pipeline: enqueue -> coalesce -> gemm -> reply.
func TestTraceSampling(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{traceEvery: 1})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	for i := 0; i < 4; i++ {
		if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"obs","rows":[[1,1]]}`); code != http.StatusOK {
			t.Fatalf("assign: %d", code)
		}
	}
	var dump struct {
		SampleEvery int `json:"sample_every"`
		Traces      []struct {
			ID      uint64  `json:"id"`
			TotalUS float64 `json:"total_us"`
			Stages  []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &dump); code != http.StatusOK {
		t.Fatalf("traces: %d", code)
	}
	if dump.SampleEvery != 1 || len(dump.Traces) == 0 {
		t.Fatalf("traces dump: every=%d n=%d", dump.SampleEvery, len(dump.Traces))
	}
	tr := dump.Traces[0]
	if tr.TotalUS <= 0 {
		t.Errorf("trace total_us = %v, want > 0", tr.TotalUS)
	}
	stages := map[string]bool{}
	for _, s := range tr.Stages {
		stages[s.Name] = true
	}
	for _, want := range []string{"enqueue", "coalesce", "gemm", "reply"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, tr.Stages)
		}
	}
}

// TestShardedTraceSampling runs the same check through the fan-out
// path: shard spans and the min-allreduce stage must appear.
func TestShardedTraceSampling(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{machines: 2, traceEvery: 1})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	for i := 0; i < 4; i++ {
		if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"obs","rows":[[1,1]]}`); code != http.StatusOK {
			t.Fatalf("assign: %d", code)
		}
	}
	var dump struct {
		Traces []struct {
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &dump); code != http.StatusOK {
		t.Fatalf("traces: %d", code)
	}
	if len(dump.Traces) == 0 {
		t.Fatal("no sampled traces through the sharded path")
	}
	stages := map[string]bool{}
	for _, s := range dump.Traces[0].Stages {
		stages[s.Name] = true
	}
	for _, want := range []string{"enqueue", "coalesce", "gemm", "shard_0", "shard_1", "min_allreduce", "reply"} {
		if !stages[want] {
			t.Errorf("sharded trace missing stage %q (have %v)", want, stages)
		}
	}
}

// TestRequestIDMiddleware: every response carries an X-Request-ID, and
// a caller-provided ID is echoed back.
func TestRequestIDMiddleware(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID assigned")
	}
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chosen-7" {
		t.Errorf("X-Request-ID = %q, want echo of caller value", got)
	}
}

// TestStatsObservabilityFields: /v1/stats carries the new p95, per-model
// in-flight map, and snapshot persistence counters.
func TestStatsObservabilityFields(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, serverOptions{stateDir: dir})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"obs","rows":[[1,1]]}`); code != http.StatusOK {
		t.Fatal("assign failed")
	}
	var stats map[string]json.RawMessage
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	for _, key := range []string{"p95_ms", "inflight", "snapshot_saves", "snapshot_loads"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q: %v", key, stats)
		}
	}
	var inflight map[string]int
	if err := json.Unmarshal(stats["inflight"], &inflight); err != nil {
		t.Fatalf("inflight not a map: %s", stats["inflight"])
	}
}

// TestPprofGate: /debug/pprof/ serves only when opted in.
func TestPprofGate(t *testing.T) {
	_, tsOff := newTestServer(t, serverOptions{})
	resp, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
	_, tsOn := newTestServer(t, serverOptions{pprof: true})
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof: %d", resp.StatusCode)
	}
}

// TestClusterMetricsEndpoint: /metrics/cluster serves the federated
// exposition in every mode — single-process it is rank 0 alone, every
// series labeled rank="0" and no stale marker raised.
func TestClusterMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{machines: 2})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"obs","rows":[[1,1]]}`); code != http.StatusOK {
		t.Fatal("assign failed")
	}
	resp, err := http.Get(ts.URL + "/metrics/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics/cluster: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics/cluster content type: %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, `rank="0"`) {
		t.Error("federated exposition carries no rank=\"0\" series")
	}
	if !strings.Contains(text, `knor_serve_requests_total{rank="0"}`) {
		t.Error("federated exposition missing rank-labeled serve counter")
	}
	if strings.Contains(text, `knor_federation_stale{rank="0"} 1`) {
		t.Error("rank 0 marked stale on its own scrape")
	}
}

// TestClusterStatsEndpoint: /v1/cluster/stats answers the per-rank
// digest with latency quantiles and shard counts, never stale for the
// local rank.
func TestClusterStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{machines: 2, replicas: 2})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	for i := 0; i < 3; i++ {
		if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"obs","rows":[[1,1]]}`); code != http.StatusOK {
			t.Fatal("assign failed")
		}
	}
	var stats struct {
		Ranks []struct {
			Rank   int     `json:"rank"`
			Stale  bool    `json:"stale"`
			P50MS  float64 `json:"p50_ms"`
			P99MS  float64 `json:"p99_ms"`
			Shards float64 `json:"shards"`
		} `json:"ranks"`
	}
	if code := getJSON(t, ts.URL+"/v1/cluster/stats", &stats); code != http.StatusOK {
		t.Fatalf("cluster/stats: %d", code)
	}
	if len(stats.Ranks) != 1 {
		t.Fatalf("simulated-machine mode reports %d ranks, want 1 (one process)", len(stats.Ranks))
	}
	r0 := stats.Ranks[0]
	if r0.Rank != 0 || r0.Stale {
		t.Fatalf("rank 0 digest: %+v", r0)
	}
	if r0.P50MS <= 0 || r0.P99MS < r0.P50MS {
		t.Errorf("latency quantiles not populated/ordered: p50=%v p99=%v", r0.P50MS, r0.P99MS)
	}
	if r0.Shards <= 0 {
		t.Errorf("rank 0 shard copies = %v, want > 0 after publish", r0.Shards)
	}
}

// TestEventsJournalEndpoint: /debug/events serves the structured
// journal with a working since-seq cursor, and cluster activity (a
// publish) lands in it.
func TestEventsJournalEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{machines: 2})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	type eventsPage struct {
		LastSeq uint64 `json:"last_seq"`
		Events  []struct {
			Seq       uint64 `json:"seq"`
			Component string `json:"component"`
			Severity  string `json:"severity"`
			Msg       string `json:"msg"`
		} `json:"events"`
	}
	var page eventsPage
	if code := getJSON(t, ts.URL+"/debug/events", &page); code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	if page.LastSeq == 0 || len(page.Events) == 0 {
		t.Fatalf("journal empty after a publish: last_seq=%d n=%d", page.LastSeq, len(page.Events))
	}
	found := false
	for i, ev := range page.Events {
		if ev.Msg == "model published" && ev.Component == "serve" {
			found = true
		}
		if i > 0 && ev.Seq <= page.Events[i-1].Seq {
			t.Fatalf("events not ascending: seq %d after %d", ev.Seq, page.Events[i-1].Seq)
		}
	}
	if !found {
		t.Errorf("no 'model published' event in journal page: %+v", page.Events)
	}
	// Cursor: asking since=last_seq returns nothing new.
	var empty eventsPage
	if code := getJSON(t, ts.URL+"/debug/events?since="+fmt.Sprint(page.LastSeq), &empty); code != http.StatusOK {
		t.Fatalf("events cursor: %d", code)
	}
	for _, ev := range empty.Events {
		if ev.Seq <= page.LastSeq {
			t.Fatalf("cursor returned already-seen seq %d (cursor %d)", ev.Seq, page.LastSeq)
		}
	}
	if code := getJSON(t, ts.URL+"/debug/events?since=bogus", &empty); code != http.StatusBadRequest {
		t.Fatalf("bad since cursor answered %d, want 400", code)
	}
}

// TestTraceDumpIdentity: the /debug/traces dump carries the hex trace
// ID and only non-negative span geometry — the regression surface for
// out-of-order span arrival from stitched cluster traces.
func TestTraceDumpIdentity(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{machines: 2, traceEvery: 1})
	if code, body := postJSON(t, ts.URL+"/v1/models", createBody); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/assign", `{"model":"obs","rows":[[1,1]]}`); code != http.StatusOK {
		t.Fatal("assign failed")
	}
	var dump struct {
		Traces []struct {
			ID      uint64  `json:"id"`
			TraceID string  `json:"trace_id"`
			TotalUS float64 `json:"total_us"`
			Stages  []struct {
				Name    string  `json:"name"`
				StartUS float64 `json:"start_us"`
				DurUS   float64 `json:"dur_us"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &dump); code != http.StatusOK {
		t.Fatalf("traces: %d", code)
	}
	if len(dump.Traces) == 0 {
		t.Fatal("no sampled traces")
	}
	for _, tr := range dump.Traces {
		if want := fmt.Sprintf("%016x", tr.ID); tr.TraceID != want {
			t.Errorf("trace_id = %q, want %q", tr.TraceID, want)
		}
		if tr.TotalUS < 0 {
			t.Errorf("trace %d total_us negative: %v", tr.ID, tr.TotalUS)
		}
		for i, st := range tr.Stages {
			if st.StartUS < 0 || st.DurUS < 0 {
				t.Errorf("trace %d stage %q has negative geometry: start=%v dur=%v",
					tr.ID, st.Name, st.StartUS, st.DurUS)
			}
			if i > 0 && st.StartUS < tr.Stages[i-1].StartUS {
				t.Errorf("trace %d stages not sorted by start: %q at %v after %q at %v",
					tr.ID, st.Name, st.StartUS, tr.Stages[i-1].Name, tr.Stages[i-1].StartUS)
			}
		}
	}
}
