package main

import (
	"fmt"
	"net/http"
	"strconv"

	"knor/internal/shardserve"
	"knor/internal/telemetry"
)

// Cluster-wide observability endpoints: /metrics/cluster federates
// every rank's telemetry registry into one Prometheus page,
// /v1/cluster/stats condenses the same snapshots into per-rank health
// numbers, and /debug/events serves the structured cluster journal.

// federate pulls one snapshot per rank. In single-process and
// simulated-machine modes there is no hub, so the result is rank 0's
// local registry alone — the endpoints stay useful at every -machines
// setting.
func (s *server) federate() []telemetry.RankSnapshot {
	return shardserve.FederateMetrics(s.hub, s.shards, telemetry.Default)
}

// handleClusterMetrics renders the federated Prometheus exposition:
// every series from every rank under a rank="N" label, families in
// deterministic order, dead workers present as
// knor_federation_stale{rank} 1 instead of blocking the scrape.
func (s *server) handleClusterMetrics(w http.ResponseWriter, _ *http.Request) {
	snaps := s.federate()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WriteFederatedPrometheus(w, snaps)
}

// rankStats is one rank's condensed health on /v1/cluster/stats.
type rankStats struct {
	Rank  int  `json:"rank"`
	Stale bool `json:"stale"`
	// Latency quantiles: the fan-out request path on rank 0, the shard
	// GEMM path on workers (their edge instruments are internal).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// BytesTotal sums the rank's transport traffic, both directions.
	BytesTotal float64 `json:"bytes_total"`
	// Inflight is the rank's current in-flight assign requests.
	Inflight float64 `json:"inflight"`
	// Shards is the live shard-copy count the rank holds.
	Shards float64 `json:"shards"`
}

// handleClusterStats answers the per-rank digest: latency quantiles,
// transport bytes, in-flight requests, and live shard copies for every
// rank, with dead workers marked stale rather than omitted.
func (s *server) handleClusterStats(w http.ResponseWriter, _ *http.Request) {
	snaps := s.federate()
	ranks := make([]rankStats, 0, len(snaps))
	for _, snap := range snaps {
		rs := rankStats{Rank: snap.Rank, Stale: snap.Stale}
		if !snap.Stale {
			lat := "knor_serve_gemm_seconds"
			if snap.Rank == 0 {
				// The coordinator's edge latency: fan-out requests in
				// cluster/sharded mode, the plain batcher path otherwise.
				lat = "knor_shardserve_request_seconds"
				if famCount(snap.Families, lat) == 0 {
					lat = "knor_serve_request_seconds"
				}
			}
			rs.P50MS = famQuantile(snap.Families, lat, 0.50) * 1e3
			rs.P95MS = famQuantile(snap.Families, lat, 0.95) * 1e3
			rs.P99MS = famQuantile(snap.Families, lat, 0.99) * 1e3
			rs.BytesTotal = famSum(snap.Families, "knor_net_bytes_total")
			rs.Inflight = famSum(snap.Families, "knor_serve_inflight_requests")
			if snap.Rank == 0 {
				if s.shards != nil {
					rs.Shards = float64(s.shards.CopiesOn(0))
				}
			} else {
				rs.Shards = famSum(snap.Families, "knor_peer_shards")
			}
		}
		ranks = append(ranks, rs)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ranks": ranks})
}

// famQuantile merges a histogram family's samples and returns the
// quantile, 0 when the family is absent or empty.
func famQuantile(fams []telemetry.SnapshotFamily, name string, q float64) float64 {
	var merged telemetry.SnapshotSample
	for _, fam := range fams {
		if fam.Name != name || fam.Kind != "histogram" {
			continue
		}
		for _, sm := range fam.Samples {
			if merged.Bounds == nil {
				merged.Bounds = sm.Bounds
				merged.Buckets = append([]uint64(nil), sm.Buckets...)
				merged.Sum, merged.Count = sm.Sum, sm.Count
				continue
			}
			for i := range sm.Buckets {
				if i < len(merged.Buckets) {
					merged.Buckets[i] += sm.Buckets[i]
				}
			}
			merged.Sum += sm.Sum
			merged.Count += sm.Count
		}
	}
	if merged.Count == 0 {
		return 0
	}
	return merged.Quantile(q)
}

// famCount returns a histogram family's total observation count.
func famCount(fams []telemetry.SnapshotFamily, name string) uint64 {
	var n uint64
	for _, fam := range fams {
		if fam.Name != name {
			continue
		}
		for _, sm := range fam.Samples {
			n += sm.Count
		}
	}
	return n
}

// famSum sums a counter/gauge family's sample values across label sets.
func famSum(fams []telemetry.SnapshotFamily, name string) float64 {
	var v float64
	for _, fam := range fams {
		if fam.Name != name {
			continue
		}
		for _, sm := range fam.Samples {
			v += sm.Value
		}
	}
	return v
}

// handleEvents serves the structured cluster journal with a since-seq
// cursor: GET /debug/events?since=N&max=M returns events with Seq > N
// (ascending), at most M of them (default 256). Pollers resume from
// the last_seq they saw; a gap in Seq means the ring overwrote events
// between polls.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		since = n
	}
	max := 256
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad max %q", v))
			return
		}
		max = n
	}
	events := telemetry.DefaultJournal.Since(since, max)
	writeJSON(w, http.StatusOK, map[string]any{
		"last_seq": telemetry.DefaultJournal.LastSeq(),
		"events":   events,
	})
}
