package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// serveUntil serves s on ln until ctx is cancelled (SIGINT/SIGTERM in
// main), then shuts down without dropping accepted work:
//
//  1. http.Server.Shutdown closes the listener and waits — up to
//     drainWait — for every in-flight handler to return. An /assign
//     request that was already accepted keeps blocking on its batch
//     answer, so while Shutdown waits, a kicker goroutine calls the
//     batcher's Flush every few milliseconds: queued rows are answered
//     immediately instead of waiting out MaxWait.
//  2. s.close() then stops the batcher, which answers anything still
//     queued before its flusher exits, and is a no-op if nothing is.
//
// Returns nil on a clean drain; context.DeadlineExceeded if drainWait
// elapsed with handlers still in flight; any other error from Serve.
func serveUntil(ctx context.Context, ln net.Listener, s *server, drainWait time.Duration) error {
	hs := &http.Server{Handler: s.mux()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.close()
		return err
	case <-ctx.Done():
	}
	// Flip readiness first: a load balancer polling /readyz stops
	// routing here while the in-flight requests drain below.
	s.draining.Store(true)
	stopKick := make(chan struct{})
	go func() {
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.batcher.Flush()
			case <-stopKick:
				return
			}
		}
	}()
	shCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	err := hs.Shutdown(shCtx)
	close(stopKick)
	s.close()
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}
