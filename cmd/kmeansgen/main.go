// Command kmeansgen generates synthetic datasets in knor's on-disk
// formats — the natural-cluster mixtures standing in for the
// Friendster eigenvectors and the uniform RM*/RU* scalability datasets
// of Table 2.
//
// Two formats are written:
//
//   - matrix (legacy): 32-byte header + float64 payload, loaded whole
//     into memory;
//   - knor (store): page-aligned header with an element width (4 or
//     8), streamed by `knors -backend file` through the real page
//     cache without ever materialising the matrix.
//
// Usage:
//
//	kmeansgen -kind natural -n 1000000 -d 8 -clusters 10 -o friendster8.knor
//	kmeansgen -format knor -kind uniform -n 856000 -d 16 -o rm856k.knor
//	kmeansgen -format knor -elem 4 -n 2000000 -d 32 -o big32.knor
//	kmeansgen -table2 -scale 1000 -dir data/   # the whole catalogue, scaled
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"knor"
	"knor/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "natural", "dataset kind: natural | uniform | univariate")
		n        = flag.Int("n", 100000, "number of rows")
		d        = flag.Int("d", 8, "dimensions")
		clusters = flag.Int("clusters", 10, "true cluster count (natural only)")
		spread   = flag.Float64("spread", 0.05, "within-cluster spread (natural only)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		out      = flag.String("o", "data.knor", "output file")
		format   = flag.String("format", "matrix", "on-disk format: matrix (legacy, whole-load) | knor (store, streamable)")
		elem     = flag.Int("elem", 8, "element width in bytes for -format knor: 8 (float64) | 4 (float32)")
		table2   = flag.Bool("table2", false, "generate the paper's Table 2 catalogue instead")
		scale    = flag.Int("scale", 1000, "row-count divisor for -table2")
		dir      = flag.String("dir", ".", "output directory for -table2")
	)
	flag.Parse()

	save, err := saver(*format, *elem)
	if err != nil {
		fatal(err)
	}

	if *table2 {
		if err := genCatalogue(*scale, *dir, save, elemBytes(*format, *elem)); err != nil {
			fatal(err)
		}
		return
	}

	var k workload.Kind
	switch strings.ToLower(*kind) {
	case "natural":
		k = knor.NaturalClusters
	case "uniform":
		k = knor.UniformMultivariate
	case "univariate":
		k = knor.UniformUnivariate
	default:
		fmt.Fprintf(os.Stderr, "kmeansgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	spec := knor.Spec{Kind: k, N: *n, D: *d, Clusters: *clusters, Spread: *spread, Seed: *seed}
	m := knor.Generate(spec)
	if err := save(m, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s): %d x %d (%.1f MB)\n", *out, *format, m.Rows(), m.Cols(),
		float64(m.Rows()*m.Cols()*elemBytes(*format, *elem))/1e6)
}

// saver picks the output encoding for the requested format.
func saver(format string, elem int) (func(*knor.Matrix, string) error, error) {
	switch strings.ToLower(format) {
	case "matrix":
		return knor.SaveMatrix, nil
	case "knor":
		if elem != 4 && elem != 8 {
			return nil, fmt.Errorf("-elem must be 4 or 8, got %d", elem)
		}
		return func(m *knor.Matrix, path string) error {
			return knor.SaveMatrixStore(m, path, elem)
		}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want matrix or knor)", format)
	}
}

func elemBytes(format string, elem int) int {
	if strings.ToLower(format) == "knor" {
		return elem
	}
	return 8
}

func genCatalogue(scale int, dir string, save func(*knor.Matrix, string) error, elem int) error {
	for _, spec := range workload.Catalogue(scale) {
		m := knor.Generate(spec)
		path := filepath.Join(dir, strings.ToLower(spec.Name)+".knor")
		if err := save(m, path); err != nil {
			return err
		}
		fmt.Printf("wrote %-24s %10d x %-3d (%.1f MB)\n", path, m.Rows(), m.Cols(),
			float64(m.Rows()*m.Cols()*elem)/1e6)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmeansgen:", err)
	os.Exit(1)
}
