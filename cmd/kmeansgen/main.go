// Command kmeansgen generates synthetic datasets in knor's binary
// row-major format — the natural-cluster mixtures standing in for the
// Friendster eigenvectors and the uniform RM*/RU* scalability datasets
// of Table 2.
//
// Usage:
//
//	kmeansgen -kind natural -n 1000000 -d 8 -clusters 10 -o friendster8.knor
//	kmeansgen -kind uniform -n 856000 -d 16 -o rm856k.knor
//	kmeansgen -table2 -scale 1000 -dir data/   # the whole catalogue, scaled
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"knor"
	"knor/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "natural", "dataset kind: natural | uniform | univariate")
		n        = flag.Int("n", 100000, "number of rows")
		d        = flag.Int("d", 8, "dimensions")
		clusters = flag.Int("clusters", 10, "true cluster count (natural only)")
		spread   = flag.Float64("spread", 0.05, "within-cluster spread (natural only)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		out      = flag.String("o", "data.knor", "output file")
		table2   = flag.Bool("table2", false, "generate the paper's Table 2 catalogue instead")
		scale    = flag.Int("scale", 1000, "row-count divisor for -table2")
		dir      = flag.String("dir", ".", "output directory for -table2")
	)
	flag.Parse()

	if *table2 {
		if err := genCatalogue(*scale, *dir); err != nil {
			fmt.Fprintln(os.Stderr, "kmeansgen:", err)
			os.Exit(1)
		}
		return
	}

	var k workload.Kind
	switch strings.ToLower(*kind) {
	case "natural":
		k = knor.NaturalClusters
	case "uniform":
		k = knor.UniformMultivariate
	case "univariate":
		k = knor.UniformUnivariate
	default:
		fmt.Fprintf(os.Stderr, "kmeansgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	spec := knor.Spec{Kind: k, N: *n, D: *d, Clusters: *clusters, Spread: *spread, Seed: *seed}
	m := knor.Generate(spec)
	if err := knor.SaveMatrix(m, *out); err != nil {
		fmt.Fprintln(os.Stderr, "kmeansgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d x %d (%.1f MB)\n", *out, m.Rows(), m.Cols(),
		float64(m.Rows()*m.Cols()*8)/1e6)
}

func genCatalogue(scale int, dir string) error {
	for _, spec := range workload.Catalogue(scale) {
		m := knor.Generate(spec)
		path := filepath.Join(dir, strings.ToLower(spec.Name)+".knor")
		if err := knor.SaveMatrix(m, path); err != nil {
			return err
		}
		fmt.Printf("wrote %-24s %10d x %-3d (%.1f MB)\n", path, m.Rows(), m.Cols(),
			float64(m.Rows()*m.Cols()*8)/1e6)
	}
	return nil
}
