// Serving: the online-clustering service layer end to end, through the
// public facade. A knori-trained model is published into a registry;
// concurrent clients stream assignment queries through the batched GEMM
// path while a stream updater keeps folding fresh observations into the
// model; a second version is published copy-on-write mid-traffic and
// later queries pick it up without any client noticing.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"os"
	"sync"

	"knor"
)

func main() {
	spec := knor.Spec{
		Kind: knor.NaturalClusters, N: 20000, D: 8, Clusters: 6, Spread: 0.04, Seed: 42,
	}
	data := knor.Generate(spec)

	// Train the first version with the NUMA-aware in-memory engine.
	res, err := knor.Run(data, knor.Config{
		K: 6, Init: knor.InitKMeansPP, Seed: 1, Prune: knor.PruneMTI, Threads: 4,
	})
	check(err)
	fmt.Printf("trained v1: %d iters, SSE %.4g\n", res.Iters, res.SSE)

	// Publish it and attach the streaming updater.
	reg := knor.NewRegistry(4)
	eng, err := knor.NewStreamEngine("users", res.Centroids, reg)
	check(err)
	batcher := knor.NewBatcher(reg, knor.BatcherOptions{Threads: 2})
	defer batcher.Close()

	// Concurrent clients query while the updater folds fresh traffic.
	queries := knor.NewQueryStream(spec, 7)
	updates := knor.NewQueryStream(spec, 8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	versions := map[int]bool{}
	clientBatches := make([][]*knor.Matrix, 4)
	for c := range clientBatches {
		for i := 0; i < 50; i++ {
			clientBatches[c] = append(clientBatches[c], queries.Next(16))
		}
	}
	for c := 0; c < 4; c++ { // query path: concurrent clients coalesce
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, batch := range clientBatches[c] {
				as, err := batcher.AssignBatch("users", batch)
				check(err)
				mu.Lock()
				versions[as[0].Version] = true
				mu.Unlock()
			}
		}(c)
	}
	wg.Add(1)
	go func() { // update path
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_, err := eng.Observe(updates.Next(64))
			check(err)
			if i == 50 { // mid-traffic publish: copy-on-write, no pause
				snap, err := eng.Publish()
				check(err)
				fmt.Printf("published v%d after %d streamed rows\n", snap.Version, eng.Seen())
			}
		}
	}()
	wg.Wait()

	// A checkpoint captures the updater's entire state.
	cp := eng.Checkpoint()
	resumed, err := knor.ResumeStreamEngine(cp, reg)
	check(err)
	fmt.Println("checkpoint resumes exactly:", resumed.Centroids().Equal(eng.Centroids(), 0))

	latest, _ := reg.Get("users")
	st := batcher.Stats()
	fmt.Printf("served %d requests (%d rows) in %d flushes\n", st.Requests, st.Rows, st.Flushes)
	fmt.Printf("model versions answering queries: %d distinct\n", len(versions))
	fmt.Println("latest version >= 2:", latest.Version >= 2)
	fmt.Println("stream kept quality:",
		knor.SSE(data, latest.Centroids) < 1.10*res.SSE)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serving:", err)
		os.Exit(1)
	}
}
