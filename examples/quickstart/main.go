// Quickstart: cluster a synthetic dataset with knori, the NUMA-aware
// in-memory k-means engine, and inspect the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"knor"
)

func main() {
	// A dataset with ten natural clusters — the regime the paper's
	// Friendster eigenvectors live in, where MTI pruning shines.
	data := knor.Generate(knor.Spec{
		Kind:     knor.NaturalClusters,
		N:        50_000,
		D:        8,
		Clusters: 10,
		Spread:   0.05,
		Seed:     42,
	})

	res, err := knor.Run(data, knor.Config{
		K:        10,
		MaxIters: 100,
		Init:     knor.InitKMeansPP,
		Prune:    knor.PruneMTI, // the paper's minimal triangle inequality
		Threads:  8,
		Topo:     knor.DefaultTopology(), // simulated 4-socket NUMA machine
		Sched:    knor.SchedNUMAAware,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged after %d iterations (SSE %.4g)\n", res.Iters, res.SSE)
	fmt.Printf("simulated time: %.3fms total, %.3fms/iter\n",
		res.SimSeconds*1e3, res.SimSeconds/float64(res.Iters)*1e3)
	fmt.Printf("cluster sizes: %v\n", res.Sizes)

	// MTI's effect: compare exact distance computations against the
	// unpruned n*k per iteration.
	var dists uint64
	for _, st := range res.PerIter {
		dists += st.DistCalcs
	}
	unpruned := uint64(data.Rows()) * 10 * uint64(res.Iters)
	fmt.Printf("distance computations: %d of %d unpruned (%.1f%% pruned away)\n",
		dists, unpruned, 100*(1-float64(dists)/float64(unpruned)))

	// The first few rows and their assignments.
	for i := 0; i < 5; i++ {
		fmt.Printf("row %d -> cluster %d\n", i, res.Assign[i])
	}
}
