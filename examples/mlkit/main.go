// MLkit: the paper's future-work section (§9) promises a generalised
// framework for NUMA-aware machine learning with k-means variants, GMM,
// agglomerative clustering and k-nearest-neighbours built on top. This
// example exercises that whole pipeline on one dataset:
//
//  1. k-means++ seeded, MTI-pruned k-means (knori) over-segments the
//     data with a generous k,
//  2. a diagonal-covariance GMM (EM on the generalised driver) refines
//     the clusters into a probabilistic model,
//  3. Ward agglomeration over the k-means centroids recovers a coarse
//     hierarchy, and
//  4. a NUMA-parallel kNN query answers "which points resemble this
//     one" against the raw data.
//
// Run with:
//
//	go run ./examples/mlkit
package main

import (
	"fmt"
	"log"

	"knor"
)

func main() {
	const (
		n      = 40_000
		d      = 12
		truthK = 6
		overK  = 18 // deliberate over-segmentation
	)
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: d,
		Clusters: truthK, Spread: 0.06, Seed: 17, Grouped: true,
	})

	// 1. Over-segmenting k-means.
	km, err := knor.Run(data, knor.Config{
		K: overK, MaxIters: 80, Init: knor.InitKMeansPP, Seed: 2,
		Prune: knor.PruneMTI, Threads: 8,
		Topo: knor.DefaultTopology(), Sched: knor.SchedNUMAAware,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means: k=%d, %d iterations, SSE %.4g, silhouette %.3f\n",
		overK, km.Iters, km.SSE, knor.Silhouette(data, km.Centroids, km.Assign))

	// 2. GMM refinement on the generalised NUMA-ML driver.
	gmm := knor.NewGMM(km.Centroids, 1e-5)
	stats, err := knor.RunKernel(data, gmm, knor.MLConfig{
		MaxIters: 60, Threads: 8, Topo: knor.DefaultTopology(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GMM: converged=%v after %d EM iterations, mean log-likelihood %.4f\n",
		stats.Converged, stats.Iters, gmm.MeanLogLikelihood())
	gmmAssign := gmm.Assign(data)
	ari, _ := knor.AdjustedRand(km.Assign, gmmAssign)
	fmt.Printf("GMM vs k-means agreement (ARI): %.3f\n", ari)

	// 3. Ward agglomeration of the k-means centroids down to the true
	// cluster count.
	dend, flat, err := knor.AgglomerateCentroids(km.Centroids, km.Sizes, truthK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agglomeration: %d merges; coarse labels per fine cluster: %v\n",
		len(dend.Steps), flat)
	coarse := make([]int32, n)
	for i, a := range km.Assign {
		coarse[i] = int32(flat[a])
	}
	nmi, _ := knor.NMI(km.Assign, coarse)
	fmt.Printf("fine->coarse NMI: %.3f\n", nmi)

	// 4. kNN against the raw data for three probe points.
	queries := knor.NewMatrix(3, d)
	for i := 0; i < 3; i++ {
		copy(queries.Row(i), data.Row(i*1000))
	}
	qk := knor.NewKNN(queries, 5)
	if _, err := knor.RunKernel(data, qk, knor.MLConfig{Threads: 8, Topo: knor.DefaultTopology()}); err != nil {
		log.Fatal(err)
	}
	for qi := 0; qi < 3; qi++ {
		fmt.Printf("query %d (row %d) nearest:", qi, qi*1000)
		for _, nb := range qk.Neighbors(qi) {
			fmt.Printf(" %d(d²=%.3g)", nb.Row, nb.SqDist)
		}
		fmt.Println()
	}
}
