// Connectome: the paper motivates knor with connectomics — clustering
// spectral embeddings of brain graphs to group anatomical regions by
// structural similarity (§1). This example builds a stand-in spectral
// embedding (top-8 eigenvector-like coordinates of a graph with
// power-law community sizes), sweeps k to pick a model with an elbow
// heuristic, and compares the recovered partition against the generating
// communities.
//
// Run with:
//
//	go run ./examples/connectome
package main

import (
	"fmt"
	"log"

	"knor"
)

func main() {
	const (
		regions = 12     // generating communities ("anatomical regions")
		voxels  = 40_000 // embedded vertices
		dims    = 8      // top-8 eigenvectors, like Friendster-8
	)
	spec := knor.Spec{
		Kind:     knor.NaturalClusters,
		N:        voxels,
		D:        dims,
		Clusters: regions,
		Spread:   0.06,
		Seed:     7,
		Grouped:  true, // vertices arrive ordered by community, like a sorted graph
	}
	data, truth := knor.GenerateLabeled(spec)

	// Sweep k and track the objective; the elbow picks the model.
	fmt.Println("k sweep (per-k SSE, simulated time):")
	type fit struct {
		k   int
		sse float64
	}
	var fits []fit
	for _, k := range []int{4, 6, 8, 10, 12, 14, 16} {
		res, err := knor.Run(data, knor.Config{
			K: k, MaxIters: 60, Init: knor.InitKMeansPP, Seed: 3,
			Prune: knor.PruneMTI, Threads: 8,
			Topo: knor.DefaultTopology(), Sched: knor.SchedNUMAAware,
		})
		if err != nil {
			log.Fatal(err)
		}
		fits = append(fits, fit{k, res.SSE})
		fmt.Printf("  k=%-3d SSE=%-12.4g time=%.2fms iters=%d\n",
			k, res.SSE, res.SimSeconds*1e3, res.Iters)
	}

	// Elbow: largest relative drop in SSE.
	bestK, bestDrop := fits[0].k, 0.0
	for i := 1; i < len(fits); i++ {
		drop := (fits[i-1].sse - fits[i].sse) / fits[i-1].sse
		if drop > bestDrop {
			bestDrop = drop
			bestK = fits[i].k
		}
	}
	fmt.Printf("elbow suggests k=%d\n", bestK)

	// Final fit at the chosen k; evaluate against the generating
	// communities with cluster purity (each generated region's rows are
	// contiguous thanks to Grouped).
	res, err := knor.Run(data, knor.Config{
		K: bestK, MaxIters: 100, Init: knor.InitKMeansPP, Seed: 3,
		Prune: knor.PruneMTI, Threads: 8,
		Topo: knor.DefaultTopology(), Sched: knor.SchedNUMAAware,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: k=%d, %d iterations, SSE %.4g\n", bestK, res.Iters, res.SSE)

	// Agreement with the generating regions via external indices.
	ari, err := knor.AdjustedRand(truth, res.Assign)
	if err != nil {
		log.Fatal(err)
	}
	nmi, err := knor.NMI(truth, res.Assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement with generating regions: ARI %.3f, NMI %.3f\n", ari, nmi)
	fmt.Printf("silhouette %.3f, Davies-Bouldin %.3f\n",
		knor.Silhouette(data, res.Centroids, res.Assign),
		knor.DaviesBouldin(data, res.Centroids, res.Assign))
}
