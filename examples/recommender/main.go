// Recommender: the paper cites Netflix-style user recommendation as a
// driving k-means workload (§1). This example clusters synthetic user
// preference vectors with *spherical* k-means (cosine similarity, the
// paper's first listed future-work variant, §9), compares exact
// spherical Lloyd's against the mini-batch approximation, and uses the
// centroids to suggest "neighbours" for a user.
//
// Run with:
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"knor"
)

func main() {
	const (
		users  = 30_000
		genres = 16 // preference dimensions
		tastes = 8  // latent taste communities
	)
	// Preference vectors: direction encodes taste, magnitude activity.
	data := knor.Generate(knor.Spec{
		Kind:     knor.NaturalClusters,
		N:        users,
		D:        genres,
		Clusters: tastes,
		Spread:   0.08,
		Seed:     11,
	})

	base := knor.Config{
		K: tastes, MaxIters: 80, Init: knor.InitKMeansPP, Seed: 5,
		Threads: 8, Topo: knor.DefaultTopology(), Sched: knor.SchedNUMAAware,
		Spherical: true, // cosine: only taste direction matters
		Prune:     knor.PruneMTI,
	}
	exact, err := knor.Run(data, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spherical k-means: %d iterations, SSE %.4g, %.2fms simulated\n",
		exact.Iters, exact.SSE, exact.SimSeconds*1e3)

	// Mini-batch comparison: the approximation family the paper's
	// related work discusses (Sculley) and knor avoids for exact runs.
	mbCfg := base
	mbCfg.Spherical = false // mini-batch path is Euclidean
	mbCfg.MaxIters = 150
	mbCfg.Tol = 1e-4
	mb, err := knor.RunMiniBatch(data, mbCfg, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mini-batch (512):  %d iterations, SSE %.4g (%.2fx exact's objective)\n",
		mb.Iters, mb.SSE, mb.SSE/exact.SSE)

	// Recommendation sketch: users in the same cluster as user 0,
	// ranked by cosine similarity to the cluster centroid.
	u := 0
	c := exact.Assign[u]
	type scored struct {
		user int
		sim  float64
	}
	var peers []scored
	centroid := exact.Centroids.Row(int(c))
	for i := 0; i < users && len(peers) < 5000; i++ {
		if exact.Assign[i] == c && i != u {
			peers = append(peers, scored{i, cosine(data.Row(i), centroid)})
		}
	}
	sort.Slice(peers, func(a, b int) bool { return peers[a].sim > peers[b].sim })
	fmt.Printf("user %d sits in taste cluster %d (%d users)\n", u, c, exact.Sizes[c])
	fmt.Println("closest taste neighbours:")
	for i := 0; i < 5 && i < len(peers); i++ {
		fmt.Printf("  user %-6d cosine %.4f\n", peers[i].user, peers[i].sim)
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
