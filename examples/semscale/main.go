// Semscale: run knors — the semi-external-memory module — on a dataset
// that exceeds a configured memory budget, demonstrate the row cache
// and clause-1 I/O elision, then kill the run mid-flight and recover
// from a checkpoint, verifying the recovered run lands on the same
// centroids.
//
// Run with:
//
//	go run ./examples/semscale
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"knor"
)

func main() {
	const (
		n = 300_000
		d = 32
	)
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: d,
		Clusters: 10, Spread: 0.05, Seed: 21, Grouped: true,
	})
	dataBytes := n * d * 8
	budget := dataBytes / 4 // pretend RAM holds a quarter of the data
	fmt.Printf("dataset: %d x %d (%.1f MB); memory budget %.1f MB\n",
		n, d, float64(dataBytes)/1e6, float64(budget)/1e6)

	kcfg := knor.Config{
		K: 10, MaxIters: 60, Init: knor.InitKMeansPP, Seed: 9,
		Threads: 8, Prune: knor.PruneMTI,
	}
	cfg := knor.SEMConfig{
		Kmeans:         kcfg,
		Devices:        8,
		PageCacheBytes: budget / 4,
		RowCacheBytes:  budget / 4,
	}

	res, err := knor.RunSEM(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.MemoryBytes > uint64(budget) {
		log.Fatalf("SEM state %.1f MB exceeded the budget", float64(res.MemoryBytes)/1e6)
	}
	fmt.Printf("knors: %d iterations, SSE %.4g, state %.1f MB (fits the budget)\n",
		res.Iters, res.SSE, float64(res.MemoryBytes)/1e6)

	var req, read, hits uint64
	for _, st := range res.PerIter {
		req += st.BytesWanted
		read += st.BytesRead
		hits += st.RowCacheHits
	}
	fullScan := uint64(dataBytes) * uint64(res.Iters)
	fmt.Printf("I/O: requested %.1f MB, read %.1f MB of a %.1f MB full-scan worst case\n",
		float64(req)/1e6, float64(read)/1e6, float64(fullScan)/1e6)
	fmt.Printf("row-cache hits: %d\n", hits)

	// --- failure and recovery -----------------------------------------
	dir, err := os.MkdirTemp("", "knors-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "state.bin")

	eng, err := knor.NewSEMEngine(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ { // run six iterations, then "crash"
		if err := eng.Step(); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Checkpoint(ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed at iteration %d, simulating a crash...\n", eng.Iter())

	recovered, err := knor.NewSEMEngine(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := recovered.RestoreEngine(ckpt); err != nil {
		log.Fatal(err)
	}
	res2, err := recovered.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Centroids.Equal(res2.Centroids, 1e-9) {
		log.Fatal("recovered run diverged from the uninterrupted run")
	}
	fmt.Printf("recovered run converged identically after %d total iterations\n", res2.Iters)
}
