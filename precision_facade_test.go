package knor_test

import (
	"math"
	"testing"

	"knor"
)

// TestFacadePrecision drives the precision API exactly as an external
// caller would: RunPrecision at both widths, the direct float32 entry,
// and the precision-selected serving assigner.
func TestFacadePrecision(t *testing.T) {
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: 2000, D: 8, Clusters: 6, Spread: 0.05, Seed: 1,
	})
	cfg := knor.Config{K: 6, MaxIters: 40, Seed: 2, Prune: knor.PruneMTI}

	oracle, err := knor.Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := knor.RunPrecision(data, cfg, knor.Precision64)
	if err != nil {
		t.Fatal(err)
	}
	if r64.SSE != oracle.SSE {
		t.Fatalf("Precision64 SSE %g != oracle %g", r64.SSE, oracle.SSE)
	}

	r32, err := knor.RunPrecision(data, cfg, knor.Precision32)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(r32.SSE-oracle.SSE) / oracle.SSE; rel > 1e-3 {
		t.Fatalf("Precision32 SSE %g vs %g (rel %g)", r32.SSE, oracle.SSE, rel)
	}

	direct, err := knor.Run32(knor.ConvertMatrix32(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.SSE != r32.SSE {
		t.Fatalf("Run32 SSE %g != RunPrecision32 SSE %g", direct.SSE, r32.SSE)
	}

	reg := knor.NewRegistry(1)
	if _, err := reg.Publish("m", oracle.Centroids); err != nil {
		t.Fatal(err)
	}
	for _, p := range []knor.Precision{knor.Precision64, knor.Precision32} {
		a := knor.NewAssigner(reg, knor.BatcherOptions{MaxBatch: 64}, p)
		as, err := a.AssignRows("m", data)
		a.Close()
		if err != nil {
			t.Fatalf("precision %v: %v", p, err)
		}
		// Every row must land on its trained cluster: the model IS the
		// converged centroid set for this data.
		for i := range as {
			if as[i].Cluster != oracle.Assign[i] {
				t.Fatalf("precision %v: row %d assigned %d, trained %d",
					p, i, as[i].Cluster, oracle.Assign[i])
			}
		}
	}
}
