package knor_test

import (
	"path/filepath"
	"testing"

	"knor"
)

func TestFacadeQuickstart(t *testing.T) {
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: 2000, D: 8, Clusters: 8, Spread: 0.05, Seed: 1,
	})
	res, err := knor.Run(data, knor.Config{
		K: 8, MaxIters: 50, Init: knor.InitKMeansPP,
		Prune: knor.PruneMTI, Threads: 4,
		Topo: knor.DefaultTopology(), Sched: knor.SchedNUMAAware,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("quickstart did not converge")
	}
	if len(res.Assign) != 2000 || res.Centroids.Rows() != 8 {
		t.Fatal("result shape wrong")
	}
}

func TestFacadeThreeModulesAgree(t *testing.T) {
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: 1000, D: 8, Clusters: 5, Spread: 0.05, Seed: 2,
	})
	base := knor.Config{K: 5, MaxIters: 40, Init: knor.InitForgy, Seed: 3, Threads: 2, TaskSize: 64}

	knori, err := knor.Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	knors, err := knor.RunSEM(data, knor.SEMConfig{Kmeans: base, Devices: 4, RowCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	knord, err := knor.RunDistributed(data, knor.DistConfig{Machines: 3, Mode: knor.ModeKnord, Kmeans: base})
	if err != nil {
		t.Fatal(err)
	}
	if !knori.Centroids.Equal(knors.Centroids, 1e-9) {
		t.Fatal("knori and knors disagree")
	}
	if !knori.Centroids.Equal(knord.Centroids, 1e-9) {
		t.Fatal("knori and knord disagree")
	}
}

func TestFacadeMatrixIO(t *testing.T) {
	m, err := knor.FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.knor")
	if err := knor.SaveMatrix(m, path); err != nil {
		t.Fatal(err)
	}
	got, err := knor.LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got, 0) {
		t.Fatal("round trip failed")
	}
	if knor.NewMatrix(3, 2).Rows() != 3 {
		t.Fatal("NewMatrix shape")
	}
}

func TestFacadeMiniBatchAndSSE(t *testing.T) {
	data := knor.Generate(knor.Spec{Kind: knor.UniformMultivariate, N: 500, D: 4, Seed: 4})
	res, err := knor.RunMiniBatch(data, knor.Config{K: 4, MaxIters: 50, Seed: 1, Tol: 1e-3}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := knor.SSE(data, res.Centroids); got <= 0 {
		t.Fatalf("SSE = %g", got)
	}
}

func TestFacadeExtensions(t *testing.T) {
	data, truth := knor.GenerateLabeled(knor.Spec{
		Kind: knor.NaturalClusters, N: 1500, D: 6, Clusters: 4, Spread: 0.05, Seed: 8,
	})
	// k-means is a local optimiser; take the best of a few seeds, as a
	// practitioner would.
	var res *knor.Result
	for seed := int64(1); seed <= 5; seed++ {
		r, err := knor.Run(data, knor.Config{
			K: 4, MaxIters: 50, Init: knor.InitKMeansPP, Seed: seed, Threads: 4,
			Prune: knor.PruneYinyang,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res == nil || r.SSE < res.SSE {
			res = r
		}
	}
	ari, err := knor.AdjustedRand(truth, res.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.9 {
		t.Fatalf("ARI vs truth %g on separated data", ari)
	}
	if s := knor.Silhouette(data, res.Centroids, res.Assign); s < 0.5 {
		t.Fatalf("silhouette %g", s)
	}
	if db := knor.DaviesBouldin(data, res.Centroids, res.Assign); db <= 0 {
		t.Fatalf("Davies-Bouldin %g", db)
	}
	if nmi, _ := knor.NMI(truth, res.Assign); nmi < 0.8 {
		t.Fatalf("NMI %g", nmi)
	}

	// GMM + kNN through the generalised driver.
	gmm := knor.NewGMM(res.Centroids, 1e-6)
	stats, err := knor.RunKernel(data, gmm, knor.MLConfig{MaxIters: 30, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iters == 0 {
		t.Fatal("GMM ran no iterations")
	}
	q := knor.NewKNN(res.Centroids, 3)
	if _, err := knor.RunKernel(data, q, knor.MLConfig{Threads: 4}); err != nil {
		t.Fatal(err)
	}
	if len(q.Neighbors(0)) != 3 {
		t.Fatal("kNN result shape")
	}

	// Semi-supervised seeding + agglomeration round out the pipeline.
	labels := make([]int32, data.Rows())
	for i := range labels {
		labels[i] = -1
	}
	labels[0] = 0
	if _, err := knor.RunSemiSupervised(data, labels, knor.Config{K: 4, MaxIters: 20, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, flat, err := knor.AgglomerateCentroids(res.Centroids, res.Sizes, 2); err != nil || len(flat) != 4 {
		t.Fatalf("agglomerate: %v %v", flat, err)
	}
}
