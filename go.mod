module knor

go 1.24
