GO ?= go

.PHONY: all build vet test bench figs clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Headline benchmarks: one representative configuration per paper
# artifact (Tables 1-3, Figures 4-13, ablations).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Full figure sweeps (smaller -quick variants; drop -quick for the
# complete scale-reduced reproduction).
figs:
	$(GO) run ./cmd/knorbench -quick

clean:
	$(GO) clean ./...
