GO ?= go

.PHONY: all build vet test race bench bench-precision figs docs serve-loadtest io-smoke shardserve-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (mirrors CI).
race:
	$(GO) test -race ./internal/serve/... ./internal/kmeans/... ./cmd/knorserve/... \
		./internal/store/... ./internal/sem/... \
		./internal/shardserve/... ./internal/cluster/...

# Headline benchmarks: one representative configuration per paper
# artifact (Tables 1-3, Figures 4-13, ablations).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# The float32 vs float64 kernel/serving pair behind EXPERIMENTS.md's
# precision section.
bench-precision:
	$(GO) test -run=NONE -bench='Gemm32vs64' -benchtime=5x ./internal/blas
	$(GO) test -run=NONE -bench='ServeAssign' -benchtime=20x ./internal/serve

# Full figure sweeps (smaller -quick variants; drop -quick for the
# complete scale-reduced reproduction).
figs:
	$(GO) run ./cmd/knorbench -quick

# Documentation hygiene: formatting, vet, and no dangling relative
# links in any markdown file (mirrors the CI docs job).
docs:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck

# The EXPERIMENTS.md serving row: sustained /assign req/s on a
# 1M x 16, k=100 model over local HTTP.
serve-loadtest:
	$(GO) run ./cmd/knorserve -loadtest

# Real-I/O smoke (mirrors CI): generate a small store-format file,
# stream it with the file backend, and assert the result is
# oracle-equal to the simulated backend on the same bytes, with
# nonzero I/O counters.
io-smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/kmeansgen -format knor -kind natural -n 6000 -d 16 -clusters 5 -o $$tmp/smoke.knor && \
	$(GO) run ./cmd/knors -data $$tmp/smoke.knor -backend file -k 5 -threads 4 -pagecache 65536 -rowcache 65536 > $$tmp/file.out && \
	$(GO) run ./cmd/knors -data $$tmp/smoke.knor -backend sim  -k 5 -threads 4 -pagecache 65536 -rowcache 65536 > $$tmp/sim.out && \
	fkey=$$(grep -E '^(SSE|iterations)' $$tmp/file.out); \
	skey=$$(grep -E '^(SSE|iterations)' $$tmp/sim.out); \
	echo "file: $$fkey"; echo "sim:  $$skey"; \
	if [ "$$fkey" != "$$skey" ]; then echo "io-smoke: FILE/SIM MISMATCH"; exit 1; fi; \
	if grep -q 'requested 0.0 MB' $$tmp/file.out; then echo "io-smoke: no I/O recorded"; exit 1; fi; \
	echo "io-smoke: ok (file backend oracle-equal to simulated backend)"

# Distributed-serving smoke (mirrors CI): the sharded-vs-single-node
# bit-identity property test (machines x precision x argmin ties) and
# the simulated scaling acceptance (>= 2x assign throughput at 4
# machines), then the quick -exp shardserve sweep.
shardserve-smoke:
	$(GO) test -run 'TestShardParity|TestSimulateShardServeScaling' ./internal/shardserve
	$(GO) run ./cmd/knorbench -quick -exp shardserve

clean:
	$(GO) clean ./...
