GO ?= go

.PHONY: all build vet test race bench bench-precision bench-kernels test-noasm figs docs serve-loadtest io-smoke shardserve-smoke metrics-smoke chaos-smoke cluster-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (mirrors CI).
race:
	$(GO) test -race ./internal/serve/... ./internal/kmeans/... ./cmd/knorserve/... \
		./internal/store/... ./internal/sem/... ./internal/telemetry/... \
		./internal/shardserve/... ./internal/cluster/... ./internal/topology/... \
		./internal/netcluster/... ./internal/dist/... ./internal/cliutil/...

# Headline benchmarks: one representative configuration per paper
# artifact (Tables 1-3, Figures 4-13, ablations).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# The float32 vs float64 kernel/serving pair behind EXPERIMENTS.md's
# precision section.
bench-precision:
	$(GO) test -run=NONE -bench='Gemm32vs64' -benchtime=5x ./internal/blas
	$(GO) test -run=NONE -bench='ServeAssign' -benchtime=20x ./internal/serve

# EXPERIMENTS.md's Kernels table: SIMD vs pure-Go GEMM GFLOP/s at both
# element widths plus the int8 quantized scan, with the machine-readable
# report (including the float32 asm/go speedup on the acceptance shape)
# in BENCH_kernels.json.
bench-kernels:
	$(GO) run ./cmd/knorbench -exp kernels -json BENCH_kernels.json

# The parity suite against the pure-Go reference kernels (mirrors CI):
# the same tests that gate the assembly path must pass with it compiled
# out.
test-noasm:
	$(GO) test -tags noasm ./internal/blas/... ./internal/serve/... ./internal/shardserve/...

# Full figure sweeps (smaller -quick variants; drop -quick for the
# complete scale-reduced reproduction).
figs:
	$(GO) run ./cmd/knorbench -quick

# Documentation hygiene: formatting, vet, and no dangling relative
# links in any markdown file (mirrors the CI docs job).
docs:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck

# The EXPERIMENTS.md serving row: sustained /assign req/s on a
# 1M x 16, k=100 model over local HTTP.
serve-loadtest:
	$(GO) run ./cmd/knorserve -loadtest

# Real-I/O smoke (mirrors CI): generate a small store-format file,
# stream it with the file backend, and assert the result is
# oracle-equal to the simulated backend on the same bytes, with
# nonzero I/O counters.
io-smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/kmeansgen -format knor -kind natural -n 6000 -d 16 -clusters 5 -o $$tmp/smoke.knor && \
	$(GO) run ./cmd/knors -data $$tmp/smoke.knor -backend file -k 5 -threads 4 -pagecache 65536 -rowcache 65536 > $$tmp/file.out && \
	$(GO) run ./cmd/knors -data $$tmp/smoke.knor -backend sim  -k 5 -threads 4 -pagecache 65536 -rowcache 65536 > $$tmp/sim.out && \
	fkey=$$(grep -E '^(SSE|iterations)' $$tmp/file.out); \
	skey=$$(grep -E '^(SSE|iterations)' $$tmp/sim.out); \
	echo "file: $$fkey"; echo "sim:  $$skey"; \
	if [ "$$fkey" != "$$skey" ]; then echo "io-smoke: FILE/SIM MISMATCH"; exit 1; fi; \
	if grep -q 'requested 0.0 MB' $$tmp/file.out; then echo "io-smoke: no I/O recorded"; exit 1; fi; \
	echo "io-smoke: ok (file backend oracle-equal to simulated backend)"

# Distributed-serving smoke (mirrors CI): the sharded-vs-single-node
# bit-identity property test (machines x precision x argmin ties) and
# the simulated scaling acceptance (>= 2x assign throughput at 4
# machines), then the quick -exp shardserve sweep.
shardserve-smoke:
	$(GO) test -run 'TestShardParity|TestSimulateShardServeScaling' ./internal/shardserve
	$(GO) run ./cmd/knorbench -quick -exp shardserve

# Chaos smoke (mirrors CI, deterministic, well under 30s): the seeded
# kill-schedule harness — replicated shard serving stays oracle-exact
# through machine kills/recoveries at both precisions, failures confine
# to the dead group's centroid range, and the schedule replays exactly
# from its seed. Override the schedule with CHAOS_SEED=N for replay.
CHAOS_SEED ?= 1
chaos-smoke:
	$(GO) test -run 'TestChaos' ./internal/shardserve -chaos-seed $(CHAOS_SEED)
	$(GO) run ./cmd/knorbench -quick -exp failover

# Observability smoke (mirrors CI): boot knorserve replicated
# (-machines 3 -replicas 2), publish a model, and assert /readyz flips
# ready, /metrics serves the expected series from every instrumented
# layer (including the topology membership instruments), /debug/traces
# holds a sampled /assign lifecycle, and killing a machine drops the
# live gauge, fires failovers, and keeps /assign answering.
metrics-smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	trap 'kill $$pid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/knorserve ./cmd/knorserve && \
	$$tmp/knorserve -addr 127.0.0.1:18080 -trace-sample 1 -machines 3 -replicas 2 \
		-precision 32 -quantize int8 & pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18080/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -sS -o /dev/null -w '%{http_code}' http://127.0.0.1:18080/readyz | grep -q 503 || \
		{ echo "metrics-smoke: readyz should be 503 with no models"; exit 1; }; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/models -d \
		'{"name":"smoke","k":4,"iters":10,"spec":{"n":400,"d":4,"clusters":4,"spread":0.05,"seed":1}}' >/dev/null && \
	curl -fsS http://127.0.0.1:18080/readyz >/dev/null || \
		{ echo "metrics-smoke: readyz not ready after publish"; exit 1; }; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/assign -d \
		'{"model":"smoke","rows":[[0.1,0.2,0.3,0.4]]}' >/dev/null && \
	curl -fsS http://127.0.0.1:18080/metrics > $$tmp/metrics.txt && \
	for series in knor_serve_requests_total knor_serve_gemm_seconds \
		knor_shardserve_requests_total knor_store_page_hits_total \
		knor_sem_iterations_total knor_registry_publishes_total \
		knor_http_requests_total knor_topology_machines_live \
		knor_topology_transitions_total knor_topology_health_pulse_seconds \
		knor_shardserve_failovers_total knor_shardserve_rebalances_total \
		knor_shardserve_spread_bytes_total knor_blas_gemm_dispatch_total \
		knor_serve_quant_rows_total knor_serve_quant_rerank_fallbacks_total \
		knor_net_bytes_total knor_net_frames_total \
		knor_net_dial_errors_total knor_net_roundtrip_seconds; do \
		grep -q "^# TYPE $$series" $$tmp/metrics.txt || \
			{ echo "metrics-smoke: $$series missing from /metrics"; exit 1; }; done; \
	grep -q '^knor_serve_quant_rows_total [1-9]' $$tmp/metrics.txt || \
		{ echo "metrics-smoke: quantized assign path served no rows (-quantize int8)"; exit 1; }; \
	grep '^knor_serve_quant_rerank_fallbacks_total' $$tmp/metrics.txt || \
		{ echo "metrics-smoke: no rerank fallback counter"; exit 1; }; \
	grep -q '^knor_topology_machines_live 3$$' $$tmp/metrics.txt || \
		{ echo "metrics-smoke: live gauge should read 3 at boot"; exit 1; }; \
	families=$$(grep -c '^# TYPE ' $$tmp/metrics.txt); \
	[ "$$families" -ge 25 ] || { echo "metrics-smoke: only $$families series families"; exit 1; }; \
	curl -fsS http://127.0.0.1:18080/debug/traces | grep -q '"gemm"' || \
		{ echo "metrics-smoke: no gemm stage in sampled traces"; exit 1; }; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/machines -d '{"machine":1,"action":"kill"}' >/dev/null && \
	curl -fsS -X POST http://127.0.0.1:18080/v1/assign -d \
		'{"model":"smoke","rows":[[0.1,0.2,0.3,0.4]]}' >/dev/null || \
		{ echo "metrics-smoke: assign failed with one machine down (replicas=2)"; exit 1; }; \
	curl -fsS http://127.0.0.1:18080/metrics > $$tmp/metrics2.txt && \
	grep -q '^knor_topology_machines_live 2$$' $$tmp/metrics2.txt || \
		{ echo "metrics-smoke: live gauge should read 2 after kill"; exit 1; }; \
	grep -q '^knor_topology_transitions_total{to="dead"} [1-9]' $$tmp/metrics2.txt || \
		{ echo "metrics-smoke: no dead transition recorded"; exit 1; }; \
	echo "metrics-smoke: ok ($$families series families, readyz + traces + failover verified)"

# Real-cluster smoke (mirrors CI): knord as 3 OS processes over
# loopback TCP bit-identical (result checksum) to the single-process
# run at both precisions, then knorserve as coordinator + 2 worker
# processes answering /v1/assign byte-identical to a single-node
# server before and after a kill -9 of one worker. Also asserts the
# cluster observability surface: /metrics/cluster carries worker-rank
# series and degrades the killed worker to knor_federation_stale,
# /debug/traces shows worker spans stitched into coordinator traces,
# and /debug/events journals the peer joins.
cluster-smoke:
	@sh scripts/cluster_smoke.sh

clean:
	$(GO) clean ./...
