GO ?= go

.PHONY: all build vet test race bench bench-precision figs docs serve-loadtest clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (mirrors CI).
race:
	$(GO) test -race ./internal/serve/... ./internal/kmeans/... ./cmd/knorserve/...

# Headline benchmarks: one representative configuration per paper
# artifact (Tables 1-3, Figures 4-13, ablations).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# The float32 vs float64 kernel/serving pair behind EXPERIMENTS.md's
# precision section.
bench-precision:
	$(GO) test -run=NONE -bench='Gemm32vs64' -benchtime=5x ./internal/blas
	$(GO) test -run=NONE -bench='ServeAssign' -benchtime=20x ./internal/serve

# Full figure sweeps (smaller -quick variants; drop -quick for the
# complete scale-reduced reproduction).
figs:
	$(GO) run ./cmd/knorbench -quick

# Documentation hygiene: formatting, vet, and no dangling relative
# links in any markdown file (mirrors the CI docs job).
docs:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck

# The EXPERIMENTS.md serving row: sustained /assign req/s on a
# 1M x 16, k=100 model over local HTTP.
serve-loadtest:
	$(GO) run ./cmd/knorserve -loadtest

clean:
	$(GO) clean ./...
