// Package ssd simulates the storage substrate knors runs on: an array
// of SSDs behind a SAFS-like userspace I/O layer with a page cache and
// I/O request merging (Zheng et al., the FlashGraph/SAFS stack the
// paper modifies).
//
// The quantities the paper's Figures 6a/6b measure — bytes *requested*
// by the algorithm versus bytes actually *read* from SSD — are counter
// semantics and are computed exactly: a request for a handful of rows
// still drags in whole 4KB pages ("we still receive significantly more
// data from disk than we request"), unless the page cache or the row
// cache (package sem) absorbs it. I/O time is charged to per-device
// simclock resources, so device parallelism and queueing behave like an
// array of independent SSDs.
package ssd

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"knor/internal/simclock"
)

// DefaultPageSize is the paper's chosen minimum read unit (4KB).
const DefaultPageSize = 4096

// Array is a set of simulated SSD devices. Pages stripe round-robin
// across devices, as SAFS does.
type Array struct {
	Model    simclock.CostModel
	PageSize int
	devices  []*simclock.Resource

	mu        sync.Mutex
	pageReads uint64 // pages fetched from devices
	requests  uint64 // merged device requests issued
}

// NewArray creates an array of n simulated devices.
func NewArray(n, pageSize int, model simclock.CostModel) *Array {
	if n <= 0 {
		panic("ssd: need at least one device")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	a := &Array{Model: model, PageSize: pageSize}
	a.devices = make([]*simclock.Resource, n)
	for i := range a.devices {
		a.devices[i] = simclock.NewResource(fmt.Sprintf("ssd-%d", i))
	}
	return a
}

// Devices returns the device count.
func (a *Array) Devices() int { return len(a.devices) }

// Device returns device i's resource, for utilisation inspection.
func (a *Array) Device(i int) *simclock.Resource { return a.devices[i] }

// Stats returns total pages read from devices and merged requests.
func (a *Array) Stats() (pageReads, requests uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pageReads, a.requests
}

// ResetStats clears counters and device queues.
func (a *Array) ResetStats() {
	a.mu.Lock()
	a.pageReads, a.requests = 0, 0
	a.mu.Unlock()
	for _, d := range a.devices {
		d.Reset()
	}
}

// ReadPages reads the given page IDs starting at simulated time start.
// Runs of consecutive pages on the same device are merged into a single
// request (one seek, one long transfer) — SAFS's I/O merging. It
// returns the completion time of the last request and the number of
// bytes transferred.
func (a *Array) ReadPages(start float64, pages []int) (end float64, bytes uint64) {
	if len(pages) == 0 {
		return start, 0
	}
	sorted := append([]int(nil), pages...)
	sort.Ints(sorted)
	nd := len(a.devices)
	end = start
	// Group by device, then merge consecutive page runs per device.
	// Pages stripe round-robin: page p lives on device p % nd, and
	// consecutive pages on one device are p, p+nd, p+2nd...
	byDev := make(map[int][]int)
	prev := -1
	for _, p := range sorted {
		if p == prev {
			continue // dedup
		}
		prev = p
		byDev[p%nd] = append(byDev[p%nd], p)
	}
	var totalPages, nReq uint64
	for dev, ps := range byDev {
		runLen := 0
		for i := 0; i < len(ps); i++ {
			runLen++
			lastOfRun := i == len(ps)-1 || ps[i+1] != ps[i]+nd
			if !lastOfRun {
				continue
			}
			// The device is occupied for the transfer only; the seek
			// latency delays completion but does not serialise the
			// device — NCQ keeps the flash channels pipelined across
			// queued requests.
			dur := float64(runLen*a.PageSize) / a.Model.SSDBandwidth
			if e := a.devices[dev].Acquire(start, dur) + a.Model.SSDSeek; e > end {
				end = e
			}
			totalPages += uint64(runLen)
			nReq++
			runLen = 0
		}
	}
	a.mu.Lock()
	a.pageReads += totalPages
	a.requests += nReq
	a.mu.Unlock()
	return end, totalPages * uint64(a.PageSize)
}

// PageCache is an LRU cache of pages, SAFS's in-memory page cache.
// Safe for concurrent use.
type PageCache struct {
	mu       sync.Mutex
	capacity int // pages
	ll       *list.List
	items    map[int]*list.Element
	hits     uint64
	misses   uint64
}

// NewPageCache creates a cache holding capacityBytes worth of pages.
func NewPageCache(capacityBytes, pageSize int) *PageCache {
	capPages := capacityBytes / pageSize
	if capPages < 1 {
		capPages = 1
	}
	return &PageCache{capacity: capPages, ll: list.New(), items: make(map[int]*list.Element)}
}

// Capacity returns the capacity in pages.
func (c *PageCache) Capacity() int { return c.capacity }

// Len returns the resident page count.
func (c *PageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hits and misses.
func (c *PageCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Filter partitions the requested pages into cached (hits, promoted to
// most-recent) and missing. Missing pages are *not* inserted; call
// Insert after reading them.
func (c *PageCache) Filter(pages []int) (missing []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[int]bool, len(pages))
	for _, p := range pages {
		if seen[p] {
			continue
		}
		seen[p] = true
		if el, ok := c.items[p]; ok {
			c.ll.MoveToFront(el)
			c.hits++
		} else {
			c.misses++
			missing = append(missing, p)
		}
	}
	return missing
}

// Insert adds pages, evicting least-recently-used pages over capacity.
func (c *PageCache) Insert(pages []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range pages {
		if el, ok := c.items[p]; ok {
			c.ll.MoveToFront(el)
			continue
		}
		c.items[p] = c.ll.PushFront(p)
		for c.ll.Len() > c.capacity {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.items, back.Value.(int))
		}
	}
}

// Contains reports residency without touching recency or stats.
func (c *PageCache) Contains(p int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[p]
	return ok
}

// SAFS combines the device array and page cache and does row-to-page
// translation, mirroring the userspace filesystem under FlashGraph.
type SAFS struct {
	Array    *Array
	Cache    *PageCache
	RowBytes int

	mu             sync.Mutex
	bytesRequested uint64
	bytesRead      uint64
}

// NewSAFS builds the I/O stack for rows of rowBytes bytes each.
func NewSAFS(array *Array, cacheBytes, rowBytes int) *SAFS {
	return &SAFS{
		Array:    array,
		Cache:    NewPageCache(cacheBytes, array.PageSize),
		RowBytes: rowBytes,
	}
}

// PagesOfRow returns the page span holding a row.
func (s *SAFS) PagesOfRow(row int) (first, last int) {
	lo := row * s.RowBytes
	hi := lo + s.RowBytes - 1
	return lo / s.Array.PageSize, hi / s.Array.PageSize
}

// ReadRows requests the given rows' data starting at simulated time
// start. It translates rows to pages, consults the page cache, merges
// and issues device reads for the misses, and returns the completion
// time plus the bytes read from devices. The requested-byte counter
// advances by rows × RowBytes regardless — the gap between the two is
// Figure 6's fragmentation effect.
func (s *SAFS) ReadRows(start float64, rows []int) (end float64, read uint64) {
	if len(rows) == 0 {
		return start, 0
	}
	var pages []int
	for _, r := range rows {
		first, last := s.PagesOfRow(r)
		for p := first; p <= last; p++ {
			pages = append(pages, p)
		}
	}
	missing := s.Cache.Filter(pages)
	end, read = s.Array.ReadPages(start, missing)
	s.Cache.Insert(missing)
	s.mu.Lock()
	s.bytesRequested += uint64(len(rows) * s.RowBytes)
	s.bytesRead += read
	s.mu.Unlock()
	return end, read
}

// Traffic returns cumulative requested and device-read bytes.
func (s *SAFS) Traffic() (requested, read uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRequested, s.bytesRead
}

// ResetStats clears SAFS, cache and device statistics.
func (s *SAFS) ResetStats() {
	s.mu.Lock()
	s.bytesRequested, s.bytesRead = 0, 0
	s.mu.Unlock()
	s.Array.ResetStats()
}
