package ssd

import (
	"testing"
	"testing/quick"

	"knor/internal/simclock"
)

func model() simclock.CostModel { return simclock.DefaultCostModel() }

func TestArrayReadPagesMerging(t *testing.T) {
	a := NewArray(1, 4096, model())
	// Pages 0,1,2 on one device are consecutive: one merged request.
	end, bytes := a.ReadPages(0, []int{2, 0, 1})
	if bytes != 3*4096 {
		t.Fatalf("bytes = %d", bytes)
	}
	reads, reqs := a.Stats()
	if reads != 3 || reqs != 1 {
		t.Fatalf("reads=%d reqs=%d, want 3 merged into 1", reads, reqs)
	}
	wantEnd := model().SSDSeek + 3*4096/model().SSDBandwidth
	if end != wantEnd {
		t.Fatalf("end = %g, want %g", end, wantEnd)
	}
}

func TestArrayScatteredNotMerged(t *testing.T) {
	a := NewArray(1, 4096, model())
	a.ReadPages(0, []int{0, 5, 10})
	_, reqs := a.Stats()
	if reqs != 3 {
		t.Fatalf("scattered pages merged: %d requests", reqs)
	}
}

func TestArrayStriping(t *testing.T) {
	// With 4 devices, pages 0..3 land on different devices and proceed
	// in parallel: completion is one request's duration, not four.
	a := NewArray(4, 4096, model())
	end, _ := a.ReadPages(0, []int{0, 1, 2, 3})
	one := model().SSDSeek + 4096/model().SSDBandwidth
	if end > one+1e-12 {
		t.Fatalf("striped reads serialised: end=%g want %g", end, one)
	}
	// Pages 0, 4, 8 share device 0 and merge into one run (consecutive
	// on-device), still one seek.
	a2 := NewArray(4, 4096, model())
	_, _ = a2.ReadPages(0, []int{0, 4, 8})
	_, reqs := a2.Stats()
	if reqs != 1 {
		t.Fatalf("on-device consecutive run not merged: %d", reqs)
	}
}

func TestArrayDedup(t *testing.T) {
	a := NewArray(2, 4096, model())
	_, bytes := a.ReadPages(0, []int{7, 7, 7})
	if bytes != 4096 {
		t.Fatalf("duplicate pages read repeatedly: %d bytes", bytes)
	}
}

func TestArrayEmpty(t *testing.T) {
	a := NewArray(2, 4096, model())
	end, bytes := a.ReadPages(5, nil)
	if end != 5 || bytes != 0 {
		t.Fatalf("empty read: end=%g bytes=%d", end, bytes)
	}
}

func TestPageCacheLRU(t *testing.T) {
	c := NewPageCache(3*4096, 4096) // 3 pages
	c.Insert([]int{1, 2, 3})
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	// Touch 1 so it becomes most recent; insert 4 evicts 2 (LRU).
	if missing := c.Filter([]int{1}); missing != nil {
		t.Fatalf("1 missing: %v", missing)
	}
	c.Insert([]int{4})
	if c.Contains(2) {
		t.Fatal("LRU page 2 not evicted")
	}
	if !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Fatal("wrong residents")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestPageCacheFilter(t *testing.T) {
	c := NewPageCache(10*4096, 4096)
	c.Insert([]int{5})
	missing := c.Filter([]int{5, 6, 6, 7})
	if len(missing) != 2 || missing[0] != 6 || missing[1] != 7 {
		t.Fatalf("missing = %v", missing)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestPageCacheMinCapacity(t *testing.T) {
	c := NewPageCache(100, 4096) // less than one page
	if c.Capacity() != 1 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
	c.Insert([]int{1, 2})
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSAFSRowTranslation(t *testing.T) {
	a := NewArray(2, 4096, model())
	s := NewSAFS(a, 1<<20, 256) // 16 rows per page
	if f, l := s.PagesOfRow(0); f != 0 || l != 0 {
		t.Fatalf("row 0 pages %d-%d", f, l)
	}
	if f, l := s.PagesOfRow(16); f != 1 || l != 1 {
		t.Fatalf("row 16 pages %d-%d", f, l)
	}
	// A row spanning a page boundary (rowBytes not dividing page).
	s2 := NewSAFS(a, 1<<20, 3000)
	if f, l := s2.PagesOfRow(1); f != 0 || l != 1 {
		t.Fatalf("spanning row pages %d-%d", f, l)
	}
}

func TestSAFSFragmentation(t *testing.T) {
	// Requesting 1 row out of each page reads whole pages: read bytes
	// far exceed requested bytes — Figure 6's effect.
	a := NewArray(4, 4096, model())
	s := NewSAFS(a, 4096, 64) // tiny cache, 64 rows/page
	var rows []int
	for p := 0; p < 50; p++ {
		rows = append(rows, p*64) // first row of each page
	}
	_, read := s.ReadRows(0, rows)
	requested, readTotal := s.Traffic()
	if requested != 50*64 {
		t.Fatalf("requested = %d", requested)
	}
	if read != readTotal || readTotal != 50*4096 {
		t.Fatalf("read = %d, want %d", readTotal, 50*4096)
	}
	if readTotal < requested*10 {
		t.Fatal("fragmentation effect missing")
	}
}

func TestSAFSPageCacheAbsorbsRereads(t *testing.T) {
	a := NewArray(2, 4096, model())
	s := NewSAFS(a, 1<<20, 64)
	rows := []int{0, 1, 2, 100, 200}
	s.ReadRows(0, rows)
	_, read1 := s.Traffic()
	_, read := s.ReadRows(1, rows) // all pages now cached
	if read != 0 {
		t.Fatalf("re-read hit devices: %d bytes", read)
	}
	_, read2 := s.Traffic()
	if read2 != read1 {
		t.Fatalf("device reads grew: %d -> %d", read1, read2)
	}
}

func TestSAFSResetStats(t *testing.T) {
	a := NewArray(2, 4096, model())
	s := NewSAFS(a, 1<<20, 64)
	s.ReadRows(0, []int{0, 1})
	s.ResetStats()
	req, read := s.Traffic()
	if req != 0 || read != 0 {
		t.Fatal("ResetStats left traffic")
	}
	if r, q := a.Stats(); r != 0 || q != 0 {
		t.Fatal("ResetStats left array stats")
	}
}

func TestArrayBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewArray(0, 4096, model())
}

// Property: bytes read from devices always covers bytes requested
// (pages ⊇ rows) and equals pageReads × pageSize.
func TestSAFSConservationProperty(t *testing.T) {
	f := func(rowsRaw []uint16, devsRaw uint8) bool {
		devs := int(devsRaw)%8 + 1
		a := NewArray(devs, 4096, model())
		s := NewSAFS(a, 64*4096, 128)
		var rows []int
		for _, r := range rowsRaw {
			rows = append(rows, int(r)%10000)
		}
		if len(rows) == 0 {
			return true
		}
		s.ReadRows(0, rows)
		_, read := s.Traffic()
		pr, _ := a.Stats()
		if read != pr*4096 {
			return false
		}
		// Every distinct requested page must now be cached.
		for _, r := range rows {
			f1, l1 := s.PagesOfRow(r)
			for p := f1; p <= l1; p++ {
				if !s.Cache.Contains(p) && s.Cache.Capacity() > len(rows)*2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LRU cache never exceeds capacity and hits+misses equals
// distinct filtered pages.
func TestPageCacheProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewPageCache(8*4096, 4096)
		var filtered uint64
		for _, op := range ops {
			p := int(op) % 32
			if op%2 == 0 {
				c.Insert([]int{p})
			} else {
				seen := map[int]bool{p: true}
				c.Filter([]int{p})
				filtered += uint64(len(seen))
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		h, m := c.Stats()
		return h+m == filtered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
