package matrix

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewDenseAndAccessors(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || len(m.Data) != 12 {
		t.Fatalf("dims %dx%d len %d", m.Rows(), m.Cols(), len(m.Data))
	}
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %g", m.At(1, 2))
	}
	r := m.Row(1)
	if len(r) != 4 || r[2] != 7.5 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 1 // Row aliases storage
	if m.At(1, 0) != 1 {
		t.Fatal("Row does not alias storage")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g", m.At(2, 1))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty FromRows: %v %d", err, empty.Rows())
	}
}

func TestCloneAndEqual(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	if !m.Equal(c, 0) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, 9)
	if m.Equal(c, 0) {
		t.Fatal("clone shares storage")
	}
	if m.Equal(NewDense(2, 3), 0) {
		t.Fatal("dim mismatch compared equal")
	}
	if !m.Equal(c, 10) {
		t.Fatal("tolerance not honoured")
	}
}

func TestSqDistAndDist(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	if got := SqDist(a, b); got != 9 {
		t.Fatalf("SqDist = %g", got)
	}
	if got := Dist(a, b); got != 3 {
		t.Fatalf("Dist = %g", got)
	}
}

func TestDotNormAddScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm = %g", got)
	}
	dst := []float64{1, 1}
	AddTo(dst, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("AddTo = %v", dst)
	}
	Scale(dst, 2)
	if dst[0] != 6 || dst[1] != 8 {
		t.Fatalf("Scale = %v", dst)
	}
}

func TestRoundTripBuffer(t *testing.T) {
	m, _ := FromRows([][]float64{{1.5, -2.25}, {math.Pi, math.Inf(1)}, {0, math.SmallestNonzeroFloat64}})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Dense
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(&got, 0) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.knor")
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got, 0) {
		t.Fatal("file round trip mismatch")
	}
	// Expected file size: 32-byte header + 6 float64.
	fi, _ := os.Stat(path)
	if fi.Size() != 32+6*8 {
		t.Fatalf("file size %d", fi.Size())
	}
}

func TestReadBadMagic(t *testing.T) {
	var m Dense
	if _, err := m.ReadFrom(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	var buf bytes.Buffer
	m.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-5]
	var got Dense
	if _, err := got.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.knor")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims did not panic")
		}
	}()
	NewDense(-1, 2)
}

func TestRowBytes(t *testing.T) {
	if got := NewDense(2, 5).RowBytes(); got != 40 {
		t.Fatalf("RowBytes = %d", got)
	}
}

// Property: SqDist is symmetric, non-negative, zero iff equal vectors,
// and satisfies the triangle inequality on its square root.
func TestSqDistProperties(t *testing.T) {
	clean := func(v []float64) []float64 {
		out := make([]float64, 4)
		for i := range out {
			if i < len(v) && !math.IsNaN(v[i]) && !math.IsInf(v[i], 0) && math.Abs(v[i]) < 1e6 {
				out[i] = v[i]
			}
		}
		return out
	}
	f := func(ar, br, cr []float64) bool {
		a, b, c := clean(ar), clean(br), clean(cr)
		dab, dba := Dist(a, b), Dist(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		if SqDist(a, b) < 0 {
			return false
		}
		if SqDist(a, a) != 0 {
			return false
		}
		// triangle inequality with fp slack
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: binary round trip preserves every finite value exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		d := 3
		n := len(vals) / d
		m := NewDense(n, d)
		for i := 0; i < n*d; i++ {
			v := vals[i]
			if math.IsNaN(v) {
				v = 0
			}
			m.Data[i] = v
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		var got Dense
		if _, err := got.ReadFrom(&buf); err != nil {
			return false
		}
		return m.Equal(&got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSqDist16(b *testing.B) {
	x := make([]float64, 16)
	y := make([]float64, 16)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i * 2)
	}
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += SqDist(x, y)
	}
	_ = s
}

func TestNormalizeRows(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}, {0, 0}, {0, -2}})
	NormalizeRows(m)
	if math.Abs(Norm(m.Row(0))-1) > 1e-15 ||
		math.Abs(m.At(0, 0)-0.6) > 1e-15 || math.Abs(m.At(0, 1)-0.8) > 1e-15 {
		t.Fatalf("row 0 = %v", m.Row(0))
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatalf("zero row changed: %v", m.Row(1))
	}
	if m.At(2, 1) != -1 {
		t.Fatalf("row 2 = %v", m.Row(2))
	}
	// Idempotent on already-unit rows up to fp: norms stay within one ulp.
	before := m.Clone()
	NormalizeRows(m)
	if !m.Equal(before, 1e-15) {
		t.Fatal("re-normalising unit rows moved them")
	}
}
