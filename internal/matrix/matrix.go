// Package matrix provides the dense row-major float64 matrix type used
// throughout knor-go, including the binary on-disk row-major format the
// knors semi-external-memory module streams from, and helpers that view
// a matrix as per-NUMA-node chunks matching the paper's data layout
// (Figure 1).
package matrix

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Dense is an n×d row-major matrix of float64.
type Dense struct {
	RowsN int
	ColsN int
	Data  []float64 // len == RowsN*ColsN
}

// NewDense allocates a zeroed n×d matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dims %dx%d", rows, cols))
	}
	return &Dense{RowsN: rows, ColsN: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from a slice of equal-length rows, copying.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	d := len(rows[0])
	m := NewDense(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("matrix: row %d has %d cols, want %d", i, len(r), d)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 {
	return m.Data[i*m.ColsN : (i+1)*m.ColsN]
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.ColsN+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.ColsN+j] = v }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.RowsN }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.ColsN }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.RowsN, m.ColsN)
	copy(c.Data, m.Data)
	return c
}

// Equal reports element-wise equality within tol (absolute).
func (m *Dense) Equal(o *Dense, tol float64) bool {
	if m.RowsN != o.RowsN || m.ColsN != o.ColsN {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// RowBytes returns the size of one row in the binary format.
func (m *Dense) RowBytes() int { return m.ColsN * 8 }

// SqDist returns the squared Euclidean distance between two equal-length
// vectors. It is the hot kernel of every k-means variant here; keep it
// free of bounds checks the compiler can't elide.
func SqDist(a, b []float64) float64 {
	var s float64
	_ = b[len(a)-1]
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two vectors.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	_ = b[len(a)-1]
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AddTo accumulates src into dst element-wise.
func AddTo(dst, src []float64) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// NormalizeRows scales every row of m to unit Euclidean norm in place
// (zero rows are left untouched). The spherical k-means variants in
// every engine share this one implementation: the distributed module's
// oracle-exactness depends on shard rows and the globally-normalised
// copy being produced by the bit-identical operation.
func NormalizeRows(m *Dense) {
	for i := 0; i < m.RowsN; i++ {
		row := m.Row(i)
		n := Norm(row)
		if n > 0 {
			Scale(row, 1/n)
		}
	}
}

// --- binary on-disk format -------------------------------------------
//
// The format mirrors knor's raw row-major input: a 32-byte header
// (magic, version, n, d) followed by n*d little-endian float64 values.

const (
	magic   = 0x4b4e4f52 // "KNOR"
	version = 1
)

var errBadMagic = errors.New("matrix: bad magic (not a knor matrix file)")

// WriteTo writes the matrix in binary format.
func (m *Dense) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [32]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.RowsN))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(m.ColsN))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var buf [8]byte
	written := int64(len(hdr))
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return written, err
		}
		written += 8
	}
	return written, bw.Flush()
}

// ReadFrom reads a matrix in binary format, replacing m's contents.
func (m *Dense) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		return 0, errBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return 0, fmt.Errorf("matrix: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint64(hdr[8:16]))
	d := int(binary.LittleEndian.Uint64(hdr[16:24]))
	if n < 0 || d < 0 || (d != 0 && n > (1<<40)/d) {
		return 0, fmt.Errorf("matrix: implausible dims %dx%d", n, d)
	}
	m.RowsN, m.ColsN = n, d
	m.Data = make([]float64, n*d)
	read := int64(len(hdr))
	var buf [8]byte
	for i := range m.Data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return read, err
		}
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		read += 8
	}
	return read, nil
}

// SaveFile writes the matrix to a file path.
func (m *Dense) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := m.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a matrix from a file path.
func LoadFile(path string) (*Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Dense
	if _, err := m.ReadFrom(f); err != nil {
		return nil, err
	}
	return &m, nil
}
