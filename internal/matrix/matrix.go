// Package matrix provides the dense row-major matrix type used
// throughout knor-go, including the binary on-disk row-major format the
// knors semi-external-memory module streams from, and helpers that view
// a matrix as per-NUMA-node chunks matching the paper's data layout
// (Figure 1).
//
// Mat is generic over the element type (fp.Float); Dense is the
// float64 instantiation every oracle-tested engine runs on. The generic
// helpers (SqDist, Dot, NormalizeRows, ...) perform, at float64, exactly
// the operations the pre-generic package performed — bit-identity with
// the serial oracle is a package contract.
package matrix

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"knor/internal/fp"
)

// Mat is an n×d row-major matrix of T.
type Mat[T fp.Float] struct {
	RowsN int
	ColsN int
	Data  []T // len == RowsN*ColsN
}

// Dense is the float64 matrix, the element type of every oracle path.
type Dense = Mat[float64]

// NewDense allocates a zeroed n×d float64 matrix.
func NewDense(rows, cols int) *Dense { return New[float64](rows, cols) }

// New allocates a zeroed n×d matrix of T.
func New[T fp.Float](rows, cols int) *Mat[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dims %dx%d", rows, cols))
	}
	return &Mat[T]{RowsN: rows, ColsN: cols, Data: make([]T, rows*cols)}
}

// FromRows builds a Dense from a slice of equal-length float64 rows,
// copying. (Kept non-generic so untyped nil/empty calls need no type
// argument; FromRowsOf is the generic variant.)
func FromRows(rows [][]float64) (*Dense, error) { return FromRowsOf(rows) }

// FromRowsOf builds a matrix from a slice of equal-length rows, copying.
func FromRowsOf[T fp.Float](rows [][]T) (*Mat[T], error) {
	if len(rows) == 0 {
		return New[T](0, 0), nil
	}
	d := len(rows[0])
	m := New[T](len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("matrix: row %d has %d cols, want %d", i, len(r), d)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Convert copies m into a matrix of element type To. Widening
// (float32 → float64) is exact; narrowing rounds to nearest.
func Convert[To, From fp.Float](m *Mat[From]) *Mat[To] {
	out := New[To](m.RowsN, m.ColsN)
	for i, v := range m.Data {
		out.Data[i] = To(v)
	}
	return out
}

// ToFloat64 views m at float64, converting only when m is narrower:
// a *Dense input is returned as-is (no copy), keeping the float64 hot
// paths allocation-free.
func ToFloat64[T fp.Float](m *Mat[T]) *Dense {
	if d, ok := any(m).(*Dense); ok {
		return d
	}
	return Convert[float64](m)
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat[T]) Row(i int) []T {
	return m.Data[i*m.ColsN : (i+1)*m.ColsN]
}

// At returns element (i, j).
func (m *Mat[T]) At(i, j int) T { return m.Data[i*m.ColsN+j] }

// Set assigns element (i, j).
func (m *Mat[T]) Set(i, j int, v T) { m.Data[i*m.ColsN+j] = v }

// Rows returns the number of rows.
func (m *Mat[T]) Rows() int { return m.RowsN }

// Cols returns the number of columns.
func (m *Mat[T]) Cols() int { return m.ColsN }

// Clone returns a deep copy.
func (m *Mat[T]) Clone() *Mat[T] {
	c := New[T](m.RowsN, m.ColsN)
	copy(c.Data, m.Data)
	return c
}

// Equal reports element-wise equality within tol (absolute).
func (m *Mat[T]) Equal(o *Mat[T], tol float64) bool {
	if m.RowsN != o.RowsN || m.ColsN != o.ColsN {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(float64(v)-float64(o.Data[i])) > tol {
			return false
		}
	}
	return true
}

// RowBytes returns the size of one row in memory (and, for float64, in
// the binary format — the on-disk encoding is always 8-byte float64).
func (m *Mat[T]) RowBytes() int { return m.ColsN * fp.ElemBytes[T]() }

// SqDist returns the squared Euclidean distance between two equal-length
// vectors. It is the hot kernel of every k-means variant here; keep it
// free of bounds checks the compiler can't elide.
func SqDist[T fp.Float](a, b []T) T {
	var s T
	_ = b[len(a)-1]
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two vectors. The square
// root is taken in float64 at every width (widening float32 is exact),
// so the float64 path is unchanged.
func Dist[T fp.Float](a, b []T) T { return T(math.Sqrt(float64(SqDist(a, b)))) }

// Dot returns the inner product of two equal-length vectors.
func Dot[T fp.Float](a, b []T) T {
	var s T
	_ = b[len(a)-1]
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm[T fp.Float](v []T) T { return T(math.Sqrt(float64(Dot(v, v)))) }

// AddTo accumulates src into dst element-wise.
func AddTo[T fp.Float](dst, src []T) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies v by s in place.
func Scale[T fp.Float](v []T, s T) {
	for i := range v {
		v[i] *= s
	}
}

// NormalizeRows scales every row of m to unit Euclidean norm in place
// (zero rows are left untouched). The spherical k-means variants in
// every engine share this one implementation: the distributed module's
// oracle-exactness depends on shard rows and the globally-normalised
// copy being produced by the bit-identical operation.
func NormalizeRows[T fp.Float](m *Mat[T]) {
	for i := 0; i < m.RowsN; i++ {
		row := m.Row(i)
		n := Norm(row)
		if n > 0 {
			Scale(row, 1/n)
		}
	}
}

// --- binary on-disk format -------------------------------------------
//
// The format mirrors knor's raw row-major input: a 32-byte header
// (magic, version, n, d) followed by n*d little-endian float64 values.
// The wire element is always float64 regardless of the in-memory T:
// float32 matrices widen losslessly on write and round on read, and
// float64 files stay readable by either precision.

const (
	magic   = 0x4b4e4f52 // "KNOR"
	version = 1
)

var errBadMagic = errors.New("matrix: bad magic (not a knor matrix file)")

// WriteTo writes the matrix in binary format.
func (m *Mat[T]) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [32]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.RowsN))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(m.ColsN))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var buf [8]byte
	written := int64(len(hdr))
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(v)))
		if _, err := bw.Write(buf[:]); err != nil {
			return written, err
		}
		written += 8
	}
	return written, bw.Flush()
}

// ReadFrom reads a matrix in binary format, replacing m's contents.
func (m *Mat[T]) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		return 0, errBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return 0, fmt.Errorf("matrix: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint64(hdr[8:16]))
	d := int(binary.LittleEndian.Uint64(hdr[16:24]))
	if n < 0 || d < 0 || (d != 0 && n > (1<<40)/d) {
		return 0, fmt.Errorf("matrix: implausible dims %dx%d", n, d)
	}
	m.RowsN, m.ColsN = n, d
	m.Data = make([]T, n*d)
	read := int64(len(hdr))
	var buf [8]byte
	for i := range m.Data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return read, err
		}
		m.Data[i] = T(math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		read += 8
	}
	return read, nil
}

// SaveFile writes the matrix to a file path.
func (m *Mat[T]) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := m.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a float64 matrix from a file path.
func LoadFile(path string) (*Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Dense
	if _, err := m.ReadFrom(f); err != nil {
		return nil, err
	}
	return &m, nil
}
