package matrix

// Tests for the float32 instantiation of Mat and the cross-precision
// helpers. The float64 path is covered by matrix_test.go and must stay
// bit-identical; float32 results carry a relative-error contract.

import (
	"bytes"
	"math"
	"testing"
)

func TestConvertRoundTrip(t *testing.T) {
	m := NewDense(3, 4)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.1
	}
	m32 := Convert[float32](m)
	if m32.Rows() != 3 || m32.Cols() != 4 {
		t.Fatalf("dims %dx%d", m32.Rows(), m32.Cols())
	}
	back := Convert[float64](m32)
	for i, v := range back.Data {
		if math.Abs(v-m.Data[i]) > 1e-7*math.Abs(m.Data[i]) {
			t.Fatalf("round trip [%d]: %g vs %g", i, v, m.Data[i])
		}
	}
	// Widening float32 -> float64 is exact.
	again := Convert[float32](back)
	for i, v := range again.Data {
		if v != m32.Data[i] {
			t.Fatalf("widen-narrow not exact at %d: %g vs %g", i, v, m32.Data[i])
		}
	}
}

func TestToFloat64NoCopyForDense(t *testing.T) {
	m := NewDense(2, 2)
	if ToFloat64(m) != m {
		t.Fatal("ToFloat64 copied a *Dense")
	}
	m32 := New[float32](2, 2)
	m32.Set(1, 1, 3.5)
	w := ToFloat64(m32)
	if w.At(1, 1) != 3.5 {
		t.Fatalf("widened At(1,1) = %g", w.At(1, 1))
	}
}

func TestMat32RowBytes(t *testing.T) {
	if got := New[float32](2, 5).RowBytes(); got != 20 {
		t.Fatalf("float32 RowBytes = %d, want 20", got)
	}
	if got := NewDense(2, 5).RowBytes(); got != 40 {
		t.Fatalf("float64 RowBytes = %d, want 40", got)
	}
}

// TestMat32BinaryIO checks the wire format stays 8-byte float64 at
// every in-memory width: a float32 matrix round-trips exactly (widening
// is lossless), and a float64 reader sees the widened values.
func TestMat32BinaryIO(t *testing.T) {
	m32, err := FromRowsOf([][]float32{{1.5, -2.25}, {0.1, 3e7}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m32.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	var back Mat[float32]
	if _, err := back.ReadFrom(bytes.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m32, 0) {
		t.Fatal("float32 binary round trip not exact")
	}

	var wide Dense
	if _, err := wide.ReadFrom(bytes.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
	for i, v := range wide.Data {
		if v != float64(m32.Data[i]) {
			t.Fatalf("widened read [%d]: %g vs %g", i, v, m32.Data[i])
		}
	}
}

func TestGenericHelpers32(t *testing.T) {
	a32 := []float32{1, 2, 3}
	b32 := []float32{4, 6, 3}
	if got := SqDist(a32, b32); got != 25 {
		t.Fatalf("SqDist32 = %g", got)
	}
	if got := Dist(a32, b32); got != 5 {
		t.Fatalf("Dist32 = %g", got)
	}
	if got := Dot(a32, b32); got != 25 {
		t.Fatalf("Dot32 = %g", got)
	}
	m, _ := FromRowsOf([][]float32{{3, 4}, {0, 0}})
	NormalizeRows(m)
	if math.Abs(float64(Norm(m.Row(0)))-1) > 1e-6 {
		t.Fatalf("row 0 norm = %g", Norm(m.Row(0)))
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero row touched")
	}
	AddTo(a32, b32)
	if a32[0] != 5 || a32[2] != 6 {
		t.Fatalf("AddTo32 = %v", a32)
	}
	Scale(b32, 0.5)
	if b32[1] != 3 {
		t.Fatalf("Scale32 = %v", b32)
	}
}
