package frameworks

import (
	"testing"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/workload"
)

func fwData(n, d, clusters int, seed int64) *matrix.Dense {
	return workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: n, D: d,
		Clusters: clusters, Spread: 0.05, Seed: seed,
	})
}

func fwCfg(k int) kmeans.Config {
	return kmeans.Config{
		K: k, MaxIters: 30, Init: kmeans.InitForgy, Seed: 1,
		Threads: 4, TaskSize: 64,
		Topo: numa.Topology{Nodes: 2, CoresPerNode: 2},
	}
}

func TestFrameworksProduceExactLloyd(t *testing.T) {
	data := fwData(1000, 8, 5, 91)
	serial, err := kmeans.RunSerial(data, kmeans.Config{K: 5, MaxIters: 30, Init: kmeans.InitForgy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{MLlib, H2O, Turi} {
		res, err := Run(data, fwCfg(5), sys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iters != serial.Iters {
			t.Fatalf("%v: iters %d vs %d", sys, res.Iters, serial.Iters)
		}
		if !serial.Centroids.Equal(res.Centroids, 1e-9) {
			t.Fatalf("%v: centroids differ — emulation changed the algorithm", sys)
		}
	}
}

func TestKnoriBeatsFrameworks(t *testing.T) {
	// Figure 9: knori is at least an order of magnitude faster; even
	// knori- (no pruning) is several times faster.
	data := fwData(8192, 8, 6, 92)
	cfg := fwCfg(6)
	cfg.MaxIters = 10
	cfg.Tol = -1
	knoriCfg := cfg
	knoriCfg.Prune = kmeans.PruneMTI
	knoriCfg.Sched = sched.NUMAAware
	knori, err := kmeans.Run(data, knoriCfg)
	if err != nil {
		t.Fatal(err)
	}
	knoriMinusCfg := cfg
	knoriMinusCfg.Sched = sched.NUMAAware
	knoriMinus, err := kmeans.Run(data, knoriMinusCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{MLlib, H2O, Turi} {
		res, err := Run(data, cfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		if res.SimSeconds < knori.SimSeconds*5 {
			t.Fatalf("%v (%g) not well behind knori (%g)", sys, res.SimSeconds, knori.SimSeconds)
		}
		if res.SimSeconds < knoriMinus.SimSeconds*2 {
			t.Fatalf("%v (%g) not behind knori- (%g)", sys, res.SimSeconds, knoriMinus.SimSeconds)
		}
	}
}

func TestTuriSlowestMLlibMidH2OMid(t *testing.T) {
	// Needs enough rows that per-row boxing (Turi's weakness) outweighs
	// per-iteration driver dispatch (MLlib's weakness).
	data := fwData(65536, 8, 5, 93)
	cfg := fwCfg(5)
	cfg.MaxIters = 5
	cfg.Tol = -1
	times := map[System]float64{}
	for _, sys := range []System{MLlib, H2O, Turi} {
		res, err := Run(data, cfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		times[sys] = res.SimSeconds
	}
	if !(times[Turi] > times[MLlib] && times[Turi] > times[H2O]) {
		t.Fatalf("Turi not slowest: %v", times)
	}
}

func TestFrameworkMemoryExceedsKnor(t *testing.T) {
	// Figure 9c: frameworks hold multiples of the packed data size.
	data := fwData(2000, 32, 5, 94)
	cfg := fwCfg(5)
	knori, _ := kmeans.Run(data, cfg)
	for _, sys := range []System{MLlib, H2O, Turi} {
		res, err := Run(data, cfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		if res.MemoryBytes <= knori.MemoryBytes {
			t.Fatalf("%v memory %d not above knori %d", sys, res.MemoryBytes, knori.MemoryBytes)
		}
	}
}

func TestSystemString(t *testing.T) {
	if MLlib.String() != "MLlib" || H2O.String() != "H2O" || Turi.String() != "Turi" {
		t.Fatal("System.String mismatch")
	}
}

func TestProfileOfPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ProfileOf(System(42))
}
