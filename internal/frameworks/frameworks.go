// Package frameworks emulates the single-node execution profile of the
// systems the paper compares against in Figures 9 and 10: Spark MLlib,
// H2O, and Turi (GraphLab Create). Each runs the *identical* Lloyd's
// algorithm (pruning off — none of the three prunes) through knor-go's
// engine, with the structural costs the paper attributes their gap to:
//
//   - boxed per-row access (JVM objects / SFrame columnar assembly),
//     charged as extra RowOverhead per touched row;
//   - a centralised driver that schedules partition tasks serially,
//     charged per iteration;
//   - no NUMA policy: unpinned workers over a single-bank allocation;
//   - inflated resident memory (object headers, block-manager copies,
//     disk-backed frame caches).
//
// The overhead constants are calibration parameters, chosen once so the
// single-threaded gap roughly matches the paper's Table 3/Figure 9
// ratios, and recorded in EXPERIMENTS.md next to each reproduced
// figure. They are deliberately *not* fitted per experiment.
package frameworks

import (
	"fmt"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
)

// System identifies an emulated framework.
type System int

const (
	// MLlib is Spark MLlib's k-means (RDD map/reduce, JVM rows).
	MLlib System = iota
	// H2O is H2O's distributed fork-join over chunked frames.
	H2O
	// Turi is GraphLab Create / Turi's SFrame-backed k-means.
	Turi
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case MLlib:
		return "MLlib"
	case H2O:
		return "H2O"
	case Turi:
		return "Turi"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Profile holds a framework's structural cost constants.
type Profile struct {
	// RowOverhead is the extra per-row access cost (seconds).
	RowOverhead float64
	// DriverTasksPerThread is how many partition tasks the centralised
	// driver dispatches per worker thread per iteration.
	DriverTasksPerThread int
	// TaskDispatch is the serial driver cost per task (seconds).
	TaskDispatch float64
	// MemFactor multiplies the packed nd×8 data footprint.
	MemFactor float64
}

// ProfileOf returns the calibration profile for a system.
func ProfileOf(s System) Profile {
	switch s {
	case MLlib:
		return Profile{RowOverhead: 850e-9, DriverTasksPerThread: 4, TaskDispatch: 1e-3, MemFactor: 6}
	case H2O:
		return Profile{RowOverhead: 650e-9, DriverTasksPerThread: 2, TaskDispatch: 0.5e-3, MemFactor: 4}
	case Turi:
		return Profile{RowOverhead: 5e-6, DriverTasksPerThread: 2, TaskDispatch: 1e-3, MemFactor: 3}
	default:
		panic(fmt.Sprintf("frameworks: unknown system %d", int(s)))
	}
}

// MinMemoryBytes estimates a framework's footprint when configured to
// the paper's "minimum memory necessary" (§8.8): ~1.3× the packed data
// (headers and chunk metadata, no redundant copies) plus Lloyd's state.
func MinMemoryBytes(n, d, k, threads int) uint64 {
	return uint64(float64(n)*float64(d)*8*1.3) +
		kmeans.StateBytes(n, d, k, threads, kmeans.PruneNone)
}

// Run executes the emulated framework's k-means on a single node with
// its default profile. The returned result is numerically identical to
// exact Lloyd's (same algorithm); only the simulated time and memory
// profile differ.
func Run(data *matrix.Dense, cfg kmeans.Config, sys System) (*kmeans.Result, error) {
	return RunWithProfile(data, cfg, sys, ProfileOf(sys))
}

// RunWithProfile is Run with explicit cost constants. The benchmark
// harness uses it to scale the *fixed* driver costs by the dataset's
// scale divisor, preserving the full-scale compute-to-overhead ratio
// on scaled-down data.
func RunWithProfile(data *matrix.Dense, cfg kmeans.Config, sys System, p Profile) (*kmeans.Result, error) {
	fcfg := cfg
	fcfg.Prune = kmeans.PruneNone // none of the frameworks prunes
	fcfg.NUMAOblivious = true
	fcfg.Placement = numa.PlaceSingleBank
	fcfg.Sched = sched.FIFO
	validated, err := fcfg.WithDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	fcfg = validated
	fcfg.Model.RowOverhead += p.RowOverhead
	res, err := kmeans.Run(data, fcfg)
	if err != nil {
		return nil, err
	}
	// Centralised driver: serial task dispatch each iteration.
	driver := float64(p.DriverTasksPerThread*fcfg.Threads) * p.TaskDispatch
	for i := range res.PerIter {
		res.PerIter[i].SimSeconds += driver
	}
	res.SimSeconds += driver * float64(res.Iters)
	// Memory: inflated data representation plus plain Lloyd's state.
	n, d := data.Rows(), data.Cols()
	res.MemoryBytes = uint64(float64(n)*float64(d)*8*p.MemFactor) +
		kmeans.StateBytes(n, d, cfg.K, fcfg.Threads, kmeans.PruneNone)
	return res, nil
}
