package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"knor/internal/matrix"
)

func testMatrix(n, d int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func writeTemp(t *testing.T, m *matrix.Dense, elem int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.knor")
	if err := WriteDense(m, path, elem); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripFloat64(t *testing.T) {
	m := testMatrix(503, 17, 1) // rowBytes 136, not a page divisor
	path := writeTemp(t, m, 8)
	f, err := Open(path, Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Rows() != 503 || f.Cols() != 17 || f.ElemBytes() != 8 {
		t.Fatalf("header mismatch: %dx%d elem %d", f.Rows(), f.Cols(), f.ElemBytes())
	}
	r := f.Reader()
	for i := 0; i < m.Rows(); i++ {
		row, err := r.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range row {
			if v != m.At(i, j) {
				t.Fatalf("row %d col %d: %v != %v", i, j, v, m.At(i, j))
			}
		}
	}
	// And via ReadDense.
	whole, err := ReadDense(path)
	if err != nil {
		t.Fatal(err)
	}
	if !whole.Equal(m, 0) {
		t.Fatal("ReadDense differs")
	}
}

func TestRoundTripFloat32Rounds(t *testing.T) {
	m := testMatrix(64, 9, 2)
	path := writeTemp(t, m, 4)
	f, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := f.Reader()
	for i := 0; i < m.Rows(); i++ {
		row, err := r.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range row {
			if want := float64(float32(m.At(i, j))); v != want {
				t.Fatalf("row %d col %d: %v != %v", i, j, v, want)
			}
		}
	}
}

func TestWriterRowCountEnforced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.knor")
	w, err := Create(path, 10, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 4)
	for i := 0; i < 5; i++ {
		if err := w.WriteRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err == nil {
		t.Fatal("short writer closed cleanly")
	}
	if err := w.WriteRow(make([]float64, 3)); err == nil {
		t.Fatal("wrong-width row accepted")
	}
}

func TestOpenRejectsLegacyMatrixFormat(t *testing.T) {
	m := testMatrix(20, 4, 3)
	path := filepath.Join(t.TempDir(), "legacy.knor")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("legacy format not rejected with ErrBadMagic: %v", err)
	}
	if ok, err := SniffStore(path); err != nil || ok {
		t.Fatalf("SniffStore(legacy) = %v, %v", ok, err)
	}
	storePath := writeTemp(t, m, 8)
	if ok, err := SniffStore(storePath); err != nil || !ok {
		t.Fatalf("SniffStore(store) = %v, %v", ok, err)
	}
}

func TestOpenRejectsTruncatedPayload(t *testing.T) {
	m := testMatrix(100, 8, 4)
	path := writeTemp(t, m, 8)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.knor")
	if err := os.WriteFile(trunc, raw[:len(raw)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc, Options{}); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := ReadDense(trunc); err == nil {
		t.Fatal("ReadDense accepted truncated payload")
	}
}

func TestHeaderValidation(t *testing.T) {
	good := encodeHeader(header{n: 10, d: 4, elem: 8, pageSize: PageSize})
	if _, err := decodeHeader(good); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func([]byte){
		"magic":   func(b []byte) { b[0] ^= 0xff },
		"version": func(b []byte) { b[4] = 99 },
		"elem":    func(b []byte) { b[24] = 3 },
	} {
		b := append([]byte(nil), good...)
		mut(b)
		if _, err := decodeHeader(b); err == nil {
			t.Fatalf("%s corruption accepted", name)
		}
	}
}

func TestRequestMergingCoalescesPages(t *testing.T) {
	// d=1024 float64 rows are 8192 bytes = 2+ pages; a cold row read
	// must arrive as ONE merged ReadAt, not one per page.
	m := testMatrix(16, 1024, 5)
	path := writeTemp(t, m, 8)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cr := &countingAt{data: raw}
	f, err := OpenReaderAt(cr, int64(len(raw)), Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := cr.calls.Load() // header read
	r := f.Reader()
	if _, err := r.Row(3); err != nil {
		t.Fatal(err)
	}
	if got := cr.calls.Load() - base; got != 1 {
		t.Fatalf("cold 3-page row issued %d ReadAt calls, want 1 merged request", got)
	}
	// Cached re-read issues none.
	if _, err := r.Row(3); err != nil {
		t.Fatal(err)
	}
	if got := cr.calls.Load() - base; got != 1 {
		t.Fatalf("warm re-read issued extra ReadAt (%d total)", got)
	}
}

type countingAt struct {
	data  []byte
	calls atomic.Int64
}

func (c *countingAt) ReadAt(p []byte, off int64) (int, error) {
	c.calls.Add(1)
	if off >= int64(len(c.data)) {
		return 0, os.ErrInvalid
	}
	n := copy(p, c.data[off:])
	if n < len(p) {
		return n, os.ErrInvalid
	}
	return n, nil
}

func TestTrafficCounters(t *testing.T) {
	m := testMatrix(200, 16, 6) // rowBytes 128, 32 rows/page
	path := writeTemp(t, m, 8)
	f, err := Open(path, Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := f.Reader()
	for i := 0; i < 10; i++ {
		if _, err := r.Row(i); err != nil {
			t.Fatal(err)
		}
	}
	req, read := f.Traffic()
	if req != 10*128 {
		t.Fatalf("requested %d, want %d", req, 10*128)
	}
	// Ten 128B rows live on one 4KB page: fragmentation means read >>
	// requested — the Figure 6 gap, now on a real file.
	if read < req || read != PageSize {
		t.Fatalf("read %d, want one page (%d) >= requested %d", read, PageSize, req)
	}

	// Untracked readers move only the device counter.
	u := f.Reader()
	u.Untracked = true
	if _, err := u.Row(199); err != nil {
		t.Fatal(err)
	}
	req2, read2 := f.Traffic()
	if req2 != req {
		t.Fatalf("untracked read bumped requested: %d -> %d", req, req2)
	}
	if read2 <= read {
		t.Fatal("untracked cold read did not bump device counter")
	}
}

func TestCacheBoundedAndEviction(t *testing.T) {
	m := testMatrix(4096, 64, 7) // rowBytes 512, payload 2MB = 512 pages
	path := writeTemp(t, m, 8)
	capBytes := 16 * PageSize
	f, err := Open(path, Options{CacheBytes: capBytes, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := f.Reader()
	for i := 0; i < m.Rows(); i++ {
		if _, err := r.Row(i); err != nil {
			t.Fatal(err)
		}
	}
	if peak := f.CachePeakPages(); peak > f.CacheCapPages() {
		t.Fatalf("peak %d pages exceeds capacity %d", peak, f.CacheCapPages())
	}
	// Evicted pages must still decode correctly on re-read.
	row, err := r.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range row {
		if v != m.At(0, j) {
			t.Fatalf("evicted row re-read wrong at col %d", j)
		}
	}
	hits, misses := f.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestSingleflightNoDuplicateReads(t *testing.T) {
	m := testMatrix(1024, 32, 8) // payload 256KB = 64 pages
	path := writeTemp(t, m, 8)
	f, err := Open(path, Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := f.Reader()
			for i := 0; i < m.Rows(); i++ {
				row, err := r.Row(i)
				if err != nil {
					t.Error(err)
					return
				}
				if row[0] != m.At(i, 0) {
					t.Errorf("row %d corrupt", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// With a cache larger than the file, every page is read exactly
	// once no matter how many concurrent readers wanted it.
	_, read := f.Traffic()
	if want := uint64(m.Rows() * f.RowBytes()); read != want {
		t.Fatalf("device read %d bytes, want exactly the payload %d", read, want)
	}
}

func TestPrefetchWarmsCacheWithoutRequested(t *testing.T) {
	m := testMatrix(512, 64, 9)
	path := writeTemp(t, m, 8)
	f, err := Open(path, Options{CacheBytes: 1 << 20, PrefetchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows := make([]int32, m.Rows())
	for i := range rows {
		rows[i] = int32(i)
	}
	f.Prefetch(rows)
	// Demand reads join or follow the prefetch; singleflight guarantees
	// the payload is read at most once regardless of the race.
	r := f.Reader()
	for i := 0; i < m.Rows(); i++ {
		row, err := r.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if row[5] != m.At(i, 5) {
			t.Fatalf("row %d corrupt under prefetch", i)
		}
	}
	req, read := f.Traffic()
	if want := uint64(m.Rows() * f.RowBytes()); req != want {
		t.Fatalf("requested %d, want %d", req, want)
	}
	if want := uint64(m.Rows() * f.RowBytes()); read != want {
		t.Fatalf("device read %d, want exactly one pass over the payload (%d)", read, want)
	}
}

func TestPayloadTailClamped(t *testing.T) {
	// 5 rows x 100 cols x 8B = 4000B payload: less than one page, so
	// the tail read must clamp, not fail.
	m := testMatrix(5, 100, 10)
	path := writeTemp(t, m, 8)
	f, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := f.Reader()
	row, err := r.Row(4)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range row {
		if v != m.At(4, j) {
			t.Fatalf("tail row mismatch at col %d", j)
		}
	}
	_, read := f.Traffic()
	if read != 4000 {
		t.Fatalf("read %d, want clamped payload 4000", read)
	}
}
