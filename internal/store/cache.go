package store

import (
	"container/list"
	"sync"
)

// pageCache is a sharded LRU cache of payload pages with per-page
// singleflight: concurrent readers (compute workers, the prefetch
// pool) of a missing page elect one owner to fetch it; everyone else
// waits on the owner's flight instead of issuing a duplicate ReadAt.
// Sharding keeps lock hold times short under many workers; the
// flight/insert protocol never holds a shard lock across device I/O.
type pageCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int // pages
	ll      *list.List
	items   map[int64]*list.Element
	flights map[int64]*flight
	hits    uint64
	misses  uint64
	peak    int // high-water resident pages
}

type cacheEntry struct {
	page int64
	data []byte
	// prefetched marks a page inserted by the prefetch pool and not yet
	// touched by a demand read; the first demand hit counts it as a used
	// prefetch and clears the mark.
	prefetched bool
}

// flight is one in-progress page fetch. done is closed after data/err
// are set; data is immutable afterwards.
type flight struct {
	done     chan struct{}
	data     []byte
	err      error
	prefetch bool // owned by the prefetch pool
}

func newPageCache(capacityBytes, pageSize, shards int) *pageCache {
	if shards < 1 {
		shards = 1
	}
	capPages := capacityBytes / pageSize
	if capPages < shards {
		capPages = shards // at least one page per shard
	}
	c := &pageCache{shards: make([]cacheShard, shards)}
	per := capPages / shards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:     per,
			ll:      list.New(),
			items:   make(map[int64]*list.Element),
			flights: make(map[int64]*flight),
		}
	}
	return c
}

func (c *pageCache) shard(p int64) *cacheShard {
	return &c.shards[int(uint64(p)%uint64(len(c.shards)))]
}

// acquire resolves one page: on a cache hit it returns the data; on a
// miss it returns the flight to wait on, with owned reporting whether
// the caller must perform the fetch and complete the flight (publish
// or fail). record=false skips hit/miss accounting (prefetch probes).
func (c *pageCache) acquire(p int64, record bool) (data []byte, fl *flight, owned bool) {
	s := c.shard(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[p]; ok {
		s.ll.MoveToFront(el)
		ent := el.Value.(cacheEntry)
		if record {
			s.hits++
			telPageHits.Inc()
			if ent.prefetched {
				telPrefetchUsed.Inc()
				ent.prefetched = false
				el.Value = ent
			}
		}
		return ent.data, nil, false
	}
	if fl, ok := s.flights[p]; ok {
		// Another reader is already fetching: joining costs no device
		// I/O, so it counts as a hit (the overlap the prefetch pipeline
		// exists to create).
		if record {
			s.hits++
			telPageHits.Inc()
			if fl.prefetch {
				telPrefetchUsed.Inc()
				fl.prefetch = false
			}
		}
		return nil, fl, false
	}
	fl = &flight{done: make(chan struct{}), prefetch: !record}
	s.flights[p] = fl
	if record {
		s.misses++
		telPageMisses.Inc()
	}
	return nil, fl, true
}

// publish completes an owned flight with data and inserts the page.
func (c *pageCache) publish(p int64, fl *flight, data []byte) {
	s := c.shard(p)
	s.mu.Lock()
	delete(s.flights, p)
	if _, ok := s.items[p]; !ok {
		s.items[p] = s.ll.PushFront(cacheEntry{page: p, data: data, prefetched: fl.prefetch})
		telResidentPages.Inc()
		for s.ll.Len() > s.cap {
			back := s.ll.Back()
			s.ll.Remove(back)
			delete(s.items, back.Value.(cacheEntry).page)
			telPageEvictions.Inc()
			telResidentPages.Dec()
		}
		if s.ll.Len() > s.peak {
			s.peak = s.ll.Len()
		}
	}
	s.mu.Unlock()
	fl.data = data
	close(fl.done)
}

// fail completes an owned flight with an error; the page is not cached.
func (c *pageCache) fail(p int64, fl *flight, err error) {
	s := c.shard(p)
	s.mu.Lock()
	delete(s.flights, p)
	s.mu.Unlock()
	fl.err = err
	close(fl.done)
}

func (c *pageCache) stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// capPages returns the total page capacity across shards.
func (c *pageCache) capPages() int {
	total := 0
	for i := range c.shards {
		total += c.shards[i].cap
	}
	return total
}

// peakPages returns the summed high-water resident page count — the
// bound the never-materialise guarantee is asserted against.
func (c *pageCache) peakPages() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.peak
		s.mu.Unlock()
	}
	return total
}

func (c *pageCache) lenPages() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.ll.Len()
		s.mu.Unlock()
	}
	return total
}
