package store

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Options tune the I/O stack of an opened store file.
type Options struct {
	// CacheBytes sizes the page cache; 0 means 64MB.
	CacheBytes int
	// Shards is the page-cache shard count; 0 means 8.
	Shards int
	// PrefetchWorkers is the size of the asynchronous fetch pool that
	// overlaps page reads with compute; 0 disables prefetching
	// (Prefetch becomes a no-op and every read is demand-paged).
	PrefetchWorkers int
	// PrefetchQueue bounds the pending prefetch range queue; 0 means 256.
	// When the queue is full further hints are dropped, never blocked on.
	PrefetchQueue int
}

func (o Options) withDefaults() Options {
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.PrefetchQueue <= 0 {
		o.PrefetchQueue = 256
	}
	return o
}

// File is an open store-format matrix: rows are decoded on demand
// through the page cache, so the resident footprint is bounded by the
// cache capacity, never by n*d.
type File struct {
	r      io.ReaderAt
	closer io.Closer
	hdr    header
	cache  *pageCache
	pf     *prefetcher

	requested atomic.Uint64 // bytes the algorithm asked for (rows × rowBytes)
	devRead   atomic.Uint64 // bytes actually read from the backing file
}

// Open opens a store file for streaming reads.
func Open(path string, opts Options) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sf, err := OpenReaderAt(f, st.Size(), opts)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sf.closer = f
	return sf, nil
}

// OpenReaderAt builds a File over any io.ReaderAt of the given total
// size (testing seam; Open is the file-path entry point).
func OpenReaderAt(r io.ReaderAt, size int64, opts Options) (*File, error) {
	hbuf := make([]byte, headerBytes)
	n, rerr := r.ReadAt(hbuf, 0)
	if n < 32 {
		return nil, fmt.Errorf("store: truncated header: %w", rerr)
	}
	// Decode from the fixed 32-byte prefix so a wrong-format file is
	// reported as ErrBadMagic even when shorter than the header page.
	h, err := decodeHeader(hbuf[:n])
	if err != nil {
		return nil, err
	}
	if n < headerBytes {
		return nil, fmt.Errorf("store: truncated header page (%d bytes)", n)
	}
	if want := int64(headerBytes) + h.payloadLen(); size < want {
		return nil, fmt.Errorf("store: truncated payload: have %d bytes, header declares %d", size, want)
	}
	opts = opts.withDefaults()
	f := &File{
		r:     r,
		hdr:   h,
		cache: newPageCache(opts.CacheBytes, h.pageSize, opts.Shards),
	}
	if opts.PrefetchWorkers > 0 {
		f.pf = newPrefetcher(f, opts.PrefetchWorkers, opts.PrefetchQueue)
	}
	return f, nil
}

// Rows returns the row count.
func (f *File) Rows() int { return f.hdr.n }

// Cols returns the column count.
func (f *File) Cols() int { return f.hdr.d }

// ElemBytes returns the on-disk element width (4 or 8).
func (f *File) ElemBytes() int { return f.hdr.elem }

// RowBytes returns the on-disk size of one row.
func (f *File) RowBytes() int { return f.hdr.rowBytes() }

// Traffic returns the cumulative requested (algorithm rows × rowBytes)
// and device-read (page-granularity ReadAt) byte counters — the same
// two quantities the simulated SAFS stack reports for Figures 6a/6b.
func (f *File) Traffic() (requested, read uint64) {
	return f.requested.Load(), f.devRead.Load()
}

// CacheStats returns page-cache hits (including joins of in-flight
// fetches) and misses (owned device fetches).
func (f *File) CacheStats() (hits, misses uint64) { return f.cache.stats() }

// CacheCapPages returns the page-cache capacity in pages.
func (f *File) CacheCapPages() int { return f.cache.capPages() }

// CachePeakPages returns the high-water resident page count — the
// never-materialise bound tests assert against.
func (f *File) CachePeakPages() int { return f.cache.peakPages() }

// CacheLenPages returns the currently resident page count.
func (f *File) CacheLenPages() int { return f.cache.lenPages() }

// PageSize returns the page size (the minimum read unit).
func (f *File) PageSize() int { return f.hdr.pageSize }

// Close stops the prefetch pool and closes the backing file.
func (f *File) Close() error {
	if f.pf != nil {
		f.pf.stop()
	}
	// This file's resident pages leave the process-wide gauge with it.
	telResidentPages.Add(-float64(f.cache.lenPages()))
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// ensure makes pages [p0, p1] resident, reading missing runs from the
// backing file with adjacent pages merged into single ReadAt calls.
// When out is non-nil it receives the page data (out[j] = page p0+j)
// and the call waits for pages fetched concurrently by other readers;
// when out is nil (prefetch) joined flights are not waited on.
// record=false keeps prefetch probes out of the hit/miss statistics.
func (f *File) ensure(p0, p1 int64, out [][]byte, record bool) error {
	type join struct {
		idx int
		fl  *flight
	}
	var joins []join
	var owned []int64
	flights := make(map[int64]*flight, int(p1-p0+1))
	for p := p0; p <= p1; p++ {
		data, fl, own := f.cache.acquire(p, record)
		switch {
		case data != nil:
			if out != nil {
				out[p-p0] = data
			}
		case own:
			owned = append(owned, p)
			flights[p] = fl
		default:
			if out != nil {
				joins = append(joins, join{idx: int(p - p0), fl: fl})
			}
		}
	}

	// Merge owned pages into consecutive runs; one ReadAt per run.
	var firstErr error
	for i := 0; i < len(owned); {
		j := i + 1
		for j < len(owned) && owned[j] == owned[j-1]+1 {
			j++
		}
		runStart, runPages := owned[i], j-i
		data, err := f.readRun(runStart, runPages)
		for k := 0; k < runPages; k++ {
			p := runStart + int64(k)
			fl := flights[p]
			if err != nil {
				f.cache.fail(p, fl, err)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			lo := k * f.hdr.pageSize
			hi := lo + f.hdr.pageSize
			if hi > len(data) {
				hi = len(data)
			}
			// Copy each page out of the run buffer so evicting one page
			// of a merged run frees its bytes (the cache's byte bound
			// holds per page, not per run).
			pg := make([]byte, hi-lo)
			copy(pg, data[lo:hi])
			f.cache.publish(p, fl, pg)
			if out != nil {
				out[p-p0] = pg
			}
		}
		i = j
	}

	for _, jn := range joins {
		<-jn.fl.done
		if jn.fl.err != nil {
			if firstErr == nil {
				firstErr = jn.fl.err
			}
			continue
		}
		out[jn.idx] = jn.fl.data
	}
	return firstErr
}

// readRun reads runPages pages starting at page p in one request,
// clamped to the payload tail.
func (f *File) readRun(p int64, runPages int) ([]byte, error) {
	start := p * int64(f.hdr.pageSize)
	want := int64(runPages) * int64(f.hdr.pageSize)
	if rest := f.hdr.payloadLen() - start; want > rest {
		want = rest
	}
	if want <= 0 {
		return nil, fmt.Errorf("store: page %d beyond payload", p)
	}
	buf := make([]byte, want)
	n, err := f.r.ReadAt(buf, headerBytes+start)
	if int64(n) != want {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("store: short read at page %d: %w", p, err)
	}
	f.devRead.Add(uint64(want))
	telMergedReads.Inc()
	telRunPages.Observe(float64(runPages))
	telDeviceBytes.Add(uint64(want))
	return buf, nil
}

// Reader is a per-worker row cursor. The slice returned by Row is
// valid until the next Row call on the same Reader; Readers are not
// safe for concurrent use, but any number may read one File at once.
type Reader struct {
	f *File
	// Untracked excludes this reader's fetches from the requested-bytes
	// counter (cache refills, SSE scans — reads the algorithm would not
	// issue on the simulated backend). Device reads still count.
	Untracked bool
	buf       []float64
	pages     [][]byte
}

// Reader returns a new row cursor.
func (f *File) Reader() *Reader {
	return &Reader{f: f, buf: make([]float64, f.hdr.d)}
}

// Row decodes row i through the page cache.
func (r *Reader) Row(i int) ([]float64, error) {
	f := r.f
	if i < 0 || i >= f.hdr.n {
		return nil, fmt.Errorf("store: row %d out of range [0,%d)", i, f.hdr.n)
	}
	ps := int64(f.hdr.pageSize)
	rowBytes := int64(f.hdr.rowBytes())
	off := int64(i) * rowBytes
	p0 := off / ps
	p1 := (off + rowBytes - 1) / ps
	np := int(p1 - p0 + 1)
	if cap(r.pages) < np {
		r.pages = make([][]byte, np)
	}
	pages := r.pages[:np]
	for j := range pages {
		pages[j] = nil
	}
	if err := f.ensure(p0, p1, pages, true); err != nil {
		return nil, err
	}
	if np == 1 {
		rel := off - p0*ps
		decodeRow(pages[0][rel:rel+rowBytes], f.hdr.elem, r.buf)
	} else {
		// Row spans pages; elements never do (pageSize % elem == 0).
		elem := int64(f.hdr.elem)
		for j := 0; j < f.hdr.d; j++ {
			rel := off + int64(j)*elem - p0*ps
			pg := pages[rel/ps]
			decodeRow(pg[rel%ps:rel%ps+elem], f.hdr.elem, r.buf[j:j+1])
		}
	}
	if !r.Untracked {
		f.requested.Add(uint64(rowBytes))
		telRequestedBytes.Add(uint64(rowBytes))
	}
	return r.buf, nil
}

// --- prefetch pipeline -------------------------------------------------

type pageRange struct{ p0, p1 int64 }

// prefetcher is the async fetch pool: worker goroutines pull merged
// page ranges off a bounded queue and make them resident, overlapping
// device reads with the caller's compute. The singleflight layer in
// the cache guarantees a demand read arriving mid-prefetch joins the
// in-flight fetch instead of duplicating it.
type prefetcher struct {
	ch   chan pageRange
	quit chan struct{}
	wg   sync.WaitGroup
}

func newPrefetcher(f *File, workers, queue int) *prefetcher {
	p := &prefetcher{ch: make(chan pageRange, queue), quit: make(chan struct{})}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.quit:
					return
				case r := <-p.ch:
					// Errors surface on the demand path; a failed
					// prefetch is only a lost overlap.
					_ = f.ensure(r.p0, r.p1, nil, false)
				}
			}
		}()
	}
	return p
}

func (p *prefetcher) submit(r pageRange) {
	select {
	case p.ch <- r:
		telPrefetchIssued.Inc()
	default: // queue full: drop the hint rather than stall compute
		telPrefetchDropped.Inc()
	}
}

func (p *prefetcher) stop() {
	close(p.quit)
	p.wg.Wait()
}

// Prefetch hints that the given rows are about to be read. Row page
// spans are merged into contiguous ranges and handed to the fetch
// pool; without a pool this is a no-op. Safe for concurrent use.
func (f *File) Prefetch(rows []int32) {
	if f.pf == nil || len(rows) == 0 {
		return
	}
	ps := int64(f.hdr.pageSize)
	rowBytes := int64(f.hdr.rowBytes())
	cur := pageRange{p0: -1}
	for _, row := range rows {
		off := int64(row) * rowBytes
		p0 := off / ps
		p1 := (off + rowBytes - 1) / ps
		if cur.p0 >= 0 && p0 <= cur.p1+1 {
			if p1 > cur.p1 {
				cur.p1 = p1
			}
			continue
		}
		if cur.p0 >= 0 {
			f.pf.submit(cur)
		}
		cur = pageRange{p0: p0, p1: p1}
	}
	if cur.p0 >= 0 {
		f.pf.submit(cur)
	}
}
