package store

import "knor/internal/telemetry"

// Process-wide I/O-stack instruments, registered at init against
// telemetry.Default. They aggregate over every open File: per-file
// figures stay available programmatically (Traffic, CacheStats), the
// exposition answers "what is the I/O stack doing right now" for the
// whole process.
var (
	telPageHits = telemetry.Default.Counter("knor_store_page_hits_total",
		"Page-cache hits, including joins of in-flight fetches.")
	telPageMisses = telemetry.Default.Counter("knor_store_page_misses_total",
		"Page-cache misses that owned a device fetch.")
	telPageEvictions = telemetry.Default.Counter("knor_store_page_evictions_total",
		"Pages evicted by the LRU to stay within the cache byte bound.")
	telMergedReads = telemetry.Default.Counter("knor_store_merged_reads_total",
		"Device ReadAt calls issued (adjacent missing pages merged into one run).")
	telRunPages = telemetry.Default.Histogram("knor_store_run_pages",
		"Pages per merged device read.", telemetry.DefSizeBuckets())
	telDeviceBytes = telemetry.Default.Counter("knor_store_device_read_bytes_total",
		"Bytes read from the backing file at page granularity.")
	telRequestedBytes = telemetry.Default.Counter("knor_store_requested_bytes_total",
		"Bytes the algorithm asked for (tracked rows x row bytes).")
	telPrefetchIssued = telemetry.Default.Counter("knor_store_prefetch_issued_total",
		"Merged page ranges accepted onto the prefetch queue.")
	telPrefetchDropped = telemetry.Default.Counter("knor_store_prefetch_dropped_total",
		"Prefetch hints dropped because the queue was full.")
	telPrefetchUsed = telemetry.Default.Counter("knor_store_prefetch_used_total",
		"Demand reads served by a prefetched page or an in-flight prefetch.")
	telResidentPages = telemetry.Default.Gauge("knor_store_resident_pages",
		"Pages resident in the page cache across all open files.")
)
