// Package store is the real I/O subsystem under knors: a versioned
// on-disk row-major matrix format read through an asynchronous page-I/O
// stack — a sharded LRU page cache with request merging (adjacent 4KB
// pages coalesce into one ReadAt) and a prefetch pipeline that overlaps
// page fetches with compute. It is the SAFS layer (Zheng et al., the
// FlashGraph substrate the paper builds on) realised against actual
// files instead of the simulated device array in package ssd: the
// BytesWanted/BytesRead counter semantics match the simulator exactly,
// so the paper's Figure 6 quantities are measurable on real hardware.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"knor/internal/matrix"
)

// Format: one header page followed by the row-major payload.
//
//	[0:4]   magic "KNRS" (little-endian uint32)
//	[4:8]   version (1)
//	[8:16]  n, rows (uint64)
//	[16:24] d, columns (uint64)
//	[24:28] element width in bytes: 4 (float32) or 8 (float64)
//	[28:32] page size (uint32, currently always 4096)
//	[32:4096] reserved, zero
//
// The payload starts at byte 4096 so that data page p covers payload
// bytes [p*pageSize, (p+1)*pageSize) with no offset arithmetic leaking
// into the cache layer. Elements are little-endian IEEE 754; the page
// size is a multiple of both element widths, so an element never spans
// a page boundary.
const (
	magic         = 0x53524e4b // bytes "KNRS" on disk (little-endian uint32)
	formatVersion = 1
	headerBytes   = 4096

	// PageSize is the minimum read unit, matching the paper's 4KB.
	PageSize = 4096
)

// ErrBadMagic reports a file that is not in the knor store format
// (e.g. the legacy whole-matrix format written by matrix.SaveFile).
var ErrBadMagic = errors.New("store: bad magic (not a knor store file; regenerate with kmeansgen -format knor)")

type header struct {
	n, d     int
	elem     int
	pageSize int
}

func (h header) rowBytes() int     { return h.d * h.elem }
func (h header) payloadLen() int64 { return int64(h.n) * int64(h.rowBytes()) }

func (h header) validate() error {
	if h.n < 0 || h.d <= 0 {
		return fmt.Errorf("store: implausible dims %dx%d", h.n, h.d)
	}
	if h.elem != 4 && h.elem != 8 {
		return fmt.Errorf("store: unsupported element width %d (want 4 or 8)", h.elem)
	}
	if h.pageSize <= 0 || h.pageSize%8 != 0 {
		return fmt.Errorf("store: unsupported page size %d", h.pageSize)
	}
	if h.d != 0 && int64(h.n) > (int64(1)<<42)/int64(h.rowBytes()) {
		return fmt.Errorf("store: implausible dims %dx%d", h.n, h.d)
	}
	return nil
}

func encodeHeader(h header) []byte {
	buf := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(buf[0:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], formatVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(h.n))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.d))
	binary.LittleEndian.PutUint32(buf[24:28], uint32(h.elem))
	binary.LittleEndian.PutUint32(buf[28:32], uint32(h.pageSize))
	return buf
}

func decodeHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < 32 {
		return h, fmt.Errorf("store: truncated header (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != magic {
		return h, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != formatVersion {
		return h, fmt.Errorf("store: unsupported format version %d", v)
	}
	h.n = int(binary.LittleEndian.Uint64(buf[8:16]))
	h.d = int(binary.LittleEndian.Uint64(buf[16:24]))
	h.elem = int(binary.LittleEndian.Uint32(buf[24:28]))
	h.pageSize = int(binary.LittleEndian.Uint32(buf[28:32]))
	return h, h.validate()
}

// Writer streams rows into a new store file. Rows must be written in
// order; Close fails unless exactly n rows arrived.
type Writer struct {
	f    *os.File
	bw   *bufio.Writer
	hdr  header
	rows int
	buf  []byte
}

// Create starts a store file of n rows by d columns with the given
// element width (4 or 8 bytes).
func Create(path string, n, d, elemBytes int) (*Writer, error) {
	h := header{n: n, d: d, elem: elemBytes, pageSize: PageSize}
	if err := h.validate(); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(encodeHeader(h)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, bw: bw, hdr: h, buf: make([]byte, h.rowBytes())}, nil
}

// WriteRow appends one row (len d). Float32 files round each element
// to nearest; float64 files store the bits exactly.
func (w *Writer) WriteRow(row []float64) error {
	if len(row) != w.hdr.d {
		return fmt.Errorf("store: row has %d cols, want %d", len(row), w.hdr.d)
	}
	if w.rows >= w.hdr.n {
		return fmt.Errorf("store: too many rows (declared %d)", w.hdr.n)
	}
	switch w.hdr.elem {
	case 8:
		for j, v := range row {
			binary.LittleEndian.PutUint64(w.buf[j*8:], math.Float64bits(v))
		}
	case 4:
		for j, v := range row {
			binary.LittleEndian.PutUint32(w.buf[j*4:], math.Float32bits(float32(v)))
		}
	}
	w.rows++
	_, err := w.bw.Write(w.buf)
	return err
}

// Close flushes and closes the file, verifying the declared row count.
func (w *Writer) Close() error {
	if w.rows != w.hdr.n {
		w.f.Close()
		return fmt.Errorf("store: wrote %d rows, declared %d", w.rows, w.hdr.n)
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// WriteDense writes a whole in-memory matrix as a store file.
func WriteDense(m *matrix.Dense, path string, elemBytes int) error {
	w, err := Create(path, m.Rows(), m.Cols(), elemBytes)
	if err != nil {
		return err
	}
	for i := 0; i < m.Rows(); i++ {
		if err := w.WriteRow(m.Row(i)); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}

// ReadDense loads an entire store file into memory (for the simulated
// backend and oracle comparisons; the streaming path is File).
func ReadDense(path string) (*matrix.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hbuf := make([]byte, headerBytes)
	if _, err := io.ReadFull(f, hbuf); err != nil {
		return nil, fmt.Errorf("store: %s: truncated header: %w", path, err)
	}
	h, err := decodeHeader(hbuf)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	m := matrix.NewDense(h.n, h.d)
	buf := make([]byte, h.rowBytes())
	for i := 0; i < h.n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("store: %s: truncated payload at row %d: %w", path, i, err)
		}
		decodeRow(buf, h.elem, m.Row(i))
	}
	return m, nil
}

// decodeRow decodes one on-disk row into dst (len d).
func decodeRow(raw []byte, elem int, dst []float64) {
	switch elem {
	case 8:
		for j := range dst {
			dst[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
		}
	case 4:
		for j := range dst {
			dst[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:])))
		}
	}
}

// SniffStore reports whether the file at path carries the store magic
// (as opposed to the legacy whole-matrix format).
func SniffStore(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var b [4]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return false, nil // too short to be either format; let the loader complain
	}
	return binary.LittleEndian.Uint32(b[:]) == magic, nil
}
