package simclock

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock = %g, want 0", c.Now())
	}
	c.Advance(1.5)
	c.Advance(0.5)
	if c.Now() != 2.0 {
		t.Fatalf("after advances = %g, want 2", c.Now())
	}
	c.AdvanceTo(1.0) // earlier: no-op
	if c.Now() != 2.0 {
		t.Fatalf("AdvanceTo earlier moved clock to %g", c.Now())
	}
	c.AdvanceTo(3.0)
	if c.Now() != 3.0 {
		t.Fatalf("AdvanceTo(3) = %g", c.Now())
	}
	c.Reset(0)
	if c.Now() != 0 {
		t.Fatalf("Reset = %g", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestResourceSerialises(t *testing.T) {
	r := NewResource("link")
	// Two back-to-back transfers from time 0 must queue.
	end1 := r.Acquire(0, 1.0)
	end2 := r.Acquire(0, 1.0)
	if end1 != 1.0 || end2 != 2.0 {
		t.Fatalf("ends = %g, %g; want 1, 2", end1, end2)
	}
	// A transfer starting after the queue drains is not delayed.
	end3 := r.Acquire(5.0, 0.5)
	if end3 != 5.5 {
		t.Fatalf("idle-start end = %g, want 5.5", end3)
	}
	if got := r.Transfers(); got != 3 {
		t.Fatalf("transfers = %d, want 3", got)
	}
	if got := r.BusyTime(); got != 2.5 {
		t.Fatalf("busy = %g, want 2.5", got)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 3)
	r.Reset()
	if r.BusyTime() != 0 || r.Transfers() != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if end := r.Acquire(0, 1); end != 1 {
		t.Fatalf("post-reset end = %g, want 1", end)
	}
}

func TestResourceConcurrentConservation(t *testing.T) {
	// Under arbitrary concurrent interleavings, total busy time equals
	// the sum of requested durations and the final completion time is at
	// least that sum (a single resource cannot overlap transfers).
	r := NewResource("dev")
	const workers = 8
	const per = 50
	var wg sync.WaitGroup
	ends := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var last float64
			for i := 0; i < per; i++ {
				last = r.Acquire(0, 0.001)
			}
			ends[w] = last
		}(w)
	}
	wg.Wait()
	want := workers * per * 0.001
	if math.Abs(r.BusyTime()-want) > 1e-9 {
		t.Fatalf("busy = %g, want %g", r.BusyTime(), want)
	}
	max := 0.0
	for _, e := range ends {
		if e > max {
			max = e
		}
	}
	if max < want-1e-9 {
		t.Fatalf("last completion %g < total work %g", max, want)
	}
}

func TestGroupBarrier(t *testing.T) {
	m := DefaultCostModel()
	g := NewGroup(4, m)
	g.Clock(0).Advance(1.0)
	g.Clock(2).Advance(3.0)
	if g.Max() != 3.0 {
		t.Fatalf("Max = %g", g.Max())
	}
	after := g.Barrier()
	want := 3.0 + m.BarrierCost
	if after != want {
		t.Fatalf("Barrier = %g, want %g", after, want)
	}
	for i := 0; i < g.Size(); i++ {
		if g.Clock(i).Now() != want {
			t.Fatalf("worker %d = %g after barrier", i, g.Clock(i).Now())
		}
	}
}

func TestGroupResetAll(t *testing.T) {
	g := NewGroup(3, DefaultCostModel())
	g.Clock(1).Advance(9)
	g.ResetAll(2)
	for i := 0; i < 3; i++ {
		if g.Clock(i).Now() != 2 {
			t.Fatalf("worker %d = %g", i, g.Clock(i).Now())
		}
	}
}

func TestGroupSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGroup(0) did not panic")
		}
	}()
	NewGroup(0, DefaultCostModel())
}

func TestDistanceCost(t *testing.T) {
	m := DefaultCostModel()
	if got, want := m.DistanceCost(8), 16*m.FlopTime; got != want {
		t.Fatalf("DistanceCost(8) = %g, want %g", got, want)
	}
	if m.DistanceCost(0) != 0 {
		t.Fatal("DistanceCost(0) != 0")
	}
}

// Property: resource completion times are monotone in request order for
// a single caller, and every completion is >= request time + duration.
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(durs []float64) bool {
		r := NewResource("p")
		prev := 0.0
		now := 0.0
		for _, d := range durs {
			d = math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) || d > 1e6 {
				d = 1
			}
			end := r.Acquire(now, d)
			if end < now+d-1e-12 || end < prev-1e-12 {
				return false
			}
			prev = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a group barrier never moves time backwards and all clocks
// agree afterwards.
func TestGroupBarrierProperty(t *testing.T) {
	f := func(adv []float64) bool {
		g := NewGroup(4, DefaultCostModel())
		for i, a := range adv {
			a = math.Abs(a)
			if math.IsNaN(a) || math.IsInf(a, 0) || a > 1e9 {
				a = 1
			}
			g.Clock(i % 4).Advance(a)
		}
		before := g.Max()
		after := g.Barrier()
		if after < before {
			return false
		}
		for i := 0; i < 4; i++ {
			if g.Clock(i).Now() != after {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.RemoteComputePenalty <= 1 {
		t.Fatalf("remote compute penalty %g not > 1", m.RemoteComputePenalty)
	}
	if m.LocalBandwidth <= m.RemoteBandwidth {
		t.Fatal("local bandwidth not above remote")
	}
	if m.SSDSeek <= 0 || m.NetLatency <= 0 || m.BarrierCost <= 0 {
		t.Fatal("non-positive fixed costs")
	}
	if m.NetSetup <= 0 || m.SerializeByteCost <= 0 {
		t.Fatal("non-positive network calibration constants")
	}
	// Collective setup is software-only and must stay below the wire
	// latency it precedes; serialisation must cost more than a local
	// memory copy (it may still be faster than the NIC — modern JVM
	// serialisers outrun 10 GbE), or the MLlib driver model would add
	// nothing over the raw buffer the MPI collectives move.
	if m.NetSetup >= m.NetLatency {
		t.Fatalf("NetSetup %g not below NetLatency %g", m.NetSetup, m.NetLatency)
	}
	if m.SerializeByteCost <= 1/m.LocalBandwidth {
		t.Fatalf("SerializeByteCost %g cheaper than a local memory copy", m.SerializeByteCost)
	}
}
