// Package simclock provides deterministic virtual-time accounting for
// simulated hardware effects (NUMA interconnects, SSD channels, cluster
// NICs) layered on top of real goroutine parallelism.
//
// The model is intentionally simple: every worker carries a scalar clock
// (seconds of simulated time). Computation advances a worker's clock by
// an amount derived from a CostModel. Shared hardware (a memory link, an
// SSD device, a NIC) is a Resource that serialises transfers: a worker
// asking the resource to move B bytes at its current time is queued
// behind whatever the resource is already doing, which is exactly the
// contention behaviour that produces the paper's NUMA-oblivious slowdown
// (Figure 4) and the master-NIC bottleneck in the distributed comparison
// (Figure 12).
//
// At a barrier, the iteration's simulated duration is the maximum across
// worker clocks — skew (Figure 5) falls out of that max.
package simclock

import (
	"fmt"
	"sync"
)

// CostModel holds the calibration constants for simulated time. All
// rates are bytes/second or seconds. The defaults approximate the
// paper's evaluation machine (4-socket Xeon E7-4860, DDR3-1600, LSI HBAs
// with 24 SATA SSDs, 10 GbE cluster interconnect); EXPERIMENTS.md
// records them next to every reproduced figure.
type CostModel struct {
	// FlopTime is the simulated seconds per floating-point operation in
	// the inner distance kernel (fused multiply-add counted as 2 flops).
	FlopTime float64
	// LocalBandwidth is per-NUMA-node local memory bank bandwidth.
	LocalBandwidth float64
	// RemoteBandwidth is the bandwidth of one inter-socket link.
	RemoteBandwidth float64
	// RemoteLatency is added once per remote task transfer.
	RemoteLatency float64
	// RemoteComputePenalty scales a task's compute cost when it runs
	// on a node that does not own its data: latency-bound accesses
	// (bounds, accumulators, cache misses on centroids) cannot be
	// hidden by streaming prefetch the way bulk row reads can.
	RemoteComputePenalty float64
	// BarrierCost is added to every worker at each global barrier.
	BarrierCost float64
	// RowOverhead is the per-row fixed cost of touching a data point
	// (pointer chasing, loop control). Framework emulators inflate it.
	RowOverhead float64
	// SSDSeek is the fixed per-request latency of one SSD read.
	SSDSeek float64
	// SSDBandwidth is per-device sequential read bandwidth.
	SSDBandwidth float64
	// NetLatency and NetBandwidth describe one cluster NIC/link.
	NetLatency   float64
	NetBandwidth float64
	// NetSetup is the fixed software cost of initiating one collective
	// (argument marshalling, algorithm selection inside the MPI
	// library), paid once per collective regardless of cluster size.
	NetSetup float64
	// SerializeByteCost is the per-byte cost of framework object
	// serialisation/deserialisation at a centralised driver (JVM
	// closures, pickled task results). MPI-style collectives move raw
	// buffers and never pay it.
	SerializeByteCost float64
}

// DefaultCostModel returns the calibration used by the benchmark
// harness. Values are rounded hardware figures, not fitted constants.
func DefaultCostModel() CostModel {
	return CostModel{
		FlopTime:             0.25e-9, // ~4 Gflop/s per core (scalar FMA)
		LocalBandwidth:       25e9,    // DDR3-1600 x4 channels per socket
		RemoteBandwidth:      10e9,    // one QPI link, effective
		RemoteLatency:        300e-9,  // remote page touch
		RemoteComputePenalty: 1.4,     // ~40% slowdown for unpinned access
		BarrierCost:          5e-6,    // pthread barrier + cond broadcast
		RowOverhead:          2e-9,    // loop + index arithmetic per row
		SSDSeek:              80e-6,   // SATA SSD random 4KB read latency
		SSDBandwidth:         450e6,   // one OCZ Intrepid 3000
		NetLatency:           50e-6,   // 10 GbE + MPI stack
		NetBandwidth:         1.15e9,  // ~9.2 Gb/s effective
		NetSetup:             15e-6,   // MPI collective initiation
		SerializeByteCost:    0.5e-9,  // ~2 GB/s JVM serialisation
	}
}

// DistanceCost returns the simulated time for one d-dimensional
// Euclidean distance computation (2 flops per dimension: sub + fma).
func (m CostModel) DistanceCost(d int) float64 {
	return float64(2*d) * m.FlopTime
}

// Clock is one worker's simulated time. Clocks are not safe for
// concurrent use; each worker owns exactly one.
type Clock struct {
	now float64
}

// Now returns the worker's current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds. Negative dt panics:
// simulated time is monotone.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("simclock: negative advance %g", dt))
	}
	c.now += dt
}

// AdvanceTo moves the clock to t if t is later than the current time.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Reset sets the clock to t.
func (c *Clock) Reset(t float64) { c.now = t }

// Resource is a serially-shared piece of hardware: a NUMA interconnect
// link, an SSD device, or a NIC. Transfers queue behind one another.
// Resource is safe for concurrent use.
type Resource struct {
	mu        sync.Mutex
	name      string
	busyUntil float64
	busyTime  float64 // total busy seconds, for utilisation reporting
	transfers uint64
}

// NewResource returns a named idle resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire schedules a transfer of the given duration starting no earlier
// than now, queued behind prior transfers. It returns the completion
// time. The caller should AdvanceTo the returned time.
func (r *Resource) Acquire(now, duration float64) float64 {
	if duration < 0 {
		panic(fmt.Sprintf("simclock: negative duration %g on %s", duration, r.name))
	}
	r.mu.Lock()
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + duration
	r.busyUntil = end
	r.busyTime += duration
	r.transfers++
	r.mu.Unlock()
	return end
}

// BusyTime reports the total simulated seconds the resource spent busy.
func (r *Resource) BusyTime() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyTime
}

// Transfers reports how many transfers the resource served.
func (r *Resource) Transfers() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.transfers
}

// Reset returns the resource to idle at time zero, clearing statistics.
func (r *Resource) Reset() {
	r.mu.Lock()
	r.busyUntil = 0
	r.busyTime = 0
	r.transfers = 0
	r.mu.Unlock()
}

// Group is a set of per-worker clocks with barrier semantics. It models
// one parallel region: workers advance independently, and Barrier
// synchronises them to the max (plus the model's barrier cost).
type Group struct {
	clocks []Clock
	model  CostModel
}

// NewGroup creates a Group of n worker clocks starting at time zero.
func NewGroup(n int, model CostModel) *Group {
	if n <= 0 {
		panic("simclock: group size must be positive")
	}
	return &Group{clocks: make([]Clock, n), model: model}
}

// Clock returns worker i's clock.
func (g *Group) Clock(i int) *Clock { return &g.clocks[i] }

// Size returns the number of workers.
func (g *Group) Size() int { return len(g.clocks) }

// Model returns the group's cost model.
func (g *Group) Model() CostModel { return g.model }

// Max returns the latest worker time.
func (g *Group) Max() float64 {
	m := g.clocks[0].now
	for i := 1; i < len(g.clocks); i++ {
		if g.clocks[i].now > m {
			m = g.clocks[i].now
		}
	}
	return m
}

// Barrier synchronises all workers to the max clock plus BarrierCost,
// returning the post-barrier time. Call only from a single goroutine
// (between parallel sections).
func (g *Group) Barrier() float64 {
	t := g.Max() + g.model.BarrierCost
	for i := range g.clocks {
		g.clocks[i].now = t
	}
	return t
}

// ResetAll sets every worker clock to t.
func (g *Group) ResetAll(t float64) {
	for i := range g.clocks {
		g.clocks[i].now = t
	}
}
