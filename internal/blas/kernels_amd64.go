//go:build amd64 && !noasm

package blas

// CPU feature probe for the AVX2/FMA microkernels, hand-rolled (the
// module has no dependencies, so no golang.org/x/sys/cpu): AVX2 is
// CPUID.(EAX=7,ECX=0):EBX[5], FMA is CPUID.(EAX=1):ECX[12], and both are
// usable only when the OS saves YMM state (OSXSAVE + XCR0[2:1] = 11).

// cpuid executes CPUID with the given EAX/ECX inputs.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if c1&fma == 0 || c1&osxsave == 0 {
		return
	}
	if ax, _ := xgetbv(); ax&0x6 != 0x6 { // XMM and YMM state enabled
		return
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	if b7&avx2 == 0 {
		return
	}
	asmSupported = true
	kernelName = "avx2fma"
	asmEnabled.Store(true)
}

// gemmKern32 accumulates one register tile: for r in {0,1} (r=1 only
// when rows == 2), c_r[j] += alpha * Σ_p a_r[p]·pack[p*ldp+j] for
// j ∈ [0, jn). pack is the zero-padded column-major-in-p B-transpose
// panel (ldp a multiple of 8 ≥ jn); loads beyond jn read the zero pad,
// stores beyond jn are masked off. Per output element the accumulation
// is a p-ascending FMA chain — position inside the tile (wide body,
// 8-wide tail, masked tail) never changes a lane's arithmetic, which is
// what keeps the column-slice invariance contract (see dgemmBlock32).
//
//go:noescape
func gemmKern32(a0, a1, pack, c0, c1 *float32, jn, ldp, kl, rows int, alpha float32)

// gemmKern64 is the float64 tile. It deliberately uses separate VMULPD
// and VADDPD (no FMA): per lane the accumulation is exactly the scalar
// reference's s += a[p]*b[p] rounding sequence in p order, followed by
// the same alpha-multiply-then-add store — so the float64 assembly path
// is bit-identical to dgemmBlock, preserving the oracle contract.
//
//go:noescape
func gemmKern64(a0, a1, pack, c0, c1 *float64, jn, ldp, kl, rows int, alpha float64)

// dotKern8 fills out[j] = Σ_p q[p]·b[j*ldb+p] for j ∈ [0, n) over the
// first kl ∈ 16ℤ inner elements (the Go wrapper adds the scalar tail):
// sign-extend 16 int8 lanes to int16, VPMADDWD into 8 int32 partials,
// horizontal-sum per row. Products are ≤ 127², so the int16-pair dot of
// VPMADDWD cannot overflow and the int32 accumulator is exact.
//
//go:noescape
func dotKern8(q, b *int8, ldb, n, kl int, out *int32)
