package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"knor/internal/matrix"
)

func TestDdot(t *testing.T) {
	if got := Ddot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Ddot = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Ddot([]float64{1}, []float64{1, 2})
}

func TestDaxpyDscal(t *testing.T) {
	y := []float64{1, 1, 1}
	Daxpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Daxpy = %v", y)
		}
	}
	Dscal(0.5, y)
	for i := range y {
		if y[i] != want[i]/2 {
			t.Fatalf("Dscal = %v", y)
		}
	}
}

func TestRowNormsSq(t *testing.T) {
	a := []float64{3, 4, 0, 5, 12, 0}
	out := make([]float64, 2)
	RowNormsSq(a, 2, 3, out)
	if out[0] != 25 || out[1] != 169 {
		t.Fatalf("RowNormsSq = %v", out)
	}
}

// naive reference GEMM: C = alpha*A*B^T + beta*C
func refGemm(alpha float64, a []float64, m, k int, b []float64, n int, beta float64, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			c[i*n+j] = beta*c[i*n+j] + alpha*s
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestDgemmMatchesReferenceSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 63, 130}, {200, 17, 33}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, n*k)
		c := randSlice(rng, m*n)
		want := append([]float64(nil), c...)
		refGemm(1.5, a, m, k, b, n, 0.5, want)
		Dgemm(1.5, a, m, k, b, n, 0.5, c, 1)
		for i := range c {
			if math.Abs(c[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("dims %v: c[%d]=%g want %g", dims, i, c[i], want[i])
			}
		}
	}
}

func TestDgemmParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, k := 137, 41, 29
	a := randSlice(rng, m*k)
	b := randSlice(rng, n*k)
	c1 := make([]float64, m*n)
	c4 := make([]float64, m*n)
	Dgemm(1, a, m, k, b, n, 0, c1, 1)
	Dgemm(1, a, m, k, b, n, 0, c4, 4)
	for i := range c1 {
		if c1[i] != c4[i] {
			t.Fatalf("parallel mismatch at %d: %g vs %g", i, c4[i], c1[i])
		}
	}
}

func TestDgemmMoreThreadsThanRows(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	c := make([]float64, 1)
	Dgemm(1, a, 1, 2, b, 1, 0, c, 16)
	if c[0] != 11 {
		t.Fatalf("c = %v", c)
	}
}

func TestPairwiseSqDistMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 23, 7, 11
	a := randSlice(rng, m*k)
	b := randSlice(rng, n*k)
	dist := make([]float64, m*n)
	PairwiseSqDist(a, m, b, n, k, dist, 2)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := matrix.SqDist(a[i*k:(i+1)*k], b[j*k:(j+1)*k])
			if math.Abs(dist[i*n+j]-want) > 1e-8*(1+want) {
				t.Fatalf("dist[%d,%d]=%g want %g", i, j, dist[i*n+j], want)
			}
		}
	}
}

func TestPairwiseSqDistNonNegative(t *testing.T) {
	// Identical rows cancel to ~0; must be clamped, never negative.
	a := []float64{1e8, 1e-8}
	dist := make([]float64, 1)
	PairwiseSqDist(a, 1, a, 1, 2, dist, 1)
	if dist[0] < 0 {
		t.Fatalf("negative distance %g", dist[0])
	}
}

// Property: Dgemm distributes over alpha and agrees with the naive
// reference for random small shapes.
func TestDgemmProperty(t *testing.T) {
	f := func(seed int64, mr, nr, kr uint8) bool {
		m := int(mr)%20 + 1
		n := int(nr)%20 + 1
		k := int(kr)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSlice(rng, m*k)
		b := randSlice(rng, n*k)
		c := make([]float64, m*n)
		want := make([]float64, m*n)
		refGemm(2, a, m, k, b, n, 0, want)
		Dgemm(2, a, m, k, b, n, 0, c, 3)
		for i := range c {
			if math.Abs(c[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDgemm128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, n, k := 128, 128, 128
	a := randSlice(rng, m*k)
	bb := randSlice(rng, n*k)
	c := make([]float64, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(1, a, m, k, bb, n, 0, c, 1)
	}
}
