package blas

import (
	"math"
	"sync"
)

// Per-row symmetric int8 quantization and the int8×int8→int32 scan that
// powers the quantized /assign path (serve.BatcherOptions.Quantize). A
// row x quantizes to q[p] = round(x[p]/s) clamped to ±127 with scale
// s = max|x|/127, so the dequantization error per element is bounded by
// |x[p] − s·q[p]| ≤ s/2 (round-to-nearest, no saturation below the max).
// The serving layer uses Scale and AbsSum to turn that into a rigorous
// per-pair dot-product error bound and re-ranks the surviving candidate
// set exactly — see serve/quant.go for the margin algebra.

// QuantizedRows is a row-major int8 matrix with per-row scales.
type QuantizedRows struct {
	Rows, Cols int
	Data       []int8    // Rows×Cols, row-major
	Scale      []float64 // per row: dequantized value = Scale[i]·Data[i*Cols+p]
	AbsSum     []int32   // per row: Σ_p |Data[i*Cols+p]|, for error bounds
}

// QuantizeRows quantizes the rows×cols row-major float32 matrix a,
// row-symmetrically. An all-zero row gets scale 1 and all-zero codes.
func QuantizeRows(a []float32, rows, cols int) *QuantizedRows {
	if len(a) < rows*cols {
		panic("blas: QuantizeRows size mismatch")
	}
	q := &QuantizedRows{
		Rows:   rows,
		Cols:   cols,
		Data:   make([]int8, rows*cols),
		Scale:  make([]float64, rows),
		AbsSum: make([]int32, rows),
	}
	for i := 0; i < rows; i++ {
		row := a[i*cols : (i+1)*cols]
		var maxAbs float64
		for _, v := range row {
			if av := math.Abs(float64(v)); av > maxAbs {
				maxAbs = av
			}
		}
		s := 1.0
		if maxAbs > 0 {
			s = maxAbs / 127
		}
		q.Scale[i] = s
		var abs int32
		out := q.Data[i*cols : (i+1)*cols]
		for p, v := range row {
			c := math.Round(float64(v) / s)
			if c > 127 {
				c = 127
			} else if c < -127 {
				c = -127
			}
			out[p] = int8(c)
			if c < 0 {
				abs -= int32(c)
			} else {
				abs += int32(c)
			}
		}
		q.AbsSum[i] = abs
	}
	return q
}

// scanRowI8 returns the exact int32 dot product of two int8 vectors.
// d ≤ 2²³ keeps Σ 127² exactly inside int32; serving dimensionalities
// are orders of magnitude below that.
func scanRowI8(q, b []int8) int32 {
	var s int32
	for p, v := range q {
		s += int32(v) * int32(b[p])
	}
	return s
}

// Gemm8 fills out (m×k row-major) with exact int32 dot products between
// rows of q (m×d int8) and rows of b (k×d int8): out[i*k+j] =
// Σ_p q[i*d+p]·b[j*d+p]. threads ≤ 1 runs serially; otherwise rows of q
// are striped across workers. Assembly and pure-Go paths are identical
// (integer arithmetic is exact), so there is no dispatch contract to
// keep beyond speed.
func Gemm8(q []int8, m, d int, b []int8, k int, out []int32, threads int) {
	if len(q) < m*d || len(b) < k*d || len(out) < m*k {
		panic("blas: Gemm8 size mismatch")
	}
	if m == 0 || k == 0 {
		return
	}
	if d == 0 {
		clear(out[:m*k])
		return
	}
	scan := func(lo, hi int) {
		telQuantScans.Inc()
		for i := lo; i < hi; i++ {
			scanRowsQ(q[i*d:(i+1)*d], b, k, d, out[i*k:(i+1)*k])
		}
	}
	if threads <= 1 || m == 1 {
		scan(0, m)
		return
	}
	var wg sync.WaitGroup
	stripe := (m + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * stripe
		if lo >= m {
			break
		}
		hi := min(lo+stripe, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scan(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// scanRowsQ scans one query row against all k code rows, dispatching to
// the SIMD kernel when enabled.
func scanRowsQ(qrow []int8, b []int8, k, d int, out []int32) {
	if asmEnabled.Load() {
		scanRowsI8Asm(qrow, b, k, d, out)
		return
	}
	for j := 0; j < k; j++ {
		out[j] = scanRowI8(qrow, b[j*d:(j+1)*d])
	}
}
