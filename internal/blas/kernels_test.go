package blas_test

// Differential tests for the assembly microkernels against the pure-Go
// tiled kernels, across odd shapes (block remainders, masked tails,
// single rows/columns) and alpha/beta edge cases. Contracts:
//
//   float64: bit-identical. The amd64 kernel reproduces the scalar
//   reference's rounding sequence with unfused mul/add; the arm64 kernel
//   fuses exactly where the Go compiler fuses. Either way asm and Go
//   must agree to the bit on the platform the test runs on.
//
//   float32: ULP-bounded. Both kernels sum in p order per element but
//   round differently (FMA vs separate ops, even/odd split), so each is
//   compared against a float64 oracle within a per-element error bound
//   of ~(k+4)·ε₃₂ scaled by the sum of |a·b| magnitudes.
//
// Under -tags noasm (or on ports without kernels) AsmSupported is false
// and SetAsmEnabled(true) is a no-op, so the same bodies exercise the
// pure-Go path twice — proving the fallback build passes every test.

import (
	"math"
	"math/rand"
	"testing"

	"knor/internal/blas"
)

var parityShapes = func() [][3]int {
	dims := []int{1, 2, 3, 5, 7, 8, 9, 31, 64}
	var shapes [][3]int
	// Full cross product of the small dims is cheap and hits every
	// body/tail/masked-tail and row-pairing combination.
	for _, m := range dims {
		for _, n := range dims {
			for _, k := range dims {
				shapes = append(shapes, [3]int{m, n, k})
			}
		}
	}
	// Larger-than-one-block shapes, including the PairwiseSqDist-shaped
	// wide-m case and a 1000-ish k for accumulation depth.
	shapes = append(shapes,
		[3]int{130, 100, 16},
		[3]int{65, 129, 70},
		[3]int{3, 257, 1000},
		[3]int{200, 3, 999},
	)
	return shapes
}()

var parityCoeffs = []struct{ alpha, beta float64 }{
	{-2, 0},
	{1, 1},
	{0.5, -1},
	{0, 2},
	{-2, 1},
}

func fillF64(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestDgemm64AsmBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range parityShapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := fillF64(rng, m*k)
		b := fillF64(rng, n*k)
		c0 := fillF64(rng, m*n)
		for _, cf := range parityCoeffs {
			for _, threads := range []int{1, 3} {
				cAsm := append([]float64(nil), c0...)
				cGo := append([]float64(nil), c0...)
				prev := blas.SetAsmEnabled(true)
				blas.Dgemm(cf.alpha, a, m, k, b, n, cf.beta, cAsm, threads)
				blas.SetAsmEnabled(false)
				blas.Dgemm(cf.alpha, a, m, k, b, n, cf.beta, cGo, threads)
				blas.SetAsmEnabled(prev)
				for i := range cAsm {
					if math.Float64bits(cAsm[i]) != math.Float64bits(cGo[i]) {
						t.Fatalf("shape %v alpha=%v beta=%v threads=%d: c[%d] asm=%v (%#x) go=%v (%#x)",
							sh, cf.alpha, cf.beta, threads, i,
							cAsm[i], math.Float64bits(cAsm[i]), cGo[i], math.Float64bits(cGo[i]))
					}
				}
			}
		}
	}
}

func TestDgemm32AsmULPBounded(t *testing.T) {
	const eps32 = 1.0 / (1 << 24)
	rng := rand.New(rand.NewSource(43))
	for _, sh := range parityShapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, n*k)
		a64 := make([]float64, m*k)
		b64 := make([]float64, n*k)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			a64[i] = float64(a[i])
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
			b64[i] = float64(b[i])
		}
		c0 := make([]float32, m*n)
		for i := range c0 {
			c0[i] = float32(rng.NormFloat64())
		}
		for _, cf := range parityCoeffs {
			alpha, beta := float32(cf.alpha), float32(cf.beta)
			cAsm := append([]float32(nil), c0...)
			cGo := append([]float32(nil), c0...)
			prev := blas.SetAsmEnabled(true)
			blas.Dgemm(alpha, a, m, k, b, n, beta, cAsm, 1)
			blas.SetAsmEnabled(false)
			blas.Dgemm(alpha, a, m, k, b, n, beta, cGo, 1)
			blas.SetAsmEnabled(prev)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					// float64 oracle and magnitude bound for element (i, j).
					var ref, mag float64
					for p := 0; p < k; p++ {
						prod := a64[i*k+p] * b64[j*k+p]
						ref += prod
						mag += math.Abs(prod)
					}
					want := cf.alpha*ref + cf.beta*float64(c0[i*n+j])
					tol := (float64(k)+4)*eps32*math.Abs(cf.alpha)*mag + 4*eps32*(math.Abs(want)+1)
					for _, got := range []float32{cAsm[i*n+j], cGo[i*n+j]} {
						if d := math.Abs(float64(got) - want); d > tol {
							t.Fatalf("shape %v alpha=%v beta=%v: c[%d,%d]=%v want %v (|d|=%g > tol %g)",
								sh, cf.alpha, cf.beta, i, j, got, want, d, tol)
						}
					}
				}
			}
		}
	}
}

// TestDgemm32AsmSliceInvariant checks the contract the sharded serving
// layer depends on for the assembly path, like TestGemm32ColumnSliceInvariant
// does for the tiled Go kernel: computing distances against a row slice
// of B must equal the corresponding columns of the full computation.
func TestDgemm32AsmSliceInvariant(t *testing.T) {
	if !blas.AsmSupported() {
		t.Skip("no assembly kernels on this build")
	}
	rng := rand.New(rand.NewSource(44))
	const m, n, k = 37, 100, 16
	a := make([]float32, m*k)
	b := make([]float32, n*k)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	full := make([]float32, m*n)
	blas.Dgemm(-2, a, m, k, b, n, 0, full, 1)
	for _, cut := range [][2]int{{0, 1}, {0, 33}, {7, 71}, {33, 100}, {99, 100}} {
		lo, hi := cut[0], cut[1]
		part := make([]float32, m*(hi-lo))
		blas.Dgemm(-2, a, m, k, b[lo*k:hi*k], hi-lo, 0, part, 1)
		for i := 0; i < m; i++ {
			for j := lo; j < hi; j++ {
				if math.Float32bits(part[i*(hi-lo)+j-lo]) != math.Float32bits(full[i*n+j]) {
					t.Fatalf("slice [%d,%d): c[%d,%d] differs from full GEMM", lo, hi, i, j)
				}
			}
		}
	}
}

func TestDgemmDegenerateShapes(t *testing.T) {
	// k=0 (zero-dim rows), m=0 and n=0 must not panic and must apply
	// exactly the beta scaling — this is the serve-boundary edge case a
	// zero-dim publish used to reach as a panic.
	c := []float64{1, 2, 3, 4}
	blas.Dgemm(-2, nil, 2, 0, nil, 2, 0.5, c, 1)
	for i, want := range []float64{0.5, 1, 1.5, 2} {
		if c[i] != want {
			t.Fatalf("k=0: c[%d]=%v want %v", i, c[i], want)
		}
	}
	blas.Dgemm[float32](1, nil, 0, 3, []float32{1, 2, 3}, 1, 2, nil, 1)
	blas.Dgemm[float32](1, []float32{1, 2, 3}, 1, 3, nil, 0, 2, nil, 2)
}

func TestGemm8AsmParity(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, sh := range [][3]int{{1, 1, 1}, {3, 7, 15}, {2, 9, 16}, {5, 12, 17}, {4, 100, 48}, {8, 33, 1000}} {
		m, k, d := sh[0], sh[1], sh[2]
		q := make([]int8, m*d)
		b := make([]int8, k*d)
		for i := range q {
			q[i] = int8(rng.Intn(255) - 127)
		}
		for i := range b {
			b[i] = int8(rng.Intn(255) - 127)
		}
		outAsm := make([]int32, m*k)
		outGo := make([]int32, m*k)
		prev := blas.SetAsmEnabled(true)
		blas.Gemm8(q, m, d, b, k, outAsm, 2)
		blas.SetAsmEnabled(false)
		blas.Gemm8(q, m, d, b, k, outGo, 1)
		blas.SetAsmEnabled(prev)
		for i := range outAsm {
			if outAsm[i] != outGo[i] {
				t.Fatalf("shape %v: out[%d] asm=%d go=%d", sh, i, outAsm[i], outGo[i])
			}
		}
		// Exact check against a big-int-free but widened accumulation.
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				var want int64
				for p := 0; p < d; p++ {
					want += int64(q[i*d+p]) * int64(b[j*d+p])
				}
				if int64(outGo[i*k+j]) != want {
					t.Fatalf("shape %v: out[%d,%d]=%d want %d", sh, i, j, outGo[i*k+j], want)
				}
			}
		}
	}
}

func TestQuantizeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const rows, cols = 20, 33
	a := make([]float32, rows*cols)
	for i := range a {
		a[i] = float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(5)-2)))
	}
	// Row 3: all zeros; row 5: single huge outlier.
	for p := 0; p < cols; p++ {
		a[3*cols+p] = 0
	}
	a[5*cols+7] = 3e8
	q := blas.QuantizeRows(a, rows, cols)
	for i := 0; i < rows; i++ {
		s := q.Scale[i]
		var abs int32
		for p := 0; p < cols; p++ {
			c := q.Data[i*cols+p]
			if c < -127 || c > 127 {
				t.Fatalf("row %d: code %d out of range", i, c)
			}
			if c < 0 {
				abs -= int32(c)
			} else {
				abs += int32(c)
			}
			// Dequantization error ≤ s/2 plus float slack.
			if d := math.Abs(float64(a[i*cols+p]) - s*float64(c)); d > s/2*(1+1e-9)+1e-12 {
				t.Fatalf("row %d col %d: |x - s·q| = %g > s/2 = %g", i, p, d, s/2)
			}
		}
		if abs != q.AbsSum[i] {
			t.Fatalf("row %d: AbsSum %d want %d", i, q.AbsSum[i], abs)
		}
	}
	if q.Scale[3] != 1 {
		t.Fatalf("zero row scale = %v want 1", q.Scale[3])
	}
}

func FuzzDgemmAsmParity(f *testing.F) {
	f.Add(int64(1), 3, 5, 7)
	f.Add(int64(2), 1, 1, 1)
	f.Add(int64(3), 9, 31, 64)
	f.Fuzz(func(t *testing.T, seed int64, m, n, k int) {
		if m < 1 || n < 1 || k < 1 || m > 80 || n > 80 || k > 80 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a := fillF64(rng, m*k)
		b := fillF64(rng, n*k)
		c0 := fillF64(rng, m*n)
		cAsm := append([]float64(nil), c0...)
		cGo := append([]float64(nil), c0...)
		prev := blas.SetAsmEnabled(true)
		blas.Dgemm(-2, a, m, k, b, n, 1, cAsm, 1)
		blas.SetAsmEnabled(false)
		blas.Dgemm(-2, a, m, k, b, n, 1, cGo, 1)
		blas.SetAsmEnabled(prev)
		for i := range cAsm {
			if math.Float64bits(cAsm[i]) != math.Float64bits(cGo[i]) {
				t.Fatalf("m=%d n=%d k=%d: c[%d] asm=%v go=%v", m, n, k, i, cAsm[i], cGo[i])
			}
		}
	})
}
