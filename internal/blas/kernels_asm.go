//go:build (amd64 || arm64) && !noasm

package blas

// Pack-panel drivers for the assembly microkernels. They keep the
// reference cache blocking — p0 ascends per output element, every block
// is blockDim-edged — but pack each (j0, p0) panel of Bᵀ into a dense
// pack[p*ldp+j] layout so the kernel's column loads are contiguous. ldp
// is rounded up to the SIMD lane count and the pad columns are zeroed:
// full-width loads past jl read zeros (which contribute +0 to lanes the
// masked store then discards), so the kernel never reads or writes out
// of bounds and every real column's arithmetic is independent of its
// position in the tile.

const (
	packLanes32 = 8 // float32 lanes per vector (AVX2 YMM / 2×NEON)
	packLanes64 = 4 // float64 lanes per vector
)

// dgemmBlockAsm32 computes rows [rlo, rhi) of C += alpha*A*Bᵀ via
// gemmKern32. Same blocking as dgemmBlock32; the j0/p0 loops are hoisted
// outside i0 so each packed panel is reused across all row blocks of the
// stripe. Per output element only the p0 order matters (ascending, as in
// the reference), so the interchange is arithmetic-neutral.
func dgemmBlockAsm32(alpha float32, a []float32, m, k int, b []float32, n int, c []float32, rlo, rhi int) {
	pack := make([]float32, blockDim*roundUp(min(blockDim, n), packLanes32))
	for j0 := 0; j0 < n; j0 += blockDim {
		jMax := min(j0+blockDim, n)
		jl := jMax - j0
		ldp := roundUp(jl, packLanes32)
		for p0 := 0; p0 < k; p0 += blockDim {
			pMax := min(p0+blockDim, k)
			kl := pMax - p0
			if ldp != jl {
				clear(pack[:kl*ldp])
			}
			for j := 0; j < jl; j++ {
				brow := b[(j0+j)*k+p0 : (j0+j)*k+pMax]
				for p, v := range brow {
					pack[p*ldp+j] = v
				}
			}
			for i0 := rlo; i0 < rhi; i0 += blockDim {
				iMax := min(i0+blockDim, rhi)
				for i := i0; i < iMax; i += 2 {
					a0, c0 := &a[i*k+p0], &c[i*n+j0]
					a1, c1, rows := a0, c0, 1
					if i+1 < iMax {
						a1, c1, rows = &a[(i+1)*k+p0], &c[(i+1)*n+j0], 2
					}
					gemmKern32(a0, a1, &pack[0], c0, c1, jl, ldp, kl, rows, alpha)
				}
			}
		}
	}
}

// dgemmBlockAsm64 is the float64 driver over gemmKern64. The kernel's
// unfused per-lane schedule makes this path bit-identical to dgemmBlock
// (the parity tests assert it), so dispatch may flip freely.
func dgemmBlockAsm64(alpha float64, a []float64, m, k int, b []float64, n int, c []float64, rlo, rhi int) {
	pack := make([]float64, blockDim*roundUp(min(blockDim, n), packLanes64))
	for j0 := 0; j0 < n; j0 += blockDim {
		jMax := min(j0+blockDim, n)
		jl := jMax - j0
		ldp := roundUp(jl, packLanes64)
		for p0 := 0; p0 < k; p0 += blockDim {
			pMax := min(p0+blockDim, k)
			kl := pMax - p0
			if ldp != jl {
				clear(pack[:kl*ldp])
			}
			for j := 0; j < jl; j++ {
				brow := b[(j0+j)*k+p0 : (j0+j)*k+pMax]
				for p, v := range brow {
					pack[p*ldp+j] = v
				}
			}
			for i0 := rlo; i0 < rhi; i0 += blockDim {
				iMax := min(i0+blockDim, rhi)
				for i := i0; i < iMax; i += 2 {
					a0, c0 := &a[i*k+p0], &c[i*n+j0]
					a1, c1, rows := a0, c0, 1
					if i+1 < iMax {
						a1, c1, rows = &a[(i+1)*k+p0], &c[(i+1)*n+j0], 2
					}
					gemmKern64(a0, a1, &pack[0], c0, c1, jl, ldp, kl, rows, alpha)
				}
			}
		}
	}
}

// scanRowsI8Asm fills out[j] = Σ_p q[p]·b[j*d+p] for j ∈ [0, n) using
// the SIMD int8 dot kernel for the 16-aligned prefix of d and a scalar
// tail. All arithmetic is exact in int32, so asm and pure-Go scans are
// identical by construction.
func scanRowsI8Asm(q []int8, b []int8, n, d int, out []int32) {
	kl := d &^ 15
	if kl > 0 {
		dotKern8(&q[0], &b[0], d, n, kl, &out[0])
	} else {
		clear(out[:n])
	}
	if kl == d {
		return
	}
	for j := 0; j < n; j++ {
		row := b[j*d : (j+1)*d]
		var s int32
		for p := kl; p < d; p++ {
			s += int32(q[p]) * int32(row[p])
		}
		out[j] += s
	}
}
