// Package blas implements the small set of dense linear-algebra kernels
// the reproduction needs: level-1 vector ops and a cache-blocked,
// optionally parallel Dgemm. These back the GEMM-formulated k-means
// baseline of the paper's Table 3 (MATLAB/BLAS rows), which computes all
// point-to-centroid distances as ‖v‖² + ‖c‖² − 2·V·Cᵀ.
package blas

import (
	"fmt"
	"sync"
)

// Ddot returns xᵀy.
func Ddot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Ddot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Daxpy computes y += alpha*x.
func Daxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Daxpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Dscal computes x *= alpha.
func Dscal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dnrm2Sq returns ‖x‖² (squared Euclidean norm).
func Dnrm2Sq(x []float64) float64 { return Ddot(x, x) }

// RowNormsSq fills out[i] with the squared norm of row i of the m×n
// row-major matrix a.
func RowNormsSq(a []float64, m, n int, out []float64) {
	if len(a) < m*n || len(out) < m {
		panic("blas: RowNormsSq size mismatch")
	}
	for i := 0; i < m; i++ {
		out[i] = Dnrm2Sq(a[i*n : (i+1)*n])
	}
}

const blockDim = 64 // cache block edge, tuned for L1-resident tiles

// Dgemm computes C = alpha*A*Bᵀ + beta*C where A is m×k, B is n×k, and
// C is m×n, all row-major. The B-transposed convention matches the
// k-means use (points × centroidsᵀ) and keeps both inner streams
// sequential. threads <= 1 runs serially.
func Dgemm(alpha float64, a []float64, m, k int, b []float64, n int, beta float64, c []float64, threads int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic(fmt.Sprintf("blas: Dgemm size mismatch m=%d n=%d k=%d", m, n, k))
	}
	if beta != 1 {
		for i := range c[:m*n] {
			c[i] *= beta
		}
	}
	if threads <= 1 {
		dgemmBlock(alpha, a, m, k, b, n, c, 0, m)
		return
	}
	// Split rows of A across workers in contiguous stripes.
	var wg sync.WaitGroup
	stripe := (m + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * stripe
		if lo >= m {
			break
		}
		hi := lo + stripe
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dgemmBlock(alpha, a, m, k, b, n, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// dgemmBlock computes rows [rlo, rhi) of C += alpha*A*Bᵀ with cache
// blocking over all three dimensions.
func dgemmBlock(alpha float64, a []float64, m, k int, b []float64, n int, c []float64, rlo, rhi int) {
	for i0 := rlo; i0 < rhi; i0 += blockDim {
		iMax := min(i0+blockDim, rhi)
		for j0 := 0; j0 < n; j0 += blockDim {
			jMax := min(j0+blockDim, n)
			for p0 := 0; p0 < k; p0 += blockDim {
				pMax := min(p0+blockDim, k)
				for i := i0; i < iMax; i++ {
					arow := a[i*k : i*k+k]
					crow := c[i*n : i*n+n]
					for j := j0; j < jMax; j++ {
						brow := b[j*k : j*k+k]
						var s float64
						for p := p0; p < pMax; p++ {
							s += arow[p] * brow[p]
						}
						crow[j] += alpha * s
					}
				}
			}
		}
	}
}

// PairwiseSqDist fills dist (m×n row-major) with squared Euclidean
// distances between rows of a (m×k) and rows of b (n×k) using the GEMM
// identity. Small negative values from cancellation are clamped to 0.
func PairwiseSqDist(a []float64, m int, b []float64, n, k int, dist []float64, threads int) {
	if len(dist) < m*n {
		panic("blas: PairwiseSqDist dist too small")
	}
	an := make([]float64, m)
	bn := make([]float64, n)
	RowNormsSq(a, m, k, an)
	RowNormsSq(b, n, k, bn)
	for i := range dist[:m*n] {
		dist[i] = 0
	}
	Dgemm(-2, a, m, k, b, n, 0, dist, threads)
	for i := 0; i < m; i++ {
		row := dist[i*n : (i+1)*n]
		for j := range row {
			v := row[j] + an[i] + bn[j]
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
