// Package blas implements the small set of dense linear-algebra kernels
// the reproduction needs: level-1 vector ops and a cache-blocked,
// optionally parallel Dgemm. These back the GEMM-formulated k-means
// baseline of the paper's Table 3 (MATLAB/BLAS rows), which computes all
// point-to-centroid distances as ‖v‖² + ‖c‖² − 2·V·Cᵀ.
//
// Every kernel is generic over Float. The float64 instantiation executes
// exactly the pre-generic code (same loop structure, same operation
// order), so it stays bit-identical with the serial oracle. The float32
// instantiation halves memory traffic — the bandwidth lever the paper's
// memory-hierarchy engineering is about — and additionally routes Dgemm
// through a register-tiled microkernel (see dgemmBlock32): the float64
// kernel cannot be rescheduled without breaking bit-identity, but the
// float32 kernel is new surface and free to break the sequential FMA
// dependency chain.
package blas

import (
	"fmt"
	"sync"

	"knor/internal/fp"
)

// Float is the element-type constraint threaded through the matrix,
// kmeans and serve layers: float64 is the oracle precision, float32 the
// halved-bandwidth serving/training precision. (An alias of fp.Float —
// the constraint lives in a leaf package so matrix can name it too.)
type Float = fp.Float

// ElemBytes returns the in-memory size of one element of T.
func ElemBytes[T Float]() int { return fp.ElemBytes[T]() }

// Ddot returns xᵀy.
func Ddot[T Float](x, y []T) T {
	if len(x) != len(y) {
		panic("blas: Ddot length mismatch")
	}
	var s T
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Daxpy computes y += alpha*x.
func Daxpy[T Float](alpha T, x, y []T) {
	if len(x) != len(y) {
		panic("blas: Daxpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Dscal computes x *= alpha.
func Dscal[T Float](alpha T, x []T) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dnrm2Sq returns ‖x‖² (squared Euclidean norm).
func Dnrm2Sq[T Float](x []T) T { return Ddot(x, x) }

// RowNormsSq fills out[i] with the squared norm of row i of the m×n
// row-major matrix a.
func RowNormsSq[T Float](a []T, m, n int, out []T) {
	if len(a) < m*n || len(out) < m {
		panic("blas: RowNormsSq size mismatch")
	}
	for i := 0; i < m; i++ {
		out[i] = Dnrm2Sq(a[i*n : (i+1)*n])
	}
}

const blockDim = 64 // cache block edge, tuned for L1-resident tiles

// Dgemm computes C = alpha*A*Bᵀ + beta*C where A is m×k, B is n×k, and
// C is m×n, all row-major. The B-transposed convention matches the
// k-means use (points × centroidsᵀ) and keeps both inner streams
// sequential. threads <= 1 runs serially.
func Dgemm[T Float](alpha T, a []T, m, k int, b []T, n int, beta T, c []T, threads int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic(fmt.Sprintf("blas: Dgemm size mismatch m=%d n=%d k=%d", m, n, k))
	}
	if beta != 1 {
		for i := range c[:m*n] {
			c[i] *= beta
		}
	}
	// Degenerate shapes contribute nothing beyond the beta scaling. The
	// k == 0 case in particular must return here: the reference loops
	// fall through harmlessly, but the assembly drivers take &a[i*k+p0]
	// and run a do-while over k, neither of which tolerates emptiness.
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if threads <= 1 {
		dgemmRange(alpha, a, m, k, b, n, c, 0, m)
		return
	}
	// Split rows of A across workers in contiguous stripes.
	var wg sync.WaitGroup
	stripe := (m + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * stripe
		if lo >= m {
			break
		}
		hi := lo + stripe
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dgemmRange(alpha, a, m, k, b, n, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// dgemmRange dispatches rows [rlo, rhi) to the width-specific kernel.
// When the CPU probe enabled them (see kernels.go) the assembly drivers
// take both widths: float64 asm is bit-identical to the reference
// schedule by construction, float32 asm keeps the same ULP-level and
// column-slice-invariance contracts as the tiled Go microkernel.
// Otherwise float64 runs the legacy reference order (bit-identity with
// the oracle) and float32 the register-tiled Go microkernel.
func dgemmRange[T Float](alpha T, a []T, m, k int, b []T, n int, c []T, rlo, rhi int) {
	asm := asmEnabled.Load()
	if a32, ok := any(a).([]float32); ok {
		b32, c32 := any(b).([]float32), any(c).([]float32)
		if asm {
			telGemmAsm32.Inc()
			dgemmBlockAsm32(float32(alpha), a32, m, k, b32, n, c32, rlo, rhi)
			return
		}
		telGemmGo32.Inc()
		dgemmBlock32(float32(alpha), a32, m, k, b32, n, c32, rlo, rhi)
		return
	}
	if asm {
		if a64, ok := any(a).([]float64); ok {
			telGemmAsm64.Inc()
			dgemmBlockAsm64(float64(alpha), a64, m, k, any(b).([]float64), n, any(c).([]float64), rlo, rhi)
			return
		}
	}
	telGemmGo64.Inc()
	dgemmBlock(alpha, a, m, k, b, n, c, rlo, rhi)
}

// dgemmBlock computes rows [rlo, rhi) of C += alpha*A*Bᵀ with cache
// blocking over all three dimensions. This is the reference schedule:
// the float64 path must not deviate from it.
func dgemmBlock[T Float](alpha T, a []T, m, k int, b []T, n int, c []T, rlo, rhi int) {
	for i0 := rlo; i0 < rhi; i0 += blockDim {
		iMax := min(i0+blockDim, rhi)
		for j0 := 0; j0 < n; j0 += blockDim {
			jMax := min(j0+blockDim, n)
			for p0 := 0; p0 < k; p0 += blockDim {
				pMax := min(p0+blockDim, k)
				for i := i0; i < iMax; i++ {
					arow := a[i*k : i*k+k]
					crow := c[i*n : i*n+n]
					for j := j0; j < jMax; j++ {
						brow := b[j*k : j*k+k]
						var s T
						for p := p0; p < pMax; p++ {
							s += arow[p] * brow[p]
						}
						crow[j] += alpha * s
					}
				}
			}
		}
	}
}

// dgemmBlock32 is the float32 microkernel: the same cache blocking as
// dgemmBlock, but register-tiled 4 columns wide with 2-way unrolled
// inner products (8 independent accumulator chains). The sequential
// s += a*b loop of the reference schedule compiles to a chained FMA —
// one fused op per add-latency — so it is latency-bound at either
// width; breaking the chain is what converts float32's halved element
// size into measured throughput (BenchmarkGemm32vs64, knorbench -exp
// precision). Summation order differs from the reference kernel, which
// is fine at float32: consumers get a relative-error contract, not
// bit-identity (see internal/kmeans precision tests).
//
// One order contract the kernel DOES keep: every output element's value
// depends only on its own A-row, B-row and the p-blocking — never on
// which column path (4-wide body or scalar remainder) computed it. The
// remainder columns therefore use the same 2-way-unrolled even/odd
// accumulator split as the tiled body. The sharded serving layer relies
// on this: a centroid block sliced out of a larger matrix must produce
// bit-identical distances to the same rows inside the full GEMM
// (TestGemm32ColumnSliceInvariant, internal/shardserve parity tests).
func dgemmBlock32(alpha float32, a []float32, m, k int, b []float32, n int, c []float32, rlo, rhi int) {
	for i0 := rlo; i0 < rhi; i0 += blockDim {
		iMax := min(i0+blockDim, rhi)
		for j0 := 0; j0 < n; j0 += blockDim {
			jMax := min(j0+blockDim, n)
			for p0 := 0; p0 < k; p0 += blockDim {
				pMax := min(p0+blockDim, k)
				kl := pMax - p0
				for i := i0; i < iMax; i++ {
					arow := a[i*k+p0 : i*k+pMax]
					crow := c[i*n : i*n+n]
					j := j0
					for ; j+4 <= jMax; j += 4 {
						b0 := b[j*k+p0 : j*k+pMax]
						b1 := b[(j+1)*k+p0 : (j+1)*k+pMax]
						b2 := b[(j+2)*k+p0 : (j+2)*k+pMax]
						b3 := b[(j+3)*k+p0 : (j+3)*k+pMax]
						var s0a, s1a, s2a, s3a float32
						var s0b, s1b, s2b, s3b float32
						p := 0
						for ; p+2 <= kl; p += 2 {
							av0, av1 := arow[p], arow[p+1]
							s0a += av0 * b0[p]
							s0b += av1 * b0[p+1]
							s1a += av0 * b1[p]
							s1b += av1 * b1[p+1]
							s2a += av0 * b2[p]
							s2b += av1 * b2[p+1]
							s3a += av0 * b3[p]
							s3b += av1 * b3[p+1]
						}
						for ; p < kl; p++ {
							av := arow[p]
							s0a += av * b0[p]
							s1a += av * b1[p]
							s2a += av * b2[p]
							s3a += av * b3[p]
						}
						crow[j] += alpha * (s0a + s0b)
						crow[j+1] += alpha * (s1a + s1b)
						crow[j+2] += alpha * (s2a + s2b)
						crow[j+3] += alpha * (s3a + s3b)
					}
					for ; j < jMax; j++ {
						brow := b[j*k+p0 : j*k+pMax]
						var sa, sb float32
						p := 0
						for ; p+2 <= kl; p += 2 {
							sa += arow[p] * brow[p]
							sb += arow[p+1] * brow[p+1]
						}
						for ; p < kl; p++ {
							sa += arow[p] * brow[p]
						}
						crow[j] += alpha * (sa + sb)
					}
				}
			}
		}
	}
}

// PairwiseSqDist fills dist (m×n row-major) with squared Euclidean
// distances between rows of a (m×k) and rows of b (n×k) using the GEMM
// identity. Small negative values from cancellation are clamped to 0.
func PairwiseSqDist[T Float](a []T, m int, b []T, n, k int, dist []T, threads int) {
	if len(dist) < m*n {
		panic("blas: PairwiseSqDist dist too small")
	}
	an := make([]T, m)
	bn := make([]T, n)
	RowNormsSq(a, m, k, an)
	RowNormsSq(b, n, k, bn)
	for i := range dist[:m*n] {
		dist[i] = 0
	}
	Dgemm(-2, a, m, k, b, n, 0, dist, threads)
	for i := 0; i < m; i++ {
		row := dist[i*n : (i+1)*n]
		for j := range row {
			v := row[j] + an[i] + bn[j]
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
