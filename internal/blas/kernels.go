package blas

import "sync/atomic"

// Kernel dispatch state. Each architecture's init (kernels_amd64.go,
// kernels_arm64.go) probes the CPU and, when the required features are
// present, flips asmEnabled so dgemmRange and Gemm8 route through the
// assembly microkernels. The pure-Go tiled kernels remain the guaranteed
// fallback: a `noasm` build tag (or an unsupported CPU) leaves the
// dispatch permanently on them, and SetAsmEnabled lets benchmarks and
// parity tests flip between the two paths in-process.
var (
	// asmSupported records the init-time CPU probe: true only when this
	// binary carries assembly kernels AND the CPU has the features they
	// need (AVX2+FMA on amd64, always-on NEON on arm64).
	asmSupported bool
	// asmEnabled is the live dispatch switch, on by default whenever
	// asmSupported. An atomic so SetAsmEnabled is safe against GEMMs in
	// flight (they may split between kernels mid-call, which both the
	// float32 ULP contract and the float64 bit-identity contract allow:
	// the two float64 schedules produce identical bits).
	asmEnabled atomic.Bool
	// kernelName names the active assembly flavour for diagnostics and
	// the bench harness ("avx2fma", "neon"); "go" when unsupported.
	kernelName = "go"
)

// AsmSupported reports whether this binary has assembly kernels usable
// on this CPU (false under the noasm build tag).
func AsmSupported() bool { return asmSupported }

// AsmEnabled reports whether Dgemm and Gemm8 currently dispatch to the
// assembly kernels.
func AsmEnabled() bool { return asmEnabled.Load() }

// SetAsmEnabled switches kernel dispatch between the assembly and
// pure-Go paths, returning the previous setting. Enabling is a no-op
// when AsmSupported is false. This exists for the bench harness
// (asm-vs-go rows in BENCH_kernels.json) and differential tests; serving
// code never calls it.
func SetAsmEnabled(on bool) bool {
	prev := asmEnabled.Load()
	asmEnabled.Store(on && asmSupported)
	return prev
}

// KernelName names the assembly kernel flavour compiled in and usable on
// this CPU ("avx2fma", "neon"), or "go" when the pure-Go kernels are the
// only path.
func KernelName() string { return kernelName }

// roundUp rounds n up to a multiple of m (a power of two).
func roundUp(n, m int) int { return (n + m - 1) &^ (m - 1) }
