//go:build arm64 && !noasm

package blas

// NEON (Advanced SIMD) is baseline on arm64 — no feature probe needed.
func init() {
	asmSupported = true
	kernelName = "neon"
	asmEnabled.Store(true)
}

// gemmKern32 — see kernels_amd64.go for the full contract. The NEON
// variant uses vector FMLA and scalar FMADDS uniformly: on arm64 the Go
// compiler itself fuses s += a*b (and c += alpha*s) into FMADD, so the
// fused kernels match the pure-Go schedules' per-element rounding.
//
//go:noescape
func gemmKern32(a0, a1, pack, c0, c1 *float32, jn, ldp, kl, rows int, alpha float32)

// gemmKern64 is the float64 tile. Fused FMLA/FMADDD throughout, which on
// arm64 is exactly the reference dgemmBlock's codegen — the float64
// assembly path stays bit-identical to the pure-Go kernel per platform
// (the differential tests assert it on whatever hardware they run on).
//
//go:noescape
func gemmKern64(a0, a1, pack, c0, c1 *float64, jn, ldp, kl, rows int, alpha float64)

// dotKern8 — SMULL/SMULL2 + SADALP int8 dot rows; exact int32, same
// contract as the amd64 kernel (kl a multiple of 16, Go wrapper tails).
//
//go:noescape
func dotKern8(q, b *int8, ldb, n, kl int, out *int32)
