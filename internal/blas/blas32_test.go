package blas_test

// Correctness and throughput of the float32 kernel instantiations. The
// float64 path is covered by blas_test.go (and must stay bit-identical
// with the pre-generic implementation); here the contract is relative
// error against a float64 reference, since the register-tiled float32
// Dgemm sums in a different order than the reference schedule.
//
// Error budget: one float32 op rounds with ε = 2⁻²⁴ ≈ 5.96e-8. A
// length-k inner product accumulates at most ~k·ε relative error
// (whatever the summation order), and the ‖v‖²+‖c‖²−2·v·c identity
// amplifies it by the cancellation factor (‖v‖²+‖c‖²)/d² — bounded in
// these tests by construction. With k ≤ 512 that puts results within
// ~512·6e-8 ≈ 3e-5 of the float64 value; the assertions use 1e-4 for
// slack.

import (
	"math/rand"
	"runtime"
	"testing"

	"knor/internal/blas"
)

const relTol32 = 1e-4

func relErr(got float32, want float64) float64 {
	d := float64(got) - want
	if d < 0 {
		d = -d
	}
	den := want
	if den < 0 {
		den = -den
	}
	if den < 1 {
		den = 1
	}
	return d / den
}

func randPair32(n int, seed int64) ([]float32, []float64) {
	rng := rand.New(rand.NewSource(seed))
	f32 := make([]float32, n)
	f64 := make([]float64, n)
	for i := range f32 {
		f32[i] = float32(rng.Float64())
		f64[i] = float64(f32[i]) // identical inputs at both widths
	}
	return f32, f64
}

func TestDdot32MatchesFloat64(t *testing.T) {
	for _, n := range []int{1, 7, 64, 513} {
		x32, x64 := randPair32(n, int64(n))
		y32, y64 := randPair32(n, int64(n)+100)
		got := blas.Ddot(x32, y32)
		want := blas.Ddot(x64, y64)
		if e := relErr(got, want); e > relTol32 {
			t.Errorf("n=%d: Ddot32=%g Ddot64=%g relerr=%g", n, got, want, e)
		}
	}
}

func TestDaxpyDscal32(t *testing.T) {
	x32, x64 := randPair32(33, 1)
	y32, y64 := randPair32(33, 2)
	blas.Daxpy(float32(0.5), x32, y32)
	blas.Daxpy(0.5, x64, y64)
	for i := range y32 {
		if e := relErr(y32[i], y64[i]); e > relTol32 {
			t.Fatalf("Daxpy[%d]: %g vs %g", i, y32[i], y64[i])
		}
	}
	blas.Dscal(float32(3), x32)
	blas.Dscal(3, x64)
	for i := range x32 {
		if e := relErr(x32[i], x64[i]); e > relTol32 {
			t.Fatalf("Dscal[%d]: %g vs %g", i, x32[i], x64[i])
		}
	}
}

// TestDgemm32MatchesFloat64 exercises the register-tiled float32 kernel
// across shapes that hit the 4-wide column tile, its remainder columns,
// the 2-way unrolled inner product, its odd-length remainder, and
// multi-block (> blockDim=64) extents in every dimension.
func TestDgemm32MatchesFloat64(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 2}, {17, 9, 13},
		{64, 64, 64}, {65, 67, 66}, {130, 100, 16}, {33, 3, 129},
	}
	for _, sh := range shapes {
		a32, a64 := randPair32(sh.m*sh.k, int64(sh.m))
		b32, b64 := randPair32(sh.n*sh.k, int64(sh.n)+7)
		c32 := make([]float32, sh.m*sh.n)
		c64 := make([]float64, sh.m*sh.n)
		for i := range c32 {
			c32[i] = float32(i % 3)
			c64[i] = float64(c32[i])
		}
		blas.Dgemm(float32(-2), a32, sh.m, sh.k, b32, sh.n, 0.5, c32, 1)
		blas.Dgemm(-2, a64, sh.m, sh.k, b64, sh.n, 0.5, c64, 1)
		for i := range c32 {
			if e := relErr(c32[i], c64[i]); e > relTol32 {
				t.Fatalf("m=%d n=%d k=%d: C[%d]=%g want %g (relerr %g)",
					sh.m, sh.n, sh.k, i, c32[i], c64[i], e)
			}
		}
	}
}

// TestGemm32ColumnSliceInvariant pins the column-path-independence
// contract the sharded serving layer relies on: computing distances
// against a contiguous slice of B's rows must produce bit-identical
// outputs to the corresponding columns of the full GEMM, for any slice
// boundary — including widths that land columns in the scalar remainder
// path of the 4-wide register tile, and odd k hitting the unroll tail.
func TestGemm32ColumnSliceInvariant(t *testing.T) {
	for _, sh := range []struct{ m, n, k int }{
		{9, 10, 16}, {5, 25, 13}, {7, 100, 16}, {3, 130, 67},
	} {
		a, _ := randPair32(sh.m*sh.k, int64(sh.m)+31)
		b, _ := randPair32(sh.n*sh.k, int64(sh.n)+32)
		full := make([]float32, sh.m*sh.n)
		blas.Dgemm(float32(-2), a, sh.m, sh.k, b, sh.n, 0, full, 1)
		// Every contiguous split into up to 5 shards must agree bitwise.
		for shards := 1; shards <= 5; shards++ {
			lo := 0
			for s := 0; s < shards; s++ {
				hi := lo + sh.n/shards
				if s < sh.n%shards {
					hi++
				}
				w := hi - lo
				if w == 0 {
					continue
				}
				part := make([]float32, sh.m*w)
				blas.Dgemm(float32(-2), a, sh.m, sh.k, b[lo*sh.k:hi*sh.k], w, 0, part, 1)
				for i := 0; i < sh.m; i++ {
					for j := 0; j < w; j++ {
						if got, want := part[i*w+j], full[i*sh.n+lo+j]; got != want {
							t.Fatalf("m=%d n=%d k=%d shards=%d slice [%d,%d): C[%d,%d]=%g, full says %g",
								sh.m, sh.n, sh.k, shards, lo, hi, i, lo+j, got, want)
						}
					}
				}
				lo = hi
			}
		}
	}
}

func TestDgemm32Threaded(t *testing.T) {
	m, n, k := 150, 70, 40
	a32, _ := randPair32(m*k, 3)
	b32, _ := randPair32(n*k, 4)
	want := make([]float32, m*n)
	blas.Dgemm(float32(1), a32, m, k, b32, n, 0, want, 1)
	got := make([]float32, m*n)
	blas.Dgemm(float32(1), a32, m, k, b32, n, 0, got, 4)
	for i := range got {
		// Threading splits rows; each row's sums are computed by one
		// worker in the same order, so results are exactly equal.
		if got[i] != want[i] {
			t.Fatalf("threaded C[%d]=%g want %g", i, got[i], want[i])
		}
	}
}

func TestPairwiseSqDist32(t *testing.T) {
	m, n, k := 100, 37, 16
	a32, a64 := randPair32(m*k, 11)
	b32, b64 := randPair32(n*k, 12)
	d32 := make([]float32, m*n)
	d64 := make([]float64, m*n)
	blas.PairwiseSqDist(a32, m, b32, n, k, d32, 1)
	blas.PairwiseSqDist(a64, m, b64, n, k, d64, 1)
	for i := range d32 {
		if d32[i] < 0 {
			t.Fatalf("negative sqdist %g at %d", d32[i], i)
		}
		if e := relErr(d32[i], d64[i]); e > relTol32 {
			t.Fatalf("dist[%d]=%g want %g (relerr %g)", i, d32[i], d64[i], e)
		}
	}
}

// BenchmarkGemm32vs64 measures PairwiseSqDist-shaped GEMM (a tall
// chunk of query/data rows against a small centroid block, the shape
// of both the serve assign path and the Table 3 GEMM baseline) at both
// element types. The float32/float64 ratio is the headline number of
// EXPERIMENTS.md's precision section; the acceptance bar is ≥ 1.5x.
func BenchmarkGemm32vs64(b *testing.B) {
	// The chunk is sized so the float64 distance matrix (m×n×8 ≈ 52 MB)
	// spills the last-level cache while the float32 one is half that —
	// the out-of-cache regime the serving and knors chunk loops run in,
	// and where halved traffic pays alongside the register-tiled kernel.
	const (
		m = 65536 // chunk rows
		n = 100   // centroids
		k = 16    // dims
	)
	bench := func(b *testing.B, threads int) {
		b.Run("f64", func(b *testing.B) {
			a := make([]float64, m*k)
			cents := make([]float64, n*k)
			rng := rand.New(rand.NewSource(1))
			for i := range a {
				a[i] = rng.Float64()
			}
			for i := range cents {
				cents[i] = rng.Float64()
			}
			dist := make([]float64, m*n)
			b.SetBytes(int64(m*k) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blas.PairwiseSqDist(a, m, cents, n, k, dist, threads)
			}
		})
		b.Run("f32", func(b *testing.B) {
			a := make([]float32, m*k)
			cents := make([]float32, n*k)
			rng := rand.New(rand.NewSource(1))
			for i := range a {
				a[i] = float32(rng.Float64())
			}
			for i := range cents {
				cents[i] = float32(rng.Float64())
			}
			dist := make([]float32, m*n)
			b.SetBytes(int64(m*k) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blas.PairwiseSqDist(a, m, cents, n, k, dist, threads)
			}
		})
	}
	b.Run("serial", func(b *testing.B) { bench(b, 1) })
	b.Run("threaded", func(b *testing.B) { bench(b, runtime.GOMAXPROCS(0)) })
}
