//go:build amd64 && !noasm

#include "textflag.h"

// AVX2/FMA GEMM microkernels. The Go driver (kernels_asm.go) keeps the
// reference i0→j0→p0 cache blocking and packs each (j0,p0) panel of Bᵀ
// into pack[p*ldp+j] with zero-padded columns; these kernels compute a
// 2-row register tile over that panel. Column traversal: a wide body
// (32 float32 / 16 float64 columns), then 1-group chunks, the last one
// store-masked. Per output lane the arithmetic is identical in every
// chunk — a p-ascending accumulate followed by one alpha-multiply and
// one add into C — so a column's value never depends on its position in
// the tile (the column-slice invariance contract).
//
// float32 uses FMA (consumers get a ULP contract, not bit-identity).
// float64 uses separate VMULPD/VADDPD so every lane reproduces the
// scalar reference's rounding sequence exactly: gemmKern64 is
// bit-identical to dgemmBlock.

// masked-store tables: &tab[lanes-rem] has rem all-ones lanes then zeros.
DATA mask32tab<>+0x00(SB)/4, $0xffffffff
DATA mask32tab<>+0x04(SB)/4, $0xffffffff
DATA mask32tab<>+0x08(SB)/4, $0xffffffff
DATA mask32tab<>+0x0c(SB)/4, $0xffffffff
DATA mask32tab<>+0x10(SB)/4, $0xffffffff
DATA mask32tab<>+0x14(SB)/4, $0xffffffff
DATA mask32tab<>+0x18(SB)/4, $0xffffffff
DATA mask32tab<>+0x1c(SB)/4, $0xffffffff
DATA mask32tab<>+0x20(SB)/4, $0x00000000
DATA mask32tab<>+0x24(SB)/4, $0x00000000
DATA mask32tab<>+0x28(SB)/4, $0x00000000
DATA mask32tab<>+0x2c(SB)/4, $0x00000000
DATA mask32tab<>+0x30(SB)/4, $0x00000000
DATA mask32tab<>+0x34(SB)/4, $0x00000000
DATA mask32tab<>+0x38(SB)/4, $0x00000000
DATA mask32tab<>+0x3c(SB)/4, $0x00000000
GLOBL mask32tab<>(SB), RODATA, $64

DATA mask64tab<>+0x00(SB)/8, $0xffffffffffffffff
DATA mask64tab<>+0x08(SB)/8, $0xffffffffffffffff
DATA mask64tab<>+0x10(SB)/8, $0xffffffffffffffff
DATA mask64tab<>+0x18(SB)/8, $0xffffffffffffffff
DATA mask64tab<>+0x20(SB)/8, $0x0000000000000000
DATA mask64tab<>+0x28(SB)/8, $0x0000000000000000
DATA mask64tab<>+0x30(SB)/8, $0x0000000000000000
DATA mask64tab<>+0x38(SB)/8, $0x0000000000000000
GLOBL mask64tab<>(SB), RODATA, $64

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmKern32(a0, a1, pack, c0, c1 *float32, jn, ldp, kl, rows int, alpha float32)
//
// Register plan: SI/DI = a0/a1 base, BX = pack, R8/R9 = c0/c1,
// R10 = jn, R11 = ldp bytes, R12 = kl, R13 = rows, R14 = column j.
// Tile: 2 rows × 4 groups of 8 (Y0-Y3 row0, Y4-Y7 row1), pack loads in
// Y8-Y11, broadcasts Y12/Y13, mask Y14, alpha Y15.
TEXT ·gemmKern32(SB), NOSPLIT, $0-76
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ pack+16(FP), BX
	MOVQ c0+24(FP), R8
	MOVQ c1+32(FP), R9
	MOVQ jn+40(FP), R10
	MOVQ ldp+48(FP), R11
	MOVQ kl+56(FP), R12
	MOVQ rows+64(FP), R13
	VBROADCASTSS alpha+72(FP), Y15
	SHLQ $2, R11
	XORQ R14, R14

f32body:
	MOVQ R10, AX
	SUBQ R14, AX
	CMPQ AX, $32
	JLT  f32tail

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	LEAQ (BX)(R14*4), CX
	MOVQ SI, DX
	MOVQ DI, R15
	MOVQ R12, AX

f32body_p:
	VBROADCASTSS (DX), Y12
	VBROADCASTSS (R15), Y13
	VMOVUPS (CX), Y8
	VMOVUPS 32(CX), Y9
	VMOVUPS 64(CX), Y10
	VMOVUPS 96(CX), Y11
	VFMADD231PS Y8, Y12, Y0
	VFMADD231PS Y9, Y12, Y1
	VFMADD231PS Y10, Y12, Y2
	VFMADD231PS Y11, Y12, Y3
	VFMADD231PS Y8, Y13, Y4
	VFMADD231PS Y9, Y13, Y5
	VFMADD231PS Y10, Y13, Y6
	VFMADD231PS Y11, Y13, Y7
	ADDQ $4, DX
	ADDQ $4, R15
	ADDQ R11, CX
	DECQ AX
	JNZ  f32body_p

	LEAQ (R8)(R14*4), CX
	VMULPS Y15, Y0, Y0
	VMULPS Y15, Y1, Y1
	VMULPS Y15, Y2, Y2
	VMULPS Y15, Y3, Y3
	VADDPS (CX), Y0, Y0
	VADDPS 32(CX), Y1, Y1
	VADDPS 64(CX), Y2, Y2
	VADDPS 96(CX), Y3, Y3
	VMOVUPS Y0, (CX)
	VMOVUPS Y1, 32(CX)
	VMOVUPS Y2, 64(CX)
	VMOVUPS Y3, 96(CX)
	CMPQ R13, $2
	JLT  f32body_next
	LEAQ (R9)(R14*4), CX
	VMULPS Y15, Y4, Y4
	VMULPS Y15, Y5, Y5
	VMULPS Y15, Y6, Y6
	VMULPS Y15, Y7, Y7
	VADDPS (CX), Y4, Y4
	VADDPS 32(CX), Y5, Y5
	VADDPS 64(CX), Y6, Y6
	VADDPS 96(CX), Y7, Y7
	VMOVUPS Y4, (CX)
	VMOVUPS Y5, 32(CX)
	VMOVUPS Y6, 64(CX)
	VMOVUPS Y7, 96(CX)

f32body_next:
	ADDQ $32, R14
	JMP  f32body

f32tail:
	MOVQ R10, AX
	SUBQ R14, AX
	TESTQ AX, AX
	JLE  f32done

	VXORPS Y0, Y0, Y0
	VXORPS Y4, Y4, Y4
	LEAQ (BX)(R14*4), CX
	MOVQ SI, DX
	MOVQ DI, R15
	MOVQ R12, AX

f32tail_p:
	VBROADCASTSS (DX), Y12
	VBROADCASTSS (R15), Y13
	VMOVUPS (CX), Y8
	VFMADD231PS Y8, Y12, Y0
	VFMADD231PS Y8, Y13, Y4
	ADDQ $4, DX
	ADDQ $4, R15
	ADDQ R11, CX
	DECQ AX
	JNZ  f32tail_p

	VMULPS Y15, Y0, Y0
	VMULPS Y15, Y4, Y4
	MOVQ R10, AX
	SUBQ R14, AX
	CMPQ AX, $8
	JLT  f32tail_mask

	LEAQ (R8)(R14*4), CX
	VADDPS (CX), Y0, Y0
	VMOVUPS Y0, (CX)
	CMPQ R13, $2
	JLT  f32tail_next
	LEAQ (R9)(R14*4), CX
	VADDPS (CX), Y4, Y4
	VMOVUPS Y4, (CX)

f32tail_next:
	ADDQ $8, R14
	JMP  f32tail

f32tail_mask:
	MOVQ $8, CX
	SUBQ AX, CX
	SHLQ $2, CX
	LEAQ mask32tab<>(SB), DX
	VMOVDQU (DX)(CX*1), Y14
	LEAQ (R8)(R14*4), CX
	VMASKMOVPS (CX), Y14, Y8
	VADDPS Y8, Y0, Y0
	VMASKMOVPS Y0, Y14, (CX)
	CMPQ R13, $2
	JLT  f32done
	LEAQ (R9)(R14*4), CX
	VMASKMOVPS (CX), Y14, Y8
	VADDPS Y8, Y4, Y4
	VMASKMOVPS Y4, Y14, (CX)

f32done:
	VZEROUPPER
	RET

// func gemmKern64(a0, a1, pack, c0, c1 *float64, jn, ldp, kl, rows int, alpha float64)
//
// Same plan at 4 lanes: 2 rows × 4 groups of 4 (16 columns per body
// step). VMULPD into the Y14 scratch then VADDPD keeps each lane's
// rounding sequence identical to the scalar reference (no FMA).
TEXT ·gemmKern64(SB), NOSPLIT, $0-80
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ pack+16(FP), BX
	MOVQ c0+24(FP), R8
	MOVQ c1+32(FP), R9
	MOVQ jn+40(FP), R10
	MOVQ ldp+48(FP), R11
	MOVQ kl+56(FP), R12
	MOVQ rows+64(FP), R13
	VBROADCASTSD alpha+72(FP), Y15
	SHLQ $3, R11
	XORQ R14, R14

f64body:
	MOVQ R10, AX
	SUBQ R14, AX
	CMPQ AX, $16
	JLT  f64tail

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	LEAQ (BX)(R14*8), CX
	MOVQ SI, DX
	MOVQ DI, R15
	MOVQ R12, AX

f64body_p:
	VBROADCASTSD (DX), Y12
	VBROADCASTSD (R15), Y13
	VMOVUPD (CX), Y8
	VMOVUPD 32(CX), Y9
	VMOVUPD 64(CX), Y10
	VMOVUPD 96(CX), Y11
	VMULPD Y8, Y12, Y14
	VADDPD Y14, Y0, Y0
	VMULPD Y9, Y12, Y14
	VADDPD Y14, Y1, Y1
	VMULPD Y10, Y12, Y14
	VADDPD Y14, Y2, Y2
	VMULPD Y11, Y12, Y14
	VADDPD Y14, Y3, Y3
	VMULPD Y8, Y13, Y14
	VADDPD Y14, Y4, Y4
	VMULPD Y9, Y13, Y14
	VADDPD Y14, Y5, Y5
	VMULPD Y10, Y13, Y14
	VADDPD Y14, Y6, Y6
	VMULPD Y11, Y13, Y14
	VADDPD Y14, Y7, Y7
	ADDQ $8, DX
	ADDQ $8, R15
	ADDQ R11, CX
	DECQ AX
	JNZ  f64body_p

	LEAQ (R8)(R14*8), CX
	VMULPD Y15, Y0, Y0
	VMULPD Y15, Y1, Y1
	VMULPD Y15, Y2, Y2
	VMULPD Y15, Y3, Y3
	VADDPD (CX), Y0, Y0
	VADDPD 32(CX), Y1, Y1
	VADDPD 64(CX), Y2, Y2
	VADDPD 96(CX), Y3, Y3
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	VMOVUPD Y2, 64(CX)
	VMOVUPD Y3, 96(CX)
	CMPQ R13, $2
	JLT  f64body_next
	LEAQ (R9)(R14*8), CX
	VMULPD Y15, Y4, Y4
	VMULPD Y15, Y5, Y5
	VMULPD Y15, Y6, Y6
	VMULPD Y15, Y7, Y7
	VADDPD (CX), Y4, Y4
	VADDPD 32(CX), Y5, Y5
	VADDPD 64(CX), Y6, Y6
	VADDPD 96(CX), Y7, Y7
	VMOVUPD Y4, (CX)
	VMOVUPD Y5, 32(CX)
	VMOVUPD Y6, 64(CX)
	VMOVUPD Y7, 96(CX)

f64body_next:
	ADDQ $16, R14
	JMP  f64body

f64tail:
	MOVQ R10, AX
	SUBQ R14, AX
	TESTQ AX, AX
	JLE  f64done

	VXORPD Y0, Y0, Y0
	VXORPD Y4, Y4, Y4
	LEAQ (BX)(R14*8), CX
	MOVQ SI, DX
	MOVQ DI, R15
	MOVQ R12, AX

f64tail_p:
	VBROADCASTSD (DX), Y12
	VBROADCASTSD (R15), Y13
	VMOVUPD (CX), Y8
	VMULPD Y8, Y12, Y14
	VADDPD Y14, Y0, Y0
	VMULPD Y8, Y13, Y14
	VADDPD Y14, Y4, Y4
	ADDQ $8, DX
	ADDQ $8, R15
	ADDQ R11, CX
	DECQ AX
	JNZ  f64tail_p

	VMULPD Y15, Y0, Y0
	VMULPD Y15, Y4, Y4
	MOVQ R10, AX
	SUBQ R14, AX
	CMPQ AX, $4
	JLT  f64tail_mask

	LEAQ (R8)(R14*8), CX
	VADDPD (CX), Y0, Y0
	VMOVUPD Y0, (CX)
	CMPQ R13, $2
	JLT  f64tail_next
	LEAQ (R9)(R14*8), CX
	VADDPD (CX), Y4, Y4
	VMOVUPD Y4, (CX)

f64tail_next:
	ADDQ $4, R14
	JMP  f64tail

f64tail_mask:
	MOVQ $4, CX
	SUBQ AX, CX
	SHLQ $3, CX
	LEAQ mask64tab<>(SB), DX
	VMOVDQU (DX)(CX*1), Y14
	LEAQ (R8)(R14*8), CX
	VMASKMOVPD (CX), Y14, Y8
	VADDPD Y8, Y0, Y0
	VMASKMOVPD Y0, Y14, (CX)
	CMPQ R13, $2
	JLT  f64done
	LEAQ (R9)(R14*8), CX
	VMASKMOVPD (CX), Y14, Y8
	VADDPD Y8, Y4, Y4
	VMASKMOVPD Y4, Y14, (CX)

f64done:
	VZEROUPPER
	RET

// func dotKern8(q, b *int8, ldb, n, kl int, out *int32)
//
// out[j] = Σ_{p<kl} q[p]·b[j*ldb+p], kl a multiple of 16 (the Go
// wrapper adds the scalar tail). 16 int8 sign-extend to int16 lanes,
// VPMADDWD pairs them into 8 exact int32 partials (|prod| ≤ 2·127²,
// far inside int16-pair range), VPADDD accumulates, horizontal sum.
TEXT ·dotKern8(SB), NOSPLIT, $0-48
	MOVQ q+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ ldb+16(FP), R11
	MOVQ n+24(FP), R10
	MOVQ kl+32(FP), R12
	MOVQ out+40(FP), R8
	XORQ R14, R14

i8rows:
	CMPQ R14, R10
	JGE  i8done
	VPXOR Y0, Y0, Y0
	MOVQ R14, AX
	IMULQ R11, AX
	LEAQ (BX)(AX*1), CX
	MOVQ SI, DX
	MOVQ R12, AX
	TESTQ AX, AX
	JZ   i8sum

i8inner:
	VPMOVSXBW (DX), Y8
	VPMOVSXBW (CX), Y9
	VPMADDWD Y8, Y9, Y10
	VPADDD Y10, Y0, Y0
	ADDQ $16, DX
	ADDQ $16, CX
	SUBQ $16, AX
	JNZ  i8inner

i8sum:
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x4e, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xb1, X0, X1
	VPADDD X1, X0, X0
	MOVL X0, AX
	MOVL AX, (R8)(R14*4)
	INCQ R14
	JMP  i8rows

i8done:
	VZEROUPPER
	RET
