package blas

import "knor/internal/telemetry"

// Kernel-dispatch counters: one bump per dgemmRange stripe (not per
// inner block — the label children are cached so the hot path is a
// single atomic add). `kernel` is go32/go64/asm32/asm64, so a scrape
// shows which implementation served the GEMM traffic.
var (
	telGemmDispatch = telemetry.Default.CounterVec(
		"knor_blas_gemm_dispatch_total",
		"GEMM row-stripe kernel dispatches by implementation.",
		"kernel")
	telGemmGo32  = telGemmDispatch.With("go32")
	telGemmGo64  = telGemmDispatch.With("go64")
	telGemmAsm32 = telGemmDispatch.With("asm32")
	telGemmAsm64 = telGemmDispatch.With("asm64")

	// telQuantScans counts int8 quantized scan calls (Gemm8 stripes).
	telQuantScans = telemetry.Default.Counter(
		"knor_blas_quant_scans_total",
		"Quantized int8 centroid-scan stripes executed.")
)
