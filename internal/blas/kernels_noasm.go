//go:build noasm || (!amd64 && !arm64)

package blas

// Pure-Go stand-ins for the assembly drivers on architectures without
// kernels (or under the noasm build tag). asmEnabled can never be set on
// these builds — no init flips asmSupported — so the bodies are
// unreachable through dispatch, but delegating keeps them honest if ever
// called directly (the differential tests do).

func dgemmBlockAsm32(alpha float32, a []float32, m, k int, b []float32, n int, c []float32, rlo, rhi int) {
	dgemmBlock32(alpha, a, m, k, b, n, c, rlo, rhi)
}

func dgemmBlockAsm64(alpha float64, a []float64, m, k int, b []float64, n int, c []float64, rlo, rhi int) {
	dgemmBlock(alpha, a, m, k, b, n, c, rlo, rhi)
}

func scanRowsI8Asm(q []int8, b []int8, n, d int, out []int32) {
	for j := 0; j < n; j++ {
		out[j] = scanRowI8(q, b[j*d:(j+1)*d])
	}
}
