package dist

import (
	"fmt"

	"knor/internal/blas"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/netcluster"
)

// The transport runner: one rank's share of the distributed iteration
// over a netcluster.Transport — the path knord takes when the M
// "machines" are real OS processes (or a netcluster.SimGroup in tests).
//
// Parity discipline, mirrored line for line from the simulated run():
// every rank computes the SAME global accumulator by allgathering all M
// per-rank deltas and folding them in fixed rank order 0..M-1 — the
// exact summation order of run()'s `for m { global.Merge(deltas[m]) }`
// loop — then applies it to identical centroids. Because each rank also
// holds every rank's iteration stats, the convergence decision is the
// same expression over the same values everywhere: the ranks never need
// a verdict broadcast and can never disagree about when to stop.

// RunTransport runs this rank's part of a distributed k-means over tr
// at the requested precision. Every rank must be given the identical
// data and cfg (the TCP bootstrap's config digest enforces this); the
// returned Result carries the converged centroids and per-iteration
// stats on every rank, and additionally the global assignments, sizes
// and SSE on rank 0 (assignments are gathered to the coordinator, which
// is the process that reports).
func RunTransport(tr netcluster.Transport, data *matrix.Dense, cfg Config, p kmeans.Precision) (*kmeans.Result, error) {
	if p == kmeans.Precision32 {
		return runTransport[float32](tr, data, cfg)
	}
	return runTransport[float64](tr, data, cfg)
}

func runTransport[T blas.Float](tr netcluster.Transport, data *matrix.Dense, cfg Config) (*kmeans.Result, error) {
	if data == nil || data.Rows() == 0 {
		return nil, fmt.Errorf("dist: empty dataset")
	}
	if err := cfg.validate(data.Rows()); err != nil {
		return nil, err
	}
	if cfg.Mode != ModeKnord {
		return nil, fmt.Errorf("dist: transport runner supports mode knord, not %v", cfg.Mode)
	}
	if cfg.Machines != tr.Size() {
		return nil, fmt.Errorf("dist: cfg.Machines=%d but transport has %d ranks", cfg.Machines, tr.Size())
	}
	kcfg, err := cfg.Kmeans.WithDefaults(data.Rows())
	if err != nil {
		return nil, err
	}

	// Precision conversion happens ONCE on the full float64 matrix —
	// exactly where kmeans.RunPrecision does it — so every downstream
	// value (normalisation, init, iteration) is computed in T arithmetic
	// and matches the single-process T oracle bit for bit.
	dataT := matrix.Convert[T](data)
	full := dataT
	if kcfg.Spherical {
		full = dataT.Clone()
		matrix.NormalizeRows(full)
	}

	// Initial centroids from the FULL dataset, as run() does: sharding
	// the init would make the result depend on the machine count.
	init := kmeans.InitCentroidsOf(full, kcfg)

	shardCfg := kcfg
	shardCfg.Init = kmeans.InitGiven
	shardCfg.Centroids = matrix.ToFloat64(init) // exact T→float64→T round-trip

	n, d, k := full.Rows(), full.Cols(), kcfg.K
	M, rank := tr.Size(), tr.Rank()
	shards := Partition(n, M)
	// The engine gets this rank's view of the RAW (un-normalised) rows
	// and normalises them itself on spherical runs — the identical
	// row-wise operation the oracle applies to the full matrix.
	eng, err := kmeans.NewEngine(ViewOf(shards[rank], dataT), shardCfg)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d (rows %d..%d): %w", rank, shards[rank].Lo, shards[rank].Hi, err)
	}

	elem := byte(blas.ElemBytes[T]())
	payloadBytes := kmeans.NewAccumOf[T](k, d).SerializedBytes()
	res := &kmeans.Result{}
	prevEnd := 0.0
	statsAll := make([]kmeans.IterStats, M)
	for iter := 0; iter < kcfg.MaxIters; iter++ {
		st, delta := eng.LocalPhase(iter)
		mine := encodeAccum(delta, st)
		blocks, err := netcluster.Allgather(tr, netcluster.FrameAccum, elem, uint32(iter), mine)
		if err != nil {
			return nil, fmt.Errorf("dist: iteration %d: %w", iter, err)
		}
		// Fixed-rank-order fold — the parity-critical line. Every rank
		// decodes every block (its own included, so all M inputs take
		// the identical encode→decode path) and merges 0..M-1.
		global := kmeans.NewAccumOf[T](k, d)
		for m := 0; m < M; m++ {
			dm, sm, err := decodeAccum[T](blocks[m], k, d)
			if err != nil {
				return nil, fmt.Errorf("dist: iteration %d, block from rank %d: %w", iter, m, err)
			}
			global.Merge(dm)
			statsAll[m] = sm
		}
		drift := eng.ApplyGlobal(global)

		agg := aggregateStats(statsAll)
		agg.Iter = iter
		agg.Drift = drift
		iterEnd := eng.Group().Max()
		agg.SimSeconds = iterEnd - prevEnd
		prevEnd = iterEnd
		res.PerIter = append(res.PerIter, agg)
		res.Iters = iter + 1
		// Identical inputs everywhere → identical verdict everywhere.
		if iter > 0 && (agg.RowsChanged == 0 || drift <= kcfg.Tol) {
			res.Converged = true
			break
		}
	}

	res.Centroids = matrix.ToFloat64(eng.Centroids())
	res.SimSeconds = prevEnd
	var total uint64
	for _, sh := range shards {
		total += uint64(sh.Rows()) * uint64(d) * uint64(elem)
		total += kmeans.StateBytes(sh.Rows(), d, k, kcfg.Threads, kcfg.Prune)
		total += 2 * uint64(payloadBytes)
	}
	res.MemoryBytes = total

	// Assignments gather to rank 0, which assembles the global vector
	// in shard order and computes sizes and the SSE over the full
	// (normalised) data — the same final step as run()'s finish().
	gathered, err := netcluster.Gather(tr, 0, netcluster.FrameGather, 0,
		uint32(kcfg.MaxIters), netcluster.AppendInt32s(nil, eng.Assign()))
	if err != nil {
		return nil, fmt.Errorf("dist: assignment gather: %w", err)
	}
	if rank == 0 {
		assign := make([]int32, n)
		for m, sh := range shards {
			if got, want := len(gathered[m]), sh.Rows()*4; got != want {
				return nil, fmt.Errorf("dist: rank %d gathered %d assignment bytes, want %d", m, got, want)
			}
			if _, err := netcluster.Int32sAt(gathered[m], 0, sh.Rows(), assign[sh.Lo:sh.Hi]); err != nil {
				return nil, fmt.Errorf("dist: rank %d assignments: %w", m, err)
			}
		}
		res.Assign = assign
		res.Sizes = make([]int, k)
		for _, a := range assign {
			if a >= 0 {
				res.Sizes[a]++
			}
		}
		res.SSE = kmeans.SSEOf(full, eng.Centroids(), assign)
	}
	return res, nil
}

// encodeAccum serialises one rank's iteration contribution: the delta
// accumulator (counts then exact sum bits) and the stat counters the
// cluster aggregates.
func encodeAccum[T blas.Float](a *kmeans.AccumOf[T], st kmeans.IterStats) []byte {
	b := netcluster.AppendUint32(nil, uint32(a.K))
	b = netcluster.AppendUint32(b, uint32(a.D))
	b = netcluster.AppendInt64s(b, a.Count)
	b = netcluster.AppendFloats(b, a.Sum)
	b = netcluster.AppendUint64(b, st.DistCalcs)
	b = netcluster.AppendUint64(b, st.PrunedC1)
	b = netcluster.AppendUint64(b, st.PrunedC2)
	b = netcluster.AppendUint64(b, st.PrunedC3)
	b = netcluster.AppendUint64(b, uint64(st.RowsChanged))
	b = netcluster.AppendUint64(b, uint64(st.ActiveRows))
	b = netcluster.AppendUint64(b, st.BytesWanted)
	b = netcluster.AppendUint64(b, st.BytesRead)
	b = netcluster.AppendUint64(b, st.RowCacheHits)
	return b
}

// decodeAccum is encodeAccum's inverse, validating the k×d shape
// against this rank's configuration (a shape disagreement means the
// cluster is running mixed configs).
func decodeAccum[T blas.Float](b []byte, k, d int) (*kmeans.AccumOf[T], kmeans.IterStats, error) {
	var st kmeans.IterStats
	gk, err := netcluster.Uint32At(b, 0)
	if err != nil {
		return nil, st, err
	}
	gd, err := netcluster.Uint32At(b, 4)
	if err != nil {
		return nil, st, err
	}
	if int(gk) != k || int(gd) != d {
		return nil, st, fmt.Errorf("dist: accumulator shape %dx%d, this rank runs %dx%d", gk, gd, k, d)
	}
	a := kmeans.NewAccumOf[T](k, d)
	off, err := netcluster.Int64sAt(b, 8, k, a.Count)
	if err != nil {
		return nil, st, err
	}
	off, err = netcluster.FloatsAt(b, off, k*d, a.Sum)
	if err != nil {
		return nil, st, err
	}
	us := make([]uint64, 9)
	for i := range us {
		if us[i], err = netcluster.Uint64At(b, off+8*i); err != nil {
			return nil, st, err
		}
	}
	st.DistCalcs, st.PrunedC1, st.PrunedC2, st.PrunedC3 = us[0], us[1], us[2], us[3]
	st.RowsChanged, st.ActiveRows = int(us[4]), int(us[5])
	st.BytesWanted, st.BytesRead, st.RowCacheHits = us[6], us[7], us[8]
	return a, st, nil
}
