package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/simclock"
	"knor/internal/workload"
)

func testData(n, d, clusters int, seed int64) *matrix.Dense {
	return workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: n, D: d,
		Clusters: clusters, Spread: 0.05, Seed: seed, Grouped: true,
	})
}

func baseCfg(k int) kmeans.Config {
	return kmeans.Config{
		K: k, MaxIters: 40, Init: kmeans.InitForgy, Seed: 5,
		Threads: 2, TaskSize: 64,
		Topo: numa.Topology{Nodes: 2, CoresPerNode: 4}, Sched: sched.NUMAAware,
	}
}

// requireOracleMatch asserts the distributed result reproduces the
// serial oracle: identical assignments and iteration count, centroids
// and SSE equal to within accumulation-order tolerance.
func requireOracleMatch(t *testing.T, serial, got *kmeans.Result, label string) {
	t.Helper()
	if got.Iters != serial.Iters {
		t.Fatalf("%s: iters %d vs serial %d", label, got.Iters, serial.Iters)
	}
	if len(got.Assign) != len(serial.Assign) {
		t.Fatalf("%s: assign length %d vs %d", label, len(got.Assign), len(serial.Assign))
	}
	for i := range serial.Assign {
		if serial.Assign[i] != got.Assign[i] {
			t.Fatalf("%s: row %d assigned %d, serial %d", label, i, got.Assign[i], serial.Assign[i])
		}
	}
	if !serial.Centroids.Equal(got.Centroids, 1e-9) {
		t.Fatalf("%s: centroids differ from serial oracle", label)
	}
	if rel := math.Abs(got.SSE-serial.SSE) / serial.SSE; rel > 1e-9 {
		t.Fatalf("%s: SSE %g vs serial %g (rel %g)", label, got.SSE, serial.SSE, rel)
	}
	for c := range serial.Sizes {
		if serial.Sizes[c] != got.Sizes[c] {
			t.Fatalf("%s: cluster %d size %d vs %d", label, c, got.Sizes[c], serial.Sizes[c])
		}
	}
}

// The acceptance-criteria test: knord reproduces the serial Lloyd's
// oracle for the same seed/init across machine counts.
func TestKnordMatchesSerialOracle(t *testing.T) {
	data := testData(1500, 8, 6, 11)
	serial, err := kmeans.RunSerial(data, baseCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, machines := range []int{1, 2, 3, 4} {
		res, err := Run(data, Config{Machines: machines, Mode: ModeKnord, Kmeans: baseCfg(6)})
		if err != nil {
			t.Fatalf("machines=%d: %v", machines, err)
		}
		requireOracleMatch(t, serial, res, "machines="+string(rune('0'+machines)))
	}
}

func TestKnordMatchesSerialWithPruning(t *testing.T) {
	data := testData(1200, 8, 5, 12)
	for _, prune := range []kmeans.Prune{kmeans.PruneNone, kmeans.PruneMTI, kmeans.PruneTI} {
		cfg := baseCfg(5)
		cfg.Prune = prune
		serial, err := kmeans.RunSerial(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, machines := range []int{2, 3} {
			res, err := Run(data, Config{Machines: machines, Mode: ModeKnord, Kmeans: cfg})
			if err != nil {
				t.Fatalf("prune=%v machines=%d: %v", prune, machines, err)
			}
			requireOracleMatch(t, serial, res, prune.String())
		}
	}
}

func TestAllModesAgreeNumerically(t *testing.T) {
	// MPI and MLlib differ from knord only in simulated cost; the
	// numerical result is mode-independent.
	data := testData(900, 6, 4, 13)
	cfg := baseCfg(4)
	serial, err := kmeans.RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeKnord, ModeMPI, ModeMLlib} {
		res, err := Run(data, Config{Machines: 3, Mode: mode, Kmeans: cfg, MLlibTaskOverhead: 1e-5})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		requireOracleMatch(t, serial, res, mode.String())
	}
}

func TestKnordSphericalMatchesSerial(t *testing.T) {
	data := testData(800, 8, 4, 14)
	cfg := baseCfg(4)
	cfg.Spherical = true
	serial, err := kmeans.RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{Machines: 3, Mode: ModeKnord, Kmeans: cfg})
	if err != nil {
		t.Fatal(err)
	}
	requireOracleMatch(t, serial, res, "spherical")
}

func TestKnordKMeansPPInit(t *testing.T) {
	// Data-dependent init must be computed on the full dataset, not per
	// shard — otherwise the result would depend on the machine count.
	data := testData(1000, 8, 5, 15)
	cfg := baseCfg(5)
	cfg.Init = kmeans.InitKMeansPP
	serial, err := kmeans.RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, machines := range []int{2, 4} {
		res, err := Run(data, Config{Machines: machines, Mode: ModeKnord, Kmeans: cfg})
		if err != nil {
			t.Fatal(err)
		}
		requireOracleMatch(t, serial, res, "kmeans++")
	}
}

func distTimingCfg(k int) kmeans.Config {
	cfg := baseCfg(k)
	cfg.MaxIters = 4
	cfg.Tol = -1 // force all iterations: timing comparisons need equal work
	cfg.Threads = 4
	cfg.TaskSize = 256
	cfg.Prune = kmeans.PruneMTI
	return cfg
}

func TestMLlibSlowerSimTimeThanKnord(t *testing.T) {
	// The satellite requirement: on the same workload, MLlib's
	// master-worker aggregation, dispatch and boxed rows cost more
	// simulated time than knord's decentralised ring.
	data := testData(8000, 16, 5, 16)
	cfg := distTimingCfg(5)
	knord, err := Run(data, Config{Machines: 4, Mode: ModeKnord, Kmeans: cfg})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := cfg
	mcfg.Prune = kmeans.PruneNone // MLlib does not prune
	mllib, err := Run(data, Config{Machines: 4, Mode: ModeMLlib, Kmeans: mcfg, MLlibTaskOverhead: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if mllib.SimSeconds <= knord.SimSeconds {
		t.Fatalf("MLlib (%g s) not slower than knord (%g s)", mllib.SimSeconds, knord.SimSeconds)
	}
}

func TestMPISlowerSimTimeThanKnord(t *testing.T) {
	// Figure 12's premise: same collectives, but the NUMA-oblivious
	// per-machine execution loses to the NUMA-aware engine.
	data := testData(8000, 16, 5, 17)
	cfg := distTimingCfg(5)
	knord, err := Run(data, Config{Machines: 4, Mode: ModeKnord, Kmeans: cfg})
	if err != nil {
		t.Fatal(err)
	}
	mpi, err := Run(data, Config{Machines: 4, Mode: ModeMPI, Kmeans: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if mpi.SimSeconds <= knord.SimSeconds {
		t.Fatalf("MPI (%g s) not slower than knord (%g s)", mpi.SimSeconds, knord.SimSeconds)
	}
}

func TestKnordScalesWithMachines(t *testing.T) {
	// Figure 11's premise: enough per-machine work that adding machines
	// shrinks simulated time-per-iteration. Like the knorbench harness,
	// the fixed network constants are scaled down with the dataset so
	// full-scale compute-to-latency ratios survive (figs_dist.go).
	data := testData(16000, 16, 5, 18)
	cfg := distTimingCfg(5)
	model := simclock.DefaultCostModel()
	model.NetLatency /= 1000
	model.NetSetup /= 1000
	model.BarrierCost /= 1000
	cfg.Model = model
	var prev float64
	for i, machines := range []int{1, 2, 4} {
		res, err := Run(data, Config{Machines: machines, Mode: ModeKnord, Kmeans: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.SimSeconds >= prev {
			t.Fatalf("machines=%d sim time %g not faster than %g", machines, res.SimSeconds, prev)
		}
		prev = res.SimSeconds
	}
}

func TestErrorPaths(t *testing.T) {
	data := testData(50, 4, 3, 19)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero machines", Config{Machines: 0, Kmeans: baseCfg(3)}, "Machines must be >= 1"},
		{"negative machines", Config{Machines: -2, Kmeans: baseCfg(3)}, "Machines must be >= 1"},
		{"machines exceed rows", Config{Machines: 51, Kmeans: baseCfg(3)}, "exceeds data rows"},
		{"unknown mode", Config{Machines: 2, Mode: Mode(42), Kmeans: baseCfg(3)}, "unknown mode"},
		{"negative overhead", Config{Machines: 2, Kmeans: baseCfg(3), MLlibTaskOverhead: -1}, "negative MLlibTaskOverhead"},
		{"bad k", Config{Machines: 2, Kmeans: kmeans.Config{K: 0}}, "K must be positive"},
		{"shard smaller than k", Config{Machines: 25, Kmeans: baseCfg(3)}, "machine 0"},
	}
	for _, tc := range cases {
		_, err := Run(data, tc.cfg)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := Run(nil, Config{Machines: 1, Kmeans: baseCfg(3)}); err == nil {
		t.Fatal("nil data: no error")
	}
	if _, err := Run(matrix.NewDense(0, 4), Config{Machines: 1, Kmeans: baseCfg(3)}); err == nil {
		t.Fatal("empty data: no error")
	}
}

func TestResultShapeAndStats(t *testing.T) {
	n := 1000
	data := testData(n, 8, 4, 20)
	cfg := baseCfg(4)
	cfg.Prune = kmeans.PruneMTI
	res, err := Run(data, Config{Machines: 3, Mode: ModeKnord, Kmeans: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != n || res.Centroids.Rows() != 4 {
		t.Fatalf("result shape: %d assigns, %d centroids", len(res.Assign), res.Centroids.Rows())
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != n {
		t.Fatalf("sizes sum to %d, want %d", total, n)
	}
	if res.SimSeconds <= 0 {
		t.Fatalf("SimSeconds %g", res.SimSeconds)
	}
	if res.MemoryBytes == 0 {
		t.Fatal("MemoryBytes zero")
	}
	if len(res.PerIter) != res.Iters {
		t.Fatalf("%d PerIter entries for %d iters", len(res.PerIter), res.Iters)
	}
	prevEnd := 0.0
	for _, st := range res.PerIter {
		if st.SimSeconds <= 0 {
			t.Fatalf("iter %d: sim time %g", st.Iter, st.SimSeconds)
		}
		if st.ActiveRows != n-int(st.PrunedC1) {
			t.Fatalf("iter %d: active=%d with C1=%d of n=%d", st.Iter, st.ActiveRows, st.PrunedC1, n)
		}
		prevEnd += st.SimSeconds
	}
	if math.Abs(prevEnd-res.SimSeconds) > 1e-9 {
		t.Fatalf("PerIter times sum to %g, total %g", prevEnd, res.SimSeconds)
	}
}

func TestMLlibMemoryInflated(t *testing.T) {
	data := testData(2000, 8, 4, 21)
	cfg := baseCfg(4)
	knord, err := Run(data, Config{Machines: 2, Mode: ModeKnord, Kmeans: cfg})
	if err != nil {
		t.Fatal(err)
	}
	mllib, err := Run(data, Config{Machines: 2, Mode: ModeMLlib, Kmeans: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if mllib.MemoryBytes <= knord.MemoryBytes {
		t.Fatalf("MLlib memory %d not above knord %d", mllib.MemoryBytes, knord.MemoryBytes)
	}
}

func TestModeString(t *testing.T) {
	for mode, want := range map[Mode]string{
		ModeKnord: "knord", ModeMPI: "mpi", ModeMLlib: "mllib", Mode(9): "Mode(9)",
	} {
		if got := mode.String(); got != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

// Property: knord equals the serial oracle for arbitrary small datasets
// and machine counts.
func TestKnordEqualsSerialProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, mRaw uint8) bool {
		k := int(kRaw)%4 + 2
		n := int(nRaw)%200 + 20*k // keep every shard at least k rows
		machines := int(mRaw)%4 + 1
		data := testData(n, 4, k, seed)
		cfg := baseCfg(k)
		cfg.Seed = seed
		cfg.MaxIters = 15
		serial, err := kmeans.RunSerial(data, cfg)
		if err != nil {
			return false
		}
		res, err := Run(data, Config{Machines: machines, Mode: ModeKnord, Kmeans: cfg})
		if err != nil {
			return false
		}
		if res.Iters != serial.Iters {
			return false
		}
		for i := range serial.Assign {
			if serial.Assign[i] != res.Assign[i] {
				return false
			}
		}
		return serial.Centroids.Equal(res.Centroids, 1e-9)
	}
	// Pinned RNG: the oracle comparison asserts exact assignment
	// equality between runs with different fp summation orders, so the
	// datasets tested must not vary across CI runs.
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Fatal(err)
	}
}
