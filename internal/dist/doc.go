// Package dist implements knord, the paper's distributed k-means
// module (Section 8.9, Figures 11-13): decentralised per-machine
// drivers — each a full NUMA-aware ||Lloyd's engine over a contiguous
// row shard — merged once per iteration by MPI-style collectives over a
// simulated cluster.
//
// The cluster is simulated the same way the NUMA machine and the SSD
// array are (see DESIGN.md's substitution table): data partitioning,
// assignments, membership deltas and convergence are computed for real,
// while NICs and switches are simclock Resources so the reported
// SimSeconds compose per-machine engine clocks with deterministic
// network transfer time.
//
// Three execution modes reproduce the paper's comparison:
//
//   - ModeKnord — the paper's design: NUMA-aware engines joined by a
//     bandwidth-optimal ring allreduce of the per-machine centroid
//     accumulators (k·d sums + k counts per machine, the payload
//     documented on kmeans.Accum.SerializedBytes).
//   - ModeMPI — the same decentralised collectives driving NUMA-
//     oblivious engines: the routine MPI port that lacks the paper's
//     intra-machine optimisations.
//   - ModeMLlib — a master-worker emulation of Spark MLlib's k-means:
//     per-task driver dispatch (Config.MLlibTaskOverhead), boxed-row
//     access costs, and a gather-to-driver + broadcast aggregation that
//     serialises every worker's payload through the master NIC — the
//     bottleneck that separates Figures 11-12's curves.
//
// Every mode is algorithmically exact: because initial centroids are
// drawn from the *full* dataset before sharding and each iteration
// applies the identical allreduced delta on every machine, knord's
// assignments and centroids reproduce the serial Lloyd's oracle for any
// machine count (the modes differ only in simulated cost).
package dist
