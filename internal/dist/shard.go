package dist

import (
	"knor/internal/blas"
	"knor/internal/matrix"
)

// Shard is one machine's contiguous row range [Lo, Hi) of the global
// matrix. Contiguity matters twice: shard-local row indices translate
// to global ones by a constant offset (so assignments concatenate in
// input order), and a shard is a zero-copy view into the global
// row-major storage.
type Shard struct {
	Lo, Hi int
}

// Rows returns the shard's row count.
func (s Shard) Rows() int { return s.Hi - s.Lo }

// Tasks returns how many row-block tasks of the given size the shard's
// engine schedules per iteration.
func (s Shard) Tasks(taskSize int) int {
	if taskSize <= 0 {
		return 0
	}
	return (s.Rows() + taskSize - 1) / taskSize
}

// View returns the shard's rows of m as a zero-copy Dense aliasing m's
// storage — the simulated analogue of each cluster machine loading its
// partition of the row-major input file.
func (s Shard) View(m *matrix.Dense) *matrix.Dense {
	return ViewOf(s, m)
}

// ViewOf is View generic over the element type (the transport runner's
// float32 shards).
func ViewOf[T blas.Float](s Shard, m *matrix.Mat[T]) *matrix.Mat[T] {
	d := m.Cols()
	return &matrix.Mat[T]{
		RowsN: s.Rows(),
		ColsN: d,
		Data:  m.Data[s.Lo*d : s.Hi*d],
	}
}

// Partition splits n rows across machines as evenly as contiguous
// ranges allow: every shard gets n/machines rows and the first
// n%machines shards one extra, so shard sizes differ by at most one row
// (the static balance knord's row-partitioned design relies on; dynamic
// rebalance across machines is future work, cf. hp-adaptive FEM load
// balancing). Panics if machines exceeds n or either is non-positive —
// Config.validate rejects both before Run gets here.
func Partition(n, machines int) []Shard {
	if machines < 1 || n < machines {
		panic("dist: Partition needs 1 <= machines <= n")
	}
	shards := make([]Shard, machines)
	base := n / machines
	extra := n % machines
	lo := 0
	for m := range shards {
		hi := lo + base
		if m < extra {
			hi++
		}
		shards[m] = Shard{Lo: lo, Hi: hi}
		lo = hi
	}
	return shards
}
