package dist

// The collectives layer: how each mode moves the per-machine delta
// accumulators (kmeans.Accum.SerializedBytes per machine) across the
// simulated cluster once per iteration, and what it costs.
//
// The *value* of the reduction is always the fixed-machine-order sum
// computed in run() — collectives here only advance simulated time, so
// the numerical result is independent of the algorithm being costed.
//
// Costs, with M machines, payload B, latency α, bandwidth β⁻¹:
//
//	ring allreduce (knord, MPI):
//	    setup + 2(M-1) · (α + B/(M·β))            — decentralised,
//	    per-NIC traffic 2B(M-1)/M, flat in M for the B term
//	driver aggregation (MLlib):
//	    setup per collective (gather + broadcast), serialize(B) per
//	    worker, then M-1 transfers of B queued through the master NIC,
//	    the driver-side merge, and a binomial broadcast of the new
//	    model — per-NIC traffic at the master grows linearly with M,
//	    the Figure 12 bottleneck.

// collective runs the configured iteration-merge over the network,
// composing the machine engine clocks with the interconnect: machine
// clocks are first synced into the cluster view, the collective
// advances them through the NICs, and the result is pushed back into
// every engine's worker clocks.
func (c *clusterState) collective() {
	c.syncNetClocks()
	switch c.cfg.Mode {
	case ModeKnord, ModeMPI:
		c.net.RingAllreduce(c.payload)
	case ModeMLlib:
		c.driverAggregate()
	}
	c.pushNetClocks()
}

// driverAggregate is MLlib's master-worker merge: every executor
// serialises its partial sums and ships them to the driver (machine 0),
// queueing through the driver's NIC; the driver deserialises and folds
// the M-1 payloads serially, then broadcasts the new model. Workers
// deserialise the broadcast before resuming.
func (c *clusterState) driverAggregate() {
	model := c.kcfg.Model
	ser := float64(c.payload) * model.SerializeByteCost
	// Collective setup is paid once per collective — the gather here
	// and the broadcast below — matching the ring's accounting, plus
	// executor-side serialisation before the send leaves.
	for m := 1; m < c.cfg.Machines; m++ {
		c.net.Clock(m).Advance(model.NetSetup + ser)
	}
	c.net.Gather(0, c.payload)
	// Driver-side deserialise + merge of each arriving payload, plus
	// one model rebuild: serial work on the driver's clock. flops are
	// one add per sum/count slot per merged payload.
	flops := float64(c.payload) / 8 * model.FlopTime
	c.net.Clock(0).Advance(float64(c.cfg.Machines-1)*(ser+flops) + model.NetSetup)
	c.net.Bcast(0, c.payload)
	// Every worker unpacks the broadcast model.
	for m := 0; m < c.cfg.Machines; m++ {
		c.net.Clock(m).Advance(ser)
	}
}
