package dist

import (
	"testing"
	"testing/quick"

	"knor/internal/matrix"
)

func TestPartitionBalanced(t *testing.T) {
	for _, tc := range []struct {
		n, machines int
	}{
		{10, 1}, {10, 2}, {10, 3}, {11, 4}, {7, 7}, {1000, 16},
	} {
		shards := Partition(tc.n, tc.machines)
		if len(shards) != tc.machines {
			t.Fatalf("n=%d m=%d: %d shards", tc.n, tc.machines, len(shards))
		}
		lo, min, max := 0, tc.n, 0
		for _, s := range shards {
			if s.Lo != lo {
				t.Fatalf("n=%d m=%d: shard starts at %d, want %d", tc.n, tc.machines, s.Lo, lo)
			}
			if s.Rows() < 1 {
				t.Fatalf("n=%d m=%d: empty shard", tc.n, tc.machines)
			}
			if s.Rows() < min {
				min = s.Rows()
			}
			if s.Rows() > max {
				max = s.Rows()
			}
			lo = s.Hi
		}
		if lo != tc.n {
			t.Fatalf("n=%d m=%d: shards cover %d rows", tc.n, tc.machines, lo)
		}
		if max-min > 1 {
			t.Fatalf("n=%d m=%d: imbalance %d vs %d rows", tc.n, tc.machines, min, max)
		}
	}
}

func TestPartitionPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct{ n, machines int }{{5, 6}, {5, 0}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Partition(%d, %d) did not panic", tc.n, tc.machines)
				}
			}()
			Partition(tc.n, tc.machines)
		}()
	}
}

func TestShardViewAliasesStorage(t *testing.T) {
	m := matrix.NewDense(6, 3)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	sh := Shard{Lo: 2, Hi: 5}
	v := sh.View(m)
	if v.Rows() != 3 || v.Cols() != 3 {
		t.Fatalf("view shape %dx%d", v.Rows(), v.Cols())
	}
	if v.At(0, 1) != m.At(2, 1) {
		t.Fatalf("view row 0 = %v, want global row 2", v.Row(0))
	}
	// Zero copy: writes through the view land in the global matrix.
	v.Set(1, 2, -1)
	if m.At(3, 2) != -1 {
		t.Fatal("view does not alias the global storage")
	}
}

func TestShardTasks(t *testing.T) {
	sh := Shard{Lo: 0, Hi: 1000}
	if got := sh.Tasks(256); got != 4 {
		t.Fatalf("Tasks(256) = %d", got)
	}
	if got := sh.Tasks(1000); got != 1 {
		t.Fatalf("Tasks(1000) = %d", got)
	}
	if got := sh.Tasks(0); got != 0 {
		t.Fatalf("Tasks(0) = %d", got)
	}
}

// Property: any valid (n, machines) pair partitions into contiguous,
// non-empty, balanced shards covering exactly [0, n).
func TestPartitionProperty(t *testing.T) {
	f := func(nRaw uint16, mRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		machines := int(mRaw)%n + 1
		shards := Partition(n, machines)
		lo := 0
		for _, s := range shards {
			if s.Lo != lo || s.Rows() < n/machines || s.Rows() > n/machines+1 {
				return false
			}
			lo = s.Hi
		}
		return lo == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
