package dist

import (
	"math"
	"sync"
	"testing"
	"time"

	"knor/internal/cluster"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/netcluster"
	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/simclock"
)

// parityCfg pins Threads to 1: with multiple threads, rows land in
// whichever thread's accumulator claimed their task, so the low bits
// of the float sums vary run to run. One thread per machine makes
// every path bit-deterministic, which is what the sim-vs-real parity
// acceptance compares. (Assignments and iteration counts are
// deterministic at any thread count; only sum bits are not.)
func parityCfg(k int) kmeans.Config {
	return kmeans.Config{
		K: k, MaxIters: 40, Init: kmeans.InitForgy, Seed: 5,
		Threads: 1, TaskSize: 64,
		Topo: numa.Topology{Nodes: 2, CoresPerNode: 4}, Sched: sched.NUMAAware,
	}
}

// runRanks drives RunTransport on every rank concurrently and returns
// the per-rank results.
func runRanks(t *testing.T, ts []netcluster.Transport, data *matrix.Dense, cfg Config, p kmeans.Precision) []*kmeans.Result {
	t.Helper()
	out := make([]*kmeans.Result, len(ts))
	errs := make([]error, len(ts))
	var wg sync.WaitGroup
	for r, tr := range ts {
		wg.Add(1)
		go func(r int, tr netcluster.Transport) {
			defer wg.Done()
			out[r], errs[r] = RunTransport(tr, data, cfg, p)
		}(r, tr)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return out
}

// simTransports builds an M-rank simulated transport group.
func simTransports(t *testing.T, m int) []netcluster.Transport {
	t.Helper()
	g := netcluster.NewSimGroup(cluster.New(m, simclock.DefaultCostModel()))
	t.Cleanup(func() { g.Close() })
	ts := make([]netcluster.Transport, m)
	for r := 0; r < m; r++ {
		ts[r] = g.Transport(r)
	}
	return ts
}

// tcpTransports bootstraps an M-rank real-socket mesh on loopback,
// in-process (the OS-process variant is exercised by cluster-smoke).
func tcpTransports(t *testing.T, m int) []netcluster.Transport {
	t.Helper()
	ts := make([]netcluster.Transport, m)
	errs := make([]error, m)
	ln, err := netcluster.ListenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	coordAddr := ln.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := netcluster.TCPOptions{
				Listen: "127.0.0.1:0", Join: coordAddr, Digest: "dist-test",
				BootstrapTimeout: 20 * time.Second,
			}
			if i == 0 {
				opts.Join, opts.Machines, opts.Listener = "", m, ln
			}
			tr, err := netcluster.DialCluster(opts)
			if err != nil {
				errs[i] = err
				return
			}
			ts[tr.Rank()] = tr
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return ts
}

// requireBitIdentical asserts two results agree to the last bit on
// everything the cluster acceptance compares: centroids, assignments,
// sizes, SSE, iteration count.
func requireBitIdentical(t *testing.T, want, got *kmeans.Result, label string) {
	t.Helper()
	if got.Iters != want.Iters || got.Converged != want.Converged {
		t.Fatalf("%s: iters/converged %d/%v vs %d/%v", label, got.Iters, got.Converged, want.Iters, want.Converged)
	}
	for i := range want.Centroids.Data {
		if math.Float64bits(want.Centroids.Data[i]) != math.Float64bits(got.Centroids.Data[i]) {
			t.Fatalf("%s: centroid element %d differs in bits: %x vs %x",
				label, i, got.Centroids.Data[i], want.Centroids.Data[i])
		}
	}
	if len(want.Assign) != len(got.Assign) {
		t.Fatalf("%s: assign length %d vs %d", label, len(got.Assign), len(want.Assign))
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			t.Fatalf("%s: row %d assigned %d vs %d", label, i, got.Assign[i], want.Assign[i])
		}
	}
	if math.Float64bits(want.SSE) != math.Float64bits(got.SSE) {
		t.Fatalf("%s: SSE bits differ: %.17g vs %.17g", label, got.SSE, want.SSE)
	}
}

// TestTransportParity is the tentpole acceptance in test form: at both
// precisions and several cluster sizes, the transport runner over real
// TCP sockets is bit-identical to the same runner over the simulated
// transport, and (at float64) to the legacy simulated dist.Run path.
func TestTransportParity(t *testing.T) {
	data := testData(900, 6, 5, 21)
	for _, m := range []int{1, 2, 3} {
		cfg := Config{Machines: m, Mode: ModeKnord, Kmeans: parityCfg(5)}
		for _, p := range []kmeans.Precision{kmeans.Precision64, kmeans.Precision32} {
			sim := runRanks(t, simTransports(t, m), data, cfg, p)
			tcp := runRanks(t, tcpTransports(t, m), data, cfg, p)
			label := "m=" + p.String()
			requireBitIdentical(t, sim[0], tcp[0], label+" tcp-vs-simgroup")
			// Every rank agrees on centroids/iters; only rank 0 carries
			// the gathered assignments.
			for r := 1; r < m; r++ {
				if tcp[r].Iters != tcp[0].Iters || tcp[r].Converged != tcp[0].Converged {
					t.Fatalf("%s: rank %d verdict diverged", label, r)
				}
				for i := range tcp[0].Centroids.Data {
					if math.Float64bits(tcp[r].Centroids.Data[i]) != math.Float64bits(tcp[0].Centroids.Data[i]) {
						t.Fatalf("%s: rank %d centroids diverged", label, r)
					}
				}
			}
			if p == kmeans.Precision64 {
				legacy, err := Run(data, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, legacy, tcp[0], label+" tcp-vs-legacy-sim")
			}
		}
	}
}

// TestTransportParitySpherical: the spherical (normalise-rows) variant
// keeps the same sim-vs-real bit identity — the engines normalise
// their own raw shards on every path.
func TestTransportParitySpherical(t *testing.T) {
	data := testData(600, 8, 4, 31)
	kcfg := parityCfg(4)
	kcfg.Spherical = true
	cfg := Config{Machines: 3, Mode: ModeKnord, Kmeans: kcfg}
	for _, p := range []kmeans.Precision{kmeans.Precision64, kmeans.Precision32} {
		sim := runRanks(t, simTransports(t, 3), data, cfg, p)
		tcp := runRanks(t, tcpTransports(t, 3), data, cfg, p)
		requireBitIdentical(t, sim[0], tcp[0], "spherical p="+p.String())
		if p == kmeans.Precision64 {
			legacy, err := Run(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, legacy, tcp[0], "spherical legacy p=64")
		}
	}
}

// TestTransportMatchesSingleEngine: a one-rank transport run is the
// single-process engine at both precisions, bit for bit.
func TestTransportMatchesSingleEngine(t *testing.T) {
	data := testData(700, 6, 4, 41)
	cfg := Config{Machines: 1, Mode: ModeKnord, Kmeans: parityCfg(4)}
	for _, p := range []kmeans.Precision{kmeans.Precision64, kmeans.Precision32} {
		single, err := kmeans.RunPrecision(data, cfg.Kmeans, p)
		if err != nil {
			t.Fatal(err)
		}
		got := runRanks(t, simTransports(t, 1), data, cfg, p)
		requireBitIdentical(t, single, got[0], "single p="+p.String())
	}
}

// TestTransportOracleTolerance: across machine counts the transport
// runner stays within accumulation-order tolerance of the serial
// oracle (bit identity across DIFFERENT machine counts is impossible
// for float sums; this bounds the drift).
func TestTransportOracleTolerance(t *testing.T) {
	data := testData(900, 6, 5, 21)
	serial, err := kmeans.RunSerial(data, parityCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 3} {
		cfg := Config{Machines: m, Mode: ModeKnord, Kmeans: parityCfg(5)}
		got := runRanks(t, simTransports(t, m), data, cfg, kmeans.Precision64)
		requireOracleMatch(t, serial, got[0], "transport m>1")
	}
}

// TestTransportRejectsMismatch: config errors surface as errors, not
// hangs or garbage.
func TestTransportRejectsMismatch(t *testing.T) {
	data := testData(100, 4, 2, 7)
	ts := simTransports(t, 2)
	cfg := Config{Machines: 3, Mode: ModeKnord, Kmeans: parityCfg(2)}
	if _, err := RunTransport(ts[0], data, cfg, kmeans.Precision64); err == nil {
		t.Fatal("machine-count mismatch should error")
	}
	cfg.Machines = 2
	cfg.Mode = ModeMLlib
	if _, err := RunTransport(ts[0], data, cfg, kmeans.Precision64); err == nil {
		t.Fatal("non-knord mode should error")
	}
}
