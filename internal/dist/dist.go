package dist

import (
	"fmt"
	"sync"

	"knor/internal/cluster"
	"knor/internal/frameworks"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
)

// Mode selects the distributed execution strategy (Section 8.9).
type Mode int

const (
	// ModeKnord is the paper's design: NUMA-aware per-machine engines
	// merged by a decentralised ring allreduce.
	ModeKnord Mode = iota
	// ModeMPI is the routine MPI port: the same collectives over
	// NUMA-oblivious engines.
	ModeMPI
	// ModeMLlib emulates Spark MLlib's master-worker execution: serial
	// task dispatch, boxed rows, gather-to-driver aggregation.
	ModeMLlib
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeKnord:
		return "knord"
	case ModeMPI:
		return "mpi"
	case ModeMLlib:
		return "mllib"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls a distributed run.
type Config struct {
	// Machines is the simulated cluster size.
	Machines int
	// Mode selects the execution strategy.
	Mode Mode
	// Kmeans configures each machine's engine; Threads and Topo are per
	// machine, so the cluster runs Machines×Threads workers in total.
	Kmeans kmeans.Config
	// MLlibTaskOverhead is the serial driver-side cost of dispatching
	// one partition task (seconds), paid every iteration in ModeMLlib
	// through the master NIC. Zero disables dispatch accounting.
	MLlibTaskOverhead float64
}

// validate checks the cluster-level configuration against n data rows.
func (c Config) validate(n int) error {
	if c.Machines < 1 {
		return fmt.Errorf("dist: Machines must be >= 1, got %d", c.Machines)
	}
	if c.Machines > n {
		return fmt.Errorf("dist: Machines=%d exceeds data rows=%d", c.Machines, n)
	}
	switch c.Mode {
	case ModeKnord, ModeMPI, ModeMLlib:
	default:
		return fmt.Errorf("dist: unknown mode %d", int(c.Mode))
	}
	if c.MLlibTaskOverhead < 0 {
		return fmt.Errorf("dist: negative MLlibTaskOverhead %g", c.MLlibTaskOverhead)
	}
	return nil
}

// Run executes the distributed module over the simulated cluster and
// returns an aggregate Result: global assignments in input row order,
// the converged centroids, cluster-wide per-iteration stats, and the
// total memory footprint summed across machines.
func Run(data *matrix.Dense, cfg Config) (*kmeans.Result, error) {
	if data == nil || data.Rows() == 0 {
		return nil, fmt.Errorf("dist: empty dataset")
	}
	if err := cfg.validate(data.Rows()); err != nil {
		return nil, err
	}
	kcfg, err := cfg.Kmeans.WithDefaults(data.Rows())
	if err != nil {
		return nil, err
	}

	// Spherical runs normalise a global copy exactly as the serial
	// oracle does: the init and the SSE are computed on it, while each
	// shard engine normalises its own raw rows (the identical row-wise
	// operation, so shard rows match the oracle's bit for bit).
	full := data
	if kcfg.Spherical {
		full = data.Clone()
		matrix.NormalizeRows(full)
	}

	// Initial centroids come from the FULL dataset — the one global
	// step of the paper's design (the root scatters the seed centroids
	// before iteration 0). Sharding the init instead would make the
	// result depend on the machine count.
	init := kmeans.InitCentroidsFor(full, kcfg)

	c, err := newClusterState(data, full, cfg, kcfg, init)
	if err != nil {
		return nil, err
	}
	return c.run()
}

// clusterState is one distributed run: the shards, the per-machine
// engines and the simulated interconnect.
type clusterState struct {
	cfg  Config
	kcfg kmeans.Config // validated, with defaults

	data   *matrix.Dense // full (normalised if spherical) matrix
	shards []Shard
	engs   []*kmeans.Engine
	net    *cluster.Network

	payload    int // allreduce bytes per machine (accum wire size)
	totalTasks int // cluster-wide task count, for MLlib dispatch
}

func newClusterState(raw, full *matrix.Dense, cfg Config, kcfg kmeans.Config, init *matrix.Dense) (*clusterState, error) {
	n, d := full.Rows(), full.Cols()

	// All machines start from identical given centroids; the per-shard
	// engines must not re-run the (data-dependent) init method. On
	// spherical runs the engine normalises the given centroids itself,
	// matching the oracle's post-init normalise, so `init` is passed
	// un-normalised.
	shardCfg := kcfg
	shardCfg.Init = kmeans.InitGiven
	shardCfg.Centroids = init
	switch cfg.Mode {
	case ModeKnord:
		// The paper's engine, as configured by the caller.
	case ModeMPI:
		// A routine MPI port runs unpinned processes over first-touch
		// allocation: the NUMA-oblivious baseline inside each machine.
		shardCfg.NUMAOblivious = true
		shardCfg.Placement = numa.PlaceSingleBank
		shardCfg.Sched = sched.FIFO
	case ModeMLlib:
		// Spark executors: JVM rows, no pinning, FIFO task queues. The
		// boxed-row cost reuses the Figure 9 calibration so single-node
		// and distributed MLlib emulations agree.
		p := frameworks.ProfileOf(frameworks.MLlib)
		shardCfg.NUMAOblivious = true
		shardCfg.Placement = numa.PlaceSingleBank
		shardCfg.Sched = sched.FIFO
		shardCfg.Model.RowOverhead += p.RowOverhead
	}

	c := &clusterState{
		cfg:    cfg,
		kcfg:   kcfg,
		data:   full,
		shards: Partition(n, cfg.Machines),
		net:    cluster.New(cfg.Machines, kcfg.Model),
	}
	c.payload = kmeans.NewAccum(kcfg.K, d).SerializedBytes()
	c.engs = make([]*kmeans.Engine, cfg.Machines)
	for m, sh := range c.shards {
		eng, err := kmeans.NewEngine(sh.View(raw), shardCfg)
		if err != nil {
			return nil, fmt.Errorf("dist: machine %d (rows %d..%d): %w", m, sh.Lo, sh.Hi, err)
		}
		c.engs[m] = eng
		c.totalTasks += sh.Tasks(kcfg.TaskSize)
	}
	return c, nil
}

// run drives the decentralised iteration loop: per-machine local
// super-phases in (real) parallel, one collective, then the identical
// global apply on every machine.
func (c *clusterState) run() (*kmeans.Result, error) {
	M := c.cfg.Machines
	k, d := c.kcfg.K, c.data.Cols()
	res := &kmeans.Result{}
	prevEnd := 0.0

	stats := make([]kmeans.IterStats, M)
	deltas := make([]*kmeans.Accum, M)
	for iter := 0; iter < c.kcfg.MaxIters; iter++ {
		// MLlib's driver serially ships every partition task before the
		// executors can start computing (Figure 12's per-task cost).
		if c.cfg.Mode == ModeMLlib && c.cfg.MLlibTaskOverhead > 0 {
			c.syncNetClocks()
			c.net.MasterDispatch(0, c.totalTasks, c.cfg.MLlibTaskOverhead)
			c.pushNetClocks()
		}

		// Local super-phase on every machine. The machines are
		// independent until the collective, so they run on real
		// goroutines; determinism holds because no state is shared.
		var wg sync.WaitGroup
		for m := 0; m < M; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				stats[m], deltas[m] = c.engs[m].LocalPhase(iter)
			}(m)
		}
		wg.Wait()

		// The collective's *value* is reduced in fixed machine order so
		// the numerical result never depends on the simulated algorithm
		// (ring vs gather) or on machine arrival times.
		global := kmeans.NewAccum(k, d)
		for m := 0; m < M; m++ {
			global.Merge(deltas[m])
		}
		c.collective()

		// Identical apply everywhere: same delta into the same sums
		// gives every machine bit-identical next centroids — no
		// broadcast of centroids is needed beyond the collective above.
		var drift float64
		changed := 0
		for m := 0; m < M; m++ {
			drift = c.engs[m].ApplyGlobal(global)
			changed += stats[m].RowsChanged
		}

		st := aggregateStats(stats)
		st.Iter = iter
		st.Drift = drift
		iterEnd := c.maxEngineClock()
		st.SimSeconds = iterEnd - prevEnd
		prevEnd = iterEnd
		res.PerIter = append(res.PerIter, st)
		res.Iters = iter + 1
		if iter > 0 && (changed == 0 || drift <= c.kcfg.Tol) {
			res.Converged = true
			break
		}
	}
	c.finish(res, prevEnd)
	return res, nil
}

// finish assembles the aggregate result from the machine engines.
func (c *clusterState) finish(res *kmeans.Result, end float64) {
	n := c.data.Rows()
	assign := make([]int32, n)
	for m, sh := range c.shards {
		copy(assign[sh.Lo:sh.Hi], c.engs[m].Assign())
	}
	cents := c.engs[0].Centroids()
	res.Centroids = cents
	res.Assign = assign
	res.Sizes = make([]int, c.kcfg.K)
	for _, a := range assign {
		if a >= 0 {
			res.Sizes[a]++
		}
	}
	res.SSE = kmeans.SSEOf(c.data, cents, assign)
	res.SimSeconds = end
	res.MemoryBytes = c.memoryBytes()
}

// syncNetClocks advances every machine's network clock to its engine's
// latest worker time, so collectives start when computation finished.
func (c *clusterState) syncNetClocks() {
	for m := range c.engs {
		c.net.Clock(m).AdvanceTo(c.engs[m].Group().Max())
	}
}

// pushNetClocks pushes the post-collective network time back into
// every engine's worker clocks — the inverse of syncNetClocks, so the
// clock-composition rule lives in exactly one pair of helpers.
func (c *clusterState) pushNetClocks() {
	for m := range c.engs {
		c.engs[m].Group().ResetAll(c.net.Clock(m).Now())
	}
}

// maxEngineClock returns the cluster-wide latest simulated time.
func (c *clusterState) maxEngineClock() float64 {
	mx := 0.0
	for _, e := range c.engs {
		if t := e.Group().Max(); t > mx {
			mx = t
		}
	}
	return mx
}

// aggregateStats sums per-machine iteration stats into cluster totals.
func aggregateStats(stats []kmeans.IterStats) kmeans.IterStats {
	var st kmeans.IterStats
	for i := range stats {
		st.DistCalcs += stats[i].DistCalcs
		st.PrunedC1 += stats[i].PrunedC1
		st.PrunedC2 += stats[i].PrunedC2
		st.PrunedC3 += stats[i].PrunedC3
		st.RowsChanged += stats[i].RowsChanged
		st.ActiveRows += stats[i].ActiveRows
		st.BytesWanted += stats[i].BytesWanted
		st.BytesRead += stats[i].BytesRead
		st.RowCacheHits += stats[i].RowCacheHits
	}
	return st
}

// memoryBytes is the aggregate cluster footprint: every machine holds
// its shard, its engine state, and the two collective buffers (send +
// receive). MLlib additionally inflates the data representation by the
// Figure 9 memory factor.
func (c *clusterState) memoryBytes() uint64 {
	d := c.data.Cols()
	dataFactor := 1.0
	if c.cfg.Mode == ModeMLlib {
		dataFactor = frameworks.ProfileOf(frameworks.MLlib).MemFactor
	}
	var total uint64
	for _, sh := range c.shards {
		rows := sh.Hi - sh.Lo
		total += uint64(float64(rows) * float64(d) * 8 * dataFactor)
		total += kmeans.StateBytes(rows, d, c.kcfg.K, c.kcfg.Threads, c.kcfg.Prune)
		total += 2 * uint64(c.payload)
	}
	return total
}
