package sched

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestMakeTasks(t *testing.T) {
	tasks := MakeTasks(100, 30, nil)
	if len(tasks) != 4 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[3].Lo != 90 || tasks[3].Hi != 100 || tasks[3].Rows() != 10 {
		t.Fatalf("last task %+v", tasks[3])
	}
	total := 0
	for i, tk := range tasks {
		if tk.ID != i {
			t.Fatalf("task %d has ID %d", i, tk.ID)
		}
		total += tk.Rows()
	}
	if total != 100 {
		t.Fatalf("rows covered = %d", total)
	}
	if len(MakeTasks(0, 10, nil)) != 0 {
		t.Fatal("zero rows produced tasks")
	}
}

func TestMakeTasksNodeLabels(t *testing.T) {
	tasks := MakeTasks(40, 10, func(row int) int { return row / 20 })
	if tasks[0].Node != 0 || tasks[3].Node != 1 {
		t.Fatalf("node labels %+v", tasks)
	}
}

func TestMakeTasksBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MakeTasks(10, 0, nil)
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || FIFO.String() != "fifo" || NUMAAware.String() != "numa-aware" {
		t.Fatal("Policy.String mismatch")
	}
}

// drainAll runs `workers` goroutines pulling tasks until exhaustion and
// returns the multiset of task IDs each worker received.
func drainAll(s Scheduler, workers int) [][]int {
	got := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				task, ok := s.Next(w)
				if !ok {
					return
				}
				got[w] = append(got[w], task.ID)
			}
		}(w)
	}
	wg.Wait()
	return got
}

func checkExactlyOnce(t *testing.T, got [][]int, nTasks int) {
	t.Helper()
	var all []int
	for _, g := range got {
		all = append(all, g...)
	}
	if len(all) != nTasks {
		t.Fatalf("delivered %d tasks, want %d", len(all), nTasks)
	}
	sort.Ints(all)
	for i, id := range all {
		if id != i {
			t.Fatalf("task IDs not exactly-once: %v...", all[:i+1])
		}
	}
}

func TestExactlyOnceAllPolicies(t *testing.T) {
	nodeOf := func(w int) int { return w / 2 }
	for _, p := range []Policy{Static, FIFO, NUMAAware} {
		tasks := MakeTasks(1000, 7, func(row int) int { return (row / 250) % 4 })
		s := New(p, 4, nodeOf)
		s.Reset(tasks)
		got := drainAll(s, 4)
		checkExactlyOnce(t, got, len(tasks))
	}
}

func TestStaticAssignmentIsContiguousAndFixed(t *testing.T) {
	tasks := MakeTasks(80, 10, nil) // 8 tasks
	s := New(Static, 4, nil)
	s.Reset(tasks)
	// Serial drain per worker: static gives worker w tasks 2w, 2w+1.
	for w := 0; w < 4; w++ {
		for j := 0; j < 2; j++ {
			task, ok := s.Next(w)
			if !ok || task.ID != 2*w+j {
				t.Fatalf("worker %d got %+v ok=%v, want ID %d", w, task, ok, 2*w+j)
			}
		}
		if _, ok := s.Next(w); ok {
			t.Fatalf("worker %d had extra task", w)
		}
	}
}

func TestStaticNoStealing(t *testing.T) {
	tasks := MakeTasks(40, 10, nil) // 4 tasks
	s := New(Static, 4, nil)
	s.Reset(tasks)
	// Worker 3 takes its own task then stops even though others remain.
	if _, ok := s.Next(3); !ok {
		t.Fatal("worker 3 had no task")
	}
	if _, ok := s.Next(3); ok {
		t.Fatal("static scheduler allowed stealing")
	}
	if _, ok := s.Next(0); !ok {
		t.Fatal("worker 0's task was stolen")
	}
}

func TestFIFOSteals(t *testing.T) {
	tasks := MakeTasks(40, 10, nil)
	s := New(FIFO, 4, nil)
	s.Reset(tasks)
	// One worker can drain everything.
	count := 0
	for {
		if _, ok := s.Next(2); !ok {
			break
		}
		count++
	}
	if count != 4 {
		t.Fatalf("worker drained %d of 4 tasks", count)
	}
}

func TestNUMAAwarePrefersLocal(t *testing.T) {
	// 2 nodes, 2 workers per node. Tasks alternate nodes. The first
	// tasks a worker pulls must live on its own node.
	workerNode := func(w int) int { return w / 2 }
	tasks := MakeTasks(400, 10, func(row int) int { return (row / 10) % 2 })
	s := New(NUMAAware, 4, workerNode)
	s.Reset(tasks)
	for w := 0; w < 4; w++ {
		task, ok := s.Next(w)
		if !ok {
			t.Fatalf("worker %d starved", w)
		}
		if task.Node != workerNode(w) {
			t.Fatalf("worker %d (node %d) first task on node %d", w, workerNode(w), task.Node)
		}
	}
}

func TestNUMAAwareStealsLocalFirst(t *testing.T) {
	// Node 0 has workers 0,1; node 1 has workers 2,3. All tasks on
	// node 0. Worker 1's steals should come from worker 0's partition
	// (same node) and remain node-0 tasks.
	workerNode := func(w int) int { return w / 2 }
	tasks := MakeTasks(100, 10, func(int) int { return 0 })
	s := New(NUMAAware, 4, workerNode)
	s.Reset(tasks)
	seen := 0
	for {
		task, ok := s.Next(1)
		if !ok {
			break
		}
		if task.Node != 0 {
			t.Fatalf("node-0 worker got node-%d task", task.Node)
		}
		seen++
	}
	if seen != 10 {
		t.Fatalf("worker 1 saw %d of 10 tasks", seen)
	}
}

func TestNUMAAwareNoStarvation(t *testing.T) {
	// All tasks on node 3, all workers on node 0: everything lands in
	// low lists but must still be delivered.
	tasks := MakeTasks(50, 10, func(int) int { return 3 })
	s := New(NUMAAware, 2, func(int) int { return 0 })
	s.Reset(tasks)
	got := drainAll(s, 2)
	checkExactlyOnce(t, got, 5)
}

func TestResetBetweenIterations(t *testing.T) {
	s := New(NUMAAware, 2, func(int) int { return 0 })
	for iter := 0; iter < 3; iter++ {
		s.Reset(MakeTasks(30, 10, nil))
		got := drainAll(s, 2)
		checkExactlyOnce(t, got, 3)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Static, 0, nil)
}

// Property: for any worker count, task count, node labelling, and
// policy, concurrent draining delivers every task exactly once.
func TestExactlyOnceProperty(t *testing.T) {
	f := func(nRaw uint16, workersRaw, policyRaw, nodesRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		workers := int(workersRaw)%8 + 1
		nodes := int(nodesRaw)%4 + 1
		policy := Policy(int(policyRaw) % 3)
		tasks := MakeTasks(n, 13, func(row int) int { return (row / 13) % nodes })
		s := New(policy, workers, func(w int) int { return w % nodes })
		s.Reset(tasks)
		got := drainAll(s, workers)
		var all []int
		for _, g := range got {
			all = append(all, g...)
		}
		if len(all) != len(tasks) {
			return false
		}
		sort.Ints(all)
		for i, id := range all {
			if id != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
