// Package sched implements the three task schedulers the paper compares
// in Figure 5: static preassignment, FIFO work stealing, and knor's
// NUMA-aware partitioned priority task queue.
//
// A task is a contiguous block of data rows (the paper uses a minimum
// task size of 8192 rows). The NUMA-aware queue is partitioned into one
// part per worker, each guarded by its own lock; every part holds a
// high-priority list (tasks whose rows live on the worker's NUMA node)
// and a low-priority list. An idle worker drains its own part, then
// steals from workers bound to the same NUMA node, and only then cycles
// once through remote parts — accepting a lower-priority task rather
// than starving (Section 5.2).
package sched

import (
	"fmt"
	"sync"
)

// DefaultTaskSize is the paper's minimum task granularity in rows.
const DefaultTaskSize = 8192

// Task is a contiguous block of rows assigned to one worker at a time.
type Task struct {
	ID   int
	Lo   int // first row, inclusive
	Hi   int // last row, exclusive
	Node int // NUMA node owning the rows
}

// Rows returns the number of rows in the task.
func (t Task) Rows() int { return t.Hi - t.Lo }

// MakeTasks splits n rows into blocks of at most taskSize rows and
// labels each with its owning node from nodeOf (which may be nil for a
// single-node machine).
func MakeTasks(n, taskSize int, nodeOf func(row int) int) []Task {
	if taskSize <= 0 {
		panic("sched: taskSize must be positive")
	}
	var tasks []Task
	for lo := 0; lo < n; lo += taskSize {
		hi := lo + taskSize
		if hi > n {
			hi = n
		}
		node := 0
		if nodeOf != nil {
			node = nodeOf(lo)
		}
		tasks = append(tasks, Task{ID: len(tasks), Lo: lo, Hi: hi, Node: node})
	}
	return tasks
}

// Policy selects a scheduler implementation.
type Policy int

const (
	// Static preassigns contiguous task ranges to workers; no stealing.
	Static Policy = iota
	// FIFO seeds workers with their local tasks and allows stealing
	// from any worker in index order.
	FIFO
	// NUMAAware is knor's partitioned priority queue with local-first
	// stealing.
	NUMAAware
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case FIFO:
		return "fifo"
	case NUMAAware:
		return "numa-aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Scheduler hands out tasks to workers. Implementations are safe for
// concurrent Next calls; Reset must be called between iterations with
// no Next in flight.
type Scheduler interface {
	// Reset loads a fresh task set for the next iteration.
	Reset(tasks []Task)
	// Next returns the next task for the worker, and whether one
	// remained. The second result false means the iteration's work is
	// exhausted for this worker.
	Next(worker int) (Task, bool)
	// Policy identifies the implementation.
	Policy() Policy
}

// WorkerNodeFunc maps a worker id to its NUMA node.
type WorkerNodeFunc func(worker int) int

// New builds a scheduler for the given worker count. workerNode may be
// nil, in which case all workers are treated as node 0.
func New(policy Policy, workers int, workerNode WorkerNodeFunc) Scheduler {
	if workers <= 0 {
		panic("sched: workers must be positive")
	}
	if workerNode == nil {
		workerNode = func(int) int { return 0 }
	}
	switch policy {
	case Static:
		return &staticSched{workers: workers}
	case FIFO:
		return &stealSched{policy: FIFO, workers: workers, workerNode: workerNode}
	case NUMAAware:
		return &stealSched{policy: NUMAAware, workers: workers, workerNode: workerNode}
	default:
		panic(fmt.Sprintf("sched: unknown policy %d", int(policy)))
	}
}

// --- static ------------------------------------------------------------

type staticSched struct {
	workers int
	mu      []sync.Mutex
	queues  [][]Task
}

func (s *staticSched) Policy() Policy { return Static }

func (s *staticSched) Reset(tasks []Task) {
	s.mu = make([]sync.Mutex, s.workers)
	s.queues = make([][]Task, s.workers)
	// Contiguous ranges: worker w gets tasks [w*per, (w+1)*per), i.e.
	// n/T rows each, like the paper's static baseline.
	per := (len(tasks) + s.workers - 1) / s.workers
	for w := 0; w < s.workers; w++ {
		lo := w * per
		if lo > len(tasks) {
			lo = len(tasks)
		}
		hi := lo + per
		if hi > len(tasks) {
			hi = len(tasks)
		}
		s.queues[w] = append([]Task(nil), tasks[lo:hi]...)
	}
}

func (s *staticSched) Next(worker int) (Task, bool) {
	s.mu[worker].Lock()
	defer s.mu[worker].Unlock()
	q := s.queues[worker]
	if len(q) == 0 {
		return Task{}, false
	}
	t := q[0]
	s.queues[worker] = q[1:]
	return t, true
}

// --- stealing (FIFO and NUMA-aware) -------------------------------------

type part struct {
	mu   sync.Mutex
	high []Task // local to the owning worker's node
	low  []Task
}

func (p *part) pop(priorityOnly bool) (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.high) > 0 {
		t := p.high[0]
		p.high = p.high[1:]
		return t, true
	}
	if !priorityOnly && len(p.low) > 0 {
		t := p.low[0]
		p.low = p.low[1:]
		return t, true
	}
	return Task{}, false
}

type stealSched struct {
	policy     Policy
	workers    int
	workerNode WorkerNodeFunc
	parts      []*part
	sameNode   [][]int // worker -> other workers on the same node
}

func (s *stealSched) Policy() Policy { return s.policy }

func (s *stealSched) Reset(tasks []Task) {
	s.parts = make([]*part, s.workers)
	for i := range s.parts {
		s.parts[i] = &part{}
	}
	if s.sameNode == nil {
		s.sameNode = make([][]int, s.workers)
		for w := 0; w < s.workers; w++ {
			for o := 0; o < s.workers; o++ {
				if o != w && s.workerNode(o) == s.workerNode(w) {
					s.sameNode[w] = append(s.sameNode[w], o)
				}
			}
		}
	}
	// Distribute each task to a worker on the task's node (round-robin
	// within the node) so the high lists hold only local work. Tasks on
	// nodes with no bound worker fall into low lists round-robin.
	nodeWorkers := map[int][]int{}
	for w := 0; w < s.workers; w++ {
		n := s.workerNode(w)
		nodeWorkers[n] = append(nodeWorkers[n], w)
	}
	rrHigh := map[int]int{}
	rrLow := 0
	for _, t := range tasks {
		if ws, ok := nodeWorkers[t.Node]; ok {
			w := ws[rrHigh[t.Node]%len(ws)]
			rrHigh[t.Node]++
			s.parts[w].high = append(s.parts[w].high, t)
		} else {
			w := rrLow % s.workers
			rrLow++
			s.parts[w].low = append(s.parts[w].low, t)
		}
	}
}

func (s *stealSched) Next(worker int) (Task, bool) {
	// Own partition first.
	if t, ok := s.parts[worker].pop(false); ok {
		return t, true
	}
	if s.policy == NUMAAware {
		// Steal from same-node workers: their high tasks are still
		// local to this worker's node.
		for _, o := range s.sameNode[worker] {
			if t, ok := s.parts[o].pop(false); ok {
				return t, true
			}
		}
		// One cycle over all partitions looking for high-priority
		// (any remaining local-to-someone) tasks, then settle for low.
		for off := 1; off < s.workers; off++ {
			o := (worker + off) % s.workers
			if t, ok := s.parts[o].pop(true); ok {
				return t, true
			}
		}
		for off := 1; off < s.workers; off++ {
			o := (worker + off) % s.workers
			if t, ok := s.parts[o].pop(false); ok {
				return t, true
			}
		}
		return Task{}, false
	}
	// FIFO: steal in fixed index order regardless of locality.
	for o := 0; o < s.workers; o++ {
		if o == worker {
			continue
		}
		if t, ok := s.parts[o].pop(false); ok {
			return t, true
		}
	}
	return Task{}, false
}
