package netcluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"knor/internal/cluster"
	"knor/internal/simclock"
)

// forEachTransport runs body over both Transport implementations at
// cluster size m: the simulated group and a real TCP mesh on loopback.
// The transports are passed indexed by rank; body is invoked once per
// implementation and must drive all ranks itself.
func forEachTransport(t *testing.T, m int, body func(t *testing.T, ts []Transport)) {
	t.Helper()
	t.Run("sim", func(t *testing.T) {
		g := NewSimGroup(cluster.New(m, simclock.DefaultCostModel()))
		defer g.Close()
		ts := make([]Transport, m)
		for r := 0; r < m; r++ {
			ts[r] = g.Transport(r)
		}
		body(t, ts)
	})
	t.Run("tcp", func(t *testing.T) {
		tcp := tcpCluster(t, m, "collective")
		ts := make([]Transport, m)
		for r := 0; r < m; r++ {
			ts[r] = tcp[r]
		}
		body(t, ts)
	})
}

// perRank runs fn concurrently on every rank and fails the test on the
// first error.
func perRank(t *testing.T, ts []Transport, fn func(tr Transport) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(ts))
	for r, tr := range ts {
		wg.Add(1)
		go func(r int, tr Transport) {
			defer wg.Done()
			errs[r] = fn(tr)
		}(r, tr)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestAllgather: every rank ends up with every rank's block, indexed
// by origin, on both transports — the property knord's iteration merge
// stands on.
func TestAllgather(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5} {
		forEachTransport(t, m, func(t *testing.T, ts []Transport) {
			perRank(t, ts, func(tr Transport) error {
				mine := bytes.Repeat([]byte{byte('A' + tr.Rank())}, 3+tr.Rank())
				blocks, err := Allgather(tr, FrameAccum, 0, 7, mine)
				if err != nil {
					return err
				}
				for s := 0; s < m; s++ {
					want := bytes.Repeat([]byte{byte('A' + s)}, 3+s)
					if !bytes.Equal(blocks[s], want) {
						return fmt.Errorf("block %d = %q, want %q", s, blocks[s], want)
					}
				}
				return nil
			})
		})
	}
}

// TestGatherAndBcast: the hub-side movement primitives.
func TestGatherAndBcast(t *testing.T) {
	const m = 4
	forEachTransport(t, m, func(t *testing.T, ts []Transport) {
		perRank(t, ts, func(tr Transport) error {
			mine := AppendUint32(nil, uint32(tr.Rank()*11))
			blocks, err := Gather(tr, 0, FrameGather, 0, 1, mine)
			if err != nil {
				return err
			}
			if tr.Rank() == 0 {
				for s := 0; s < m; s++ {
					v, err := Uint32At(blocks[s], 0)
					if err != nil || int(v) != s*11 {
						return fmt.Errorf("gather block %d = %v (err %v)", s, v, err)
					}
				}
			} else if blocks != nil {
				return fmt.Errorf("non-root got gather blocks")
			}
			got, err := Bcast(tr, 0, FramePulse, 0, 2, []byte("verdict"))
			if err != nil {
				return err
			}
			if tr.Rank() != 0 && string(got) != "verdict" {
				return fmt.Errorf("bcast got %q", got)
			}
			return nil
		})
	})
}

// TestMinAllreduce: the distributed argmin fold equals the sequential
// rank-order CombineMin oracle on every rank, including exact-tie
// rows (same distance, different global index → lowest index wins).
func TestMinAllreduce(t *testing.T) {
	const m, rows = 3, 8
	// Deterministic per-rank inputs, with row 5 an exact three-way tie
	// and row 6 empty on some ranks (Index < 0).
	input := func(rank int) []cluster.MinPair {
		ps := make([]cluster.MinPair, rows)
		for i := range ps {
			ps[i] = cluster.MinPair{
				Index: int32(rank*rows + i),
				Dist:  float64((rank*31+i*17)%23) + 0.5,
			}
		}
		ps[5] = cluster.MinPair{Index: int32(100 + rank), Dist: 4.25}
		if rank%2 == 1 {
			ps[6] = cluster.MinPair{Index: -1}
		}
		return ps
	}
	oracle := make([]cluster.MinPair, rows)
	for i := range oracle {
		oracle[i].Index = -1
	}
	for r := 0; r < m; r++ {
		cluster.CombineMin(oracle, input(r))
	}
	if oracle[5].Index != 100 {
		t.Fatalf("oracle tie-break picked %d, want 100", oracle[5].Index)
	}
	forEachTransport(t, m, func(t *testing.T, ts []Transport) {
		perRank(t, ts, func(tr Transport) error {
			pairs := input(tr.Rank())
			if err := MinAllreduce(tr, 9, pairs); err != nil {
				return err
			}
			for i, p := range pairs {
				if p != oracle[i] {
					return fmt.Errorf("row %d: got %+v, want %+v", i, p, oracle[i])
				}
			}
			return nil
		})
	})
}

// TestMinPairCodec: encode/decode round-trip with exact float bits and
// the length-disagreement error.
func TestMinPairCodec(t *testing.T) {
	in := []cluster.MinPair{{Index: -1, Dist: 0}, {Index: 7, Dist: 1.0000000000000002}}
	b := EncodeMinPairs(nil, in)
	out := make([]cluster.MinPair, 2)
	if err := DecodeMinPairs(b, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("pair %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if err := DecodeMinPairs(b, make([]cluster.MinPair, 3)); err == nil {
		t.Fatal("length disagreement should error")
	}
}

// TestSimChargesTime: moving frames through the sim transport advances
// the simulated clocks by the alpha-beta model, so RunTransport over a
// SimGroup still reports meaningful simulated durations.
func TestSimChargesTime(t *testing.T) {
	net := cluster.New(2, simclock.DefaultCostModel())
	g := NewSimGroup(net)
	defer g.Close()
	a, b := g.Transport(0), g.Transport(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		f, err := b.Recv(0)
		if err != nil || len(f.Payload) != 1024 {
			t.Errorf("recv: %v", err)
		}
	}()
	if err := a.Send(1, &Frame{Type: FrameAccum, Payload: make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	<-done
	if net.Clock(0).Now() <= 0 || net.Clock(1).Now() < net.Clock(0).Now() {
		t.Fatalf("clocks not charged: sender=%g receiver=%g", net.Clock(0).Now(), net.Clock(1).Now())
	}
}
