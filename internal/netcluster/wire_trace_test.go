package netcluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"time"

	"knor/internal/telemetry"
)

// TestTraceExtRoundTrip: the trace extension rides every frame type the
// fan-out uses (assign request, shard install, accumulator) and
// survives encode → decode exactly, with the payload intact.
func TestTraceExtRoundTrip(t *testing.T) {
	ext := &TraceExt{
		TraceID: 0xdeadbeefcafe, Parent: 42, Sampled: true,
		Spans: []telemetry.RemoteSpan{
			{Name: "decode", Start: 0, Dur: 150 * time.Microsecond},
			{Name: "shard_gemm", Start: 150 * time.Microsecond, Dur: 2 * time.Millisecond},
			{Name: "encode", Start: 2150 * time.Microsecond, Dur: 80 * time.Microsecond},
		},
	}
	for _, tc := range []struct {
		typ     byte
		elem    byte
		payload []byte
	}{
		{FrameAssignReq, 4, AppendFloats(nil, []float32{1, 2, 3})},
		{FrameShard, 8, AppendFloats(nil, []float64{9.5, -1})},
		{FrameAccum, 8, bytes.Repeat([]byte{0x7f}, 1024)},
		{FrameAssignResp, 4, nil}, // reply with spans, empty payload
	} {
		f := &Frame{Type: tc.typ, Elem: tc.elem, Seq: 77, Payload: tc.payload, Trace: ext}
		buf, err := EncodeFrame(nil, f)
		if err != nil {
			t.Fatalf("type %d: encode: %v", tc.typ, err)
		}
		if buf[4] != codecVersion || buf[7]&flagTrace == 0 {
			t.Fatalf("type %d: extension frame not marked v2+flagTrace (version=%d flags=%#x)",
				tc.typ, buf[4], buf[7])
		}
		got, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("type %d: decode: %v", tc.typ, err)
		}
		if got.Type != f.Type || got.Elem != f.Elem || got.Seq != f.Seq || !bytes.Equal(got.Payload, tc.payload) {
			t.Fatalf("type %d: frame fields mangled: %+v", tc.typ, got)
		}
		if got.Trace == nil {
			t.Fatalf("type %d: trace extension lost", tc.typ)
		}
		if got.Trace.TraceID != ext.TraceID || got.Trace.Parent != ext.Parent || !got.Trace.Sampled {
			t.Fatalf("type %d: context mangled: %+v", tc.typ, got.Trace)
		}
		if len(got.Trace.Spans) != len(ext.Spans) {
			t.Fatalf("type %d: %d spans, want %d", tc.typ, len(got.Trace.Spans), len(ext.Spans))
		}
		for i, s := range got.Trace.Spans {
			if s != ext.Spans[i] {
				t.Fatalf("type %d: span %d = %+v, want %+v", tc.typ, i, s, ext.Spans[i])
			}
		}
		// Involution: the decoded frame re-encodes to the same bytes.
		re, err := EncodeFrame(nil, got)
		if err != nil || !bytes.Equal(re, buf) {
			t.Fatalf("type %d: re-encode mismatch (err=%v)", tc.typ, err)
		}
	}
}

// TestCodecV2DecodesV1ByteForByte: the property the satellite demands —
// frames without a trace extension are still emitted as exact version-1
// bytes, and v1 bytes produced by hand (the old encoder's layout)
// decode under the current reader to the identical frame. Randomized
// over types, widths, seqs, and payloads.
func TestCodecV2DecodesV1ByteForByte(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	elems := []byte{0, 4, 8}
	for iter := 0; iter < 200; iter++ {
		f := &Frame{
			Type: byte(1 + rng.Intn(int(frameTypeMax)-1)),
			Elem: elems[rng.Intn(len(elems))],
			Seq:  rng.Uint32(),
		}
		if n := rng.Intn(512); n > 0 {
			f.Payload = make([]byte, n)
			rng.Read(f.Payload)
		}
		// Hand-build the v1 encoding (the old codec's exact layout).
		v1 := make([]byte, headerBytes, headerBytes+len(f.Payload))
		binary.BigEndian.PutUint32(v1[0:], frameMagic)
		v1[4] = codecVersionV1
		v1[5], v1[6], v1[7] = f.Type, f.Elem, 0
		binary.BigEndian.PutUint32(v1[8:], f.Seq)
		binary.BigEndian.PutUint32(v1[12:], uint32(len(f.Payload)))
		v1 = append(v1, f.Payload...)

		// Current encoder without extension == v1 bytes.
		cur, err := EncodeFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cur, v1) {
			t.Fatalf("iter %d: extension-free encoding drifted from v1 bytes", iter)
		}
		// Current reader decodes v1 bytes to the identical frame.
		got, err := ReadFrame(bytes.NewReader(v1))
		if err != nil {
			t.Fatalf("iter %d: v1 frame rejected: %v", iter, err)
		}
		if got.Type != f.Type || got.Elem != f.Elem || got.Seq != f.Seq ||
			!bytes.Equal(got.Payload, f.Payload) || got.Trace != nil {
			t.Fatalf("iter %d: v1 decode mismatch: %+v", iter, got)
		}
	}
}

// TestV2FlagValidation: v2 headers with unknown flag bits or no flags
// at all are rejected (the encoder never produces either), and v1
// headers still require a zero byte 7.
func TestV2FlagValidation(t *testing.T) {
	mk := func(version, flags byte) []byte {
		f := &Frame{Type: FramePulse, Seq: 1}
		buf, err := EncodeFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		buf[4], buf[7] = version, flags
		return buf
	}
	for _, tc := range []struct {
		name string
		buf  []byte
		want error
	}{
		{"v1 nonzero reserved", mk(codecVersionV1, 1), ErrBadReserved},
		{"v2 no flags", mk(codecVersion, 0), ErrBadReserved},
		{"v2 unknown flag", mk(codecVersion, 0x80), ErrBadReserved},
		{"v2 trace flag but no extension bytes", mk(codecVersion, flagTrace), ErrShortPayload},
		{"future version", mk(3, 0), ErrBadVersion},
	} {
		if _, err := ReadFrame(bytes.NewReader(tc.buf)); !errors.Is(err, tc.want) {
			t.Errorf("%s: want %v, got %v", tc.name, tc.want, err)
		}
	}
}

// TestTraceExtMalformed: corrupted extensions map to ErrShortPayload,
// never a panic or a silent partial decode.
func TestTraceExtMalformed(t *testing.T) {
	good, err := EncodeFrame(nil, &Frame{
		Type: FrameAssignReq, Seq: 5, Payload: []byte("rows"),
		Trace: &TraceExt{TraceID: 1, Sampled: true,
			Spans: []telemetry.RemoteSpan{{Name: "gemm", Start: 1, Dur: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sampled byte out of {0,1}.
	bad := append([]byte(nil), good...)
	bad[headerBytes+4+16] = 7
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrShortPayload) {
		t.Errorf("bad sampled byte: want ErrShortPayload, got %v", err)
	}
	// Declared ext length longer than the span list it holds.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[headerBytes:], binary.LittleEndian.Uint32(bad[headerBytes:])+1)
	binary.BigEndian.PutUint32(bad[12:], binary.BigEndian.Uint32(bad[12:])+1)
	bad = append(bad, 0)
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrShortPayload) {
		t.Errorf("inflated ext length: want ErrShortPayload, got %v", err)
	}
	// Hostile span count.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[headerBytes+4+17:], 1<<30)
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrShortPayload) {
		t.Errorf("hostile span count: want ErrShortPayload, got %v", err)
	}
}

// TestSnapshotCodecRoundTrip: a registry snapshot with every instrument
// kind survives the metrics-federation payload codec exactly.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("fed_reqs_total", "requests").Add(1234)
	r.Gauge("fed_depth", "queue depth").Set(-2.5)
	h := r.Histogram("fed_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	cv := r.CounterVec("fed_frames_total", "frames", "type", "dir")
	cv.With("accum", "tx").Add(9)
	cv.With("pulse", "rx").Add(2)

	fams := r.Snapshot()
	buf := EncodeSnapshot(nil, fams)
	got, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fams) {
		t.Fatalf("decoded %d families, want %d", len(got), len(fams))
	}
	for i, f := range fams {
		g := got[i]
		if g.Name != f.Name || g.Help != f.Help || g.Kind != f.Kind {
			t.Fatalf("family %d header mismatch: %+v vs %+v", i, g, f)
		}
		if len(g.LabelNames) != len(f.LabelNames) || len(g.Samples) != len(f.Samples) {
			t.Fatalf("family %q shape mismatch", f.Name)
		}
		for j, s := range f.Samples {
			gs := g.Samples[j]
			if gs.Value != s.Value || gs.Sum != s.Sum || gs.Count != s.Count {
				t.Fatalf("family %q sample %d values mismatch: %+v vs %+v", f.Name, j, gs, s)
			}
			for li := range s.Labels {
				if gs.Labels[li] != s.Labels[li] {
					t.Fatalf("family %q sample %d label mismatch", f.Name, j)
				}
			}
			for bi := range s.Bounds {
				if gs.Bounds[bi] != s.Bounds[bi] || gs.Buckets[bi] != s.Buckets[bi] {
					t.Fatalf("family %q sample %d hist mismatch", f.Name, j)
				}
			}
		}
	}
	// Truncations never panic and always error.
	for cut := 0; cut < len(buf); cut += 7 {
		if _, err := DecodeSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncated snapshot at %d decoded cleanly", cut)
		}
	}
}
