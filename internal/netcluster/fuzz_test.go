package netcluster

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame: arbitrary byte streams never panic the decoder, never
// make it read past the declared length, and anything it accepts
// re-encodes to the exact bytes consumed (decode/encode is an
// involution on the valid set).
func FuzzReadFrame(f *testing.F) {
	// Seeds: a valid frame of each shape plus near-miss corruptions.
	for _, fr := range []*Frame{
		{Type: FrameJoin, Payload: AppendString(AppendString(nil, "127.0.0.1:9001"), "digest")},
		{Type: FrameAccum, Elem: 8, Seq: 12, Payload: AppendFloats(nil, []float64{1, 2, 3})},
		{Type: FrameMinPairs, Elem: 4, Seq: 1, Payload: bytes.Repeat([]byte{7}, 33)},
		{Type: FramePulse},
	} {
		buf, err := EncodeFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1]) // truncated payload
		f.Add(buf[:headerBytes-2])
		bad := append([]byte(nil), buf...)
		bad[4] = 9 // wrong version
		f.Add(bad)
		huge := append([]byte(nil), buf...)
		binary.BigEndian.PutUint32(huge[12:], MaxFrameBytes+1)
		f.Add(huge)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		re, err := EncodeFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: consumed %d bytes, re-encoded %d", consumed, len(re))
		}
	})
}
