package netcluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

// TestFrameRoundTrip: every frame type × element width × payload shape
// survives encode → decode bit-exactly, including through a reader
// that delivers one byte at a time (partial reads).
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0xff}, bytes.Repeat([]byte{0xab}, 1<<14)}
	for typ := byte(1); typ < frameTypeMax; typ++ {
		for _, elem := range []byte{0, 4, 8} {
			for pi, payload := range payloads {
				f := &Frame{Type: typ, Elem: elem, Seq: uint32(pi)*7 + uint32(typ), Payload: payload}
				buf, err := EncodeFrame(nil, f)
				if err != nil {
					t.Fatalf("encode type=%d elem=%d: %v", typ, elem, err)
				}
				for _, r := range []io.Reader{bytes.NewReader(buf), iotest.OneByteReader(bytes.NewReader(buf))} {
					got, err := ReadFrame(r)
					if err != nil {
						t.Fatalf("decode type=%d elem=%d: %v", typ, elem, err)
					}
					if got.Type != f.Type || got.Elem != f.Elem || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
						t.Fatalf("round-trip mismatch: sent %+v got %+v", f, got)
					}
				}
			}
		}
	}
}

// TestReadFrameTruncated: every strict prefix of a valid frame yields
// io.EOF (empty stream) or ErrTruncated — never a panic, never a
// decoded frame.
func TestReadFrameTruncated(t *testing.T) {
	buf, err := EncodeFrame(nil, &Frame{Type: FrameAccum, Elem: 8, Seq: 3, Payload: []byte("0123456789abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		_, err := ReadFrame(bytes.NewReader(buf[:cut]))
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut=0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: want ErrTruncated, got %v", cut, err)
		}
	}
}

// corrupt returns a valid frame encoding with one header mutation.
func corrupt(t *testing.T, mutate func(h []byte)) []byte {
	t.Helper()
	buf, err := EncodeFrame(nil, &Frame{Type: FramePulse, Elem: 0, Seq: 1, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	mutate(buf)
	return buf
}

// TestReadFrameHeaderValidation: each malformed header field maps to
// its typed error.
func TestReadFrameHeaderValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(h []byte)
		want   error
	}{
		{"bad magic", func(h []byte) { h[0] = 'X' }, ErrBadMagic},
		{"bad version", func(h []byte) { h[4] = 99 }, ErrBadVersion},
		{"zero type", func(h []byte) { h[5] = 0 }, ErrBadType},
		{"type past max", func(h []byte) { h[5] = frameTypeMax }, ErrBadType},
		{"bad elem", func(h []byte) { h[6] = 3 }, ErrBadElem},
		{"reserved set", func(h []byte) { h[7] = 1 }, ErrBadReserved},
		{"oversized length", func(h []byte) {
			binary.BigEndian.PutUint32(h[12:], MaxFrameBytes+1)
		}, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		if _, err := ReadFrame(bytes.NewReader(corrupt(t, tc.mutate))); !errors.Is(err, tc.want) {
			t.Errorf("%s: want %v, got %v", tc.name, tc.want, err)
		}
	}
}

// TestReadFrameOversizedNeverAllocates: a header announcing a huge
// payload is rejected from the 16 header bytes alone — the reader
// neither allocates the declared length nor waits for more input.
func TestReadFrameOversizedNeverAllocates(t *testing.T) {
	var h [headerBytes]byte
	binary.BigEndian.PutUint32(h[0:], frameMagic)
	h[4], h[5] = codecVersionV1, FrameAccum
	binary.BigEndian.PutUint32(h[12:], 1<<31)
	// An ErrReader after the header would hang or error if the decoder
	// tried to read the payload; the length check must fire first.
	r := io.MultiReader(bytes.NewReader(h[:]), iotest.ErrReader(errors.New("must not be read")))
	if _, err := ReadFrame(r); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestEncodeFrameRejects: the encoder refuses frames it could not
// decode.
func TestEncodeFrameRejects(t *testing.T) {
	if _, err := EncodeFrame(nil, &Frame{Type: 0}); !errors.Is(err, ErrBadType) {
		t.Errorf("zero type: want ErrBadType, got %v", err)
	}
	if _, err := EncodeFrame(nil, &Frame{Type: frameTypeMax}); !errors.Is(err, ErrBadType) {
		t.Errorf("type past max: want ErrBadType, got %v", err)
	}
	if _, err := EncodeFrame(nil, &Frame{Type: FramePulse, Elem: 5}); !errors.Is(err, ErrBadElem) {
		t.Errorf("bad elem: want ErrBadElem, got %v", err)
	}
	if _, err := EncodeFrame(nil, &Frame{Type: FrameAccum, Payload: make([]byte, MaxFrameBytes+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized: want ErrFrameTooLarge, got %v", err)
	}
}

// TestCheckElem: width disagreement is the typed mismatch error.
func TestCheckElem(t *testing.T) {
	f := &Frame{Type: FrameAccum, Elem: 4}
	if err := CheckElem(f, 4); err != nil {
		t.Fatalf("matching width: %v", err)
	}
	if err := CheckElem(f, 8); !errors.Is(err, ErrElemMismatch) {
		t.Fatalf("want ErrElemMismatch, got %v", err)
	}
}

// TestPayloadPrimitives: scalar round-trips and short-payload bounds.
func TestPayloadPrimitives(t *testing.T) {
	b := AppendUint32(nil, 0xdeadbeef)
	b = AppendUint64(b, 1<<60+7)
	b = AppendString(b, "host:9001")
	b = AppendInt32s(b, []int32{-1, 0, 42})
	b = AppendInt64s(b, []int64{-9, 1 << 50})
	b = AppendFloats(b, []float32{1.5, -0.25})
	b = AppendFloats(b, []float64{3.14159, -2.5})

	u32, err := Uint32At(b, 0)
	if err != nil || u32 != 0xdeadbeef {
		t.Fatalf("Uint32At: %v %x", err, u32)
	}
	u64, err := Uint64At(b, 4)
	if err != nil || u64 != 1<<60+7 {
		t.Fatalf("Uint64At: %v %x", err, u64)
	}
	s, off, err := StringAt(b, 12)
	if err != nil || s != "host:9001" {
		t.Fatalf("StringAt: %v %q", err, s)
	}
	i32s := make([]int32, 3)
	off, err = Int32sAt(b, off, 3, i32s)
	if err != nil || i32s[0] != -1 || i32s[2] != 42 {
		t.Fatalf("Int32sAt: %v %v", err, i32s)
	}
	i64s := make([]int64, 2)
	off, err = Int64sAt(b, off, 2, i64s)
	if err != nil || i64s[0] != -9 || i64s[1] != 1<<50 {
		t.Fatalf("Int64sAt: %v %v", err, i64s)
	}
	f32s := make([]float32, 2)
	off, err = FloatsAt(b, off, 2, f32s)
	if err != nil || f32s[0] != 1.5 || f32s[1] != -0.25 {
		t.Fatalf("FloatsAt[float32]: %v %v", err, f32s)
	}
	f64s := make([]float64, 2)
	if _, err = FloatsAt(b, off, 2, f64s); err != nil || f64s[0] != 3.14159 || f64s[1] != -2.5 {
		t.Fatalf("FloatsAt[float64]: %v %v", err, f64s)
	}

	// Out-of-bounds and negative offsets are ErrShortPayload, not panics.
	if _, err := Uint32At(b, len(b)-3); !errors.Is(err, ErrShortPayload) {
		t.Errorf("Uint32At past end: %v", err)
	}
	if _, err := Uint64At(b, -1); !errors.Is(err, ErrShortPayload) {
		t.Errorf("Uint64At negative: %v", err)
	}
	if _, _, err := StringAt([]byte{255, 255, 255, 255}, 0); !errors.Is(err, ErrShortPayload) {
		t.Errorf("StringAt huge length: %v", err)
	}
	if _, err := FloatsAt(b, len(b)-4, 2, f64s); !errors.Is(err, ErrShortPayload) {
		t.Errorf("FloatsAt past end: %v", err)
	}
	if _, err := Int32sAt(b, 0, -1, i32s); !errors.Is(err, ErrShortPayload) {
		t.Errorf("Int32sAt negative count: %v", err)
	}
}
