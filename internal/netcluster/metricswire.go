package netcluster

import (
	"fmt"
	"math"

	"knor/internal/telemetry"
)

// Metrics-federation payload codec: a telemetry registry snapshot
// serialized with the shared payload primitives, carried in a
// FrameMetrics reply. Layout (all little-endian):
//
//	u32 family count
//	per family:
//	  string name, string help, u8 kind (0 counter, 1 gauge, 2 histogram)
//	  u32 label-name count, then each label name as a string
//	  u32 sample count
//	  per sample:
//	    one string per label name (the label values)
//	    counter/gauge: f64 value
//	    histogram: u32 bound count, f64 bounds, u64 buckets
//	               (bound count + 1 of them, +Inf last), f64 sum, u64 count

const (
	wireKindCounter = byte(0)
	wireKindGauge   = byte(1)
	wireKindHist    = byte(2)
)

func kindToWire(kind string) (byte, error) {
	switch kind {
	case "counter":
		return wireKindCounter, nil
	case "gauge":
		return wireKindGauge, nil
	case "histogram":
		return wireKindHist, nil
	}
	return 0, fmt.Errorf("netcluster: unknown instrument kind %q", kind)
}

func kindFromWire(k byte) (string, error) {
	switch k {
	case wireKindCounter:
		return "counter", nil
	case wireKindGauge:
		return "gauge", nil
	case wireKindHist:
		return "histogram", nil
	}
	return "", fmt.Errorf("%w: instrument kind byte 0x%02x", ErrShortPayload, k)
}

// EncodeSnapshot serializes a registry snapshot for a FrameMetrics
// reply. Families the codec cannot express (unknown kind) are skipped
// rather than failing the scrape.
func EncodeSnapshot(dst []byte, fams []telemetry.SnapshotFamily) []byte {
	kept := fams[:0:0]
	for _, f := range fams {
		if _, err := kindToWire(f.Kind); err == nil {
			kept = append(kept, f)
		}
	}
	dst = AppendUint32(dst, uint32(len(kept)))
	for _, f := range kept {
		k, _ := kindToWire(f.Kind)
		dst = AppendString(dst, f.Name)
		dst = AppendString(dst, f.Help)
		dst = append(dst, k)
		dst = AppendUint32(dst, uint32(len(f.LabelNames)))
		for _, ln := range f.LabelNames {
			dst = AppendString(dst, ln)
		}
		dst = AppendUint32(dst, uint32(len(f.Samples)))
		for _, s := range f.Samples {
			for i := range f.LabelNames {
				v := ""
				if i < len(s.Labels) {
					v = s.Labels[i]
				}
				dst = AppendString(dst, v)
			}
			if k != wireKindHist {
				dst = AppendUint64(dst, math.Float64bits(s.Value))
				continue
			}
			dst = AppendUint32(dst, uint32(len(s.Bounds)))
			dst = AppendFloats(dst, s.Bounds)
			buckets := s.Buckets
			if len(buckets) != len(s.Bounds)+1 {
				buckets = make([]uint64, len(s.Bounds)+1)
				copy(buckets, s.Buckets)
			}
			for _, b := range buckets {
				dst = AppendUint64(dst, b)
			}
			dst = AppendUint64(dst, math.Float64bits(s.Sum))
			dst = AppendUint64(dst, s.Count)
		}
	}
	return dst
}

// DecodeSnapshot parses an EncodeSnapshot payload. Every malformed
// input yields ErrShortPayload (possibly wrapped), never a panic, and
// allocation is bounded by the payload length.
func DecodeSnapshot(b []byte) ([]telemetry.SnapshotFamily, error) {
	nfam, off, err := boundedCount(b, 0, 8)
	if err != nil {
		return nil, err
	}
	fams := make([]telemetry.SnapshotFamily, 0, nfam)
	for fi := 0; fi < nfam; fi++ {
		var f telemetry.SnapshotFamily
		if f.Name, off, err = StringAt(b, off); err != nil {
			return nil, err
		}
		if f.Help, off, err = StringAt(b, off); err != nil {
			return nil, err
		}
		if off >= len(b) {
			return nil, fmt.Errorf("%w: family %q kind", ErrShortPayload, f.Name)
		}
		if f.Kind, err = kindFromWire(b[off]); err != nil {
			return nil, err
		}
		off++
		var nlab int
		if nlab, off, err = boundedCount(b, off, 4); err != nil {
			return nil, err
		}
		f.LabelNames = make([]string, nlab)
		for i := range f.LabelNames {
			if f.LabelNames[i], off, err = StringAt(b, off); err != nil {
				return nil, err
			}
		}
		var nsamp int
		if nsamp, off, err = boundedCount(b, off, 8); err != nil {
			return nil, err
		}
		f.Samples = make([]telemetry.SnapshotSample, 0, nsamp)
		for si := 0; si < nsamp; si++ {
			var s telemetry.SnapshotSample
			if nlab > 0 {
				s.Labels = make([]string, nlab)
				for i := range s.Labels {
					if s.Labels[i], off, err = StringAt(b, off); err != nil {
						return nil, err
					}
				}
			}
			if f.Kind != "histogram" {
				bits, err2 := Uint64At(b, off)
				if err2 != nil {
					return nil, err2
				}
				s.Value = math.Float64frombits(bits)
				off += 8
				f.Samples = append(f.Samples, s)
				continue
			}
			var nb int
			if nb, off, err = boundedCount(b, off, 8); err != nil {
				return nil, err
			}
			s.Bounds = make([]float64, nb)
			if off, err = FloatsAt(b, off, nb, s.Bounds); err != nil {
				return nil, err
			}
			s.Buckets = make([]uint64, nb+1)
			for i := range s.Buckets {
				if s.Buckets[i], err = Uint64At(b, off); err != nil {
					return nil, err
				}
				off += 8
			}
			bits, err2 := Uint64At(b, off)
			if err2 != nil {
				return nil, err2
			}
			s.Sum = math.Float64frombits(bits)
			off += 8
			if s.Count, err = Uint64At(b, off); err != nil {
				return nil, err
			}
			off += 8
			f.Samples = append(f.Samples, s)
		}
		fams = append(fams, f)
	}
	return fams, nil
}

// boundedCount reads a u32 count at off and rejects counts that could
// not possibly fit in the remaining payload at minBytes per element,
// bounding allocation before it happens.
func boundedCount(b []byte, off, minBytes int) (int, int, error) {
	n, err := Uint32At(b, off)
	if err != nil {
		return 0, 0, err
	}
	off += 4
	if int(n) > (len(b)-off)/minBytes+1 {
		return 0, 0, fmt.Errorf("%w: count %d exceeds payload", ErrShortPayload, n)
	}
	return int(n), off, nil
}
