package netcluster

import (
	"fmt"
	"math"

	"knor/internal/cluster"
)

// Real collectives over the Transport seam. The movement patterns are
// the classic ones (ring allgather, hub gather, allgather'd argmin
// fold); the *values* follow the package parity discipline — every
// reduction folds contributions in fixed rank order 0..M-1, matching
// internal/dist's simulated collective, so the result bits never
// depend on message arrival order.

// Allgather runs a ring allgather: every rank contributes one opaque
// block and receives every rank's block, returned indexed by origin
// rank. M-1 steps; in step s, rank r forwards the block that
// originated at (r-s+M)%M to its right neighbour (r+1)%M and receives
// the block originated at (r-1-s+M)%M from its left neighbour. Each
// wire payload is the origin rank (uint32) followed by the block, and
// the origin is verified against the ring schedule — a desynchronised
// peer fails loudly instead of silently merging wrong-iteration data.
//
// typ and elem stamp the frames; seq must be the collective round
// (e.g. the training iteration) and is verified on every hop.
func Allgather(t Transport, typ, elem byte, seq uint32, mine []byte) ([][]byte, error) {
	m, r := t.Size(), t.Rank()
	blocks := make([][]byte, m)
	blocks[r] = mine
	right, left := (r+1)%m, (r-1+m)%m
	for s := 0; s < m-1; s++ {
		outOrigin := ((r-s)%m + m) % m
		payload := AppendUint32(make([]byte, 0, 4+len(blocks[outOrigin])), uint32(outOrigin))
		payload = append(payload, blocks[outOrigin]...)
		if err := t.Send(right, &Frame{Type: typ, Elem: elem, Seq: seq, Payload: payload}); err != nil {
			return nil, fmt.Errorf("netcluster: allgather step %d send: %w", s, err)
		}
		f, err := t.Recv(left)
		if err != nil {
			return nil, fmt.Errorf("netcluster: allgather step %d recv: %w", s, err)
		}
		if f.Type != typ || f.Seq != seq {
			return nil, fmt.Errorf("netcluster: allgather step %d: got frame type=%d seq=%d, want type=%d seq=%d",
				s, f.Type, f.Seq, typ, seq)
		}
		origin32, err := Uint32At(f.Payload, 0)
		if err != nil {
			return nil, fmt.Errorf("netcluster: allgather step %d: %w", s, err)
		}
		wantOrigin := ((left-s)%m + m) % m
		if int(origin32) != wantOrigin {
			return nil, fmt.Errorf("netcluster: allgather step %d: block originated at rank %d, schedule expects %d",
				s, origin32, wantOrigin)
		}
		blocks[wantOrigin] = f.Payload[4:]
	}
	return blocks, nil
}

// Gather collects every rank's block at root (indexed by origin rank;
// non-root ranks get nil). The root drains peers in rank order — each
// peer has its own in-order inbox, so this cannot deadlock and keeps
// the result deterministic.
func Gather(t Transport, root int, typ, elem byte, seq uint32, mine []byte) ([][]byte, error) {
	m, r := t.Size(), t.Rank()
	if r != root {
		if err := t.Send(root, &Frame{Type: typ, Elem: elem, Seq: seq, Payload: mine}); err != nil {
			return nil, fmt.Errorf("netcluster: gather send to root: %w", err)
		}
		return nil, nil
	}
	blocks := make([][]byte, m)
	blocks[root] = mine
	for from := 0; from < m; from++ {
		if from == root {
			continue
		}
		f, err := t.Recv(from)
		if err != nil {
			return nil, fmt.Errorf("netcluster: gather recv from rank %d: %w", from, err)
		}
		if f.Type != typ || f.Seq != seq {
			return nil, fmt.Errorf("netcluster: gather from rank %d: got frame type=%d seq=%d, want type=%d seq=%d",
				from, f.Type, f.Seq, typ, seq)
		}
		blocks[from] = f.Payload
	}
	return blocks, nil
}

// Bcast sends root's block to every rank and returns it (root passes
// its own block through). A flat root-to-all fan-out: the payloads this
// repo broadcasts (convergence verdicts, plans) are tiny, so latency
// optimality matters less than determinism.
func Bcast(t Transport, root int, typ, elem byte, seq uint32, mine []byte) ([]byte, error) {
	m, r := t.Size(), t.Rank()
	if r == root {
		for to := 0; to < m; to++ {
			if to == root {
				continue
			}
			if err := t.Send(to, &Frame{Type: typ, Elem: elem, Seq: seq, Payload: mine}); err != nil {
				return nil, fmt.Errorf("netcluster: bcast send to rank %d: %w", to, err)
			}
		}
		return mine, nil
	}
	f, err := t.Recv(root)
	if err != nil {
		return nil, fmt.Errorf("netcluster: bcast recv: %w", err)
	}
	if f.Type != typ || f.Seq != seq {
		return nil, fmt.Errorf("netcluster: bcast: got frame type=%d seq=%d, want type=%d seq=%d",
			f.Type, f.Seq, typ, seq)
	}
	return f.Payload, nil
}

// MinAllreduce folds per-rank (argmin, dist) pairs into the global
// argmin on every rank, in place. CombineMin is associative and
// commutative (comparisons with a deterministic lowest-index
// tie-break), but the fold still walks ranks 0..M-1 in order, keeping
// the package's one parity discipline everywhere.
func MinAllreduce(t Transport, seq uint32, pairs []cluster.MinPair) error {
	if t.Size() == 1 {
		return nil
	}
	blocks, err := Allgather(t, FrameMinPairs, 8, seq, EncodeMinPairs(nil, pairs))
	if err != nil {
		return err
	}
	acc := make([]cluster.MinPair, len(pairs))
	for i := range acc {
		acc[i].Index = -1
	}
	scratch := make([]cluster.MinPair, len(pairs))
	for r := 0; r < t.Size(); r++ {
		if err := DecodeMinPairs(blocks[r], scratch); err != nil {
			return fmt.Errorf("netcluster: min-allreduce block from rank %d: %w", r, err)
		}
		cluster.CombineMin(acc, scratch)
	}
	copy(pairs, acc)
	return nil
}

// EncodeMinPairs appends pairs to dst: count, then per pair the global
// centroid index (int32) and the exact float64 distance bits.
func EncodeMinPairs(dst []byte, pairs []cluster.MinPair) []byte {
	dst = AppendUint32(dst, uint32(len(pairs)))
	for _, p := range pairs {
		dst = AppendUint32(dst, uint32(p.Index))
		dst = AppendUint64(dst, math.Float64bits(p.Dist))
	}
	return dst
}

// DecodeMinPairs decodes into out; the encoded count must match
// len(out) — a length disagreement means the ranks are answering
// different batches and is an error, not a truncation.
func DecodeMinPairs(b []byte, out []cluster.MinPair) error {
	n, err := Uint32At(b, 0)
	if err != nil {
		return err
	}
	if int(n) != len(out) {
		return fmt.Errorf("%w: %d pairs encoded, %d expected", ErrShortPayload, n, len(out))
	}
	off := 4
	for i := range out {
		idx, err := Uint32At(b, off)
		if err != nil {
			return err
		}
		bits, err := Uint64At(b, off+4)
		if err != nil {
			return err
		}
		out[i] = cluster.MinPair{Index: int32(idx), Dist: math.Float64frombits(bits)}
		off += 12
	}
	return nil
}
