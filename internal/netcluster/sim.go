package netcluster

import (
	"bytes"
	"fmt"
	"sync"

	"knor/internal/cluster"
)

// SimGroup is the simulated counterpart of a TCP cluster: M
// SimTransports in one process, moving the same frames the real
// transport moves (identical bytes, so parity tests exercise the full
// encode/decode path) while charging internal/cluster's alpha-beta
// costs on the simulated machine clocks. A frame from rank a to rank b
// advances a's clock past the send (NetLatency + bytes/NetBandwidth)
// and stamps the frame with its arrival time; b's clock catches up to
// that stamp when the frame is received.
type SimGroup struct {
	net *cluster.Network

	mu    sync.Mutex // guards the shared Network clocks
	links [][]chan simFrame

	closeOnce sync.Once
	closed    chan struct{}
}

type simFrame struct {
	f  *Frame
	at float64 // simulated arrival time
}

// simInboxDepth matches the TCP transport's inbox so the two
// implementations block under the same backlog conditions.
const simInboxDepth = inboxDepth

// NewSimGroup builds the M-rank simulated mesh over net's cost model.
func NewSimGroup(net *cluster.Network) *SimGroup {
	g := &SimGroup{net: net, closed: make(chan struct{})}
	g.links = make([][]chan simFrame, net.M)
	for from := range g.links {
		g.links[from] = make([]chan simFrame, net.M)
		for to := range g.links[from] {
			if to != from {
				g.links[from][to] = make(chan simFrame, simInboxDepth)
			}
		}
	}
	return g
}

// Transport returns rank r's endpoint.
func (g *SimGroup) Transport(r int) *SimTransport {
	if r < 0 || r >= g.net.M {
		panic(fmt.Sprintf("netcluster: sim rank %d out of range 0..%d", r, g.net.M-1))
	}
	return &SimTransport{group: g, rank: r}
}

// Close tears the whole group down; blocked Recvs on every rank fail.
func (g *SimGroup) Close() error {
	g.closeOnce.Do(func() { close(g.closed) })
	return nil
}

// SimTransport is one rank's endpoint in a SimGroup. It implements
// Transport with goroutine-local channels instead of sockets; frames
// are encoded and re-decoded through the wire codec so the bytes on
// the (simulated) wire are exactly the bytes TCPTransport would move.
type SimTransport struct {
	group *SimGroup
	rank  int
}

// Rank implements Transport.
func (t *SimTransport) Rank() int { return t.rank }

// Size implements Transport.
func (t *SimTransport) Size() int { return t.group.net.M }

// Send implements Transport: the frame round-trips through the codec,
// the sender's simulated clock advances past the alpha-beta send cost,
// and the frame is queued for the destination stamped with its arrival
// time.
func (t *SimTransport) Send(to int, f *Frame) error {
	g := t.group
	if to == t.rank || to < 0 || to >= g.net.M {
		return fmt.Errorf("netcluster: send to invalid rank %d (self %d of %d)", to, t.rank, g.net.M)
	}
	buf, err := EncodeFrame(nil, f)
	if err != nil {
		return err
	}
	wire, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("netcluster: sim wire round-trip: %w", err)
	}
	telBytesTx.Add(uint64(len(buf)))
	telFrames.With(frameTypeName(f.Type)).Inc()

	g.mu.Lock()
	clock := g.net.Clock(t.rank)
	cost := g.net.Model.NetLatency + float64(len(buf))/g.net.Model.NetBandwidth
	at := clock.Now() + cost
	clock.AdvanceTo(at)
	g.mu.Unlock()

	select {
	case g.links[t.rank][to] <- simFrame{f: wire, at: at}:
		return nil
	case <-g.closed:
		return fmt.Errorf("netcluster: sim transport closed")
	}
}

// Recv implements Transport: the receiver's simulated clock catches up
// to the frame's arrival time.
func (t *SimTransport) Recv(from int) (*Frame, error) {
	g := t.group
	if from == t.rank || from < 0 || from >= g.net.M {
		return nil, fmt.Errorf("netcluster: recv from invalid rank %d (self %d of %d)", from, t.rank, g.net.M)
	}
	select {
	case sf := <-g.links[from][t.rank]:
		g.mu.Lock()
		g.net.Clock(t.rank).AdvanceTo(sf.at)
		g.mu.Unlock()
		return sf.f, nil
	case <-g.closed:
		return nil, fmt.Errorf("netcluster: sim transport closed")
	}
}

// Close implements Transport. Closing any rank closes the group: a
// simulated "process" dying takes its links down exactly like a real
// socket teardown unblocks both ends.
func (t *SimTransport) Close() error { return t.group.Close() }
