package netcluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"knor/internal/telemetry"
)

// Transport is the point-to-point seam the distributed trainer and the
// sharded serving layer run over: M ranks (0..Size-1), frames delivered
// in order per sender, with close/error semantics — once the link to a
// peer fails, every pending and future Recv from that peer returns the
// error instead of hanging. Send and Recv are safe for concurrent use
// (per peer, sends serialise; receives from the same peer must not be
// issued concurrently by the caller).
//
// Two implementations: TCPTransport (real sockets, this file) and
// SimTransport (goroutines + internal/cluster costs, sim.go).
type Transport interface {
	// Rank is this process's id, 0..Size-1. Rank 0 is the coordinator.
	Rank() int
	// Size is the cluster size M.
	Size() int
	// Send delivers f to rank `to`, blocking until the frame is on the
	// wire (or the write deadline expires).
	Send(to int, f *Frame) error
	// Recv returns the next frame from rank `from`, blocking until one
	// arrives or the link fails.
	Recv(from int) (*Frame, error)
	// Close tears the transport down; blocked Recvs return errors.
	Close() error
}

// TCPOptions configure a real cluster bootstrap.
type TCPOptions struct {
	// Listen is this process's own listen address (host:port; port 0
	// picks a free one). Required for every rank: workers accept mesh
	// connections from higher ranks on it.
	Listen string
	// Join is the coordinator's listen address. Empty means THIS
	// process is the coordinator (rank 0).
	Join string
	// Machines is the cluster size M. Required on the coordinator;
	// workers learn it from the rank-assignment frame (leave 0, or set
	// it to cross-check).
	Machines int
	// Digest fingerprints the run configuration (dataset, k, seed,
	// precision, ...). The coordinator rejects joins whose digest
	// differs — a cluster silently mixing configs would train garbage.
	Digest string
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
	// BootstrapTimeout bounds the whole join/mesh handshake
	// (default 60s).
	BootstrapTimeout time.Duration
	// Listener, when set, is a pre-bound listener used instead of
	// binding Listen — in-process clusters bind the coordinator port
	// first and hand it over, eliminating any reserve/rebind race.
	Listener net.Listener
}

func (o *TCPOptions) withDefaults() TCPOptions {
	opts := *o
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 10 * time.Second
	}
	if opts.BootstrapTimeout <= 0 {
		opts.BootstrapTimeout = 60 * time.Second
	}
	return opts
}

// peerLink is one established connection to a peer rank.
type peerLink struct {
	conn net.Conn

	wmu sync.Mutex // serialises writes

	inbox chan *Frame

	mu  sync.Mutex
	err error // set before inbox closes
}

func (p *peerLink) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *peerLink) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		return fmt.Errorf("netcluster: link closed")
	}
	return p.err
}

// TCPTransport is the real-socket Transport: one TCP connection per
// peer pair, established once at bootstrap and reused for the life of
// the process (write deadlines per frame, a reader goroutine per
// connection feeding per-peer in-order inboxes).
type TCPTransport struct {
	rank  int
	size  int
	opts  TCPOptions
	addrs []string // rank-ordered listen addresses

	peers []*peerLink // index by rank; nil at self

	closeOnce sync.Once
	closed    chan struct{}
}

// Rank implements Transport.
func (t *TCPTransport) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCPTransport) Size() int { return t.size }

// Addr returns rank r's advertised listen address.
func (t *TCPTransport) Addr(r int) string { return t.addrs[r] }

// Send implements Transport.
func (t *TCPTransport) Send(to int, f *Frame) error {
	if to == t.rank || to < 0 || to >= t.size {
		return fmt.Errorf("netcluster: send to invalid rank %d (self %d of %d)", to, t.rank, t.size)
	}
	p := t.peers[to]
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if _, err := WriteFrame(p.conn, f); err != nil {
		telPeerErrors.Inc()
		p.fail(err)
		return fmt.Errorf("netcluster: send to rank %d: %w", to, err)
	}
	return nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv(from int) (*Frame, error) {
	if from == t.rank || from < 0 || from >= t.size {
		return nil, fmt.Errorf("netcluster: recv from invalid rank %d (self %d of %d)", from, t.rank, t.size)
	}
	p := t.peers[from]
	f, ok := <-p.inbox
	if !ok {
		return nil, fmt.Errorf("netcluster: recv from rank %d: %w", from, p.failure())
	}
	return f, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	return nil
}

// reader drains one connection into its peer inbox until the link
// fails or the transport closes.
func (t *TCPTransport) reader(p *peerLink) {
	defer close(p.inbox)
	for {
		f, err := ReadFrame(p.conn)
		if err != nil {
			select {
			case <-t.closed:
			default:
				telPeerErrors.Inc()
			}
			p.fail(err)
			return
		}
		select {
		case p.inbox <- f:
		case <-t.closed:
			p.fail(fmt.Errorf("netcluster: transport closed"))
			return
		}
	}
}

const inboxDepth = 256

// writeTo writes one frame on an established link under its write
// mutex and deadline (the bootstrap-side sibling of Send).
func writeTo(p *peerLink, opts TCPOptions, f *Frame) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	_, err := WriteFrame(p.conn, f)
	return err
}

func newPeerLink(conn net.Conn) *peerLink {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &peerLink{conn: conn, inbox: make(chan *Frame, inboxDepth)}
}

// ListenLoopback binds a fresh loopback port for an in-process
// coordinator; pass the listener via TCPOptions.Listener and its
// Addr() to the workers as Join.
func ListenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// DialCluster bootstraps a real cluster member and blocks until the
// full mesh is up.
//
// The coordinator (empty Join) listens, accepts Machines-1 join
// handshakes, assigns ranks in arrival order, validates that no two
// members advertise the same listen address (duplicate ranks), and
// replies to each worker with its rank and the rank-ordered roster.
// Each worker then dials every lower-ranked worker (identifying itself
// with a hello frame) and accepts connections from higher ranks, so
// every pair of ranks shares exactly one connection, established by
// the higher rank. DialCluster returns once this process holds a live
// connection to every other rank.
func DialCluster(o TCPOptions) (*TCPTransport, error) {
	opts := o.withDefaults()
	ln := opts.Listener
	if ln == nil {
		if opts.Listen == "" {
			return nil, fmt.Errorf("netcluster: a cluster member needs a listen address")
		}
		var err error
		ln, err = net.Listen("tcp", opts.Listen)
		if err != nil {
			telDialErrors.Inc()
			return nil, fmt.Errorf("netcluster: listen %s: %w", opts.Listen, err)
		}
	}
	deadline := time.Now().Add(opts.BootstrapTimeout)
	if opts.Join == "" {
		return bootstrapCoordinator(ln, opts, deadline)
	}
	return bootstrapWorker(ln, opts, deadline)
}

// bootstrapCoordinator runs rank 0's side of the handshake.
func bootstrapCoordinator(ln net.Listener, opts TCPOptions, deadline time.Time) (*TCPTransport, error) {
	defer ln.Close()
	m := opts.Machines
	if m < 1 {
		return nil, fmt.Errorf("netcluster: coordinator needs Machines >= 1, got %d", m)
	}
	t := &TCPTransport{
		rank:   0,
		size:   m,
		opts:   opts,
		addrs:  make([]string, m),
		peers:  make([]*peerLink, m),
		closed: make(chan struct{}),
	}
	t.addrs[0] = ln.Addr().String()
	seen := map[string]int{t.addrs[0]: 0}
	type lner interface{ SetDeadline(time.Time) error }
	for next := 1; next < m; next++ {
		if d, ok := ln.(lner); ok {
			d.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			t.Close()
			telDialErrors.Inc()
			return nil, fmt.Errorf("netcluster: waiting for %d more member(s): %w", m-next, err)
		}
		addr, err := acceptJoin(conn, opts, deadline, seen)
		if err != nil {
			conn.Close()
			telDialErrors.Inc()
			t.Close()
			return nil, err
		}
		seen[addr] = next
		t.addrs[next] = addr
		t.peers[next] = newPeerLink(conn)
		telemetry.Log("netcluster", telemetry.SevInfo, "peer joined",
			telemetry.F("rank", next), telemetry.F("addr", addr))
	}
	// Every member is in: hand each worker its rank and the roster.
	roster := make([]byte, 0, 64)
	roster = AppendUint32(roster, uint32(m))
	for _, a := range t.addrs {
		roster = AppendString(roster, a)
	}
	for r := 1; r < m; r++ {
		payload := AppendUint32(nil, uint32(r))
		payload = append(payload, roster...)
		if err := writeTo(t.peers[r], opts, &Frame{Type: FrameAssignRank, Payload: payload}); err != nil {
			t.Close()
			return nil, fmt.Errorf("netcluster: assigning rank %d: %w", r, err)
		}
	}
	t.startReaders()
	telemetry.Log("netcluster", telemetry.SevInfo, "cluster bootstrapped",
		telemetry.F("machines", m), telemetry.F("coordinator", t.addrs[0]))
	return t, nil
}

// acceptJoin validates one inbound join handshake and returns the
// member's advertised listen address.
func acceptJoin(conn net.Conn, opts TCPOptions, deadline time.Time, seen map[string]int) (string, error) {
	conn.SetReadDeadline(deadline)
	f, err := ReadFrame(conn)
	if err != nil {
		return "", fmt.Errorf("netcluster: join handshake: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if f.Type != FrameJoin {
		return "", fmt.Errorf("netcluster: join handshake: got frame type %d, want join", f.Type)
	}
	addr, off, err := StringAt(f.Payload, 0)
	if err != nil {
		return "", fmt.Errorf("netcluster: join payload: %w", err)
	}
	digest, _, err := StringAt(f.Payload, off)
	if err != nil {
		return "", fmt.Errorf("netcluster: join payload: %w", err)
	}
	reject := func(msg string) (string, error) {
		wf := &Frame{Type: FrameError, Payload: []byte(msg)}
		conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		WriteFrame(conn, wf)
		return "", fmt.Errorf("netcluster: rejected join from %s: %s", addr, msg)
	}
	if digest != opts.Digest {
		return reject(fmt.Sprintf("config digest mismatch: coordinator %q, joiner %q", opts.Digest, digest))
	}
	if addr == "" {
		return reject("joiner advertised an empty listen address")
	}
	if r, dup := seen[addr]; dup {
		return reject(fmt.Sprintf("listen address %s already joined as rank %d (duplicate rank)", addr, r))
	}
	return addr, nil
}

// bootstrapWorker runs a worker's side: join, learn the rank and
// roster, then build the mesh (dial lower ranks, accept higher ones).
func bootstrapWorker(ln net.Listener, opts TCPOptions, deadline time.Time) (*TCPTransport, error) {
	selfAddr := ln.Addr().String()
	d := net.Dialer{Deadline: deadline}
	// The coordinator may not be listening yet — workers are routinely
	// launched first — so the join dial retries until the bootstrap
	// deadline.
	var conn net.Conn
	for {
		var err error
		conn, err = d.Dial("tcp", opts.Join)
		if err == nil {
			break
		}
		telDialErrors.Inc()
		if time.Now().Add(100 * time.Millisecond).After(deadline) {
			ln.Close()
			// Journal only the final failure — the retry loop is routine
			// while the coordinator is still coming up.
			telemetry.Log("netcluster", telemetry.SevError, "join dial failed",
				telemetry.F("join", opts.Join), telemetry.F("err", err.Error()))
			return nil, fmt.Errorf("netcluster: join %s: %w", opts.Join, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	join := AppendString(nil, selfAddr)
	join = AppendString(join, opts.Digest)
	conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	if _, err := WriteFrame(conn, &Frame{Type: FrameJoin, Payload: join}); err != nil {
		conn.Close()
		ln.Close()
		telDialErrors.Inc()
		return nil, fmt.Errorf("netcluster: join %s: %w", opts.Join, err)
	}
	conn.SetReadDeadline(deadline)
	f, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		ln.Close()
		telDialErrors.Inc()
		return nil, fmt.Errorf("netcluster: waiting for rank assignment: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if f.Type == FrameError {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("netcluster: coordinator rejected join: %s", f.Payload)
	}
	if f.Type != FrameAssignRank {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("netcluster: rank assignment: got frame type %d", f.Type)
	}
	rank32, err := Uint32At(f.Payload, 0)
	if err != nil {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("netcluster: rank assignment payload: %w", err)
	}
	m32, err := Uint32At(f.Payload, 4)
	if err != nil {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("netcluster: rank assignment payload: %w", err)
	}
	rank, m := int(rank32), int(m32)
	if opts.Machines > 0 && opts.Machines != m {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("netcluster: -machines %d disagrees with coordinator's cluster size %d", opts.Machines, m)
	}
	addrs := make([]string, m)
	off := 8
	for r := 0; r < m; r++ {
		addrs[r], off, err = StringAt(f.Payload, off)
		if err != nil {
			conn.Close()
			ln.Close()
			return nil, fmt.Errorf("netcluster: roster payload: %w", err)
		}
	}
	t := &TCPTransport{
		rank:   rank,
		size:   m,
		opts:   opts,
		addrs:  addrs,
		peers:  make([]*peerLink, m),
		closed: make(chan struct{}),
	}
	t.peers[0] = newPeerLink(conn)

	// Mesh: dial every worker below us, identifying ourselves.
	for r := 1; r < rank; r++ {
		pc, err := d.Dial("tcp", addrs[r])
		if err != nil {
			ln.Close()
			t.Close()
			telDialErrors.Inc()
			return nil, fmt.Errorf("netcluster: mesh dial rank %d (%s): %w", r, addrs[r], err)
		}
		pc.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		if _, err := WriteFrame(pc, &Frame{Type: FrameHello, Payload: AppendUint32(nil, uint32(rank))}); err != nil {
			pc.Close()
			ln.Close()
			t.Close()
			telDialErrors.Inc()
			return nil, fmt.Errorf("netcluster: mesh hello to rank %d: %w", r, err)
		}
		pc.SetWriteDeadline(time.Time{})
		t.peers[r] = newPeerLink(pc)
	}
	// Accept every worker above us.
	for need := m - 1 - rank; need > 0; need-- {
		type lner interface{ SetDeadline(time.Time) error }
		if dl, ok := ln.(lner); ok {
			dl.SetDeadline(deadline)
		}
		pc, err := ln.Accept()
		if err != nil {
			ln.Close()
			t.Close()
			telDialErrors.Inc()
			return nil, fmt.Errorf("netcluster: rank %d waiting for %d mesh connection(s): %w", rank, need, err)
		}
		pc.SetReadDeadline(deadline)
		hf, err := ReadFrame(pc)
		if err != nil || hf.Type != FrameHello {
			pc.Close()
			ln.Close()
			t.Close()
			telDialErrors.Inc()
			return nil, fmt.Errorf("netcluster: rank %d mesh accept: bad hello (%v)", rank, err)
		}
		pc.SetReadDeadline(time.Time{})
		from32, err := Uint32At(hf.Payload, 0)
		from := int(from32)
		if err != nil || from <= rank || from >= m || t.peers[from] != nil {
			pc.Close()
			ln.Close()
			t.Close()
			return nil, fmt.Errorf("netcluster: rank %d mesh accept: invalid hello rank %d", rank, from)
		}
		t.peers[from] = newPeerLink(pc)
	}
	ln.Close()
	t.startReaders()
	return t, nil
}

// startReaders launches one reader goroutine per established link.
func (t *TCPTransport) startReaders() {
	for r, p := range t.peers {
		if r != t.rank && p != nil {
			go t.reader(p)
		}
	}
}
