package netcluster

import "knor/internal/telemetry"

// Transport instruments, registered at init against telemetry.Default.
// The byte counters sit in the frame codec itself (WriteFrame /
// ReadFrame), so every path through the transport — handshake,
// collectives, serving RPCs, heartbeats — is counted once, at the
// wire. The tx/rx children are materialised eagerly so the families
// render in /metrics from boot, before any cluster traffic flows.
var (
	telBytes = telemetry.Default.CounterVec("knor_net_bytes_total",
		"Bytes moved over the netcluster transport, by direction.", "dir")
	telBytesTx = telBytes.With("tx")
	telBytesRx = telBytes.With("rx")
	telFrames  = telemetry.Default.CounterVec("knor_net_frames_total",
		"Frames written to the netcluster transport, by frame type.", "type")
	telDialErrors = telemetry.Default.Counter("knor_net_dial_errors_total",
		"Failed dials (or handshake failures on a fresh connection) to cluster peers.")
	telRoundtrip = telemetry.Default.Histogram("knor_net_roundtrip_seconds",
		"Round-trip latency of request/response exchanges over the transport (serving RPCs).",
		telemetry.DefLatencyBuckets())
	telPeerErrors = telemetry.Default.Counter("knor_net_peer_errors_total",
		"Connections to peers that failed mid-stream (read/write errors after establishment).")
)

// ObserveRoundtrip records one request/response round trip over the
// transport in knor_net_roundtrip_seconds — called by the layers that
// own the exchange (the serving hub's RPCs), since only they see both
// endpoints of the timing.
func ObserveRoundtrip(seconds float64) { telRoundtrip.Observe(seconds) }
