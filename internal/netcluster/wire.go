// Package netcluster is the real multi-process cluster substrate: the
// Transport seam the distributed trainer (internal/dist) and the
// sharded serving layer (internal/shardserve) run over when the
// "machines" are actual OS processes instead of internal/cluster's
// simulated ones.
//
// The package has three layers:
//
//   - wire.go: a versioned binary frame codec — every message between
//     processes is one length-prefixed frame with a fixed 16-byte
//     header (magic, codec version, frame type, element width, a
//     sequence tag, payload length). Decoding never panics and never
//     reads past the declared length; malformed input yields typed
//     errors (ErrBadMagic, ErrBadVersion, ErrFrameTooLarge, ...).
//   - transport.go / sim.go: point-to-point frame delivery between M
//     ranks. TCPTransport speaks the codec over real sockets (join
//     handshake, rank assignment, connection reuse, write deadlines);
//     SimTransport moves the same frames between goroutines while
//     charging internal/cluster's alpha-beta costs, so the simulated
//     and real paths are interchangeable behind one interface.
//   - collectives.go / hub.go: the collectives knord's iteration merge
//     needs (ring allgather with a fixed-rank-order fold, gather) and
//     the serving-side hub/peer protocol (shard spread, assignment
//     RPC, heartbeats) behind the shardserve fan-out.
//
// Parity discipline: every reduction *value* is folded in fixed rank
// order (the same left-to-right order internal/dist's simulated
// collective uses), so an M-process run is bit-identical to the
// M-machine simulated run and to the single-process oracle at both
// element widths.
package netcluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"knor/internal/blas"
	"knor/internal/telemetry"
)

// Frame header layout, 16 bytes, big-endian:
//
//	offset size field
//	0      4    magic 0x6B6E6F72 ("knor")
//	4      1    codec version (1 or 2)
//	5      1    frame type
//	6      1    element width: 0 (opaque), 4 (float32) or 8 (float64)
//	7      1    v1: reserved, must be 0; v2: extension flags
//	8      4    seq: collective round / RPC correlation tag
//	12     4    payload length in bytes (extensions included)
//	16     ...  [v2 extensions] payload
//
// Version discipline: version 2 exists only to mark the presence of a
// payload-prefix extension (today: the trace context). A frame with no
// extension is always emitted as version 1 — byte-for-byte what the v1
// encoder wrote — so a v2 process talking to a v1 process degrades to
// exactly the old wire format, and the decoder rejects a v2 header
// whose flags byte names no extension (the encoder never produces
// one). The reader accepts both versions.
const (
	frameMagic     = 0x6b6e6f72 // "knor"
	codecVersionV1 = 1
	codecVersion   = 2
	headerBytes    = 16
)

// Extension flags (header byte 7, version 2 frames only). Bits without
// a name here are reserved and rejected.
const (
	// flagTrace: the payload is prefixed with a trace-context extension
	// (see appendTraceExt for the layout).
	flagTrace = byte(1 << 0)

	knownFlags = flagTrace
)

// MaxFrameBytes bounds a frame's payload: a peer announcing a larger
// length is rejected with ErrFrameTooLarge before any allocation, so a
// corrupt or malicious length field can neither OOM nor hang the
// reader. 64 MiB comfortably holds the largest real payload (a k×d
// accumulator or a shard of centroids) while staying far below
// anything allocation-hazardous.
const MaxFrameBytes = 64 << 20

// Frame types. The bootstrap pair (join/assignRank) and hello carry
// the handshake; the rest are the collective and serving payloads.
const (
	// FrameJoin is a worker's handshake: payload = its listen address
	// and config digest (joinPayload).
	FrameJoin = byte(iota + 1)
	// FrameAssignRank is the coordinator's reply: payload = assigned
	// rank and the full rank-ordered roster of listen addresses.
	FrameAssignRank
	// FrameHello identifies the dialing rank on a mesh connection.
	FrameHello
	// FrameAccum carries one rank's serialized delta accumulator +
	// iteration stats around the allgather ring.
	FrameAccum
	// FrameGather carries a rank's final assignments to rank 0.
	FrameGather
	// FrameMinPairs carries (argmin, dist) pairs for the min-allreduce.
	FrameMinPairs
	// FramePulse is a liveness heartbeat (empty payload).
	FramePulse
	// FrameShard installs one shard of a model's centroids on a peer.
	FrameShard
	// FrameShardDrop retires a shard copy from a peer.
	FrameShardDrop
	// FrameAssignReq asks a peer to answer query rows against a shard.
	FrameAssignReq
	// FrameAssignResp answers a FrameAssignReq (same seq).
	FrameAssignResp
	// FrameError answers any request with a failure (payload = message).
	FrameError
	// FrameMetrics pulls a peer's telemetry registry snapshot: an empty
	// request answered with a serialized snapshot (same seq) — the
	// metrics-federation RPC behind GET /metrics/cluster.
	FrameMetrics
	frameTypeMax
)

// frameTypeName names each type for the knor_net_frames_total label.
func frameTypeName(t byte) string {
	switch t {
	case FrameJoin:
		return "join"
	case FrameAssignRank:
		return "assign_rank"
	case FrameHello:
		return "hello"
	case FrameAccum:
		return "accum"
	case FrameGather:
		return "gather"
	case FrameMinPairs:
		return "min_pairs"
	case FramePulse:
		return "pulse"
	case FrameShard:
		return "shard"
	case FrameShardDrop:
		return "shard_drop"
	case FrameAssignReq:
		return "assign_req"
	case FrameAssignResp:
		return "assign_resp"
	case FrameError:
		return "error"
	case FrameMetrics:
		return "metrics"
	default:
		return "unknown"
	}
}

// Typed decode errors. Every malformed input maps to exactly one of
// these (possibly wrapped with position detail); decoding never panics
// and never blocks past the declared payload length.
var (
	// ErrBadMagic: the stream does not start with the knor frame magic.
	ErrBadMagic = errors.New("netcluster: bad frame magic")
	// ErrBadVersion: the frame's codec version is not ours.
	ErrBadVersion = errors.New("netcluster: unsupported codec version")
	// ErrBadType: the frame type byte is outside the known range.
	ErrBadType = errors.New("netcluster: unknown frame type")
	// ErrBadElem: the element-width byte is not 0, 4 or 8.
	ErrBadElem = errors.New("netcluster: bad element width")
	// ErrBadReserved: the reserved header byte is nonzero.
	ErrBadReserved = errors.New("netcluster: nonzero reserved header byte")
	// ErrFrameTooLarge: the declared payload length exceeds the bound.
	ErrFrameTooLarge = errors.New("netcluster: frame exceeds max size")
	// ErrTruncated: the stream ended inside a header or payload.
	ErrTruncated = errors.New("netcluster: truncated frame")
	// ErrElemMismatch: a payload's element width disagrees with the
	// receiver's expectation (a 4-byte peer talking to an 8-byte one).
	ErrElemMismatch = errors.New("netcluster: element width mismatch")
	// ErrShortPayload: a payload is too small for its declared contents.
	ErrShortPayload = errors.New("netcluster: short payload")
)

// Frame is one decoded message.
type Frame struct {
	Type byte
	// Elem is the payload's element width: 4 or 8 for numeric payloads,
	// 0 for opaque ones (handshake, pulse, errors).
	Elem byte
	// Seq tags the frame: the iteration/step for collectives, the
	// request id for RPCs.
	Seq     uint32
	Payload []byte
	// Trace is the optional cross-process trace context (nil = none).
	// When set, the frame is emitted as codec version 2 with the trace
	// extension prefixed to the payload; Payload itself never includes
	// the extension bytes on either side.
	Trace *TraceExt
}

// TraceExt is the trace-context frame extension: the propagatable
// identity of a sampled trace (ID + parent span + sampled bit), plus —
// on replies — the worker-side spans recorded while answering,
// expressed as offsets from the moment the worker received the request
// (never absolute wall times, so cross-machine clock skew cannot
// produce a negative or misplaced span when the coordinator re-anchors
// them at its local dispatch time).
type TraceExt struct {
	TraceID uint64
	Parent  uint64
	Sampled bool
	Spans   []telemetry.RemoteSpan
}

// traceExtSize returns the encoded extension size in bytes (excluding
// the u32 length prefix).
func traceExtSize(t *TraceExt) int {
	n := 8 + 8 + 1 + 4
	for _, s := range t.Spans {
		n += 4 + len(s.Name) + 8 + 8
	}
	return n
}

// appendTraceExt appends the extension: u32 length, u64 trace ID, u64
// parent span, u8 sampled, u32 span count, then per span a
// length-prefixed name and u64 start/duration offsets in nanoseconds.
// All little-endian, matching the payload primitives.
func appendTraceExt(dst []byte, t *TraceExt) []byte {
	dst = AppendUint32(dst, uint32(traceExtSize(t)))
	dst = AppendUint64(dst, t.TraceID)
	dst = AppendUint64(dst, t.Parent)
	if t.Sampled {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = AppendUint32(dst, uint32(len(t.Spans)))
	for _, s := range t.Spans {
		dst = AppendString(dst, s.Name)
		dst = AppendUint64(dst, uint64(s.Start.Nanoseconds()))
		dst = AppendUint64(dst, uint64(s.Dur.Nanoseconds()))
	}
	return dst
}

// parseTraceExt decodes the extension at the head of b, returning the
// extension and the offset of the real payload. Strict: the declared
// length must exactly cover the span list and the sampled byte must be
// 0 or 1, so decode→encode is an involution on the valid set.
func parseTraceExt(b []byte) (*TraceExt, int, error) {
	extLen, err := Uint32At(b, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: trace extension length", ErrShortPayload)
	}
	end := 4 + int(extLen)
	if extLen > uint32(MaxFrameBytes) || end > len(b) {
		return nil, 0, fmt.Errorf("%w: trace extension (%d bytes declared)", ErrShortPayload, extLen)
	}
	ext := b[:end]
	t := &TraceExt{}
	off := 4
	if t.TraceID, err = Uint64At(ext, off); err != nil {
		return nil, 0, err
	}
	if t.Parent, err = Uint64At(ext, off+8); err != nil {
		return nil, 0, err
	}
	off += 16
	if off >= len(ext) {
		return nil, 0, fmt.Errorf("%w: trace extension sampled bit", ErrShortPayload)
	}
	switch ext[off] {
	case 0:
		t.Sampled = false
	case 1:
		t.Sampled = true
	default:
		return nil, 0, fmt.Errorf("%w: trace extension sampled byte 0x%02x", ErrShortPayload, ext[off])
	}
	off++
	nspans, err := Uint32At(ext, off)
	if err != nil {
		return nil, 0, err
	}
	off += 4
	// Each span needs at least 20 bytes, so a hostile count is rejected
	// before any allocation proportional to it.
	if int(nspans) > (len(ext)-off)/20 {
		return nil, 0, fmt.Errorf("%w: trace extension declares %d spans", ErrShortPayload, nspans)
	}
	t.Spans = make([]telemetry.RemoteSpan, 0, nspans)
	for i := uint32(0); i < nspans; i++ {
		var s telemetry.RemoteSpan
		s.Name, off, err = StringAt(ext, off)
		if err != nil {
			return nil, 0, err
		}
		start, err := Uint64At(ext, off)
		if err != nil {
			return nil, 0, err
		}
		dur, err := Uint64At(ext, off+8)
		if err != nil {
			return nil, 0, err
		}
		off += 16
		s.Start = time.Duration(start)
		s.Dur = time.Duration(dur)
		t.Spans = append(t.Spans, s)
	}
	if off != end {
		return nil, 0, fmt.Errorf("%w: trace extension length %d does not match contents (%d)",
			ErrShortPayload, extLen, off-4)
	}
	return t, end, nil
}

// validElem reports whether e is a legal element-width byte.
func validElem(e byte) bool { return e == 0 || e == 4 || e == 8 }

// EncodeFrame appends f's wire form to dst and returns the result. A
// frame without extensions encodes as version 1 — bit-identical to the
// pre-extension codec — so the extension-free wire format never drifts
// and old peers interoperate; a trace context upgrades the frame to
// version 2 with the extension prefixed to the payload.
func EncodeFrame(dst []byte, f *Frame) ([]byte, error) {
	if f.Type == 0 || f.Type >= frameTypeMax {
		return dst, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
	if !validElem(f.Elem) {
		return dst, fmt.Errorf("%w: %d", ErrBadElem, f.Elem)
	}
	version, flags, extBytes := byte(codecVersionV1), byte(0), 0
	if f.Trace != nil {
		version, flags = codecVersion, flagTrace
		extBytes = 4 + traceExtSize(f.Trace)
	}
	total := extBytes + len(f.Payload)
	if total > MaxFrameBytes {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, total)
	}
	var h [headerBytes]byte
	binary.BigEndian.PutUint32(h[0:], frameMagic)
	h[4] = version
	h[5] = f.Type
	h[6] = f.Elem
	h[7] = flags
	binary.BigEndian.PutUint32(h[8:], f.Seq)
	binary.BigEndian.PutUint32(h[12:], uint32(total))
	dst = append(dst, h[:]...)
	if f.Trace != nil {
		dst = appendTraceExt(dst, f.Trace)
	}
	return append(dst, f.Payload...), nil
}

// WriteFrame writes f to w and returns the bytes written.
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	buf, err := EncodeFrame(make([]byte, 0, headerBytes+len(f.Payload)), f)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	if err != nil {
		return n, err
	}
	telBytesTx.Add(uint64(n))
	telFrames.With(frameTypeName(f.Type)).Inc()
	return n, nil
}

// ReadFrame reads one frame from r. Partial reads are retried
// (io.ReadFull); a stream ending mid-header or mid-payload yields
// ErrTruncated, a clean EOF before any header byte yields io.EOF, and
// every header-validation failure yields its typed error. The payload
// allocation is bounded by MaxFrameBytes.
func ReadFrame(r io.Reader) (*Frame, error) {
	var h [headerBytes]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if m := binary.BigEndian.Uint32(h[0:]); m != frameMagic {
		return nil, fmt.Errorf("%w: 0x%08x", ErrBadMagic, m)
	}
	version := h[4]
	if version != codecVersionV1 && version != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	f := &Frame{Type: h[5], Elem: h[6], Seq: binary.BigEndian.Uint32(h[8:])}
	if f.Type == 0 || f.Type >= frameTypeMax {
		return nil, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
	if !validElem(f.Elem) {
		return nil, fmt.Errorf("%w: %d", ErrBadElem, f.Elem)
	}
	flags := h[7]
	switch {
	case version == codecVersionV1 && flags != 0:
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadReserved, flags)
	case version == codecVersion && (flags&^knownFlags != 0 || flags == 0):
		// Unknown flag bits are malformed; a v2 header with no extension
		// is too — the encoder always downgrades extension-free frames to
		// v1, so such a header can only come from a broken peer.
		return nil, fmt.Errorf("%w: version 2 flags 0x%02x", ErrBadReserved, flags)
	}
	n := binary.BigEndian.Uint32(h[12:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return nil, fmt.Errorf("%w: payload (%d bytes): %v", ErrTruncated, n, err)
		}
	}
	if flags&flagTrace != 0 {
		ext, skip, err := parseTraceExt(f.Payload)
		if err != nil {
			return nil, err
		}
		f.Trace = ext
		f.Payload = f.Payload[skip:]
		if len(f.Payload) == 0 {
			f.Payload = nil
		}
	}
	telBytesRx.Add(uint64(headerBytes + int(n)))
	return f, nil
}

// --- payload primitives ------------------------------------------------
//
// Little-endian scalar packing shared by every numeric payload. The
// float bit patterns travel verbatim (math.Float64bits / Float32bits),
// so a value decoded on the far side is the identical float — the
// foundation of the bit-parity acceptance.

// AppendUint32 appends v little-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// Uint32At reads a little-endian uint32 at off.
func Uint32At(b []byte, off int) (uint32, error) {
	if off < 0 || off+4 > len(b) {
		return 0, ErrShortPayload
	}
	return binary.LittleEndian.Uint32(b[off:]), nil
}

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint64At reads a little-endian uint64 at off.
func Uint64At(b []byte, off int) (uint64, error) {
	if off < 0 || off+8 > len(b) {
		return 0, ErrShortPayload
	}
	return binary.LittleEndian.Uint64(b[off:]), nil
}

// AppendString appends a length-prefixed UTF-8 string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// StringAt reads a length-prefixed string at off, returning the string
// and the offset past it.
func StringAt(b []byte, off int) (string, int, error) {
	n, err := Uint32At(b, off)
	if err != nil {
		return "", 0, err
	}
	off += 4
	if uint32(len(b)-off) < n {
		return "", 0, ErrShortPayload
	}
	return string(b[off : off+int(n)]), off + int(n), nil
}

// AppendFloats appends vals at T's element width, little-endian, exact
// bit patterns.
func AppendFloats[T blas.Float](dst []byte, vals []T) []byte {
	switch vs := any(vals).(type) {
	case []float32:
		for _, v := range vs {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	case []float64:
		for _, v := range vs {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// FloatsAt decodes n values of type T at off into out (len >= n),
// returning the offset past them.
func FloatsAt[T blas.Float](b []byte, off, n int, out []T) (int, error) {
	eb := blas.ElemBytes[T]()
	if off < 0 || n < 0 || len(b)-off < n*eb {
		return 0, ErrShortPayload
	}
	switch os := any(out).(type) {
	case []float32:
		for i := 0; i < n; i++ {
			os[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[off+i*4:]))
		}
	case []float64:
		for i := 0; i < n; i++ {
			os[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off+i*8:]))
		}
	}
	return off + n*eb, nil
}

// AppendInt64s appends vals little-endian.
func AppendInt64s(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// Int64sAt decodes n int64s at off into out, returning the offset past
// them.
func Int64sAt(b []byte, off, n int, out []int64) (int, error) {
	if off < 0 || n < 0 || len(b)-off < n*8 {
		return 0, ErrShortPayload
	}
	for i := 0; i < n; i++ {
		out[i] = int64(binary.LittleEndian.Uint64(b[off+i*8:]))
	}
	return off + n*8, nil
}

// AppendInt32s appends vals little-endian.
func AppendInt32s(dst []byte, vals []int32) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// Int32sAt decodes n int32s at off into out, returning the offset past
// them.
func Int32sAt(b []byte, off, n int, out []int32) (int, error) {
	if off < 0 || n < 0 || len(b)-off < n*4 {
		return 0, ErrShortPayload
	}
	for i := 0; i < n; i++ {
		out[i] = int32(binary.LittleEndian.Uint32(b[off+i*4:]))
	}
	return off + n*4, nil
}

// CheckElem validates a frame's element width against the receiver's
// expected width, mapping disagreement to the typed ErrElemMismatch —
// a float32 process joined to a float64 cluster fails loudly at the
// first payload, never with silently reinterpreted bits.
func CheckElem(f *Frame, want int) error {
	if int(f.Elem) != want {
		return fmt.Errorf("%w: frame carries elem=%d, this rank runs elem=%d",
			ErrElemMismatch, f.Elem, want)
	}
	return nil
}
