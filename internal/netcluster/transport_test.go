package netcluster

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	_ Transport = (*TCPTransport)(nil)
	_ Transport = (*SimTransport)(nil)
)

// coordListener binds the coordinator's loopback listener up front so
// workers can join a port that is guaranteed bound.
func coordListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := ListenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// tcpCluster bootstraps an m-rank TCP cluster in-process on loopback
// and returns the transports indexed by rank.
func tcpCluster(t *testing.T, m int, digest string) []*TCPTransport {
	t.Helper()
	ln := coordListener(t)
	coordAddr := ln.Addr().String()
	out := make([]*TCPTransport, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := TCPOptions{
				Listen:           "127.0.0.1:0",
				Join:             coordAddr,
				Digest:           digest,
				BootstrapTimeout: 20 * time.Second,
			}
			if i == 0 {
				opts.Listen, opts.Join, opts.Machines, opts.Listener = coordAddr, "", m, ln
			}
			tr, err := DialCluster(opts)
			if err != nil {
				errs[i] = err
				return
			}
			out[tr.Rank()] = tr
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d bootstrap: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range out {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return out
}

// TestTCPBootstrap: the join handshake assigns every rank exactly
// once, all rosters agree, and every ordered pair of ranks can
// exchange frames in order over the established mesh.
func TestTCPBootstrap(t *testing.T) {
	const m = 4
	ts := tcpCluster(t, m, "boot")
	for r, tr := range ts {
		if tr == nil {
			t.Fatalf("rank %d missing (duplicate assignment elsewhere)", r)
		}
		if tr.Rank() != r || tr.Size() != m {
			t.Fatalf("rank %d reports rank=%d size=%d", r, tr.Rank(), tr.Size())
		}
		for s := 0; s < m; s++ {
			if tr.Addr(s) != ts[0].Addr(s) {
				t.Fatalf("roster disagrees at rank %d entry %d: %q vs %q", r, s, tr.Addr(s), ts[0].Addr(s))
			}
		}
	}
	// Full-mesh ordered exchange: every rank sends two frames to every
	// other rank; receivers see them in order with the right tags.
	var wg sync.WaitGroup
	errc := make(chan error, m)
	for r := 0; r < m; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr := ts[r]
			for to := 0; to < m; to++ {
				if to == r {
					continue
				}
				for k := 0; k < 2; k++ {
					f := &Frame{Type: FramePulse, Seq: uint32(r*100 + k), Payload: AppendUint32(nil, uint32(r))}
					if err := tr.Send(to, f); err != nil {
						errc <- err
						return
					}
				}
			}
			for from := 0; from < m; from++ {
				if from == r {
					continue
				}
				for k := 0; k < 2; k++ {
					f, err := tr.Recv(from)
					if err != nil {
						errc <- err
						return
					}
					got, _ := Uint32At(f.Payload, 0)
					if int(got) != from || f.Seq != uint32(from*100+k) {
						errc <- fmt.Errorf("rank %d: frame from %d carries origin=%d seq=%d (want seq=%d)",
							r, from, got, f.Seq, from*100+k)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// manualJoin dials a coordinator and sends a hand-rolled join frame,
// returning the open connection (the coordinator replies only after
// the roster fills, or immediately on rejection).
func manualJoin(t *testing.T, coord, advertise, digest string) net.Conn {
	t.Helper()
	var conn net.Conn
	var err error
	for i := 0; i < 50; i++ {
		conn, err = net.DialTimeout("tcp", coord, 2*time.Second)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial coordinator: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	join := AppendString(nil, advertise)
	join = AppendString(join, digest)
	if _, err := WriteFrame(conn, &Frame{Type: FrameJoin, Payload: join}); err != nil {
		t.Fatalf("write join: %v", err)
	}
	return conn
}

// readReply reads the coordinator's response on a manual join conn.
func readReply(t *testing.T, conn net.Conn) *Frame {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return f
}

// TestTCPRejectsDuplicateAddress: two joiners advertising the same
// listen address would be two processes claiming one rank slot; the
// coordinator rejects the second with an error frame and aborts the
// bootstrap.
func TestTCPRejectsDuplicateAddress(t *testing.T) {
	ln := coordListener(t)
	coordAddr := ln.Addr().String()
	done := make(chan error, 1)
	go func() {
		_, err := DialCluster(TCPOptions{
			Listener: ln, Machines: 3, Digest: "dup",
			BootstrapTimeout: 20 * time.Second,
		})
		done <- err
	}()
	manualJoin(t, coordAddr, "127.0.0.1:7777", "dup") // rank 1, reply deferred
	second := manualJoin(t, coordAddr, "127.0.0.1:7777", "dup")
	reply := readReply(t, second)
	if reply.Type != FrameError || !strings.Contains(string(reply.Payload), "duplicate") {
		t.Fatalf("want duplicate-rank error frame, got type=%d payload=%q", reply.Type, reply.Payload)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("coordinator should fail bootstrap on duplicate address, got %v", err)
	}
}

// TestTCPRejectsDigestMismatch: a joiner with a different config
// digest is refused before it can poison the cluster.
func TestTCPRejectsDigestMismatch(t *testing.T) {
	ln := coordListener(t)
	coordAddr := ln.Addr().String()
	done := make(chan error, 1)
	go func() {
		_, err := DialCluster(TCPOptions{
			Listener: ln, Machines: 2, Digest: "k=8,seed=1",
			BootstrapTimeout: 20 * time.Second,
		})
		done <- err
	}()
	conn := manualJoin(t, coordAddr, "127.0.0.1:7778", "k=9,seed=1")
	reply := readReply(t, conn)
	if reply.Type != FrameError || !strings.Contains(string(reply.Payload), "digest") {
		t.Fatalf("want digest-mismatch error frame, got type=%d payload=%q", reply.Type, reply.Payload)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("coordinator should fail bootstrap on digest mismatch, got %v", err)
	}
}

// TestTCPPeerDeath: once a peer's process goes away, pending and
// future Recvs from it return errors instead of hanging.
func TestTCPPeerDeath(t *testing.T) {
	ts := tcpCluster(t, 3, "death")
	ts[2].Close() // rank 2 "dies"
	deadline := time.After(10 * time.Second)
	got := make(chan error, 1)
	go func() {
		_, err := ts[0].Recv(2)
		got <- err
	}()
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("Recv from dead peer returned a frame")
		}
	case <-deadline:
		t.Fatal("Recv from dead peer hung")
	}
}

// TestTCPSelfSendRejected: ranks cannot address themselves or
// out-of-range peers.
func TestTCPSelfSendRejected(t *testing.T) {
	ts := tcpCluster(t, 2, "self")
	if err := ts[0].Send(0, &Frame{Type: FramePulse}); err == nil {
		t.Fatal("self-send should fail")
	}
	if err := ts[0].Send(5, &Frame{Type: FramePulse}); err == nil {
		t.Fatal("out-of-range send should fail")
	}
	if _, err := ts[1].Recv(7); err == nil {
		t.Fatal("out-of-range recv should fail")
	}
}
