// Package numaml is the generalized NUMA-aware machine-learning driver
// the paper's future-work section promises (§9): "a C++ interface upon
// which users may implement custom algorithms and benefit from our NUMA
// and external memory optimizations" — here as a Go interface.
//
// A Kernel expresses an iterative row-streaming algorithm: per-worker
// scratch state, a per-row update, an optional row-skip predicate (the
// hook MTI uses for k-means, reusable by any bound-based pruning), and
// a post-barrier reduction. The Driver supplies what knori supplies to
// k-means: NUMA-partitioned data placement, bound worker threads,
// per-thread state with a single barrier per iteration, and the
// deterministic virtual-time accounting of the simulated machine.
package numaml

import (
	"fmt"
	"sync"
	"sync/atomic"

	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/simclock"
)

// Scratch is a worker's thread-local state for one iteration.
type Scratch interface{}

// Kernel is a row-streaming iterative algorithm.
type Kernel interface {
	// Begin is called once per iteration, before rows stream.
	Begin(iter int)
	// NewScratch allocates one worker's thread-local state; called once
	// per worker per run. Reset is the kernel's business, inside Begin
	// or Reduce.
	NewScratch(worker int) Scratch
	// NeedsRow reports whether row i must be visited this iteration.
	// Returning false elides the row's compute and (in SEM settings)
	// its I/O — the clause-1 hook.
	NeedsRow(iter, i int) bool
	// Process visits one row. FlopsUsed should return the approximate
	// flop count of the visit for the simulated clock; kernels with
	// uniform row cost can return a constant.
	Process(s Scratch, i int, row []float64)
	// RowFlops is the approximate flops per processed row, used by the
	// virtual-time accounting.
	RowFlops() int
	// Reduce folds the worker scratches after the barrier and returns
	// whether the algorithm has converged.
	Reduce(scratches []Scratch, iter int) bool
}

// Config mirrors the relevant part of the k-means config.
type Config struct {
	MaxIters  int
	Threads   int
	TaskSize  int
	Topo      numa.Topology
	Placement numa.PlacementPolicy
	Sched     sched.Policy
	Model     simclock.CostModel
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.MaxIters <= 0 {
		c.MaxIters = 100
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.TaskSize <= 0 {
		c.TaskSize = sched.DefaultTaskSize
	}
	if c.Topo.Nodes == 0 {
		c.Topo = numa.Topology{Nodes: 1, CoresPerNode: c.Threads}
	}
	if c.Model == (simclock.CostModel{}) {
		c.Model = simclock.DefaultCostModel()
	}
	return c
}

// Stats summarises a driver run.
type Stats struct {
	Iters       int
	Converged   bool
	SimSeconds  float64
	RowsVisited uint64
}

// Run streams the data through the kernel until convergence. The
// parallel pass is real (goroutines, per-worker scratch, one barrier);
// the scheduling and NUMA costs are replayed in virtual time exactly as
// the k-means engine does.
func Run(data *matrix.Dense, k Kernel, cfg Config) (*Stats, error) {
	if data.Rows() == 0 {
		return nil, fmt.Errorf("numaml: empty data")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	n, d := data.Rows(), data.Cols()
	place := numa.NewPlacement(cfg.Topo, cfg.Placement, n, cfg.TaskSize, cfg.Seed)
	machine := numa.NewMachine(cfg.Topo, cfg.Model)
	group := simclock.NewGroup(cfg.Threads, cfg.Model)
	scheduler := sched.New(cfg.Sched, cfg.Threads, func(w int) int {
		return cfg.Topo.NodeOfThread(w, cfg.Threads)
	})
	tasks := sched.MakeTasks(n, cfg.TaskSize, place.NodeOfRow)
	costs := make([]struct {
		rows  int
		bytes int
	}, len(tasks))

	scratches := make([]Scratch, cfg.Threads)
	for w := range scratches {
		scratches[w] = k.NewScratch(w)
	}

	stats := &Stats{}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		k.Begin(iter)

		// Real parallel pass over tasks.
		var cursor int64
		var visited uint64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local uint64
				for {
					ti := int(atomic.AddInt64(&cursor, 1)) - 1
					if ti >= len(tasks) {
						break
					}
					t := tasks[ti]
					rows, bytes := 0, 0
					for i := t.Lo; i < t.Hi; i++ {
						if !k.NeedsRow(iter, i) {
							continue
						}
						rows++
						bytes += d * 8
						k.Process(scratches[w], i, data.Row(i))
					}
					costs[ti].rows = rows
					costs[ti].bytes = bytes
					local += uint64(rows)
				}
				atomic.AddUint64(&visited, local)
			}(w)
		}
		wg.Wait()
		stats.RowsVisited += visited

		// Virtual replay through the scheduler, as in the kmeans engine.
		scheduler.Reset(tasks)
		done := make([]bool, cfg.Threads)
		remaining := cfg.Threads
		flops := float64(k.RowFlops())
		for remaining > 0 {
			w := -1
			for i := 0; i < cfg.Threads; i++ {
				if done[i] {
					continue
				}
				if w < 0 || group.Clock(i).Now() < group.Clock(w).Now() {
					w = i
				}
			}
			task, ok := scheduler.Next(w)
			if !ok {
				done[w] = true
				remaining--
				continue
			}
			clock := group.Clock(w)
			at := cfg.Topo.NodeOfThread(w, cfg.Threads)
			ioEnd := machine.TouchAsync(clock.Now(), at, task.Node, costs[task.ID].bytes)
			clock.Advance(float64(costs[task.ID].rows)*flops*cfg.Model.FlopTime +
				float64(task.Rows())*cfg.Model.RowOverhead)
			clock.AdvanceTo(ioEnd)
		}
		group.Barrier()

		converged := k.Reduce(scratches, iter)
		stats.Iters = iter + 1
		stats.SimSeconds = group.Max()
		if converged {
			stats.Converged = true
			break
		}
	}
	return stats, nil
}
