package numaml

import (
	"sort"

	"knor/internal/matrix"
)

// KNN answers k-nearest-neighbour queries with a NUMA-parallel brute
// force scan expressed as a single-iteration Kernel — another of the
// paper's future-work targets (§9 cites Duda & Hart). Each worker keeps
// a bounded max-heap per query over its shard; the reduction merges
// per-worker heaps.
type KNN struct {
	Queries *matrix.Dense
	K       int

	result [][]Neighbor
}

// Neighbor is one query result.
type Neighbor struct {
	Row    int
	SqDist float64
}

type knnScratch struct {
	heaps [][]Neighbor // one bounded max-heap per query
}

// NewKNN prepares a query batch.
func NewKNN(queries *matrix.Dense, k int) *KNN {
	if k <= 0 {
		k = 1
	}
	return &KNN{Queries: queries, K: k}
}

// Begin implements Kernel.
func (q *KNN) Begin(int) {}

// NewScratch implements Kernel.
func (q *KNN) NewScratch(int) Scratch {
	h := make([][]Neighbor, q.Queries.Rows())
	for i := range h {
		h[i] = make([]Neighbor, 0, q.K)
	}
	return &knnScratch{heaps: h}
}

// NeedsRow implements Kernel.
func (q *KNN) NeedsRow(int, int) bool { return true }

// RowFlops implements Kernel.
func (q *KNN) RowFlops() int { return 2 * q.Queries.Rows() * q.Queries.Cols() }

// Process implements Kernel: compare a data row against every query.
func (q *KNN) Process(s Scratch, i int, row []float64) {
	sc := s.(*knnScratch)
	for qi := 0; qi < q.Queries.Rows(); qi++ {
		d := matrix.SqDist(q.Queries.Row(qi), row)
		sc.heaps[qi] = pushBounded(sc.heaps[qi], Neighbor{Row: i, SqDist: d}, q.K)
	}
}

// Reduce implements Kernel: merge the per-worker heaps; one iteration.
func (q *KNN) Reduce(scratches []Scratch, _ int) bool {
	nq := q.Queries.Rows()
	q.result = make([][]Neighbor, nq)
	for qi := 0; qi < nq; qi++ {
		var merged []Neighbor
		for _, s := range scratches {
			merged = append(merged, s.(*knnScratch).heaps[qi]...)
		}
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].SqDist != merged[b].SqDist {
				return merged[a].SqDist < merged[b].SqDist
			}
			return merged[a].Row < merged[b].Row
		})
		if len(merged) > q.K {
			merged = merged[:q.K]
		}
		q.result[qi] = merged
	}
	return true // single pass
}

// Neighbors returns the result for query qi after a Run.
func (q *KNN) Neighbors(qi int) []Neighbor { return q.result[qi] }

var _ Kernel = (*KNN)(nil)

// pushBounded inserts nb into a bounded max-heap (stored as a slice
// with the worst element at index 0 once full).
func pushBounded(h []Neighbor, nb Neighbor, bound int) []Neighbor {
	if len(h) < bound {
		h = append(h, nb)
		if len(h) == bound {
			// heapify (max-heap by SqDist)
			for i := len(h)/2 - 1; i >= 0; i-- {
				siftDown(h, i)
			}
		}
		return h
	}
	if nb.SqDist >= h[0].SqDist {
		return h
	}
	h[0] = nb
	siftDown(h, 0)
	return h
}

func siftDown(h []Neighbor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && h[l].SqDist > h[largest].SqDist {
			largest = l
		}
		if r < len(h) && h[r].SqDist > h[largest].SqDist {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
