package numaml

import (
	"fmt"
	"math"

	"knor/internal/matrix"
)

// GMM fits a Gaussian mixture with diagonal covariance by EM, expressed
// as a numaml Kernel — the first of the paper's future-work algorithms
// (§9 cites Gauss for GMM). The E step is the row kernel (per-worker
// accumulation of responsibilities); the M step is the reduction.
type GMM struct {
	K, D int
	// Tol stops when the mean log-likelihood improves by less.
	Tol float64

	Means   *matrix.Dense // k×d
	Vars    *matrix.Dense // k×d diagonal covariances
	Weights []float64     // k mixing proportions

	n       int
	logLik  float64
	prevLik float64
	// iteration-constant terms recomputed in Begin
	logNorm []float64 // per-component -0.5*(d*log(2π)+Σlogσ²) + logπ
}

// gmmScratch is one worker's E-step accumulator.
type gmmScratch struct {
	wsum []float64 // k: Σ responsibilities
	msum []float64 // k*d: Σ r*x
	vsum []float64 // k*d: Σ r*x²
	lik  float64
	resp []float64 // k scratch
}

// NewGMM initialises a mixture from k-means-style seed centroids.
func NewGMM(seeds *matrix.Dense, tol float64) *GMM {
	k, d := seeds.Rows(), seeds.Cols()
	g := &GMM{K: k, D: d, Tol: tol, Means: seeds.Clone(), Vars: matrix.NewDense(k, d), Weights: make([]float64, k)}
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			g.Vars.Set(c, j, 1)
		}
		g.Weights[c] = 1 / float64(k)
	}
	g.logNorm = make([]float64, k)
	g.prevLik = math.Inf(-1)
	return g
}

// Begin implements Kernel.
func (g *GMM) Begin(int) {
	const log2pi = 1.8378770664093453
	for c := 0; c < g.K; c++ {
		s := -0.5 * float64(g.D) * log2pi
		for j := 0; j < g.D; j++ {
			s -= 0.5 * math.Log(g.Vars.At(c, j))
		}
		g.logNorm[c] = s + math.Log(g.Weights[c])
	}
	g.logLik = 0
	g.n = 0
}

// NewScratch implements Kernel.
func (g *GMM) NewScratch(int) Scratch {
	return &gmmScratch{
		wsum: make([]float64, g.K),
		msum: make([]float64, g.K*g.D),
		vsum: make([]float64, g.K*g.D),
		resp: make([]float64, g.K),
	}
}

// NeedsRow implements Kernel: EM has no sound row elision; every row
// contributes to every component each iteration.
func (g *GMM) NeedsRow(int, int) bool { return true }

// RowFlops implements Kernel: ~5 flops per dimension per component.
func (g *GMM) RowFlops() int { return 5 * g.K * g.D }

// Process implements Kernel: one row's E step.
func (g *GMM) Process(s Scratch, _ int, row []float64) {
	sc := s.(*gmmScratch)
	maxLog := math.Inf(-1)
	for c := 0; c < g.K; c++ {
		ll := g.logNorm[c]
		mean := g.Means.Row(c)
		vr := g.Vars.Row(c)
		for j, x := range row {
			diff := x - mean[j]
			ll -= 0.5 * diff * diff / vr[j]
		}
		sc.resp[c] = ll
		if ll > maxLog {
			maxLog = ll
		}
	}
	var norm float64
	for c := 0; c < g.K; c++ {
		sc.resp[c] = math.Exp(sc.resp[c] - maxLog)
		norm += sc.resp[c]
	}
	sc.lik += maxLog + math.Log(norm)
	for c := 0; c < g.K; c++ {
		r := sc.resp[c] / norm
		sc.wsum[c] += r
		m := sc.msum[c*g.D : (c+1)*g.D]
		v := sc.vsum[c*g.D : (c+1)*g.D]
		for j, x := range row {
			m[j] += r * x
			v[j] += r * x * x
		}
	}
}

// Reduce implements Kernel: the M step.
func (g *GMM) Reduce(scratches []Scratch, _ int) bool {
	const varFloor = 1e-6
	wsum := make([]float64, g.K)
	msum := make([]float64, g.K*g.D)
	vsum := make([]float64, g.K*g.D)
	total := 0.0
	g.logLik = 0
	for _, s := range scratches {
		sc := s.(*gmmScratch)
		g.logLik += sc.lik
		for c := 0; c < g.K; c++ {
			wsum[c] += sc.wsum[c]
		}
		for i := range msum {
			msum[i] += sc.msum[i]
			vsum[i] += sc.vsum[i]
		}
		// reset for next iteration
		for i := range sc.wsum {
			sc.wsum[i] = 0
		}
		for i := range sc.msum {
			sc.msum[i] = 0
			sc.vsum[i] = 0
		}
		sc.lik = 0
	}
	for c := 0; c < g.K; c++ {
		total += wsum[c]
	}
	if total == 0 {
		return true
	}
	g.n = int(math.Round(total))
	for c := 0; c < g.K; c++ {
		if wsum[c] <= 0 {
			continue // dead component keeps its parameters
		}
		inv := 1 / wsum[c]
		mean := g.Means.Row(c)
		vr := g.Vars.Row(c)
		for j := 0; j < g.D; j++ {
			mean[j] = msum[c*g.D+j] * inv
			v := vsum[c*g.D+j]*inv - mean[j]*mean[j]
			if v < varFloor {
				v = varFloor
			}
			vr[j] = v
		}
		g.Weights[c] = wsum[c] / total
	}
	meanLik := g.logLik / total
	prev := g.prevLik
	g.prevLik = meanLik
	return !math.IsInf(prev, -1) && math.Abs(meanLik-prev) <= g.Tol
}

// MeanLogLikelihood returns the last iteration's mean log-likelihood.
func (g *GMM) MeanLogLikelihood() float64 { return g.prevLik }

// Assign returns hard assignments (argmax responsibility) for data.
func (g *GMM) Assign(data *matrix.Dense) []int32 {
	out := make([]int32, data.Rows())
	resp := make([]float64, g.K)
	for i := 0; i < data.Rows(); i++ {
		row := data.Row(i)
		best := math.Inf(-1)
		for c := 0; c < g.K; c++ {
			ll := g.logNorm[c]
			mean := g.Means.Row(c)
			vr := g.Vars.Row(c)
			for j, x := range row {
				diff := x - mean[j]
				ll -= 0.5 * diff * diff / vr[j]
			}
			resp[c] = ll
			if ll > best {
				best = ll
				out[i] = int32(c)
			}
		}
	}
	return out
}

var _ Kernel = (*GMM)(nil)

// String implements fmt.Stringer.
func (g *GMM) String() string { return fmt.Sprintf("GMM(k=%d,d=%d)", g.K, g.D) }
