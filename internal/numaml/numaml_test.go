package numaml

import (
	"math"
	"sort"
	"testing"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/workload"
)

func mlData(n, d, clusters int, seed int64) *matrix.Dense {
	return workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: n, D: d,
		Clusters: clusters, Spread: 0.05, Seed: seed,
	})
}

func mlCfg(threads int) Config {
	return Config{
		MaxIters: 50, Threads: threads, TaskSize: 64,
		Topo: numa.Topology{Nodes: 2, CoresPerNode: 4},
	}
}

// countKernel visits every row and counts visits — exercises the driver
// plumbing independent of any algorithm.
type countKernel struct {
	n      int
	counts []int64
	iters  int
}

type countScratch struct{ local []int64 }

func (c *countKernel) Begin(int)     {}
func (c *countKernel) RowFlops() int { return 1 }
func (c *countKernel) NeedsRow(iter, i int) bool {
	return i%2 == 0 || iter == 0 // odd rows skipped after iteration 0
}
func (c *countKernel) NewScratch(int) Scratch {
	return &countScratch{local: make([]int64, c.n)}
}
func (c *countKernel) Process(s Scratch, i int, _ []float64) {
	s.(*countScratch).local[i]++
}
func (c *countKernel) Reduce(ss []Scratch, iter int) bool {
	c.iters++
	return c.iters >= 3
}

func TestDriverVisitsRowsExactlyOnce(t *testing.T) {
	data := mlData(500, 4, 3, 1)
	k := &countKernel{n: 500}
	stats, err := Run(data, k, mlCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iters != 3 || !stats.Converged {
		t.Fatalf("iters=%d converged=%v", stats.Iters, stats.Converged)
	}
	// iteration 0: all rows; iterations 1,2: even rows only.
	want := uint64(500 + 2*250)
	if stats.RowsVisited != want {
		t.Fatalf("visited %d, want %d", stats.RowsVisited, want)
	}
	if stats.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestDriverEmptyData(t *testing.T) {
	if _, err := Run(matrix.NewDense(0, 4), &countKernel{}, mlCfg(2)); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestGMMRecoversMixture(t *testing.T) {
	spec := workload.Spec{Kind: workload.NaturalClusters, N: 3000, D: 6, Clusters: 4, Spread: 0.05, Seed: 3}
	data := workload.Generate(spec)
	// Seed from k-means for stability, as users would.
	km, err := kmeans.RunSerial(data, kmeans.Config{K: 4, MaxIters: 30, Init: kmeans.InitKMeansPP, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGMM(km.Centroids, 1e-8)
	stats, err := Run(data, g, mlCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatal("GMM did not converge")
	}
	// Weights sum to 1.
	var wsum float64
	for _, w := range g.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum %g", wsum)
	}
	// Learned variances should be near spread² = 0.0025.
	for c := 0; c < 4; c++ {
		for j := 0; j < 6; j++ {
			v := g.Vars.At(c, j)
			if v < 0.0005 || v > 0.02 {
				t.Fatalf("component %d var[%d]=%g far from 0.0025", c, j, v)
			}
		}
	}
	// Hard assignments should agree with k-means on separated data.
	ga := g.Assign(data)
	agree := 0
	for i := range ga {
		if ga[i] == km.Assign[i] {
			agree++
		}
	}
	if agree < len(ga)*95/100 {
		t.Fatalf("GMM and k-means agree on only %d/%d rows", agree, len(ga))
	}
}

func TestGMMLikelihoodImproves(t *testing.T) {
	data := mlData(1000, 4, 3, 5)
	km, _ := kmeans.RunSerial(data, kmeans.Config{K: 3, MaxIters: 2, Init: kmeans.InitForgy, Seed: 1})
	g := NewGMM(km.Centroids, 0) // never converges by tolerance
	cfg := mlCfg(2)
	cfg.MaxIters = 1
	Run(data, g, cfg)
	first := g.MeanLogLikelihood()
	g2 := NewGMM(km.Centroids, 0)
	cfg.MaxIters = 10
	Run(data, g2, cfg)
	if g2.MeanLogLikelihood() < first-1e-9 {
		t.Fatalf("likelihood decreased: %g -> %g", first, g2.MeanLogLikelihood())
	}
}

func TestGMMThreadCountInvariance(t *testing.T) {
	data := mlData(800, 4, 3, 7)
	km, _ := kmeans.RunSerial(data, kmeans.Config{K: 3, MaxIters: 10, Init: kmeans.InitKMeansPP, Seed: 1})
	run := func(threads int) *GMM {
		g := NewGMM(km.Centroids, 1e-10)
		cfg := mlCfg(threads)
		cfg.MaxIters = 15
		if _, err := Run(data, g, cfg); err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g4 := run(1), run(4)
	if !g1.Means.Equal(g4.Means, 1e-6) {
		t.Fatal("GMM means differ across thread counts")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	data := mlData(600, 5, 3, 9)
	queries := matrix.NewDense(4, 5)
	for i := 0; i < 4; i++ {
		copy(queries.Row(i), data.Row(i*100))
	}
	q := NewKNN(queries, 7)
	stats, err := Run(data, q, mlCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iters != 1 {
		t.Fatalf("kNN took %d iterations", stats.Iters)
	}
	for qi := 0; qi < 4; qi++ {
		// Brute-force reference.
		type nb struct {
			row int
			d   float64
		}
		var ref []nb
		for i := 0; i < data.Rows(); i++ {
			ref = append(ref, nb{i, matrix.SqDist(queries.Row(qi), data.Row(i))})
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].d != ref[b].d {
				return ref[a].d < ref[b].d
			}
			return ref[a].row < ref[b].row
		})
		got := q.Neighbors(qi)
		if len(got) != 7 {
			t.Fatalf("query %d returned %d neighbours", qi, len(got))
		}
		for j := range got {
			if got[j].SqDist != ref[j].d {
				t.Fatalf("query %d neighbour %d: dist %g want %g", qi, j, got[j].SqDist, ref[j].d)
			}
		}
		// Nearest neighbour of a data row is itself.
		if got[0].Row != qi*100 || got[0].SqDist != 0 {
			t.Fatalf("query %d: self not nearest (%+v)", qi, got[0])
		}
	}
}

func TestKNNSmallK(t *testing.T) {
	data := mlData(50, 3, 2, 11)
	q := NewKNN(data, 0) // clamps to 1
	if q.K != 1 {
		t.Fatalf("K = %d", q.K)
	}
}
