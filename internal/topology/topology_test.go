package topology

import (
	"sync"
	"testing"
	"time"
)

// collectEvents subscribes a recorder before any transitions fire.
type collectEvents struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectEvents) record(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectEvents) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSweepDetectsDeathAndPulseRecovers(t *testing.T) {
	topo := New(Config{Machines: 3, PulseTimeout: 100 * time.Millisecond})
	defer topo.Close()
	rec := &collectEvents{}
	topo.Subscribe(rec.record)

	base := time.Now()
	for m := 0; m < 3; m++ {
		topo.Pulse(m, base)
	}
	// Within the timeout nothing dies.
	if dead := topo.Sweep(base.Add(50 * time.Millisecond)); len(dead) != 0 {
		t.Fatalf("premature deaths: %v", dead)
	}
	// Machine 1 goes silent; the others keep pulsing.
	later := base.Add(200 * time.Millisecond)
	topo.Pulse(0, later)
	topo.Pulse(2, later)
	dead := topo.Sweep(later)
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("Sweep returned %v, want [1]", dead)
	}
	if topo.IsLive(1) || !topo.IsLive(0) || !topo.IsLive(2) {
		t.Fatalf("state after sweep: live=%v", topo.Live())
	}
	if got := topo.Live(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Live() = %v, want [0 2]", got)
	}
	// A re-sweep is idempotent: machine 1 is already dead, and 0/2
	// pulsed recently enough to stay live.
	if dead := topo.Sweep(later.Add(50 * time.Millisecond)); len(dead) != 0 {
		t.Fatalf("re-sweep killed %v", dead)
	}
	// A pulse from the dead machine is the recovery signal.
	epochBefore := topo.Epoch()
	topo.Pulse(1, later.Add(300*time.Millisecond))
	if !topo.IsLive(1) {
		t.Fatal("pulse did not recover machine 1")
	}
	if topo.Epoch() <= epochBefore {
		t.Fatal("recovery did not advance the epoch")
	}
	waitFor(t, "dead+recovered events", func() bool { return len(rec.snapshot()) >= 2 })
	evs := rec.snapshot()
	if evs[0] != (Event{Machine: 1, To: Dead}) || evs[1] != (Event{Machine: 1, To: Live}) {
		t.Fatalf("events %v, want dead(1) then live(1)", evs)
	}
}

func TestExplicitTransitions(t *testing.T) {
	topo := New(Config{Machines: 4})
	defer topo.Close()
	rec := &collectEvents{}
	topo.Subscribe(rec.record)

	topo.MarkDead(2)
	topo.MarkDead(2) // idempotent: no second event
	if topo.IsLive(2) {
		t.Fatal("MarkDead left machine live")
	}
	topo.MarkRecovered(2)
	topo.MarkRecovered(2)
	if !topo.IsLive(2) {
		t.Fatal("MarkRecovered left machine dead")
	}
	waitFor(t, "both transitions", func() bool { return len(rec.snapshot()) >= 2 })
	time.Sleep(5 * time.Millisecond) // allow any spurious duplicates to land
	if evs := rec.snapshot(); len(evs) != 2 {
		t.Fatalf("expected exactly 2 events, got %v", evs)
	}
	// A recovered machine survives an immediate sweep: its pulse window
	// restarted at recovery.
	if dead := topo.Sweep(time.Now()); len(dead) != 0 {
		t.Fatalf("sweep re-killed recovered machine: %v", dead)
	}
}

func TestStartClockDetectsSilentMachine(t *testing.T) {
	topo := New(Config{Machines: 2, PulseTimeout: 30 * time.Millisecond})
	defer topo.Close()
	var downMu sync.Mutex
	down := false
	stop := topo.StartClock(5*time.Millisecond, func(m int) bool {
		if m != 1 {
			return true
		}
		downMu.Lock()
		defer downMu.Unlock()
		return !down
	})
	defer stop()

	time.Sleep(60 * time.Millisecond)
	if !topo.IsLive(1) {
		t.Fatal("machine 1 died while pulsing")
	}
	downMu.Lock()
	down = true
	downMu.Unlock()
	waitFor(t, "clock-driven death", func() bool { return !topo.IsLive(1) })
	if !topo.IsLive(0) {
		t.Fatal("machine 0 collateral damage")
	}
	downMu.Lock()
	down = false
	downMu.Unlock()
	waitFor(t, "clock-driven recovery", func() bool { return topo.IsLive(1) })
}

func TestPlace(t *testing.T) {
	live := []int{0, 1, 2, 3}
	// R=1 over a fully-live cluster is the identity layout.
	for s := 0; s < 4; s++ {
		if got := Place(s, 1, live); len(got) != 1 || got[0] != s {
			t.Fatalf("Place(%d,1) = %v, want [%d]", s, got, s)
		}
	}
	// Replicas land on distinct machines, wrapping.
	if got := Place(3, 2, live); got[0] != 3 || got[1] != 0 {
		t.Fatalf("Place(3,2) = %v, want [3 0]", got)
	}
	// R clamps to the live count; all entries stay distinct.
	got := Place(1, 9, []int{4, 7})
	if len(got) != 2 || got[0] != 7 || got[1] != 4 {
		t.Fatalf("Place clamp = %v, want [7 4]", got)
	}
	if Place(0, 2, nil) != nil {
		t.Fatal("empty live set must place nowhere")
	}
	// Deterministic: same inputs, same layout.
	a := Place(5, 3, []int{1, 2, 5, 8})
	b := Place(5, 3, []int{1, 2, 5, 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic placement: %v vs %v", a, b)
		}
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	topo := New(Config{Machines: 2})
	rec := &collectEvents{}
	topo.Subscribe(rec.record)
	topo.Close()
	topo.Close() // idempotent
	// Post-close transitions still update state but deliver nothing.
	topo.MarkDead(0)
	if topo.IsLive(0) {
		t.Fatal("post-close MarkDead lost")
	}
	time.Sleep(5 * time.Millisecond)
	if len(rec.snapshot()) != 0 {
		t.Fatal("event delivered after Close")
	}
}
