// Package topology is the cluster membership layer behind replicated
// shard serving: it tracks which simulated machines are live, detects
// death and recovery from health pulses, and announces every transition
// over channels drained by a dispatcher goroutine (the seaweedfs
// topology shape: chanDeadDataNodes / chanRecoveredDataNodes), so
// placement layers can re-spread shard replicas as machines come and
// go.
//
// Two detection paths feed the same transitions:
//
//   - Pulse + Sweep: machines report periodic health pulses; a sweep
//     marks any live machine whose last pulse is older than
//     PulseTimeout dead. This is the production path (knorserve runs a
//     pulse clock over its simulated machines).
//   - MarkDead / MarkRecovered: explicit transitions, the
//     fault-injection path the chaos harness drives so kill schedules
//     replay deterministically from a seed.
//
// The package deliberately owns no placement state; it answers "who is
// live" (Live, IsLive, Epoch) and calls subscribers on every
// transition. Place is the one placement primitive shared with the
// shard layer: a deterministic spread of a shard's replicas over the
// live set.
package topology

import (
	"fmt"
	"sync"
	"time"

	"knor/internal/telemetry"
)

// State is a machine's membership state.
type State int32

const (
	// Live machines receive placements and answer fan-outs.
	Live State = iota
	// Dead machines are skipped by placement until they recover.
	Dead
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Live:
		return "live"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Event is one membership transition, delivered to subscribers in
// dispatch order.
type Event struct {
	Machine int
	To      State
}

// Config sizes a topology.
type Config struct {
	// Machines is the cluster size (machine IDs 0..Machines-1).
	Machines int
	// PulseTimeout is how long a machine may go without a health pulse
	// before a Sweep declares it dead (default 2s).
	PulseTimeout time.Duration
}

// DefaultPulseTimeout is the liveness window when Config leaves
// PulseTimeout zero.
const DefaultPulseTimeout = 2 * time.Second

// Topology tracks machine membership. All methods are safe for
// concurrent use. Close stops the dispatcher; transitions after Close
// still update state but are no longer delivered.
type Topology struct {
	cfg Config

	mu        sync.RWMutex
	state     []State
	lastPulse []time.Time
	epoch     uint64
	subs      []func(Event)

	chanDead      chan int
	chanRecovered chan int
	closed        chan struct{}
	closeOnce     sync.Once
	dispatchDone  chan struct{}
}

// New builds a topology with every machine live, as a cluster boots:
// death is detected, never assumed.
func New(cfg Config) *Topology {
	if cfg.Machines < 1 {
		panic("topology: need at least one machine")
	}
	if cfg.PulseTimeout <= 0 {
		cfg.PulseTimeout = DefaultPulseTimeout
	}
	t := &Topology{
		cfg:           cfg,
		state:         make([]State, cfg.Machines),
		lastPulse:     make([]time.Time, cfg.Machines),
		chanDead:      make(chan int),
		chanRecovered: make(chan int),
		closed:        make(chan struct{}),
		dispatchDone:  make(chan struct{}),
	}
	now := time.Now()
	for i := range t.lastPulse {
		t.lastPulse[i] = now
	}
	telMachinesLive.Set(float64(cfg.Machines))
	go t.dispatch()
	return t
}

// Machines returns the cluster size.
func (t *Topology) Machines() int { return t.cfg.Machines }

// dispatch drains the transition channels and fans events out to
// subscribers. Subscribers run on this goroutine, one event at a time,
// and may call back into the topology's read methods (Live, IsLive).
func (t *Topology) dispatch() {
	defer close(t.dispatchDone)
	for {
		select {
		case m := <-t.chanDead:
			t.notify(Event{Machine: m, To: Dead})
		case m := <-t.chanRecovered:
			t.notify(Event{Machine: m, To: Live})
		case <-t.closed:
			return
		}
	}
}

func (t *Topology) notify(e Event) {
	t.mu.RLock()
	subs := t.subs
	t.mu.RUnlock()
	for _, fn := range subs {
		fn(e)
	}
}

// Subscribe registers fn to run on the dispatcher goroutine for every
// transition delivered after this call. fn must not block for long: it
// serialises with every other subscriber.
func (t *Topology) Subscribe(fn func(Event)) {
	t.mu.Lock()
	t.subs = append(t.subs, fn)
	t.mu.Unlock()
}

// send delivers one transition to the dispatcher unless the topology is
// closed. Called without t.mu held (the dispatcher's subscribers may
// read topology state).
func (t *Topology) send(ch chan int, m int) {
	select {
	case ch <- m:
	case <-t.closed:
	}
}

// Pulse records a health pulse from machine m observed at the given
// time. A pulse from a dead machine is the recovery signal. The
// interval between a machine's consecutive pulses feeds the
// health_pulse_seconds histogram, so a scrape shows pulse cadence (and
// a stalling pulser shows up as a fat tail).
func (t *Topology) Pulse(m int, at time.Time) {
	t.mu.Lock()
	if prev := t.lastPulse[m]; !prev.IsZero() && at.After(prev) {
		telPulseSeconds.Observe(at.Sub(prev).Seconds())
	}
	t.lastPulse[m] = at
	recovered := t.state[m] == Dead
	if recovered {
		t.transitionLocked(m, Live)
	}
	t.mu.Unlock()
	if recovered {
		t.send(t.chanRecovered, m)
	}
}

// Sweep marks every live machine whose last pulse is older than
// PulseTimeout dead, as of now, and returns the newly-dead machine IDs
// in ascending order.
func (t *Topology) Sweep(now time.Time) []int {
	t.mu.Lock()
	var dead []int
	for m := range t.state {
		if t.state[m] == Live && now.Sub(t.lastPulse[m]) > t.cfg.PulseTimeout {
			t.transitionLocked(m, Dead)
			dead = append(dead, m)
		}
	}
	t.mu.Unlock()
	for _, m := range dead {
		t.send(t.chanDead, m)
	}
	return dead
}

// MarkDead transitions machine m to Dead explicitly (fault injection,
// or an out-of-band failure signal). No-op if already dead.
func (t *Topology) MarkDead(m int) {
	t.mu.Lock()
	changed := t.state[m] == Live
	if changed {
		t.transitionLocked(m, Dead)
	}
	t.mu.Unlock()
	if changed {
		t.send(t.chanDead, m)
	}
}

// MarkRecovered transitions machine m to Live explicitly and restarts
// its pulse window so the next sweep does not immediately re-kill it.
// No-op if already live.
func (t *Topology) MarkRecovered(m int) {
	t.mu.Lock()
	changed := t.state[m] == Dead
	if changed {
		t.lastPulse[m] = time.Now()
		t.transitionLocked(m, Live)
	}
	t.mu.Unlock()
	if changed {
		t.send(t.chanRecovered, m)
	}
}

// transitionLocked flips machine m's state and updates the membership
// instruments. Caller holds t.mu and has verified the state changes.
func (t *Topology) transitionLocked(m int, to State) {
	t.state[m] = to
	t.epoch++
	telTransitions.With(to.String()).Inc()
	live := 0
	for _, s := range t.state {
		if s == Live {
			live++
		}
	}
	telMachinesLive.Set(float64(live))
	sev := telemetry.SevInfo
	if to == Dead {
		sev = telemetry.SevWarn
	}
	telemetry.Log("topology", sev, "membership transition",
		telemetry.F("machine", m), telemetry.F("to", to.String()),
		telemetry.F("live", live), telemetry.F("epoch", t.epoch))
}

// Live returns the live machine IDs in ascending order.
func (t *Topology) Live() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int, 0, len(t.state))
	for m, s := range t.state {
		if s == Live {
			out = append(out, m)
		}
	}
	return out
}

// IsLive reports whether machine m is live.
func (t *Topology) IsLive(m int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.state[m] == Live
}

// Epoch returns the membership epoch: it increments on every
// transition, so a placement layer can cheaply detect "has the live set
// changed since I planned?".
func (t *Topology) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Close stops the dispatcher and waits for it to drain. Subscribers
// receive no events after Close returns.
func (t *Topology) Close() {
	t.closeOnce.Do(func() {
		close(t.closed)
		<-t.dispatchDone
	})
}

// StartClock runs the production detection loop in the background:
// every `every`, each machine for which alive(m) returns true pulses,
// then a sweep retires machines that stopped pulsing. alive stands in
// for "the machine's pulser process is running" — knorserve wires it to
// the shard layer's kill switch so a killed simulated machine goes
// silent exactly like a dead process would. The returned stop function
// halts the clock (idempotent).
func (t *Topology) StartClock(every time.Duration, alive func(m int) bool) (stop func()) {
	if every <= 0 {
		every = t.cfg.PulseTimeout / 4
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				for m := 0; m < t.cfg.Machines; m++ {
					if alive == nil || alive(m) {
						t.Pulse(m, now)
					}
				}
				t.Sweep(now)
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Place returns the machines that should hold the replicas of shard s:
// up to r distinct entries of live, starting at live[s mod len(live)]
// and wrapping. Deterministic in (s, live), so every publisher computes
// the same layout; consecutive shards start on consecutive live
// machines, so load spreads evenly and the replicas of one shard land
// on distinct machines (the availability requirement: R-1 machine
// deaths cannot silence a shard). With replication 1 over a fully-live
// cluster this reduces to shard s -> machine s, the pre-replication
// layout.
func Place(s, r int, live []int) []int {
	if len(live) == 0 {
		return nil
	}
	if r > len(live) {
		r = len(live)
	}
	if r < 1 {
		r = 1
	}
	out := make([]int, r)
	for j := 0; j < r; j++ {
		out[j] = live[(s+j)%len(live)]
	}
	return out
}
