package topology

import "knor/internal/telemetry"

// Membership instruments, registered at init against telemetry.Default.
// The live gauge and transition counter update synchronously inside the
// transition (under the topology lock), so a scrape immediately after a
// kill already reflects it; only subscriber delivery is asynchronous.
var (
	telMachinesLive = telemetry.Default.Gauge("knor_topology_machines_live",
		"Machines currently in the Live membership state.")
	telTransitions = telemetry.Default.CounterVec("knor_topology_transitions_total",
		"Membership transitions by destination state (dead = detected or injected failure, live = recovery).",
		"to")
	telPulseSeconds = telemetry.Default.Histogram("knor_topology_health_pulse_seconds",
		"Interval between a machine's consecutive health pulses.",
		telemetry.DefLatencyBuckets())
)
