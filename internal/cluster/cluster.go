// Package cluster simulates the multi-machine substrate knord runs on:
// M machines with one NIC each on a switched network, plus the MPI-style
// collectives the paper's distributed modules use (broadcast, allreduce,
// gather, barrier).
//
// Cost structure is the standard alpha-beta model: one hop costs
// NetLatency + bytes/NetBandwidth. Two allreduce algorithms are
// provided: Allreduce is recursive doubling (log₂M rounds, each moving
// the full payload — the latency-optimal choice for small payloads),
// while RingAllreduce is the bandwidth-optimal ring knord's and the
// MPI mode's iteration merge use (2(M-1) rounds of bytes/M segments).
// Gather serialises all senders through the root's NIC — the master
// bottleneck that separates decentralised knord from master-worker
// designs in Figures 11–12.
//
// Cost convention: Allreduce, Gather, Bcast and Barrier charge pure
// alpha-beta wire costs; the software collective-initiation setup
// (CostModel.NetSetup) is the caller's to charge per collective, as
// knord's collectives layer does (internal/dist/collectives.go).
// RingAllreduce and MinAllreduce (minreduce.go, the serving layer's
// argmin merge) are the self-contained collectives: they charge their
// own setup and book transfer time on every NIC Resource.
package cluster

import (
	"fmt"
	"math"

	"knor/internal/simclock"
)

// Network is a simulated cluster.
type Network struct {
	M     int
	Model simclock.CostModel
	nics  []*simclock.Resource

	clocks []simclock.Clock // one per machine
}

// New creates a network of m machines at simulated time zero.
func New(m int, model simclock.CostModel) *Network {
	if m <= 0 {
		panic("cluster: need at least one machine")
	}
	n := &Network{M: m, Model: model, clocks: make([]simclock.Clock, m)}
	n.nics = make([]*simclock.Resource, m)
	for i := range n.nics {
		n.nics[i] = simclock.NewResource(fmt.Sprintf("nic-%d", i))
	}
	return n
}

// Clock returns machine i's clock.
func (n *Network) Clock(i int) *simclock.Clock { return &n.clocks[i] }

// NIC returns machine i's NIC resource.
func (n *Network) NIC(i int) *simclock.Resource { return n.nics[i] }

// hop returns the cost of moving `bytes` across one link.
func (n *Network) hop(bytes int) float64 {
	return n.Model.NetLatency + float64(bytes)/n.Model.NetBandwidth
}

// maxClock returns the latest machine time.
func (n *Network) maxClock() float64 {
	m := n.clocks[0].Now()
	for i := 1; i < n.M; i++ {
		if t := n.clocks[i].Now(); t > m {
			m = t
		}
	}
	return m
}

// rounds returns ceil(log2(M)), the stage count of tree collectives.
func (n *Network) rounds() int {
	if n.M <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n.M))))
}

// Barrier synchronises all machines: everyone advances to the global
// max plus a latency-scaled tree cost.
func (n *Network) Barrier() float64 {
	t := n.maxClock() + float64(n.rounds())*n.Model.NetLatency
	for i := range n.clocks {
		n.clocks[i].Reset(t)
	}
	return t
}

// Bcast broadcasts `bytes` from root along a binomial tree. All
// machines end synchronised at the completion time.
func (n *Network) Bcast(root, bytes int) float64 {
	start := n.clocks[root].Now()
	// Receivers can't finish before they are ready themselves.
	t := start + float64(n.rounds())*n.hop(bytes)
	if mx := n.maxClock(); mx > t {
		t = mx
	}
	for i := range n.clocks {
		n.clocks[i].Reset(t)
	}
	return t
}

// Allreduce reduces `bytes` across all machines with recursive
// doubling: log₂M rounds, each a pairwise exchange of the payload.
// Afterwards every machine holds the result and is synchronised (the
// collective is itself a barrier). Returns completion time.
func (n *Network) Allreduce(bytes int) float64 {
	t := n.maxClock() + float64(n.rounds())*n.hop(bytes)
	for i := range n.clocks {
		n.clocks[i].Reset(t)
	}
	return t
}

// RingAllreduce reduces `bytes` across all machines with the
// bandwidth-optimal ring algorithm knord's collectives use: the payload
// is split into M segments and 2(M-1) steps (a reduce-scatter followed
// by an allgather) each ship one segment to the ring neighbour, so
// every NIC moves 2·(M-1)/M·bytes in total regardless of cluster size.
// All M NICs are busy in every step — the transfer time is charged on
// each machine's Resource for utilisation reporting — and the
// collective synchronises every machine at the returned completion
// time. A single machine pays nothing.
func (n *Network) RingAllreduce(bytes int) float64 {
	t := n.maxClock()
	if n.M > 1 {
		t += n.Model.NetSetup
		seg := (bytes + n.M - 1) / n.M
		xfer := float64(seg) / n.Model.NetBandwidth
		for s := 0; s < 2*(n.M-1); s++ {
			for i := range n.nics {
				n.nics[i].Acquire(t, xfer)
			}
			t += n.Model.NetLatency + xfer
		}
	}
	for i := range n.clocks {
		n.clocks[i].Reset(t)
	}
	return t
}

// Gather sends `bytes` from every non-root machine to root, serialised
// through root's NIC (the master-bottleneck pattern). Root's clock
// advances to the last arrival; senders advance past their own send.
func (n *Network) Gather(root, bytes int) float64 {
	end := n.clocks[root].Now()
	for i := 0; i < n.M; i++ {
		if i == root {
			continue
		}
		sendStart := n.clocks[i].Now() + n.Model.NetLatency
		done := n.nics[root].Acquire(sendStart, float64(bytes)/n.Model.NetBandwidth)
		n.clocks[i].AdvanceTo(done)
		if done > end {
			end = done
		}
	}
	n.clocks[root].AdvanceTo(end)
	return end
}

// MasterDispatch models a centralised scheduler handing out `tasks`
// work items: each dispatch serialises through the root NIC for
// overhead seconds. Workers pick tasks up round-robin; every machine's
// clock advances past its last dispatch. This is the per-task driver
// overhead of master-worker frameworks.
func (n *Network) MasterDispatch(root, tasks int, overhead float64) {
	for t := 0; t < tasks; t++ {
		w := t % n.M
		done := n.nics[root].Acquire(n.clocks[root].Now(), overhead)
		n.clocks[root].AdvanceTo(done)
		n.clocks[w].AdvanceTo(done + n.Model.NetLatency)
	}
}

// ResetAll sets every machine clock to t and clears NIC state.
func (n *Network) ResetAll(t float64) {
	for i := range n.clocks {
		n.clocks[i].Reset(t)
	}
	for _, nic := range n.nics {
		nic.Reset()
	}
}
