package cluster

import (
	"math"

	"knor/internal/simclock"
)

// The min-allreduce collective: how the sharded serving layer
// (internal/shardserve) combines per-machine (argmin, dist) pairs into
// the global nearest centroid per query row. Two halves, mirroring the
// package's convention that reduction *values* are computed in fixed
// order while collectives only advance simulated time:
//
//   - CombineMin is the value: an elementwise min with deterministic
//     lowest-global-index tie-breaking, associative and commutative, so
//     folding shard answers in any arrival order gives the same result
//     as the single-node left-to-right argmin scan.
//   - Network.MinAllreduce is the cost: recursive doubling — the
//     latency-optimal algorithm, the right choice for assignment
//     payloads of a few bytes per row (contrast RingAllreduce, the
//     bandwidth-optimal choice for the trainers' k×d accumulators).

// MinPair is one query row's running reduction state: the global index
// of the nearest centroid seen so far and its raw (unclamped) squared
// distance. Index < 0 means "no candidate yet".
type MinPair struct {
	Index int32
	Dist  float64
}

// CombineMin folds src into dst elementwise: src wins where its
// distance is strictly smaller, or equal with a lower global index —
// exactly the ordering of the single-node argmin scan, which visits
// global indices ascending and replaces only on strictly-smaller
// distance. Panics if the lengths differ.
func CombineMin(dst, src []MinPair) {
	if len(dst) != len(src) {
		panic("cluster: CombineMin length mismatch")
	}
	for i, s := range src {
		if s.Index < 0 {
			continue
		}
		d := dst[i]
		if d.Index < 0 || s.Dist < d.Dist || (s.Dist == d.Dist && s.Index < d.Index) {
			dst[i] = s
		}
	}
}

// MinPairBytes returns the wire size of n (argmin, dist) pairs at the
// given distance element width (4 for float32 serving, 8 for float64):
// a 4-byte global centroid index plus the distance per row.
func MinPairBytes(n, elemBytes int) int { return n * (4 + elemBytes) }

// MinAllreduceCost is the collective's closed-form duration for a
// payload of `bytes` over m machines:
//
//	NetSetup + ⌈log₂m⌉ · (NetLatency + bytes/NetBandwidth)
//
// Zero for a single machine. Both Network.MinAllreduce and the serving
// pipeline simulation (shardserve.SimulateShardServe) derive their
// reduce-stage timing from this one formula, so the two cost models
// cannot drift apart.
func MinAllreduceCost(model simclock.CostModel, m, bytes int) float64 {
	if m <= 1 {
		return 0
	}
	r := math.Ceil(math.Log2(float64(m)))
	return model.NetSetup + r*(model.NetLatency+float64(bytes)/model.NetBandwidth)
}

// MinAllreduce reduces `bytes` of (argmin, dist) pairs across all
// machines with recursive doubling: ⌈log₂M⌉ rounds, each a pairwise
// exchange of the full payload. Like RingAllreduce it is
// self-contained — it charges its own NetSetup and books transfer time
// on every NIC (all machines send and receive in every round) — and it
// synchronises every machine at the returned completion time. A single
// machine pays nothing.
func (n *Network) MinAllreduce(bytes int) float64 {
	start := n.maxClock()
	t := start + MinAllreduceCost(n.Model, n.M, bytes)
	if n.M > 1 {
		xfer := float64(bytes) / n.Model.NetBandwidth
		at := start + n.Model.NetSetup
		for s := 0; s < n.rounds(); s++ {
			for i := range n.nics {
				n.nics[i].Acquire(at, xfer)
			}
			at += n.Model.NetLatency + xfer
		}
	}
	for i := range n.clocks {
		n.clocks[i].Reset(t)
	}
	return t
}
