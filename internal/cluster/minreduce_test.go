package cluster

import (
	"math"
	"math/rand"
	"testing"

	"knor/internal/simclock"
)

func TestCombineMin(t *testing.T) {
	dst := []MinPair{
		{Index: -1},                   // empty: src wins
		{Index: 4, Dist: 1.0},         // src smaller: src wins
		{Index: 4, Dist: 1.0},         // src larger: dst stays
		{Index: 9, Dist: 2.5},         // tie: lower index wins
		{Index: 2, Dist: 2.5},         // tie: dst already lower
		{Index: 7, Dist: math.Inf(1)}, // src empty: dst stays
	}
	src := []MinPair{
		{Index: 3, Dist: 5.0},
		{Index: 8, Dist: 0.5},
		{Index: 8, Dist: 1.5},
		{Index: 2, Dist: 2.5},
		{Index: 9, Dist: 2.5},
		{Index: -1},
	}
	want := []MinPair{
		{Index: 3, Dist: 5.0},
		{Index: 8, Dist: 0.5},
		{Index: 4, Dist: 1.0},
		{Index: 2, Dist: 2.5},
		{Index: 2, Dist: 2.5},
		{Index: 7, Dist: math.Inf(1)},
	}
	CombineMin(dst, src)
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("pair %d: got %+v want %+v", i, dst[i], want[i])
		}
	}
}

// TestCombineMinAssociative checks that folding shard answers in any
// order gives the single left-to-right scan's result — the property the
// fan-out router relies on to merge shards as they arrive.
func TestCombineMinAssociative(t *testing.T) {
	shards := [][]MinPair{
		{{Index: 5, Dist: 3}, {Index: 6, Dist: 1}},
		{{Index: 0, Dist: 3}, {Index: 1, Dist: 1}},
		{{Index: 9, Dist: 3}, {Index: 2, Dist: 2}},
	}
	fold := func(order []int) []MinPair {
		acc := []MinPair{{Index: -1}, {Index: -1}}
		for _, s := range order {
			CombineMin(acc, shards[s])
		}
		return acc
	}
	want := fold([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		got := fold(order)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order %v pair %d: got %+v want %+v", order, i, got[i], want[i])
			}
		}
	}
	if want[0] != (MinPair{Index: 0, Dist: 3}) || want[1] != (MinPair{Index: 1, Dist: 1}) {
		t.Fatalf("unexpected fold result %+v", want)
	}
}

func TestMinPairBytes(t *testing.T) {
	if got := MinPairBytes(100, 8); got != 1200 {
		t.Errorf("MinPairBytes(100, 8) = %d, want 1200", got)
	}
	if got := MinPairBytes(3, 4); got != 24 {
		t.Errorf("MinPairBytes(3, 4) = %d, want 24", got)
	}
}

func TestMinAllreduceCost(t *testing.T) {
	model := simclock.DefaultCostModel()
	const bytes = 12000

	// Single machine: free, clock unchanged.
	n1 := New(1, model)
	n1.Clock(0).Advance(3)
	if got := n1.MinAllreduce(bytes); got != 3 {
		t.Errorf("M=1: completion %g, want 3", got)
	}

	// The closed form shared with the serving simulation.
	if got := MinAllreduceCost(model, 1, bytes); got != 0 {
		t.Errorf("MinAllreduceCost(M=1) = %g, want 0", got)
	}
	wantCost := model.NetSetup + 2*(model.NetLatency+bytes/model.NetBandwidth)
	if got := MinAllreduceCost(model, 4, bytes); math.Abs(got-wantCost) > 1e-15 {
		t.Errorf("MinAllreduceCost(M=4) = %g, want %g", got, wantCost)
	}

	// Four machines, skewed clocks: recursive doubling runs
	// ceil(log2(4)) = 2 rounds from the latest machine, plus setup.
	n4 := New(4, model)
	n4.Clock(2).Advance(1)
	want := 1 + MinAllreduceCost(model, 4, bytes)
	got := n4.MinAllreduce(bytes)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("M=4: completion %g, want %g", got, want)
	}
	for i := 0; i < 4; i++ {
		if n4.Clock(i).Now() != got {
			t.Errorf("machine %d not synchronised: %g vs %g", i, n4.Clock(i).Now(), got)
		}
		if n4.NIC(i).BusyTime() == 0 {
			t.Errorf("machine %d NIC booked no transfer time", i)
		}
	}

	// The latency-optimal recursive doubling must beat the ring on a
	// small payload at M=4 (the reason the serving path uses it): 2
	// latency terms against the ring's 6.
	ring := New(4, model)
	ringCost := ring.RingAllreduce(bytes)
	if minCost := got - 1; minCost >= ringCost {
		t.Errorf("min-allreduce cost %g should beat ring cost %g on small payloads", minCost, ringCost)
	}
}

// TestCombineMinPartialParticipation is the replication layer's
// algebraic contract: for EVERY subset of machines (a machine-death
// mask — the dead shards' answers arrive from replicas holding
// identical values, or not at all), folding the surviving
// contributions in ANY order, with ANY of them duplicated (two
// replicas of one shard both answering), equals the single-node
// ascending-index argmin scan over the surviving ranges. Distances are
// drawn from a tiny value set so exact cross-machine ties are common,
// and the whole grid runs at both distance precisions (float64, and
// float64-of-float32 as the 32-bit serving path produces).
func TestCombineMinPartialParticipation(t *testing.T) {
	const machines = 5
	const rows = 24
	rng := rand.New(rand.NewSource(11))

	for _, quantize := range []bool{false, true} {
		// Machine m answers every row with an argmin inside its own
		// global index range [m*10, m*10+10). The tie pool guarantees
		// equal distances across machines (duplicate centroids).
		tiePool := []float64{0.25, 0.5, 1, 2}
		contribs := make([][]MinPair, machines)
		for m := range contribs {
			contribs[m] = make([]MinPair, rows)
			for i := range contribs[m] {
				d := tiePool[rng.Intn(len(tiePool))]
				if rng.Intn(3) == 0 {
					d = rng.Float64()
				}
				if quantize {
					d = float64(float32(d))
				}
				contribs[m][i] = MinPair{Index: int32(m*10 + rng.Intn(10)), Dist: d}
			}
		}

		// oracle: the single-node scan over the surviving machines'
		// candidates, ascending global index, strictly-smaller wins.
		oracle := func(mask uint) []MinPair {
			out := make([]MinPair, rows)
			for i := range out {
				out[i].Index = -1
			}
			for m := 0; m < machines; m++ { // ascending ⇒ ascending global index
				if mask&(1<<m) == 0 {
					continue
				}
				for i, c := range contribs[m] {
					if out[i].Index < 0 || c.Dist < out[i].Dist {
						out[i] = c
					}
				}
			}
			return out
		}

		for mask := uint(1); mask < 1<<machines; mask++ {
			want := oracle(mask)
			var live []int
			for m := 0; m < machines; m++ {
				if mask&(1<<m) != 0 {
					live = append(live, m)
				}
			}
			for trial := 0; trial < 4; trial++ {
				order := append([]int(nil), live...)
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				acc := make([]MinPair, rows)
				for i := range acc {
					acc[i].Index = -1
				}
				for _, m := range order {
					CombineMin(acc, contribs[m])
					if trial%2 == 1 { // a second replica answers too
						CombineMin(acc, contribs[m])
					}
				}
				for i := range want {
					if acc[i] != want[i] {
						t.Fatalf("quantize=%v mask=%05b order=%v row %d: got %+v want %+v",
							quantize, mask, order, i, acc[i], want[i])
					}
				}
			}
		}
	}
}
