package cluster

import (
	"math"
	"testing"

	"knor/internal/simclock"
)

func TestCombineMin(t *testing.T) {
	dst := []MinPair{
		{Index: -1},                   // empty: src wins
		{Index: 4, Dist: 1.0},         // src smaller: src wins
		{Index: 4, Dist: 1.0},         // src larger: dst stays
		{Index: 9, Dist: 2.5},         // tie: lower index wins
		{Index: 2, Dist: 2.5},         // tie: dst already lower
		{Index: 7, Dist: math.Inf(1)}, // src empty: dst stays
	}
	src := []MinPair{
		{Index: 3, Dist: 5.0},
		{Index: 8, Dist: 0.5},
		{Index: 8, Dist: 1.5},
		{Index: 2, Dist: 2.5},
		{Index: 9, Dist: 2.5},
		{Index: -1},
	}
	want := []MinPair{
		{Index: 3, Dist: 5.0},
		{Index: 8, Dist: 0.5},
		{Index: 4, Dist: 1.0},
		{Index: 2, Dist: 2.5},
		{Index: 2, Dist: 2.5},
		{Index: 7, Dist: math.Inf(1)},
	}
	CombineMin(dst, src)
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("pair %d: got %+v want %+v", i, dst[i], want[i])
		}
	}
}

// TestCombineMinAssociative checks that folding shard answers in any
// order gives the single left-to-right scan's result — the property the
// fan-out router relies on to merge shards as they arrive.
func TestCombineMinAssociative(t *testing.T) {
	shards := [][]MinPair{
		{{Index: 5, Dist: 3}, {Index: 6, Dist: 1}},
		{{Index: 0, Dist: 3}, {Index: 1, Dist: 1}},
		{{Index: 9, Dist: 3}, {Index: 2, Dist: 2}},
	}
	fold := func(order []int) []MinPair {
		acc := []MinPair{{Index: -1}, {Index: -1}}
		for _, s := range order {
			CombineMin(acc, shards[s])
		}
		return acc
	}
	want := fold([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		got := fold(order)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order %v pair %d: got %+v want %+v", order, i, got[i], want[i])
			}
		}
	}
	if want[0] != (MinPair{Index: 0, Dist: 3}) || want[1] != (MinPair{Index: 1, Dist: 1}) {
		t.Fatalf("unexpected fold result %+v", want)
	}
}

func TestMinPairBytes(t *testing.T) {
	if got := MinPairBytes(100, 8); got != 1200 {
		t.Errorf("MinPairBytes(100, 8) = %d, want 1200", got)
	}
	if got := MinPairBytes(3, 4); got != 24 {
		t.Errorf("MinPairBytes(3, 4) = %d, want 24", got)
	}
}

func TestMinAllreduceCost(t *testing.T) {
	model := simclock.DefaultCostModel()
	const bytes = 12000

	// Single machine: free, clock unchanged.
	n1 := New(1, model)
	n1.Clock(0).Advance(3)
	if got := n1.MinAllreduce(bytes); got != 3 {
		t.Errorf("M=1: completion %g, want 3", got)
	}

	// The closed form shared with the serving simulation.
	if got := MinAllreduceCost(model, 1, bytes); got != 0 {
		t.Errorf("MinAllreduceCost(M=1) = %g, want 0", got)
	}
	wantCost := model.NetSetup + 2*(model.NetLatency+bytes/model.NetBandwidth)
	if got := MinAllreduceCost(model, 4, bytes); math.Abs(got-wantCost) > 1e-15 {
		t.Errorf("MinAllreduceCost(M=4) = %g, want %g", got, wantCost)
	}

	// Four machines, skewed clocks: recursive doubling runs
	// ceil(log2(4)) = 2 rounds from the latest machine, plus setup.
	n4 := New(4, model)
	n4.Clock(2).Advance(1)
	want := 1 + MinAllreduceCost(model, 4, bytes)
	got := n4.MinAllreduce(bytes)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("M=4: completion %g, want %g", got, want)
	}
	for i := 0; i < 4; i++ {
		if n4.Clock(i).Now() != got {
			t.Errorf("machine %d not synchronised: %g vs %g", i, n4.Clock(i).Now(), got)
		}
		if n4.NIC(i).BusyTime() == 0 {
			t.Errorf("machine %d NIC booked no transfer time", i)
		}
	}

	// The latency-optimal recursive doubling must beat the ring on a
	// small payload at M=4 (the reason the serving path uses it): 2
	// latency terms against the ring's 6.
	ring := New(4, model)
	ringCost := ring.RingAllreduce(bytes)
	if minCost := got - 1; minCost >= ringCost {
		t.Errorf("min-allreduce cost %g should beat ring cost %g on small payloads", minCost, ringCost)
	}
}
