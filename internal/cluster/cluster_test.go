package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"knor/internal/simclock"
)

func model() simclock.CostModel { return simclock.DefaultCostModel() }

func TestBarrierSynchronises(t *testing.T) {
	n := New(4, model())
	n.Clock(2).Advance(1.0)
	after := n.Barrier()
	if after < 1.0 {
		t.Fatalf("barrier went backwards: %g", after)
	}
	for i := 0; i < 4; i++ {
		if n.Clock(i).Now() != after {
			t.Fatalf("machine %d desynced", i)
		}
	}
}

func TestBcastCost(t *testing.T) {
	m := model()
	n := New(8, m)
	after := n.Bcast(0, 1000)
	want := 3 * (m.NetLatency + 1000/m.NetBandwidth) // ceil(log2(8)) = 3 rounds
	if math.Abs(after-want) > 1e-12 {
		t.Fatalf("bcast = %g, want %g", after, want)
	}
}

func TestBcastSingleMachineFree(t *testing.T) {
	n := New(1, model())
	if after := n.Bcast(0, 1<<20); after != 0 {
		t.Fatalf("single-machine bcast cost %g", after)
	}
}

func TestAllreduceScalesLogarithmically(t *testing.T) {
	m := model()
	cost := func(machines int) float64 {
		n := New(machines, m)
		return n.Allreduce(4096)
	}
	c2, c4, c16 := cost(2), cost(4), cost(16)
	if !(c2 < c4 && c4 < c16) {
		t.Fatalf("allreduce not growing: %g %g %g", c2, c4, c16)
	}
	// log-scaling: 16 machines cost 4 rounds vs 1 round for 2.
	if math.Abs(c16/c2-4) > 1e-9 {
		t.Fatalf("allreduce not logarithmic: ratio %g", c16/c2)
	}
}

func TestRingAllreduceCost(t *testing.T) {
	m := model()
	for _, M := range []int{2, 4, 8} {
		n := New(M, m)
		after := n.RingAllreduce(1 << 20)
		seg := float64((1<<20 + M - 1) / M)
		want := m.NetSetup + float64(2*(M-1))*(m.NetLatency+seg/m.NetBandwidth)
		if math.Abs(after-want) > 1e-12 {
			t.Fatalf("M=%d: ring = %g, want %g", M, after, want)
		}
		for i := 0; i < M; i++ {
			if n.Clock(i).Now() != after {
				t.Fatalf("M=%d: machine %d desynced", M, i)
			}
			// Bandwidth optimality: each NIC moved ~2·bytes/M·(M-1).
			wantBusy := float64(2*(M-1)) * seg / m.NetBandwidth
			if math.Abs(n.NIC(i).BusyTime()-wantBusy) > 1e-12 {
				t.Fatalf("M=%d: NIC %d busy %g, want %g", M, i, n.NIC(i).BusyTime(), wantBusy)
			}
		}
	}
}

func TestRingAllreduceSingleMachineFree(t *testing.T) {
	n := New(1, model())
	if after := n.RingAllreduce(1 << 20); after != 0 {
		t.Fatalf("single-machine ring cost %g", after)
	}
}

func TestRingBeatsRecursiveDoublingForLargePayload(t *testing.T) {
	// The ring moves 2B/M per step instead of the full payload per
	// round: for bandwidth-dominated payloads it must win.
	m := model()
	M, payload := 8, 64<<20
	ring := New(M, m).RingAllreduce(payload)
	rd := New(M, m).Allreduce(payload)
	if ring >= rd {
		t.Fatalf("ring (%g) not below recursive doubling (%g)", ring, rd)
	}
}

func TestGatherSerialisesAtRoot(t *testing.T) {
	m := model()
	M := 8
	n := New(M, m)
	end := n.Gather(0, 1<<20)
	// 7 senders × transfer time must serialise through root's NIC.
	per := float64(1<<20) / m.NetBandwidth
	if end < 7*per {
		t.Fatalf("gather overlapped at root: %g < %g", end, 7*per)
	}
	// Allreduce of the same payload must be cheaper for large M — the
	// master bottleneck in one inequality.
	n2 := New(M, m)
	ar := n2.Allreduce(1 << 20)
	if ar >= end {
		t.Fatalf("allreduce (%g) not cheaper than gather (%g)", ar, end)
	}
}

func TestGatherAdvancesSenders(t *testing.T) {
	n := New(3, model())
	n.Gather(0, 1000)
	for i := 1; i < 3; i++ {
		if n.Clock(i).Now() == 0 {
			t.Fatalf("sender %d clock unchanged", i)
		}
	}
}

func TestMasterDispatchSerialises(t *testing.T) {
	m := model()
	n := New(4, m)
	n.MasterDispatch(0, 100, 1e-3)
	// 100 tasks × 1ms through one NIC = at least 100ms at the master.
	if n.Clock(0).Now() < 0.1 {
		t.Fatalf("dispatch too cheap: %g", n.Clock(0).Now())
	}
	// Workers must have received their dispatches.
	for i := 1; i < 4; i++ {
		if n.Clock(i).Now() == 0 {
			t.Fatalf("worker %d never dispatched", i)
		}
	}
}

func TestResetAll(t *testing.T) {
	n := New(2, model())
	n.Clock(0).Advance(5)
	n.Gather(0, 1000)
	n.ResetAll(0)
	if n.Clock(0).Now() != 0 || n.Clock(1).Now() != 0 {
		t.Fatal("clocks not reset")
	}
	if n.NIC(0).BusyTime() != 0 {
		t.Fatal("NIC not reset")
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0, model())
}

// Property: collectives never move any clock backwards and always leave
// Bcast/Allreduce/Barrier participants synchronised.
func TestCollectiveMonotoneProperty(t *testing.T) {
	f := func(machinesRaw, opsRaw uint8, seeds []uint8) bool {
		M := int(machinesRaw)%8 + 1
		n := New(M, model())
		prevMax := 0.0
		for i, s := range seeds {
			op := int(s) % 4
			n.Clock(i % M).Advance(float64(s) * 1e-6)
			switch op {
			case 0:
				n.Barrier()
			case 1:
				n.Bcast(i%M, int(s)*100)
			case 2:
				n.Allreduce(int(s) * 100)
			case 3:
				n.Gather(i%M, int(s)*100)
			}
			max := 0.0
			sync := true
			first := n.Clock(0).Now()
			for j := 0; j < M; j++ {
				now := n.Clock(j).Now()
				if now > max {
					max = now
				}
				if now != first {
					sync = false
				}
			}
			if max < prevMax {
				return false
			}
			if op != 3 && !sync {
				return false // gather is the only non-synchronising op
			}
			prevMax = max
		}
		_ = opsRaw
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
