package metrics

import "knor/internal/telemetry"

// Counter is a monotonically-increasing atomic event counter, the
// serving layer's lock-free bookkeeping for hot-path events (requests
// answered, rows assigned, quota rejections). The zero value is ready
// to use; methods are safe for concurrent callers.
//
// It is the telemetry registry's counter instrument: callers that want
// their counter exposed on /metrics obtain it from
// telemetry.Default.Counter instead of zero-valuing one here, and both
// spellings share an implementation.
type Counter = telemetry.Counter
