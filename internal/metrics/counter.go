package metrics

import "sync/atomic"

// Counter is a monotonically-increasing atomic event counter, the
// serving layer's lock-free bookkeeping for hot-path events (requests
// answered, rows assigned, quota rejections). The zero value is ready
// to use; methods are safe for concurrent callers.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }
