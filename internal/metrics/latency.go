package metrics

import "knor/internal/telemetry"

// Latency records observation durations (seconds) and answers quantile
// queries — the serving layer's p50/p99 source. Safe for concurrent
// use.
//
// It is the telemetry package's recorder: a reservoir for exact
// quantiles that can mirror into a registered histogram for /metrics
// exposition (telemetry.Latency.Mirror).
type Latency = telemetry.Latency

// NewLatency returns an empty recorder. seed fixes the reservoir
// replacement stream so tests are deterministic.
func NewLatency(seed int64) *Latency { return telemetry.NewLatency(seed) }
