// Package metrics provides clustering-quality measures used by the
// examples, tests and benchmark harness to verify that the optimised
// engines do not trade correctness for speed: internal indices
// (simplified silhouette, Davies-Bouldin) and external agreement
// indices against reference labelings (adjusted Rand index, normalised
// mutual information).
package metrics

import (
	"fmt"
	"math"

	"knor/internal/matrix"
)

// SimplifiedSilhouette computes the centroid-based silhouette: for each
// row, a = distance to its own centroid, b = distance to the nearest
// other centroid, s = (b-a)/max(a,b). It is O(nk) instead of the O(n²)
// full silhouette and tracks it closely for compact clusters.
func SimplifiedSilhouette(data, centroids *matrix.Dense, assign []int32) float64 {
	n := data.Rows()
	if n == 0 || centroids.Rows() < 2 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		row := data.Row(i)
		own := int(assign[i])
		a := matrix.Dist(row, centroids.Row(own))
		b := math.Inf(1)
		for c := 0; c < centroids.Rows(); c++ {
			if c == own {
				continue
			}
			if d := matrix.Dist(row, centroids.Row(c)); d < b {
				b = d
			}
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n)
}

// DaviesBouldin computes the Davies-Bouldin index (lower is better):
// the mean over clusters of the worst-case (σi+σj)/d(ci,cj) ratio,
// where σ is the mean within-cluster distance to the centroid.
func DaviesBouldin(data, centroids *matrix.Dense, assign []int32) float64 {
	k := centroids.Rows()
	if k < 2 {
		return 0
	}
	sigma := make([]float64, k)
	counts := make([]float64, k)
	for i := 0; i < data.Rows(); i++ {
		c := int(assign[i])
		sigma[c] += matrix.Dist(data.Row(i), centroids.Row(c))
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			sigma[c] /= counts[c]
		}
	}
	var total float64
	for i := 0; i < k; i++ {
		worst := 0.0
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			d := matrix.Dist(centroids.Row(i), centroids.Row(j))
			if d == 0 {
				continue
			}
			if r := (sigma[i] + sigma[j]) / d; r > worst {
				worst = r
			}
		}
		total += worst
	}
	return total / float64(k)
}

// contingency builds the confusion table between two labelings.
func contingency(a, b []int32) (map[[2]int32]float64, map[int32]float64, map[int32]float64, float64, error) {
	if len(a) != len(b) {
		return nil, nil, nil, 0, fmt.Errorf("metrics: labelings of length %d and %d", len(a), len(b))
	}
	joint := map[[2]int32]float64{}
	ma := map[int32]float64{}
	mb := map[int32]float64{}
	for i := range a {
		joint[[2]int32{a[i], b[i]}]++
		ma[a[i]]++
		mb[b[i]]++
	}
	return joint, ma, mb, float64(len(a)), nil
}

// AdjustedRand computes the adjusted Rand index between two labelings:
// 1 for identical partitions (up to renaming), ~0 for independent ones.
func AdjustedRand(a, b []int32) (float64, error) {
	joint, ma, mb, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var sumJoint, sumA, sumB float64
	for _, v := range joint {
		sumJoint += choose2(v)
	}
	for _, v := range ma {
		sumA += choose2(v)
	}
	for _, v := range mb {
		sumB += choose2(v)
	}
	expected := sumA * sumB / choose2(n)
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial
	}
	return (sumJoint - expected) / (maxIdx - expected), nil
}

// NMI computes normalised mutual information (arithmetic normalisation)
// between two labelings: 1 for identical partitions, 0 for independent.
func NMI(a, b []int32) (float64, error) {
	joint, ma, mb, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	entropy := func(m map[int32]float64) float64 {
		var h float64
		for _, v := range m {
			p := v / n
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
		return h
	}
	ha, hb := entropy(ma), entropy(mb)
	var mi float64
	for key, v := range joint {
		pxy := v / n
		px := ma[key[0]] / n
		py := mb[key[1]] / n
		if pxy > 0 {
			mi += pxy * math.Log(pxy/(px*py))
		}
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 1, nil
	}
	return mi / denom, nil
}
