package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/workload"
)

func perm(labels []int32, mapping map[int32]int32) []int32 {
	out := make([]int32, len(labels))
	for i, l := range labels {
		out[i] = mapping[l]
	}
	return out
}

func TestAdjustedRandIdentity(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	got, err := AdjustedRand(a, a)
	if err != nil || got != 1 {
		t.Fatalf("ARI(a,a) = %g, %v", got, err)
	}
	// Invariant under label renaming.
	b := perm(a, map[int32]int32{0: 2, 1: 0, 2: 1})
	got, _ = AdjustedRand(a, b)
	if got != 1 {
		t.Fatalf("ARI under renaming = %g", got)
	}
}

func TestAdjustedRandIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(4))
		b[i] = int32(rng.Intn(4))
	}
	got, _ := AdjustedRand(a, b)
	if math.Abs(got) > 0.05 {
		t.Fatalf("ARI of independent labelings = %g", got)
	}
}

func TestAdjustedRandLengthMismatch(t *testing.T) {
	if _, err := AdjustedRand([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNMIIdentityAndIndependence(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2, 0, 1}
	got, err := NMI(a, a)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(a,a) = %g, %v", got, err)
	}
	rng := rand.New(rand.NewSource(2))
	n := 5000
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(3))
		y[i] = int32(rng.Intn(3))
	}
	got, _ = NMI(x, y)
	if got > 0.05 {
		t.Fatalf("NMI of independent labelings = %g", got)
	}
}

func TestSilhouetteSeparatedBeatsOverlapping(t *testing.T) {
	run := func(spread float64) float64 {
		data := workload.Generate(workload.Spec{
			Kind: workload.NaturalClusters, N: 1000, D: 6,
			Clusters: 4, Spread: spread, Seed: 4,
		})
		res, err := kmeans.RunSerial(data, kmeans.Config{K: 4, MaxIters: 40, Init: kmeans.InitKMeansPP, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return SimplifiedSilhouette(data, res.Centroids, res.Assign)
	}
	tight, loose := run(0.02), run(0.5)
	if tight <= loose {
		t.Fatalf("silhouette tight=%g not above loose=%g", tight, loose)
	}
	if tight < 0.8 {
		t.Fatalf("tight clusters silhouette only %g", tight)
	}
}

func TestDaviesBouldinOrdering(t *testing.T) {
	run := func(spread float64) float64 {
		data := workload.Generate(workload.Spec{
			Kind: workload.NaturalClusters, N: 1000, D: 6,
			Clusters: 4, Spread: spread, Seed: 5,
		})
		res, _ := kmeans.RunSerial(data, kmeans.Config{K: 4, MaxIters: 40, Init: kmeans.InitKMeansPP, Seed: 1})
		return DaviesBouldin(data, res.Centroids, res.Assign)
	}
	tight, loose := run(0.02), run(0.5)
	if tight >= loose {
		t.Fatalf("DB tight=%g not below loose=%g (lower is better)", tight, loose)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	data := matrix.NewDense(0, 3)
	if got := SimplifiedSilhouette(data, matrix.NewDense(2, 3), nil); got != 0 {
		t.Fatalf("empty data silhouette %g", got)
	}
	one := matrix.NewDense(5, 3)
	if got := SimplifiedSilhouette(one, matrix.NewDense(1, 3), make([]int32, 5)); got != 0 {
		t.Fatalf("single-cluster silhouette %g", got)
	}
	if got := DaviesBouldin(one, matrix.NewDense(1, 3), make([]int32, 5)); got != 0 {
		t.Fatalf("single-cluster DB %g", got)
	}
}

// Property: ARI and NMI are symmetric and invariant under relabeling.
func TestIndicesPropertySymmetry(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 10 {
			return true
		}
		a := make([]int32, len(raw))
		b := make([]int32, len(raw))
		for i, v := range raw {
			a[i] = int32(v % 3)
			b[i] = int32((v / 3) % 3)
		}
		ar1, _ := AdjustedRand(a, b)
		ar2, _ := AdjustedRand(b, a)
		if math.Abs(ar1-ar2) > 1e-12 {
			return false
		}
		n1, _ := NMI(a, b)
		n2, _ := NMI(b, a)
		if math.Abs(n1-n2) > 1e-12 {
			return false
		}
		// relabel b: swap 0 and 2
		b2 := perm(b, map[int32]int32{0: 2, 1: 1, 2: 0})
		ar3, _ := AdjustedRand(a, b2)
		return math.Abs(ar1-ar3) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the three knor engines produce partitions with ARI == 1
// against the serial oracle.
func TestEnginesARIOneProperty(t *testing.T) {
	data := workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: 800, D: 6, Clusters: 4, Spread: 0.05, Seed: 6,
	})
	cfg := kmeans.Config{K: 4, MaxIters: 40, Init: kmeans.InitForgy, Seed: 2}
	serial, err := kmeans.RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Threads = 4
	pcfg.TaskSize = 64
	par, err := kmeans.Run(data, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	ari, _ := AdjustedRand(serial.Assign, par.Assign)
	if ari != 1 {
		t.Fatalf("parallel ARI = %g", ari)
	}
}
