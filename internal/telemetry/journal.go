package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Severity levels for journal events.
const (
	SevInfo  = "info"
	SevWarn  = "warn"
	SevError = "error"
)

// Field is one key=value annotation on a journal event. Values are
// pre-rendered to strings so events are immutable once logged.
type Field struct {
	K string `json:"k"`
	V string `json:"v"`
}

// F builds a Field from any value.
func F(k string, v any) Field { return Field{K: k, V: fmt.Sprint(v)} }

// Event is one structured journal entry. Seq increases by one per
// event and never repeats within a process, so clients can poll
// /debug/events with a since-seq cursor and miss nothing that is still
// in the ring. MonoUS is the offset from journal creation on the
// monotonic clock (robust to wall-clock steps); Wall is for humans.
type Event struct {
	Seq       uint64    `json:"seq"`
	Wall      time.Time `json:"wall"`
	MonoUS    int64     `json:"mono_us"`
	Component string    `json:"component"`
	Severity  string    `json:"severity"`
	Msg       string    `json:"msg"`
	Fields    []Field   `json:"fields,omitempty"`
}

// String renders the event as a single grep-friendly line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] %s: %s", e.Wall.Format(time.RFC3339Nano), e.Severity, e.Component, e.Msg)
	for _, f := range e.Fields {
		fmt.Fprintf(&b, " %s=%s", f.K, f.V)
	}
	return b.String()
}

// Journal is a fixed-capacity ring of structured events: cheap enough
// to leave on everywhere, bounded so a chatty component can't grow
// memory, and cursor-addressable so pollers can resume. A nil *Journal
// drops everything, so components log unconditionally.
type Journal struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	seq    uint64
	start  time.Time
	mirror io.Writer
}

// DefaultJournalCap is the ring size used when NewJournal gets a
// non-positive capacity.
const DefaultJournalCap = 1024

// NewJournal builds a journal retaining the most recent capacity
// events (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{ring: make([]Event, 0, capacity), start: time.Now()}
}

// DefaultJournal is the process-wide journal every subsystem logs to;
// knorserve's GET /debug/events serves it.
var DefaultJournal = NewJournal(0)

// Log appends an event to the process-wide DefaultJournal.
func Log(component, severity, msg string, fields ...Field) {
	DefaultJournal.Log(component, severity, msg, fields...)
}

// SetMirror makes every subsequent event also render one line to w
// (nil to stop mirroring). Intended for -events-log style stderr tees.
func (j *Journal) SetMirror(w io.Writer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.mirror = w
	j.mu.Unlock()
}

// Log appends one event. Safe for concurrent use; no-op on nil.
func (j *Journal) Log(component, severity, msg string, fields ...Field) {
	if j == nil {
		return
	}
	now := time.Now()
	j.mu.Lock()
	j.seq++
	ev := Event{
		Seq:       j.seq,
		Wall:      now,
		MonoUS:    now.Sub(j.start).Microseconds(),
		Component: component,
		Severity:  severity,
		Msg:       msg,
		Fields:    fields,
	}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[j.next] = ev
		j.next = (j.next + 1) % cap(j.ring)
	}
	mirror := j.mirror
	j.mu.Unlock()
	if mirror != nil {
		fmt.Fprintln(mirror, ev.String())
	}
}

// LastSeq returns the sequence number of the most recent event (0 when
// empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Since returns up to max events with Seq > seq in ascending order
// (max <= 0 means no bound). Events older than the ring has already
// been overwritten are simply absent — the caller can detect the gap
// from the first returned Seq.
func (j *Journal) Since(seq uint64, max int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.ring)
	out := make([]Event, 0, n)
	// Oldest-first walk: ring is either still filling (start at 0) or
	// full (start at next, the oldest slot).
	start := 0
	if n == cap(j.ring) {
		start = j.next
	}
	for i := 0; i < n; i++ {
		ev := j.ring[(start+i)%n]
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}
