package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// SnapshotSample is one series of a family at snapshot time. Labels
// holds the label values (parallel to the family's LabelNames; empty
// for unlabeled instruments). Counters and gauges fill Value;
// histograms fill Bounds/Buckets/Sum/Count (Buckets non-cumulative,
// last entry the +Inf bucket).
type SnapshotSample struct {
	Labels  []string
	Value   float64
	Bounds  []float64
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// SnapshotFamily is one instrument family frozen at snapshot time, in
// a plain-data form that can cross a process boundary.
type SnapshotFamily struct {
	Name       string
	Help       string
	Kind       string // counter | gauge | histogram
	LabelNames []string
	Samples    []SnapshotSample
}

// Quantile estimates the q-th quantile of a histogram sample by linear
// interpolation within the located bucket (same semantics as
// Histogram.Quantile). NaN for empty or non-histogram samples.
func (s SnapshotSample) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Buckets {
		if float64(cum+c) >= rank {
			if i == len(s.Bounds) { // +Inf bucket: clamp to last bound
				if len(s.Bounds) == 0 {
					return math.NaN()
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot freezes every registered instrument into plain data, sorted
// by family name and label tuple (the same deterministic order as
// WritePrometheus), suitable for serialization across processes.
func (r *Registry) Snapshot() []SnapshotFamily {
	r.mu.Lock()
	names := make([]string, 0, len(r.insts))
	for n := range r.insts {
		names = append(names, n)
	}
	insts := make(map[string]*instrument, len(r.insts))
	for n, in := range r.insts {
		insts[n] = in
	}
	r.mu.Unlock()
	sort.Strings(names)

	out := make([]SnapshotFamily, 0, len(names))
	for _, n := range names {
		out = append(out, snapshotFamily(insts[n]))
	}
	return out
}

func snapshotFamily(in *instrument) SnapshotFamily {
	f := SnapshotFamily{
		Name:       in.name,
		Help:       in.help,
		Kind:       in.kind,
		LabelNames: append([]string(nil), in.labels...),
	}
	if len(in.labels) == 0 {
		in.mu.Lock()
		counter, gauge, gfn, hist := in.counter, in.gauge, in.gfn, in.hist
		in.mu.Unlock()
		switch {
		case counter != nil:
			f.Samples = []SnapshotSample{{Value: float64(counter.Load())}}
		case gfn != nil:
			f.Samples = []SnapshotSample{{Value: gfn()}}
		case gauge != nil:
			f.Samples = []SnapshotSample{{Value: gauge.Load()}}
		case hist != nil:
			f.Samples = []SnapshotSample{snapshotHist(hist, nil)}
		}
		return f
	}
	in.mu.Lock()
	keys := make([]string, 0, len(in.children))
	for k := range in.children {
		keys = append(keys, k)
	}
	children := make(map[string]*child, len(in.children))
	for k, c := range in.children {
		children[k] = c
	}
	in.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		c := children[k]
		vals := append([]string(nil), c.labelVals...)
		switch {
		case c.counter != nil:
			f.Samples = append(f.Samples, SnapshotSample{Labels: vals, Value: float64(c.counter.Load())})
		case c.gauge != nil:
			f.Samples = append(f.Samples, SnapshotSample{Labels: vals, Value: c.gauge.Load()})
		case c.hist != nil:
			f.Samples = append(f.Samples, snapshotHist(c.hist, vals))
		}
	}
	return f
}

func snapshotHist(h *Histogram, labels []string) SnapshotSample {
	return SnapshotSample{
		Labels:  labels,
		Bounds:  append([]float64(nil), h.Bounds()...),
		Buckets: h.BucketCounts(),
		Sum:     h.Sum(),
		Count:   h.Count(),
	}
}

// --- federation --------------------------------------------------------

// RankSnapshot is one cluster process's registry snapshot tagged with
// the rank whose series it holds. Stale marks a rank whose snapshot
// could not be pulled (dead or timed-out worker): its Families are
// whatever the coordinator last knew (possibly nil), and the
// federation renderer reports it via knor_federation_stale instead of
// blocking or failing the whole scrape.
type RankSnapshot struct {
	Rank     int
	Families []SnapshotFamily
	Stale    bool
}

// WriteFederatedPrometheus renders snapshots from many ranks as one
// Prometheus exposition: every sample gains a rank="N" label, families
// merge by name with HELP/TYPE emitted once, and the synthetic gauge
// knor_federation_stale{rank} reports 1 for every rank whose snapshot
// could not be pulled. Output is deterministic: families sorted by
// name, samples by rank then label tuple.
func WriteFederatedPrometheus(w io.Writer, snaps []RankSnapshot) error {
	type fam struct {
		help, kind string
		labelNames []string
		// one entry per (rank, sample), in rank order per family
		ranks   []int
		samples []SnapshotSample
	}
	fams := map[string]*fam{}
	names := []string{}
	ordered := append([]RankSnapshot(nil), snaps...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Rank < ordered[j].Rank })
	for _, rs := range ordered {
		for _, sf := range rs.Families {
			f, ok := fams[sf.Name]
			if !ok {
				f = &fam{help: sf.Help, kind: sf.Kind, labelNames: sf.LabelNames}
				fams[sf.Name] = f
				names = append(names, sf.Name)
			}
			if f.kind != sf.Kind {
				// A kind clash across ranks (mixed binary versions) would
				// corrupt exposition; keep the first kind and drop the rest.
				continue
			}
			for _, s := range sf.Samples {
				f.ranks = append(f.ranks, rs.Rank)
				f.samples = append(f.samples, s)
			}
		}
	}
	// Synthetic staleness gauge so dead workers are visible in the scrape
	// itself.
	staleName := "knor_federation_stale"
	sf := &fam{help: "1 when this rank's metrics could not be pulled (dead or timed-out worker).", kind: "gauge"}
	for _, rs := range ordered {
		v := 0.0
		if rs.Stale {
			v = 1
		}
		sf.ranks = append(sf.ranks, rs.Rank)
		sf.samples = append(sf.samples, SnapshotSample{Value: v})
	}
	fams[staleName] = sf
	names = append(names, staleName)
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, f.kind)
		for i, s := range f.samples {
			lbl := federatedLabels(f.ranks[i], f.labelNames, s.Labels)
			if f.kind == "histogram" && len(s.Buckets) > 0 {
				writeSnapshotHist(&b, n, lbl, s)
				continue
			}
			fmt.Fprintf(&b, "%s{%s} %s\n", n, lbl, fmtVal(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func federatedLabels(rank int, names, vals []string) string {
	parts := []string{fmt.Sprintf("rank=%q", fmt.Sprint(rank))}
	for i := range names {
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		parts = append(parts, fmt.Sprintf("%s=%q", names[i], v))
	}
	return strings.Join(parts, ",")
}

func writeSnapshotHist(b *strings.Builder, name, labels string, s SnapshotSample) {
	var cum uint64
	for i, bound := range s.Bounds {
		if i < len(s.Buckets) {
			cum += s.Buckets[i]
		}
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, fmtVal(bound), cum)
	}
	if len(s.Buckets) > 0 {
		cum += s.Buckets[len(s.Buckets)-1]
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, fmtVal(s.Sum))
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, cum)
}
