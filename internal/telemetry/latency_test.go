package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestLatencyQuantiles(t *testing.T) {
	l := NewLatency(1)
	if !math.IsNaN(l.Quantile(0.5)) {
		t.Fatal("empty recorder should return NaN")
	}
	// 1..100 ms.
	for i := 1; i <= 100; i++ {
		l.Observe(float64(i) / 1e3)
	}
	if got := l.Quantile(0.50); got != 0.050 {
		t.Fatalf("p50 = %v, want 0.050", got)
	}
	if got := l.Quantile(0.99); got != 0.099 {
		t.Fatalf("p99 = %v, want 0.099", got)
	}
	if got := l.Quantile(0); got != 0.001 {
		t.Fatalf("p0 = %v, want 0.001", got)
	}
	if got := l.Quantile(1); got != 0.100 {
		t.Fatalf("p100 = %v, want 0.100", got)
	}
	if got, want := l.Mean(), 0.0505; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	l.Reset()
	if l.Count() != 0 || !math.IsNaN(l.Quantile(0.5)) {
		t.Fatal("reset did not clear the recorder")
	}
}

func TestLatencyReservoirBounded(t *testing.T) {
	l := NewLatency(2)
	n := latencyCap + 5000
	for i := 0; i < n; i++ {
		l.Observe(1.0)
	}
	if l.Count() != uint64(n) {
		t.Fatalf("count = %d, want %d", l.Count(), n)
	}
	if len(l.samples) != latencyCap {
		t.Fatalf("reservoir grew to %d", len(l.samples))
	}
	if got := l.Quantile(0.99); got != 1.0 {
		t.Fatalf("constant stream p99 = %v", got)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(0.001)
				_ = l.Quantile(0.5)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("lost observations: %d", l.Count())
	}
}
