package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestRegistrySnapshot: every instrument kind freezes into plain data
// in deterministic family order with the same values WritePrometheus
// would render.
func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "a counter").Add(7)
	r.Gauge("a_gauge", "a gauge").Set(2.5)
	r.GaugeFunc("fn_gauge", "callback", func() float64 { return 42 })
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	cv := r.CounterVec("req_total", "requests", "route")
	cv.With("/assign").Add(3)
	cv.With("/metrics").Add(1)

	fams := r.Snapshot()
	byName := map[string]SnapshotFamily{}
	var order []string
	for _, f := range fams {
		byName[f.Name] = f
		order = append(order, f.Name)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("families not sorted: %v", order)
		}
	}
	if f := byName["z_total"]; f.Kind != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 7 {
		t.Fatalf("counter snapshot wrong: %+v", f)
	}
	if f := byName["a_gauge"]; f.Samples[0].Value != 2.5 {
		t.Fatalf("gauge snapshot wrong: %+v", f)
	}
	if f := byName["fn_gauge"]; f.Samples[0].Value != 42 {
		t.Fatalf("gauge-func snapshot wrong: %+v", f)
	}
	hf := byName["lat_seconds"]
	s := hf.Samples[0]
	if s.Count != 3 || s.Sum != 101 || len(s.Bounds) != 2 || len(s.Buckets) != 3 {
		t.Fatalf("histogram snapshot wrong: %+v", s)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("histogram buckets wrong: %v", s.Buckets)
	}
	rf := byName["req_total"]
	if len(rf.Samples) != 2 || rf.Samples[0].Labels[0] != "/assign" || rf.Samples[0].Value != 3 {
		t.Fatalf("labeled counter snapshot wrong: %+v", rf)
	}
	if len(rf.LabelNames) != 1 || rf.LabelNames[0] != "route" {
		t.Fatalf("label names wrong: %v", rf.LabelNames)
	}
}

// TestSnapshotQuantile: the snapshot-side quantile matches the live
// histogram's interpolation, and empty samples yield NaN.
func TestSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.6, 3, 3.5, 100} {
		h.Observe(v)
	}
	s := snapshotHist(h, nil)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if live, snap := h.Quantile(q), s.Quantile(q); live != snap {
			t.Fatalf("q=%g: live %g != snapshot %g", q, live, snap)
		}
	}
	if !math.IsNaN((SnapshotSample{}).Quantile(0.5)) {
		t.Fatal("empty sample quantile should be NaN")
	}
}

// TestWriteFederatedPrometheus: rank labels on every series, HELP/TYPE
// once per family, deterministic ordering, histogram buckets per rank,
// and the stale marker for dead ranks.
func TestWriteFederatedPrometheus(t *testing.T) {
	r0 := NewRegistry()
	r0.Counter("knor_reqs_total", "requests").Add(5)
	r0.Histogram("knor_lat_seconds", "latency", []float64{1}).Observe(0.5)
	r1 := NewRegistry()
	r1.Counter("knor_reqs_total", "requests").Add(9)

	var sb strings.Builder
	err := WriteFederatedPrometheus(&sb, []RankSnapshot{
		{Rank: 1, Families: r1.Snapshot()},
		{Rank: 0, Families: r0.Snapshot()},
		{Rank: 2, Stale: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`knor_reqs_total{rank="0"} 5`,
		`knor_reqs_total{rank="1"} 9`,
		`knor_lat_seconds_bucket{rank="0",le="1"} 1`,
		`knor_lat_seconds_bucket{rank="0",le="+Inf"} 1`,
		`knor_lat_seconds_count{rank="0"} 1`,
		`knor_federation_stale{rank="0"} 0`,
		`knor_federation_stale{rank="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("federated output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE knor_reqs_total counter"); n != 1 {
		t.Fatalf("TYPE line emitted %d times, want once:\n%s", n, out)
	}
	// rank 0 series must come before rank 1 for the same family.
	if strings.Index(out, `knor_reqs_total{rank="0"}`) > strings.Index(out, `knor_reqs_total{rank="1"}`) {
		t.Fatalf("ranks not ordered:\n%s", out)
	}
}

// TestLabelCardinalityCap: past the per-family cap, new tuples collapse
// into one _overflow series, the dropped counter counts them, and
// existing tuples keep resolving to their own children.
func TestLabelCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxLabelSets(3)
	cv := r.CounterVec("caps_total", "capped", "who")
	cv.With("a").Inc()
	cv.With("b").Inc()
	cv.With("c").Inc()
	// Cap hit: d and e collapse.
	cv.With("d").Inc()
	cv.With("e").Add(2)
	// Pre-existing tuples still resolve to their own series.
	cv.With("a").Inc()

	if got := cv.With("a").Load(); got != 2 {
		t.Fatalf("existing series a = %d, want 2", got)
	}
	ov := cv.With(OverflowLabel)
	if got := ov.Load(); got != 3 {
		t.Fatalf("overflow series = %d, want 3 (1 from d + 2 from e)", got)
	}
	dropped := r.Counter("knor_telemetry_dropped_labels_total", "")
	// d, e, and the explicit _overflow lookup above resolve via the
	// overflow path only when the cap blocks a *new* tuple; the explicit
	// lookup found the existing overflow child without dropping.
	if got := dropped.Load(); got != 2 {
		t.Fatalf("dropped counter = %d, want 2", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `caps_total{who="_overflow"} 3`) {
		t.Fatalf("exposition missing overflow series:\n%s", out)
	}
	if strings.Contains(out, `who="d"`) || strings.Contains(out, `who="e"`) {
		t.Fatalf("capped tuples leaked into exposition:\n%s", out)
	}

	// Unlimited registries never drop.
	r2 := NewRegistry()
	r2.SetMaxLabelSets(0)
	cv2 := r2.CounterVec("free_total", "uncapped", "i")
	for i := 0; i < 2000; i++ {
		cv2.With(string(rune('a'+i%26)) + string(rune('0'+i%10))).Inc()
	}
	if got := r2.Counter("knor_telemetry_dropped_labels_total", "").Load(); got != 0 {
		t.Fatalf("uncapped registry dropped %d", got)
	}
}

// TestDefaultCapIsBounded: the default registry ships with a finite
// cap, so a label derived from hostile input cannot OOM the process.
func TestDefaultCapIsBounded(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("hostile_total", "hostile", "q")
	for i := 0; i < DefaultMaxLabelSets*2; i++ {
		cv.With(strings.Repeat("x", 1+i%7) + string(rune('a'+i%26)) + string(rune('A'+(i/26)%26)) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)) + string(rune('0'+(i/1000)%10))).Inc()
	}
	r.mu.Lock()
	in := r.insts["hostile_total"]
	r.mu.Unlock()
	in.mu.Lock()
	n := len(in.children)
	in.mu.Unlock()
	if n > DefaultMaxLabelSets+1 {
		t.Fatalf("children grew to %d, cap is %d", n, DefaultMaxLabelSets)
	}
}
