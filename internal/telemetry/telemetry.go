// Package telemetry is the unified observability layer: a low-overhead
// instrument registry (atomic counters, gauges, fixed-bucket
// histograms, labeled families) with Prometheus text-format exposition,
// plus a sampled request tracer. Every hot subsystem — the serve
// batcher, the shardserve fan-out, the store page cache, the sem engine
// and the model registry — registers its instruments against the
// package Default registry at init, so any process that links a
// subsystem exposes its series on GET /metrics without wiring.
//
// Design rules, in order:
//
//  1. The hot path pays atomics only. Counter.Add and Gauge.Add are one
//     atomic RMW; Histogram.Observe is a branchless bucket scan plus
//     two atomic adds. No locks, no allocation, no map lookups.
//  2. Registration is get-or-create and idempotent: two subsystem
//     instances (or two tests) asking for the same series share one
//     instrument instead of panicking, matching process-wide semantics.
//  3. SetEnabled(false) gates the non-essential observations (histogram
//     buckets, trace sampling) so a latency-critical deployment can
//     shed even that cost; counters and gauges stay live because the
//     pre-telemetry code already paid for them.
package telemetry

import (
	"math"
	"sync/atomic"
)

// enabled gates histogram observation and trace sampling (rule 3).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled toggles histogram observation and trace sampling
// process-wide. Counters and gauges are unaffected.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether histogram observation and trace sampling are
// on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically-increasing atomic event counter. The zero
// value is ready to use; methods are safe for concurrent callers.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (queue depth, drift, resident
// pages). The zero value reads 0 and is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are read-mostly, contention is rare).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }
