package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry names instruments and renders them in Prometheus text
// exposition format. Registration is get-or-create: asking twice for
// the same name returns the same instrument (process-wide series
// semantics), and asking with a conflicting kind panics loudly at init
// time rather than corrupting exposition quietly at scrape time.
type Registry struct {
	mu    sync.Mutex
	insts map[string]*instrument

	// maxLabelSets caps the distinct label-value tuples per labeled
	// family; beyond it new tuples collapse into one _overflow series
	// (<= 0 means unlimited). Keeps a misbehaving client — e.g. a label
	// derived from request content — from growing the registry without
	// bound.
	maxLabelSets atomic.Int64
}

// instrument is one registered family: a scalar instrument, a callback,
// or a labeled family keyed by its label value tuple.
type instrument struct {
	name, help, kind string // kind: counter | gauge | histogram
	labels           []string
	reg              *Registry

	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram

	mu       sync.Mutex // guards children
	children map[string]*child
}

type child struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// DefaultMaxLabelSets is the per-family cap on distinct label-value
// tuples a new registry starts with.
const DefaultMaxLabelSets = 1024

// NewRegistry builds an empty registry. Most callers want Default.
func NewRegistry() *Registry {
	r := &Registry{insts: map[string]*instrument{}}
	r.maxLabelSets.Store(DefaultMaxLabelSets)
	return r
}

// SetMaxLabelSets changes the per-family cap on distinct label-value
// tuples (<= 0 means unlimited). Existing series are never evicted;
// the cap only gates creation of new ones.
func (r *Registry) SetMaxLabelSets(n int) { r.maxLabelSets.Store(int64(n)) }

// Default is the process-wide registry every subsystem registers
// against at init; knorserve's GET /metrics serves it.
var Default = NewRegistry()

func (r *Registry) get(name, help, kind string, labels []string) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.insts[name]; ok {
		if in.kind != kind || len(in.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %q re-registered as %s/%v (was %s/%v)",
				name, kind, labels, in.kind, in.labels))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: kind, labels: labels, reg: r}
	if len(labels) > 0 {
		in.children = map[string]*child{}
	}
	r.insts[name] = in
	return in
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	in := r.get(name, help, "counter", nil)
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.counter == nil {
		in.counter = &Counter{}
	}
	return in.counter
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	in := r.get(name, help, "gauge", nil)
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.gauge == nil {
		in.gauge = &Gauge{}
	}
	return in.gauge
}

// GaugeFunc registers (or replaces) a callback gauge evaluated at
// exposition time — for values that already live somewhere (model
// count, resident cache pages) and should not be double-tracked.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	in := r.get(name, help, "gauge", nil)
	in.mu.Lock()
	in.gfn = fn
	in.mu.Unlock()
}

// Histogram returns the registered histogram, creating it with the
// given bounds on first use (later bounds are ignored: first writer
// wins, matching get-or-create).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	in := r.get(name, help, "histogram", nil)
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.hist == nil {
		in.hist = NewHistogram(bounds)
	}
	return in.hist
}

// CounterVec is a labeled counter family.
type CounterVec struct{ in *instrument }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ in *instrument }

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	in     *instrument
	bounds []float64
}

// CounterVec returns the registered labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{in: r.get(name, help, "counter", labels)}
}

// GaugeVec returns the registered labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{in: r.get(name, help, "gauge", labels)}
}

// HistogramVec returns the registered labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{in: r.get(name, help, "histogram", labels), bounds: bounds}
}

// childKey joins label values; \xff never appears in sane label values.
func childKey(vals []string) string { return strings.Join(vals, "\xff") }

// OverflowLabel is the label value every dimension of a dropped tuple
// collapses to once a family hits the registry's label-set cap.
const OverflowLabel = "_overflow"

// droppedLabels is the counter bumped each time a new label tuple is
// routed to the overflow series instead of getting its own child.
func (r *Registry) droppedLabels() *Counter {
	return r.Counter("knor_telemetry_dropped_labels_total",
		"Label tuples collapsed into _overflow series by the per-family cardinality cap.")
}

func (in *instrument) child(vals []string) *child {
	if len(vals) != len(in.labels) {
		panic(fmt.Sprintf("telemetry: %q wants %d label values, got %d",
			in.name, len(in.labels), len(vals)))
	}
	key := childKey(vals)
	in.mu.Lock()
	c, ok := in.children[key]
	if ok {
		in.mu.Unlock()
		return c
	}
	ovals := make([]string, len(in.labels))
	for i := range ovals {
		ovals[i] = OverflowLabel
	}
	okey := childKey(ovals)
	if max := in.reg.maxLabelSets.Load(); max > 0 && int64(len(in.children)) >= max && key != okey {
		// At the cap: collapse this tuple into the single overflow child
		// so exposition stays bounded no matter what label values arrive.
		c, ok = in.children[okey]
		if !ok {
			c = &child{labelVals: ovals}
			in.children[okey] = c
		}
		in.mu.Unlock()
		in.reg.droppedLabels().Inc()
		return c
	}
	c = &child{labelVals: append([]string(nil), vals...)}
	in.children[key] = c
	in.mu.Unlock()
	return c
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(vals ...string) *Counter {
	c := v.in.child(vals)
	v.in.mu.Lock()
	defer v.in.mu.Unlock()
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	c := v.in.child(vals)
	v.in.mu.Lock()
	defer v.in.mu.Unlock()
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	c := v.in.child(vals)
	v.in.mu.Lock()
	defer v.in.mu.Unlock()
	if c.hist == nil {
		c.hist = NewHistogram(v.bounds)
	}
	return c.hist
}

// --- exposition --------------------------------------------------------

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format (version 0.0.4), sorted by family name and
// label tuple so output is deterministic for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.insts))
	for n := range r.insts {
		names = append(names, n)
	}
	insts := make(map[string]*instrument, len(r.insts))
	for n, in := range r.insts {
		insts[n] = in
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		writeFamily(&b, insts[n])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, in *instrument) {
	if in.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", in.name, escapeHelp(in.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", in.name, in.kind)
	if len(in.labels) == 0 {
		in.mu.Lock()
		counter, gauge, gfn, hist := in.counter, in.gauge, in.gfn, in.hist
		in.mu.Unlock()
		switch {
		case counter != nil:
			fmt.Fprintf(b, "%s %s\n", in.name, fmtVal(float64(counter.Load())))
		case gfn != nil:
			fmt.Fprintf(b, "%s %s\n", in.name, fmtVal(gfn()))
		case gauge != nil:
			fmt.Fprintf(b, "%s %s\n", in.name, fmtVal(gauge.Load()))
		case hist != nil:
			writeHist(b, in.name, "", hist)
		}
		return
	}
	in.mu.Lock()
	keys := make([]string, 0, len(in.children))
	for k := range in.children {
		keys = append(keys, k)
	}
	children := make(map[string]*child, len(in.children))
	for k, c := range in.children {
		children[k] = c
	}
	in.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		c := children[k]
		lbl := labelString(in.labels, c.labelVals)
		switch {
		case c.counter != nil:
			fmt.Fprintf(b, "%s{%s} %s\n", in.name, lbl, fmtVal(float64(c.counter.Load())))
		case c.gauge != nil:
			fmt.Fprintf(b, "%s{%s} %s\n", in.name, lbl, fmtVal(c.gauge.Load()))
		case c.hist != nil:
			writeHist(b, in.name, lbl, c.hist)
		}
	}
}

func writeHist(b *strings.Builder, name, labels string, h *Histogram) {
	counts := h.BucketCounts()
	var cum uint64
	for i, bound := range h.Bounds() {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, bucketPrefix(labels), fmtVal(bound), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, bucketPrefix(labels), cum)
	fmt.Fprintf(b, "%s_sum %s\n", name+braced(labels), fmtVal(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", name+braced(labels), cum)
}

func bucketPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func labelString(names, vals []string) string {
	parts := make([]string, len(names))
	for i := range names {
		parts[i] = fmt.Sprintf("%s=%q", names[i], vals[i])
	}
	return strings.Join(parts, ",")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtVal renders a float the way Prometheus clients do: integral values
// without an exponent, NaN/Inf spelled out.
func fmtVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
