package telemetry

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1005 {
		t.Fatalf("counter = %d, want %d", got, 8*1005)
	}
}
