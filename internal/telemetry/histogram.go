package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed cumulative-style buckets
// (Prometheus semantics: bucket i counts observations <= bound i, with
// an implicit +Inf bucket). Bounds are fixed at construction so Observe
// is lock-free: a linear scan over a handful of bounds, then two atomic
// adds. Sum is kept in float64 bits behind a CAS.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds an unregistered histogram over the given upper
// bounds (sorted ascending; an unsorted slice is sorted in place). Use
// Registry.Histogram for a registered one.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// DefLatencyBuckets covers the serving path's dynamic range: 50µs
// request latencies up to multi-second tail stalls.
func DefLatencyBuckets() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
		250e-3, 500e-3, 1, 2.5,
	}
}

// DefSizeBuckets covers row/batch size distributions (1 .. 64k rows).
func DefSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
}

// Observe records one value. No-op while telemetry is disabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// First bucket whose bound >= v; the bounds list is short (tens),
	// so a linear scan beats binary search in practice and stays
	// branch-predictable for stable workloads.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf). Read-only.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts; the last entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile from the bucket counts by
// linear interpolation within the located bucket (Prometheus
// histogram_quantile semantics). NaN when empty; the last finite bound
// bounds estimates that land in the +Inf bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket: clamp to last bound
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
