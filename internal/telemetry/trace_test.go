package telemetry

import (
	"testing"
	"time"
)

// TestTraceOutOfOrderSpans: Span calls whose start precedes the trace
// begin, or whose end precedes their start (clock adjustment, racing
// goroutines finishing out of order), must never produce a negative
// offset or duration, and Stages renders sorted by start offset.
func TestTraceOutOfOrderSpans(t *testing.T) {
	begin := time.Now()
	tr := &Trace{ID: 7, Begin: begin}

	tr.Span("late", begin.Add(30*time.Millisecond), begin.Add(40*time.Millisecond))
	tr.Span("early", begin.Add(10*time.Millisecond), begin.Add(20*time.Millisecond))
	tr.Span("backwards", begin.Add(5*time.Millisecond), begin.Add(2*time.Millisecond))
	tr.Span("before_begin", begin.Add(-3*time.Millisecond), begin.Add(1*time.Millisecond))

	st := tr.Stages()
	if len(st) != 4 {
		t.Fatalf("got %d stages, want 4", len(st))
	}
	for _, s := range st {
		if s.Start < 0 {
			t.Fatalf("stage %q has negative start %v", s.Name, s.Start)
		}
		if s.Dur < 0 {
			t.Fatalf("stage %q has negative duration %v", s.Name, s.Dur)
		}
	}
	for i := 1; i < len(st); i++ {
		if st[i-1].Start > st[i].Start {
			t.Fatalf("stages not sorted by start: %q@%v after %q@%v",
				st[i-1].Name, st[i-1].Start, st[i].Name, st[i].Start)
		}
	}
	if st[0].Name != "before_begin" || st[len(st)-1].Name != "late" {
		t.Fatalf("unexpected sort order: %+v", st)
	}
}

// TestTraceSpanAtClamps: the explicit-offset entry point used for
// remote spans clamps negative inputs too.
func TestTraceSpanAtClamps(t *testing.T) {
	tr := &Trace{ID: 1, Begin: time.Now()}
	tr.SpanAt("remote", -5*time.Millisecond, -1*time.Millisecond)
	st := tr.Stages()
	if len(st) != 1 || st[0].Start != 0 || st[0].Dur != 0 {
		t.Fatalf("SpanAt did not clamp: %+v", st)
	}
}

// TestTraceContext: sampled traces carry their ID with a fresh parent
// span and the sampled bit; nil traces propagate the zero context.
func TestTraceContext(t *testing.T) {
	tr := &Trace{ID: 99, Begin: time.Now()}
	c1, c2 := tr.Context(), tr.Context()
	if !c1.Sampled || c1.TraceID != 99 {
		t.Fatalf("context = %+v, want sampled trace 99", c1)
	}
	if c1.Parent == c2.Parent || c1.Parent == 0 {
		t.Fatalf("parent span IDs not unique: %d vs %d", c1.Parent, c2.Parent)
	}
	var nilTr *Trace
	if c := nilTr.Context(); c != (SpanContext{}) {
		t.Fatalf("nil trace context = %+v, want zero", c)
	}
	nilTr.SpanAt("x", 0, 0) // must not panic
}
