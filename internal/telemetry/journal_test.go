package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestJournalRingAndCursor: the ring retains the newest capacity
// events, Since returns ascending events strictly after the cursor,
// and sequence numbers never repeat across wrap-around.
func TestJournalRingAndCursor(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Log("test", SevInfo, "event", F("i", i))
	}
	if got := j.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	evs := j.Since(0, 0)
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d (ascending, newest 4)", i, ev.Seq, want)
		}
		if ev.MonoUS < 0 {
			t.Fatalf("event %d: negative monotonic offset %d", i, ev.MonoUS)
		}
	}
	// Cursor: only events after seq 8.
	evs = j.Since(8, 0)
	if len(evs) != 2 || evs[0].Seq != 9 || evs[1].Seq != 10 {
		t.Fatalf("Since(8) = %+v, want seqs 9,10", evs)
	}
	// Bounded: the newest max events.
	evs = j.Since(0, 1)
	if len(evs) != 1 || evs[0].Seq != 10 {
		t.Fatalf("Since(0, max=1) = %+v, want just seq 10", evs)
	}
	// Cursor past the end: nothing.
	if evs := j.Since(10, 0); len(evs) != 0 {
		t.Fatalf("Since(LastSeq) returned %d events, want 0", len(evs))
	}
}

// TestJournalMirror: with a mirror set, each event renders one
// grep-friendly line including component, severity, and fields.
func TestJournalMirror(t *testing.T) {
	j := NewJournal(8)
	var sb strings.Builder
	j.SetMirror(&sb)
	j.Log("topology", SevWarn, "machine dead", F("machine", 2))
	line := sb.String()
	for _, want := range []string{"[warn]", "topology", "machine dead", "machine=2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("mirror line %q missing %q", line, want)
		}
	}
	j.SetMirror(nil)
	j.Log("topology", SevInfo, "quiet")
	if sb.String() != line {
		t.Fatal("mirror kept writing after SetMirror(nil)")
	}
}

// TestJournalNilAndConcurrent: a nil journal drops silently, and
// concurrent writers with a reader are race-clean (run under -race).
func TestJournalNilAndConcurrent(t *testing.T) {
	var nilJ *Journal
	nilJ.Log("x", SevInfo, "dropped")
	nilJ.SetMirror(nil)
	if nilJ.Since(0, 0) != nil || nilJ.LastSeq() != 0 {
		t.Fatal("nil journal should be empty")
	}

	j := NewJournal(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Log("worker", SevInfo, "tick", F("g", g), F("i", i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			j.Since(0, 0)
		}
	}()
	wg.Wait()
	<-done
	if got := j.LastSeq(); got != 400 {
		t.Fatalf("LastSeq = %d, want 400", got)
	}
	evs := j.Since(0, 0)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}
