package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one named step of a traced request, as offsets from the
// trace's begin time so a dump is self-contained.
type Stage struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_us"`
	Dur   time.Duration `json:"dur_us"`
}

// Trace captures one sampled request's lifecycle as a flat span list
// (enqueue → batch coalesce → GEMM → shard fan-out → min-allreduce →
// reply). A nil *Trace is the not-sampled case and every method on it
// is a no-op, so hot paths call unconditionally.
type Trace struct {
	ID    uint64
	Begin time.Time

	mu     sync.Mutex
	stages []Stage
	end    time.Time
}

// Span records a named stage spanning [start, end).
func (t *Trace) Span(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{
		Name:  name,
		Start: start.Sub(t.Begin),
		Dur:   end.Sub(start),
	})
	t.mu.Unlock()
}

// Stages returns a snapshot of the recorded stages.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// End returns the trace's completion time (zero until finished).
func (t *Trace) End() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end
}

// Tracer samples one request in every Every and keeps the most recent
// completed traces in a fixed ring. A nil *Tracer never samples, so
// components take one without caring whether tracing is configured.
type Tracer struct {
	every int64
	n     atomic.Int64
	id    atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next int
}

// NewTracer samples one request in every (>= 1), retaining the keep
// (default 16) most recent completed traces.
func NewTracer(every, keep int) *Tracer {
	if every < 1 {
		every = 1
	}
	if keep < 1 {
		keep = 16
	}
	return &Tracer{every: int64(every), ring: make([]*Trace, keep)}
}

// Sample returns a fresh Trace when this request is selected, nil
// otherwise (and always nil while telemetry is disabled or the tracer
// itself is nil).
func (tr *Tracer) Sample() *Trace {
	if tr == nil || !enabled.Load() {
		return nil
	}
	if tr.n.Add(1)%tr.every != 0 {
		return nil
	}
	return &Trace{ID: tr.id.Add(1), Begin: time.Now()}
}

// Done finishes a sampled trace and stores it in the ring. No-op for a
// nil trace or nil tracer.
func (tr *Tracer) Done(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.mu.Lock()
	t.end = time.Now()
	t.mu.Unlock()
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.mu.Unlock()
}

// Traces returns the completed traces, most recent first.
func (tr *Tracer) Traces() []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Trace, 0, len(tr.ring))
	for i := 0; i < len(tr.ring); i++ {
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		if tr.ring[idx] != nil {
			out = append(out, tr.ring[idx])
		}
	}
	return out
}
