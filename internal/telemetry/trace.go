package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one named step of a traced request, as offsets from the
// trace's begin time so a dump is self-contained.
type Stage struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_us"`
	Dur   time.Duration `json:"dur_us"`
}

// Trace captures one sampled request's lifecycle as a flat span list
// (enqueue → batch coalesce → GEMM → shard fan-out → min-allreduce →
// reply). A nil *Trace is the not-sampled case and every method on it
// is a no-op, so hot paths call unconditionally.
type Trace struct {
	ID    uint64
	Begin time.Time

	mu     sync.Mutex
	stages []Stage
	end    time.Time
}

// SpanContext is the propagatable identity of a sampled trace: enough
// to carry across a process boundary (trace ID + parent span + sampled
// bit) without shipping the span list itself. The zero value means
// "not sampled".
type SpanContext struct {
	TraceID uint64
	Parent  uint64
	Sampled bool
}

var spanIDs atomic.Uint64

// NewSpanID returns a process-unique span identifier for use as the
// Parent of an outgoing SpanContext.
func NewSpanID() uint64 { return spanIDs.Add(1) }

// Context returns the trace's propagatable context with a fresh parent
// span ID. The zero SpanContext for a nil (unsampled) trace.
func (t *Trace) Context() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: t.ID, Parent: NewSpanID(), Sampled: true}
}

// Span records a named stage spanning [start, end). Offsets and
// durations are clamped non-negative so out-of-order or racing Span
// calls can never render a negative bar in a dump.
func (t *Trace) Span(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.SpanAt(name, start.Sub(t.Begin), end.Sub(start))
}

// SpanAt records a stage from an explicit offset and duration relative
// to the trace's begin time. This is the skew-safe entry point for
// spans measured on another machine: the remote side reports offsets
// from an event both sides can anchor (request receipt), never
// absolute wall times, and the caller adds its local dispatch offset.
func (t *Trace) SpanAt(name string, start, dur time.Duration) {
	if t == nil {
		return
	}
	if start < 0 {
		start = 0
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Start: start, Dur: dur})
	t.mu.Unlock()
}

// Stages returns a snapshot of the recorded stages, sorted by start
// offset (stable, so same-offset spans keep insertion order).
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Stage(nil), t.stages...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// End returns the trace's completion time (zero until finished).
func (t *Trace) End() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end
}

// RemoteSpan is one span measured on another process, expressed as
// offsets from an anchor event both sides observe (the moment the
// worker received the request). Offsets are measured on the worker's
// own monotonic clock and re-anchored by the caller at its local
// dispatch time, so wall-clock skew between machines never enters a
// stitched timeline.
type RemoteSpan struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Tracer samples one request in every Every and keeps the most recent
// completed traces in a fixed ring. A nil *Tracer never samples, so
// components take one without caring whether tracing is configured.
type Tracer struct {
	every int64
	n     atomic.Int64
	id    atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next int
}

// NewTracer samples one request in every (>= 1), retaining the keep
// (default 16) most recent completed traces.
func NewTracer(every, keep int) *Tracer {
	if every < 1 {
		every = 1
	}
	if keep < 1 {
		keep = 16
	}
	return &Tracer{every: int64(every), ring: make([]*Trace, keep)}
}

// Sample returns a fresh Trace when this request is selected, nil
// otherwise (and always nil while telemetry is disabled or the tracer
// itself is nil).
func (tr *Tracer) Sample() *Trace {
	if tr == nil || !enabled.Load() {
		return nil
	}
	if tr.n.Add(1)%tr.every != 0 {
		return nil
	}
	return &Trace{ID: tr.id.Add(1), Begin: time.Now()}
}

// Done finishes a sampled trace and stores it in the ring. No-op for a
// nil trace or nil tracer.
func (tr *Tracer) Done(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.mu.Lock()
	t.end = time.Now()
	t.mu.Unlock()
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.mu.Unlock()
}

// Traces returns the completed traces, most recent first.
func (tr *Tracer) Traces() []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Trace, 0, len(tr.ring))
	for i := 0; i < len(tr.ring); i++ {
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		if tr.ring[idx] != nil {
			out = append(out, tr.ring[idx])
		}
	}
	return out
}
