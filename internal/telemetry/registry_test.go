package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden locks the exposition format: family
// ordering, HELP/TYPE lines, label rendering, cumulative histogram
// buckets, and integral-vs-float value formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(3)
	g := r.Gauge("test_queue_depth", "Rows queued.")
	g.Set(2.5)
	r.GaugeFunc("test_models", "Registered models.", func() float64 { return 4 })
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5) // +Inf bucket
	v := r.CounterVec("test_by_model_total", "Per-model requests.", "model")
	v.With("b").Add(2)
	v.With("a").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_by_model_total Per-model requests.
# TYPE test_by_model_total counter
test_by_model_total{model="a"} 1
test_by_model_total{model="b"} 2
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.105
test_latency_seconds_count 4
# HELP test_models Registered models.
# TYPE test_models gauge
test_models 4
# HELP test_queue_depth Rows queued.
# TYPE test_queue_depth gauge
test_queue_depth 2.5
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryGetOrCreate asserts process-wide series semantics: the
// same name returns the same instrument, a conflicting kind panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("goc_total", "")
	b := r.Counter("goc_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatalf("shared counter: got %d, want 1", b.Load())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("goc_total", "")
}

// TestRegistryConcurrent hammers registration and observation from many
// goroutines; run under -race it proves the lock discipline.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		iters   = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("conc_total", "").Inc()
				r.Gauge("conc_gauge", "").Add(1)
				r.Histogram("conc_seconds", "", DefLatencyBuckets()).Observe(float64(i) * 1e-4)
				r.CounterVec("conc_by_w_total", "", "w").With(string(rune('a' + w%4))).Inc()
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Load(); got != workers*iters {
		t.Fatalf("conc_total = %d, want %d", got, workers*iters)
	}
	var perLabel uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		perLabel += r.CounterVec("conc_by_w_total", "", "w").With(l).Load()
	}
	if perLabel != workers*iters {
		t.Fatalf("labeled sum = %d, want %d", perLabel, workers*iters)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive edge semantics:
// an observation exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{1, 2, 4} {
		h.Observe(v)
	}
	h.Observe(0)                 // below first bound -> first bucket
	h.Observe(4.000001)          // just past the last bound -> +Inf
	h.Observe(math.Inf(1))       // +Inf observation -> +Inf bucket
	want := []uint64{2, 1, 1, 2} // buckets le=1, le=2, le=4, +Inf
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want within (0, 1]", q)
	}
	h2 := NewHistogram([]float64{1})
	h2.Observe(100) // lands in +Inf: quantile clamps to the last bound
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 1", q)
	}
}

// TestSetEnabledGatesHistograms proves the disabled mode: histogram
// observations and trace sampling stop, counters keep counting (their
// cost predates this package, so disabled ~= the old baseline).
func TestSetEnabledGatesHistograms(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	if h.Count() != 0 {
		t.Fatal("disabled telemetry still recorded a histogram observation")
	}
	tr := NewTracer(1, 4)
	if tr.Sample() != nil {
		t.Fatal("disabled telemetry still sampled a trace")
	}
	var c Counter
	c.Inc()
	if c.Load() != 1 {
		t.Fatal("counters must keep counting while disabled")
	}
}
