package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// latencyCap bounds the sample buffer; beyond it the recorder switches
// to reservoir sampling so long-running servers keep O(1) memory while
// quantiles stay unbiased estimates of the full stream.
const latencyCap = 1 << 16

// Latency records observation durations (seconds) and answers exact
// quantile queries from a reservoir — the serving layer's p50/p95/p99
// source. It can additionally mirror every observation into a
// registered Histogram so /metrics exposes the same stream in bucketed
// form: one source of truth for the live endpoint, the stats JSON and
// the bench tables. Safe for concurrent use.
type Latency struct {
	mu      sync.Mutex
	samples []float64
	count   uint64
	sum     float64
	rng     *rand.Rand
	hist    *Histogram // optional exposition mirror
}

// NewLatency returns an empty recorder. seed fixes the reservoir
// replacement stream so tests are deterministic.
func NewLatency(seed int64) *Latency {
	return &Latency{rng: rand.New(rand.NewSource(seed))}
}

// Mirror attaches a histogram that receives every subsequent
// observation (typically a Registry.Histogram, so the stream shows up
// on /metrics). Returns l for chaining.
func (l *Latency) Mirror(h *Histogram) *Latency {
	l.mu.Lock()
	l.hist = h
	l.mu.Unlock()
	return l
}

// Observe records one duration in seconds.
func (l *Latency) Observe(seconds float64) {
	l.mu.Lock()
	l.count++
	l.sum += seconds
	h := l.hist
	if len(l.samples) < latencyCap {
		l.samples = append(l.samples, seconds)
	} else if i := l.rng.Int63n(int64(l.count)); i < int64(latencyCap) {
		// Reservoir: keep each of the count observations with equal chance.
		l.samples[i] = seconds
	}
	l.mu.Unlock()
	if h != nil {
		h.Observe(seconds)
	}
}

// Count returns the number of observations.
func (l *Latency) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Mean returns the mean observed duration (0 when empty).
func (l *Latency) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.sum / float64(l.count)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the recorded
// samples by nearest-rank on a sorted copy; NaN when empty.
func (l *Latency) Quantile(q float64) float64 {
	l.mu.Lock()
	cp := append([]float64(nil), l.samples...)
	l.mu.Unlock()
	if len(cp) == 0 {
		return math.NaN()
	}
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	return cp[idx]
}

// Reset discards all observations (the mirror histogram, being a
// monotone exposition stream, is not reset).
func (l *Latency) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = l.samples[:0]
	l.count = 0
	l.sum = 0
}
