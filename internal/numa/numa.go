// Package numa models a NUMA machine: a set of nodes, each with local
// cores and a local memory bank reached over a shared per-node link.
//
// Go offers no portable thread pinning or memory binding, so the paper's
// NUMA effects are reproduced in a simulated cost layer: data rows are
// *placed* on nodes by a Placement policy, workers carry a node
// affinity, and touching rows that live on a different node pays a
// remote transfer through the owning node's interconnect link (a
// simclock.Resource). Contention on those links — many threads hammering
// one bank — is what separates the NUMA-aware and NUMA-oblivious curves
// in the paper's Figure 4.
package numa

import (
	"fmt"
	"math/rand"

	"knor/internal/simclock"
)

// Topology describes a simulated NUMA machine.
type Topology struct {
	Nodes        int // number of NUMA nodes (sockets)
	CoresPerNode int // physical cores per node
}

// DefaultTopology mirrors the paper's evaluation machine: four sockets
// of twelve cores (48 physical cores).
func DefaultTopology() Topology {
	return Topology{Nodes: 4, CoresPerNode: 12}
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.CoresPerNode <= 0 {
		return fmt.Errorf("numa: invalid topology %+v", t)
	}
	return nil
}

// TotalCores returns the number of physical cores in the machine.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode }

// NodeOfThread returns the node a thread is bound to under the paper's
// scheme (threads are divided equally across nodes in contiguous
// blocks, Figure 1).
func (t Topology) NodeOfThread(tid, threads int) int {
	if threads <= 0 {
		panic("numa: threads must be positive")
	}
	perNode := (threads + t.Nodes - 1) / t.Nodes
	n := tid / perNode
	if n >= t.Nodes {
		n = t.Nodes - 1
	}
	return n
}

// PlacementPolicy selects where rows live.
type PlacementPolicy int

const (
	// PlacePartitioned splits rows equally across nodes in contiguous
	// ranges and is the knori default (Figure 1).
	PlacePartitioned PlacementPolicy = iota
	// PlaceSingleBank puts every row on node 0, the behaviour of a
	// NUMA-oblivious contiguous malloc on first touch.
	PlaceSingleBank
	// PlaceInterleaved stripes rows round-robin across nodes, the
	// behaviour of an interleaving allocator.
	PlaceInterleaved
	// PlaceRandom scatters rows uniformly at random.
	PlaceRandom
)

// String implements fmt.Stringer.
func (p PlacementPolicy) String() string {
	switch p {
	case PlacePartitioned:
		return "partitioned"
	case PlaceSingleBank:
		return "single-bank"
	case PlaceInterleaved:
		return "interleaved"
	case PlaceRandom:
		return "random"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// Placement records which node owns each contiguous block of rows. The
// block granularity matches the scheduler's task granularity so owner
// lookups stay O(1) per task.
type Placement struct {
	topo      Topology
	policy    PlacementPolicy
	rows      int
	blockSize int
	owner     []int // node per block
}

// NewPlacement places rows on the topology under the given policy.
// blockSize is the contiguous run of rows placed together; it must
// divide the machine's work granularity (tasks), not n.
func NewPlacement(topo Topology, policy PlacementPolicy, rows, blockSize int, seed int64) *Placement {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	if rows < 0 || blockSize <= 0 {
		panic(fmt.Sprintf("numa: bad placement rows=%d block=%d", rows, blockSize))
	}
	nb := (rows + blockSize - 1) / blockSize
	p := &Placement{topo: topo, policy: policy, rows: rows, blockSize: blockSize, owner: make([]int, nb)}
	switch policy {
	case PlacePartitioned:
		// Equal contiguous shares per node, like the paper's Figure 1.
		for b := range p.owner {
			node := b * topo.Nodes / max(nb, 1)
			if node >= topo.Nodes {
				node = topo.Nodes - 1
			}
			p.owner[b] = node
		}
	case PlaceSingleBank:
		for b := range p.owner {
			p.owner[b] = 0
		}
	case PlaceInterleaved:
		for b := range p.owner {
			p.owner[b] = b % topo.Nodes
		}
	case PlaceRandom:
		rng := rand.New(rand.NewSource(seed))
		for b := range p.owner {
			p.owner[b] = rng.Intn(topo.Nodes)
		}
	default:
		panic("numa: unknown placement policy")
	}
	return p
}

// Rows returns the number of rows placed.
func (p *Placement) Rows() int { return p.rows }

// BlockSize returns the placement granularity in rows.
func (p *Placement) BlockSize() int { return p.blockSize }

// Policy returns the placement policy.
func (p *Placement) Policy() PlacementPolicy { return p.policy }

// NodeOfRow returns the node owning a row.
func (p *Placement) NodeOfRow(row int) int {
	if row < 0 || row >= p.rows {
		panic(fmt.Sprintf("numa: row %d out of range [0,%d)", row, p.rows))
	}
	return p.owner[row/p.blockSize]
}

// NodeOfBlock returns the node owning block b.
func (p *Placement) NodeOfBlock(b int) int { return p.owner[b] }

// NumBlocks returns the number of placement blocks.
func (p *Placement) NumBlocks() int { return len(p.owner) }

// NodeShare returns, for each node, the fraction of rows it owns.
func (p *Placement) NodeShare() []float64 {
	counts := make([]float64, p.topo.Nodes)
	for b, node := range p.owner {
		lo := b * p.blockSize
		hi := lo + p.blockSize
		if hi > p.rows {
			hi = p.rows
		}
		counts[node] += float64(hi - lo)
	}
	if p.rows > 0 {
		for i := range counts {
			counts[i] /= float64(p.rows)
		}
	}
	return counts
}

// Machine bundles a topology with its simulated memory links and counts
// local/remote traffic. One Machine is shared by all workers of a run.
type Machine struct {
	Topo  Topology
	Model simclock.CostModel
	links []*simclock.Resource // one per node: path into that node's bank

	statsMu     chan struct{} // 1-token semaphore: cheap, race-free counters
	localBytes  uint64
	remoteBytes uint64
}

// NewMachine builds a simulated machine over the topology.
func NewMachine(topo Topology, model simclock.CostModel) *Machine {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{Topo: topo, Model: model, statsMu: make(chan struct{}, 1)}
	m.statsMu <- struct{}{}
	m.links = make([]*simclock.Resource, topo.Nodes)
	for i := range m.links {
		m.links[i] = simclock.NewResource(fmt.Sprintf("numa-link-%d", i))
	}
	return m
}

// Link returns the interconnect link into node n's memory bank.
func (m *Machine) Link(n int) *simclock.Resource { return m.links[n] }

// Touch charges worker clock c for reading `bytes` bytes that live on
// node owner, from a worker bound to node at. Local reads stream from
// the local bank at LocalBandwidth with no queuing (local banks have
// enough channels for their own cores); remote reads pay latency plus a
// serialised transfer through the owning node's link.
func (m *Machine) Touch(c *simclock.Clock, at, owner int, bytes int) {
	if bytes <= 0 {
		return
	}
	if at == owner {
		c.Advance(float64(bytes) / m.Model.LocalBandwidth)
		m.addStats(uint64(bytes), 0)
		return
	}
	dur := float64(bytes) / m.Model.RemoteBandwidth
	end := m.links[owner].Acquire(c.Now()+m.Model.RemoteLatency, dur)
	c.AdvanceTo(end)
	m.addStats(0, uint64(bytes))
}

// TouchAsync is Touch without advancing a clock: it returns the time
// the transfer finishes if issued at start. Engines that overlap
// streamed reads with computation (hardware prefetch hides transfer
// behind the distance kernel) take max(computeEnd, TouchAsync(...)).
func (m *Machine) TouchAsync(start float64, at, owner int, bytes int) float64 {
	if bytes <= 0 {
		return start
	}
	if at == owner {
		m.addStats(uint64(bytes), 0)
		return start + float64(bytes)/m.Model.LocalBandwidth
	}
	dur := float64(bytes) / m.Model.RemoteBandwidth
	end := m.links[owner].Acquire(start+m.Model.RemoteLatency, dur)
	m.addStats(0, uint64(bytes))
	return end
}

func (m *Machine) addStats(local, remote uint64) {
	<-m.statsMu
	m.localBytes += local
	m.remoteBytes += remote
	m.statsMu <- struct{}{}
}

// Traffic reports cumulative local and remote bytes touched.
func (m *Machine) Traffic() (local, remote uint64) {
	<-m.statsMu
	local, remote = m.localBytes, m.remoteBytes
	m.statsMu <- struct{}{}
	return
}

// ResetStats zeroes traffic counters and link statistics.
func (m *Machine) ResetStats() {
	<-m.statsMu
	m.localBytes, m.remoteBytes = 0, 0
	m.statsMu <- struct{}{}
	for _, l := range m.links {
		l.Reset()
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
