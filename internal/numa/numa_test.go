package numa

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"knor/internal/simclock"
)

func TestTopologyValidate(t *testing.T) {
	if err := DefaultTopology().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Topology{Nodes: 0, CoresPerNode: 4}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-node topology validated")
	}
	if got := DefaultTopology().TotalCores(); got != 48 {
		t.Fatalf("TotalCores = %d, want 48", got)
	}
}

func TestNodeOfThread(t *testing.T) {
	topo := Topology{Nodes: 4, CoresPerNode: 12}
	// 16 threads over 4 nodes: 4 per node, contiguous blocks.
	for tid := 0; tid < 16; tid++ {
		want := tid / 4
		if got := topo.NodeOfThread(tid, 16); got != want {
			t.Fatalf("NodeOfThread(%d,16) = %d, want %d", tid, got, want)
		}
	}
	// Threads not divisible by nodes still map in range.
	for tid := 0; tid < 7; tid++ {
		got := topo.NodeOfThread(tid, 7)
		if got < 0 || got >= topo.Nodes {
			t.Fatalf("NodeOfThread(%d,7) = %d out of range", tid, got)
		}
	}
	// One thread lands on node 0.
	if got := topo.NodeOfThread(0, 1); got != 0 {
		t.Fatalf("single thread on node %d", got)
	}
}

func TestPlacementPartitioned(t *testing.T) {
	topo := Topology{Nodes: 4, CoresPerNode: 2}
	p := NewPlacement(topo, PlacePartitioned, 1000, 10, 1)
	if p.NumBlocks() != 100 {
		t.Fatalf("blocks = %d", p.NumBlocks())
	}
	// Contiguous, non-decreasing node assignment covering all nodes.
	prev := 0
	seen := map[int]bool{}
	for b := 0; b < p.NumBlocks(); b++ {
		n := p.NodeOfBlock(b)
		if n < prev {
			t.Fatalf("partitioned placement not contiguous at block %d", b)
		}
		prev = n
		seen[n] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d nodes used", len(seen))
	}
	// Shares are equal within one block.
	for node, share := range p.NodeShare() {
		if math.Abs(share-0.25) > 0.011 {
			t.Fatalf("node %d share %g", node, share)
		}
	}
}

func TestPlacementSingleBank(t *testing.T) {
	p := NewPlacement(DefaultTopology(), PlaceSingleBank, 500, 8, 1)
	for r := 0; r < 500; r += 7 {
		if p.NodeOfRow(r) != 0 {
			t.Fatalf("row %d not on node 0", r)
		}
	}
	share := p.NodeShare()
	if share[0] != 1.0 {
		t.Fatalf("node0 share %g", share[0])
	}
}

func TestPlacementInterleaved(t *testing.T) {
	topo := Topology{Nodes: 3, CoresPerNode: 1}
	p := NewPlacement(topo, PlaceInterleaved, 90, 10, 1)
	for b := 0; b < p.NumBlocks(); b++ {
		if p.NodeOfBlock(b) != b%3 {
			t.Fatalf("block %d on node %d", b, p.NodeOfBlock(b))
		}
	}
}

func TestPlacementRandomDeterministic(t *testing.T) {
	a := NewPlacement(DefaultTopology(), PlaceRandom, 1000, 10, 42)
	b := NewPlacement(DefaultTopology(), PlaceRandom, 1000, 10, 42)
	for i := 0; i < a.NumBlocks(); i++ {
		if a.NodeOfBlock(i) != b.NodeOfBlock(i) {
			t.Fatal("random placement not reproducible for same seed")
		}
	}
}

func TestPlacementRowBounds(t *testing.T) {
	p := NewPlacement(DefaultTopology(), PlacePartitioned, 10, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range row did not panic")
		}
	}()
	p.NodeOfRow(10)
}

func TestPlacementString(t *testing.T) {
	names := map[PlacementPolicy]string{
		PlacePartitioned: "partitioned",
		PlaceSingleBank:  "single-bank",
		PlaceInterleaved: "interleaved",
		PlaceRandom:      "random",
	}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestMachineTouchLocalVsRemote(t *testing.T) {
	model := simclock.DefaultCostModel()
	m := NewMachine(Topology{Nodes: 2, CoresPerNode: 2}, model)
	var c simclock.Clock
	m.Touch(&c, 0, 0, 1<<20) // local
	localT := c.Now()
	c.Reset(0)
	m.Touch(&c, 0, 1, 1<<20) // remote
	remoteT := c.Now()
	if remoteT <= localT {
		t.Fatalf("remote %g not slower than local %g", remoteT, localT)
	}
	local, remote := m.Traffic()
	if local != 1<<20 || remote != 1<<20 {
		t.Fatalf("traffic local=%d remote=%d", local, remote)
	}
}

func TestMachineRemoteContention(t *testing.T) {
	// Two workers hitting the same remote bank serialise on its link;
	// total elapsed must be at least the sum of transfer durations.
	model := simclock.DefaultCostModel()
	m := NewMachine(Topology{Nodes: 2, CoresPerNode: 2}, model)
	bytes := 1 << 20
	per := float64(bytes) / model.RemoteBandwidth
	var c1, c2 simclock.Clock
	m.Touch(&c1, 0, 1, bytes)
	m.Touch(&c2, 0, 1, bytes)
	latest := math.Max(c1.Now(), c2.Now())
	if latest < 2*per {
		t.Fatalf("contended remote reads overlapped: %g < %g", latest, 2*per)
	}
}

func TestMachineTouchZeroBytes(t *testing.T) {
	m := NewMachine(DefaultTopology(), simclock.DefaultCostModel())
	var c simclock.Clock
	m.Touch(&c, 0, 3, 0)
	if c.Now() != 0 {
		t.Fatal("zero-byte touch advanced the clock")
	}
}

func TestMachineResetStats(t *testing.T) {
	m := NewMachine(DefaultTopology(), simclock.DefaultCostModel())
	var c simclock.Clock
	m.Touch(&c, 0, 1, 100)
	m.ResetStats()
	l, r := m.Traffic()
	if l != 0 || r != 0 {
		t.Fatal("ResetStats left traffic")
	}
	if m.Link(1).BusyTime() != 0 {
		t.Fatal("ResetStats left link busy time")
	}
}

func TestMachineConcurrentTouch(t *testing.T) {
	m := NewMachine(DefaultTopology(), simclock.DefaultCostModel())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var c simclock.Clock
			for i := 0; i < 100; i++ {
				m.Touch(&c, w%4, (w+1)%4, 64)
			}
		}(w)
	}
	wg.Wait()
	local, remote := m.Traffic()
	if local+remote != 8*100*64 {
		t.Fatalf("traffic sum = %d, want %d", local+remote, 8*100*64)
	}
}

// Property: every placement policy assigns every block a node in range
// and NodeShare sums to 1.
func TestPlacementProperty(t *testing.T) {
	f := func(rowsRaw uint16, blockRaw uint8, policyRaw uint8, seed int64) bool {
		rows := int(rowsRaw)%5000 + 1
		block := int(blockRaw)%64 + 1
		policy := PlacementPolicy(int(policyRaw) % 4)
		topo := Topology{Nodes: 4, CoresPerNode: 4}
		p := NewPlacement(topo, policy, rows, block, seed)
		for b := 0; b < p.NumBlocks(); b++ {
			n := p.NodeOfBlock(b)
			if n < 0 || n >= topo.Nodes {
				return false
			}
		}
		sum := 0.0
		for _, s := range p.NodeShare() {
			sum += s
		}
		return math.Abs(sum-1.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: thread-to-node mapping is always in range and monotone
// non-decreasing in thread id.
func TestNodeOfThreadProperty(t *testing.T) {
	f := func(threadsRaw uint8) bool {
		threads := int(threadsRaw)%128 + 1
		topo := Topology{Nodes: 4, CoresPerNode: 12}
		prev := 0
		for tid := 0; tid < threads; tid++ {
			n := topo.NodeOfThread(tid, threads)
			if n < 0 || n >= topo.Nodes || n < prev {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTouchAsyncMatchesTouchTotals(t *testing.T) {
	model := simclock.DefaultCostModel()
	m := NewMachine(Topology{Nodes: 2, CoresPerNode: 2}, model)
	// Local: completion is start + bytes/localBW, no queueing.
	end := m.TouchAsync(1.0, 0, 0, 1<<20)
	want := 1.0 + float64(1<<20)/model.LocalBandwidth
	if math.Abs(end-want) > 1e-15 {
		t.Fatalf("local async end %g want %g", end, want)
	}
	// Remote: queued on the owner's link, latency added.
	e1 := m.TouchAsync(0, 0, 1, 1<<20)
	e2 := m.TouchAsync(0, 0, 1, 1<<20)
	if e2 <= e1 {
		t.Fatalf("remote async not serialised: %g then %g", e1, e2)
	}
	local, remote := m.Traffic()
	if local != 1<<20 || remote != 2<<20 {
		t.Fatalf("traffic local=%d remote=%d", local, remote)
	}
	// Zero bytes: no time, no traffic.
	if end := m.TouchAsync(3, 0, 1, 0); end != 3 {
		t.Fatalf("zero-byte async end %g", end)
	}
}
