package workload

import (
	"math"
	"testing"
	"testing/quick"

	"knor/internal/matrix"
)

func TestCatalogueShapes(t *testing.T) {
	specs := Catalogue(1)
	if len(specs) != 5 {
		t.Fatalf("catalogue has %d entries", len(specs))
	}
	// Table 2 row counts and dims at scale divisor 1.
	want := map[string][2]int{
		"Friendster-8":  {66_000_000, 8},
		"Friendster-32": {66_000_000, 32},
		"RM856M":        {856_000_000, 16},
		"RM1B":          {1_100_000_000, 32},
		"RU2B":          {2_100_000_000, 64},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", s.Name)
		}
		if s.N != w[0] || s.D != w[1] {
			t.Fatalf("%s: n=%d d=%d, want %v", s.Name, s.N, s.D, w)
		}
	}
	// Scaled catalogue divides N but keeps D.
	for i, s := range Catalogue(1000) {
		if s.D != specs[i].D {
			t.Fatalf("scaling changed dims for %s", s.Name)
		}
		if s.N >= specs[i].N {
			t.Fatalf("scaling did not reduce %s", s.Name)
		}
		if s.N < 64 {
			t.Fatalf("scaled below floor: %d", s.N)
		}
	}
}

func TestSpecBytes(t *testing.T) {
	s := Spec{N: 1000, D: 8}
	if s.Bytes() != 64000 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, k := range []Kind{NaturalClusters, UniformMultivariate, UniformUnivariate} {
		s := Spec{Name: "t", Kind: k, N: 200, D: 4, Clusters: 3, Spread: 0.1, Seed: 7}
		m := Generate(s)
		if m.Rows() != 200 || m.Cols() != 4 {
			t.Fatalf("%v: %dx%d", k, m.Rows(), m.Cols())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Spec{Kind: NaturalClusters, N: 100, D: 8, Clusters: 4, Spread: 0.05, Seed: 99}
	a := Generate(s)
	b := Generate(s)
	if !a.Equal(b, 0) {
		t.Fatal("same seed produced different data")
	}
	s2 := s
	s2.Seed = 100
	c := Generate(s2)
	if a.Equal(c, 0) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestNaturalClustersAreClustered(t *testing.T) {
	// Points should sit near the true centres: SSE against true centres
	// must be far below SSE against a single global centroid.
	s := Spec{Kind: NaturalClusters, N: 2000, D: 8, Clusters: 8, Spread: 0.05, Seed: 5}
	data := Generate(s)
	centres := TrueCentres(s)
	sseTrue := SSE(data, centres)
	mean := matrix.NewDense(1, s.D)
	for i := 0; i < data.Rows(); i++ {
		matrix.AddTo(mean.Row(0), data.Row(i))
	}
	matrix.Scale(mean.Row(0), 1/float64(data.Rows()))
	sseMean := SSE(data, mean)
	if sseTrue > sseMean/10 {
		t.Fatalf("data not clustered: sseTrue=%g sseMean=%g", sseTrue, sseMean)
	}
}

func TestPowerLawWeights(t *testing.T) {
	// First component should hold the plurality of points.
	s := Spec{Kind: NaturalClusters, N: 5000, D: 4, Clusters: 5, Spread: 0.01, Seed: 11}
	data := Generate(s)
	centres := TrueCentres(s)
	counts := make([]int, s.Clusters)
	for i := 0; i < data.Rows(); i++ {
		best, bi := math.Inf(1), 0
		for c := 0; c < centres.Rows(); c++ {
			if d := matrix.SqDist(data.Row(i), centres.Row(c)); d < best {
				best, bi = d, c
			}
		}
		counts[bi]++
	}
	for c := 1; c < s.Clusters; c++ {
		if counts[0] <= counts[c] {
			t.Fatalf("power-law weights violated: counts=%v", counts)
		}
	}
}

func TestUniformRange(t *testing.T) {
	m := Generate(Spec{Kind: UniformMultivariate, N: 500, D: 3, Seed: 2})
	for _, v := range m.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("uniform value %g out of [0,1)", v)
		}
	}
}

func TestUnivariateRowsNearlyConstant(t *testing.T) {
	m := Generate(Spec{Kind: UniformUnivariate, N: 100, D: 8, Seed: 3})
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := 1; j < len(row); j++ {
			if math.Abs(row[j]-row[0]) > 2e-3 {
				t.Fatalf("row %d not univariate: %v", i, row)
			}
		}
	}
}

func TestSSEZeroOnCentroids(t *testing.T) {
	data, _ := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if got := SSE(data, data); got != 0 {
		t.Fatalf("SSE(data, data) = %g", got)
	}
}

func TestTrueCentresPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TrueCentres(Spec{Kind: UniformMultivariate})
}

func TestKindString(t *testing.T) {
	if NaturalClusters.String() != "natural-clusters" ||
		UniformMultivariate.String() != "uniform-multivariate" ||
		UniformUnivariate.String() != "uniform-univariate" {
		t.Fatal("Kind.String mismatch")
	}
}

// Property: generation never produces NaN/Inf and is shape-correct.
func TestGenerateFiniteProperty(t *testing.T) {
	f := func(nRaw, dRaw uint8, kindRaw uint8, seed int64) bool {
		n := int(nRaw)%300 + 1
		d := int(dRaw)%16 + 1
		kind := Kind(int(kindRaw) % 3)
		m := Generate(Spec{Kind: kind, N: n, D: d, Clusters: 4, Spread: 0.1, Seed: seed})
		if m.Rows() != n || m.Cols() != d {
			return false
		}
		for _, v := range m.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateLabeled(t *testing.T) {
	s := Spec{Kind: NaturalClusters, N: 500, D: 6, Clusters: 5, Spread: 0.03, Seed: 13}
	data, labels := GenerateLabeled(s)
	if len(labels) != 500 {
		t.Fatalf("labels len %d", len(labels))
	}
	centres := TrueCentres(s)
	// Every row must be nearest its labelled component's centre at this
	// separation.
	for i := 0; i < data.Rows(); i++ {
		best, bi := math.Inf(1), 0
		for c := 0; c < centres.Rows(); c++ {
			if d := matrix.SqDist(data.Row(i), centres.Row(c)); d < best {
				best, bi = d, c
			}
		}
		if int32(bi) != labels[i] {
			t.Fatalf("row %d labelled %d but nearest centre %d", i, labels[i], bi)
		}
	}
	// Uniform kinds have no labels.
	if _, l := GenerateLabeled(Spec{Kind: UniformMultivariate, N: 10, D: 2, Seed: 1}); l != nil {
		t.Fatal("uniform kind returned labels")
	}
}

func TestGroupedOrdersLabels(t *testing.T) {
	s := Spec{Kind: NaturalClusters, N: 400, D: 4, Clusters: 4, Spread: 0.05, Seed: 14, Grouped: true}
	_, labels := GenerateLabeled(s)
	for i := 1; i < len(labels); i++ {
		if labels[i] < labels[i-1] {
			t.Fatalf("grouped labels not sorted at %d", i)
		}
	}
	// Grouped and ungrouped hold the same multiset of labels.
	s2 := s
	s2.Grouped = false
	_, l2 := GenerateLabeled(s2)
	count := func(ls []int32) map[int32]int {
		m := map[int32]int{}
		for _, l := range ls {
			m[l]++
		}
		return m
	}
	c1, c2 := count(labels), count(l2)
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("label %d count %d vs %d", k, v, c2[k])
		}
	}
}
