package workload

import (
	"testing"

	"knor/internal/matrix"
)

func TestQueryStreamDeterministic(t *testing.T) {
	spec := Spec{Kind: NaturalClusters, D: 8, Clusters: 5, Spread: 0.04, Seed: 9}
	a := NewQueryStream(spec, 7).Next(100)
	b := NewQueryStream(spec, 7).Next(100)
	if !a.Equal(b, 0) {
		t.Fatal("same (spec, seed) produced different queries")
	}
	c := NewQueryStream(spec, 8).Next(100)
	if a.Equal(c, 0) {
		t.Fatal("different seeds produced identical queries")
	}
}

func TestQueryStreamMatchesTrainingDistribution(t *testing.T) {
	spec := Spec{Kind: NaturalClusters, D: 8, Clusters: 5, Spread: 0.03, Seed: 11}
	centres := TrueCentres(spec)
	q := NewQueryStream(spec, 3).Next(500)
	// Every query must land near one of the true mixture centres:
	// within a few spread-lengths (here 5σ per coordinate would be
	// 0.15; allow a generous Euclidean ball).
	for i := 0; i < q.Rows(); i++ {
		best := 1e18
		for c := 0; c < centres.Rows(); c++ {
			if d := matrix.Dist(q.Row(i), centres.Row(c)); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Fatalf("query %d is %.3f from every centre", i, best)
		}
	}
}

func TestQueryStreamUniformKinds(t *testing.T) {
	for _, kind := range []Kind{UniformMultivariate, UniformUnivariate} {
		q := NewQueryStream(Spec{Kind: kind, D: 4, Seed: 2}, 5).Next(200)
		if q.Rows() != 200 || q.Cols() != 4 {
			t.Fatalf("%v: wrong shape %dx%d", kind, q.Rows(), q.Cols())
		}
		for _, v := range q.Data {
			if v < 0 || v >= 1.01 {
				t.Fatalf("%v: value %v outside [0,1)+jitter", kind, v)
			}
		}
	}
	// Univariate rows are near-constant across coordinates.
	q := NewQueryStream(Spec{Kind: UniformUnivariate, D: 4, Seed: 2}, 5).Next(50)
	for i := 0; i < q.Rows(); i++ {
		row := q.Row(i)
		for j := 1; j < len(row); j++ {
			if row[j]-row[0] > 1e-3+1e-9 || row[j]-row[0] < -1e-3-1e-9 {
				t.Fatalf("univariate row %d varies too much: %v", i, row)
			}
		}
	}
}
