// Package workload generates the synthetic datasets the evaluation
// uses. The paper's real dataset (Friendster top-k eigenvectors) is a
// spectral embedding of a power-law graph and has strong natural
// clusters — the regime where MTI pruning shines. We reproduce that
// regime with a Gaussian mixture whose component weights follow a power
// law and whose centres are well separated. The scalability datasets
// (RM856M, RM1B, RU2B) are uniform random draws, the paper's worst case
// for convergence; we generate the same shapes scale-parameterised.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"knor/internal/matrix"
)

// Kind selects a generator family.
type Kind int

const (
	// NaturalClusters draws from a separated Gaussian mixture with
	// power-law component weights (Friendster-eigenvector-like).
	NaturalClusters Kind = iota
	// UniformMultivariate draws each coordinate uniformly from [0,1)
	// (the paper's Rand-Multivariate RM* datasets).
	UniformMultivariate
	// UniformUnivariate draws d identical copies of one uniform scalar
	// per row plus small jitter (the paper's Rand-Univariate RU2B).
	UniformUnivariate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NaturalClusters:
		return "natural-clusters"
	case UniformMultivariate:
		return "uniform-multivariate"
	case UniformUnivariate:
		return "uniform-univariate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one dataset.
type Spec struct {
	Name     string
	Kind     Kind
	N        int // rows
	D        int // dimensions
	Clusters int // true component count for NaturalClusters
	Spread   float64
	Seed     int64
	// Grouped emits NaturalClusters rows grouped by component, the way
	// spectral embeddings of community-ordered graphs lay out on disk.
	// Grouping creates per-block pruning skew — the workload property
	// that makes dynamic scheduling matter (Figure 5).
	Grouped bool
}

// Bytes returns the in-memory size of the row data in bytes (n*d*8),
// matching the paper's Table 2 "Size" column.
func (s Spec) Bytes() int64 { return int64(s.N) * int64(s.D) * 8 }

// Catalogue returns the paper's Table 2 datasets, scale-reduced by the
// given divisor (1 reproduces the paper's row counts; the benchmark
// harness uses a large divisor so shapes run in seconds).
func Catalogue(scaleDiv int) []Spec {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	sc := func(n int) int {
		v := n / scaleDiv
		if v < 64 {
			v = 64
		}
		return v
	}
	return []Spec{
		{Name: "Friendster-8", Kind: NaturalClusters, N: sc(66_000_000), D: 8, Clusters: 10, Spread: 0.05, Seed: 8},
		{Name: "Friendster-32", Kind: NaturalClusters, N: sc(66_000_000), D: 32, Clusters: 10, Spread: 0.05, Seed: 32},
		{Name: "RM856M", Kind: UniformMultivariate, N: sc(856_000_000), D: 16, Seed: 856},
		{Name: "RM1B", Kind: UniformMultivariate, N: sc(1_100_000_000), D: 32, Seed: 1100},
		{Name: "RU2B", Kind: UniformUnivariate, N: sc(2_100_000_000), D: 64, Seed: 2100},
	}
}

// Generate materialises the dataset described by the spec.
func Generate(s Spec) *matrix.Dense {
	m, _ := GenerateLabeled(s)
	return m
}

// GenerateLabeled materialises the dataset along with its generating
// labels: the mixture component per row for NaturalClusters (the ground
// truth external indices compare against), or nil for the label-free
// uniform kinds.
func GenerateLabeled(s Spec) (*matrix.Dense, []int32) {
	switch s.Kind {
	case NaturalClusters:
		return naturalClusters(s)
	case UniformMultivariate:
		return uniform(s, false), nil
	case UniformUnivariate:
		return uniform(s, true), nil
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", int(s.Kind)))
	}
}

// naturalClusters draws from a Gaussian mixture with power-law weights
// (Zipf exponent ~1, like the Friendster degree distribution feeding
// the eigenvectors) and centres placed on a scaled simplex so that the
// separation-to-spread ratio keeps cluster membership stable, which is
// what makes MTI's Clause 1 fire (points "fall into strongly rooted
// clusters and do not change membership").
func naturalClusters(s Spec) (*matrix.Dense, []int32) {
	if s.Clusters <= 0 {
		s.Clusters = 10
	}
	if s.Spread <= 0 {
		s.Spread = 0.05
	}
	rng := rand.New(rand.NewSource(s.Seed))
	centres := matrix.NewDense(s.Clusters, s.D)
	for c := 0; c < s.Clusters; c++ {
		for j := 0; j < s.D; j++ {
			centres.Set(c, j, rng.NormFloat64())
		}
		// normalise centre directions so separation is uniform-ish
		row := centres.Row(c)
		n := matrix.Norm(row)
		if n > 0 {
			matrix.Scale(row, 1/n)
		}
	}
	// power-law weights: w_c ∝ 1/(c+1)
	weights := make([]float64, s.Clusters)
	var wsum float64
	for c := range weights {
		weights[c] = 1 / float64(c+1)
		wsum += weights[c]
	}
	cum := make([]float64, s.Clusters)
	acc := 0.0
	for c := range weights {
		acc += weights[c] / wsum
		cum[c] = acc
	}
	m := matrix.NewDense(s.N, s.D)
	comp := make([]int, s.N)
	for i := 0; i < s.N; i++ {
		u := rng.Float64()
		c := 0
		for c < s.Clusters-1 && u > cum[c] {
			c++
		}
		comp[i] = c
	}
	if s.Grouped {
		sort.Ints(comp)
	}
	labels := make([]int32, s.N)
	for i := 0; i < s.N; i++ {
		labels[i] = int32(comp[i])
		row := m.Row(i)
		centre := centres.Row(comp[i])
		for j := 0; j < s.D; j++ {
			row[j] = centre[j] + rng.NormFloat64()*s.Spread
		}
	}
	return m, labels
}

func uniform(s Spec, univariate bool) *matrix.Dense {
	rng := rand.New(rand.NewSource(s.Seed))
	m := matrix.NewDense(s.N, s.D)
	for i := 0; i < s.N; i++ {
		row := m.Row(i)
		if univariate {
			v := rng.Float64()
			for j := range row {
				row[j] = v + rng.Float64()*1e-3
			}
		} else {
			for j := range row {
				row[j] = rng.Float64()
			}
		}
	}
	return m
}

// TrueCentres returns the mixture centres used by naturalClusters for a
// spec, allowing tests to check recovered clustering quality.
func TrueCentres(s Spec) *matrix.Dense {
	if s.Kind != NaturalClusters {
		panic("workload: TrueCentres only defined for NaturalClusters")
	}
	if s.Clusters <= 0 {
		s.Clusters = 10
	}
	rng := rand.New(rand.NewSource(s.Seed))
	centres := matrix.NewDense(s.Clusters, s.D)
	for c := 0; c < s.Clusters; c++ {
		for j := 0; j < s.D; j++ {
			centres.Set(c, j, rng.NormFloat64())
		}
		row := centres.Row(c)
		n := matrix.Norm(row)
		if n > 0 {
			matrix.Scale(row, 1/n)
		}
	}
	return centres
}

// SSE computes the sum of squared distances from each row to its
// nearest centroid — the k-means objective, used as a quality metric.
func SSE(data, centroids *matrix.Dense) float64 {
	var total float64
	for i := 0; i < data.Rows(); i++ {
		row := data.Row(i)
		best := math.Inf(1)
		for c := 0; c < centroids.Rows(); c++ {
			if d := matrix.SqDist(row, centroids.Row(c)); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}
