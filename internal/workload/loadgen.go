package workload

import (
	"math/rand"

	"knor/internal/matrix"
)

// QueryStream draws an endless stream of query rows from the same
// generative process as a dataset Spec, so a serving layer can be
// load-tested with traffic that matches the training distribution
// (NaturalClusters queries land near the true mixture centres; uniform
// kinds draw fresh uniform rows). The stream is deterministic for a
// fixed (spec, seed) pair.
type QueryStream struct {
	spec    Spec
	rng     *rand.Rand
	centres *matrix.Dense // mixture centres for NaturalClusters
	cum     []float64     // cumulative component weights
}

// NewQueryStream builds a stream for the spec. seed is independent of
// the spec's dataset seed so train and query draws do not overlap.
func NewQueryStream(s Spec, seed int64) *QueryStream {
	q := &QueryStream{spec: s, rng: rand.New(rand.NewSource(seed))}
	if s.Kind == NaturalClusters {
		if q.spec.Clusters <= 0 {
			q.spec.Clusters = 10
		}
		if q.spec.Spread <= 0 {
			q.spec.Spread = 0.05
		}
		q.centres = TrueCentres(s)
		weights := make([]float64, q.spec.Clusters)
		var wsum float64
		for c := range weights {
			weights[c] = 1 / float64(c+1)
			wsum += weights[c]
		}
		q.cum = make([]float64, q.spec.Clusters)
		acc := 0.0
		for c := range weights {
			acc += weights[c] / wsum
			q.cum[c] = acc
		}
	}
	return q
}

// Next materialises the next batch of query rows.
func (q *QueryStream) Next(batch int) *matrix.Dense {
	m := matrix.NewDense(batch, q.spec.D)
	for i := 0; i < batch; i++ {
		row := m.Row(i)
		switch q.spec.Kind {
		case NaturalClusters:
			u := q.rng.Float64()
			c := 0
			for c < q.spec.Clusters-1 && u > q.cum[c] {
				c++
			}
			centre := q.centres.Row(c)
			for j := range row {
				row[j] = centre[j] + q.rng.NormFloat64()*q.spec.Spread
			}
		case UniformUnivariate:
			v := q.rng.Float64()
			for j := range row {
				row[j] = v + q.rng.Float64()*1e-3
			}
		default: // UniformMultivariate
			for j := range row {
				row[j] = q.rng.Float64()
			}
		}
	}
	return m
}
