package cliutil

import (
	"flag"
	"strings"
	"testing"
)

func TestClusterFlagsRoles(t *testing.T) {
	cases := []struct {
		name     string
		listen   string
		join     string
		machines int
		role     Role
		errPart  string
	}{
		{name: "solo", machines: 1, role: RoleSolo},
		{name: "coordinator", listen: "127.0.0.1:7001", machines: 3, role: RoleCoordinator},
		{name: "worker", join: "127.0.0.1:7001", machines: 3, role: RoleWorker},
		{name: "worker with listen", listen: "127.0.0.1:7002", join: "127.0.0.1:7001", machines: 3, role: RoleWorker},
		{name: "coordinator needs machines", listen: "127.0.0.1:7001", machines: 1, errPart: "-machines"},
		{name: "bad listen", listen: "no-port", machines: 3, errPart: "-listen"},
		{name: "bad join", join: "no-port", machines: 3, errPart: "-join"},
		{name: "join needs port", join: "127.0.0.1:0", machines: 3, errPart: "concrete port"},
		{name: "join needs host", join: "0.0.0.0:7001", machines: 3, errPart: "concrete host"},
		{name: "self-join exact", listen: "127.0.0.1:7001", join: "127.0.0.1:7001", machines: 3, errPart: "self-join"},
		{name: "self-join wildcard", listen: ":7001", join: "127.0.0.1:7001", machines: 3, errPart: "self-join"},
		{name: "self-join localhost", listen: "localhost:7001", join: "127.0.0.1:7001", machines: 3, errPart: "self-join"},
		{name: "not self-join other port", listen: "127.0.0.1:7002", join: "127.0.0.1:7001", machines: 3, role: RoleWorker},
		{name: "not self-join other host", listen: "10.0.0.2:7001", join: "10.0.0.1:7001", machines: 3, role: RoleWorker},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := ClusterFlags{Listen: tc.listen, Join: tc.join}
			role, err := c.Validate(tc.machines)
			if tc.errPart != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errPart) {
					t.Fatalf("want error containing %q, got %v", tc.errPart, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if role != tc.role {
				t.Fatalf("role %v, want %v", role, tc.role)
			}
		})
	}
}

func TestClusterFlagsWorkerListenDefault(t *testing.T) {
	c := ClusterFlags{Join: "10.0.0.1:7001"}
	if _, err := c.Validate(3); err != nil {
		t.Fatal(err)
	}
	if c.Listen != "127.0.0.1:0" {
		t.Fatalf("worker listen defaulted to %q", c.Listen)
	}
}

func TestClusterFlagsRegister(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var c ClusterFlags
	c.Register(fs)
	if err := fs.Parse([]string{"-listen", ":7001", "-join", "h:7002"}); err != nil {
		t.Fatal(err)
	}
	if c.Listen != ":7001" || c.Join != "h:7002" {
		t.Fatalf("parsed %+v", c)
	}
}

func TestCheckRoster(t *testing.T) {
	if err := CheckRoster([]string{"a:1", "b:2", "c:3"}); err != nil {
		t.Fatal(err)
	}
	if err := CheckRoster([]string{"a:1", "b:2", "a:1"}); err == nil || !strings.Contains(err.Error(), "duplicate rank") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
	if err := CheckRoster([]string{"a:1", ""}); err == nil || !strings.Contains(err.Error(), "empty address") {
		t.Fatalf("empty not rejected: %v", err)
	}
}
