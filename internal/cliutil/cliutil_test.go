package cliutil

import (
	"testing"

	"knor/internal/kmeans"
	"knor/internal/sched"
)

func TestParsePrune(t *testing.T) {
	cases := map[string]kmeans.Prune{
		"none": kmeans.PruneNone, "": kmeans.PruneNone,
		"mti": kmeans.PruneMTI, "MTI": kmeans.PruneMTI,
		"ti": kmeans.PruneTI,
	}
	for in, want := range cases {
		got, err := ParsePrune(in)
		if err != nil || got != want {
			t.Fatalf("ParsePrune(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePrune("bogus"); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestParseInit(t *testing.T) {
	cases := map[string]kmeans.Init{
		"forgy": kmeans.InitForgy, "": kmeans.InitForgy,
		"random":   kmeans.InitRandomPartition,
		"kmeans++": kmeans.InitKMeansPP, "pp": kmeans.InitKMeansPP,
	}
	for in, want := range cases {
		got, err := ParseInit(in)
		if err != nil || got != want {
			t.Fatalf("ParseInit(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseInit("bogus"); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestParseSched(t *testing.T) {
	cases := map[string]sched.Policy{
		"static": sched.Static,
		"fifo":   sched.FIFO,
		"numa":   sched.NUMAAware, "": sched.NUMAAware,
	}
	for in, want := range cases {
		got, err := ParseSched(in)
		if err != nil || got != want {
			t.Fatalf("ParseSched(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSched("bogus"); err == nil {
		t.Fatal("bogus accepted")
	}
}
