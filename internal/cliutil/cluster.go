package cliutil

import (
	"flag"
	"fmt"
	"net"
	"strings"
)

// ClusterFlags is the shared -listen/-join plumbing for commands that
// can run as one process of a real netcluster (knord, knorserve). The
// command keeps its own -machines flag (defaults and help text differ
// per tool) and passes its value to Validate.
type ClusterFlags struct {
	// Listen is the address this process's cluster transport binds
	// (the coordinator's advertised address, or a worker's mesh port).
	Listen string
	// Join is the coordinator address a worker process joins; empty on
	// the coordinator and in single-process mode.
	Join string
}

// Register installs -listen and -join on fs.
func (c *ClusterFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Listen, "listen", "",
		"cluster mode: transport listen address for this process (coordinator requires it; workers default to 127.0.0.1:0)")
	fs.StringVar(&c.Join, "join", "",
		"cluster mode: coordinator host:port to join as a worker process")
}

// Role is what the cluster flags make of this process.
type Role int

const (
	// RoleSolo runs everything in-process (no cluster flags set).
	RoleSolo Role = iota
	// RoleCoordinator is rank 0: it listens, assigns ranks to joining
	// workers, and is the process that reports results.
	RoleCoordinator
	// RoleWorker joins a coordinator and is assigned a rank >= 1.
	RoleWorker
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSolo:
		return "solo"
	case RoleCoordinator:
		return "coordinator"
	case RoleWorker:
		return "worker"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Validate classifies the flags into a role and rejects the
// misconfigurations that would otherwise hang a bootstrap: a worker
// joining its own listen address (the join dial would connect to
// itself and wait forever for a rank), a worker joining a wildcard or
// portless address, and a coordinator whose machine count cannot cover
// a cluster. Workers with no -listen get a loopback ephemeral port —
// the address is advertised to the coordinator during the join
// handshake, so it need not be predictable.
func (c *ClusterFlags) Validate(machines int) (Role, error) {
	switch {
	case c.Join == "" && c.Listen == "":
		return RoleSolo, nil
	case c.Join != "":
		host, port, err := net.SplitHostPort(c.Join)
		if err != nil {
			return 0, fmt.Errorf("-join %q: %v", c.Join, err)
		}
		if port == "" || port == "0" {
			return 0, fmt.Errorf("-join %q: need the coordinator's concrete port", c.Join)
		}
		if host == "" || host == "0.0.0.0" || host == "::" {
			return 0, fmt.Errorf("-join %q: need the coordinator's concrete host", c.Join)
		}
		if c.Listen == "" {
			c.Listen = "127.0.0.1:0"
		}
		if selfJoin(c.Join, c.Listen) {
			return 0, fmt.Errorf("-join %s is this process's own -listen address (self-join)", c.Join)
		}
		return RoleWorker, nil
	default: // Listen set, Join empty: the coordinator
		if machines < 2 {
			return 0, fmt.Errorf("-listen without -join starts a coordinator: need -machines >= 2, have %d", machines)
		}
		if _, _, err := net.SplitHostPort(c.Listen); err != nil {
			return 0, fmt.Errorf("-listen %q: %v", c.Listen, err)
		}
		return RoleCoordinator, nil
	}
}

// selfJoin reports whether join and listen name the same endpoint:
// equal ports and hosts that are equal after loopback/wildcard
// normalisation (a worker listening on ":7001" joins "127.0.0.1:7001"
// on the same box — that is itself).
func selfJoin(join, listen string) bool {
	jh, jp, err := net.SplitHostPort(join)
	if err != nil {
		return false
	}
	lh, lp, err := net.SplitHostPort(listen)
	if err != nil {
		return false
	}
	if jp != lp {
		return false
	}
	norm := func(h string) string {
		switch strings.ToLower(h) {
		case "", "0.0.0.0", "::", "localhost", "::1":
			return "127.0.0.1"
		}
		return h
	}
	return norm(jh) == norm(lh)
}

// CheckRoster rejects rosters that cannot be a cluster: empty
// addresses (a rank nobody can dial) and duplicates (two processes
// claiming one rank slot). The netcluster bootstrap enforces the same
// invariants online; this is the offline check for explicit rosters.
func CheckRoster(addrs []string) error {
	seen := make(map[string]int, len(addrs))
	for r, a := range addrs {
		if a == "" {
			return fmt.Errorf("rank %d has an empty address", r)
		}
		if prev, dup := seen[a]; dup {
			return fmt.Errorf("ranks %d and %d share address %s (duplicate rank)", prev, r, a)
		}
		seen[a] = r
	}
	return nil
}
