// Package cliutil holds the flag-parsing helpers shared by the knor
// command-line tools.
package cliutil

import (
	"fmt"
	"strings"

	"knor/internal/kmeans"
	"knor/internal/sched"
)

// ParsePrune maps a flag string to a pruning mode.
func ParsePrune(s string) (kmeans.Prune, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return kmeans.PruneNone, nil
	case "mti":
		return kmeans.PruneMTI, nil
	case "ti":
		return kmeans.PruneTI, nil
	default:
		return 0, fmt.Errorf("unknown pruning mode %q (want none|mti|ti)", s)
	}
}

// ParseInit maps a flag string to an initialisation method.
func ParseInit(s string) (kmeans.Init, error) {
	switch strings.ToLower(s) {
	case "forgy", "":
		return kmeans.InitForgy, nil
	case "random", "random-partition":
		return kmeans.InitRandomPartition, nil
	case "kmeans++", "kmeanspp", "pp":
		return kmeans.InitKMeansPP, nil
	default:
		return 0, fmt.Errorf("unknown init method %q (want forgy|random|kmeans++)", s)
	}
}

// ParsePrecision maps a -precision flag string to a numeric precision.
func ParsePrecision(s string) (kmeans.Precision, error) {
	return kmeans.ParsePrecision(strings.ToLower(s))
}

// ParseSched maps a flag string to a scheduler policy.
func ParseSched(s string) (sched.Policy, error) {
	switch strings.ToLower(s) {
	case "static":
		return sched.Static, nil
	case "fifo":
		return sched.FIFO, nil
	case "numa", "numa-aware", "":
		return sched.NUMAAware, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (want static|fifo|numa)", s)
	}
}
