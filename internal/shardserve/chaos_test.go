package shardserve

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"knor/internal/blas"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/serve"
)

// chaosSeed replays a failing chaos run exactly:
//
//	go test ./internal/shardserve -run Chaos -chaos-seed 42
var chaosSeed = flag.Int64("chaos-seed", 1, "seed for the chaos kill schedule, centroids and traffic")

// TestChaosSingleKillParity is the headline acceptance check: with
// R=2 and at most one machine down at a time, a seeded kill schedule
// running under live QueryStream traffic produces ZERO client-visible
// errors and ZERO rows that differ from the single-node oracle — at
// both precisions — and the fault phase actually exercised failover.
func TestChaosSingleKillParity(t *testing.T) {
	for _, p := range []kmeans.Precision{kmeans.Precision64, kmeans.Precision32} {
		t.Run(p.String(), func(t *testing.T) {
			stats, err := RunChaos(ChaosConfig{
				Machines: 3, Replicas: 2, MaxDead: 1,
				Precision: p, Seed: *chaosSeed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Kills == 0 {
				t.Fatal("kill schedule never fired")
			}
			if stats.Failovers == 0 {
				t.Fatal("no failovers: the kills never landed on a preferred replica under load")
			}
			if stats.Errors != 0 {
				t.Errorf("%d client-visible errors with one machine down and R=2 (seed %d)", stats.Errors, *chaosSeed)
			}
			if stats.Wrong != 0 {
				t.Errorf("%d rows differ from the oracle (seed %d)", stats.Wrong, *chaosSeed)
			}
			if stats.FinalErrors != 0 || stats.FinalWrong != 0 {
				t.Errorf("post-recovery: %d errors, %d wrong rows (seed %d)",
					stats.FinalErrors, stats.FinalWrong, *chaosSeed)
			}
			if stats.DegradedRounds == 0 {
				t.Error("no round ever saw a degraded shard group: the schedule was too gentle to prove anything")
			}
			if stats.UnavailableRounds != 0 {
				t.Errorf("%d rounds saw an unavailable group; MaxDead=1 under R=2 must never silence one", stats.UnavailableRounds)
			}
		})
	}
}

// TestChaosKillEachMachine pins the "ANY single machine" half of the
// acceptance wording: for every machine in turn, kill exactly it under
// load and require bit-exactness, then revive and require it again.
func TestChaosKillEachMachine(t *testing.T) {
	for m := 0; m < 3; m++ {
		t.Run(fmt.Sprintf("machine%d", m), func(t *testing.T) {
			cents, queries := parityCase(11, 6, 40, *chaosSeed+int64(m))
			oreg := serve.NewRegistry(1)
			if _, err := oreg.Publish("m", cents); err != nil {
				t.Fatal(err)
			}
			oracle := serve.NewBatcherOf[float64](oreg, serve.BatcherOptions{MaxWait: time.Microsecond})
			defer oracle.Close()
			sr := NewShardRegistryWith(Options{Machines: 3, Replicas: 2})
			if _, err := sr.Publish("m", cents); err != nil {
				t.Fatal(err)
			}
			asn := NewAssignerOf[float64](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
			defer asn.Close()

			want, err := oracle.AssignBatch("m", queries)
			if err != nil {
				t.Fatal(err)
			}
			check := func(when string) {
				t.Helper()
				got, err := asn.AssignBatch("m", queries)
				if err != nil {
					t.Fatalf("%s: %v", when, err)
				}
				if n := diffAssign(got, want); n != 0 {
					t.Fatalf("%s: %d rows differ from oracle", when, n)
				}
			}
			check("all live")
			sr.Kill(m)
			check("machine killed")
			sr.Revive(m)
			check("machine revived")
		})
	}
}

// TestChaosSelfHealing drives the full healing loop: topology-attached
// registry, sequential kills down to MaxDead=3 of 5 machines (live
// count never below R), settle after each transition. Healing
// re-spreads every group onto live machines from the canonical copies,
// so traffic stays error-free and bit-exact throughout.
func TestChaosSelfHealing(t *testing.T) {
	stats, err := RunChaos(ChaosConfig{
		Machines: 5, Replicas: 2, MaxDead: 3,
		Heal: true, Settle: true,
		KillEvery: 2, DeadFor: 5, Rounds: 16,
		Precision: kmeans.Precision64, Seed: *chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kills < 3 {
		t.Fatalf("only %d kills; schedule meant to overlap deaths", stats.Kills)
	}
	if stats.Errors != 0 {
		t.Errorf("%d errors despite healing keeping every group replicated (seed %d)", stats.Errors, *chaosSeed)
	}
	if stats.Wrong != 0 {
		t.Errorf("%d rows differ from the oracle (seed %d)", stats.Wrong, *chaosSeed)
	}
	if stats.FinalErrors != 0 || stats.FinalWrong != 0 {
		t.Errorf("post-recovery: %d errors, %d wrong rows", stats.FinalErrors, stats.FinalWrong)
	}
	if stats.UnavailableRounds != 0 {
		t.Errorf("%d rounds saw an unavailable group; settle must heal before traffic", stats.UnavailableRounds)
	}
}

// TestChaosUnavailableConfined kills a whole shard group (R=1, no
// healing) and checks the failure contract: the dead group's model
// errors with ErrShardUnavailable naming its centroid range, a model
// whose shards all sit on live machines keeps answering bit-exactly,
// and reviving the machine restores exactness for everyone.
func TestChaosUnavailableConfined(t *testing.T) {
	centsA, queriesA := parityCase(6, 5, 24, *chaosSeed)
	centsB, queriesB := parityCase(2, 5, 24, *chaosSeed+1)

	sr := NewShardRegistryWith(Options{Machines: 3, Replicas: 1})
	for name, c := range map[string]*matrix.Dense{"a": centsA, "b": centsB} {
		if _, err := sr.Publish(name, c); err != nil {
			t.Fatal(err)
		}
	}
	asn := NewAssignerOf[float64](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer asn.Close()

	oracle := func(cents, queries *matrix.Dense) []serve.Assignment {
		t.Helper()
		reg := serve.NewRegistry(1)
		if _, err := reg.Publish("m", cents); err != nil {
			t.Fatal(err)
		}
		b := serve.NewBatcherOf[float64](reg, serve.BatcherOptions{MaxWait: time.Microsecond})
		defer b.Close()
		want, err := b.AssignBatch("m", queries)
		if err != nil {
			t.Fatal(err)
		}
		return want
	}
	wantA := oracle(centsA, queriesA)
	wantB := oracle(centsB, queriesB)

	// k=6 over 3 machines splits [0,2) [2,4) [4,6); machine 2 holds
	// the last group of "a" and nothing of "b" (k=2 occupies machines
	// 0 and 1 only).
	sr.Kill(2)
	if _, err := asn.AssignBatch("a", queriesA); err == nil {
		t.Fatal("model a answered with its shard group dead")
	} else {
		if !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("error %v, want ErrShardUnavailable", err)
		}
		if !strings.Contains(err.Error(), "[4,6)") {
			t.Fatalf("error %q does not name the dead centroid range [4,6)", err)
		}
	}
	if deg, unav := sr.Health(); len(unav) != 1 || unav[0].Model != "a" || unav[0].Shard != 2 {
		t.Fatalf("Health: degraded=%v unavailable=%v, want exactly a/2 unavailable", deg, unav)
	}
	gotB, err := asn.AssignBatch("b", queriesB)
	if err != nil {
		t.Fatalf("model b (all shards live) errored: %v", err)
	}
	if n := diffAssign(gotB, wantB); n != 0 {
		t.Fatalf("model b: %d rows differ while an unrelated group is dead", n)
	}

	sr.Revive(2)
	gotA, err := asn.AssignBatch("a", queriesA)
	if err != nil {
		t.Fatalf("model a after revival: %v", err)
	}
	if n := diffAssign(gotA, wantA); n != 0 {
		t.Fatalf("model a after revival: %d rows differ", n)
	}
}

// TestChaosPublishRaceFailover races three writers at once under
// -race: a republisher alternating k (rebalances), a killer cycling
// machines through dead/alive (failovers + healing rebalances), and a
// reader hammering AssignBatch. With R=2 and one machine down at a
// time every group keeps a live replica, so no call may error and no
// answer may carry an out-of-range index.
func TestChaosPublishRaceFailover(t *testing.T) {
	sr := NewShardRegistryWith(Options{Machines: 4, Replicas: 2})
	if _, err := sr.Publish("m", seqCentroids(8, 4, 0)); err != nil {
		t.Fatal(err)
	}
	a := NewAssignerOf[float64](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer a.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := 5
			if i%2 == 0 {
				k = 8
			}
			if _, err := sr.Publish("m", seqCentroids(k, 4, float64(i))); err != nil {
				t.Errorf("republish %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for m := 0; ; m = (m + 1) % 4 {
			select {
			case <-stop:
				return
			default:
			}
			sr.Kill(m)
			time.Sleep(500 * time.Microsecond)
			sr.Revive(m)
		}
	}()

	queries := matrix.NewDense(16, 4)
	for i := range queries.Data {
		queries.Data[i] = float64(i % 7)
	}
	for r := 0; r < 200; r++ {
		as, err := a.AssignBatch("m", queries)
		if err != nil {
			t.Fatalf("assign round %d: %v", r, err)
		}
		for i, an := range as {
			if an.Cluster < 0 || an.Cluster >= 8 {
				t.Fatalf("round %d row %d: cluster %d out of range", r, i, an.Cluster)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestChaosDeterministicReplay runs the same seed twice and requires
// the executed schedule and every observed count to match: a failing
// chaos run must be replayable from its seed alone.
func TestChaosDeterministicReplay(t *testing.T) {
	cfg := ChaosConfig{
		Machines: 3, Replicas: 2, MaxDead: 1,
		Rounds: 10, PublishEvery: 4,
		Precision: kmeans.Precision64, Seed: *chaosSeed,
	}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("schedules diverge: %v vs %v", a.Events, b.Events)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if a.Kills != b.Kills || a.Revives != b.Revives || a.Rounds != b.Rounds ||
		a.Rows != b.Rows || a.Errors != b.Errors || a.Wrong != b.Wrong ||
		a.Versions != b.Versions {
		t.Fatalf("observations diverge:\n%+v\n%+v", a, b)
	}
}

// runChaosSmokeOf gives the Makefile's chaos-smoke target one compact
// entry point per precision (go test -run ChaosSmoke).
func runChaosSmokeOf[T blas.Float](t *testing.T, p kmeans.Precision) {
	t.Helper()
	stats, err := RunChaos(ChaosConfig{
		Machines: 4, Replicas: 2, MaxDead: 1,
		Rounds: 12, Precision: p, Seed: *chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 || stats.Wrong != 0 || stats.FinalErrors != 0 || stats.FinalWrong != 0 {
		t.Fatalf("smoke: errors=%d wrong=%d finalErrors=%d finalWrong=%d (seed %d)",
			stats.Errors, stats.Wrong, stats.FinalErrors, stats.FinalWrong, *chaosSeed)
	}
	t.Logf("chaos smoke %s: %d rounds, %d rows, %d kills, %d failovers in %v",
		p, stats.Rounds, stats.Rows, stats.Kills, stats.Failovers, stats.Elapsed)
}

func TestChaosSmoke(t *testing.T) {
	runChaosSmokeOf[float64](t, kmeans.Precision64)
	runChaosSmokeOf[float32](t, kmeans.Precision32)
}

// TestChaosSpreadBytesHalvedAtFloat32 pins the wire-format win: the
// same seeded schedule (same kills, same heals, same republishes) at
// float32 moves half the shard payload bytes of the float64 run,
// because publishes and healing re-spreads carry 4-byte elements end
// to end. The ratio window [1.9, 2.1] allows nothing but the element
// width to differ.
func TestChaosSpreadBytesHalvedAtFloat32(t *testing.T) {
	run := func(p kmeans.Precision) ChaosStats {
		t.Helper()
		stats, err := RunChaos(ChaosConfig{
			Machines: 5, Replicas: 2, MaxDead: 2,
			Heal: true, Settle: true,
			KillEvery: 2, DeadFor: 3, Rounds: 14, PublishEvery: 4,
			Precision: p, Seed: *chaosSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Wrong != 0 || stats.FinalWrong != 0 {
			t.Fatalf("%s: wrong=%d finalWrong=%d (seed %d)", p, stats.Wrong, stats.FinalWrong, *chaosSeed)
		}
		if stats.SpreadBytes == 0 {
			t.Fatalf("%s: no spread bytes counted despite publishes and healing", p)
		}
		return stats
	}
	s64 := run(kmeans.Precision64)
	s32 := run(kmeans.Precision32)
	if len(s64.Events) != len(s32.Events) {
		t.Fatalf("schedules diverge between precisions: %d vs %d events", len(s64.Events), len(s32.Events))
	}
	ratio := float64(s64.SpreadBytes) / float64(s32.SpreadBytes)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("spread bytes f64/f32 = %d/%d = %.3f, want ~2.0 (4-byte wire payloads)",
			s64.SpreadBytes, s32.SpreadBytes, ratio)
	}
	t.Logf("spread bytes: f64=%d f32=%d ratio=%.3f", s64.SpreadBytes, s32.SpreadBytes, ratio)
}

// TestChaosQuantizedParity serves the sharded path through the int8
// quantized scan + exact re-rank while the oracle stays exact, under
// kills, failover and republishes: every answered row must still be
// bit-identical to the exact single-node oracle.
func TestChaosQuantizedParity(t *testing.T) {
	stats, err := RunChaos(ChaosConfig{
		Machines: 3, Replicas: 2, MaxDead: 1,
		Rounds: 14, PublishEvery: 5,
		Precision: kmeans.Precision32, Quantize: "int8",
		Seed: *chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kills == 0 {
		t.Fatal("kill schedule never fired")
	}
	if stats.Errors != 0 {
		t.Errorf("%d client-visible errors (seed %d)", stats.Errors, *chaosSeed)
	}
	if stats.Wrong != 0 {
		t.Errorf("%d quantized rows differ from the exact oracle (seed %d)", stats.Wrong, *chaosSeed)
	}
	if stats.FinalErrors != 0 || stats.FinalWrong != 0 {
		t.Errorf("post-recovery: %d errors, %d wrong rows (seed %d)",
			stats.FinalErrors, stats.FinalWrong, *chaosSeed)
	}
}
