package shardserve

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"knor/internal/blas"
	"knor/internal/cluster"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/metrics"
	"knor/internal/serve"
	"knor/internal/telemetry"
)

// ErrShardUnavailable wraps fan-out errors where every replica of some
// shard group is dead: the global argmin cannot be computed because a
// centroid range answered nowhere (its rows could hold the true
// nearest centroid). Errors carry the group's [lo,hi) centroid range,
// confining the blast radius to that range's models; the HTTP layer
// maps the error to 503. Recovery of any one replica restores exact
// answers.
var ErrShardUnavailable = errors.New("shardserve: shard group unavailable")

// skewRetries bounds how often a fan-out is retried when a publish
// lands mid-flight and shard answers straddle two versions; retry i
// backs off i·skewBackoff first, so a burst of publishes can drain.
// Publishes are rare relative to queries, so this is ample headroom —
// but a publisher sustaining less than a fan-out round trip between
// publishes indefinitely can still starve reads; consistent reads
// under that regime need publish-side pacing, not more retries.
const (
	skewRetries = 16
	skewBackoff = 100 * time.Microsecond
)

// AssignerOf is the fan-out assignment router: one serve.BatcherOf per
// machine over that machine's local registry, queries fanned out to
// every shard group holding the model and folded into the global
// argmin as the groups answer (cluster.CombineMin — associative and
// commutative, so arrival order never changes the result).
// Bit-identical to the single-node serve.BatcherOf for any machine
// count: shards report raw distances, the cancellation clamp is
// applied once after the global min, and ties break on the lowest
// global centroid index exactly as the single-node ascending scan
// does.
//
// Failover: every replica of a shard holds the same centroid rows at
// the same version, so a shard group's answer is replica-independent —
// the goroutine serving group s walks the plan's replica list, skips
// machines whose kill switch is down, and retries the next replica on
// error. Only a group with no answering replica fails the fan-out
// (ErrShardUnavailable).
type AssignerOf[T blas.Float] struct {
	sr   *ShardRegistry
	bats []*serve.BatcherOf[T]
	opts serve.BatcherOptions
	lat  *metrics.Latency

	mu       sync.Mutex
	inflight map[string]int

	requests  metrics.Counter
	rows      metrics.Counter
	rejected  metrics.Counter
	failovers metrics.Counter
}

// NewAssignerOf starts the sharded assignment path at element type T.
// opts applies per shard batcher (MaxBatch, MaxWait, Threads);
// ModelQuota is enforced here at the fan-out edge — a rejected request
// must burn zero GEMM time on ANY shard — so the per-shard batchers
// run unlimited, and RawSqDist is forced on for the shards (the
// combiner clamps). The shard batchers also run Internal: the edge
// instruments (request counts, latency, in-flight) are reported here,
// once per request, never per shard. Close stops every shard batcher.
func NewAssignerOf[T blas.Float](sr *ShardRegistry, opts serve.BatcherOptions) *AssignerOf[T] {
	shardOpts := opts
	shardOpts.RawSqDist = true
	shardOpts.ModelQuota = 0
	shardOpts.Internal = true
	shardOpts.Tracer = nil
	a := &AssignerOf[T]{
		sr:       sr,
		opts:     opts,
		lat:      metrics.NewLatency(1).Mirror(telRequestSeconds),
		inflight: map[string]int{},
	}
	a.bats = make([]*serve.BatcherOf[T], sr.Machines())
	for i := range a.bats {
		a.bats[i] = serve.NewBatcherOf[T](sr.Registry(i), shardOpts)
	}
	return a
}

// NewAssigner builds the sharded assignment path at the requested
// precision, behind the precision-independent serve.Assigner interface
// knorserve programs against.
func NewAssigner(sr *ShardRegistry, opts serve.BatcherOptions, p kmeans.Precision) serve.Assigner {
	if p == kmeans.Precision32 {
		return NewAssignerOf[float32](sr, opts)
	}
	return NewAssignerOf[float64](sr, opts)
}

// shardAnswer is one shard's contribution to a fan-out.
type shardAnswer struct {
	shard   int
	assigns []serve.Assignment
	err     error
}

// Assign answers one query row (blocking until its fan-out completes).
func (a *AssignerOf[T]) Assign(model string, row []T) (serve.Assignment, error) {
	m := matrix.New[T](1, len(row))
	copy(m.Data, row)
	as, err := a.AssignBatch(model, m)
	if err != nil {
		return serve.Assignment{}, err
	}
	return as[0], nil
}

// AssignBatch answers every row of rows against the named model by
// fanning the batch out to the model's shards. The rows matrix must
// not be mutated until the call returns.
func (a *AssignerOf[T]) AssignBatch(model string, rows *matrix.Mat[T]) ([]serve.Assignment, error) {
	if rows.Rows() == 0 {
		return nil, nil
	}
	a.mu.Lock()
	if q := a.opts.ModelQuota; q > 0 && a.inflight[model] >= q {
		a.mu.Unlock()
		a.rejected.Inc()
		telRejected.Inc()
		return nil, fmt.Errorf("%w: model %q has %d requests in flight", serve.ErrOverloaded, model, q)
	}
	a.inflight[model]++
	a.mu.Unlock()
	telInflight.With(model).Inc()
	defer func() {
		telInflight.With(model).Dec()
		a.mu.Lock()
		if a.inflight[model]--; a.inflight[model] == 0 {
			delete(a.inflight, model)
		}
		a.mu.Unlock()
	}()
	tr := a.opts.Tracer.Sample()
	start := time.Now()
	var lastErr error
	for try := 0; try < skewRetries; try++ {
		if try > 0 {
			telSkewRetries.Inc()
			time.Sleep(time.Duration(try) * skewBackoff)
		}
		out, retry, err := a.fanout(model, rows, tr)
		if err != nil {
			return nil, err
		}
		if !retry {
			done := time.Now()
			tr.Span("reply", done, done)
			a.opts.Tracer.Done(tr)
			a.lat.Observe(done.Sub(start).Seconds())
			a.requests.Inc()
			a.rows.Add(uint64(rows.Rows()))
			telRequests.Inc()
			telRows.Add(uint64(rows.Rows()))
			return out, nil
		}
		lastErr = fmt.Errorf("shardserve: model %q: shard versions skewed by concurrent publish", model)
	}
	return nil, lastErr
}

// fanout runs one fan-out attempt: every shard group answers against
// its latest snapshot (failing over across its replicas), answers are
// folded into the running global min as they arrive (reduction
// overlapping the slower groups' GEMMs), and a version check detects a
// publish landing mid-flight — the caller retries, since the plan and
// the shard snapshots must describe the same version for the
// local→global index mapping to make sense.
func (a *AssignerOf[T]) fanout(model string, rows *matrix.Mat[T], tr *telemetry.Trace) (out []serve.Assignment, retry bool, err error) {
	plan, ok := a.sr.GetPlan(model)
	if !ok {
		return nil, false, fmt.Errorf("shardserve: unknown model %q", model)
	}
	shards := len(plan.Offsets) - 1
	n := rows.Rows()

	dispatch := time.Now()
	answers := make(chan shardAnswer, shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			as, err := a.answerShard(model, s, plan, rows, tr)
			telShardSeconds.With(strconv.Itoa(s)).Observe(time.Since(dispatch).Seconds())
			answers <- shardAnswer{shard: s, assigns: as, err: err}
		}(s)
	}

	pairs := make([]cluster.MinPair, n)
	for i := range pairs {
		pairs[i].Index = -1
	}
	src := make([]cluster.MinPair, n)
	var reduceStart, reduceEnd time.Time
	var reduceTotal time.Duration
	for done := 0; done < shards; done++ {
		ans := <-answers
		tr.Span(fmt.Sprintf("shard_%d", ans.shard), dispatch, time.Now())
		if err != nil || retry {
			continue // drain remaining shards before returning
		}
		if ans.err != nil {
			err = ans.err
			continue
		}
		lo := plan.Offsets[ans.shard]
		for i, as := range ans.assigns {
			if as.Version != plan.Version {
				retry = true
				break
			}
			src[i] = cluster.MinPair{Index: int32(lo) + as.Cluster, Dist: as.SqDist}
		}
		if retry {
			continue
		}
		cs := time.Now()
		cluster.CombineMin(pairs, src)
		ce := time.Now()
		if reduceStart.IsZero() {
			reduceStart = cs
		}
		reduceEnd = ce
		reduceTotal += ce.Sub(cs)
	}
	if !reduceEnd.IsZero() {
		telMinReduceSeconds.Observe(reduceTotal.Seconds())
		tr.Span("min_allreduce", reduceStart, reduceEnd)
	}
	if err != nil {
		// A shard error can itself be plan skew: a republish that
		// shrank k, or a rebalance after a membership change, drops
		// shard copies from machines the old plan still points at. If
		// the plan moved while we were in flight (version or gen),
		// retry with the new one instead of surfacing the transient
		// error.
		if p, ok := a.sr.GetPlan(model); ok && (p.Version != plan.Version || p.Gen != plan.Gen) {
			return nil, true, nil
		}
		return nil, false, err
	}
	if retry {
		return nil, true, nil
	}
	out = make([]serve.Assignment, n)
	for i, p := range pairs {
		d := p.Dist
		if d < 0 { // numerical cancellation, clamped once globally
			d = 0
		}
		out[i] = serve.Assignment{Cluster: p.Index, SqDist: d, Version: plan.Version}
	}
	return out, false, nil
}

// answerShard answers shard group s by walking its replica list:
// machines with the kill switch down are skipped, an erroring replica
// fails over to the next, and every pass past the preferred replica
// counts as a failover. All replicas hold identical centroid rows at
// identical versions, so whichever answers first is THE answer. Only a
// group with no answering replica errors, carrying its centroid range.
func (a *AssignerOf[T]) answerShard(model string, s int, plan Plan, rows *matrix.Mat[T], tr *telemetry.Trace) ([]serve.Assignment, error) {
	key := ShardKey(model, s)
	var lastErr error
	for i, m := range plan.Replicas[s] {
		if i > 0 {
			a.failovers.Inc()
			telFailovers.With(strconv.Itoa(s)).Inc()
			telemetry.Log("shardserve", telemetry.SevWarn, "failover",
				telemetry.F("model", model), telemetry.F("shard", s), telemetry.F("to_machine", m))
		}
		if a.sr.MachineDown(m) {
			lastErr = fmt.Errorf("machine %d down", m)
			continue
		}
		var as []serve.Assignment
		var err error
		switch {
		case a.sr.remote != nil && !a.sr.remote.LocalMachine(m):
			// Cluster mode: machine m is a peer process — the query
			// rows' exact bits ride over the transport and the peer's
			// batcher answers from its pushed shard snapshot. An RPC
			// error (dead peer, timeout) fails over like any replica
			// error. A sampled trace rides along and comes back with the
			// worker's decode/GEMM/encode spans stitched in.
			as, err = remoteAssignBatch(a.sr.remote, m, key, rows, tr)
		case s == 0:
			// A sampled trace rides through group 0's batcher so the
			// dump shows the enqueue/coalesce/GEMM stages in-shard.
			as, err = a.bats[m].AssignBatchTraced(key, rows, tr)
		default:
			as, err = a.bats[m].AssignBatch(key, rows)
		}
		if err == nil {
			return as, nil
		}
		lastErr = err
	}
	telUnavailable.Inc()
	telemetry.Log("shardserve", telemetry.SevError, "shard unavailable",
		telemetry.F("model", model), telemetry.F("shard", s), telemetry.F("last_err", lastErr))
	return nil, fmt.Errorf("%w: model %q shard %d (centroid rows [%d,%d)): %v",
		ErrShardUnavailable, model, s, plan.Offsets[s], plan.Offsets[s+1], lastErr)
}

// Failovers reports how many times a fan-out passed over a shard
// group's preferred replica (dead or erring) to a backup.
func (a *AssignerOf[T]) Failovers() uint64 { return a.failovers.Load() }

// AssignRows answers float64 query rows regardless of the assigner's
// element type, converting once when T is narrower — the
// precision-independent entry the HTTP server uses.
func (a *AssignerOf[T]) AssignRows(model string, rows *matrix.Dense) ([]serve.Assignment, error) {
	if m, ok := any(rows).(*matrix.Mat[T]); ok {
		return a.AssignBatch(model, m)
	}
	return a.AssignBatch(model, matrix.Convert[T](rows))
}

// Stats aggregates the fan-out edge's counters and latency quantiles
// with the shard batchers' flush counts. Every request is replicated
// to all shards, so Flushes and Queued report the busiest shard (the
// logical flush/queue count), not the M-inflated sum — avg_batch and
// queue-depth readings stay comparable with the single-node batcher.
func (a *AssignerOf[T]) Stats() serve.BatcherStats {
	st := serve.BatcherStats{
		Requests: a.requests.Load(),
		Rows:     a.rows.Load(),
		Rejected: a.rejected.Load(),
	}
	for _, b := range a.bats {
		bst := b.Stats()
		if bst.Flushes > st.Flushes {
			st.Flushes = bst.Flushes
		}
		if bst.Queued > st.Queued {
			st.Queued = bst.Queued
		}
	}
	st.P50 = a.lat.Quantile(0.50)
	st.P95 = a.lat.Quantile(0.95)
	st.P99 = a.lat.Quantile(0.99)
	st.Mean = a.lat.Mean()
	return st
}

// InFlight snapshots the per-model in-flight request counts at the
// fan-out edge (each distributed request counted once, not per shard).
func (a *AssignerOf[T]) InFlight() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.inflight))
	for m, n := range a.inflight {
		out[m] = n
	}
	return out
}

// Flush synchronously answers everything queued on every shard.
func (a *AssignerOf[T]) Flush() {
	for _, b := range a.bats {
		b.Flush()
	}
}

// Close rejects new requests and stops every shard batcher.
func (a *AssignerOf[T]) Close() {
	var wg sync.WaitGroup
	for _, b := range a.bats {
		wg.Add(1)
		go func(b *serve.BatcherOf[T]) {
			defer wg.Done()
			b.Close()
		}(b)
	}
	wg.Wait()
}

var _ serve.Assigner = (*AssignerOf[float64])(nil)
