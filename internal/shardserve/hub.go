package shardserve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knor/internal/netcluster"
	"knor/internal/serve"
	"knor/internal/telemetry"
	"knor/internal/topology"
)

// Hub is the coordinator side of a real (multi-process) serving
// cluster: it owns the netcluster transport's coordinator rank, pushes
// shard placements to worker peers (the Remote implementation a
// ShardRegistry drives), answers fan-out RPCs by matching
// FrameAssignResp sequence numbers to in-flight FrameAssignReq calls,
// and feeds the membership layer — worker FramePulse heartbeats route
// into topology.Pulse, a local ticker self-pulses machine 0 and sweeps,
// and a peer whose connection drops is marked dead immediately (the
// fast path; the pulse timeout covers hangs that keep the socket open).
//
// Machine index m is transport rank m: machine 0 is the coordinator
// itself (served in-process), machines 1..M-1 are worker processes
// running ServePeer.
type Hub struct {
	tr   netcluster.Transport
	topo *topology.Topology
	sr   *ShardRegistry

	// rpcTimeout bounds one assign RPC; a peer that neither answers nor
	// drops its connection within it counts as failed and the fan-out
	// fails over to the next replica.
	rpcTimeout time.Duration

	seq atomic.Uint32

	mu      sync.Mutex
	pending map[uint64]chan *netcluster.Frame

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewHub wraps the coordinator rank of a bootstrapped transport.
// rpcTimeout <= 0 defaults to 10s. Call Start once the topology and
// shard registry exist, and Close before closing the transport.
func NewHub(tr netcluster.Transport, rpcTimeout time.Duration) *Hub {
	if tr.Rank() != 0 {
		panic("shardserve: hub must run on the coordinator rank")
	}
	if rpcTimeout <= 0 {
		rpcTimeout = 10 * time.Second
	}
	return &Hub{
		tr:         tr,
		rpcTimeout: rpcTimeout,
		pending:    map[uint64]chan *netcluster.Frame{},
		stop:       make(chan struct{}),
	}
}

// Start attaches the membership layer and begins serving: one demux
// goroutine per worker peer (routing pulses and RPC responses) and the
// coordinator's own pulse/sweep clock. sr's kill switch gates pulses,
// so an API "kill" silences a machine exactly like a dead process.
func (h *Hub) Start(topo *topology.Topology, sr *ShardRegistry) {
	h.topo = topo
	h.sr = sr
	for r := 1; r < h.tr.Size(); r++ {
		h.wg.Add(1)
		go h.demux(r)
	}
	h.wg.Add(1)
	go h.clock()
}

// clock self-pulses the coordinator machine and sweeps silent machines
// dead, at a quarter of the pulse timeout (the same cadence
// topology.StartClock uses).
func (h *Hub) clock() {
	defer h.wg.Done()
	tick := time.NewTicker(topology.DefaultPulseTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			if !h.sr.MachineDown(0) {
				h.topo.Pulse(0, now)
			}
			h.topo.Sweep(now)
		case <-h.stop:
			return
		}
	}
}

// demux drains peer r's frames: pulses feed the topology (unless the
// machine's kill switch is down — a "killed" machine must go silent),
// assign responses complete their pending RPC. A receive error is the
// peer's death: every RPC in flight to it fails immediately and the
// membership layer is told without waiting out the pulse timeout.
func (h *Hub) demux(r int) {
	defer h.wg.Done()
	for {
		f, err := h.tr.Recv(r)
		if err != nil {
			h.failPeer(r)
			select {
			case <-h.stop: // shutdown, not a death
			default:
				telemetry.Log("netcluster", telemetry.SevWarn, "peer connection lost",
					telemetry.F("rank", r))
				h.topo.MarkDead(r)
			}
			return
		}
		switch f.Type {
		case netcluster.FramePulse:
			if !h.sr.MachineDown(r) {
				h.topo.Pulse(r, time.Now())
			}
		case netcluster.FrameAssignResp, netcluster.FrameMetrics:
			h.mu.Lock()
			ch, ok := h.pending[rpcKey(r, f.Seq)]
			if ok {
				delete(h.pending, rpcKey(r, f.Seq))
			}
			h.mu.Unlock()
			if ok {
				ch <- f
			}
		}
	}
}

// failPeer aborts every pending RPC addressed to peer r.
func (h *Hub) failPeer(r int) {
	h.mu.Lock()
	for k, ch := range h.pending {
		if int(k>>32) == r {
			delete(h.pending, k)
			close(ch)
		}
	}
	h.mu.Unlock()
}

func rpcKey(peer int, seq uint32) uint64 {
	return uint64(peer)<<32 | uint64(seq)
}

// call runs one RPC round trip to peer m: register the pending slot,
// send, wait for the matching response (or peer death, timeout,
// shutdown).
func (h *Hub) call(m int, f *netcluster.Frame) (*netcluster.Frame, error) {
	return h.callTimeout(m, f, h.rpcTimeout)
}

func (h *Hub) callTimeout(m int, f *netcluster.Frame, timeout time.Duration) (*netcluster.Frame, error) {
	start := time.Now()
	ch := make(chan *netcluster.Frame, 1)
	key := rpcKey(m, f.Seq)
	h.mu.Lock()
	h.pending[key] = ch
	h.mu.Unlock()
	drop := func() {
		h.mu.Lock()
		delete(h.pending, key)
		h.mu.Unlock()
	}
	if err := h.tr.Send(m, f); err != nil {
		drop()
		return nil, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("shardserve: peer %d died mid-call", m)
		}
		netcluster.ObserveRoundtrip(time.Since(start).Seconds())
		return resp, nil
	case <-time.After(timeout):
		drop()
		return nil, fmt.Errorf("shardserve: peer %d: rpc timeout after %s", m, timeout)
	case <-h.stop:
		drop()
		return nil, fmt.Errorf("shardserve: hub closed")
	}
}

// LocalMachine implements Remote: machine 0 is the coordinator.
func (h *Hub) LocalMachine(m int) bool { return m == 0 }

// AssignRemote implements Remote: one FrameAssignReq/FrameAssignResp
// round trip to machine m's process. A sampled trace's context rides
// as the frame's trace extension; the peer answers with its
// worker-local spans (decode → shard GEMM → encode) as offsets from
// its request receipt, and they are stitched into tr here anchored at
// the local dispatch time — both sides measure only their own
// monotonic clocks, so cross-machine wall-clock skew can never produce
// a negative or misplaced span.
func (h *Hub) AssignRemote(m int, key string, elem byte, nrows, d int, rows []byte, tr *telemetry.Trace) ([]serve.Assignment, error) {
	f := &netcluster.Frame{
		Type: netcluster.FrameAssignReq, Elem: elem, Seq: h.seq.Add(1),
		Payload: encodeAssignReq(key, nrows, d, rows),
	}
	var dispatch time.Time
	if ctx := tr.Context(); ctx.Sampled {
		f.Trace = &netcluster.TraceExt{TraceID: ctx.TraceID, Parent: ctx.Parent, Sampled: true}
		dispatch = time.Now()
	}
	resp, err := h.call(m, f)
	if err != nil {
		return nil, err
	}
	if tr != nil && resp.Trace != nil {
		base := dispatch.Sub(tr.Begin)
		for _, s := range resp.Trace.Spans {
			tr.SpanAt(fmt.Sprintf("rank%d/%s", m, s.Name), base+s.Start, s.Dur)
		}
	}
	return decodeAssignResp(resp.Payload)
}

// FetchMetrics pulls machine m's telemetry registry snapshot over one
// FrameMetrics round trip. The timeout is capped well below the assign
// RPC timeout so a hung worker degrades a federated scrape to a stale
// marker instead of stalling it.
func (h *Hub) FetchMetrics(m int) ([]telemetry.SnapshotFamily, error) {
	timeout := h.rpcTimeout
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	resp, err := h.callTimeout(m, &netcluster.Frame{
		Type: netcluster.FrameMetrics, Seq: h.seq.Add(1),
	}, timeout)
	if err != nil {
		return nil, err
	}
	return netcluster.DecodeSnapshot(resp.Payload)
}

// RestoreRemote implements Remote: push one shard snapshot to machine
// m's process (fire and forget — the peer installs it in arrival
// order, and the fan-out's version check catches any lag).
func (h *Hub) RestoreRemote(m int, key string, version, node int, elem byte, krows, d int, payload []byte) error {
	return h.tr.Send(m, &netcluster.Frame{
		Type: netcluster.FrameShard, Elem: elem,
		Payload: encodeShard(key, version, node, krows, d, payload),
	})
}

// DropRemote implements Remote: retire a shard copy from machine m.
func (h *Hub) DropRemote(m int, key string) error {
	return h.tr.Send(m, &netcluster.Frame{
		Type:    netcluster.FrameShardDrop,
		Payload: netcluster.AppendString(nil, key),
	})
}

// Close stops the clock, aborts in-flight RPCs, and closes the
// transport (which unblocks the demux goroutines' Recv calls).
func (h *Hub) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.tr.Close()
	h.wg.Wait()
}

var _ Remote = (*Hub)(nil)
