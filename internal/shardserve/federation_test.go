package shardserve

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"knor/internal/serve"
	"knor/internal/telemetry"
)

// Cluster-wide observability over the real TCP cluster: the federated
// metrics pull must survive a worker killed mid-scrape (stale marker,
// no hang), and a sampled /assign must stitch worker-local spans into
// one coordinator timeline with skew-safe offsets.

// TestClusterMetricsFederation: a healthy 3-rank cluster answers a
// federated pull with one snapshot per rank, none stale; killing a
// worker degrades its rank to a stale marker without stalling the
// scrape past the capped RPC timeout.
func TestClusterMetricsFederation(t *testing.T) {
	cents, queries := parityCase(13, 7, 48, 99)
	c := startServeCluster(t, 3, 2)
	if _, err := c.reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	assigner := NewAssignerOf[float64](c.sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer assigner.Close()
	if _, err := assigner.AssignBatch("m", queries); err != nil {
		t.Fatal(err)
	}

	snaps := FederateMetrics(c.hub, c.sr, telemetry.Default)
	if len(snaps) != 3 {
		t.Fatalf("federated %d ranks, want 3", len(snaps))
	}
	for _, s := range snaps {
		if s.Stale {
			t.Fatalf("rank %d stale in a healthy cluster", s.Rank)
		}
		if len(s.Families) == 0 {
			t.Fatalf("rank %d answered an empty snapshot", s.Rank)
		}
	}

	var buf strings.Builder
	if err := telemetry.WriteFederatedPrometheus(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`knor_federation_stale{rank="1"} 0`,
		`knor_federation_stale{rank="2"} 0`,
		`rank="1"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("federated exposition missing %q:\n%s", want, text)
		}
	}

	// Chaos: kill worker rank 2's process mid-life. The next scrape must
	// come back within the capped RPC timeout with rank 2 marked stale —
	// never an error, never a hang.
	c.ts[2].Close()
	start := time.Now()
	snaps = FederateMetrics(c.hub, c.sr, telemetry.Default)
	if el := time.Since(start); el > 4*time.Second {
		t.Fatalf("scrape with a dead worker took %s; must degrade, not hang", el)
	}
	if len(snaps) != 3 {
		t.Fatalf("federated %d ranks after kill, want 3", len(snaps))
	}
	if !snaps[2].Stale {
		t.Fatal("killed worker's rank not marked stale")
	}
	if snaps[1].Stale {
		t.Fatal("surviving worker marked stale")
	}
	buf.Reset()
	if err := telemetry.WriteFederatedPrometheus(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `knor_federation_stale{rank="2"} 1`) {
		t.Fatalf("exposition missing stale marker for rank 2:\n%s", buf.String())
	}
}

// TestClusterStitchedTrace: with every request sampled, an /assign that
// fans out to worker processes must come back with the workers' local
// spans (decode → shard_gemm → encode) stitched into the coordinator's
// trace under rank<m>/ names, every offset and duration non-negative
// (the skew-safety contract), alongside the coordinator's own fan-out
// spans.
func TestClusterStitchedTrace(t *testing.T) {
	cents, queries := parityCase(13, 7, 48, 99)
	c := startServeCluster(t, 3, 2)
	if _, err := c.reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(1, 8)
	assigner := NewAssignerOf[float64](c.sr, serve.BatcherOptions{
		MaxWait: time.Microsecond, Tracer: tracer,
	})
	defer assigner.Close()
	if _, err := assigner.AssignBatch("m", queries); err != nil {
		t.Fatal(err)
	}

	traces := tracer.Traces()
	if len(traces) == 0 {
		t.Fatal("no completed trace with every=1 sampling")
	}
	stages := traces[0].Stages()

	// Which machines served shards remotely? The plan's preference order
	// picks the first live replica, and every machine is live here.
	plan, ok := c.sr.GetPlan("m")
	if !ok {
		t.Fatal("no plan for published model")
	}
	remote := map[int]bool{}
	for _, reps := range plan.Replicas {
		if len(reps) > 0 && reps[0] != 0 {
			remote[reps[0]] = true
		}
	}
	if len(remote) == 0 {
		t.Fatalf("placement left no shard on a worker; plan %+v", plan.Replicas)
	}
	for m := range remote {
		for _, span := range []string{"decode", "shard_gemm", "encode"} {
			name := fmt.Sprintf("rank%d/%s", m, span)
			found := false
			for _, s := range stages {
				if s.Name == name {
					found = true
					if s.Start < 0 || s.Dur < 0 {
						t.Fatalf("stitched span %s has negative geometry: start=%s dur=%s",
							name, s.Start, s.Dur)
					}
				}
			}
			if !found {
				t.Fatalf("trace missing stitched span %q; have %+v", name, stages)
			}
		}
	}
	// The coordinator's own fan-out spans share the timeline.
	for _, s := range stages {
		if s.Name == "min_allreduce" {
			return
		}
	}
	t.Fatalf("trace missing coordinator min_allreduce span; have %+v", stages)
}
