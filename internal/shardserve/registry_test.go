package shardserve

import (
	"fmt"
	"testing"

	"knor/internal/matrix"
	"knor/internal/serve"
)

// seqCentroids builds a k×d matrix whose row i is filled with
// distinguishable values, so shard contents can be checked by value.
func seqCentroids(k, d int, base float64) *matrix.Dense {
	c := matrix.NewDense(k, d)
	for i := 0; i < k; i++ {
		for j := 0; j < d; j++ {
			c.Set(i, j, base+float64(i)+float64(j)/100)
		}
	}
	return c
}

func TestShardRegistrySplit(t *testing.T) {
	sr := NewShardRegistry(3)
	cents := seqCentroids(7, 4, 0)
	v, err := sr.Publish("m", cents)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first publish version %d, want 1", v)
	}
	version, offsets, ok := sr.Split("m")
	if !ok || version != 1 {
		t.Fatalf("Split: version=%d ok=%v", version, ok)
	}
	// 7 rows over 3 machines: 3/2/2, contiguous.
	want := []int{0, 3, 5, 7}
	if len(offsets) != len(want) {
		t.Fatalf("offsets %v, want %v", offsets, want)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Fatalf("offsets %v, want %v", offsets, want)
		}
	}
	// Every shard registry holds exactly its rows, same version. With
	// R=1 over a fully-live cluster, shard i lands on machine i, keyed
	// by ShardKey so one machine could hold several shards.
	for i := 0; i < 3; i++ {
		m, ok := sr.Registry(i).Get(ShardKey("m", i))
		if !ok {
			t.Fatalf("machine %d has no shard", i)
		}
		if m.Version != 1 {
			t.Fatalf("machine %d shard version %d", i, m.Version)
		}
		lo, hi := offsets[i], offsets[i+1]
		if m.K() != hi-lo {
			t.Fatalf("machine %d shard has %d rows, want %d", i, m.K(), hi-lo)
		}
		for r := 0; r < m.K(); r++ {
			if got, want := m.Centroids.At(r, 0), cents.At(lo+r, 0); got != want {
				t.Fatalf("machine %d row %d = %g, want global row %d = %g", i, r, got, lo+r, want)
			}
		}
	}
}

// TestShardRegistryRebalance publishes a shrinking k: the split must
// re-partition and machines beyond the new shard count must drop the
// model so no stale snapshot can answer.
func TestShardRegistryRebalance(t *testing.T) {
	sr := NewShardRegistry(4)
	if _, err := sr.Publish("m", seqCentroids(8, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Publish("m", seqCentroids(2, 3, 100)); err != nil {
		t.Fatal(err)
	}
	version, offsets, _ := sr.Split("m")
	if version != 2 || len(offsets) != 3 {
		t.Fatalf("after rebalance: version=%d offsets=%v", version, offsets)
	}
	for i := 0; i < 2; i++ {
		m, ok := sr.Registry(i).Get(ShardKey("m", i))
		if !ok || m.Version != 2 || m.K() != 1 {
			t.Fatalf("machine %d: ok=%v", i, ok)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok := sr.Registry(i).Get(ShardKey("m", i)); ok {
			t.Fatalf("machine %d still holds a stale shard after k shrank", i)
		}
	}
	// Growing again re-occupies the tail machines.
	if _, err := sr.Publish("m", seqCentroids(9, 3, 200)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m, ok := sr.Registry(i).Get(ShardKey("m", i))
		if !ok || m.Version != 3 {
			t.Fatalf("machine %d after regrow: ok=%v", i, ok)
		}
	}
}

// TestShardRegistryAttach mirrors a primary registry: existing models,
// future publishes (version numbers preserved), across a k change.
func TestShardRegistryAttach(t *testing.T) {
	primary := serve.NewRegistry(4)
	if _, err := primary.Publish("a", seqCentroids(5, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Publish("a", seqCentroids(5, 3, 10)); err != nil {
		t.Fatal(err)
	}

	sr := NewShardRegistry(2)
	if err := sr.Attach(primary); err != nil {
		t.Fatal(err)
	}
	version, _, ok := sr.Split("a")
	if !ok || version != 2 {
		t.Fatalf("mirrored version %d ok=%v, want 2", version, ok)
	}

	// A publish after Attach propagates with the primary's version.
	if _, err := primary.Publish("a", seqCentroids(5, 3, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Publish("b", seqCentroids(1, 3, 30)); err != nil {
		t.Fatal(err)
	}
	if version, _, _ = sr.Split("a"); version != 3 {
		t.Fatalf("post-attach publish not mirrored: version %d", version)
	}
	if version, offsets, ok := sr.Split("b"); !ok || version != 1 || len(offsets) != 2 {
		t.Fatalf("model b: version=%d offsets=%v ok=%v", version, offsets, ok)
	}
	m0, _ := sr.Registry(0).Get(ShardKey("a", 0))
	if m0.Version != 3 {
		t.Fatalf("shard 0 of a at version %d, want 3", m0.Version)
	}
	m0b, ok := sr.Registry(0).Get(ShardKey("b", 0))
	if !ok || m0b.K() != 1 {
		t.Fatalf("model b shard: ok=%v", ok)
	}
	if _, ok := sr.Registry(1).Get(ShardKey("b", 0)); ok {
		t.Fatal("k=1 model must occupy only machine 0")
	}
}

func TestShardRegistryDrop(t *testing.T) {
	sr := NewShardRegistry(2)
	if _, err := sr.Publish("m", seqCentroids(4, 2, 0)); err != nil {
		t.Fatal(err)
	}
	sr.Drop("m")
	if _, _, ok := sr.Split("m"); ok {
		t.Fatal("split survived Drop")
	}
	for i := 0; i < 2; i++ {
		if _, ok := sr.Registry(i).Get(ShardKey("m", i)); ok {
			t.Fatalf("machine %d still holds dropped model", i)
		}
	}
}

func TestShardRegistryErrors(t *testing.T) {
	sr := NewShardRegistry(2)
	if _, err := sr.Publish("m", nil); err == nil {
		t.Error("nil centroids accepted")
	}
	if _, err := sr.Publish("m", matrix.NewDense(0, 3)); err == nil {
		t.Error("empty centroids accepted")
	}
	if _, err := sr.Publish("m", seqCentroids(4, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Publish("m", seqCentroids(4, 3, 0)); err == nil {
		t.Error("dims change accepted")
	}
	// The failed publish must not have bumped the version.
	if v, _, _ := sr.Split("m"); v != 1 {
		t.Errorf("version after failed publish: %d, want 1", v)
	}
}

func ExampleShardRegistry() {
	sr := NewShardRegistry(3)
	cents := seqCentroids(10, 4, 0)
	v, _ := sr.Publish("users", cents)
	_, offsets, _ := sr.Split("users")
	fmt.Println("version", v, "offsets", offsets)
	// Output:
	// version 1 offsets [0 4 7 10]
}
