package shardserve

import (
	"fmt"
	"sync"

	"knor/internal/dist"
	"knor/internal/matrix"
	"knor/internal/serve"
)

// ShardRegistry keeps M per-machine serve.Registry instances in
// lockstep: every published model is split into contiguous centroid-row
// shards (dist.Partition over the k rows) and shard i is restored into
// machine i's registry under the same name and the SAME version number.
// Each shard registry is an ordinary copy-on-write serve.Registry, so
// per-machine batchers get the single-node snapshot guarantees for
// free; the split table maps shard-local argmins back to global
// centroid indices.
//
// A model with fewer centroids than machines occupies only the first k
// machines; a publish that changes k rebalances the split and drops the
// name from machines that no longer hold a shard.
type ShardRegistry struct {
	machines int
	regs     []*serve.Registry

	mu     sync.RWMutex
	splits map[string]split
}

// split records how one model's current version is laid out: shard i
// holds global centroid rows [Offsets[i], Offsets[i+1]).
type split struct {
	version int
	offsets []int
}

// NewShardRegistry builds an empty sharded registry over the given
// machine count.
func NewShardRegistry(machines int) *ShardRegistry {
	if machines < 1 {
		panic("shardserve: need at least one machine")
	}
	sr := &ShardRegistry{machines: machines, splits: map[string]split{}}
	sr.regs = make([]*serve.Registry, machines)
	for i := range sr.regs {
		sr.regs[i] = serve.NewRegistry(1)
	}
	return sr
}

// Machines returns the machine count.
func (sr *ShardRegistry) Machines() int { return sr.machines }

// Registry returns machine i's shard registry (for wiring per-machine
// batchers).
func (sr *ShardRegistry) Registry(i int) *serve.Registry { return sr.regs[i] }

// Split returns the named model's current version and shard offsets
// (len = shards+1; shard i serves global centroid rows
// [offsets[i], offsets[i+1])).
func (sr *ShardRegistry) Split(name string) (version int, offsets []int, ok bool) {
	sr.mu.RLock()
	defer sr.mu.RUnlock()
	sp, ok := sr.splits[name]
	return sp.version, sp.offsets, ok
}

// Publish splits centroids across the machines as the next version of
// the named model. The shard registries clone their slices
// (copy-on-write), so the caller keeps ownership of centroids.
func (sr *ShardRegistry) Publish(name string, centroids *matrix.Dense) (version int, err error) {
	if centroids == nil || centroids.Rows() == 0 {
		return 0, fmt.Errorf("shardserve: model %q published with no centroids", name)
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	v := sr.splits[name].version + 1
	if err := sr.restoreLocked(name, v, 0, centroids); err != nil {
		return 0, err
	}
	return v, nil
}

// Attach mirrors primary into the shard registries — current models
// first, then every future publish via the registry's publish hook —
// preserving primary's version numbers so shard snapshots answer with
// the same Version the primary reports. The hook runs under primary's
// lock (publish order); stale restores racing the initial mirror are
// skipped.
//
// The mirror runs synchronously inside the hook, a deliberate
// trade-off: re-sharding under the primary's lock costs one extra
// centroid copy + norms pass (the same order of work Publish itself
// does before locking), and in exchange the shard registries can
// never lag the primary by more than a fan-out's version-skew retry.
// An async mirror would open arbitrarily long windows where every
// assign answers a version the primary no longer reports.
func (sr *ShardRegistry) Attach(primary *serve.Registry) error {
	primary.OnPublish(func(m *serve.Model) {
		// Hook context: primary's lock is held, so no call back into
		// primary here; shard registries have their own locks.
		sr.mirror(m)
	})
	for _, m := range primary.List() {
		sr.mirror(m)
	}
	return nil
}

// mirror restores one primary snapshot into the shards, skipping
// versions the shards already caught up past (the Attach race).
func (sr *ShardRegistry) mirror(m *serve.Model) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.splits[m.Name].version >= m.Version {
		return
	}
	if err := sr.restoreLocked(m.Name, m.Version, m.Node, m.Centroids); err != nil {
		// Dims changed without a version going backwards can only be a
		// primary-registry invariant violation; surface loudly.
		panic(fmt.Sprintf("shardserve: mirror %q v%d: %v", m.Name, m.Version, err))
	}
}

// restoreLocked splits centroids and restores shard i into machine i's
// registry at the given version, then updates the split table. Caller
// holds sr.mu.
func (sr *ShardRegistry) restoreLocked(name string, version, node int, centroids *matrix.Dense) error {
	k := centroids.Rows()
	shards := sr.machines
	if k < shards {
		shards = k
	}
	parts := dist.Partition(k, shards)
	offsets := make([]int, shards+1)
	for i, p := range parts {
		offsets[i+1] = p.Hi
		if _, err := sr.regs[i].Restore(name, version, node, p.View(centroids)); err != nil {
			return err
		}
	}
	// A shrinking k strands shards on the tail machines; drop them so
	// their batchers can never answer from a stale snapshot.
	for i := shards; i < sr.machines; i++ {
		sr.regs[i].Drop(name)
	}
	sr.splits[name] = split{version: version, offsets: offsets}
	return nil
}

// Drop removes the model from every shard registry and the split
// table.
func (sr *ShardRegistry) Drop(name string) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for _, r := range sr.regs {
		r.Drop(name)
	}
	delete(sr.splits, name)
}
