package shardserve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"knor/internal/blas"
	"knor/internal/dist"
	"knor/internal/matrix"
	"knor/internal/netcluster"
	"knor/internal/serve"
	"knor/internal/telemetry"
	"knor/internal/topology"
)

// ShardRegistry keeps M per-machine serve.Registry instances in
// lockstep: every published model is split into contiguous centroid-row
// shards (dist.Partition over the k rows) and each shard is restored
// into R machines' registries under the same shard key and the SAME
// version number. Each machine registry is an ordinary copy-on-write
// serve.Registry, so per-machine batchers get the single-node snapshot
// guarantees for free; the plan table maps shard-local argmins back to
// global centroid indices and lists each shard's replica machines in
// preference order.
//
// Replication and self-healing: with Options.Replicas R > 1, shard s
// lands on R distinct machines (topology.Place over the live set), so
// any R-1 machine deaths leave every centroid range answerable — the
// fan-out fails over to the surviving replicas. With a Topology
// attached, every dead/recovered transition re-spreads placements from
// the canonical copy the registry retains per model, restoring full
// replication while the cluster keeps serving.
//
// A model with fewer centroids than machines occupies only k shard
// groups; a publish that changes k rebalances the split and drops
// stranded shard copies so no stale snapshot can answer.
type ShardRegistry struct {
	machines int
	replicas int
	topo     *topology.Topology
	remote   Remote

	regs []*serve.Registry
	// down[m] is the fault-injection kill switch: a down machine's
	// batcher is never consulted (its calls would time out in a real
	// cluster), independent of whether the topology has detected the
	// death yet — that lag is exactly the window the fan-out's failover
	// covers.
	down []atomic.Bool

	// spreadBytes counts centroid payload bytes actually copied into
	// machine registries by publishes, mirrors and healing re-spreads —
	// the simulated network cost of moving shard data. Restores skipped
	// because a machine already holds the shard at that version don't
	// count; 4-byte (float32) models move half the bytes of 8-byte ones.
	spreadBytes atomic.Uint64

	mu     sync.RWMutex
	splits map[string]*split
	// canon retains each model's latest full centroid snapshot (the
	// publisher's copy), the source self-healing re-replicates from: a
	// machine death never loses shard data as long as the registry
	// process lives, mirroring a driver that re-pushes placements.
	canon map[string]canonModel
}

// split records how one model's current version is laid out: shard s
// holds global centroid rows [offsets[s], offsets[s+1]) on the machines
// replicas[s], in preference order.
type split struct {
	version int
	// gen increments on every re-spread — including same-version
	// rebalances after membership changes — so an in-flight fan-out can
	// tell "my plan went stale" apart from "a replica is truly dead".
	gen      uint64
	offsets  []int
	replicas [][]int
}

// canonModel is the retained canonical copy of one model. Exactly one
// of c64/c32 is set, per elem (8 or 4): a float32-published model keeps
// its 4-byte payload canonical end to end, so every shard restore —
// publish, mirror or healing re-spread — moves half the bytes and the
// shard batchers serve the publisher's float32 bits unconverted.
type canonModel struct {
	version int
	node    int
	elem    int           // payload element width: 8 or 4
	c64     *matrix.Dense // immutable (cloned at publish / snapshot at mirror)
	c32     *matrix.Mat[float32]
}

func (cm canonModel) rows() int {
	if cm.elem == 4 {
		return cm.c32.Rows()
	}
	return cm.c64.Rows()
}

func (cm canonModel) cols() int {
	if cm.elem == 4 {
		return cm.c32.Cols()
	}
	return cm.c64.Cols()
}

// canonOf wraps a centroid matrix (already safe to retain) as a
// canonical copy at the given version.
func canonOf[T blas.Float](version, node int, centroids *matrix.Mat[T]) canonModel {
	cm := canonModel{version: version, node: node, elem: blas.ElemBytes[T]()}
	switch c := any(centroids).(type) {
	case *matrix.Mat[float32]:
		cm.c32 = c
	case *matrix.Dense:
		cm.c64 = c
	}
	return cm
}

// Options configure a ShardRegistry.
type Options struct {
	// Machines is the simulated machine count (>= 1).
	Machines int
	// Replicas is the replication factor R: every shard is restored
	// into min(R, live machines) distinct machines. Values < 1 mean 1
	// (no replication, the pre-replication layout).
	Replicas int
	// Topology, when set, drives liveness-aware placement: shards are
	// placed over live machines only, and every dead/recovered
	// transition re-spreads under-replicated shards from the canonical
	// copy (self-healing). The registry subscribes to the topology; the
	// caller retains ownership and must Close it after the registry is
	// done serving.
	Topology *topology.Topology
	// Remote, when set, maps non-local machine indices to real peer
	// processes (cluster mode): restores and drops for those machines
	// are additionally pushed over the transport, and the fan-out
	// answers their shard groups by RPC instead of an in-process
	// batcher. Push errors are non-fatal (a dead peer must not abort
	// the rebalance that is routing around it); they are counted in
	// knor_shardserve_push_errors_total.
	Remote Remote
}

// NewShardRegistry builds an empty sharded registry over the given
// machine count with no replication — the single-copy layout.
func NewShardRegistry(machines int) *ShardRegistry {
	return NewShardRegistryWith(Options{Machines: machines})
}

// NewShardRegistryWith builds an empty sharded registry from Options.
func NewShardRegistryWith(opts Options) *ShardRegistry {
	if opts.Machines < 1 {
		panic("shardserve: need at least one machine")
	}
	r := opts.Replicas
	if r < 1 {
		r = 1
	}
	if r > opts.Machines {
		r = opts.Machines
	}
	sr := &ShardRegistry{
		machines: opts.Machines,
		replicas: r,
		topo:     opts.Topology,
		remote:   opts.Remote,
		down:     make([]atomic.Bool, opts.Machines),
		splits:   map[string]*split{},
		canon:    map[string]canonModel{},
	}
	sr.regs = make([]*serve.Registry, opts.Machines)
	for i := range sr.regs {
		sr.regs[i] = serve.NewRegistry(1)
	}
	if sr.topo != nil {
		sr.topo.Subscribe(func(topology.Event) { sr.rebalance() })
	}
	return sr
}

// Machines returns the machine count.
func (sr *ShardRegistry) Machines() int { return sr.machines }

// Replicas returns the replication factor R.
func (sr *ShardRegistry) Replicas() int { return sr.replicas }

// Remote returns the cluster-mode peer seam, nil on a single-process
// registry.
func (sr *ShardRegistry) Remote() Remote { return sr.remote }

// Registry returns machine i's local registry (for wiring per-machine
// batchers). Shards live in it under ShardKey(model, shard).
func (sr *ShardRegistry) Registry(i int) *serve.Registry { return sr.regs[i] }

// ShardKey names shard s of a model inside a machine's local registry.
// The NUL separator cannot collide with user-facing model names (JSON
// strings never round-trip through it in our API paths).
func ShardKey(model string, shard int) string {
	return fmt.Sprintf("%s\x00%d", model, shard)
}

// Kill simulates machine m's process dying: the fan-out stops routing
// to it immediately (down switch) and, when a topology is attached, the
// membership layer is told explicitly — the deterministic
// fault-injection path. The machine's registry contents are retained,
// as a rejoining process would recover its local state.
func (sr *ShardRegistry) Kill(m int) {
	sr.down[m].Store(true)
	if sr.topo != nil {
		sr.topo.MarkDead(m)
	}
}

// Revive brings a killed machine back: routing resumes and the
// membership layer re-spreads placements to reinclude it.
func (sr *ShardRegistry) Revive(m int) {
	sr.down[m].Store(false)
	if sr.topo != nil {
		sr.topo.MarkRecovered(m)
	}
}

// MachineDown reports machine m's kill switch.
func (sr *ShardRegistry) MachineDown(m int) bool { return sr.down[m].Load() }

// Plan is one model's current serving layout, the unit a fan-out
// operates on: all three fields must describe the same (version, gen)
// for the local->global index mapping and the failover order to make
// sense.
type Plan struct {
	Version int
	Gen     uint64
	// Offsets has len shards+1: shard s serves global centroid rows
	// [Offsets[s], Offsets[s+1]).
	Offsets []int
	// Replicas[s] lists the machines holding shard s in preference
	// order; a fan-out tries them left to right.
	Replicas [][]int
}

// GetPlan returns the named model's current layout.
func (sr *ShardRegistry) GetPlan(name string) (Plan, bool) {
	sr.mu.RLock()
	defer sr.mu.RUnlock()
	sp, ok := sr.splits[name]
	if !ok {
		return Plan{}, false
	}
	return Plan{Version: sp.version, Gen: sp.gen, Offsets: sp.offsets, Replicas: sp.replicas}, true
}

// Split returns the named model's current version and shard offsets
// (len = shards+1; shard s serves global centroid rows
// [offsets[s], offsets[s+1])).
func (sr *ShardRegistry) Split(name string) (version int, offsets []int, ok bool) {
	sr.mu.RLock()
	defer sr.mu.RUnlock()
	sp, spOK := sr.splits[name]
	if !spOK {
		return 0, nil, false
	}
	return sp.version, sp.offsets, true
}

// Publish splits centroids across the machines as the next version of
// the named model. The machine registries clone their slices
// (copy-on-write), so the caller keeps ownership of centroids.
func (sr *ShardRegistry) Publish(name string, centroids *matrix.Dense) (version int, err error) {
	return PublishOf(sr, name, centroids)
}

// PublishOf is Publish for either element width: float32 centroids
// stay 4-byte on the wire — every shard restore and healing re-spread
// moves the float32 payload, and the shard batchers serve those bits
// unconverted (bit-compatible with the single-node float32 path).
func PublishOf[T blas.Float](sr *ShardRegistry, name string, centroids *matrix.Mat[T]) (version int, err error) {
	if centroids == nil || centroids.Rows() == 0 || centroids.Cols() == 0 {
		return 0, fmt.Errorf("shardserve: model %q published with no centroids", name)
	}
	cl := centroids.Clone()
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var v int
	if sp, ok := sr.splits[name]; ok {
		v = sp.version + 1
	} else {
		v = 1
	}
	if err := sr.restoreLocked(name, canonOf(v, 0, cl)); err != nil {
		return 0, err
	}
	return v, nil
}

// SpreadBytes reports the cumulative centroid payload bytes this
// registry has copied into machine registries (publishes, mirrors and
// healing re-spreads).
func (sr *ShardRegistry) SpreadBytes() uint64 { return sr.spreadBytes.Load() }

// Attach mirrors primary into the shard registries — current models
// first, then every future publish via the registry's publish hook —
// preserving primary's version numbers so shard snapshots answer with
// the same Version the primary reports. The hook runs under primary's
// lock (publish order); stale restores racing the initial mirror are
// skipped.
//
// The mirror runs synchronously inside the hook, a deliberate
// trade-off: re-sharding under the primary's lock costs one extra
// centroid copy + norms pass (the same order of work Publish itself
// does before locking), and in exchange the shard registries can
// never lag the primary by more than a fan-out's version-skew retry.
// An async mirror would open arbitrarily long windows where every
// assign answers a version the primary no longer reports.
func (sr *ShardRegistry) Attach(primary *serve.Registry) error {
	primary.OnPublish(func(m *serve.Model) {
		// Hook context: primary's lock is held, so no call back into
		// primary here; shard registries have their own locks.
		sr.mirror(m)
	})
	for _, m := range primary.List() {
		sr.mirror(m)
	}
	return nil
}

// mirror restores one primary snapshot into the shards, skipping
// versions the shards already caught up past (the Attach race). The
// snapshot's centroids are immutable, so the canonical copy retains
// them without cloning.
func (sr *ShardRegistry) mirror(m *serve.Model) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sp, ok := sr.splits[m.Name]; ok && sp.version >= m.Version {
		return
	}
	cm := canonModel{version: m.Version, node: m.Node, elem: 8, c64: m.Centroids}
	if p32 := m.Payload32(); p32 != nil {
		cm = canonModel{version: m.Version, node: m.Node, elem: 4, c32: p32}
	}
	if err := sr.restoreLocked(m.Name, cm); err != nil {
		// Dims changed without a version going backwards can only be a
		// primary-registry invariant violation; surface loudly.
		panic(fmt.Sprintf("shardserve: mirror %q v%d: %v", m.Name, m.Version, err))
	}
}

// livePlacementLocked returns the machines placement may use: the
// topology's live set when one is attached (all machines if it is
// somehow empty — placement must target somewhere, and the fan-out's
// down checks still protect callers), every machine otherwise.
func (sr *ShardRegistry) livePlacementLocked() []int {
	if sr.topo != nil {
		if live := sr.topo.Live(); len(live) > 0 {
			return live
		}
	}
	all := make([]int, sr.machines)
	for i := range all {
		all[i] = i
	}
	return all
}

// restoreLocked splits the canonical copy, restores shard s into its
// placed machines' registries at cm's version, drops copies that fell
// out of the placement, and updates the plan table. cm's payload must
// be safe to retain (cloned by PublishOf, immutable from mirror).
// Caller holds sr.mu.
func (sr *ShardRegistry) restoreLocked(name string, cm canonModel) error {
	if old, ok := sr.canon[name]; ok && old.cols() != cm.cols() {
		return fmt.Errorf("shardserve: model %q dims changed %d -> %d",
			name, old.cols(), cm.cols())
	}
	k, d := cm.rows(), cm.cols()
	shards := sr.machines
	if k < shards {
		shards = k
	}
	parts := dist.Partition(k, shards)
	live := sr.livePlacementLocked()
	offsets := make([]int, shards+1)
	reps := make([][]int, shards)
	for s, p := range parts {
		offsets[s+1] = p.Hi
		reps[s] = topology.Place(s, sr.replicas, live)
		key := ShardKey(name, s)
		for _, m := range reps[s] {
			if cur, ok := sr.regs[m].Get(key); ok && cur.Version >= cm.version {
				continue // already holds this shard at this version (rebalance path)
			}
			var err error
			if cm.elem == 4 {
				view := &matrix.Mat[float32]{RowsN: p.Rows(), ColsN: d, Data: cm.c32.Data[p.Lo*d : p.Hi*d]}
				_, err = serve.RestoreOf(sr.regs[m], key, cm.version, cm.node, view)
			} else {
				_, err = sr.regs[m].Restore(key, cm.version, cm.node, p.View(cm.c64))
			}
			if err != nil {
				return err
			}
			// Cluster mode: machine m is a peer process — push the shard
			// payload to it too. The local restore above stays the
			// version bookkeeping (and the canonical fallback the next
			// rebalance re-pushes from); a push to a dead peer fails
			// non-fatally, since healing is exactly what routes around it.
			if sr.remote != nil && !sr.remote.LocalMachine(m) {
				var payload []byte
				if cm.elem == 4 {
					payload = netcluster.AppendFloats(nil, cm.c32.Data[p.Lo*d:p.Hi*d])
				} else {
					payload = netcluster.AppendFloats(nil, cm.c64.Data[p.Lo*d:p.Hi*d])
				}
				if perr := sr.remote.RestoreRemote(m, key, cm.version, cm.node, byte(cm.elem), p.Rows(), d, payload); perr != nil {
					telPushErrors.Inc()
				}
			}
			moved := uint64(p.Rows() * d * cm.elem)
			sr.spreadBytes.Add(moved)
			telSpreadBytes.Add(moved)
		}
	}
	// Drop copies outside the new placement: machines a shard moved
	// away from, and whole shard groups stranded by a shrinking k. An
	// in-flight fan-out holding the old plan that races a drop fails
	// over, then retries on the gen bump.
	oldShards := shards
	if sp, ok := sr.splits[name]; ok {
		if n := len(sp.offsets) - 1; n > oldShards {
			oldShards = n
		}
	}
	for s := 0; s < oldShards; s++ {
		var want []int
		if s < shards {
			want = reps[s]
		}
		for m := 0; m < sr.machines; m++ {
			placed := false
			for _, w := range want {
				if w == m {
					placed = true
					break
				}
			}
			if !placed {
				sr.dropCopyLocked(m, ShardKey(name, s))
			}
		}
	}
	var gen uint64
	if sp, ok := sr.splits[name]; ok {
		gen = sp.gen + 1
	}
	sr.splits[name] = &split{version: cm.version, gen: gen, offsets: offsets, replicas: reps}
	sr.canon[name] = cm
	telemetry.Log("shardserve", telemetry.SevInfo, "plan installed",
		telemetry.F("model", name), telemetry.F("version", cm.version),
		telemetry.F("gen", gen), telemetry.F("shards", shards),
		telemetry.F("replicas", sr.replicas))
	return nil
}

// rebalance re-spreads every model's shards over the current live set
// from the canonical copies — the self-healing step, run on the
// topology dispatcher after each membership transition. Same-version
// restores skip machines that already hold their shard, so healing
// only copies what actually moved.
func (sr *ShardRegistry) rebalance() {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	telRebalances.Inc()
	telemetry.Log("shardserve", telemetry.SevInfo, "rebalance",
		telemetry.F("models", len(sr.canon)), telemetry.F("live", len(sr.livePlacementLocked())))
	for name, cm := range sr.canon {
		if err := sr.restoreLocked(name, cm); err != nil {
			// Re-spreading a version that already published cannot
			// change dims and never moves a version backwards.
			panic(fmt.Sprintf("shardserve: rebalance %q v%d: %v", name, cm.version, err))
		}
	}
}

// ShardHealth describes one shard group's replica liveness.
type ShardHealth struct {
	Model string `json:"model"`
	Shard int    `json:"shard"`
	// Lo/Hi are the group's global centroid rows [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Placed is how many replicas the current plan holds; Want is the
	// configured replication factor; Live is how many placed replicas
	// sit on machines currently answering.
	Placed int `json:"placed"`
	Want   int `json:"want"`
	Live   int `json:"live"`
}

// CopiesOn counts the shard copies the current plans place on machine
// m — the coordinator-side "live shards per rank" figure the
// federated /v1/cluster/stats reports.
func (sr *ShardRegistry) CopiesOn(m int) int {
	sr.mu.RLock()
	defer sr.mu.RUnlock()
	n := 0
	for _, sp := range sr.splits {
		for _, ms := range sp.replicas {
			for _, r := range ms {
				if r == m {
					n++
				}
			}
		}
	}
	return n
}

// GroupHealth reports every shard group of every model, sorted by
// model name then shard index.
func (sr *ShardRegistry) GroupHealth() []ShardHealth {
	sr.mu.RLock()
	defer sr.mu.RUnlock()
	names := make([]string, 0, len(sr.splits))
	for name := range sr.splits {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []ShardHealth
	for _, name := range names {
		sp := sr.splits[name]
		for s, ms := range sp.replicas {
			h := ShardHealth{
				Model: name, Shard: s,
				Lo: sp.offsets[s], Hi: sp.offsets[s+1],
				Placed: len(ms), Want: sr.replicas,
			}
			for _, m := range ms {
				if !sr.down[m].Load() {
					h.Live++
				}
			}
			out = append(out, h)
		}
	}
	return out
}

// Health classifies the shard groups that are not fully healthy:
// degraded groups still answer (>= 1 live replica) but sit below the
// configured replication factor; unavailable groups have no live
// replica, so their centroid range cannot answer and fan-outs touching
// them fail with ErrShardUnavailable until a replica returns.
func (sr *ShardRegistry) Health() (degraded, unavailable []ShardHealth) {
	for _, h := range sr.GroupHealth() {
		switch {
		case h.Live == 0:
			unavailable = append(unavailable, h)
		case h.Live < h.Want:
			degraded = append(degraded, h)
		}
	}
	return degraded, unavailable
}

// Drop removes the model from every machine registry and the plan
// table.
func (sr *ShardRegistry) Drop(name string) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sp, ok := sr.splits[name]
	if !ok {
		return
	}
	for s := 0; s < len(sp.offsets)-1; s++ {
		for m := range sr.regs {
			sr.dropCopyLocked(m, ShardKey(name, s))
		}
	}
	delete(sr.splits, name)
	delete(sr.canon, name)
}

// dropCopyLocked removes machine m's copy of a shard key, mirroring
// the drop to m's peer process in cluster mode. Caller holds sr.mu.
func (sr *ShardRegistry) dropCopyLocked(m int, key string) {
	sr.regs[m].Drop(key)
	if sr.remote != nil && !sr.remote.LocalMachine(m) {
		if err := sr.remote.DropRemote(m, key); err != nil {
			telPushErrors.Inc()
		}
	}
}
