package shardserve

import (
	"fmt"
	"math"

	"knor/internal/cluster"
	"knor/internal/dist"
	"knor/internal/simclock"
	"knor/internal/telemetry"
)

// SimConfig drives a simulated sharded-serving epoch: a front-end
// router fans query batches out to M machines, each holding a
// contiguous shard of the model's k centroids, and merges the per-shard
// argmins with the recursive-doubling min-allreduce. Costs follow the
// cluster alpha-beta model plus the framework serialisation constant
// (the router speaks JSON/HTTP; machines exchange raw buffers).
type SimConfig struct {
	// Machines is the shard count (>= 1; 1 is the single-node baseline).
	Machines int
	// K and D describe the served model (k centroids of d dims).
	K, D int
	// ElemBytes is the query/distance wire width: 4 (float32 serving)
	// or 8 (float64, the default).
	ElemBytes int
	// Batches lists query-batch row counts in arrival order.
	Batches []int
	// Window is the closed-loop in-flight bound: batch b enters the
	// router when batch b-Window completes (default 4). Latency
	// quantiles are measured under that admission, so they include
	// bounded queueing, not an unbounded backlog.
	Window int
	// Model supplies the cost constants (zero value = defaults).
	Model simclock.CostModel
}

func (c SimConfig) withDefaults() (SimConfig, error) {
	if c.Machines < 1 {
		return c, fmt.Errorf("shardserve: Machines must be >= 1, got %d", c.Machines)
	}
	if c.K < 1 || c.D < 1 {
		return c, fmt.Errorf("shardserve: need K >= 1 and D >= 1, got k=%d d=%d", c.K, c.D)
	}
	if len(c.Batches) == 0 {
		return c, fmt.Errorf("shardserve: no batches")
	}
	for i, b := range c.Batches {
		if b < 1 {
			return c, fmt.Errorf("shardserve: batch %d has %d rows", i, b)
		}
	}
	switch c.ElemBytes {
	case 0:
		c.ElemBytes = 8
	case 4, 8:
	default:
		return c, fmt.Errorf("shardserve: ElemBytes must be 4 or 8, got %d", c.ElemBytes)
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Model == (simclock.CostModel{}) {
		c.Model = simclock.DefaultCostModel()
	}
	return c, nil
}

// SimStats summarises a simulated sharded-serving epoch.
type SimStats struct {
	Machines int
	Batches  int
	Rows     int
	// SimSeconds is the completion time of the last batch; RowsPerSec
	// the steady-state assign throughput rows/SimSeconds.
	SimSeconds float64
	RowsPerSec float64
	// P50/P95/P99 are per-batch latency quantiles (admission→completion).
	P50, P95, P99 float64
	// Resource busy seconds, for utilisation reporting: the router NIC,
	// all machine NICs summed, all machine CPUs summed.
	RouterBusy float64
	NICBusy    float64
	CPUBusy    float64
}

// rounds returns ceil(log2(m)), the stage count of tree collectives.
func rounds(m int) int {
	if m <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(m))))
}

// SimulateShardServe runs the fan-out pipeline in simulated time.
// Per batch of m rows against k centroids sharded over M machines:
//
//	serialise   m·d·e · SerializeByteCost          (router, ingress)
//	hand-off    α + m·d·e/β                        (router → machine 0)
//	fan bcast   ⌈log₂M⌉ · (α + m·d·e/β)            (machine binomial tree)
//	shard GEMM  2·d·FlopTime · m · ⌈k/M⌉ + m·RowOverhead
//	min-reduce  NetSetup + ⌈log₂M⌉ · (α + m·(4+e)/β)
//	reply       α + m·(4+e)/β + m·(4+e)·SerializeByteCost
//
// Every NIC is full-duplex with DMA, as 10 GbE hardware is: its
// receive side (the fan bcast relay) and its transmit side (the
// min-reduce exchange) are separate simclock Resources, and the CPU is
// a third — so in steady state machine i receives batch b+1 while its
// CPU grinds batch b's GEMM and its transmit side reduces batch b-1.
// That three-deep overlap is the point of the design: throughput is
// set by the slowest stage's occupancy, not the stage sum, and the
// per-batch latency quantiles expose the full path. Transfer occupancy
// is booked symmetrically on every machine (the bcast tree root's
// transmission count — conservative), and the recurrence admits
// Window batches in flight. Deterministic for a fixed config.
func SimulateShardServe(cfg SimConfig) (SimStats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return SimStats{}, err
	}
	mod := cfg.Model
	M := cfg.Machines
	shards := M
	if cfg.K < shards {
		shards = cfg.K
	}
	parts := dist.Partition(cfg.K, shards)

	routerIn := simclock.NewResource("router-in")
	routerOut := simclock.NewResource("router-out")
	rx := make([]*simclock.Resource, shards)
	tx := make([]*simclock.Resource, shards)
	cpus := make([]*simclock.Resource, shards)
	for i := range rx {
		rx[i] = simclock.NewResource(fmt.Sprintf("nic-rx-%d", i))
		tx[i] = simclock.NewResource(fmt.Sprintf("nic-tx-%d", i))
		cpus[i] = simclock.NewResource(fmt.Sprintf("cpu-%d", i))
	}
	lat := telemetry.NewLatency(1)
	done := make([]float64, len(cfg.Batches))
	fanRounds := rounds(shards)
	st := SimStats{Machines: M, Batches: len(cfg.Batches)}

	end := 0.0
	for b, m := range cfg.Batches {
		st.Rows += m
		qBytes := float64(m * cfg.D * cfg.ElemBytes)
		rBytes := float64(cluster.MinPairBytes(m, cfg.ElemBytes))
		qXfer := qBytes / mod.NetBandwidth
		rXfer := rBytes / mod.NetBandwidth

		arrival := 0.0
		if b >= cfg.Window {
			arrival = done[b-cfg.Window]
		}
		// Router ingress: JSON decode + one wire copy into the cluster.
		handoff := routerIn.Acquire(arrival, qBytes*mod.SerializeByteCost+qXfer) + mod.NetLatency
		// Machine-side binomial bcast on the receive paths: the tree
		// root transmits in every round; completion trails occupancy by
		// the per-round propagation latency.
		fanDone := handoff
		if fanRounds > 0 {
			relayEnd := 0.0
			for i := range rx {
				if t := rx[i].Acquire(handoff, float64(fanRounds)*qXfer); t > relayEnd {
					relayEnd = t
				}
			}
			fanDone = relayEnd + float64(fanRounds)*mod.NetLatency
		}
		// Per-shard GEMM against only that machine's centroid rows.
		reduceReady := 0.0
		for i, p := range parts {
			cost := mod.DistanceCost(cfg.D)*float64(m)*float64(p.Rows()) +
				float64(m)*mod.RowOverhead
			if t := cpus[i].Acquire(fanDone, cost); t > reduceReady {
				reduceReady = t
			}
		}
		// Recursive-doubling min-allreduce on the transmit paths:
		// synchronising, every NIC busy in every round. Uncontended,
		// redDone - reduceReady equals cluster.MinAllreduceCost (the
		// collective's shared closed form); queueing behind an earlier
		// batch's exchange pushes it later.
		redDone := reduceReady
		if shards > 1 {
			redStart := reduceReady + mod.NetSetup
			redEnd := 0.0
			redRounds := rounds(shards)
			for i := range tx {
				if t := tx[i].Acquire(redStart, float64(redRounds)*rXfer); t > redEnd {
					redEnd = t
				}
			}
			redDone = redEnd + float64(redRounds)*mod.NetLatency
		}
		// Router egress: the reply hop, re-encoded for the client.
		done[b] = routerOut.Acquire(redDone+mod.NetLatency, rXfer+rBytes*mod.SerializeByteCost)
		lat.Observe(done[b] - arrival)
		if done[b] > end {
			end = done[b]
		}
	}
	st.SimSeconds = end
	if end > 0 {
		st.RowsPerSec = float64(st.Rows) / end
	}
	st.P50 = lat.Quantile(0.50)
	st.P95 = lat.Quantile(0.95)
	st.P99 = lat.Quantile(0.99)
	st.RouterBusy = routerIn.BusyTime() + routerOut.BusyTime()
	for i := range rx {
		st.NICBusy += rx[i].BusyTime() + tx[i].BusyTime()
		st.CPUBusy += cpus[i].BusyTime()
	}
	return st, nil
}
