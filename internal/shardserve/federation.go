package shardserve

import (
	"sync"

	"knor/internal/telemetry"
)

// FederateMetrics assembles the cluster-wide metrics view behind
// GET /metrics/cluster: rank 0's snapshot comes from the local
// registry, every worker rank's is pulled concurrently over a
// FrameMetrics RPC. The scrape never blocks on a dead or hung worker —
// machines whose kill switch is down are skipped outright, and an RPC
// error or timeout (FetchMetrics caps its own deadline) degrades that
// rank to a stale marker instead of failing the scrape.
//
// hub may be nil (single-process mode): the result is rank 0 alone.
func FederateMetrics(hub *Hub, sr *ShardRegistry, local *telemetry.Registry) []telemetry.RankSnapshot {
	if local == nil {
		local = telemetry.Default
	}
	snaps := []telemetry.RankSnapshot{{Rank: 0, Families: local.Snapshot()}}
	if hub == nil {
		return snaps
	}
	size := hub.tr.Size()
	rest := make([]telemetry.RankSnapshot, size-1)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		rest[r-1].Rank = r
		if sr != nil && sr.MachineDown(r) {
			rest[r-1].Stale = true
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fams, err := hub.FetchMetrics(r)
			if err != nil {
				rest[r-1].Stale = true
				return
			}
			rest[r-1].Families = fams
		}(r)
	}
	wg.Wait()
	return append(snaps, rest...)
}
