package shardserve

import "knor/internal/telemetry"

// Fan-out-edge instruments, registered at init against
// telemetry.Default. The per-shard serve.BatcherOf instances run with
// BatcherOptions.Internal set, so the serve-layer edge instruments stay
// silent and these count each distributed request exactly once; the
// shard batchers still feed the process-wide flush/GEMM/queue series.
var (
	telRequests = telemetry.Default.Counter("knor_shardserve_requests_total",
		"Assign/AssignBatch calls answered by the fan-out edge.")
	telRows = telemetry.Default.Counter("knor_shardserve_rows_total",
		"Query rows answered by the fan-out edge.")
	telRejected = telemetry.Default.Counter("knor_shardserve_rejected_total",
		"Requests refused by the per-model in-flight quota at the fan-out edge.")
	telSkewRetries = telemetry.Default.Counter("knor_shardserve_skew_retries_total",
		"Fan-out attempts retried because a concurrent publish skewed shard versions.")
	telRequestSeconds = telemetry.Default.Histogram("knor_shardserve_request_seconds",
		"End-to-end /assign latency at the fan-out edge.", telemetry.DefLatencyBuckets())
	telShardSeconds = telemetry.Default.HistogramVec("knor_shardserve_shard_seconds",
		"Per-shard fan-out latency: dispatch to that shard's answer.",
		telemetry.DefLatencyBuckets(), "shard")
	telMinReduceSeconds = telemetry.Default.Histogram("knor_shardserve_minreduce_seconds",
		"Time folding shard answers into the global argmin (first to last combine).",
		telemetry.DefLatencyBuckets())
	telInflight = telemetry.Default.GaugeVec("knor_shardserve_inflight_requests",
		"In-flight assignment requests per model at the fan-out edge.", "model")
	telFailovers = telemetry.Default.CounterVec("knor_shardserve_failovers_total",
		"Fan-outs that passed over a shard group's preferred replica (dead or erring) to a backup.",
		"shard")
	telUnavailable = telemetry.Default.Counter("knor_shardserve_unavailable_total",
		"Shard-group answers that failed on every replica (the group was unavailable).")
	telRebalances = telemetry.Default.Counter("knor_shardserve_rebalances_total",
		"Placement rebalances triggered by membership transitions (replicas re-spread from the canonical copies).")
	telSpreadBytes = telemetry.Default.Counter("knor_shardserve_spread_bytes_total",
		"Centroid payload bytes copied into machine registries by publishes, mirrors and healing re-spreads.")
	telPushErrors = telemetry.Default.Counter("knor_shardserve_push_errors_total",
		"Shard restore/drop pushes to peer processes that failed (dead peer; the next rebalance re-spreads).")
)
