package shardserve

import (
	"testing"
)

func simBatches(n, rows int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = rows
	}
	return b
}

func TestSimulateShardServeValidation(t *testing.T) {
	bad := []SimConfig{
		{Machines: 0, K: 10, D: 4, Batches: []int{8}},
		{Machines: 2, K: 0, D: 4, Batches: []int{8}},
		{Machines: 2, K: 10, D: 4},
		{Machines: 2, K: 10, D: 4, Batches: []int{0}},
		{Machines: 2, K: 10, D: 4, Batches: []int{8}, ElemBytes: 2},
	}
	for i, cfg := range bad {
		if _, err := SimulateShardServe(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSimulateShardServeDeterministic(t *testing.T) {
	cfg := SimConfig{Machines: 3, K: 100, D: 16, Batches: []int{64, 256, 1024, 8, 512}}
	a, err := SimulateShardServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateShardServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic sim:\n%+v\n%+v", a, b)
	}
	if a.SimSeconds <= 0 || a.RowsPerSec <= 0 || a.P99 < a.P50 {
		t.Fatalf("implausible stats %+v", a)
	}
	if a.Rows != 64+256+1024+8+512 {
		t.Fatalf("rows %d", a.Rows)
	}
}

// TestSimulateShardServeScaling is the acceptance bar: on the paper's
// serving shape (k=100, d=16 — the 1M×16 loadtest model) the sharded
// path must deliver at least 2x the single-machine simulated assign
// throughput at 4 machines. It also pins the honest part of the story:
// per-shard GEMM shrinks with M while the fan-out bcast does not, so
// the pipeline must expose the compute→network bottleneck shift rather
// than fake linear scaling.
func TestSimulateShardServeScaling(t *testing.T) {
	base := SimConfig{K: 100, D: 16, Batches: simBatches(64, 1024)}

	through := map[int]float64{}
	for _, m := range []int{1, 2, 4} {
		cfg := base
		cfg.Machines = m
		st, err := SimulateShardServe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		through[m] = st.RowsPerSec
	}
	if sp := through[4] / through[1]; sp < 2 {
		t.Errorf("4-machine speedup %.2fx, acceptance bar is 2x (rows/s: %v)", sp, through)
	}
	if sp := through[2] / through[1]; sp < 1.5 {
		t.Errorf("2-machine speedup %.2fx, want >= 1.5x", sp)
	}
}

// TestSimulateShardServeSingleMachine: M=1 pays no collective — only
// router serialisation and the two hops — so its throughput is GEMM
// bound, and NICBusy stays zero (no machine-side relay or reduce).
func TestSimulateShardServeSingleMachine(t *testing.T) {
	st, err := SimulateShardServe(SimConfig{Machines: 1, K: 100, D: 16, Batches: simBatches(8, 512)})
	if err != nil {
		t.Fatal(err)
	}
	if st.NICBusy != 0 {
		t.Errorf("single machine booked %g s of collective NIC time", st.NICBusy)
	}
	if st.CPUBusy <= 0 || st.RouterBusy <= 0 {
		t.Errorf("missing busy accounting: %+v", st)
	}
}

// TestSimulateShardServeFloat32Wire: halving the wire element width
// must not slow anything down (less traffic, same flops).
func TestSimulateShardServeFloat32Wire(t *testing.T) {
	cfg := SimConfig{Machines: 4, K: 100, D: 16, Batches: simBatches(32, 1024)}
	st64, err := SimulateShardServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ElemBytes = 4
	st32, err := SimulateShardServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st32.RowsPerSec < st64.RowsPerSec {
		t.Errorf("float32 wire slower: %.0f vs %.0f rows/s", st32.RowsPerSec, st64.RowsPerSec)
	}
}
