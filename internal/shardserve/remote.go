package shardserve

import (
	"fmt"

	"knor/internal/blas"
	"knor/internal/matrix"
	"knor/internal/netcluster"
	"knor/internal/serve"
	"knor/internal/telemetry"
)

// Remote is the cluster-mode seam between the shard layout and real
// peer processes: when a ShardRegistry is built with Options.Remote,
// machine indices that are not local map to netcluster peers. Restores
// and drops are pushed to the owning peer as FrameShard/FrameShardDrop
// (so the peer's local serve.Registry mirrors the plan), and the
// fan-out answers non-local shard groups with a FrameAssignReq RPC
// instead of an in-process batcher call.
//
// Push errors to a peer are non-fatal by design: a dead peer's restore
// failing must not abort the publish or the healing rebalance that is
// routing AROUND that peer — the membership layer will re-spread its
// shards to live machines, and a recovered peer is caught up by the
// next rebalance.
type Remote interface {
	// LocalMachine reports whether machine m is served in this process
	// (no RPC); the coordinator itself is machine 0.
	LocalMachine(m int) bool
	// AssignRemote answers query rows against one shard snapshot on
	// machine m's process. elem tags the row payload's element width
	// (4 or 8); rows is nrows×d values encoded with AppendFloats. When
	// tr is a sampled trace its context rides with the request and the
	// peer's worker-local spans are stitched back into tr, re-anchored
	// at this side's dispatch time (skew-safe offsets, never absolute
	// remote wall times). A nil tr costs nothing.
	AssignRemote(m int, key string, elem byte, nrows, d int, rows []byte, tr *telemetry.Trace) ([]serve.Assignment, error)
	// RestoreRemote installs one shard of a model's centroids on
	// machine m's process at the given version.
	RestoreRemote(m int, key string, version, node int, elem byte, krows, d int, payload []byte) error
	// DropRemote retires a shard copy from machine m's process.
	DropRemote(m int, key string) error
}

// Shard-push and assign-RPC payload codecs, shared by the coordinator
// hub and the worker peer loop so both sides agree on one schema. The
// float payloads ride as AppendFloats bytes with the element width in
// the frame header — exact bits, no float conversion on the wire.

// encodeShard builds a FrameShard payload.
func encodeShard(key string, version, node, krows, d int, payload []byte) []byte {
	b := netcluster.AppendString(nil, key)
	b = netcluster.AppendUint32(b, uint32(version))
	b = netcluster.AppendUint32(b, uint32(node))
	b = netcluster.AppendUint32(b, uint32(krows))
	b = netcluster.AppendUint32(b, uint32(d))
	return append(b, payload...)
}

// decodeShard unpacks a FrameShard payload; rest is the raw float
// payload (krows×d values at the frame's element width).
func decodeShard(b []byte) (key string, version, node, krows, d int, rest []byte, err error) {
	key, off, err := netcluster.StringAt(b, 0)
	if err != nil {
		return "", 0, 0, 0, 0, nil, err
	}
	var vs [4]uint32
	for i := range vs {
		if vs[i], err = netcluster.Uint32At(b, off+4*i); err != nil {
			return "", 0, 0, 0, 0, nil, err
		}
	}
	return key, int(vs[0]), int(vs[1]), int(vs[2]), int(vs[3]), b[off+16:], nil
}

// encodeAssignReq builds a FrameAssignReq payload.
func encodeAssignReq(key string, nrows, d int, rows []byte) []byte {
	b := netcluster.AppendString(nil, key)
	b = netcluster.AppendUint32(b, uint32(nrows))
	b = netcluster.AppendUint32(b, uint32(d))
	return append(b, rows...)
}

// decodeAssignReq unpacks a FrameAssignReq payload.
func decodeAssignReq(b []byte) (key string, nrows, d int, rows []byte, err error) {
	key, off, err := netcluster.StringAt(b, 0)
	if err != nil {
		return "", 0, 0, nil, err
	}
	rn, err := netcluster.Uint32At(b, off)
	if err != nil {
		return "", 0, 0, nil, err
	}
	rd, err := netcluster.Uint32At(b, off+4)
	if err != nil {
		return "", 0, 0, nil, err
	}
	return key, int(rn), int(rd), b[off+8:], nil
}

// encodeAssignResp builds a FrameAssignResp payload: status 1 plus the
// assignments, or status 0 plus the error text.
func encodeAssignResp(as []serve.Assignment, err error) []byte {
	if err != nil {
		b := netcluster.AppendUint32(nil, 0)
		return netcluster.AppendString(b, err.Error())
	}
	b := netcluster.AppendUint32(nil, 1)
	b = netcluster.AppendUint32(b, uint32(len(as)))
	for _, a := range as {
		b = netcluster.AppendUint32(b, uint32(a.Cluster))
		b = netcluster.AppendUint32(b, uint32(a.Version))
		b = netcluster.AppendFloats(b, []float64{a.SqDist})
	}
	return b
}

// decodeAssignResp is encodeAssignResp's inverse. A status-0 payload
// decodes to the peer's error (the fan-out fails over on it).
func decodeAssignResp(b []byte) ([]serve.Assignment, error) {
	status, err := netcluster.Uint32At(b, 0)
	if err != nil {
		return nil, err
	}
	if status == 0 {
		msg, _, err := netcluster.StringAt(b, 4)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("shardserve: peer: %s", msg)
	}
	n, err := netcluster.Uint32At(b, 4)
	if err != nil {
		return nil, err
	}
	out := make([]serve.Assignment, n)
	off := 8
	var dist [1]float64
	for i := range out {
		cl, err := netcluster.Uint32At(b, off)
		if err != nil {
			return nil, err
		}
		ver, err := netcluster.Uint32At(b, off+4)
		if err != nil {
			return nil, err
		}
		if off, err = netcluster.FloatsAt(b, off+8, 1, dist[:]); err != nil {
			return nil, err
		}
		out[i] = serve.Assignment{Cluster: int32(cl), Version: int(ver), SqDist: dist[0]}
	}
	return out, nil
}

// remoteAssignBatch answers one shard group on a remote machine: the
// query rows' exact bits ride to the peer, the peer's batcher computes
// against its local shard snapshot, and the per-row answers ride back
// — the same values the in-process batcher call would produce, since
// every replica holds identical centroid bits at identical versions.
func remoteAssignBatch[T blas.Float](rm Remote, m int, key string, rows *matrix.Mat[T], tr *telemetry.Trace) ([]serve.Assignment, error) {
	payload := netcluster.AppendFloats(nil, rows.Data)
	return rm.AssignRemote(m, key, byte(blas.ElemBytes[T]()), rows.Rows(), rows.Cols(), payload, tr)
}
