// Package shardserve is the distributed serving layer: one model's k
// centroids sharded across M simulated machines, /assign batches
// fanned out to every shard and merged by a min-allreduce — the
// paper's scale-out story (knord's row-sharded cluster) applied to the
// online path (the serve layer's batched GEMM assigner), so query
// throughput is no longer bound by one machine's GEMM rate or one
// machine's memory for k×d centroids.
//
// Three pieces compose it:
//
//   - ShardRegistry — M per-machine serve.Registry instances kept in
//     lockstep: publishing a model splits its centroid rows into
//     contiguous shards (dist.Partition, the same row-sharding knord
//     uses) and restores shard i into machine i's registry at the
//     SAME version number, copy-on-write like the single-node
//     registry. Attach mirrors an existing registry, so a knorserve
//     with -machines M shards every publish automatically; a publish
//     with a different k rebalances the split.
//   - AssignerOf — the fan-out router. Every machine runs a plain
//     serve.BatcherOf over its shard registry; a query batch goes to
//     all shards concurrently, each answers local (argmin, dist)
//     pairs against only its centroid rows, and answers are folded
//     into the global result as they arrive (cluster.CombineMin), so
//     reduction overlaps the slower shards' GEMMs. The result is
//     bit-identical to the single-node serve.Assigner for any machine
//     count and either precision: shards return raw distances (the
//     cancellation clamp is applied once, after the global min), ties
//     break on the lowest global centroid index exactly as the
//     single-node ascending argmin scan does, and the blas kernels
//     guarantee a centroid block sliced out of a larger matrix
//     produces bit-identical distances at both widths.
//   - SimulateShardServe — the cost model. A closed-loop pipeline
//     over simclock resources (router NIC, per-machine CPUs and NICs)
//     charging query serialisation (SerializeByteCost), a binomial
//     fan-out bcast, the per-shard GEMM, and the recursive-doubling
//     min-allreduce (NetSetup + ⌈log₂M⌉·(α+B/β)); batches pipeline,
//     so machine b+1's GEMM overlaps batch b's reduction. DESIGN.md
//     records the formulas, knorbench -exp shardserve the sweep.
package shardserve
