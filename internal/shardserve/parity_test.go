package shardserve

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"knor/internal/blas"
	"knor/internal/matrix"
	"knor/internal/serve"
)

// The tentpole contract: the sharded assigner is BIT-identical to the
// single-node serve.BatcherOf for any machine count and either
// precision — same Cluster, same SqDist down to the last bit, same
// Version — including argmin ties, which duplicate centroid rows force
// deliberately. The single node scans global indices ascending and
// keeps the first strict minimum; the shard path must reproduce that
// through the per-shard scans plus the lowest-global-index tie-break of
// cluster.CombineMin.

// parityCase builds k×d centroids with duplicate rows (exact ties) and
// a query set mixing random rows, exact centroid copies (ties at
// distance ~0 between duplicates) and midpoints of duplicate pairs.
func parityCase(k, d, nq int, seed int64) (cents, queries *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	cents = matrix.NewDense(k, d)
	for i := range cents.Data {
		cents.Data[i] = rng.NormFloat64()
	}
	// Duplicate some rows across what will be different shards: row
	// k-1 copies row 0, and when k >= 5 row k/2 copies row 1.
	if k >= 2 {
		copy(cents.Row(k-1), cents.Row(0))
	}
	if k >= 5 {
		copy(cents.Row(k/2), cents.Row(1))
	}
	queries = matrix.NewDense(nq, d)
	for i := 0; i < nq; i++ {
		switch {
		case i%4 == 1 && k >= 2:
			copy(queries.Row(i), cents.Row(0)) // exact tie between dup rows
		case i%4 == 3 && k >= 5:
			copy(queries.Row(i), cents.Row(1))
		default:
			for j := 0; j < d; j++ {
				queries.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return cents, queries
}

// runParity compares single-node and sharded answers at element type T.
func runParity[T blas.Float](t *testing.T, machines, k, d, nq int, seed int64) {
	t.Helper()
	cents, queries := parityCase(k, d, nq, seed)

	reg := serve.NewRegistry(1)
	if _, err := reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	single := serve.NewBatcherOf[T](reg, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer single.Close()

	sr := NewShardRegistry(machines)
	if _, err := sr.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	sharded := NewAssignerOf[T](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer sharded.Close()

	q := matrix.Convert[T](queries)
	want, err := single.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("answer count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Cluster != want[i].Cluster {
			t.Fatalf("M=%d k=%d row %d: cluster %d, single node says %d (dists %g vs %g)",
				machines, k, i, got[i].Cluster, want[i].Cluster, got[i].SqDist, want[i].SqDist)
		}
		if math.Float64bits(got[i].SqDist) != math.Float64bits(want[i].SqDist) {
			t.Fatalf("M=%d k=%d row %d: sqdist %v (bits %x), single node %v (bits %x)",
				machines, k, i, got[i].SqDist, math.Float64bits(got[i].SqDist),
				want[i].SqDist, math.Float64bits(want[i].SqDist))
		}
		if got[i].Version != want[i].Version {
			t.Fatalf("M=%d k=%d row %d: version %d, single node %d", machines, k, i, got[i].Version, want[i].Version)
		}
	}
}

// TestShardParity is the acceptance property test: Machines ∈
// {1,2,3,5} × precision ∈ {32,64} × k shapes including widths that are
// not multiples of the float32 kernel's 4-wide column tile, plus k <
// machines (empty tail machines) and k with duplicate rows (ties).
func TestShardParity(t *testing.T) {
	shapes := []struct{ k, d int }{
		{1, 3}, {2, 8}, {7, 5}, {17, 16}, {25, 13}, {100, 16},
	}
	for _, machines := range []int{1, 2, 3, 5} {
		for _, sh := range shapes {
			seed := int64(machines*1000 + sh.k)
			t.Run("", func(t *testing.T) {
				runParity[float64](t, machines, sh.k, sh.d, 48, seed)
				runParity[float32](t, machines, sh.k, sh.d, 48, seed)
			})
		}
	}
}

// TestAssignerConcurrentRepublish hammers AssignBatch while a writer
// republishes with alternating k (8 ↔ 3 over 5 machines, so every
// other publish drops shards from the tail machines). Any fan-out
// that catches the transition mid-flight must resolve it through the
// version-skew retry — never surface "unknown model" for a model that
// exists, and never return an out-of-range global index.
func TestAssignerConcurrentRepublish(t *testing.T) {
	sr := NewShardRegistry(5)
	if _, err := sr.Publish("m", seqCentroids(8, 4, 0)); err != nil {
		t.Fatal(err)
	}
	a := NewAssignerOf[float64](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer a.Close()

	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := 3
			if i%2 == 0 {
				k = 8
			}
			if _, err := sr.Publish("m", seqCentroids(k, 4, float64(i))); err != nil {
				t.Errorf("republish %d: %v", i, err)
				return
			}
			// A publish cadence with windows longer than a fan-out
			// round trip: the skew retry is built for publishes racing
			// queries, not for publishers that never pause (see
			// skewRetries).
			time.Sleep(time.Millisecond)
		}
	}()
	queries := matrix.NewDense(16, 4)
	for i := range queries.Data {
		queries.Data[i] = float64(i % 7)
	}
	for r := 0; r < 200; r++ {
		as, err := a.AssignBatch("m", queries)
		if err != nil {
			t.Fatalf("assign round %d: %v", r, err)
		}
		for i, an := range as {
			if an.Cluster < 0 || an.Cluster >= 8 {
				t.Fatalf("round %d row %d: cluster %d out of range", r, i, an.Cluster)
			}
		}
	}
	close(stop)
	<-pubDone
}

// TestShardParityAcrossRepublish republishes with a different k
// (rebalance) and re-checks parity at the new version.
func TestShardParityAcrossRepublish(t *testing.T) {
	cents1, queries := parityCase(12, 6, 32, 1)
	cents2, _ := parityCase(5, 6, 1, 2)

	reg := serve.NewRegistry(1)
	sr := NewShardRegistry(3)
	for _, c := range []*matrix.Dense{cents1, cents2} {
		if _, err := reg.Publish("m", c); err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Publish("m", c); err != nil {
			t.Fatal(err)
		}
	}
	single := serve.NewBatcher(reg, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer single.Close()
	sharded := NewAssignerOf[float64](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer sharded.Close()

	want, err := single.AssignBatch("m", queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.AssignBatch("m", queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d after rebalance: %+v, single node %+v", i, got[i], want[i])
		}
	}
	if want[0].Version != 2 {
		t.Fatalf("expected version 2 answers, got %d", want[0].Version)
	}
}
