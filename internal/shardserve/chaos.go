package shardserve

// Chaos harness: drive the replicated fan-out with workload.QueryStream
// traffic while a seeded, deterministic kill schedule takes simulated
// machines down and brings them back, and hold every answer that does
// arrive to the single-node oracle — bit-identical Cluster, SqDist and
// Version, or it counts as Wrong. The harness is the proof behind the
// replication layer: availability may degrade under faults (counted,
// bounded by the tests), correctness may not.
//
// Determinism: the kill schedule, the centroid contents, every query
// row and every republish derive from ChaosConfig.Seed alone, so a
// failing run replays exactly from its seed. Timing (settle waits,
// batcher flushes) is not part of the schedule; no assertion depends
// on it.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"knor/internal/blas"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/serve"
	"knor/internal/topology"
	"knor/internal/workload"
)

// ChaosConfig parameterises one chaos run.
type ChaosConfig struct {
	// Machines and Replicas shape the cluster under test.
	Machines int
	Replicas int
	// Heal attaches a topology so membership transitions re-spread
	// replicas from the canonical copies (the self-healing path).
	// Without it, placements are fixed at publish time and failover
	// alone carries the load.
	Heal bool
	// Settle, with Heal, waits after each transition until every shard
	// group is replicated over the available machines again before
	// sending traffic — separating "healing works" from "failover
	// covers the healing window".
	Settle bool
	// K×D centroids with deliberate duplicate rows (cross-shard ties);
	// query batches get exact-tie rows injected every round.
	K, D int
	// Rounds of BatchRows-row query batches under the kill schedule,
	// then FinalRounds more after every machine is revived (the
	// recovery-restores-exactness check).
	Rounds      int
	BatchRows   int
	FinalRounds int
	// Precision selects the element type of both the oracle and the
	// sharded path. Publishes go through PublishOf at that element
	// width, so float32 runs move 4-byte shard payloads end to end.
	Precision kmeans.Precision
	// Quantize, when "int8" (float32 runs only), serves the sharded
	// path through the quantized scan + exact re-rank while the oracle
	// stays on the exact path — the run then proves the quantized
	// distributed answers are bit-identical to exact single-node ones.
	Quantize string
	// Seed drives the kill schedule, centroids, queries, republishes.
	Seed int64
	// KillEvery kills one machine every that-many rounds (0 = never);
	// it stays dead for DeadFor rounds; at most MaxDead machines are
	// down at once (default Replicas-1: enough to exercise failover on
	// every group without silencing one when Heal is off).
	KillEvery int
	DeadFor   int
	MaxDead   int
	// PublishEvery republishes fresh centroids (same K) every that-many
	// rounds (0 = never), racing version skew against failover.
	PublishEvery int
}

// withDefaults fills unset knobs with the standard chaos shape.
func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if cfg.Machines == 0 {
		cfg.Machines = 3
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.K == 0 {
		cfg.K = 12
	}
	if cfg.D == 0 {
		cfg.D = 8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 18
	}
	if cfg.BatchRows == 0 {
		cfg.BatchRows = 32
	}
	if cfg.FinalRounds == 0 {
		cfg.FinalRounds = 2
	}
	if cfg.KillEvery == 0 {
		cfg.KillEvery = 3
	}
	if cfg.DeadFor == 0 {
		cfg.DeadFor = 4
	}
	if cfg.MaxDead == 0 {
		cfg.MaxDead = cfg.Replicas - 1
		if cfg.MaxDead < 1 {
			cfg.MaxDead = 1
		}
	}
	return cfg
}

// ChaosEvent is one entry of the executed fault schedule.
type ChaosEvent struct {
	Round   int
	Machine int
	Kill    bool // true = killed, false = revived
}

// ChaosStats is what one chaos run observed.
type ChaosStats struct {
	// Rounds and Rows count the traffic sent during the fault phase.
	Rounds int
	Rows   int
	// Errors counts fault-phase batches the fan-out refused (shard
	// group unavailable); Wrong counts rows that ANSWERED but differed
	// from the oracle in any of Cluster, SqDist bits, or Version —
	// the number the whole layer exists to keep at zero.
	Errors int
	Wrong  int
	// Kills/Revives and Events record the executed schedule (Events in
	// order, for replay comparison).
	Kills   int
	Revives int
	Events  []ChaosEvent
	// Failovers is the assigner's count of passes past a preferred
	// replica; Degraded/UnavailableRounds count rounds that started
	// with shard groups in those states.
	Failovers         uint64
	DegradedRounds    int
	UnavailableRounds int
	// FinalErrors/FinalWrong cover the post-recovery rounds, after
	// every machine was revived: both must be zero if recovery truly
	// restores exactness.
	FinalErrors int
	FinalWrong  int
	// Versions is how many versions were published over the run.
	Versions int
	// SpreadBytes is the registry's count of centroid payload bytes
	// copied into machine registries over the run (publishes + healing
	// re-spreads) — float32 runs move half the bytes of float64 ones.
	SpreadBytes uint64
	Elapsed     time.Duration
}

// RunChaos executes one seeded chaos run at cfg.Precision.
func RunChaos(cfg ChaosConfig) (ChaosStats, error) {
	cfg = cfg.withDefaults()
	if cfg.Precision == kmeans.Precision32 {
		return runChaosOf[float32](cfg)
	}
	return runChaosOf[float64](cfg)
}

// chaosCentroids draws k×d centroids with duplicate rows (row k-1
// copies row 0; row k/2 copies row 1 when k >= 5), so argmin ties span
// shard boundaries and the lowest-global-index tie-break is exercised
// on every batch.
func chaosCentroids(k, d int, rng *rand.Rand) *matrix.Dense {
	c := matrix.NewDense(k, d)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	if k >= 2 {
		copy(c.Row(k-1), c.Row(0))
	}
	if k >= 5 {
		copy(c.Row(k/2), c.Row(1))
	}
	return c
}

// injectTies overwrites some query rows with exact centroid copies, so
// every batch contains distance-zero ties between duplicated rows.
func injectTies(q, cents *matrix.Dense) {
	k := cents.Rows()
	for i := 0; i < q.Rows(); i++ {
		switch {
		case i%4 == 1 && k >= 2:
			copy(q.Row(i), cents.Row(0))
		case i%4 == 3 && k >= 5:
			copy(q.Row(i), cents.Row(1))
		}
	}
}

// diffAssign counts rows where got differs from the oracle in any
// observable field. SqDist compares by bit pattern: "close" is wrong.
func diffAssign(got, want []serve.Assignment) int {
	if len(got) != len(want) {
		return len(want)
	}
	wrong := 0
	for i := range want {
		if got[i].Cluster != want[i].Cluster ||
			math.Float64bits(got[i].SqDist) != math.Float64bits(want[i].SqDist) ||
			got[i].Version != want[i].Version {
			wrong++
		}
	}
	return wrong
}

// settleReplication polls until every shard group holds at least
// min(replicas, available) live copies — the healing loop has caught up
// with the last membership transition — or the deadline passes.
func settleReplication(sr *ShardRegistry, available int) error {
	want := sr.Replicas()
	if available < want {
		want = available
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for _, h := range sr.GroupHealth() {
			if h.Live < want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shardserve: healing did not settle to %d live replicas per group", want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func runChaosOf[T blas.Float](cfg ChaosConfig) (ChaosStats, error) {
	var stats ChaosStats
	rng := rand.New(rand.NewSource(cfg.Seed))
	cents := chaosCentroids(cfg.K, cfg.D, rng)

	opts := Options{Machines: cfg.Machines, Replicas: cfg.Replicas}
	if cfg.Heal {
		topo := topology.New(topology.Config{Machines: cfg.Machines})
		defer topo.Close()
		opts.Topology = topo
	}
	sr := NewShardRegistryWith(opts)
	if _, err := PublishOf(sr, "chaos", matrix.Convert[T](cents)); err != nil {
		return stats, err
	}
	asn := NewAssignerOf[T](sr, serve.BatcherOptions{MaxWait: time.Microsecond, Quantize: cfg.Quantize})
	defer asn.Close()

	// The oracle: a single-node batcher over the same snapshots,
	// published in lockstep (same element width) so versions and payload
	// bits line up.
	oreg := serve.NewRegistry(1)
	if _, err := serve.PublishOf(oreg, "chaos", matrix.Convert[T](cents)); err != nil {
		return stats, err
	}
	oracle := serve.NewBatcherOf[T](oreg, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer oracle.Close()

	qs := workload.NewQueryStream(workload.Spec{
		Kind: workload.NaturalClusters, D: cfg.D,
		Clusters: cfg.K, Seed: cfg.Seed,
	}, cfg.Seed+1)

	// round answers one query batch against both paths and returns the
	// sharded error, with wrong-row counts folded into *wrong.
	round := func(errs, wrong *int) error {
		q := qs.Next(cfg.BatchRows)
		injectTies(q, cents)
		qt := matrix.Convert[T](q)
		want, err := oracle.AssignBatch("chaos", qt)
		if err != nil {
			return fmt.Errorf("oracle: %w", err)
		}
		got, err := asn.AssignBatch("chaos", qt)
		stats.Rows += cfg.BatchRows
		if err != nil {
			*errs++
			return nil
		}
		*wrong += diffAssign(got, want)
		return nil
	}

	deadUntil := map[int]int{}
	version := 1
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		// Revivals due this round, ascending machine order for replay
		// stability.
		for m := 0; m < cfg.Machines; m++ {
			if until, ok := deadUntil[m]; ok && until <= r {
				sr.Revive(m)
				delete(deadUntil, m)
				stats.Revives++
				stats.Events = append(stats.Events, ChaosEvent{Round: r, Machine: m})
			}
		}
		// Kill one machine on schedule, chosen by the seeded rng among
		// the machines currently up.
		if cfg.KillEvery > 0 && r > 0 && r%cfg.KillEvery == 0 && len(deadUntil) < cfg.MaxDead {
			var up []int
			for m := 0; m < cfg.Machines; m++ {
				if _, dead := deadUntil[m]; !dead {
					up = append(up, m)
				}
			}
			victim := up[rng.Intn(len(up))]
			sr.Kill(victim)
			deadUntil[victim] = r + cfg.DeadFor
			stats.Kills++
			stats.Events = append(stats.Events, ChaosEvent{Round: r, Machine: victim, Kill: true})
		}
		if cfg.Heal && cfg.Settle {
			if err := settleReplication(sr, cfg.Machines-len(deadUntil)); err != nil {
				return stats, err
			}
		}
		if deg, unav := sr.Health(); len(unav) > 0 {
			stats.UnavailableRounds++
		} else if len(deg) > 0 {
			stats.DegradedRounds++
		}
		if cfg.PublishEvery > 0 && r > 0 && r%cfg.PublishEvery == 0 {
			cents = chaosCentroids(cfg.K, cfg.D, rng)
			if _, err := PublishOf(sr, "chaos", matrix.Convert[T](cents)); err != nil {
				return stats, err
			}
			if _, err := serve.PublishOf(oreg, "chaos", matrix.Convert[T](cents)); err != nil {
				return stats, err
			}
			version++
		}
		stats.Rounds++
		if err := round(&stats.Errors, &stats.Wrong); err != nil {
			return stats, err
		}
	}

	// Recovery: revive everything, let healing settle, and require the
	// caller-visible world to be exact again.
	for m := 0; m < cfg.Machines; m++ {
		if _, ok := deadUntil[m]; ok {
			sr.Revive(m)
			delete(deadUntil, m)
			stats.Revives++
			stats.Events = append(stats.Events, ChaosEvent{Round: cfg.Rounds, Machine: m})
		}
	}
	if cfg.Heal && cfg.Settle {
		if err := settleReplication(sr, cfg.Machines); err != nil {
			return stats, err
		}
	}
	for r := 0; r < cfg.FinalRounds; r++ {
		if err := round(&stats.FinalErrors, &stats.FinalWrong); err != nil {
			return stats, err
		}
	}
	stats.Failovers = asn.Failovers()
	stats.Versions = version
	stats.SpreadBytes = sr.SpreadBytes()
	stats.Elapsed = time.Since(start)
	return stats, nil
}
