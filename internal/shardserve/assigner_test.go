package shardserve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"knor/internal/matrix"
	"knor/internal/serve"
)

func TestAssignerUnknownModel(t *testing.T) {
	sr := NewShardRegistry(2)
	a := NewAssignerOf[float64](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer a.Close()
	if _, err := a.AssignBatch("ghost", matrix.NewDense(1, 3)); err == nil {
		t.Fatal("unknown model answered")
	}
}

// TestAssignerQuota parks a request behind a long MaxWait and checks
// the fan-out edge rejects the next one with ErrOverloaded before any
// shard burns GEMM time, then recovers once the first drains.
func TestAssignerQuota(t *testing.T) {
	sr := NewShardRegistry(2)
	if _, err := sr.Publish("m", seqCentroids(4, 3, 0)); err != nil {
		t.Fatal(err)
	}
	a := NewAssignerOf[float64](sr, serve.BatcherOptions{
		MaxWait: time.Minute, ModelQuota: 1,
	})
	defer a.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := a.AssignBatch("m", matrix.NewDense(1, 3)); err != nil {
			t.Errorf("parked request failed: %v", err)
		}
	}()
	// Wait until the parked request is queued on the shards.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if a.Stats().Queued > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := a.AssignBatch("m", matrix.NewDense(1, 3))
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	// Another model is not affected by m's quota.
	if _, err := sr.Publish("other", seqCentroids(2, 3, 50)); err != nil {
		t.Fatal(err)
	}
	assignNudged(t, a, "other")
	wg.Wait()

	st := a.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected counter %d, want 1", st.Rejected)
	}
	if st.Requests != 2 {
		t.Errorf("requests counter %d, want 2", st.Requests)
	}
	// Quota released: the model answers again.
	assignNudged(t, a, "m")
}

// assignNudged answers one request against a batcher configured with a
// very long MaxWait by nudging Flush until the answer lands.
func assignNudged(t *testing.T, a *AssignerOf[float64], model string) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := a.AssignBatch(model, matrix.NewDense(1, 3))
		done <- err
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("model %q request failed: %v", model, err)
			}
			return
		case <-deadline:
			t.Fatalf("model %q request never answered", model)
		default:
			a.Flush()
			time.Sleep(time.Millisecond)
		}
	}
}

func TestAssignerStats(t *testing.T) {
	sr := NewShardRegistry(3)
	if _, err := sr.Publish("m", seqCentroids(6, 4, 0)); err != nil {
		t.Fatal(err)
	}
	a := NewAssignerOf[float32](sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer a.Close()
	rows := matrix.NewDense(5, 4)
	if _, err := a.AssignRows("m", rows); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Requests != 1 || st.Rows != 5 {
		t.Errorf("stats %+v, want 1 request / 5 rows", st)
	}
	if st.Flushes == 0 {
		t.Error("no shard flushes recorded")
	}
	if st.P50 <= 0 {
		t.Error("latency quantiles not recorded")
	}
}
