package shardserve

import (
	"fmt"
	"sync"
	"time"

	"knor/internal/matrix"
	"knor/internal/netcluster"
	"knor/internal/serve"
	"knor/internal/telemetry"
)

// PeerOptions configure a worker peer's serve loop.
type PeerOptions struct {
	// Batcher configures the peer's shard batchers (MaxBatch, MaxWait,
	// Threads). The peer forces the shard-role settings the in-process
	// assigner uses — RawSqDist on (the coordinator clamps once after
	// the global min), no per-model quota (enforced at the fan-out
	// edge), Internal instruments — so a remote replica computes
	// exactly what a local one would.
	Batcher serve.BatcherOptions
	// PulseEvery is the heartbeat cadence (default: a quarter of the
	// topology's pulse timeout, matching the in-process clock).
	PulseEvery time.Duration
}

// ServePeer runs a worker process's serve loop over a bootstrapped
// transport (rank >= 1): it installs FrameShard pushes into a local
// registry, answers FrameAssignReq RPCs from its shard batchers at the
// request's element width, retires copies on FrameShardDrop, and
// heartbeats the coordinator with FramePulse. Shard installs and drops
// apply in arrival order on the receive goroutine (so a drop never
// races its own shard's restore); assign RPCs run concurrently, each
// on its own goroutine, because a GEMM must not stall the heartbeat or
// a rebalance push.
//
// ServePeer blocks until the transport closes (coordinator shutdown or
// this process being told to stop via tr.Close) and returns nil on a
// clean close.
func ServePeer(tr netcluster.Transport, opts PeerOptions) error {
	if tr.Rank() == 0 {
		return fmt.Errorf("shardserve: rank 0 is the coordinator, not a peer")
	}
	bopts := opts.Batcher
	bopts.RawSqDist = true
	bopts.ModelQuota = 0
	bopts.Internal = true
	bopts.Tracer = nil
	reg := serve.NewRegistry(1)
	bat64 := serve.NewBatcherOf[float64](reg, bopts)
	bat32 := serve.NewBatcherOf[float32](reg, bopts)
	defer bat64.Close()
	defer bat32.Close()
	// Live-shard count for the federated scrape: the coordinator's
	// /metrics/cluster shows how many shard copies each worker holds.
	telemetry.Default.GaugeFunc("knor_peer_shards",
		"Shard copies installed in this worker process's local registry.",
		func() float64 { return float64(len(reg.List())) })

	pulseEvery := opts.PulseEvery
	if pulseEvery <= 0 {
		pulseEvery = 500 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(pulseEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := tr.Send(0, &netcluster.Frame{Type: netcluster.FramePulse}); err != nil {
					return // coordinator gone; the recv loop is exiting too
				}
			case <-stop:
				return
			}
		}
	}()
	defer wg.Wait()
	defer close(stop)

	for {
		f, err := tr.Recv(0)
		if err != nil {
			return nil // transport closed: clean shutdown
		}
		switch f.Type {
		case netcluster.FrameShard:
			if err := peerInstall(reg, f); err != nil {
				return fmt.Errorf("shardserve: peer rank %d: bad shard push: %w", tr.Rank(), err)
			}
		case netcluster.FrameShardDrop:
			key, _, err := netcluster.StringAt(f.Payload, 0)
			if err != nil {
				return fmt.Errorf("shardserve: peer rank %d: bad shard drop: %w", tr.Rank(), err)
			}
			reg.Drop(key)
		case netcluster.FrameAssignReq:
			wg.Add(1)
			go func(f *netcluster.Frame) {
				defer wg.Done()
				// The receipt instant anchors every worker-local span: the
				// spans ship back as offsets from it on THIS process's
				// monotonic clock, and the coordinator re-anchors them at
				// its own dispatch time — no absolute wall time crosses the
				// process boundary.
				rec := newSpanRec(f.Trace, time.Now())
				as, aerr := peerAnswer(bat32, bat64, f, rec)
				encStart := time.Now()
				payload := encodeAssignResp(as, aerr)
				rec.add("encode", encStart)
				resp := &netcluster.Frame{
					Type: netcluster.FrameAssignResp, Seq: f.Seq,
					Payload: payload,
					Trace:   rec.ext(f.Trace),
				}
				// A send failure means the coordinator is gone; the recv
				// loop notices on its next Recv.
				_ = tr.Send(0, resp)
			}(f)
		case netcluster.FrameMetrics:
			// Metrics federation pull: answer with this process's registry
			// snapshot. Runs off the recv goroutine so a large snapshot
			// never stalls shard installs or the heartbeat.
			wg.Add(1)
			go func(f *netcluster.Frame) {
				defer wg.Done()
				_ = tr.Send(0, &netcluster.Frame{
					Type: netcluster.FrameMetrics, Seq: f.Seq,
					Payload: netcluster.EncodeSnapshot(nil, telemetry.Default.Snapshot()),
				})
			}(f)
		}
	}
}

// spanRec collects worker-local spans for a sampled request as offsets
// from the request-receipt anchor. nil (unsampled request) records
// nothing, so the common path pays only the nil check.
type spanRec struct {
	anchor time.Time
	spans  []telemetry.RemoteSpan
}

// newSpanRec returns a recorder when the incoming frame carries a
// sampled trace context, nil otherwise.
func newSpanRec(ext *netcluster.TraceExt, receipt time.Time) *spanRec {
	if ext == nil || !ext.Sampled {
		return nil
	}
	return &spanRec{anchor: receipt}
}

// add records a span from start to now.
func (r *spanRec) add(name string, start time.Time) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, telemetry.RemoteSpan{
		Name:  name,
		Start: start.Sub(r.anchor),
		Dur:   time.Since(start),
	})
}

// ext builds the reply's trace extension: the request's context echoed
// back with the recorded spans piggybacked. nil for unsampled requests.
func (r *spanRec) ext(req *netcluster.TraceExt) *netcluster.TraceExt {
	if r == nil || req == nil {
		return nil
	}
	return &netcluster.TraceExt{
		TraceID: req.TraceID, Parent: req.Parent, Sampled: true, Spans: r.spans,
	}
}

// peerInstall restores one pushed shard snapshot into the peer's local
// registry at the pushed element width — the payload bits go straight
// into the registry, so a remote replica holds exactly the bytes the
// coordinator's local registries hold.
func peerInstall(reg *serve.Registry, f *netcluster.Frame) error {
	key, version, node, krows, d, rest, err := decodeShard(f.Payload)
	if err != nil {
		return err
	}
	if krows <= 0 || d <= 0 {
		return fmt.Errorf("shard %q claims %dx%d", key, krows, d)
	}
	switch f.Elem {
	case 4:
		c := matrix.New[float32](krows, d)
		if _, err := netcluster.FloatsAt(rest, 0, krows*d, c.Data); err != nil {
			return err
		}
		_, err = serve.RestoreOf(reg, key, version, node, c)
	case 8:
		c := matrix.New[float64](krows, d)
		if _, err := netcluster.FloatsAt(rest, 0, krows*d, c.Data); err != nil {
			return err
		}
		_, err = reg.Restore(key, version, node, c)
	default:
		return fmt.Errorf("shard %q has element width %d", key, f.Elem)
	}
	// A version that is not newer than what we hold is a rebalance
	// replaying a push we already have — not an error.
	if err != nil && version > 0 {
		if cur, ok := reg.Get(key); ok && cur.Version >= version {
			return nil
		}
	}
	return err
}

// peerAnswer runs one assign RPC against the local shard batchers at
// the request's element width, recording decode and GEMM spans on rec
// when the request is sampled.
func peerAnswer(bat32 *serve.BatcherOf[float32], bat64 *serve.BatcherOf[float64], f *netcluster.Frame, rec *spanRec) ([]serve.Assignment, error) {
	decStart := time.Now()
	key, nrows, d, rows, err := decodeAssignReq(f.Payload)
	if err != nil {
		return nil, err
	}
	if nrows <= 0 || d <= 0 {
		return nil, fmt.Errorf("assign request claims %dx%d rows", nrows, d)
	}
	switch f.Elem {
	case 4:
		q := matrix.New[float32](nrows, d)
		if _, err := netcluster.FloatsAt(rows, 0, nrows*d, q.Data); err != nil {
			return nil, err
		}
		rec.add("decode", decStart)
		gemmStart := time.Now()
		as, err := bat32.AssignBatch(key, q)
		rec.add("shard_gemm", gemmStart)
		return as, err
	case 8:
		q := matrix.New[float64](nrows, d)
		if _, err := netcluster.FloatsAt(rows, 0, nrows*d, q.Data); err != nil {
			return nil, err
		}
		rec.add("decode", decStart)
		gemmStart := time.Now()
		as, err := bat64.AssignBatch(key, q)
		rec.add("shard_gemm", gemmStart)
		return as, err
	default:
		return nil, fmt.Errorf("assign request element width %d", f.Elem)
	}
}
