package shardserve

import (
	"fmt"
	"sync"
	"time"

	"knor/internal/matrix"
	"knor/internal/netcluster"
	"knor/internal/serve"
)

// PeerOptions configure a worker peer's serve loop.
type PeerOptions struct {
	// Batcher configures the peer's shard batchers (MaxBatch, MaxWait,
	// Threads). The peer forces the shard-role settings the in-process
	// assigner uses — RawSqDist on (the coordinator clamps once after
	// the global min), no per-model quota (enforced at the fan-out
	// edge), Internal instruments — so a remote replica computes
	// exactly what a local one would.
	Batcher serve.BatcherOptions
	// PulseEvery is the heartbeat cadence (default: a quarter of the
	// topology's pulse timeout, matching the in-process clock).
	PulseEvery time.Duration
}

// ServePeer runs a worker process's serve loop over a bootstrapped
// transport (rank >= 1): it installs FrameShard pushes into a local
// registry, answers FrameAssignReq RPCs from its shard batchers at the
// request's element width, retires copies on FrameShardDrop, and
// heartbeats the coordinator with FramePulse. Shard installs and drops
// apply in arrival order on the receive goroutine (so a drop never
// races its own shard's restore); assign RPCs run concurrently, each
// on its own goroutine, because a GEMM must not stall the heartbeat or
// a rebalance push.
//
// ServePeer blocks until the transport closes (coordinator shutdown or
// this process being told to stop via tr.Close) and returns nil on a
// clean close.
func ServePeer(tr netcluster.Transport, opts PeerOptions) error {
	if tr.Rank() == 0 {
		return fmt.Errorf("shardserve: rank 0 is the coordinator, not a peer")
	}
	bopts := opts.Batcher
	bopts.RawSqDist = true
	bopts.ModelQuota = 0
	bopts.Internal = true
	bopts.Tracer = nil
	reg := serve.NewRegistry(1)
	bat64 := serve.NewBatcherOf[float64](reg, bopts)
	bat32 := serve.NewBatcherOf[float32](reg, bopts)
	defer bat64.Close()
	defer bat32.Close()

	pulseEvery := opts.PulseEvery
	if pulseEvery <= 0 {
		pulseEvery = 500 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(pulseEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := tr.Send(0, &netcluster.Frame{Type: netcluster.FramePulse}); err != nil {
					return // coordinator gone; the recv loop is exiting too
				}
			case <-stop:
				return
			}
		}
	}()
	defer wg.Wait()
	defer close(stop)

	for {
		f, err := tr.Recv(0)
		if err != nil {
			return nil // transport closed: clean shutdown
		}
		switch f.Type {
		case netcluster.FrameShard:
			if err := peerInstall(reg, f); err != nil {
				return fmt.Errorf("shardserve: peer rank %d: bad shard push: %w", tr.Rank(), err)
			}
		case netcluster.FrameShardDrop:
			key, _, err := netcluster.StringAt(f.Payload, 0)
			if err != nil {
				return fmt.Errorf("shardserve: peer rank %d: bad shard drop: %w", tr.Rank(), err)
			}
			reg.Drop(key)
		case netcluster.FrameAssignReq:
			wg.Add(1)
			go func(f *netcluster.Frame) {
				defer wg.Done()
				as, aerr := peerAnswer(bat32, bat64, f)
				resp := &netcluster.Frame{
					Type: netcluster.FrameAssignResp, Seq: f.Seq,
					Payload: encodeAssignResp(as, aerr),
				}
				// A send failure means the coordinator is gone; the recv
				// loop notices on its next Recv.
				_ = tr.Send(0, resp)
			}(f)
		}
	}
}

// peerInstall restores one pushed shard snapshot into the peer's local
// registry at the pushed element width — the payload bits go straight
// into the registry, so a remote replica holds exactly the bytes the
// coordinator's local registries hold.
func peerInstall(reg *serve.Registry, f *netcluster.Frame) error {
	key, version, node, krows, d, rest, err := decodeShard(f.Payload)
	if err != nil {
		return err
	}
	if krows <= 0 || d <= 0 {
		return fmt.Errorf("shard %q claims %dx%d", key, krows, d)
	}
	switch f.Elem {
	case 4:
		c := matrix.New[float32](krows, d)
		if _, err := netcluster.FloatsAt(rest, 0, krows*d, c.Data); err != nil {
			return err
		}
		_, err = serve.RestoreOf(reg, key, version, node, c)
	case 8:
		c := matrix.New[float64](krows, d)
		if _, err := netcluster.FloatsAt(rest, 0, krows*d, c.Data); err != nil {
			return err
		}
		_, err = reg.Restore(key, version, node, c)
	default:
		return fmt.Errorf("shard %q has element width %d", key, f.Elem)
	}
	// A version that is not newer than what we hold is a rebalance
	// replaying a push we already have — not an error.
	if err != nil && version > 0 {
		if cur, ok := reg.Get(key); ok && cur.Version >= version {
			return nil
		}
	}
	return err
}

// peerAnswer runs one assign RPC against the local shard batchers at
// the request's element width.
func peerAnswer(bat32 *serve.BatcherOf[float32], bat64 *serve.BatcherOf[float64], f *netcluster.Frame) ([]serve.Assignment, error) {
	key, nrows, d, rows, err := decodeAssignReq(f.Payload)
	if err != nil {
		return nil, err
	}
	if nrows <= 0 || d <= 0 {
		return nil, fmt.Errorf("assign request claims %dx%d rows", nrows, d)
	}
	switch f.Elem {
	case 4:
		q := matrix.New[float32](nrows, d)
		if _, err := netcluster.FloatsAt(rows, 0, nrows*d, q.Data); err != nil {
			return nil, err
		}
		return bat32.AssignBatch(key, q)
	case 8:
		q := matrix.New[float64](nrows, d)
		if _, err := netcluster.FloatsAt(rows, 0, nrows*d, q.Data); err != nil {
			return nil, err
		}
		return bat64.AssignBatch(key, q)
	default:
		return nil, fmt.Errorf("assign request element width %d", f.Elem)
	}
}
