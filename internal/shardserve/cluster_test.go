package shardserve

import (
	"math"
	"sync"
	"testing"
	"time"

	"knor/internal/blas"
	"knor/internal/matrix"
	"knor/internal/netcluster"
	"knor/internal/serve"
	"knor/internal/topology"
)

// The real-cluster serving path, exercised in-process: rank 0 runs the
// coordinator (Hub + ShardRegistry + fan-out assigner), ranks 1..M-1
// run ServePeer over real TCP loopback sockets. The acceptance is the
// same bit-parity contract the simulated shard layer proves, plus
// kill-a-process failover: closing a peer's transport must leave every
// query answerable with identical bits.

// serveCluster is one bootstrapped coordinator + peers fixture.
type serveCluster struct {
	ts    []*netcluster.TCPTransport
	reg   *serve.Registry
	topo  *topology.Topology
	hub   *Hub
	sr    *ShardRegistry
	peers sync.WaitGroup
}

// startServeCluster bootstraps an m-rank TCP cluster on loopback and
// wires the serving roles: the caller gets the coordinator's primary
// registry (publish into it) and shard registry.
func startServeCluster(t *testing.T, m, replicas int) *serveCluster {
	t.Helper()
	ln, err := netcluster.ListenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	coordAddr := ln.Addr().String()
	c := &serveCluster{ts: make([]*netcluster.TCPTransport, m)}
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := netcluster.TCPOptions{
				Listen: "127.0.0.1:0", Join: coordAddr, Digest: "serve-test",
				BootstrapTimeout: 20 * time.Second,
			}
			if i == 0 {
				opts.Join, opts.Machines, opts.Listener = "", m, ln
			}
			tr, err := netcluster.DialCluster(opts)
			if err != nil {
				errs[i] = err
				return
			}
			c.ts[tr.Rank()] = tr
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d bootstrap: %v", i, err)
		}
	}
	for r := 1; r < m; r++ {
		c.peers.Add(1)
		go func(r int) {
			defer c.peers.Done()
			if err := ServePeer(c.ts[r], PeerOptions{
				Batcher:    serve.BatcherOptions{MaxWait: time.Microsecond, Threads: 1},
				PulseEvery: 50 * time.Millisecond,
			}); err != nil {
				t.Errorf("peer rank %d: %v", r, err)
			}
		}(r)
	}
	c.reg = serve.NewRegistry(1)
	c.topo = topology.New(topology.Config{Machines: m, PulseTimeout: time.Second})
	c.hub = NewHub(c.ts[0], 5*time.Second)
	c.sr = NewShardRegistryWith(Options{
		Machines: m, Replicas: replicas, Topology: c.topo, Remote: c.hub,
	})
	if err := c.sr.Attach(c.reg); err != nil {
		t.Fatal(err)
	}
	c.hub.Start(c.topo, c.sr)
	t.Cleanup(func() {
		c.hub.Close()
		for _, tr := range c.ts {
			tr.Close()
		}
		c.peers.Wait()
		c.topo.Close()
	})
	return c
}

// requireAnswerParity compares cluster answers to the single-node
// oracle bit for bit.
func requireAnswerParity[T blas.Float](t *testing.T, want, got []serve.Assignment, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: answer count %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Cluster != want[i].Cluster || got[i].Version != want[i].Version {
			t.Fatalf("%s row %d: cluster/version %d/v%d, single node %d/v%d",
				label, i, got[i].Cluster, got[i].Version, want[i].Cluster, want[i].Version)
		}
		if math.Float64bits(got[i].SqDist) != math.Float64bits(want[i].SqDist) {
			t.Fatalf("%s row %d: sqdist bits %x, single node %x",
				label, i, math.Float64bits(got[i].SqDist), math.Float64bits(want[i].SqDist))
		}
	}
}

// clusterParity publishes a model into a real 3-process cluster and
// checks /assign parity against the single-node batcher at element
// type T — then kills a peer process and checks again.
func clusterParity[T blas.Float](t *testing.T) {
	cents, queries := parityCase(13, 7, 48, 99)
	c := startServeCluster(t, 3, 2)

	if _, err := c.reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	oracle := serve.NewBatcherOf[T](c.reg, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer oracle.Close()
	assigner := NewAssignerOf[T](c.sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer assigner.Close()

	q := matrix.Convert[T](queries)
	want, err := oracle.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := assigner.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	requireAnswerParity[T](t, want, got, "healthy cluster")

	// Kill peer rank 1's process: its transport closes, the hub marks
	// it dead on the connection drop, and the membership layer
	// re-spreads its shards over the survivors. Every replica holds
	// identical bits, so answers must not change.
	c.ts[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for c.topo.IsLive(1) {
		if time.Now().After(deadline) {
			t.Fatal("peer death never reached the membership layer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, err = assigner.AssignBatch("m", q)
	if err != nil {
		t.Fatalf("assign after peer death: %v", err)
	}
	requireAnswerParity[T](t, want, got, "after peer kill")
}

func TestClusterServeParity64(t *testing.T) { clusterParity[float64](t) }
func TestClusterServeParity32(t *testing.T) { clusterParity[float32](t) }

// TestClusterRepublish: a second publish (different k, so the layout
// rebalances and stale shard copies drop from peers) keeps parity on
// the real cluster.
func TestClusterRepublish(t *testing.T) {
	cents1, queries := parityCase(12, 6, 32, 7)
	cents2, _ := parityCase(5, 6, 1, 8)
	c := startServeCluster(t, 3, 2)
	for _, cents := range []*matrix.Dense{cents1, cents2} {
		if _, err := c.reg.Publish("m", cents); err != nil {
			t.Fatal(err)
		}
	}
	oracle := serve.NewBatcherOf[float64](c.reg, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer oracle.Close()
	assigner := NewAssignerOf[float64](c.sr, serve.BatcherOptions{MaxWait: time.Microsecond})
	defer assigner.Close()
	want, err := oracle.AssignBatch("m", queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := assigner.AssignBatch("m", queries)
	if err != nil {
		t.Fatal(err)
	}
	requireAnswerParity[float64](t, want, got, "after republish")
	if got[0].Version != 2 {
		t.Fatalf("expected version 2 answers, got %d", got[0].Version)
	}
}

// TestClusterPulseLiveness: worker heartbeats keep peers live, and an
// API kill (down switch) silences a peer's pulses so the sweep retires
// it without the socket dropping.
func TestClusterPulseLiveness(t *testing.T) {
	c := startServeCluster(t, 3, 2)
	// All peers pulse within the first timeout window.
	time.Sleep(200 * time.Millisecond)
	for m := 0; m < 3; m++ {
		if !c.topo.IsLive(m) {
			t.Fatalf("machine %d not live under healthy pulses", m)
		}
	}
	// Down switch: pulses from rank 2 are ignored, the sweep kills it.
	c.sr.Kill(2)
	deadline := time.Now().Add(10 * time.Second)
	for c.topo.IsLive(2) {
		if time.Now().After(deadline) {
			t.Fatal("killed machine still live after pulse timeout")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Revive: pulses resume and recovery propagates.
	c.sr.Revive(2)
	deadline = time.Now().Add(10 * time.Second)
	for !c.topo.IsLive(2) {
		if time.Now().After(deadline) {
			t.Fatal("revived machine never recovered")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAssignRespCodec round-trips the RPC response payload, both arms.
func TestAssignRespCodec(t *testing.T) {
	in := []serve.Assignment{
		{Cluster: 3, SqDist: 1.25, Version: 7},
		{Cluster: 0, SqDist: 0, Version: 7},
		{Cluster: 11, SqDist: math.Pi, Version: 8},
	}
	out, err := decodeAssignResp(encodeAssignResp(in, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("row %d: %+v != %+v", i, out[i], in[i])
		}
	}
	if _, err := decodeAssignResp(encodeAssignResp(nil, errAssign)); err == nil || err.Error() != "shardserve: peer: boom" {
		t.Fatalf("error arm round-trip: %v", err)
	}
}

var errAssign = errBoom{}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }
