package serve

import (
	"math"

	"knor/internal/blas"
)

// Quantized assignment: scan every centroid with an int8×int8→int32
// kernel, keep the candidates whose quantization error interval could
// contain the minimum, and re-rank just those exactly in float32. The
// answers are bit-identical to the exact float32 path — including
// lowest-index tie-breaks — because the candidate rule is sound (every
// true minimum, tied or not, is always a candidate; proof below) and
// the re-rank reuses Dgemm, whose column-slice invariance makes the
// gathered candidates' distances bitwise equal to the full scan's.
//
// Error algebra. Query x and centroid c quantize as x = s_x·q_x + e_x,
// c = s_c·q_c + e_c with |e| ≤ s/2 per element (round-to-nearest
// symmetric int8, blas.QuantizeRows). Expanding x·c:
//
//	|x·c − s_x·s_c·(q_x·q_c)| ≤ (s_x/2)·s_c·Σ|q_c| + s_x·Σ|q_x|·(s_c/2) + d·(s_x·s_c/4)
//	                          = s_x·s_c·(A_c/2 + A_x/2 + d/4)
//
// with A = Σ|q| (QuantizedRows.AbsSum). The distance estimate
// ṽ = −2·s_x·s_c·(q_x·q_c) + ‖x‖² + ‖c‖² therefore satisfies
// |v_real − ṽ| ≤ 2·s_x·s_c·(A_x/2 + A_c/2 + d/4). The exact path's
// float32 value v₃₂ additionally differs from v_real by rounding: the
// length-d inner product, the two norms and their adds accumulate at
// most (d+6)·ε₃₂ relative to Σ|2·x·c| + ‖x‖² + ‖c‖², and 2Σ|x·c| ≤
// 2‖x‖‖c‖ + … ≤ 2(‖x‖²+‖c‖²) by AM–GM, so (d+6)·ε₃₂·3(‖x‖²+‖c‖²)
// covers it. E below is the sum of both bounds with a 1.001 safety
// multiplier; j is a candidate iff ṽ_j − E_j ≤ min_l(ṽ_l + E_l).
//
// Soundness: for every j, ṽ_j + E_j ≥ v₃₂_j ≥ v₃₂_min, and any true
// minimum l (every bitwise tie included) has ṽ_l − E_l ≤ v₃₂_l =
// v₃₂_min ≤ min_j(ṽ_j + E_j) — so l passes the rule. Non-candidates
// have v₃₂ strictly above the minimum and cannot affect the argmin or
// its tie-break.

const eps32 = 1.0 / (1 << 24) // float32 unit roundoff

// quantOf returns the snapshot's int8-quantized centroid mirror,
// building it (and the float32 mirror it derives from) on first use.
func quantOf(m *Model) *blas.QuantizedRows {
	c32, _ := centroidsOf[float32](m)
	m.quantOnce.Do(func() {
		m.q8 = blas.QuantizeRows(c32.Data, c32.Rows(), c32.Cols())
	})
	return m.q8
}

// assignBlockQuant is the quantized counterpart of assignBlock for the
// float32 path. rerankCap bounds the exact re-rank's candidate set; a
// row whose margin check leaves more candidates than that falls back to
// a full exact scan of its distance row (counted in the returned
// fallback total and exported as knor_serve_quant_rerank_fallbacks_total).
func assignBlockQuant(a []float32, m int, snap *Model, threads int, raw bool, rerankCap int) ([]Assignment, int) {
	k, d := snap.K(), snap.Dims()
	cents, normsSq := centroidsOf[float32](snap)
	q8 := quantOf(snap)
	qq := blas.QuantizeRows(a, m, d)
	dots := make([]int32, m*k)
	blas.Gemm8(qq.Data, m, d, q8.Data, k, dots, threads)
	an := make([]float32, m)
	blas.RowNormsSq(a, m, d, an)

	out := make([]Assignment, m)
	lb := make([]float64, k)
	cand := make([]int, 0, rerankCap)
	cbuf := make([]float32, rerankCap*d)
	crow := make([]float32, rerankCap)
	fallbacks := 0
	for i := 0; i < m; i++ {
		sx := qq.Scale[i]
		ax := float64(qq.AbsSum[i])
		ani := float64(an[i])
		drow := dots[i*k : (i+1)*k]
		minUB := math.Inf(1)
		for j := 0; j < k; j++ {
			sc := q8.Scale[j]
			nj := float64(normsSq[j])
			approx := -2*sx*sc*float64(drow[j]) + ani + nj
			e := (2*sx*sc*(ax/2+float64(q8.AbsSum[j])/2+float64(d)/4) +
				3*eps32*float64(d+6)*(ani+nj)) * 1.001
			if ub := approx + e; ub < minUB {
				minUB = ub
			}
			lb[j] = approx - e
		}
		overflow := false
		cand = cand[:0]
		for j := 0; j < k; j++ {
			if lb[j] <= minUB {
				if len(cand) == rerankCap {
					overflow = true
					break
				}
				cand = append(cand, j)
			}
		}
		arow := a[i*d : (i+1)*d]
		var best float32
		var bi int
		if overflow {
			// Margin too loose for a bounded re-rank: full exact row,
			// identical to assignBlock's scan.
			fallbacks++
			full := make([]float32, k)
			blas.Dgemm(-2, arow, 1, d, cents.Data, k, 0, full, 1)
			best, bi = full[0]+an[i]+normsSq[0], 0
			for j := 1; j < k; j++ {
				if v := full[j] + an[i] + normsSq[j]; v < best {
					best, bi = v, j
				}
			}
		} else {
			// Exact re-rank of the gathered candidates: Dgemm's
			// column-slice invariance makes these values bitwise equal
			// to the full scan's, and candidates ascend in j, so the
			// strict-< scan reproduces the lowest-index tie-break.
			for t, j := range cand {
				copy(cbuf[t*d:(t+1)*d], cents.Data[j*d:(j+1)*d])
			}
			nc := len(cand)
			clear(crow[:nc])
			blas.Dgemm(-2, arow, 1, d, cbuf[:nc*d], nc, 0, crow[:nc], 1)
			best, bi = crow[0]+an[i]+normsSq[cand[0]], cand[0]
			for t := 1; t < nc; t++ {
				if v := crow[t] + an[i] + normsSq[cand[t]]; v < best {
					best, bi = v, cand[t]
				}
			}
		}
		if best < 0 && !raw {
			best = 0
		}
		out[i] = Assignment{Cluster: int32(bi), SqDist: float64(best), Version: snap.Version}
	}
	return out, fallbacks
}
