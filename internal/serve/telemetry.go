package serve

import "knor/internal/telemetry"

// Process-wide serving instruments, registered at init against
// telemetry.Default so any binary linking the serving layer exposes
// them on GET /metrics. Per-batcher counters (BatcherStats) stay
// instance-local; these aggregate across every batcher in the process.
//
// In sharded deployments the per-shard batchers run with
// BatcherOptions.Internal set: they contribute to the flush/GEMM/queue
// instruments (their flushes are real GEMMs) but not to the edge
// instruments (requests, rows, rejections, request latency, in-flight),
// which the fan-out edge owns — so a request is never double-counted.
var (
	telRequests = telemetry.Default.Counter("knor_serve_requests_total",
		"Assign/AssignBatch calls answered by the single-node edge.")
	telRows = telemetry.Default.Counter("knor_serve_rows_total",
		"Query rows answered by the single-node edge.")
	telFlushes = telemetry.Default.Counter("knor_serve_flushes_total",
		"Blocked GEMM distance computations performed (per shard in sharded mode).")
	telRejected = telemetry.Default.Counter("knor_serve_rejected_total",
		"Requests refused by the per-model in-flight quota (HTTP 429).")
	telQueueDepth = telemetry.Default.Gauge("knor_serve_queue_depth_rows",
		"Query rows waiting for the next batch flush right now.")
	telBatchRows = telemetry.Default.Histogram("knor_serve_batch_rows",
		"Rows coalesced per GEMM flush.", telemetry.DefSizeBuckets())
	telGemmSeconds = telemetry.Default.Histogram("knor_serve_gemm_seconds",
		"Wall time of one blocked GEMM distance computation.", telemetry.DefLatencyBuckets())
	telRequestSeconds = telemetry.Default.Histogram("knor_serve_request_seconds",
		"End-to-end /assign latency at the single-node edge.", telemetry.DefLatencyBuckets())
	telInflight = telemetry.Default.GaugeVec("knor_serve_inflight_requests",
		"In-flight assignment requests per model at the single-node edge.", "model")

	telQuantRows = telemetry.Default.Counter("knor_serve_quant_rows_total",
		"Query rows answered by the int8 quantized scan + exact re-rank path.")
	telQuantFallbacks = telemetry.Default.Counter("knor_serve_quant_rerank_fallbacks_total",
		"Quantized rows whose margin exceeded the re-rank cap, answered by a full exact scan.")

	telPublishes = telemetry.Default.Counter("knor_registry_publishes_total",
		"Model versions published or restored into a registry.")
	telEvictions = telemetry.Default.Counter("knor_registry_evictions_total",
		"Model versions evicted by retention (count or age bounds).")
	telSnapshotSaves = telemetry.Default.Counter("knor_registry_snapshot_saves_total",
		"Registry state files written (publish-coalesced and shutdown saves).")
	telSnapshotLoads = telemetry.Default.Counter("knor_registry_snapshot_loads_total",
		"Registry state files loaded at boot.")
)

// SnapshotSaves reports the process-wide count of registry state saves
// (exposed on /v1/stats next to the Prometheus series).
func SnapshotSaves() uint64 { return telSnapshotSaves.Load() }

// SnapshotLoads reports the process-wide count of registry state loads.
func SnapshotLoads() uint64 { return telSnapshotLoads.Load() }
