package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/workload"
)

func testModel(t *testing.T, r *Registry, name string, k, d int, seed int64) (*Model, *matrix.Dense) {
	t.Helper()
	data := workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: 2000, D: d, Clusters: k, Spread: 0.05, Seed: seed,
	})
	res, err := kmeans.RunSerial(data, kmeans.Config{K: k, Init: kmeans.InitKMeansPP, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Publish(name, res.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	return m, data
}

// bruteNearest is the oracle the batched GEMM path must match.
func bruteNearest(row []float64, c *matrix.Dense) (int32, float64) {
	best, bi := math.Inf(1), 0
	for j := 0; j < c.Rows(); j++ {
		if d := matrix.SqDist(row, c.Row(j)); d < best {
			best, bi = d, j
		}
	}
	return int32(bi), best
}

func TestBatcherMatchesBruteForce(t *testing.T) {
	reg := NewRegistry(4)
	snap, data := testModel(t, reg, "m", 8, 6, 3)
	b := NewBatcher(reg, BatcherOptions{MaxBatch: 64, MaxWait: time.Millisecond})
	defer b.Close()
	q := workload.NewQueryStream(workload.Spec{
		Kind: workload.NaturalClusters, N: 0, D: 6, Clusters: 8, Spread: 0.05, Seed: 3,
	}, 99)
	rows := q.Next(200)
	got, err := b.AssignBatch("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	_ = data
	for i := 0; i < rows.Rows(); i++ {
		wantC, wantD := bruteNearest(rows.Row(i), snap.Centroids)
		if got[i].Cluster != wantC {
			t.Fatalf("row %d: cluster %d, want %d", i, got[i].Cluster, wantC)
		}
		if math.Abs(got[i].SqDist-wantD) > 1e-9*(1+wantD) {
			t.Fatalf("row %d: sqdist %v, want %v", i, got[i].SqDist, wantD)
		}
		if got[i].Version != snap.Version {
			t.Fatalf("row %d answered by version %d, want %d", i, got[i].Version, snap.Version)
		}
	}
}

func TestBatcherConcurrentRequestsCoalesce(t *testing.T) {
	reg := NewRegistry(4)
	snap, _ := testModel(t, reg, "m", 5, 4, 7)
	b := NewBatcher(reg, BatcherOptions{MaxBatch: 256, MaxWait: 2 * time.Millisecond})
	defer b.Close()
	q := workload.NewQueryStream(workload.Spec{
		Kind: workload.NaturalClusters, D: 4, Clusters: 5, Spread: 0.05, Seed: 7,
	}, 42)
	const G, per = 16, 25
	batches := make([]*matrix.Dense, G)
	for g := range batches {
		batches[g] = q.Next(per)
	}
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			as, err := b.AssignBatch("m", batches[g])
			if err != nil {
				errs <- err
				return
			}
			for i := range as {
				wantC, _ := bruteNearest(batches[g].Row(i), snap.Centroids)
				if as[i].Cluster != wantC {
					errs <- errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Requests != G || st.Rows != G*per {
		t.Fatalf("stats lost requests: %+v", st)
	}
	if st.Flushes == 0 || st.Flushes > st.Requests {
		t.Fatalf("flushes out of range: %+v", st)
	}
	if math.IsNaN(st.P50) || math.IsNaN(st.P99) || st.P99 < st.P50 {
		t.Fatalf("latency quantiles malformed: %+v", st)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "batched assignment disagrees with brute force" }

func TestBatcherErrors(t *testing.T) {
	reg := NewRegistry(2)
	testModel(t, reg, "m", 3, 4, 1)
	b := NewBatcher(reg, BatcherOptions{MaxWait: time.Millisecond})
	if _, err := b.Assign("nope", []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := b.Assign("m", []float64{1, 2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if as, err := b.AssignBatch("m", matrix.NewDense(0, 4)); err != nil || as != nil {
		t.Fatalf("empty batch: %v %v", as, err)
	}
	b.Close()
	if _, err := b.Assign("m", []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("closed batcher accepted a request")
	}
	b.Close() // second close is a no-op
}
