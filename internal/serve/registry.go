package serve

import (
	"fmt"
	"sort"
	"sync"

	"knor/internal/blas"
	"knor/internal/matrix"
)

// Model is one immutable published snapshot of a centroid set. The
// Centroids matrix and NormsSq slice must be treated as read-only by
// every consumer; the Registry guarantees no writer retains them.
type Model struct {
	Name    string
	Version int // 1-based, monotonically increasing per name
	// Centroids is the k×d centroid matrix.
	Centroids *matrix.Dense
	// NormsSq caches ‖c‖² per centroid for the GEMM distance identity,
	// computed once at publish time instead of once per batch.
	NormsSq []float64
	// Node is the simulated NUMA node the model's shard is pinned to,
	// assigned round-robin at first publish and stable across
	// versions. It is surfaced by the serving API and honoured by the
	// router when RouterConfig.UseRegistryPins is set (otherwise the
	// router re-pins under its own placement policy for the
	// placement-sweep experiments).
	Node int
}

// K returns the number of centroids.
func (m *Model) K() int { return m.Centroids.Rows() }

// Dims returns the centroid dimensionality.
func (m *Model) Dims() int { return m.Centroids.Cols() }

// Bytes returns the in-memory size of the centroid data.
func (m *Model) Bytes() int { return m.K() * m.Dims() * 8 }

// maxVersions bounds the per-model history the registry retains: a
// stream updater auto-publishing forever must not grow memory without
// bound. Older snapshots already handed out stay valid (immutable);
// the registry merely forgets them.
const maxVersions = 8

// Registry holds named, versioned models. Publish is copy-on-write:
// the input centroids are cloned into a fresh immutable Model, the
// previous version stays readable, and Get hands out the snapshot
// pointer without copying — so a query path never blocks on, or
// observes, an in-progress training step. The last maxVersions
// snapshots per model stay addressable through GetVersion.
type Registry struct {
	nodes int // NUMA nodes to pin shards across (>=1)

	mu       sync.RWMutex
	latest   map[string]*Model
	versions map[string][]*Model
	nextNode int
}

// NewRegistry builds a registry that pins model shards round-robin
// across the given number of simulated NUMA nodes (values < 1 are
// treated as 1).
func NewRegistry(nodes int) *Registry {
	if nodes < 1 {
		nodes = 1
	}
	return &Registry{
		nodes:    nodes,
		latest:   map[string]*Model{},
		versions: map[string][]*Model{},
	}
}

// Publish clones centroids into a new immutable version of the named
// model and returns the snapshot. The first publish of a name pins the
// model to a NUMA node; later versions inherit the pin so a serving
// shard never migrates mid-flight.
func (r *Registry) Publish(name string, centroids *matrix.Dense) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	if centroids == nil || centroids.Rows() == 0 || centroids.Cols() == 0 {
		return nil, fmt.Errorf("serve: model %q published with no centroids", name)
	}
	cl := centroids.Clone()
	norms := make([]float64, cl.Rows())
	blas.RowNormsSq(cl.Data, cl.Rows(), cl.Cols(), norms)

	r.mu.Lock()
	defer r.mu.Unlock()
	m := &Model{Name: name, Centroids: cl, NormsSq: norms}
	if prev, ok := r.latest[name]; ok {
		if prev.Dims() != m.Dims() {
			return nil, fmt.Errorf("serve: model %q dims changed %d -> %d", name, prev.Dims(), m.Dims())
		}
		m.Version = prev.Version + 1
		m.Node = prev.Node
	} else {
		m.Version = 1
		m.Node = r.nextNode % r.nodes
		r.nextNode++
	}
	r.latest[name] = m
	vs := append(r.versions[name], m)
	if len(vs) > maxVersions {
		vs = append(vs[:0], vs[len(vs)-maxVersions:]...)
	}
	r.versions[name] = vs
	return m, nil
}

// Get returns the latest version of the named model.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.latest[name]
	return m, ok
}

// GetVersion returns a specific published version (1-based). Only the
// last maxVersions snapshots are retained; older ones report not found.
func (r *Registry) GetVersion(name string, version int) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.versions[name] {
		if m.Version == version {
			return m, true
		}
	}
	return nil, false
}

// List returns the latest snapshot of every model, sorted by name.
func (r *Registry) List() []*Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Model, 0, len(r.latest))
	for _, m := range r.latest {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Drop removes all versions of a model. Snapshots already handed out
// stay valid (they are immutable); only the registry forgets them.
func (r *Registry) Drop(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.latest, name)
	delete(r.versions, name)
}
