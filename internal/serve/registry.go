package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"knor/internal/blas"
	"knor/internal/matrix"
	"knor/internal/telemetry"
)

// Model is one immutable published snapshot of a centroid set. The
// Centroids matrix and NormsSq slice must be treated as read-only by
// every consumer; the Registry guarantees no writer retains them.
type Model struct {
	Name    string
	Version int // 1-based, monotonically increasing per name
	// Centroids is the k×d centroid matrix (float64, the canonical
	// storage every trainer publishes).
	Centroids *matrix.Dense
	// NormsSq caches ‖c‖² per centroid for the GEMM distance identity,
	// computed once at publish time instead of once per batch.
	NormsSq []float64
	// PublishedAt stamps the snapshot for age-based retention.
	PublishedAt time.Time
	// Node is the simulated NUMA node the model's shard is pinned to,
	// assigned round-robin at first publish and stable across
	// versions. It is surfaced by the serving API and honoured by the
	// router when RouterConfig.UseRegistryPins is set (otherwise the
	// router re-pins under its own placement policy for the
	// placement-sweep experiments).
	Node int
	// Elem is the canonical element width of the published payload: 8
	// for float64 publishes (Centroids is the source of truth), 4 for
	// float32 publishes via PublishOf/RestoreOf (the float32 mirror is
	// canonical and Centroids is an eagerly widened compatibility view).
	// Persistence and the shard-spread wire honour Elem so 4-byte models
	// move at half the bytes end to end.
	Elem int

	// c32/n32 mirror Centroids/NormsSq at float32 for the Precision32
	// assign path, built lazily on first float32 access (mirrorOnce) so
	// float64-only deployments never pay the +50% centroid memory, and
	// float32 flushes pay the conversion once per snapshot, not per
	// flush.
	mirrorOnce sync.Once
	c32        *matrix.Mat[float32]
	n32        []float32

	// q8 is the per-snapshot int8 quantization of the float32 mirror,
	// built lazily on the first quantized flush (quantOnce) — exact-path
	// deployments never pay for it, quantized flushes build it once.
	quantOnce sync.Once
	q8        *blas.QuantizedRows
}

// K returns the number of centroids.
func (m *Model) K() int { return m.Centroids.Rows() }

// Dims returns the centroid dimensionality.
func (m *Model) Dims() int { return m.Centroids.Cols() }

// Bytes returns the size of the canonical centroid payload — what a
// snapshot save or a shard re-spread actually moves (4-byte elements
// for float32-published models, 8-byte for float64).
func (m *Model) Bytes() int { return m.K() * m.Dims() * m.Elem }

// Payload32 returns the canonical float32 payload for Elem == 4 models
// (nil otherwise): the exact bits the trainer published, which the
// persistence and shard-spread paths carry instead of the widened
// Centroids view.
func (m *Model) Payload32() *matrix.Mat[float32] {
	if m.Elem != 4 {
		return nil
	}
	return m.c32
}

// centroidsOf returns the model's centroids and cached ‖c‖² at the
// requested element type, building the float32 mirror on first use.
func centroidsOf[T blas.Float](m *Model) (*matrix.Mat[T], []T) {
	var z T
	if _, ok := any(z).(float32); ok {
		m.mirrorOnce.Do(func() {
			m.c32 = matrix.Convert[float32](m.Centroids)
			m.n32 = make([]float32, m.c32.Rows())
			blas.RowNormsSq(m.c32.Data, m.c32.Rows(), m.c32.Cols(), m.n32)
		})
		return any(m.c32).(*matrix.Mat[T]), any(m.n32).([]T)
	}
	return any(m.Centroids).(*matrix.Mat[T]), any(m.NormsSq).([]T)
}

// Retention bounds the per-model version history the registry keeps: a
// stream updater auto-publishing forever must not grow memory without
// bound. Snapshots already handed out stay valid (immutable); the
// registry merely forgets them. The latest version and pinned versions
// are never evicted.
type Retention struct {
	// MaxVersions bounds retained *unpinned* versions per model (<= 0
	// uses the default of 8). Pinned versions are kept on top of the
	// bound and do not count against it.
	MaxVersions int
	// MaxAge evicts unpinned non-latest versions older than this at
	// publish time and on EvictExpired sweeps (0 = no age bound).
	MaxAge time.Duration
}

// maxVersions is the historical retention bound.
const maxVersions = 8

// Registry holds named, versioned models. Publish is copy-on-write:
// the input centroids are cloned into a fresh immutable Model, the
// previous version stays readable, and Get hands out the snapshot
// pointer without copying — so a query path never blocks on, or
// observes, an in-progress training step. Retained history is bounded
// by Retention (count and age), with Pin exempting versions a consumer
// wants addressable indefinitely.
type Registry struct {
	nodes int // NUMA nodes to pin shards across (>=1)

	mu        sync.RWMutex
	latest    map[string]*Model
	versions  map[string][]*Model
	pins      map[string]map[int]bool
	retention Retention
	nextNode  int
	onPublish []func(*Model)
}

// NewRegistry builds a registry that pins model shards round-robin
// across the given number of simulated NUMA nodes (values < 1 are
// treated as 1), with the default retention (8 versions, no age bound).
func NewRegistry(nodes int) *Registry {
	if nodes < 1 {
		nodes = 1
	}
	return &Registry{
		nodes:    nodes,
		latest:   map[string]*Model{},
		versions: map[string][]*Model{},
		pins:     map[string]map[int]bool{},
	}
}

// SetRetention replaces the retention policy and immediately applies it
// to every model.
func (r *Registry) SetRetention(p Retention) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retention = p
	now := time.Now()
	for name := range r.versions {
		r.evictLocked(name, now)
	}
}

// newModelOf builds the immutable snapshot for a publish at element
// type T. A float64 publish stores the clone canonically (Elem 8, the
// float32 mirror stays lazy). A float32 publish keeps the 4-byte clone
// as the canonical payload (Elem 4, mirror pre-built with the published
// bits) and eagerly widens a float64 Centroids view so every
// precision-independent consumer — K/Dims, JSON listings, float64
// batchers, the shard splitter — keeps working unchanged.
func newModelOf[T blas.Float](name string, centroids *matrix.Mat[T]) *Model {
	cl := centroids.Clone()
	m := &Model{Name: name, PublishedAt: time.Now(), Elem: blas.ElemBytes[T]()}
	if c32, ok := any(cl).(*matrix.Mat[float32]); ok {
		n32 := make([]float32, c32.Rows())
		blas.RowNormsSq(c32.Data, c32.Rows(), c32.Cols(), n32)
		m.mirrorOnce.Do(func() { m.c32, m.n32 = c32, n32 })
		m.Centroids = matrix.Convert[float64](c32)
	} else {
		m.Centroids = any(cl).(*matrix.Dense)
	}
	m.NormsSq = make([]float64, m.Centroids.Rows())
	blas.RowNormsSq(m.Centroids.Data, m.Centroids.Rows(), m.Centroids.Cols(), m.NormsSq)
	return m
}

// add installs a fully built snapshot under the registry lock. A
// restore (version > 0) keeps the explicit version/node and must land
// after the current latest; a publish (version == 0) increments the
// latest version and inherits (or round-robin-assigns) the node pin.
func (r *Registry) add(m *Model, version, node int) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, exists := r.latest[m.Name]
	if exists && prev.Dims() != m.Dims() {
		return nil, fmt.Errorf("serve: model %q dims changed %d -> %d", m.Name, prev.Dims(), m.Dims())
	}
	switch {
	case version > 0:
		if exists && version <= prev.Version {
			return nil, fmt.Errorf("serve: model %q restore version %d not after latest %d",
				m.Name, version, prev.Version)
		}
		m.Version, m.Node = version, node
	case exists:
		m.Version, m.Node = prev.Version+1, prev.Node
	default:
		m.Version = 1
		m.Node = r.nextNode % r.nodes
		r.nextNode++
	}
	r.latest[m.Name] = m
	r.versions[m.Name] = append(r.versions[m.Name], m)
	r.evictLocked(m.Name, m.PublishedAt)
	telPublishes.Inc()
	telemetry.Log("serve", telemetry.SevInfo, "model published",
		telemetry.F("model", m.Name), telemetry.F("version", m.Version),
		telemetry.F("k", m.K()), telemetry.F("d", m.Dims()), telemetry.F("node", m.Node))
	for _, fn := range r.onPublish {
		fn(m)
	}
	return m, nil
}

// Publish clones centroids into a new immutable version of the named
// model and returns the snapshot. The first publish of a name pins the
// model to a NUMA node; later versions inherit the pin so a serving
// shard never migrates mid-flight. Publishing also applies retention to
// the model's history.
func (r *Registry) Publish(name string, centroids *matrix.Dense) (*Model, error) {
	return PublishOf(r, name, centroids)
}

// PublishOf is Publish at an explicit element type: a float32 publish
// keeps the 4-byte payload canonical (Model.Elem == 4) so snapshots and
// shard re-spreads move half the bytes; a float64 publish is exactly
// Publish.
func PublishOf[T blas.Float](r *Registry, name string, centroids *matrix.Mat[T]) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	if centroids == nil || centroids.Rows() == 0 || centroids.Cols() == 0 {
		return nil, fmt.Errorf("serve: model %q published with no centroids", name)
	}
	return r.add(newModelOf(name, centroids), 0, 0)
}

// OnPublish registers fn to run after every successful Publish or
// Restore, while the registry lock is held — hooks therefore observe
// publishes in version order, which the sharded serving layer and the
// persistence layer both rely on. fn must not call back into the
// registry (deadlock) and should be quick; heavy work belongs on the
// hook's own goroutine.
func (r *Registry) OnPublish(fn func(*Model)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onPublish = append(r.onPublish, fn)
}

// Restore republishes a snapshot with an explicit version and node —
// the persistence loader's and shard mirror's entry point, where
// version numbers must survive a restart (Publish would restart them
// at 1). The version must be greater than the model's current latest;
// stale restores are rejected so a mirror replaying a mix of history
// and live publishes converges on the newest snapshot.
func (r *Registry) Restore(name string, version, node int, centroids *matrix.Dense) (*Model, error) {
	return RestoreOf(r, name, version, node, centroids)
}

// RestoreOf is Restore at an explicit element type, preserving 4-byte
// payloads through snapshot reloads and shard mirrors the same way
// PublishOf does through publishes.
func RestoreOf[T blas.Float](r *Registry, name string, version, node int, centroids *matrix.Mat[T]) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	if version < 1 {
		return nil, fmt.Errorf("serve: model %q restored with version %d", name, version)
	}
	if centroids == nil || centroids.Rows() == 0 || centroids.Cols() == 0 {
		return nil, fmt.Errorf("serve: model %q restored with no centroids", name)
	}
	return r.add(newModelOf(name, centroids), version, node)
}

// evictLocked applies the retention policy to one model's history:
// age-expired unpinned versions go first, then the oldest unpinned
// versions beyond the count bound. The latest version never goes.
// Returns the number of versions evicted. Caller holds r.mu.
func (r *Registry) evictLocked(name string, now time.Time) int {
	vs := r.versions[name]
	if len(vs) == 0 {
		return 0
	}
	latest := r.latest[name]
	pins := r.pins[name]
	maxV := r.retention.MaxVersions
	if maxV <= 0 {
		maxV = maxVersions
	}
	evicted := 0
	kept := make([]*Model, 0, len(vs))
	unpinned := 0
	for _, m := range vs {
		if m != latest && !pins[m.Version] &&
			r.retention.MaxAge > 0 && now.Sub(m.PublishedAt) > r.retention.MaxAge {
			evicted++
			continue
		}
		kept = append(kept, m)
		if !pins[m.Version] {
			unpinned++
		}
	}
	// The count bound budgets unpinned versions only (pins are kept on
	// top of it), so pinning history never crowds out recent versions.
	if over := unpinned - maxV; over > 0 {
		// Versions are appended in publish order: the front is oldest.
		trimmed := kept[:0]
		for _, m := range kept {
			if over > 0 && m != latest && !pins[m.Version] {
				over--
				evicted++
				continue
			}
			trimmed = append(trimmed, m)
		}
		kept = trimmed
	}
	r.versions[name] = kept
	if evicted > 0 {
		telEvictions.Add(uint64(evicted))
	}
	return evicted
}

// EvictExpired applies the age bound across every model as of now,
// returning how many versions were evicted. Exposed so servers can
// sweep on a timer (publish-driven eviction alone never ages out a
// model that stopped publishing).
func (r *Registry) EvictExpired(now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.versions {
		n += r.evictLocked(name, now)
	}
	return n
}

// Pin marks a retained version as exempt from eviction (for consumers
// holding long-lived references they want re-addressable by version).
func (r *Registry) Pin(name string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.versions[name] {
		if m.Version == version {
			if r.pins[name] == nil {
				r.pins[name] = map[int]bool{}
			}
			r.pins[name][version] = true
			return nil
		}
	}
	return fmt.Errorf("serve: model %q has no retained version %d", name, version)
}

// Unpin removes a pin; the version becomes evictable again on the next
// publish or sweep.
func (r *Registry) Unpin(name string, version int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pins[name], version)
}

// Get returns the latest version of the named model.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.latest[name]
	return m, ok
}

// GetVersion returns a specific published version (1-based). Only
// retained snapshots are addressable; evicted ones report not found.
func (r *Registry) GetVersion(name string, version int) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.versions[name] {
		if m.Version == version {
			return m, true
		}
	}
	return nil, false
}

// RetainedVersions lists the retained version numbers of a model in
// publish order.
func (r *Registry) RetainedVersions(name string) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, len(r.versions[name]))
	for i, m := range r.versions[name] {
		out[i] = m.Version
	}
	return out
}

// List returns the latest snapshot of every model, sorted by name.
func (r *Registry) List() []*Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Model, 0, len(r.latest))
	for _, m := range r.latest {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Drop removes all versions of a model (and its pins). Snapshots
// already handed out stay valid (they are immutable); only the registry
// forgets them.
func (r *Registry) Drop(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.latest, name)
	delete(r.versions, name)
	delete(r.pins, name)
}
