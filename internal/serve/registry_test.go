package serve

import (
	"testing"

	"knor/internal/matrix"
)

func mustPublish(t *testing.T, r *Registry, name string, rows [][]float64) *Model {
	t.Helper()
	c, err := matrix.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Publish(name, c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryVersioningAndCOW(t *testing.T) {
	r := NewRegistry(4)
	src, _ := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	v1, err := r.Publish("m", src)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 {
		t.Fatalf("first publish version = %d", v1.Version)
	}
	// Mutating the source after publish must not leak into the snapshot.
	src.Set(0, 0, 99)
	if got := v1.Centroids.At(0, 0); got != 1 {
		t.Fatalf("snapshot aliased the publisher's matrix: got %v", got)
	}
	v2 := mustPublish(t, r, "m", [][]float64{{2, 0}, {0, 2}})
	if v2.Version != 2 {
		t.Fatalf("second publish version = %d", v2.Version)
	}
	if v2.Node != v1.Node {
		t.Fatalf("republish moved the shard: node %d -> %d", v1.Node, v2.Node)
	}
	// v1 stays readable and intact.
	old, ok := r.GetVersion("m", 1)
	if !ok || old.Centroids.At(0, 0) != 1 {
		t.Fatalf("version 1 lost or mutated: ok=%v", ok)
	}
	latest, ok := r.Get("m")
	if !ok || latest.Version != 2 {
		t.Fatalf("latest = %+v ok=%v", latest, ok)
	}
	// Norms cache matches ‖c‖².
	if latest.NormsSq[0] != 4 || latest.NormsSq[1] != 4 {
		t.Fatalf("norms cache wrong: %v", latest.NormsSq)
	}
}

func TestRegistryPinsShardsRoundRobin(t *testing.T) {
	r := NewRegistry(3)
	nodes := map[int]int{}
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		m := mustPublish(t, r, name, [][]float64{{1, 2}})
		nodes[m.Node]++
	}
	for n := 0; n < 3; n++ {
		if nodes[n] != 2 {
			t.Fatalf("node %d holds %d shards, want 2 (map %v)", n, nodes[n], nodes)
		}
	}
}

func TestRegistryRejectsBadPublishes(t *testing.T) {
	r := NewRegistry(1)
	if _, err := r.Publish("", matrix.NewDense(1, 1)); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := r.Publish("m", nil); err == nil {
		t.Fatal("nil centroids accepted")
	}
	mustPublish(t, r, "m", [][]float64{{1, 2}})
	if _, err := r.Publish("m", matrix.NewDense(1, 3)); err == nil {
		t.Fatal("dims change accepted")
	}
}

func TestRegistryHistoryBounded(t *testing.T) {
	r := NewRegistry(2)
	c, _ := matrix.FromRows([][]float64{{1, 2}})
	for i := 0; i < maxVersions+5; i++ {
		if _, err := r.Publish("m", c); err != nil {
			t.Fatal(err)
		}
	}
	latest, _ := r.Get("m")
	if latest.Version != maxVersions+5 {
		t.Fatalf("latest version = %d", latest.Version)
	}
	// Oldest retained is latest-maxVersions+1; anything older is gone.
	if _, ok := r.GetVersion("m", latest.Version-maxVersions+1); !ok {
		t.Fatal("newest retained version missing")
	}
	if _, ok := r.GetVersion("m", latest.Version-maxVersions); ok {
		t.Fatal("history not trimmed")
	}
	if len(r.versions["m"]) != maxVersions {
		t.Fatalf("retained %d versions", len(r.versions["m"]))
	}
}

func TestRegistryDrop(t *testing.T) {
	r := NewRegistry(2)
	snap := mustPublish(t, r, "m", [][]float64{{1, 2}})
	r.Drop("m")
	if _, ok := r.Get("m"); ok {
		t.Fatal("model survived Drop")
	}
	if len(r.List()) != 0 {
		t.Fatal("List non-empty after Drop")
	}
	// Handed-out snapshots stay valid.
	if snap.Centroids.At(0, 1) != 2 {
		t.Fatal("snapshot invalidated by Drop")
	}
}
