package serve

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"knor/internal/matrix"
)

func testCentroids(k, d int, base float64) *matrix.Dense {
	c := matrix.NewDense(k, d)
	for i := range c.Data {
		c.Data[i] = base + float64(i)*0.25
	}
	return c
}

// TestRegistryPersistRoundTrip: save a registry with multi-version
// models, load it back, and check the latest snapshots come back with
// version numbers, node pins and centroid bits intact.
func TestRegistryPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")

	r := NewRegistry(4)
	if _, err := r.Publish("a", testCentroids(3, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("a", testCentroids(3, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("b", testCentroids(5, 7, 20)); err != nil {
		t.Fatal(err)
	}
	if err := SaveRegistry(r, path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadRegistry(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("LoadRegistry returned nil for an existing file")
	}
	for _, name := range []string{"a", "b"} {
		want, _ := r.Get(name)
		m, ok := got.Get(name)
		if !ok {
			t.Fatalf("model %q lost in round trip", name)
		}
		if m.Version != want.Version || m.Node != want.Node {
			t.Errorf("model %q: version/node %d/%d, want %d/%d",
				name, m.Version, m.Node, want.Version, want.Node)
		}
		if !m.Centroids.Equal(want.Centroids, 0) {
			t.Errorf("model %q centroids differ after round trip", name)
		}
		if len(m.NormsSq) != m.K() {
			t.Errorf("model %q norms not rebuilt", name)
		}
	}

	// Versions keep moving forward after a reload — a restarted server
	// must never hand out a version the old one already used.
	m, err := got.Publish("a", testCentroids(3, 2, 30))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 {
		t.Errorf("post-reload publish version %d, want 3", m.Version)
	}
}

func TestLoadRegistryMissingFile(t *testing.T) {
	r, err := LoadRegistry(filepath.Join(t.TempDir(), "absent.json"), 2)
	if err != nil {
		t.Fatalf("missing state file should be a clean first boot, got %v", err)
	}
	if r != nil {
		t.Fatal("missing state file returned a registry")
	}
}

func TestLoadRegistryCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(path, 2); err == nil {
		t.Error("corrupt state file loaded without error")
	}
	if err := os.WriteFile(path, []byte(`{"models":[{"name":"x","version":1,"rows":2,"cols":2,"data":[1]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(path, 2); err == nil {
		t.Error("shape-mismatched state file loaded without error")
	}
}

// TestRegistryRestore covers the loader's entry point directly:
// explicit versions, monotonicity, dims checks.
func TestRegistryRestore(t *testing.T) {
	r := NewRegistry(2)
	if _, err := r.Restore("m", 5, 1, testCentroids(2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	m, _ := r.Get("m")
	if m.Version != 5 || m.Node != 1 {
		t.Fatalf("restored version/node %d/%d", m.Version, m.Node)
	}
	if _, err := r.Restore("m", 5, 1, testCentroids(2, 3, 1)); err == nil {
		t.Error("stale restore accepted")
	}
	if _, err := r.Restore("m", 6, 1, testCentroids(2, 4, 1)); err == nil {
		t.Error("dims change accepted")
	}
	if _, err := r.Restore("m", 0, 1, testCentroids(2, 3, 1)); err == nil {
		t.Error("version 0 accepted")
	}
	if _, err := r.Restore("", 1, 0, testCentroids(2, 3, 1)); err == nil {
		t.Error("empty name accepted")
	}
	// Publish continues from the restored version.
	p, err := r.Publish("m", testCentroids(2, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != 6 {
		t.Errorf("publish after restore: version %d, want 6", p.Version)
	}
}

// TestPersistElem4RoundTrip: a float32-published model keeps its
// 4-byte payload on disk (base64 data32, no float64 data array) and
// reloads with Elem, version and payload bits intact.
func TestPersistElem4RoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")

	r := NewRegistry(2)
	c := matrix.New[float32](4, 3)
	for i := range c.Data {
		c.Data[i] = float32(i)*0.125 + 0.3
	}
	if _, err := PublishOf(r, "f32", c); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("f64", testCentroids(4, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := SaveRegistry(r, path); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pf persistedRegistry
	if err := json.Unmarshal(raw, &pf); err != nil {
		t.Fatal(err)
	}
	for _, pm := range pf.Models {
		switch pm.Name {
		case "f32":
			if pm.Elem != 4 || pm.Data32 == "" || pm.Data != nil {
				t.Fatalf("f32 persisted as elem=%d data32=%q data=%v", pm.Elem, pm.Data32, pm.Data)
			}
		case "f64":
			if pm.Elem != 8 || pm.Data32 != "" || len(pm.Data) != 12 {
				t.Fatalf("f64 persisted as elem=%d data32=%q len(data)=%d", pm.Elem, pm.Data32, len(pm.Data))
			}
		}
	}

	got, err := LoadRegistry(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got.Get("f32")
	if !ok {
		t.Fatal("f32 model lost in round trip")
	}
	if m.Elem != 4 {
		t.Fatalf("reloaded elem %d, want 4", m.Elem)
	}
	p32 := m.Payload32()
	if p32 == nil {
		t.Fatal("reloaded elem=4 model has no float32 payload")
	}
	for i := range c.Data {
		if math.Float32bits(p32.Data[i]) != math.Float32bits(c.Data[i]) {
			t.Fatalf("payload bit %d: %v vs %v", i, p32.Data[i], c.Data[i])
		}
	}
	if m64, _ := got.Get("f64"); m64.Elem != 8 || m64.Payload32() != nil {
		t.Fatal("f64 model grew a float32 payload in round trip")
	}

	// Truncated data32 payload is a load error, not a panic.
	bad := []byte(`{"models":[{"name":"x","version":1,"rows":2,"cols":2,"elem":4,"data32":"AAAA"}]}`)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(path, 2); err == nil {
		t.Error("truncated float32 payload loaded without error")
	}
}

// TestStreamStatePersistRoundTrip: the resume-after-restart contract.
// An engine checkpointed mid-stream, persisted with SaveState, loaded
// with LoadState and resumed must fold the remaining batches to
// bit-identical centroids with an engine that never stopped — counts
// drive the mini-batch learning rate, so they must survive exactly.
func TestStreamStatePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")

	batch := func(base float64) *matrix.Dense {
		b := matrix.NewDense(8, 3)
		for i := range b.Data {
			b.Data[i] = base + float64(i%5)*0.5
		}
		return b
	}

	// Uninterrupted oracle: seed, fold two batches.
	oreg := NewRegistry(1)
	oracle, err := NewStreamEngine("m", testCentroids(4, 3, 0), oreg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Observe(batch(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Observe(batch(2)); err != nil {
		t.Fatal(err)
	}

	// Restarted path: fold batch 1, persist, reload, resume, fold batch 2.
	reg := NewRegistry(1)
	eng, err := NewStreamEngine("m", testCentroids(4, 3, 0), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Observe(batch(1)); err != nil {
		t.Fatal(err)
	}
	if err := SaveState(reg, []StreamCheckpoint{eng.Checkpoint()}, path); err != nil {
		t.Fatal(err)
	}

	reg2, cps, err := LoadState(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 || cps[0].Model != "m" {
		t.Fatalf("loaded %d checkpoints: %+v", len(cps), cps)
	}
	if cps[0].Seen != 8 || cps[0].Published != 1 {
		t.Fatalf("checkpoint carries seen=%d published=%d", cps[0].Seen, cps[0].Published)
	}
	resumed, err := ResumeStreamEngine(cps[0], reg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Observe(batch(2)); err != nil {
		t.Fatal(err)
	}

	want, got := oracle.Centroids(), resumed.Centroids()
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("element %d differs after resume: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	if resumed.Seen() != oracle.Seen() {
		t.Fatalf("seen %d vs %d", resumed.Seen(), oracle.Seen())
	}
	// Publishing from the resumed engine continues the version sequence.
	snap, err := resumed.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 {
		t.Fatalf("resumed publish landed at version %d, want 2", snap.Version)
	}
}

// TestLoadStatePreStreamFile: files written before stream checkpoints
// existed load with models intact and no checkpoints.
func TestLoadStatePreStreamFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	r := NewRegistry(1)
	if _, err := r.Publish("a", testCentroids(3, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := SaveRegistry(r, path); err != nil {
		t.Fatal(err)
	}
	r2, cps, err := LoadState(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cps != nil {
		t.Fatalf("unexpected checkpoints: %+v", cps)
	}
	if _, ok := r2.Get("a"); !ok {
		t.Fatal("model missing after load")
	}
}

// TestLoadStateRejectsMalformedStream: a stream block whose shape
// lies is rejected loudly, not resumed half-right.
func TestLoadStateRejectsMalformedStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	blob := `{"models":[{"name":"a","version":1,"rows":1,"cols":1,"data":[1]}],` +
		`"streams":[{"model":"a","rows":2,"cols":2,"counts":[1],"data":[1,2,3]}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadState(path, 1); err == nil {
		t.Fatal("malformed stream block should fail the load")
	}
}
