package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"knor/internal/matrix"
)

// TestBatcherModelQuota parks a request behind a long MaxWait and
// checks backpressure: the next request for the same model fails fast
// with ErrOverloaded, other models are unaffected, and the quota
// releases once the parked request is answered.
func TestBatcherModelQuota(t *testing.T) {
	reg := NewRegistry(1)
	cents := matrix.NewDense(3, 2)
	for i := range cents.Data {
		cents.Data[i] = float64(i)
	}
	if _, err := reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("other", cents); err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(reg, BatcherOptions{MaxWait: time.Minute, ModelQuota: 1})
	defer b.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.AssignBatch("m", matrix.NewDense(1, 2)); err != nil {
			t.Errorf("parked request failed: %v", err)
		}
	}()
	for deadline := time.Now().Add(5 * time.Second); b.Stats().Queued == 0; {
		if time.Now().After(deadline) {
			t.Fatal("parked request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := b.AssignBatch("m", matrix.NewDense(1, 2)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if st := b.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", st.Rejected)
	}

	// A different model still gets in (its own quota budget).
	otherDone := make(chan error, 1)
	go func() {
		_, err := b.AssignBatch("other", matrix.NewDense(1, 2))
		otherDone <- err
	}()
	deadline := time.After(10 * time.Second)
	for {
		b.Flush()
		select {
		case err := <-otherDone:
			if err != nil {
				t.Fatalf("other model rejected: %v", err)
			}
		case <-deadline:
			t.Fatal("other model never answered")
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	wg.Wait()

	// Quota released after the answer: m accepts again (and Flush
	// drains it without waiting out MaxWait).
	redo := make(chan error, 1)
	go func() {
		_, err := b.AssignBatch("m", matrix.NewDense(1, 2))
		redo <- err
	}()
	deadline = time.After(10 * time.Second)
	for {
		b.Flush()
		select {
		case err := <-redo:
			if err != nil {
				t.Fatalf("post-drain request failed: %v", err)
			}
		case <-deadline:
			t.Fatal("post-drain request never answered")
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	if st := b.Stats(); st.Requests != 3 {
		t.Errorf("requests counter %d, want 3", st.Requests)
	}
}

// TestBatcherQuotaUnlimited: the zero value imposes no bound.
func TestBatcherQuotaUnlimited(t *testing.T) {
	reg := NewRegistry(1)
	cents := matrix.NewDense(2, 2)
	cents.Data = []float64{0, 0, 1, 1}
	if _, err := reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(reg, BatcherOptions{MaxWait: time.Microsecond})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.AssignBatch("m", matrix.NewDense(4, 2)); err != nil {
				t.Errorf("unlimited batcher rejected: %v", err)
			}
		}()
	}
	wg.Wait()
	if st := b.Stats(); st.Rejected != 0 {
		t.Errorf("rejected %d requests with no quota", st.Rejected)
	}
}
