package serve

import (
	"math"
	"math/rand"
	"testing"

	"knor/internal/matrix"
	"knor/internal/workload"
)

// quantFixture publishes a float32 model and returns float32 queries.
// The centroid set is deliberately hostile to the quantized path:
// duplicate rows (bitwise ties the re-rank must break by lowest
// index), near-duplicates within quantization error of each other, a
// zero row, and one row with a huge-magnitude outlier coordinate (its
// int8 scale crushes every other coordinate to a couple of levels).
func quantFixture(t *testing.T, seed int64) (*Registry, *matrix.Mat[float32]) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const k, d = 40, 12
	c := matrix.New[float32](k, d)
	for i := range c.Data {
		c.Data[i] = float32(rng.NormFloat64())
	}
	copy(c.Data[5*d:6*d], c.Data[2*d:3*d]) // exact duplicate of row 2
	copy(c.Data[9*d:10*d], c.Data[2*d:3*d])
	for p := 0; p < d; p++ { // near-duplicate: far inside the int8 error bound
		c.Data[11*d+p] = c.Data[2*d+p] + 1e-6
	}
	clear(c.Data[17*d : 18*d]) // zero row: scale falls back to 1
	c.Data[23*d+3] = 400       // outlier coordinate
	reg := NewRegistry(2)
	if _, err := PublishOf(reg, "m", c); err != nil {
		t.Fatal(err)
	}
	q64 := workload.Generate(workload.Spec{
		Kind: workload.UniformMultivariate, N: 300, D: d, Seed: seed + 1,
	})
	q := matrix.Convert[float32](q64)
	// Aim some queries straight at the tied/near-tied centroids so the
	// tie-break actually fires, plus one bitwise-exact hit on row 2.
	for i := 0; i < 40; i++ {
		for p := 0; p < d; p++ {
			q.Data[i*d+p] = c.Data[2*d+p] + float32(rng.NormFloat64())*1e-3
		}
	}
	copy(q.Data[:d], c.Data[2*d:3*d])
	return reg, q
}

// assertSame fails unless the two answer sets are bit-identical:
// same cluster (so same tie-break) and same SqDist bits.
func assertSame(t *testing.T, got, want []Assignment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Cluster != want[i].Cluster {
			t.Fatalf("row %d: cluster %d vs %d", i, got[i].Cluster, want[i].Cluster)
		}
		if math.Float64bits(got[i].SqDist) != math.Float64bits(want[i].SqDist) {
			t.Fatalf("row %d: sqdist %v vs %v", i, got[i].SqDist, want[i].SqDist)
		}
		if got[i].Version != want[i].Version {
			t.Fatalf("row %d: version %d vs %d", i, got[i].Version, want[i].Version)
		}
	}
}

// TestQuantAssignBitIdenticalToExact: the int8 scan + exact re-rank
// must reproduce the exact float32 path bit-for-bit, duplicate-centroid
// ties and scale outliers included.
func TestQuantAssignBitIdenticalToExact(t *testing.T) {
	for _, seed := range []int64{3, 7, 11} {
		reg, q := quantFixture(t, seed)
		exact := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 512})
		quant := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 512, Quantize: "int8"})
		want, err := exact.AssignBatch("m", q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := quant.AssignBatch("m", q)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, got, want)
		exact.Close()
		quant.Close()
	}
}

// TestQuantRerankFallback forces the re-rank cap below the candidate
// count (three bitwise-tied centroids plus a near-duplicate guarantee
// ≥4 candidates for queries aimed at them) and checks the full-scan
// fallback both fires (telemetry) and still answers bit-identically.
func TestQuantRerankFallback(t *testing.T) {
	reg, q := quantFixture(t, 5)
	exact := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 512})
	defer exact.Close()
	quant := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 512, Quantize: "int8", QuantRerank: 2})
	defer quant.Close()

	before := telQuantFallbacks.Load()
	want, err := exact.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := quant.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want)
	if telQuantFallbacks.Load() == before {
		t.Fatal("rerank cap 2 never overflowed on tied centroids")
	}
}

// TestQuantRawSqDist checks the quantized path honors RawSqDist (no
// zero clamp) identically to the exact path.
func TestQuantRawSqDist(t *testing.T) {
	reg, q := quantFixture(t, 9)
	exact := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 512, RawSqDist: true})
	defer exact.Close()
	quant := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 512, Quantize: "int8", RawSqDist: true})
	defer quant.Close()
	want, err := exact.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := quant.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want)
}

// TestQuantIgnoredOnFloat64 checks a float64 batcher with Quantize set
// silently serves the exact path (the option is float32-only).
func TestQuantIgnoredOnFloat64(t *testing.T) {
	reg := NewRegistry(1)
	cents := workload.Generate(workload.Spec{
		Kind: workload.UniformMultivariate, N: 10, D: 6, Seed: 1,
	})
	if _, err := reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	q := workload.Generate(workload.Spec{
		Kind: workload.UniformMultivariate, N: 50, D: 6, Seed: 2,
	})
	exact := NewBatcher(reg, BatcherOptions{MaxBatch: 64})
	defer exact.Close()
	quant := NewBatcher(reg, BatcherOptions{MaxBatch: 64, Quantize: "int8"})
	defer quant.Close()
	want, err := exact.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := quant.AssignBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want)
}
