package serve

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"knor/internal/matrix"
)

// Snapshot persistence: the registry's latest snapshot per model,
// serialised to one JSON file so a restarted server reloads its models
// with their version numbers intact (knorserve -state). Only the
// latest version of each model is saved — history and pins are
// serving-time conveniences, not durable state — and writes go through
// a temp file + rename so a crash mid-save never corrupts the previous
// state file.
//
// Elem == 4 models keep their 4-byte payload on disk too: the float32
// data rides as base64 little-endian (data32), half the state-file
// payload bytes and, via RestoreOf[float32], bit-exactly the published
// payload after a reload. Files written before the elem field existed
// load as float64 (elem 0 ⇒ 8).

// persistedModel is one model's latest snapshot on disk.
type persistedModel struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Node    int    `json:"node"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	// Elem is the payload element width: 8 (or 0, pre-elem files) means
	// Data carries float64; 4 means Data32 carries base64 float32.
	Elem   int       `json:"elem,omitempty"`
	Data   []float64 `json:"data,omitempty"`   // row-major centroids, rows×cols
	Data32 string    `json:"data32,omitempty"` // base64 of little-endian float32, rows×cols
}

// persistedStream is one model's stream-updater checkpoint on disk:
// the unpublished mini-batch state (per-centroid fold counts drive the
// learning rate, so persisting them means a resumed engine folds the
// next batch with exactly the step sizes an uninterrupted one would).
type persistedStream struct {
	Model     string    `json:"model"`
	Seen      int64     `json:"seen"`
	Published int       `json:"published"`
	Counts    []int64   `json:"counts"`
	Rows      int       `json:"rows"`
	Cols      int       `json:"cols"`
	Data      []float64 `json:"data"` // unpublished centroids, row-major
}

// persistedRegistry is the state file's schema. Streams is absent in
// files written before stream checkpoints were persisted; those load
// with no checkpoints (the server falls back to seeding updaters from
// the published centroids).
type persistedRegistry struct {
	Models  []persistedModel  `json:"models"`
	Streams []persistedStream `json:"streams,omitempty"`
}

// encodeF32 packs a float32 slice as base64 little-endian bytes.
func encodeF32(data []float32) string {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeF32 is encodeF32's inverse; n is the expected element count.
func decodeF32(s string, n int) ([]float32, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf) != 4*n {
		return nil, fmt.Errorf("payload is %d bytes, want %d", len(buf), 4*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}

// SaveRegistry writes the latest snapshot of every model to path,
// atomically (temp file + rename).
func SaveRegistry(r *Registry, path string) error {
	return SaveState(r, nil, path)
}

// SaveState writes the latest snapshot of every model plus the given
// stream-updater checkpoints to path, atomically (temp file + rename).
// A server that persists both resumes not just its published models
// but the exact mini-batch state between publishes — folding is
// deterministic, so a restarted updater fed the remaining batches
// lands bit-identically with one that never stopped.
func SaveState(r *Registry, streams []StreamCheckpoint, path string) error {
	var pf persistedRegistry
	for _, m := range r.List() {
		pm := persistedModel{
			Name: m.Name, Version: m.Version, Node: m.Node,
			Rows: m.K(), Cols: m.Dims(), Elem: m.Elem,
		}
		if p32 := m.Payload32(); p32 != nil {
			pm.Data32 = encodeF32(p32.Data)
		} else {
			pm.Data = m.Centroids.Data
		}
		pf.Models = append(pf.Models, pm)
	}
	for _, cp := range streams {
		if cp.Centroids == nil {
			continue
		}
		pf.Streams = append(pf.Streams, persistedStream{
			Model: cp.Model, Seen: cp.Seen, Published: cp.Published,
			Counts: cp.Counts,
			Rows:   cp.Centroids.Rows(), Cols: cp.Centroids.Cols(),
			Data: cp.Centroids.Data,
		})
	}
	buf, err := json.Marshal(&pf)
	if err != nil {
		return fmt.Errorf("serve: marshal registry state: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".registry-*.json")
	if err != nil {
		return fmt.Errorf("serve: save registry state: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: save registry state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: save registry state: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	telSnapshotSaves.Inc()
	return nil
}

// LoadRegistry rebuilds a registry from a state file written by
// SaveRegistry: every model comes back at its saved version, node pin
// and element width, so clients observing versions across a restart
// never see them go backwards and 4-byte models stay 4-byte. Returns
// (nil, nil) when the file does not exist — a first boot, not an error.
func LoadRegistry(path string, nodes int) (*Registry, error) {
	r, _, err := LoadState(path, nodes)
	return r, err
}

// LoadState rebuilds a registry and the stream checkpoints persisted
// alongside it. Returns (nil, nil, nil) when the file does not exist —
// a first boot, not an error. Files written before stream checkpoints
// existed load with no checkpoints.
func LoadState(path string, nodes int) (*Registry, []StreamCheckpoint, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("serve: load registry state: %w", err)
	}
	var pf persistedRegistry
	if err := json.Unmarshal(buf, &pf); err != nil {
		return nil, nil, fmt.Errorf("serve: parse registry state %s: %w", path, err)
	}
	r := NewRegistry(nodes)
	for _, pm := range pf.Models {
		if pm.Rows <= 0 || pm.Cols <= 0 {
			return nil, nil, fmt.Errorf("serve: registry state %s: model %q claims %dx%d",
				path, pm.Name, pm.Rows, pm.Cols)
		}
		if pm.Elem == 4 {
			data, err := decodeF32(pm.Data32, pm.Rows*pm.Cols)
			if err != nil {
				return nil, nil, fmt.Errorf("serve: registry state %s: model %q: %w", path, pm.Name, err)
			}
			c := &matrix.Mat[float32]{RowsN: pm.Rows, ColsN: pm.Cols, Data: data}
			if _, err := RestoreOf(r, pm.Name, pm.Version, pm.Node, c); err != nil {
				return nil, nil, fmt.Errorf("serve: registry state %s: %w", path, err)
			}
			continue
		}
		if pm.Rows*pm.Cols != len(pm.Data) {
			return nil, nil, fmt.Errorf("serve: registry state %s: model %q claims %dx%d but has %d values",
				path, pm.Name, pm.Rows, pm.Cols, len(pm.Data))
		}
		c := &matrix.Dense{RowsN: pm.Rows, ColsN: pm.Cols, Data: pm.Data}
		if _, err := r.Restore(pm.Name, pm.Version, pm.Node, c); err != nil {
			return nil, nil, fmt.Errorf("serve: registry state %s: %w", path, err)
		}
	}
	var cps []StreamCheckpoint
	for _, ps := range pf.Streams {
		if ps.Rows <= 0 || ps.Cols <= 0 || ps.Rows*ps.Cols != len(ps.Data) || ps.Rows != len(ps.Counts) {
			return nil, nil, fmt.Errorf("serve: registry state %s: stream %q claims %dx%d with %d values, %d counts",
				path, ps.Model, ps.Rows, ps.Cols, len(ps.Data), len(ps.Counts))
		}
		cps = append(cps, StreamCheckpoint{
			Model:     ps.Model,
			Centroids: &matrix.Dense{RowsN: ps.Rows, ColsN: ps.Cols, Data: ps.Data},
			Counts:    ps.Counts,
			Seen:      ps.Seen,
			Published: ps.Published,
		})
	}
	telSnapshotLoads.Inc()
	return r, cps, nil
}
