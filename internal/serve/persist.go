package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"knor/internal/matrix"
)

// Snapshot persistence: the registry's latest snapshot per model,
// serialised to one JSON file so a restarted server reloads its models
// with their version numbers intact (knorserve -state). Only the
// latest version of each model is saved — history and pins are
// serving-time conveniences, not durable state — and writes go through
// a temp file + rename so a crash mid-save never corrupts the previous
// state file.

// persistedModel is one model's latest snapshot on disk.
type persistedModel struct {
	Name    string    `json:"name"`
	Version int       `json:"version"`
	Node    int       `json:"node"`
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Data    []float64 `json:"data"` // row-major centroids, rows×cols
}

// persistedRegistry is the state file's schema.
type persistedRegistry struct {
	Models []persistedModel `json:"models"`
}

// SaveRegistry writes the latest snapshot of every model to path,
// atomically (temp file + rename).
func SaveRegistry(r *Registry, path string) error {
	var pf persistedRegistry
	for _, m := range r.List() {
		pf.Models = append(pf.Models, persistedModel{
			Name: m.Name, Version: m.Version, Node: m.Node,
			Rows: m.K(), Cols: m.Dims(), Data: m.Centroids.Data,
		})
	}
	buf, err := json.Marshal(&pf)
	if err != nil {
		return fmt.Errorf("serve: marshal registry state: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".registry-*.json")
	if err != nil {
		return fmt.Errorf("serve: save registry state: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: save registry state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: save registry state: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	telSnapshotSaves.Inc()
	return nil
}

// LoadRegistry rebuilds a registry from a state file written by
// SaveRegistry: every model comes back at its saved version and node
// pin, so clients observing versions across a restart never see them
// go backwards. Returns (nil, nil) when the file does not exist — a
// first boot, not an error.
func LoadRegistry(path string, nodes int) (*Registry, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: load registry state: %w", err)
	}
	var pf persistedRegistry
	if err := json.Unmarshal(buf, &pf); err != nil {
		return nil, fmt.Errorf("serve: parse registry state %s: %w", path, err)
	}
	r := NewRegistry(nodes)
	for _, pm := range pf.Models {
		if pm.Rows <= 0 || pm.Cols <= 0 || pm.Rows*pm.Cols != len(pm.Data) {
			return nil, fmt.Errorf("serve: registry state %s: model %q claims %dx%d but has %d values",
				path, pm.Name, pm.Rows, pm.Cols, len(pm.Data))
		}
		c := &matrix.Dense{RowsN: pm.Rows, ColsN: pm.Cols, Data: pm.Data}
		if _, err := r.Restore(pm.Name, pm.Version, pm.Node, c); err != nil {
			return nil, fmt.Errorf("serve: registry state %s: %w", path, err)
		}
	}
	telSnapshotLoads.Inc()
	return r, nil
}
