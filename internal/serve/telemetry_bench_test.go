package serve

import (
	"math/rand"
	"testing"

	"knor/internal/matrix"
	"knor/internal/telemetry"
)

// benchBatcher builds a k=100 d=16 model behind a batcher tuned so the
// benchmark goroutine's requests flush immediately — the hot path under
// test is AssignBatch end to end, the loadtest shape per request.
func benchBatcher(b *testing.B) (*Batcher, *matrix.Dense) {
	b.Helper()
	const k, d = 100, 16
	rng := rand.New(rand.NewSource(1))
	cents := matrix.NewDense(k, d)
	for i := range cents.Data {
		cents.Data[i] = rng.NormFloat64()
	}
	reg := NewRegistry(1)
	if _, err := reg.Publish("bench", cents); err != nil {
		b.Fatal(err)
	}
	bat := NewBatcher(reg, BatcherOptions{MaxBatch: 4, MaxWait: 0})
	b.Cleanup(bat.Close)
	rows := matrix.NewDense(4, d)
	for i := range rows.Data {
		rows.Data[i] = rng.NormFloat64()
	}
	return bat, rows
}

// BenchmarkAssignTelemetryEnabled vs ...Disabled measure the
// instrumentation's hot-path cost; EXPERIMENTS.md records the <2%
// acceptance comparison from these plus the HTTP loadtest.
func BenchmarkAssignTelemetryEnabled(b *testing.B) {
	telemetry.SetEnabled(true)
	bat, rows := benchBatcher(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.AssignBatch("bench", rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignTelemetryDisabled(b *testing.B) {
	telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(true)
	bat, rows := benchBatcher(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.AssignBatch("bench", rows); err != nil {
			b.Fatal(err)
		}
	}
}
