package serve

import (
	"fmt"
	"sync"

	"knor/internal/kmeans"
	"knor/internal/matrix"
)

// StreamCheckpoint is the explicit, serialisable state of a
// StreamEngine: everything needed to resume updating a model exactly
// where it left off. Because folding is deterministic, an engine
// resumed from a checkpoint and fed the remaining batches lands
// bit-identically with one that ran uninterrupted.
type StreamCheckpoint struct {
	Model     string
	Centroids *matrix.Dense
	Counts    []int64
	Seen      int64 // total rows folded
	Published int   // publishes issued so far
}

// StreamEngine folds incoming observations into a model with
// mini-batch gradient steps (kmeans.MiniBatchState), forever — the
// update path of the serving layer. It is safe for concurrent Observe
// calls; Publish snapshots the current centroids into the registry
// copy-on-write, so the query path never sees a half-folded batch.
type StreamEngine struct {
	name string
	reg  *Registry // may be nil: engine then only accumulates state

	mu        sync.Mutex
	state     *kmeans.MiniBatchState
	seen      int64
	published int
}

// NewStreamEngine starts an updater for the named model from seed
// centroids (cloned). reg may be nil when the caller only wants the
// learner; with a registry the seed is published immediately as the
// model's first version.
func NewStreamEngine(name string, seed *matrix.Dense, reg *Registry) (*StreamEngine, error) {
	if seed == nil || seed.Rows() == 0 {
		return nil, fmt.Errorf("serve: stream engine needs seed centroids")
	}
	e := &StreamEngine{name: name, reg: reg, state: kmeans.NewMiniBatchState(seed)}
	if reg != nil {
		if _, err := reg.Publish(name, seed); err != nil {
			return nil, err
		}
		e.published = 1
	}
	return e, nil
}

// ResumeStreamEngine rebuilds an engine from a checkpoint. The
// checkpoint's state is cloned, so the caller may keep it.
func ResumeStreamEngine(cp StreamCheckpoint, reg *Registry) (*StreamEngine, error) {
	if cp.Centroids == nil || cp.Centroids.Rows() != len(cp.Counts) {
		return nil, fmt.Errorf("serve: malformed stream checkpoint for %q", cp.Model)
	}
	st := &kmeans.MiniBatchState{
		Centroids: cp.Centroids.Clone(),
		Counts:    append([]int64(nil), cp.Counts...),
	}
	return &StreamEngine{
		name: cp.Model, reg: reg, state: st,
		seen: cp.Seen, published: cp.Published,
	}, nil
}

// Name returns the model name the engine updates.
func (e *StreamEngine) Name() string { return e.name }

// Observe folds every row of batch into the model in order and returns
// the total centroid drift the batch caused.
func (e *StreamEngine) Observe(batch *matrix.Dense) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	drift, err := e.state.FoldMatrix(batch)
	if err != nil {
		return 0, err
	}
	e.seen += int64(batch.Rows())
	return drift, nil
}

// Seen returns the total number of rows folded so far.
func (e *StreamEngine) Seen() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seen
}

// Centroids returns a copy of the current (unpublished) centroids.
func (e *StreamEngine) Centroids() *matrix.Dense {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state.Centroids.Clone()
}

// Publish snapshots the current centroids into the registry as a new
// version of the model and returns the snapshot.
func (e *StreamEngine) Publish() (*Model, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reg == nil {
		return nil, fmt.Errorf("serve: stream engine %q has no registry", e.name)
	}
	m, err := e.reg.Publish(e.name, e.state.Centroids)
	if err != nil {
		return nil, err
	}
	e.published++
	return m, nil
}

// Checkpoint captures the engine's full state (deep copy).
func (e *StreamEngine) Checkpoint() StreamCheckpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	return StreamCheckpoint{
		Model:     e.name,
		Centroids: e.state.Centroids.Clone(),
		Counts:    append([]int64(nil), e.state.Counts...),
		Seen:      e.seen,
		Published: e.published,
	}
}
