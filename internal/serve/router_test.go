package serve

import (
	"testing"

	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
)

func routerFixture(t *testing.T, models int) (*Registry, []Request) {
	t.Helper()
	reg := NewRegistry(4)
	k, d := 32, 16
	for i := 0; i < models; i++ {
		c := matrix.NewDense(k, d)
		for j := range c.Data {
			c.Data[j] = float64(i + j)
		}
		if _, err := reg.Publish(modelName(i), c); err != nil {
			t.Fatal(err)
		}
	}
	var reqs []Request
	for i := 0; i < 400; i++ {
		reqs = append(reqs, Request{Model: modelName(i % models), Rows: 64})
	}
	return reg, reqs
}

func modelName(i int) string { return string(rune('a' + i)) }

func TestSimulateServeServesEveryRequest(t *testing.T) {
	reg, reqs := routerFixture(t, 4)
	st, err := SimulateServe(reg, reqs, RouterConfig{
		Topo:      numa.Topology{Nodes: 4, CoresPerNode: 2},
		Workers:   8,
		Sched:     sched.NUMAAware,
		Placement: numa.PlacePartitioned,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range st.PerWorker {
		total += n
	}
	if total != len(reqs) {
		t.Fatalf("served %d of %d requests", total, len(reqs))
	}
	if st.Throughput <= 0 || st.SimSeconds <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

func TestSimulateServePartitionedBeatsSingleBank(t *testing.T) {
	reg, reqs := routerFixture(t, 4)
	base := RouterConfig{
		Topo:    numa.Topology{Nodes: 4, CoresPerNode: 2},
		Workers: 8,
	}
	good := base
	good.Sched, good.Placement = sched.NUMAAware, numa.PlacePartitioned
	bad := base
	bad.Sched, bad.Placement = sched.FIFO, numa.PlaceSingleBank
	gst, err := SimulateServe(reg, reqs, good)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := SimulateServe(reg, reqs, bad)
	if err != nil {
		t.Fatal(err)
	}
	if gst.Throughput < bst.Throughput {
		t.Fatalf("NUMA-aware partitioned (%.0f req/s) slower than single-bank FIFO (%.0f req/s)",
			gst.Throughput, bst.Throughput)
	}
	// Single-bank placement must show remote traffic from 3 of 4 nodes.
	if bst.RemoteBytes == 0 {
		t.Fatal("single-bank run shows no remote traffic")
	}
}

func TestSimulateServeDeterministic(t *testing.T) {
	reg, reqs := routerFixture(t, 3)
	cfg := RouterConfig{
		Topo:      numa.Topology{Nodes: 2, CoresPerNode: 3},
		Workers:   6,
		Sched:     sched.NUMAAware,
		Placement: numa.PlaceRandom,
		Seed:      5,
	}
	a, err := SimulateServe(reg, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateServe(reg, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimSeconds != b.SimSeconds || a.RemoteBytes != b.RemoteBytes {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestSimulateServeHonorsRegistryPins(t *testing.T) {
	// One model pinned to node 0 by the registry: with UseRegistryPins
	// on a 2-node machine, workers bound to node 1 must pay remote
	// traffic against that pin.
	reg := NewRegistry(2)
	c := matrix.NewDense(16, 8)
	for i := range c.Data {
		c.Data[i] = float64(i)
	}
	if _, err := reg.Publish("only", c); err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("only")
	reqs := make([]Request, 100)
	for i := range reqs {
		reqs[i] = Request{Model: "only", Rows: 32}
	}
	cfg := RouterConfig{
		Topo:            numa.Topology{Nodes: 2, CoresPerNode: 2},
		Workers:         4,
		Sched:           sched.NUMAAware,
		UseRegistryPins: true,
	}
	st, err := SimulateServe(reg, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Node != 0 {
		t.Fatalf("first publish pinned to node %d", m.Node)
	}
	// Workers on node 1 serve some requests remotely against the
	// node-0 pin.
	if st.RemoteBytes == 0 {
		t.Fatal("registry-pinned run shows no remote traffic from the far node")
	}
}

func TestSimulateServeErrors(t *testing.T) {
	reg := NewRegistry(2)
	if _, err := SimulateServe(reg, nil, RouterConfig{}); err == nil {
		t.Fatal("empty registry accepted")
	}
	c := matrix.NewDense(2, 2)
	c.Data = []float64{1, 0, 0, 1}
	if _, err := reg.Publish("m", c); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateServe(reg, []Request{{Model: "ghost", Rows: 1}}, RouterConfig{}); err == nil {
		t.Fatal("unknown model in trace accepted")
	}
}
