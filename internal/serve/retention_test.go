package serve

import (
	"testing"
	"time"

	"knor/internal/matrix"
)

func publishN(t *testing.T, r *Registry, name string, n int) {
	t.Helper()
	c := matrix.NewDense(2, 2)
	for i := 0; i < n; i++ {
		c.Set(0, 0, float64(i))
		if _, err := r.Publish(name, c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRetentionCountBound(t *testing.T) {
	r := NewRegistry(1)
	r.SetRetention(Retention{MaxVersions: 3})
	publishN(t, r, "m", 10)
	vs := r.RetainedVersions("m")
	if len(vs) != 3 {
		t.Fatalf("retained %v, want 3 versions", vs)
	}
	if vs[len(vs)-1] != 10 {
		t.Fatalf("latest retained %d, want 10", vs[len(vs)-1])
	}
	if _, ok := r.GetVersion("m", 7); ok {
		t.Fatal("evicted version still addressable")
	}
	if m, ok := r.Get("m"); !ok || m.Version != 10 {
		t.Fatal("latest lost")
	}
}

func TestRetentionPinSurvivesCountEviction(t *testing.T) {
	r := NewRegistry(1)
	r.SetRetention(Retention{MaxVersions: 2})
	publishN(t, r, "m", 2)
	if err := r.Pin("m", 1); err != nil {
		t.Fatal(err)
	}
	publishN(t, r, "m", 6)
	if _, ok := r.GetVersion("m", 1); !ok {
		t.Fatal("pinned version evicted")
	}
	// Unpinned history beyond the bound is gone.
	if _, ok := r.GetVersion("m", 5); ok {
		t.Fatal("unpinned old version retained")
	}
	// Unpinning makes it evictable on the next publish.
	r.Unpin("m", 1)
	publishN(t, r, "m", 1)
	if _, ok := r.GetVersion("m", 1); ok {
		t.Fatal("unpinned version survived eviction")
	}
}

func TestRetentionAgeEviction(t *testing.T) {
	r := NewRegistry(1)
	r.SetRetention(Retention{MaxVersions: 100, MaxAge: time.Hour})
	publishN(t, r, "m", 5)
	// Age out versions 1-3 (test backdates their publish stamps — the
	// snapshots are ours to mutate only in tests, before sharing).
	for _, v := range []int{1, 2, 3} {
		m, ok := r.GetVersion("m", v)
		if !ok {
			t.Fatalf("version %d missing", v)
		}
		m.PublishedAt = m.PublishedAt.Add(-2 * time.Hour)
	}
	if err := r.Pin("m", 2); err != nil {
		t.Fatal(err)
	}
	if n := r.EvictExpired(time.Now()); n != 2 {
		t.Fatalf("evicted %d, want 2 (versions 1 and 3)", n)
	}
	for v, want := range map[int]bool{1: false, 2: true, 3: false, 4: true, 5: true} {
		if _, ok := r.GetVersion("m", v); ok != want {
			t.Fatalf("version %d retained=%v, want %v", v, ok, want)
		}
	}
}

func TestRetentionNeverEvictsLatest(t *testing.T) {
	r := NewRegistry(1)
	r.SetRetention(Retention{MaxVersions: 1, MaxAge: time.Nanosecond})
	publishN(t, r, "m", 3)
	latest, ok := r.Get("m")
	if !ok {
		t.Fatal("latest missing")
	}
	latest.PublishedAt = latest.PublishedAt.Add(-time.Hour)
	r.EvictExpired(time.Now())
	if m, ok := r.Get("m"); !ok || m.Version != 3 {
		t.Fatal("latest evicted")
	}
	if vs := r.RetainedVersions("m"); len(vs) != 1 || vs[0] != 3 {
		t.Fatalf("retained %v", vs)
	}
}

func TestPinUnknownVersion(t *testing.T) {
	r := NewRegistry(1)
	publishN(t, r, "m", 1)
	if err := r.Pin("m", 9); err == nil {
		t.Fatal("pinned a version that was never published")
	}
	if err := r.Pin("ghost", 1); err == nil {
		t.Fatal("pinned an unknown model")
	}
}

func TestSetRetentionAppliesImmediately(t *testing.T) {
	r := NewRegistry(1)
	publishN(t, r, "m", 8) // default bound keeps all 8
	if got := len(r.RetainedVersions("m")); got != 8 {
		t.Fatalf("precondition: retained %d", got)
	}
	r.SetRetention(Retention{MaxVersions: 2})
	if got := r.RetainedVersions("m"); len(got) != 2 || got[1] != 8 {
		t.Fatalf("after SetRetention: %v", got)
	}
}

func TestDropClearsPins(t *testing.T) {
	r := NewRegistry(1)
	publishN(t, r, "m", 2)
	if err := r.Pin("m", 1); err != nil {
		t.Fatal(err)
	}
	r.Drop("m")
	publishN(t, r, "m", 1)
	if err := r.Pin("m", 2); err == nil {
		t.Fatal("stale pin state after Drop")
	}
}
