package serve

import (
	"math"
	"runtime"
	"testing"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/workload"
)

// well-separated centroids + tight queries: both precisions must agree
// on every cluster choice, and sqdists must match within the float32
// relative-error budget (see internal/kmeans/precision_test.go).
func precisionFixture(t *testing.T) (*Registry, *matrix.Dense) {
	t.Helper()
	reg := NewRegistry(2)
	cents, err := matrix.FromRows([][]float64{
		{0, 0, 0, 0}, {10, 0, 0, 0}, {0, 10, 0, 0}, {0, 0, 10, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("m", cents); err != nil {
		t.Fatal(err)
	}
	queries := workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: 256, D: 4, Clusters: 4, Spread: 0.05, Seed: 3,
	})
	return reg, queries
}

func TestBatcher32MatchesFloat64(t *testing.T) {
	reg, queries := precisionFixture(t)
	b64 := NewBatcher(reg, BatcherOptions{MaxBatch: 64})
	defer b64.Close()
	b32 := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 64})
	defer b32.Close()

	want, err := b64.AssignBatch("m", queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b32.AssignBatch("m", matrix.Convert[float32](queries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Cluster != want[i].Cluster {
			t.Fatalf("row %d: cluster %d vs %d", i, got[i].Cluster, want[i].Cluster)
		}
		if got[i].Version != want[i].Version {
			t.Fatalf("row %d: version %d vs %d", i, got[i].Version, want[i].Version)
		}
		diff := math.Abs(got[i].SqDist - want[i].SqDist)
		den := math.Max(want[i].SqDist, 1)
		if diff/den > 1e-4 {
			t.Fatalf("row %d: sqdist %g vs %g", i, got[i].SqDist, want[i].SqDist)
		}
	}
}

// TestAssignRowsConverts checks the precision-independent entry feeds
// float64 rows through either instantiation.
func TestAssignRowsConverts(t *testing.T) {
	reg, queries := precisionFixture(t)
	for _, p := range []kmeans.Precision{kmeans.Precision64, kmeans.Precision32} {
		a := NewAssigner(reg, BatcherOptions{MaxBatch: 32}, p)
		as, err := a.AssignRows("m", queries)
		if err != nil {
			t.Fatalf("precision %v: %v", p, err)
		}
		if len(as) != queries.Rows() {
			t.Fatalf("precision %v: %d answers", p, len(as))
		}
		st := a.Stats()
		if st.Rows != uint64(queries.Rows()) {
			t.Fatalf("precision %v: stats rows %d", p, st.Rows)
		}
		a.Close()
		if _, err := a.AssignRows("m", queries); err == nil {
			t.Fatalf("precision %v: closed assigner accepted work", p)
		}
	}
}

// TestBatcher32DimMismatch checks the float32 path reports dim errors
// per-request like the float64 path.
func TestBatcher32DimMismatch(t *testing.T) {
	reg, _ := precisionFixture(t)
	b32 := NewBatcherOf[float32](reg, BatcherOptions{MaxBatch: 4})
	defer b32.Close()
	bad := matrix.New[float32](1, 7)
	if _, err := b32.AssignBatch("m", bad); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := b32.AssignBatch("nope", matrix.New[float32](1, 4)); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// benchAssign drives AssignBatch single-caller with a serving-shaped
// model (k=100, d=16) and a 4-row query per request, mirroring the
// loadtest's per-request shape but without HTTP.
func benchAssign[T interface{ float32 | float64 }](b *testing.B, threads int) {
	reg := NewRegistry(1)
	cents := workload.Generate(workload.Spec{
		Kind: workload.UniformMultivariate, N: 100, D: 16, Seed: 1,
	})
	if _, err := reg.Publish("m", cents); err != nil {
		b.Fatal(err)
	}
	queries64 := workload.Generate(workload.Spec{
		Kind: workload.UniformMultivariate, N: 4096, D: 16, Seed: 2,
	})
	queries := matrix.Convert[T](queries64)
	bt := NewBatcherOf[T](reg, BatcherOptions{MaxBatch: 4096, MaxWait: 1, Threads: threads})
	defer bt.Close()
	b.SetBytes(int64(queries.Rows() * queries.RowBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.AssignBatch("m", queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeAssign32 vs BenchmarkServeAssign64: the serving assign
// hot path at both precisions (EXPERIMENTS.md precision section).
func BenchmarkServeAssign32(b *testing.B) { benchAssign[float32](b, runtime.GOMAXPROCS(0)) }

// BenchmarkServeAssign64 is the float64 baseline for the ratio.
func BenchmarkServeAssign64(b *testing.B) { benchAssign[float64](b, runtime.GOMAXPROCS(0)) }
