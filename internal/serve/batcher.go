package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"knor/internal/blas"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/metrics"
	"knor/internal/telemetry"
)

// ErrOverloaded is wrapped by assignment errors rejected for quota:
// the named model already has ModelQuota in-flight requests. Callers
// should back off and retry (the HTTP layer maps it to 429 with a
// Retry-After hint).
var ErrOverloaded = errors.New("serve: model overloaded")

// Assignment is the answer for one query row.
type Assignment struct {
	Cluster int32   // nearest centroid index
	SqDist  float64 // squared distance to it
	Version int     // model version that answered
}

// BatcherOptions tune the assignment path.
type BatcherOptions struct {
	// MaxBatch flushes as soon as this many rows are queued (default
	// 1024).
	MaxBatch int
	// MaxWait flushes a non-empty queue after this long even if
	// MaxBatch was not reached (default 200µs).
	MaxWait time.Duration
	// Threads parallelises the blocked GEMM (default 1).
	Threads int
	// ModelQuota bounds in-flight requests per model (queued or being
	// answered); further AssignBatch calls fail fast with an error
	// wrapping ErrOverloaded instead of growing the queue without
	// bound. 0 means unlimited.
	ModelQuota int
	// RawSqDist reports raw squared distances from the GEMM identity,
	// skipping the clamp of small negative cancellation noise to zero.
	// The sharded fan-out path needs raw values so cross-shard min and
	// tie-break ordering match the single-node scan exactly; the
	// combiner applies the clamp once, after the global min.
	RawSqDist bool
	// Internal marks this batcher as a per-shard stage behind a fan-out
	// edge: it reports the flush/GEMM/queue telemetry (its flushes are
	// real GEMMs) but not the edge instruments (requests, rows,
	// rejections, request latency, in-flight), which the edge owns — so
	// a fanned-out request is never double-counted on /metrics.
	Internal bool
	// Tracer samples request traces at this batcher's edge (nil = no
	// tracing). Ignored when Internal is set: a shard batcher records
	// onto traces injected by the edge instead of sampling its own.
	Tracer *telemetry.Tracer
	// Quantize selects the approximate scan for the float32 assign path:
	// "int8" scans all k centroids with the int8×int8→int32 kernel and
	// re-ranks the margin-surviving candidates exactly, keeping answers
	// bit-identical to the exact path (see quant.go). "" (default) runs
	// the exact GEMM scan. Only the float32 instantiation honours it;
	// float64 batchers ignore the option.
	Quantize string
	// QuantRerank bounds the exact re-rank's candidate set per query row
	// (default 32); rows whose quantization margin leaves more candidates
	// fall back to a full exact scan, counted in
	// knor_serve_quant_rerank_fallbacks_total.
	QuantRerank int
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 200 * time.Microsecond
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.QuantRerank <= 0 {
		o.QuantRerank = 32
	}
	return o
}

// BatcherStats summarises the assignment path's behaviour.
type BatcherStats struct {
	Requests uint64  // Assign/AssignBatch calls answered
	Rows     uint64  // query rows answered
	Flushes  uint64  // blocked distance computations performed
	Rejected uint64  // requests refused by the per-model quota
	Queued   int     // rows waiting for the next flush right now
	P50      float64 // request latency quantiles, seconds
	P95      float64
	P99      float64
	Mean     float64
}

// pendingReq is one waiter: a set of rows against one model, answered
// together.
type pendingReq[T blas.Float] struct {
	model string
	rows  *matrix.Mat[T]
	out   chan batchAnswer
	start time.Time
	trace *telemetry.Trace // nil unless this request was sampled
}

type batchAnswer struct {
	assigns []Assignment
	err     error
	done    time.Time // when the answer was posted (traced requests only)
}

// BatcherOf coalesces concurrent assignment requests into one blocked
// ‖v‖²+‖c‖²−2·V·Cᵀ distance computation per flush. Callers block only
// for their own answer; a background flusher drains the queue whenever
// MaxBatch rows accumulate or MaxWait elapses after the first arrival.
// All rows of a flush that target the same model are answered by a
// single model snapshot, so a concurrent Publish never splits one batch
// across versions.
//
// The element type selects the assign hot path's precision: float64
// reproduces the pre-generic Batcher exactly; float32 runs the
// register-tiled Dgemm microkernel against the registry's precomputed
// float32 centroid mirror — half the memory traffic per flush, answers
// within the relative-error bounds documented in EXPERIMENTS.md.
type BatcherOf[T blas.Float] struct {
	reg  *Registry
	opts BatcherOptions
	lat  *metrics.Latency

	mu       sync.Mutex
	queue    []pendingReq[T]
	queued   int // rows currently queued
	inflight map[string]int
	stopped  bool

	work chan struct{} // queue went empty -> non-empty
	full chan struct{} // queued reached MaxBatch
	stop chan struct{}
	done chan struct{}

	requests metrics.Counter
	rows     metrics.Counter
	flushes  metrics.Counter
	rejected metrics.Counter
}

// Batcher is the float64 assignment path.
type Batcher = BatcherOf[float64]

// NewBatcher starts the float64 assignment path over a registry. Close
// it to stop the background flusher.
func NewBatcher(reg *Registry, opts BatcherOptions) *Batcher {
	return NewBatcherOf[float64](reg, opts)
}

// NewBatcherOf starts the assignment path at element type T over a
// registry. Close it to stop the background flusher.
func NewBatcherOf[T blas.Float](reg *Registry, opts BatcherOptions) *BatcherOf[T] {
	lat := metrics.NewLatency(1)
	if !opts.Internal {
		// The edge's reservoir (exact Stats quantiles) mirrors into the
		// registered histogram so /metrics reports the same stream.
		lat.Mirror(telRequestSeconds)
	}
	b := &BatcherOf[T]{
		reg:      reg,
		opts:     opts.withDefaults(),
		lat:      lat,
		inflight: map[string]int{},
		work:     make(chan struct{}, 1),
		full:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.flusher()
	return b
}

// Assign answers one query row (blocking until its flush completes).
func (b *BatcherOf[T]) Assign(model string, row []T) (Assignment, error) {
	m := matrix.New[T](1, len(row))
	copy(m.Data, row)
	as, err := b.AssignBatch(model, m)
	if err != nil {
		return Assignment{}, err
	}
	return as[0], nil
}

// AssignBatch answers every row of rows against the named model. The
// rows matrix must not be mutated until the call returns. When the
// model already has ModelQuota requests in flight the call fails fast
// with an error wrapping ErrOverloaded — backpressure instead of an
// unbounded queue.
func (b *BatcherOf[T]) AssignBatch(model string, rows *matrix.Mat[T]) ([]Assignment, error) {
	return b.AssignBatchTraced(model, rows, nil)
}

// AssignBatchTraced is AssignBatch with an injected trace: the fan-out
// edge passes the sampled request's trace into one shard batcher so the
// dump shows the enqueue/coalesce/GEMM stages inside the shard. With a
// nil trace the batcher samples its own tracer (edge batchers only).
func (b *BatcherOf[T]) AssignBatchTraced(model string, rows *matrix.Mat[T], tr *telemetry.Trace) ([]Assignment, error) {
	if rows.Rows() == 0 {
		return nil, nil
	}
	owned := false
	if tr == nil && !b.opts.Internal {
		if tr = b.opts.Tracer.Sample(); tr != nil {
			owned = true
		}
	}
	req := pendingReq[T]{model: model, rows: rows, out: make(chan batchAnswer, 1),
		start: time.Now(), trace: tr}
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return nil, fmt.Errorf("serve: batcher closed")
	}
	if q := b.opts.ModelQuota; q > 0 && b.inflight[model] >= q {
		b.mu.Unlock()
		b.rejected.Inc()
		if !b.opts.Internal {
			telRejected.Inc()
		}
		return nil, fmt.Errorf("%w: model %q has %d requests in flight", ErrOverloaded, model, q)
	}
	b.inflight[model]++
	wasEmpty := len(b.queue) == 0
	b.queue = append(b.queue, req)
	b.queued += rows.Rows()
	isFull := b.queued >= b.opts.MaxBatch
	b.mu.Unlock()
	telQueueDepth.Add(float64(rows.Rows()))
	if !b.opts.Internal {
		telInflight.With(model).Inc()
	}
	if wasEmpty {
		signal(b.work)
	}
	if isFull {
		signal(b.full)
	}
	ans := <-req.out
	b.mu.Lock()
	if b.inflight[model]--; b.inflight[model] == 0 {
		delete(b.inflight, model)
	}
	b.mu.Unlock()
	if !b.opts.Internal {
		telInflight.With(model).Dec()
	}
	if ans.err != nil {
		return nil, ans.err
	}
	if owned {
		// Injected traces (sharded fan-out) get their reply span at the
		// fan-out edge, after the cross-shard min — not per shard.
		tr.Span("reply", ans.done, time.Now())
		b.opts.Tracer.Done(tr)
	}
	b.lat.Observe(time.Since(req.start).Seconds())
	b.requests.Inc()
	b.rows.Add(uint64(rows.Rows()))
	if !b.opts.Internal {
		telRequests.Inc()
		telRows.Add(uint64(rows.Rows()))
	}
	return ans.assigns, nil
}

// AssignRows answers float64 query rows regardless of the batcher's
// element type, converting once when T is narrower. This is the
// precision-independent entry the HTTP server uses (JSON queries decode
// to float64 either way).
func (b *BatcherOf[T]) AssignRows(model string, rows *matrix.Dense) ([]Assignment, error) {
	if m, ok := any(rows).(*matrix.Mat[T]); ok {
		return b.AssignBatch(model, m)
	}
	return b.AssignBatch(model, matrix.Convert[T](rows))
}

// signal performs a non-blocking send on a 1-buffered channel.
func signal(c chan struct{}) {
	select {
	case c <- struct{}{}:
	default:
	}
}

// Stats reports counters and latency quantiles.
func (b *BatcherOf[T]) Stats() BatcherStats {
	st := BatcherStats{
		Requests: b.requests.Load(), Rows: b.rows.Load(),
		Flushes: b.flushes.Load(), Rejected: b.rejected.Load(),
	}
	b.mu.Lock()
	st.Queued = b.queued
	b.mu.Unlock()
	st.P50 = b.lat.Quantile(0.50)
	st.P95 = b.lat.Quantile(0.95)
	st.P99 = b.lat.Quantile(0.99)
	st.Mean = b.lat.Mean()
	return st
}

// InFlight snapshots the per-model in-flight request counts (queued or
// being answered right now).
func (b *BatcherOf[T]) InFlight() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.inflight))
	for m, n := range b.inflight {
		out[m] = n
	}
	return out
}

// Close rejects new requests, answers everything queued, and stops the
// flusher.
func (b *BatcherOf[T]) Close() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}

// flusher sleeps until work arrives, gives the queue MaxWait to fill
// (woken early when MaxBatch rows are reached), then drains it. The
// full channel only carries wakeups; the authoritative fullness check
// is fullNow, so a token left over from a batch that drain already
// picked up cannot cut the next batch's MaxWait window short.
func (b *BatcherOf[T]) flusher() {
	defer close(b.done)
	for {
		select {
		case <-b.work:
		case <-b.stop:
			b.drain()
			return
		}
		if !b.fullNow() {
			t := time.NewTimer(b.opts.MaxWait)
		wait:
			for {
				select {
				case <-b.full:
					if b.fullNow() {
						break wait
					}
					// Stale token: keep waiting out MaxWait.
				case <-t.C:
					break wait
				case <-b.stop:
					t.Stop()
					b.drain()
					return
				}
			}
			t.Stop()
		}
		b.drain()
	}
}

// fullNow reports whether MaxBatch rows are queued right now.
func (b *BatcherOf[T]) fullNow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued >= b.opts.MaxBatch
}

// Flush synchronously answers everything queued right now, without
// closing the batcher: new requests keep being accepted. The server's
// shutdown path calls it repeatedly so in-flight handlers are answered
// immediately instead of waiting out MaxWait. Safe concurrently with
// the background flusher — each queued request is popped by exactly
// one drain.
func (b *BatcherOf[T]) Flush() { b.drain() }

// drain flushes until the queue is empty.
func (b *BatcherOf[T]) drain() {
	for {
		b.mu.Lock()
		batch := b.queue
		taken := b.queued
		b.queue = nil
		b.queued = 0
		b.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		telQueueDepth.Add(-float64(taken))
		telBatchRows.Observe(float64(taken))
		b.flush(batch)
	}
}

// flush groups queued requests by model and answers each group with a
// single GEMM-formulated distance computation against one snapshot.
func (b *BatcherOf[T]) flush(batch []pendingReq[T]) {
	flushStart := time.Now()
	for i := range batch {
		// Traced requests: the enqueue span is arrival → flush pickup
		// (the MaxWait/MaxBatch coalescing window).
		batch[i].trace.Span("enqueue", batch[i].start, flushStart)
	}
	groups := map[string][]int{}
	for i, r := range batch {
		groups[r.model] = append(groups[r.model], i)
	}
	for model, idxs := range groups {
		snap, ok := b.reg.Get(model)
		if !ok {
			for _, i := range idxs {
				batch[i].out <- batchAnswer{err: fmt.Errorf("serve: unknown model %q", model)}
			}
			continue
		}
		d := snap.Dims()
		// Answer dim-mismatched requests with errors; pack the rest
		// into one contiguous m×d block.
		live := idxs[:0]
		total := 0
		for _, i := range idxs {
			if batch[i].rows.Cols() != d {
				batch[i].out <- batchAnswer{err: fmt.Errorf(
					"serve: model %q dims %d, query dims %d", model, d, batch[i].rows.Cols())}
				continue
			}
			live = append(live, i)
			total += batch[i].rows.Rows()
		}
		if total == 0 {
			continue
		}
		a := make([]T, total*d)
		off := 0
		for _, i := range live {
			copy(a[off:], batch[i].rows.Data)
			off += len(batch[i].rows.Data)
		}
		gemmStart := time.Now()
		var assigns []Assignment
		if a32, ok := any(a).([]float32); ok && b.opts.Quantize == "int8" {
			var fallbacks int
			assigns, fallbacks = assignBlockQuant(a32, total, snap,
				b.opts.Threads, b.opts.RawSqDist, b.opts.QuantRerank)
			telQuantRows.Add(uint64(total))
			if fallbacks > 0 {
				telQuantFallbacks.Add(uint64(fallbacks))
			}
		} else {
			assigns = assignBlock(a, total, snap, b.opts.Threads, b.opts.RawSqDist)
		}
		gemmEnd := time.Now()
		telGemmSeconds.Observe(gemmEnd.Sub(gemmStart).Seconds())
		row := 0
		for _, i := range live {
			if batch[i].trace != nil {
				batch[i].trace.Span("coalesce", flushStart, gemmStart)
				batch[i].trace.Span("gemm", gemmStart, gemmEnd)
			}
			n := batch[i].rows.Rows()
			batch[i].out <- batchAnswer{assigns: assigns[row : row+n : row+n], done: gemmEnd}
			row += n
		}
	}
	b.flushes.Inc()
	telFlushes.Inc()
}

// assignBlock computes nearest centroids for an m×d row block via the
// ‖v‖² + ‖c‖² − 2·V·Cᵀ identity, reusing the snapshot's cached ‖c‖² at
// the block's element type. raw skips the cancellation clamp (the
// sharded combiner clamps once, after the cross-shard min).
func assignBlock[T blas.Float](a []T, m int, snap *Model, threads int, raw bool) []Assignment {
	k, d := snap.K(), snap.Dims()
	cents, normsSq := centroidsOf[T](snap)
	dist := make([]T, m*k)
	blas.Dgemm(-2, a, m, d, cents.Data, k, 0, dist, threads)
	an := make([]T, m)
	blas.RowNormsSq(a, m, d, an)
	out := make([]Assignment, m)
	for i := 0; i < m; i++ {
		row := dist[i*k : (i+1)*k]
		best, bi := row[0]+an[i]+normsSq[0], 0
		for j := 1; j < k; j++ {
			if v := row[j] + an[i] + normsSq[j]; v < best {
				best, bi = v, j
			}
		}
		if best < 0 && !raw { // numerical cancellation
			best = 0
		}
		out[i] = Assignment{Cluster: int32(bi), SqDist: float64(best), Version: snap.Version}
	}
	return out
}

// Assigner is the precision-independent view of a batcher: what the
// HTTP server programs against so -precision only changes construction.
type Assigner interface {
	// AssignRows answers float64 query rows against the named model.
	AssignRows(model string, rows *matrix.Dense) ([]Assignment, error)
	// Stats reports counters and latency quantiles.
	Stats() BatcherStats
	// InFlight snapshots the per-model in-flight request counts.
	InFlight() map[string]int
	// Flush answers everything queued right now without closing.
	Flush()
	// Close rejects new requests, answers everything queued, and stops
	// the flusher.
	Close()
}

// NewAssigner builds the batched assignment path at the requested
// precision.
func NewAssigner(reg *Registry, opts BatcherOptions, p kmeans.Precision) Assigner {
	if p == kmeans.Precision32 {
		return NewBatcherOf[float32](reg, opts)
	}
	return NewBatcherOf[float64](reg, opts)
}
