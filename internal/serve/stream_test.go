package serve

import (
	"math/rand"
	"testing"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/workload"
)

func streamFixture(t *testing.T) (*matrix.Dense, *matrix.Dense, *kmeans.Result) {
	t.Helper()
	spec := workload.Spec{
		Kind: workload.NaturalClusters, N: 4000, D: 8, Clusters: 6, Spread: 0.03, Seed: 11,
	}
	data := workload.Generate(spec)
	cfg := kmeans.Config{K: 6, Init: kmeans.InitKMeansPP, Seed: 11}
	oracle, err := kmeans.RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := cfg.WithDefaults(data.Rows())
	if err != nil {
		t.Fatal(err)
	}
	seeds := kmeans.InitCentroidsFor(data, full)
	return data, seeds, oracle
}

// feed streams the dataset through the engine in batches, in a fixed
// shuffled order, for the given number of passes.
func feed(t *testing.T, e *StreamEngine, data *matrix.Dense, batch, passes int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(data.Rows())
	for p := 0; p < passes; p++ {
		for lo := 0; lo < len(order); lo += batch {
			hi := lo + batch
			if hi > len(order) {
				hi = len(order)
			}
			m := matrix.NewDense(hi-lo, data.Cols())
			for i, idx := range order[lo:hi] {
				copy(m.Row(i), data.Row(idx))
			}
			if _, err := e.Observe(m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestStreamEngineConvergesToOracle(t *testing.T) {
	data, seeds, oracle := streamFixture(t)
	e, err := NewStreamEngine("m", seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, data, 256, 3, 5)
	sse := workload.SSE(data, e.Centroids())
	if sse > 1.05*oracle.SSE {
		t.Fatalf("stream SSE %.6g not within 5%% of oracle %.6g", sse, oracle.SSE)
	}
	if e.Seen() != int64(3*data.Rows()) {
		t.Fatalf("seen %d rows, want %d", e.Seen(), 3*data.Rows())
	}
}

func TestStreamEngineDeterministic(t *testing.T) {
	data, seeds, _ := streamFixture(t)
	run := func() *matrix.Dense {
		e, err := NewStreamEngine("m", seeds, nil)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, e, data, 128, 2, 9)
		return e.Centroids()
	}
	a, b := run(), run()
	if !a.Equal(b, 0) {
		t.Fatal("identical seeds and batches produced different centroids")
	}
}

func TestStreamEngineResumeEqualsUninterrupted(t *testing.T) {
	data, seeds, _ := streamFixture(t)
	reg := NewRegistry(4)

	// Uninterrupted: 4 passes straight through.
	whole, err := NewStreamEngine("m", seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, whole, data, 200, 4, 21)

	// Interrupted: 2 passes, checkpoint, resume, 2 more passes with the
	// same batch stream (feed re-derives the same order per pass pair).
	half, err := NewStreamEngine("m", seeds, reg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	order := rng.Perm(data.Rows())
	passFeed := func(e *StreamEngine, passes int) {
		for p := 0; p < passes; p++ {
			for lo := 0; lo < len(order); lo += 200 {
				hi := lo + 200
				if hi > len(order) {
					hi = len(order)
				}
				m := matrix.NewDense(hi-lo, data.Cols())
				for i, idx := range order[lo:hi] {
					copy(m.Row(i), data.Row(idx))
				}
				if _, err := e.Observe(m); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	passFeed(half, 2)
	cp := half.Checkpoint()
	// Mutate the original after checkpointing: the checkpoint must be a
	// deep copy.
	passFeed(half, 1)
	resumed, err := ResumeStreamEngine(cp, reg)
	if err != nil {
		t.Fatal(err)
	}
	passFeed(resumed, 2)

	// feed() with seed 21 uses the same permutation for every pass, so
	// "4 passes straight" must equal "2 passes + resume + 2 passes".
	if !whole.Centroids().Equal(resumed.Centroids(), 0) {
		t.Fatal("resumed run diverged from uninterrupted run")
	}
	if whole.Seen() != resumed.Seen() {
		t.Fatalf("seen mismatch: %d vs %d", whole.Seen(), resumed.Seen())
	}
}

func TestStreamEnginePublishVersions(t *testing.T) {
	_, seeds, _ := streamFixture(t)
	reg := NewRegistry(2)
	e, err := NewStreamEngine("m", seeds, reg)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := reg.Get("m")
	if !ok || first.Version != 1 {
		t.Fatalf("seed not published: %+v ok=%v", first, ok)
	}
	batch := matrix.NewDense(4, seeds.Cols())
	for i := 0; i < 4; i++ {
		copy(batch.Row(i), seeds.Row(0))
	}
	if _, err := e.Observe(batch); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 {
		t.Fatalf("publish version = %d, want 2", snap.Version)
	}
	// The v1 snapshot must be untouched by the folds (copy-on-write).
	if !first.Centroids.Equal(seeds, 0) {
		t.Fatal("published v1 mutated by later Observe")
	}
}

func TestResumeRejectsMalformedCheckpoint(t *testing.T) {
	if _, err := ResumeStreamEngine(StreamCheckpoint{}, nil); err == nil {
		t.Fatal("empty checkpoint accepted")
	}
	cp := StreamCheckpoint{Centroids: matrix.NewDense(3, 2), Counts: []int64{1, 2}}
	if _, err := ResumeStreamEngine(cp, nil); err == nil {
		t.Fatal("count/centroid mismatch accepted")
	}
}
