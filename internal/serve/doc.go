// Package serve is the online-clustering service layer: it turns the
// batch trainers (knori/knors/knord) into a system that answers live
// queries and keeps learning.
//
// Four pieces compose it:
//
//   - Registry — named, versioned centroid sets. Publishing clones the
//     centroids into an immutable Model snapshot (copy-on-write), so
//     queries in flight never observe a half-updated model and never
//     block a trainer.
//   - Batcher — the assignment path. Concurrent Assign calls are
//     coalesced into one blocked ‖v‖²+‖c‖²−2·V·Cᵀ distance computation
//     through internal/blas, amortising per-request overhead; per-request
//     latency feeds an internal/metrics recorder (p50/p99).
//   - StreamEngine — the updater. Incoming observations fold into a
//     kmeans.MiniBatchState with per-centroid learning rates, forever;
//     explicit state makes checkpoint/resume exact.
//   - router (SimulateServe) — a NUMA-aware request router over
//     internal/sched + internal/numa: per-model worker shards pinned to
//     simulated NUMA nodes, so serve throughput can be compared across
//     placement and scheduling policies the same way Figure 5 compares
//     the trainers.
package serve
