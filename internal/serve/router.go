package serve

import (
	"fmt"
	"math"

	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/simclock"
	"knor/internal/telemetry"
)

// RouterConfig drives a simulated serve epoch: worker shards pinned to
// NUMA nodes answer a request trace under a scheduling policy, with
// model centroid reads charged through the simulated memory links —
// the serving-side analogue of the Figure 5 trainer comparison.
type RouterConfig struct {
	Topo    numa.Topology
	Model   simclock.CostModel
	Workers int
	// Sched picks the task scheduler (Static / FIFO / NUMAAware).
	Sched sched.Policy
	// Placement spreads model shards across nodes (Partitioned pins
	// one model per node round-robin; SingleBank hoards them on node
	// 0, the NUMA-oblivious baseline).
	Placement numa.PlacementPolicy
	// UseRegistryPins routes by each Model.Node as recorded at publish
	// time (the registry's round-robin pin), ignoring Placement.
	UseRegistryPins bool
	Seed            int64
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Topo.Nodes == 0 {
		c.Topo = numa.DefaultTopology()
	}
	if c.Workers <= 0 {
		c.Workers = c.Topo.TotalCores()
	}
	if c.Model == (simclock.CostModel{}) {
		c.Model = simclock.DefaultCostModel()
	}
	return c
}

// Request is one query batch against a named model.
type Request struct {
	Model string
	Rows  int
}

// RouteStats summarises a simulated serve epoch.
type RouteStats struct {
	Requests    int
	SimSeconds  float64 // makespan across workers
	Throughput  float64 // requests per simulated second
	RowsPerSec  float64
	LocalBytes  uint64
	RemoteBytes uint64
	PerWorker   []int // requests served per worker shard
	// P50/P95/P99 are per-request service-time quantiles in simulated
	// seconds (centroid pull + distance kernel on the serving worker).
	P50, P95, P99 float64
}

// SimulateServe routes a request trace over the registry's models. Each
// model shard is placed on a NUMA node by cfg.Placement; each worker is
// bound to a node; answering a request makes the worker pull the
// model's centroid set (local stream or contended remote link) and pay
// the blocked distance kernel for rows×k×d. Scheduling is greedy
// list scheduling in simulated time: the earliest-free worker asks the
// policy's scheduler for its next task, so NUMA-aware stealing behaves
// exactly as in the trainers. Deterministic for a fixed config.
func SimulateServe(reg *Registry, reqs []Request, cfg RouterConfig) (RouteStats, error) {
	cfg = cfg.withDefaults()
	models := reg.List()
	if len(models) == 0 {
		return RouteStats{}, fmt.Errorf("serve: no models registered")
	}
	// Pin model shards: either honour the registry's publish-time pins
	// or re-pin under the requested placement policy (the sweep mode).
	nodeOf := map[string]int{}
	byName := map[string]*Model{}
	var place *numa.Placement
	if !cfg.UseRegistryPins {
		place = numa.NewPlacement(cfg.Topo, cfg.Placement, len(models), 1, cfg.Seed)
	}
	for i, m := range models {
		if cfg.UseRegistryPins {
			nodeOf[m.Name] = m.Node % cfg.Topo.Nodes
		} else {
			nodeOf[m.Name] = place.NodeOfBlock(i)
		}
		byName[m.Name] = m
	}
	tasks := make([]sched.Task, len(reqs))
	for i, r := range reqs {
		n, ok := nodeOf[r.Model]
		if !ok {
			return RouteStats{}, fmt.Errorf("serve: request %d names unknown model %q", i, r.Model)
		}
		tasks[i] = sched.Task{ID: i, Lo: 0, Hi: r.Rows, Node: n}
	}
	workerNode := func(w int) int { return cfg.Topo.NodeOfThread(w, cfg.Workers) }
	s := sched.New(cfg.Sched, cfg.Workers, workerNode)
	s.Reset(tasks)

	machine := numa.NewMachine(cfg.Topo, cfg.Model)
	group := simclock.NewGroup(cfg.Workers, cfg.Model)
	lat := telemetry.NewLatency(cfg.Seed + 1)
	st := RouteStats{Requests: len(reqs), PerWorker: make([]int, cfg.Workers)}
	alive := cfg.Workers
	done := make([]bool, cfg.Workers)
	for alive > 0 {
		// Earliest-free worker takes the next task (greedy list
		// scheduling over simulated time).
		w, best := -1, math.Inf(1)
		for i := 0; i < cfg.Workers; i++ {
			if !done[i] && group.Clock(i).Now() < best {
				w, best = i, group.Clock(i).Now()
			}
		}
		t, ok := s.Next(w)
		if !ok {
			done[w] = true
			alive--
			continue
		}
		req := reqs[t.ID]
		m := byName[req.Model]
		c := group.Clock(w)
		svcStart := c.Now()
		at := workerNode(w)
		machine.Touch(c, at, t.Node, m.Bytes())
		// Remote execution slows the kernel itself, exactly as in the
		// trainers: latency-bound centroid accesses can't be prefetched.
		scale := 1.0
		if at != t.Node && cfg.Model.RemoteComputePenalty > 1 {
			scale = cfg.Model.RemoteComputePenalty
		}
		c.Advance(scale * (cfg.Model.DistanceCost(m.Dims())*float64(req.Rows)*float64(m.K()) +
			float64(req.Rows)*cfg.Model.RowOverhead))
		lat.Observe(c.Now() - svcStart)
		st.PerWorker[w]++
	}
	st.P50 = lat.Quantile(0.50)
	st.P95 = lat.Quantile(0.95)
	st.P99 = lat.Quantile(0.99)
	st.SimSeconds = group.Max()
	if st.SimSeconds > 0 {
		st.Throughput = float64(len(reqs)) / st.SimSeconds
		var rows int
		for _, r := range reqs {
			rows += r.Rows
		}
		st.RowsPerSec = float64(rows) / st.SimSeconds
	}
	st.LocalBytes, st.RemoteBytes = machine.Traffic()
	return st, nil
}
