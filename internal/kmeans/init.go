package kmeans

import (
	"math/rand"

	"knor/internal/blas"
	"knor/internal/matrix"
)

// RowData is the read-only row access centroid initialisation needs.
// *matrix.Mat[T] satisfies it directly; the SEM storage backends adapt
// their streaming cursors to it, so a file-backed engine draws exactly
// the same seeds as an in-memory one (the RNG consumption below never
// depends on how rows are fetched). A returned row need only stay
// valid until the next Row call.
type RowData[T blas.Float] interface {
	Rows() int
	Cols() int
	Row(i int) []T
}

// InitCentroidsFor exposes centroid initialisation for the SEM and
// distributed engines, which drive their own iteration loops.
func InitCentroidsFor(data *matrix.Dense, cfg Config) *matrix.Dense {
	return initCentroids(data, cfg)
}

// InitCentroidsOf is InitCentroidsFor generic over the element type:
// the float32 instantiation is the init a Precision32 run performs
// (arithmetic in float32, so the seed centroids match the single-node
// float32 oracle's bit for bit).
func InitCentroidsOf[T blas.Float](data *matrix.Mat[T], cfg Config) *matrix.Mat[T] {
	return initCentroids(data, cfg)
}

// InitCentroidsFromRows is InitCentroidsFor over any row source — the
// streaming path for engines whose data never fully resides in memory.
// Fed the same row values it is bit-identical to InitCentroidsFor.
func InitCentroidsFromRows(data RowData[float64], cfg Config) *matrix.Dense {
	return initCentroidsRows[float64](data, cfg)
}

// initCentroids produces the iteration-0 centroids per the config.
func initCentroids[T blas.Float](data *matrix.Mat[T], cfg Config) *matrix.Mat[T] {
	return initCentroidsRows[T](data, cfg)
}

// initCentroidsRows is the shared implementation. The RNG consumption
// is data-independent for Forgy and random-partition, so those draws
// match across element types; k-means++ samples by D² mass, so float32
// runs may pick different seeds near ties.
func initCentroidsRows[T blas.Float](data RowData[T], cfg Config) *matrix.Mat[T] {
	switch cfg.Init {
	case InitForgy:
		return initForgy(data, cfg.K, cfg.Seed)
	case InitRandomPartition:
		return initRandomPartition(data, cfg.K, cfg.Seed)
	case InitKMeansPP:
		return initKMeansPP(data, cfg.K, cfg.Seed)
	case InitGiven:
		return centroidsAs[T](cfg.Centroids)
	default:
		panic("kmeans: unknown init method")
	}
}

// centroidsAs copies the config's float64 centroids at the engine's
// element type.
func centroidsAs[T blas.Float](c *matrix.Dense) *matrix.Mat[T] {
	if m, ok := any(c).(*matrix.Mat[T]); ok {
		return m.Clone()
	}
	return matrix.Convert[T](c)
}

// initForgy picks k distinct rows uniformly at random.
func initForgy[T blas.Float](data RowData[T], k int, seed int64) *matrix.Mat[T] {
	rng := rand.New(rand.NewSource(seed))
	n := data.Rows()
	picked := make(map[int]bool, k)
	c := matrix.New[T](k, data.Cols())
	for i := 0; i < k; i++ {
		r := rng.Intn(n)
		for picked[r] {
			r = rng.Intn(n)
		}
		picked[r] = true
		copy(c.Row(i), data.Row(r))
	}
	return c
}

// initRandomPartition assigns every row a random cluster and uses the
// cluster means as initial centroids. Empty clusters fall back to a
// random row.
func initRandomPartition[T blas.Float](data RowData[T], k int, seed int64) *matrix.Mat[T] {
	rng := rand.New(rand.NewSource(seed))
	d := data.Cols()
	c := matrix.New[T](k, d)
	counts := make([]int, k)
	for i := 0; i < data.Rows(); i++ {
		g := rng.Intn(k)
		counts[g]++
		matrix.AddTo(c.Row(g), data.Row(i))
	}
	for g := 0; g < k; g++ {
		if counts[g] == 0 {
			copy(c.Row(g), data.Row(rng.Intn(data.Rows())))
			continue
		}
		matrix.Scale(c.Row(g), 1/T(counts[g]))
	}
	return c
}

// initKMeansPP implements k-means++ D² seeding (Arthur & Vassilvitskii),
// listed in the paper's future work (§9) via semi-supervised k-means++.
func initKMeansPP[T blas.Float](data RowData[T], k int, seed int64) *matrix.Mat[T] {
	rng := rand.New(rand.NewSource(seed))
	n := data.Rows()
	c := matrix.New[T](k, data.Cols())
	copy(c.Row(0), data.Row(rng.Intn(n)))
	d2 := make([]T, n)
	for i := range d2 {
		d2[i] = matrix.SqDist(data.Row(i), c.Row(0))
	}
	for g := 1; g < k; g++ {
		// The D² prefix sum runs in float64 at every width: at float32 a
		// large-n total saturates (ulp ~ total·ε), silently zeroing the
		// tail rows' sampling mass. The per-row d2 values stay in T.
		var total float64
		for _, v := range d2 {
			total += float64(v)
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, v := range d2 {
				acc += float64(v)
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(c.Row(g), data.Row(pick))
		// Update D² against the newly chosen centre.
		for i := range d2 {
			if nd := matrix.SqDist(data.Row(i), c.Row(g)); nd < d2[i] {
				d2[i] = nd
			}
		}
	}
	return c
}

// normalizeRows is the spherical variant's row normalisation, shared
// across engines via matrix.NormalizeRows.
func normalizeRows[T blas.Float](m *matrix.Mat[T]) { matrix.NormalizeRows(m) }
