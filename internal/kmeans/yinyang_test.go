package kmeans

import (
	"testing"
	"testing/quick"

	"knor/internal/numa"
	"knor/internal/sched"
)

func TestYinyangMatchesExactSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, k := range []int{5, 10, 25} {
			data := testData(700, 6, 6, seed)
			exact, err := RunSerial(data, baseCfg(k))
			if err != nil {
				t.Fatal(err)
			}
			yy := baseCfg(k)
			yy.Prune = PruneYinyang
			got, err := RunSerial(data, yy)
			if err != nil {
				t.Fatal(err)
			}
			if got.Iters != exact.Iters {
				t.Fatalf("seed %d k=%d: iters %d vs %d", seed, k, got.Iters, exact.Iters)
			}
			for i := range exact.Assign {
				if exact.Assign[i] != got.Assign[i] {
					t.Fatalf("seed %d k=%d: row %d differs", seed, k, i)
				}
			}
			if !exact.Centroids.Equal(got.Centroids, 1e-9) {
				t.Fatalf("seed %d k=%d: centroids differ", seed, k)
			}
		}
	}
}

func TestYinyangMatchesExactParallel(t *testing.T) {
	data := testData(1000, 8, 5, 31)
	exact, _ := RunSerial(data, baseCfg(12))
	cfg := parCfg(12, 4)
	cfg.Prune = PruneYinyang
	got, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Centroids.Equal(got.Centroids, 1e-9) {
		t.Fatal("parallel yinyang centroids differ")
	}
	for i := range exact.Assign {
		if exact.Assign[i] != got.Assign[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestYinyangOnUniformData(t *testing.T) {
	data := uniformData(500, 4, 32)
	exact, _ := RunSerial(data, baseCfg(15))
	yy := baseCfg(15)
	yy.Prune = PruneYinyang
	got, err := RunSerial(data, yy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iters != exact.Iters {
		t.Fatalf("iters %d vs %d", got.Iters, exact.Iters)
	}
	for i := range exact.Assign {
		if exact.Assign[i] != got.Assign[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestYinyangPrunes(t *testing.T) {
	data := testData(3000, 8, 8, 33)
	yy := baseCfg(20)
	yy.Prune = PruneYinyang
	yyRes, _ := RunSerial(data, yy)
	none, _ := RunSerial(data, baseCfg(20))
	var dYY, dNone uint64
	for _, st := range yyRes.PerIter {
		dYY += st.DistCalcs
	}
	for _, st := range none.PerIter {
		dNone += st.DistCalcs
	}
	if dYY*2 > dNone {
		t.Fatalf("yinyang pruned too little: %d vs %d", dYY, dNone)
	}
}

func TestYinyangMemoryBetweenMTIAndTI(t *testing.T) {
	n, d, k, T := 100000, 16, 50, 8
	mti := StateBytes(n, d, k, T, PruneMTI)
	yy := StateBytes(n, d, k, T, PruneYinyang)
	ti := StateBytes(n, d, k, T, PruneTI)
	if !(mti < yy && yy < ti) {
		t.Fatalf("memory ordering violated: mti=%d yy=%d ti=%d", mti, yy, ti)
	}
	// The group-bound matrix is n*t with t=k/10.
	want := uint64(n)*8 + uint64(n)*uint64(k/10)*8
	if got := yy - StateBytes(n, d, k, T, PruneNone); got != want {
		t.Fatalf("yinyang increment %d, want %d", got, want)
	}
}

func TestYinyangGroups(t *testing.T) {
	if yinyangGroups(5) != 1 || yinyangGroups(10) != 1 || yinyangGroups(100) != 10 {
		t.Fatal("group count rule broken")
	}
	ps := NewPruneState(PruneYinyang, 10, 25)
	if ps.T != 2 {
		t.Fatalf("T = %d", ps.T)
	}
	// Every centroid belongs to exactly one group's member list.
	seen := make([]bool, 25)
	for g, members := range ps.GroupMembers {
		for _, c := range members {
			if seen[c] {
				t.Fatalf("centroid %d in two groups", c)
			}
			seen[c] = true
			if ps.GroupOf[c] != g {
				t.Fatalf("GroupOf[%d]=%d but listed in group %d", c, ps.GroupOf[c], g)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("centroid %d in no group", c)
		}
	}
}

// Property: for random small instances, Yinyang always reproduces the
// exact Lloyd's trajectory (the bound invariants are lossless).
func TestYinyangProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%400 + 30
		k := int(kRaw)%20 + 2
		if k > n {
			k = n
		}
		data := testData(n, 4, 5, seed)
		cfg := Config{K: k, MaxIters: 20, Init: InitForgy, Seed: seed}
		exact, err := RunSerial(data, cfg)
		if err != nil {
			return false
		}
		yy := cfg
		yy.Prune = PruneYinyang
		got, err := RunSerial(data, yy)
		if err != nil {
			return false
		}
		if got.Iters != exact.Iters {
			return false
		}
		for i := range exact.Assign {
			if exact.Assign[i] != got.Assign[i] {
				return false
			}
		}
		return exact.Centroids.Equal(got.Centroids, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel Yinyang with arbitrary schedulers matches serial.
func TestYinyangParallelProperty(t *testing.T) {
	f := func(seed int64, tRaw, pRaw uint8) bool {
		threads := int(tRaw)%6 + 1
		policy := sched.Policy(int(pRaw) % 3)
		data := testData(300, 4, 4, seed)
		cfg := Config{K: 8, MaxIters: 15, Init: InitForgy, Seed: seed}
		serial, err := RunSerial(data, cfg)
		if err != nil {
			return false
		}
		pc := cfg
		pc.Prune = PruneYinyang
		pc.Threads = threads
		pc.TaskSize = 32
		pc.Topo = numa.Topology{Nodes: 2, CoresPerNode: 4}
		pc.Sched = policy
		got, err := Run(data, pc)
		if err != nil {
			return false
		}
		return serial.Centroids.Equal(got.Centroids, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
