package kmeans

import (
	"knor/internal/matrix"
)

// Yinyang k-means (Ding et al., ICML'15) is the pruning competitor the
// paper's related work analyses: instead of Elkan's O(nk) lower-bound
// matrix it keeps one lower bound per *group* of centroids, O(nt) with
// t ≈ k/10 groups. The paper argues both TI and Yinyang scale worse in
// memory than MTI's O(n); implementing it makes that trade-off
// measurable (ablation "yinyang" in cmd/knorbench).
//
// The implementation follows the global-filter + group-filter structure
// of the original, with centroid groups fixed at construction by index
// chunking (the original seeds groups by clustering the initial
// centroids; chunking changes pruning power, not correctness, and
// knor's centroid indices are random anyway).
//
// Invariant maintained for every row i and group g:
//
//	LBG[i*t+g] <= d(row i, c)  for every centroid c in group g other
//	                           than the row's current assignment.

// yinyangGroups returns the default group count, t = max(1, k/10).
func yinyangGroups(k int) int {
	t := k / 10
	if t < 1 {
		t = 1
	}
	return t
}

// initYinyang sizes the group state on a PruneState.
func (p *PruneStateOf[T]) initYinyang(k int) {
	p.T = yinyangGroups(k)
	p.GroupOf = make([]int, k)
	p.GroupMembers = make([][]int, p.T)
	for c := 0; c < k; c++ {
		g := c * p.T / k
		p.GroupOf[c] = g
		p.GroupMembers[g] = append(p.GroupMembers[g], c)
	}
	p.LBG = make([]T, p.N*p.T)
	p.GroupDrift = make([]T, p.T)
}

// yinyangNeedsRow is the global filter: if the upper bound sits below
// every group's lower bound, no centroid can have come closer — the row
// keeps its membership with no data access (the clause-1 analogue).
func (p *PruneStateOf[T]) yinyangNeedsRow(i int) bool {
	if p.Assign[i] < 0 {
		return true
	}
	u := p.UB[i]
	lbg := p.LBG[i*p.T : (i+1)*p.T]
	for _, lb := range lbg {
		if u > lb {
			return true
		}
	}
	return false
}

// yinyangAssign reassigns row i under group filtering. The engine has
// already established that the global filter fails.
func (p *PruneStateOf[T]) yinyangAssign(i int, row []T, cents *matrix.Mat[T], ctr *PruneCounters) bool {
	t := p.T
	b := int(p.Assign[i])
	lbg := p.LBG[i*t : (i+1)*t]

	// Tighten the upper bound once: exact distance to the assignment.
	u := matrix.Dist(row, cents.Row(b))
	ctr.DistCalcs++

	newB, newU := b, u
	for g := 0; g < t; g++ {
		if newU <= lbg[g] {
			// Group filter holds against the current best.
			ctr.C3++
			continue
		}
		// Scan the group's members (excluding the original assignment),
		// tracking the two smallest distances to rebuild the bound.
		min1, min2 := inf[T](), inf[T]()
		min1c := -1
		for _, c := range p.GroupMembers[g] {
			if c == b {
				continue
			}
			d := matrix.Dist(row, cents.Row(c))
			ctr.DistCalcs++
			if d < min1 {
				min2 = min1
				min1 = d
				min1c = c
			} else if d < min2 {
				min2 = d
			}
		}
		if min1 < newU {
			// min1c displaces the current candidate. The displaced
			// candidate becomes an "other" of its own group, so its
			// exact distance must cap that group's bound — unless it is
			// the original assignment b, which stays excluded from the
			// invariant until the final patch below.
			if newB != b {
				gPrev := p.GroupOf[newB]
				if gPrev == g {
					if newU < min2 {
						min2 = newU
					}
				} else if newU < lbg[gPrev] {
					lbg[gPrev] = newU
				}
			}
			lbg[g] = min2
			newB, newU = min1c, min1
		} else {
			lbg[g] = min1
		}
	}
	// If the assignment moved, the original b is now an "other" of its
	// group; its exact distance u caps that bound.
	if newB != b {
		gb := p.GroupOf[b]
		if u < lbg[gb] {
			lbg[gb] = u
		}
	}
	changed := int32(newB) != p.Assign[i]
	p.Assign[i] = int32(newB)
	p.UB[i] = newU
	return changed
}

// yinyangExact primes the bounds with a full scan.
func (p *PruneStateOf[T]) yinyangExact(i int, row []T, cents *matrix.Mat[T], ctr *PruneCounters) bool {
	t := p.T
	k := p.K
	dists := make([]T, k)
	best, bi := inf[T](), 0
	ctr.DistCalcs += uint64(k)
	for c := 0; c < k; c++ {
		dists[c] = matrix.Dist(row, cents.Row(c))
		if dists[c] < best {
			best = dists[c]
			bi = c
		}
	}
	lbg := p.LBG[i*t : (i+1)*t]
	for g := 0; g < t; g++ {
		lbg[g] = inf[T]()
	}
	for c := 0; c < k; c++ {
		if c == bi {
			continue
		}
		g := p.GroupOf[c]
		if dists[c] < lbg[g] {
			lbg[g] = dists[c]
		}
	}
	changed := int32(bi) != p.Assign[i]
	p.Assign[i] = int32(bi)
	p.UB[i] = best
	return changed
}

// yinyangLoosen applies the post-update drift adjustment for rows
// [lo, hi): ub grows by the assigned centroid's drift; each group bound
// shrinks by the group's maximum drift.
func (p *PruneStateOf[T]) yinyangLoosen(lo, hi int) {
	t := p.T
	for i := lo; i < hi; i++ {
		a := p.Assign[i]
		if a >= 0 {
			p.UB[i] += p.Drift[a]
		}
		lbg := p.LBG[i*t : (i+1)*t]
		for g := 0; g < t; g++ {
			lbg[g] -= p.GroupDrift[g]
			if lbg[g] < 0 {
				lbg[g] = 0
			}
		}
	}
}

// yinyangComputeDrift fills Drift and the per-group maxima.
func (p *PruneStateOf[T]) yinyangComputeDrift(old, next *matrix.Mat[T]) float64 {
	total := 0.0
	for g := range p.GroupDrift {
		p.GroupDrift[g] = 0
	}
	for c := 0; c < p.K; c++ {
		d := matrix.Dist(old.Row(c), next.Row(c))
		p.Drift[c] = d
		total += float64(d)
		if g := p.GroupOf[c]; d > p.GroupDrift[g] {
			p.GroupDrift[g] = d
		}
	}
	return total
}
